(** The three real concurrency bugs of the paper's case studies (Table 1),
    modelled in the mini language.

    Each model preserves the bug's {e class} and structural position:

    - {b pbzip2}: a data race on [fifo->mut] — the main thread tears down
      the FIFO (here: marks it freed) while compressor threads still use
      its mutex.  Modelled as a use-after-free flag checked by the
      compressors.
    - {b Aget}: a data race on [bwritten] between downloader threads and
      the signal-handler thread — unsynchronized read-modify-write updates
      lose counts.  Modelled as unlocked [bwritten = bwritten + n].
    - {b mozilla}: one thread destroys [rt->scriptFilenameTable] while
      another sweeps it ([js_SweepScriptFilenames]) and crashes on the
      dangling pointer.  Modelled with [peek] through a pointer that the
      destroyer nulls to an invalid address.

    Each bug comes with the metadata the benches need: where the root
    cause and the failure are (source lines), and how large the buggy
    region is. *)

type t = {
  name : string;
  description : string;  (** Table 1's "Bug Description" *)
  program_description : string;  (** Table 1's "Program Description" *)
  source : string;
  root_cause_line : int;
  failure_line : int;
}

(** 1-based line of the first source line containing [sub]. *)
let line_of_substring source sub =
  let lines = String.split_on_char '\n' source in
  let rec go n = function
    | [] -> invalid_arg (Printf.sprintf "marker %S not found" sub)
    | l :: rest ->
      let contains =
        let ls = String.length l and ss = String.length sub in
        let rec at i = i + ss <= ls && (String.sub l i ss = sub || at (i + 1)) in
        ss > 0 && at 0
      in
      if contains then n else go (n + 1) rest
  in
  go 1 lines

(* ---- pbzip2: data race on fifo->mut ---- *)

let pbzip2_source =
  {|// pbzip2 (ver. 0.9.4) model: data race on fifo->mut between the main
// thread and the compressor threads.
global int fifo_mut;
global int fifo_freed;
global int queue[32];
global int qhead;
global int qtail;
global int produced;
global int consumed;

fn compressor(int id) {
  int done_work = 0;
  while (done_work < 24) {
    // the bug: main may have freed the fifo while we still use its mutex
    assert(fifo_freed == 0, "pbzip2: fifo->mut used after free");
    lock(&fifo_mut);
    int have = 0;
    int block = 0;
    if (qhead < qtail) {
      block = queue[qhead % 32];
      qhead = qhead + 1;
      have = 1;
    }
    unlock(&fifo_mut);
    if (have == 1) {
      // "compress" the block
      int h = block;
      for (int i = 0; i < 12; i = i + 1) {
        h = (h * 31 + i) % 65536;
      }
      lock(&fifo_mut);
      consumed = consumed + 1;
      unlock(&fifo_mut);
      done_work = done_work + 1;
    } else {
      yield();
    }
  }
}

fn main() {
  int t1 = spawn(compressor, 1);
  int t2 = spawn(compressor, 2);
  for (int b = 0; b < 48; b = b + 1) {
    lock(&fifo_mut);
    queue[qtail % 32] = b * 7;
    qtail = qtail + 1;
    produced = produced + 1;
    unlock(&fifo_mut);
  }
  // BUG: tear down the fifo without waiting for the compressors
  fifo_freed = 1;
  join(t1);
  join(t2);
  print(consumed);
}|}

let pbzip2 =
  { name = "pbzip2";
    program_description = "Parallel file compressor (ver. 0.9.4)";
    description =
      "A data race on variable fifo->mut between main thread and the \
       compressor threads.";
    source = pbzip2_source;
    root_cause_line = line_of_substring pbzip2_source "fifo_freed = 1;";
    failure_line = line_of_substring pbzip2_source "assert(fifo_freed == 0" }

(* ---- Aget: data race on bwritten ---- *)

let aget_source =
  {|// Aget (ver. 0.57) model: data race on bwritten between downloader
// threads and the signal handler thread.
global int bwritten;
global int sig_seen;
global int total;

fn downloader(int chunks) {
  for (int i = 0; i < chunks; i = i + 1) {
    // "download" a block
    int n = 8;
    for (int j = 0; j < 6; j = j + 1) {
      n = n + j % 3;
    }
    // BUG: read-modify-write without holding a lock
    int cur = bwritten;
    cur = cur + n;
    yield();
    bwritten = cur;
  }
}

fn sighandler(int n) {
  // the signal handler samples bwritten for the progress display
  sig_seen = bwritten;
}

fn main() {
  total = 2 * 10 * (8 + 0 + 1 + 2 + 0 + 1 + 2);
  int t1 = spawn(downloader, 10);
  int t2 = spawn(downloader, 10);
  int s = spawn(sighandler, 0);
  join(t1);
  join(t2);
  join(s);
  print(bwritten);
  assert(bwritten == total, "aget: bwritten lost an update");
}|}

let aget =
  { name = "Aget";
    program_description = "Parallel downloader (ver. 0.57)";
    description =
      "A data race on variable bwritten between downloader threads and \
       the signal handler thread.";
    source = aget_source;
    root_cause_line = line_of_substring aget_source "int cur = bwritten;";
    failure_line = line_of_substring aget_source "assert(bwritten == total" }

(* ---- mozilla: destroyed hash table dereferenced ---- *)

let mozilla_source =
  {|// mozilla (ver. 1.9.1) model: one thread destroys
// rt->scriptFilenameTable while another sweeps it and crashes.
global int script_table;
global int table_size;
global int swept;

fn js_destroy_context(int n) {
  // simulate a little teardown work before the destroy
  int w = 0;
  for (int i = 0; i < 3; i = i + 1) {
    w = w + i;
  }
  // BUG: destroy the table while the GC may still sweep it
  script_table = 0 - 1000000;
  for (int d = 0; d < 60; d = d + 1) {
    w = w + d;
  }
  table_size = 0;
}

fn js_sweep_script_filenames(int n) {
  for (int i = 0; i < table_size; i = i + 1) {
    // crashes (memory fault) when the table was destroyed under us:
    // script_table is dangling after js_destroy_context
    int entry = peek(script_table + i);
    swept = swept + entry;
    yield();
  }
}

fn main() {
  // build the filename table on the heap
  script_table = alloc(64);
  table_size = 64;
  for (int i = 0; i < 64; i = i + 1) {
    poke(script_table + i, 100 + i);
  }
  int gc = spawn(js_sweep_script_filenames, 0);
  int destroyer = spawn(js_destroy_context, 0);
  join(gc);
  join(destroyer);
  print(swept);
}|}

let mozilla =
  { name = "mozilla";
    program_description = "Web browser (ver. 1.9.1)";
    description =
      "A data race on variable rt->scriptFilenameTable. One thread \
       destroys a hash table, and another thread crashes in \
       js_SweepScriptFilenames when accessing this hash table.";
    source = mozilla_source;
    root_cause_line = line_of_substring mozilla_source "script_table = 0 - 1000000;";
    failure_line = line_of_substring mozilla_source "int entry = peek(script_table + i);" }

(* ---- dcl: double-checked initialization without a fence ---- *)

let dcl_source =
  {|// Double-checked lazy init without synchronization: the guard flag is
// published before the payload is written, so a second thread can see
// flag set and read the uninitialized payload.
global int flag;
global int data;

fn worker(int id) {
  if (flag == 0) {
    // BUG: publish the guard before the payload is initialized
    flag = 1;
    int w = 0;
    for (int i = 0; i < 40; i = i + 1) {
      w = w + i;
    }
    data = 42;
  }
  int v = data;
  assert(v == 42, "dcl: read uninitialized singleton");
}

fn main() {
  int t1 = spawn(worker, 1);
  int t2 = spawn(worker, 2);
  join(t1);
  join(t2);
  print(data);
}|}

let dcl =
  { name = "dcl";
    program_description = "Lazy-initialized shared singleton";
    description =
      "A data race on the singleton payload: the initializing thread \
       publishes the guard flag before writing the payload, so a racing \
       thread observes the guard and reads uninitialized data.";
    source = dcl_source;
    root_cause_line = line_of_substring dcl_source "int v = data;";
    failure_line = line_of_substring dcl_source "assert(v == 42" }

(* ---- counter: unlocked read-modify-write next to a locked one ---- *)

let counter_source =
  {|// Shared counter incremented by two threads: one holds the lock, the
// other does an unlocked read-modify-write and loses updates.
global int counter;
global int m;

fn locked_adder(int n) {
  for (int i = 0; i < 6; i = i + 1) {
    lock(&m);
    counter = counter + 1;
    unlock(&m);
  }
}

fn racy_adder(int n) {
  for (int i = 0; i < 6; i = i + 1) {
    // BUG: read-modify-write without holding the lock
    int c = counter;
    yield();
    counter = c + 1;
  }
}

fn main() {
  int t1 = spawn(locked_adder, 0);
  int t2 = spawn(racy_adder, 0);
  join(t1);
  join(t2);
  print(counter);
  assert(counter == 12, "counter: lost update");
}|}

let counter =
  { name = "counter";
    program_description = "Shared counter with mixed locking discipline";
    description =
      "A data race on a shared counter: one thread increments under the \
       mutex, another does an unlocked read-modify-write, losing updates.";
    source = counter_source;
    root_cause_line = line_of_substring counter_source "int c = counter;";
    failure_line = line_of_substring counter_source "assert(counter == 12" }

(* ---- condvar: missed signal through a non-atomic check/wait ---- *)

let condvar_source =
  {|// Missed condvar signal: the producer sets the predicate and signals
// without the mutex, so the wakeup can fire in the waiter's window
// between checking the predicate and blocking -- the signal is lost and
// the waiter never sets done.
global int ready;
global int done;
global int m;
global int cv;

fn waiter(int n) {
  lock(&m);
  if (ready == 0) {
    wait(&cv, &m);
  }
  unlock(&m);
  done = 1;
}

fn main() {
  int t = spawn(waiter, 0);
  // BUG: predicate write and signal race with the waiter's check
  ready = 1;
  signal(&cv);
  int w = 0;
  for (int i = 0; i < 400; i = i + 1) {
    w = w + i;
  }
  int d = done;
  print(w);
  assert(d == 1, "condvar: missed signal");
}|}

let condvar =
  { name = "condvar";
    program_description = "Producer/waiter handshake on a condition variable";
    description =
      "A missed-signal bug: the producer writes the predicate and signals \
       without holding the mutex, racing the waiter's check-then-wait \
       window; the lost wakeup leaves the handshake incomplete.";
    source = condvar_source;
    root_cause_line = line_of_substring condvar_source "int d = done;";
    failure_line = line_of_substring condvar_source "assert(d == 1" }

let all = [ pbzip2; aget; mozilla; dcl; counter; condvar ]

let find name = List.find_opt (fun b -> b.name = name) all

let compile (b : t) : Dr_isa.Program.t =
  match Dr_lang.Codegen.compile_result ~name:b.name ~file:(b.name ^ ".c") b.source with
  | Ok p -> p
  | Error msg -> invalid_arg (Printf.sprintf "bug workload %s: %s" b.name msg)

(** Search seeded schedules until the bug manifests; returns the seed and
    the stop reason.  All three bugs manifest within a few hundred seeds. *)
let find_failing_seed ?(max_seed = 5000) ?(max_quantum = 3) (b : t) :
    (int * Dr_machine.Driver.stop_reason) option =
  let prog = compile b in
  let rec go seed =
    if seed > max_seed then None
    else begin
      let m = Dr_machine.Machine.create prog in
      match
        Dr_machine.Driver.run ~max_steps:1_000_000 m
          (Dr_machine.Driver.Seeded { seed; max_quantum })
      with
      | Dr_machine.Driver.Terminated (Dr_machine.Machine.Assert_failed _ | Dr_machine.Machine.Fault _) as r ->
        Some (seed, r)
      | _ -> go (seed + 1)
    end
  in
  go 0
