(** Maple's active scheduling phase, integrated with PinPlay logging
    (paper §6, "Integration with Maple").

    Given a candidate iRoot [pre -> post], the active scheduler controls
    thread priorities to force the [pre] instruction to execute before a
    thread poised at [post]: a thread whose next instruction is [post] is
    held back (deprioritized) until some other thread has executed [pre];
    then the waiting thread runs immediately, realizing the candidate
    interleaving.  Runs happen {e under the PinPlay logger}, so the moment
    an assertion fails the buggy execution is already captured in a
    pinball ready for cyclic debugging — the integration the paper added
    to Maple's sources.

    A fairness bound keeps a candidate from starving: if only post-waiters
    are runnable, one of them is released (that attempt then simply fails
    to expose the ordering). *)

open Dr_machine

type attempt = {
  iroot : Iroot.t;
  realized : bool;  (** pre executed while a thread waited at post *)
  stop : Driver.stop_reason;
}

type exposed = {
  pinball : Dr_pinplay.Pinball.t;
  failing_iroot : Iroot.t;
  outcome : Machine.outcome;
  attempts : attempt list;  (** all attempts, last one failing *)
}

(** A scheduling policy that tries to realize [iroot].  [realized] is set
    when the forced ordering actually happened. *)
let policy_for (iroot : Iroot.t) ~(realized : bool ref) : Driver.policy =
  let pre_done = ref false in
  let rr = ref 0 in
  Driver.Custom
    (fun m ~last ->
      ignore last;
      let n = Machine.num_threads m in
      let runnable tid = (Machine.thread m tid).Machine.state = Machine.Runnable in
      let next_pc tid = (Machine.thread m tid).Machine.pc in
      let find p =
        let found = ref None in
        for k = 0 to n - 1 do
          let tid = (!rr + k) mod n in
          if !found = None && runnable tid && p tid then found := Some tid
        done;
        !found
      in
      let pick =
        if not !pre_done then begin
          match find (fun tid -> next_pc tid = iroot.Iroot.pre) with
          | Some tid ->
            (* someone is poised at pre: run it; if a post-waiter exists
               the candidate ordering is realized *)
            pre_done := true;
            if find (fun t -> t <> tid && next_pc t = iroot.Iroot.post) <> None
            then realized := true;
            Some tid
          | None -> (
            (* hold back threads waiting at post *)
            match find (fun tid -> next_pc tid <> iroot.Iroot.post) with
            | Some tid -> Some tid
            | None -> find (fun _ -> true) (* only post-waiters: release one *))
        end
        else begin
          (* pre executed: give priority to post-waiters *)
          match find (fun tid -> next_pc tid = iroot.Iroot.post) with
          | Some tid -> Some tid
          | None -> find (fun _ -> true)
        end
      in
      (match pick with Some tid -> rr := tid | None -> ());
      pick)

(** Try to expose a bug by forcing [iroot]; the run is recorded by the
    PinPlay logger from the start. *)
let try_iroot ?(input = [||]) ?(max_steps = 2_000_000)
    (prog : Dr_isa.Program.t) (iroot : Iroot.t) :
    (Dr_pinplay.Pinball.t * Machine.outcome) option * attempt =
  let realized = ref false in
  let policy = policy_for iroot ~realized in
  match Dr_pinplay.Logger.log ~policy ~input ~max_steps prog Dr_pinplay.Logger.Whole with
  | Error _ ->
    (None, { iroot; realized = !realized; stop = Driver.Deadlock })
  | Ok (pinball, stats) -> (
    let attempt = { iroot; realized = !realized; stop = stats.Dr_pinplay.Logger.stop } in
    match stats.Dr_pinplay.Logger.stop with
    | Driver.Terminated ((Machine.Assert_failed _ | Machine.Fault _) as o) ->
      (Some (pinball, o), attempt)
    | Driver.Deadlock -> (Some (pinball, Machine.Running), attempt)
    | _ -> (None, attempt))

(** Stable partition of candidate iRoots: those whose unordered
    [{pre, post}] pc pair is a static race candidate come first, each
    half keeping its original (prediction) order.  Campaigns seeded with
    static race pairs reach the racy interleaving in fewer attempts; a
    bug whose iRoot the static pass missed is still tested, just later. *)
let prioritize ~(static_pairs : (int * int) list) (candidates : Iroot.t list)
    : Iroot.t list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (a, b) -> Hashtbl.replace tbl (min a b, max a b) ())
    static_pairs;
  let hit (ir : Iroot.t) =
    let a = ir.Iroot.pre and b = ir.Iroot.post in
    Hashtbl.mem tbl (min a b, max a b)
  in
  let yes, no = List.partition hit candidates in
  yes @ no

(** Synthesize candidate iRoots directly from static race pairs: both
    orderings of every pair, with the idiom read off the access kinds at
    the two pcs.  Profiling only predicts flips of {e observed}
    dependencies, so a race whose buggy ordering never shows up under the
    profile seeds is invisible to prediction — the static detector can
    still name the pcs, and forcing either ordering of the pair tests it.
    Orderings already in [candidates] (same pre/post pcs) are dropped. *)
let seed_candidates ~(prog : Dr_isa.Program.t)
    ~(static_pairs : (int * int) list) (candidates : Iroot.t list) :
    Iroot.t list =
  let covered = Hashtbl.create 32 in
  List.iter
    (fun (ir : Iroot.t) ->
      Hashtbl.replace covered (ir.Iroot.pre, ir.Iroot.post) ())
    candidates;
  let is_write pc =
    pc >= 0
    && pc < Array.length prog.Dr_isa.Program.code
    &&
    match prog.Dr_isa.Program.code.(pc) with
    | Dr_isa.Instr.Store _ -> true
    | _ -> false
  in
  let idiom a b =
    match (is_write a, is_write b) with
    | true, true -> Iroot.WW
    | true, false -> Iroot.WR
    | _, _ -> Iroot.RW
  in
  let mk a b =
    if Hashtbl.mem covered (a, b) then []
    else begin
      Hashtbl.replace covered (a, b) ();
      [ { Iroot.pre = a; post = b; idiom = idiom a b } ]
    end
  in
  List.concat_map
    (fun (a, b) -> if a = b then mk a b else mk a b @ mk b a)
    static_pairs

(** Full Maple loop: profile, predict, and actively test candidates until
    a bug is exposed (assertion failure, fault, or deadlock).  Returns the
    recorded pinball of the first failing run.  [static_pairs] seeds the
    campaign: predicted candidates matching a static pair run first, then
    orderings synthesized from the static pairs ({!seed_candidates}), then
    the remaining predictions. *)
let expose ?seeds ?(input = [||]) ?(max_candidates = 64) ?max_steps
    ?static_pairs (prog : Dr_isa.Program.t) : exposed option =
  let obs = Profiler.profile ?seeds ~input prog in
  let attempts = ref [] in
  let rec go = function
    | [] -> None
    | iroot :: rest -> (
      match try_iroot ~input ?max_steps prog iroot with
      | Some (pinball, outcome), attempt ->
        attempts := attempt :: !attempts;
        Some
          { pinball; failing_iroot = iroot; outcome;
            attempts = List.rev !attempts }
      | None, attempt ->
        attempts := attempt :: !attempts;
        go rest)
  in
  let ordered =
    match static_pairs with
    | Some pairs ->
      let reordered = prioritize ~static_pairs:pairs obs.Profiler.candidates in
      let synth =
        seed_candidates ~prog ~static_pairs:pairs obs.Profiler.candidates
      in
      let hit_tbl = Hashtbl.create 32 in
      List.iter
        (fun (a, b) -> Hashtbl.replace hit_tbl (min a b, max a b) ())
        pairs;
      let hit (ir : Iroot.t) =
        let a = ir.Iroot.pre and b = ir.Iroot.post in
        Hashtbl.mem hit_tbl (min a b, max a b)
      in
      let yes, no = List.partition hit reordered in
      yes @ synth @ no
    | None -> obs.Profiler.candidates
  in
  let candidates = List.filteri (fun i _ -> i < max_candidates) ordered in
  go candidates
