(** Maple's active scheduling phase, integrated with PinPlay logging
    (paper §6, "Integration with Maple").

    For a candidate iRoot [pre -> post], the scheduler holds back any
    thread poised at [post] until another thread executes [pre], forcing
    the untested ordering.  Runs happen under the PinPlay logger, so an
    exposed failure is already captured in a replayable pinball. *)

type attempt = {
  iroot : Iroot.t;
  realized : bool;  (** the forced ordering actually happened *)
  stop : Dr_machine.Driver.stop_reason;
}

type exposed = {
  pinball : Dr_pinplay.Pinball.t;  (** the recorded buggy execution *)
  failing_iroot : Iroot.t;
  outcome : Dr_machine.Machine.outcome;
  attempts : attempt list;  (** all attempts, the failing one last *)
}

(** A scheduling policy that tries to realize [iroot]; sets [realized]
    when the forced ordering occurs. *)
val policy_for : Iroot.t -> realized:bool ref -> Dr_machine.Driver.policy

(** One actively-scheduled, logger-recorded run forcing [iroot].  Returns
    the pinball and outcome when the run failed (assert/fault/deadlock). *)
val try_iroot :
  ?input:int array ->
  ?max_steps:int ->
  Dr_isa.Program.t ->
  Iroot.t ->
  (Dr_pinplay.Pinball.t * Dr_machine.Machine.outcome) option * attempt

(** Stable partition of candidate iRoots: those whose unordered
    [{pre, post}] pc pair appears in [static_pairs] first, both halves
    keeping their original order. *)
val prioritize : static_pairs:(int * int) list -> Iroot.t list -> Iroot.t list

(** Synthesize candidate iRoots from static race pairs: both orderings of
    every pair (idiom read off the access kinds at the pcs), minus
    orderings already present in the given candidate list.  This is what
    lets a campaign test a racy ordering that profiling never observed
    and so never predicted. *)
val seed_candidates :
  prog:Dr_isa.Program.t ->
  static_pairs:(int * int) list ->
  Iroot.t list ->
  Iroot.t list

(** The full Maple loop: profile, predict, actively test candidates until
    a bug is exposed.  [static_pairs] (e.g. from the static race
    detector) seeds the campaign: matching predictions first, then
    {!seed_candidates} orderings, then the rest. *)
val expose :
  ?seeds:int list ->
  ?input:int array ->
  ?max_candidates:int ->
  ?max_steps:int ->
  ?static_pairs:(int * int) list ->
  Dr_isa.Program.t ->
  exposed option
