(** Code-exclusion region construction from a dynamic slice (paper §4,
    Fig. 6a: the "special slice file").

    For each thread, the maximal runs of trace records {e not} in the
    slice become exclusion regions
    [[startPc:sinstance, endPc:einstance)]: the start is the first
    excluded record, the (exclusive) end is the thread's next included
    record.  A trailing run extends to the region end ([x_end = None]).

    Synchronization instructions (spawn/join/lock/unlock/exit/alloc) and
    thread-final returns are always kept, whether or not the slice
    contains them: their effects (thread creation, lock state, heap
    growth) are not expressible as memory/register injections.  Replay of
    the slice pinball therefore preserves the region's thread structure
    while skipping all other non-slice computation. *)

type stats = {
  total_records : int;
  included_records : int;  (** slice + forced sync instructions *)
  excluded_records : int;
  regions : int;
}

(** Should this record be kept even if it is not in the slice? *)
let forced (r : Dr_slicing.Trace.record) =
  Dr_slicing.Trace.is_sync r || Dr_slicing.Trace.is_final_ret r

(** Build the exclusion regions for [slice] over the collector's
    per-thread traces. *)
let build ~(slice : Dr_slicing.Slicer.t) ~(collector : Dr_slicing.Collector.result)
    : Dr_pinplay.Relogger.exclusion list * stats =
  let gt = slice.Dr_slicing.Slicer.gt in
  let n = Dr_slicing.Segment_store.length collector.Dr_slicing.Collector.records in
  let in_slice = Dr_util.Bitset.create n in
  Array.iter
    (fun pos ->
      let r = Dr_slicing.Global_trace.record gt pos in
      Dr_util.Bitset.add in_slice r.Dr_slicing.Trace.gseq)
    slice.Dr_slicing.Slicer.positions;
  let keep (r : Dr_slicing.Trace.record) =
    Dr_util.Bitset.mem in_slice r.Dr_slicing.Trace.gseq || forced r
  in
  let exclusions = ref [] in
  let included = ref 0 and excluded = ref 0 and regions = ref 0 in
  Array.iteri
    (fun tid gseqs ->
      let run_start = ref None in
      Array.iter
        (fun g ->
          let r =
            Dr_slicing.Segment_store.get collector.Dr_slicing.Collector.records g
          in
          if keep r then begin
            incr included;
            match !run_start with
            | Some (spc, sinst) ->
              exclusions :=
                { Dr_pinplay.Relogger.x_tid = tid; x_start_pc = spc;
                  x_start_instance = sinst;
                  x_end = Some (r.Dr_slicing.Trace.pc, r.Dr_slicing.Trace.instance) }
                :: !exclusions;
              incr regions;
              run_start := None
            | None -> ()
          end
          else begin
            incr excluded;
            if !run_start = None then
              run_start := Some (r.Dr_slicing.Trace.pc, r.Dr_slicing.Trace.instance)
          end)
        gseqs;
      match !run_start with
      | Some (spc, sinst) ->
        exclusions :=
          { Dr_pinplay.Relogger.x_tid = tid; x_start_pc = spc;
            x_start_instance = sinst; x_end = None }
          :: !exclusions;
        incr regions
      | None -> ())
    collector.Dr_slicing.Collector.per_thread;
  ( List.rev !exclusions,
    { total_records = n; included_records = !included;
      excluded_records = !excluded; regions = !regions } )

(** One-call pipeline: slice -> exclusion regions -> slice pinball. *)
let slice_pinball (prog : Dr_isa.Program.t) (pinball : Dr_pinplay.Pinball.t)
    ~(slice : Dr_slicing.Slicer.t)
    ~(collector : Dr_slicing.Collector.result) :
    Dr_pinplay.Pinball.t * stats =
  let exclusions, stats = build ~slice ~collector in
  let spb = Dr_pinplay.Relogger.relog prog pinball ~exclusions in
  (spb, stats)
