(** Replaying an execution slice from a slice pinball (paper §4,
    Fig. 6b).

    The replay drives each thread's pc along its sequence of included
    instructions in the recorded global order; when a skipped code region
    is reached, its side effects are restored by applying the injection
    record (memory cells and the thread's registers).  Every [Step] event
    is a natural breakpoint, which is how the paper lets the user "step
    from the execution of one statement in the slice to the next while
    examining values of program variables". *)

open Dr_machine

let m_steps = Dr_obs.Metrics.counter "slice_replay.steps"
let m_injections = Dr_obs.Metrics.counter "slice_replay.injections"
let m_divergences = Dr_obs.Metrics.counter "slice_replay.divergences"
let t_run = Dr_obs.Metrics.timer "slice_replay.run"

exception Divergence of string

let divergence msg =
  Dr_obs.Metrics.bump m_divergences;
  raise (Divergence msg)

type t = {
  prog : Dr_isa.Program.t;
  pinball : Dr_pinplay.Pinball.t;
  machine : Machine.t;
  mutable next_event : int;
  syscall_pos : int ref;
  nondet : Machine.nondet;
  mutable last_line : int;  (** source line of the last stepped instruction *)
  mutable last_tid : int;
}

type step_result =
  | Stepped of { tid : int; pc : int; line : int }
  | Injected of { tid : int }
  | Finished of Machine.outcome
      (** machine terminated (e.g. the assert fired) *)
  | End_of_slice  (** all slice events consumed *)

let create (prog : Dr_isa.Program.t) (pinball : Dr_pinplay.Pinball.t) : t =
  if pinball.Dr_pinplay.Pinball.kind <> Dr_pinplay.Pinball.Slice then
    invalid_arg "Slice_replay.create: expected a slice pinball";
  let machine = Snapshot.restore prog pinball.Dr_pinplay.Pinball.snapshot in
  let syscall_pos = ref 0 in
  let nondet _kind =
    let syscalls = pinball.Dr_pinplay.Pinball.syscalls in
    if !syscall_pos >= Array.length syscalls then
      divergence "syscall log exhausted"
    else begin
      let v = syscalls.(!syscall_pos) in
      incr syscall_pos;
      v
    end
  in
  { prog; pinball; machine; next_event = 0; syscall_pos; nondet;
    last_line = -1; last_tid = -1 }

let machine t = t.machine

let remaining t =
  Array.length t.pinball.Dr_pinplay.Pinball.slice_events - t.next_event

let apply_injection t (inj : Dr_pinplay.Pinball.injection) =
  List.iter
    (fun (a, v) -> t.machine.Machine.mem.(a) <- v)
    inj.Dr_pinplay.Pinball.inj_mem;
  let th = Machine.thread t.machine inj.Dr_pinplay.Pinball.inj_tid in
  List.iter
    (fun (r, v) -> th.Machine.regs.(r) <- v)
    inj.Dr_pinplay.Pinball.inj_regs

(** Advance by one slice event. *)
let step (t : t) : step_result =
  let events = t.pinball.Dr_pinplay.Pinball.slice_events in
  if Machine.outcome t.machine <> Machine.Running then
    Finished (Machine.outcome t.machine)
  else if t.next_event >= Array.length events then End_of_slice
  else begin
    let ev = events.(t.next_event) in
    t.next_event <- t.next_event + 1;
    match ev with
    | Dr_pinplay.Pinball.Inject i ->
      let inj = t.pinball.Dr_pinplay.Pinball.injections.(i) in
      apply_injection t inj;
      Dr_obs.Metrics.bump m_injections;
      Injected { tid = inj.Dr_pinplay.Pinball.inj_tid }
    | Dr_pinplay.Pinball.Step { tid; pc } ->
      let th = Machine.thread t.machine tid in
      if th.Machine.state <> Machine.Runnable then
        divergence
          (Printf.sprintf "slice step schedules non-runnable tid %d at pc %d"
             tid pc);
      th.Machine.pc <- pc;
      let mev = Machine.step t.machine ~tid ~nondet:t.nondet in
      if not mev.Event.retired then
        divergence (Printf.sprintf "slice step blocked at tid %d pc %d" tid pc);
      Dr_obs.Metrics.bump m_steps;
      let line =
        Option.value ~default:(-1)
          (Dr_isa.Debug_info.line_of_pc t.prog.Dr_isa.Program.debug pc)
      in
      t.last_line <- line;
      t.last_tid <- tid;
      (match Machine.outcome t.machine with
      | Machine.Running -> Stepped { tid; pc; line }
      | o ->
        ignore o;
        Stepped { tid; pc; line })
  end

(** Step forward to the next {e statement} of the slice: the next included
    instruction whose (thread, source line) differs from the current one —
    the paper's slice-stepping GUI action. *)
let step_statement (t : t) : step_result =
  let start_line = t.last_line and start_tid = t.last_tid in
  let rec go () =
    match step t with
    | Stepped { tid; line; _ } as s ->
      if line <> start_line || tid <> start_tid || line < 0 then s else go ()
    | Injected _ -> go ()
    | other -> other
  in
  go ()

(** Run the whole slice; [on_step] is called for every executed
    instruction. *)
let run ?(on_step : (tid:int -> pc:int -> unit) option) (t : t) :
    step_result =
  Dr_obs.Obs.with_span ~cat:"slice-replay" "slice_replay.run" @@ fun sp ->
  Dr_obs.Metrics.time t_run @@ fun () ->
  let steps = ref 0 and injected = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Dr_obs.Obs.add_attr sp "steps" (Dr_obs.Obs.Int !steps);
      Dr_obs.Obs.add_attr sp "injections" (Dr_obs.Obs.Int !injected))
  @@ fun () ->
  let rec go () =
    match step t with
    | Stepped { tid; pc; _ } ->
      incr steps;
      (match on_step with Some f -> f ~tid ~pc | None -> ());
      if Machine.outcome t.machine <> Machine.Running then
        Finished (Machine.outcome t.machine)
      else go ()
    | Injected _ ->
      incr injected;
      go ()
    | other -> other
  in
  go ()
