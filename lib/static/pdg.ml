(** Static program-dependence graph and backward static slicer.

    The PDG is built at pc granularity over a whole-program {e super-CFG}
    whose edges over-approximate every per-thread transition the machine
    can make: fallthrough and direct jumps, resolved indirect targets,
    call → callee-entry plus a conservative call → continuation bypass,
    ret → every continuation of the function's call sites, and
    spawn → every address-taken entry (so the parent's argument write
    reaches the child's body).  Register dependences come from reaching
    definitions over register {e numbers} (thread-blind — a sound superset
    of the dynamic thread-local resolution); memory is treated as one
    global cell, so every memory-reading pc depends on every
    memory-writing pc (memory is shared across threads, and any
    flow-sensitive treatment would be unsound under interleaving).

    Control dependences use the {e region} semantics the dynamic
    Xin–Zhang tracker implements: a block is control-dependent on branch
    [b] if it is reachable from a successor of [b] without passing through
    [b]'s immediate post-dominator — a superset of the
    Ferrante–Ottenstein–Warren marks, matching how the collector
    attributes cd within [branch, ipdom) regions.  Interprocedural control
    flows through the invocation-controllers fixpoint
    [IC(f) = ∪ over call sites cs of f: directctrl(cs) ∪ IC(caller(cs))],
    the static analogue of the frame rule.

    The static backward slice of a pc is therefore a sound upper bound on
    the pc set of {e any} dynamic slice with that criterion pc — the
    property conformance oracle 6 checks on every fuzzed program whose
    refined CFG is fully resolved. *)

open Dr_isa
module Bitset = Dr_util.Bitset
module Cfg = Dr_cfg.Cfg

type t = {
  prog : Program.t;
  cfg : Cfg.t;
  cg : Callgraph.t;
  reg_deps : int list array;  (** pc -> def pcs of its register uses *)
  mem_reader : bool array;  (** pc -> may read memory *)
  mem_writers : int list;  (** pcs that may write memory *)
  ctrl_parents : int list array;  (** pc -> controlling branch pcs (intra) *)
  ic : int list array;  (** function index -> invocation-controller pcs *)
  unresolved : int list;  (** indirect jump/call pcs with no known targets *)
}

(** No unresolved indirect jumps or calls remain: every super-CFG edge set
    is complete, so static slices are sound upper bounds. *)
let fully_resolved t = t.unresolved = []

let address_taken_entries t =
  List.map (fun i -> t.cg.Callgraph.entries.(i)) t.cg.Callgraph.address_taken

let build ?(indirect_targets : (int * int list) list = []) (prog : Program.t)
    : t =
  let cfg = Cfg.build ~indirect_targets prog in
  let cg = Callgraph.build ~indirect_targets prog ~cfg in
  let code = prog.Program.code in
  let n = Array.length code in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (pc, ts) -> Hashtbl.replace tbl pc ts) indirect_targets;
  (* return pcs per function, for ret -> continuation edges *)
  let nf = Callgraph.num_functions cg in
  let rets = Array.make nf [] in
  for pc = 0 to n - 1 do
    if code.(pc) = Instr.Ret then begin
      let f = cg.Callgraph.fn_of_pc.(pc) in
      if f >= 0 then rets.(f) <- pc :: rets.(f)
    end
  done;
  (* ---- super-CFG ---- *)
  let succs = Array.make n [] in
  let add p q = if p >= 0 && p < n && q >= 0 && q < n then succs.(p) <- q :: succs.(p) in
  let unresolved = ref [] in
  let spawn_entries =
    List.map (fun i -> cg.Callgraph.entries.(i)) cg.Callgraph.address_taken
  in
  for pc = 0 to n - 1 do
    match code.(pc) with
    | Instr.Jmp t -> add pc t
    | Instr.Jcc (_, t) ->
      add pc t;
      add pc (pc + 1)
    | Instr.Jind _ -> (
      match Hashtbl.find_opt tbl pc with
      | Some ts -> List.iter (add pc) ts
      | None -> unresolved := pc :: !unresolved)
    | Instr.Call t ->
      add pc t;
      add pc (pc + 1);
      let f = if t >= 0 && t < n then cg.Callgraph.fn_of_pc.(t) else -1 in
      if f >= 0 then List.iter (fun r -> add r (pc + 1)) rets.(f)
    | Instr.Callind _ ->
      add pc (pc + 1);
      (match Hashtbl.find_opt tbl pc with
      | Some ts ->
        List.iter
          (fun t ->
            add pc t;
            let f = if t >= 0 && t < n then cg.Callgraph.fn_of_pc.(t) else -1 in
            if f >= 0 then List.iter (fun r -> add r (pc + 1)) rets.(f))
          ts
      | None -> unresolved := pc :: !unresolved)
    | Instr.Ret | Instr.Halt | Instr.Sys Instr.Exit -> ()
    | Instr.Sys Instr.Spawn ->
      add pc (pc + 1);
      List.iter (add pc) spawn_entries
    | _ -> add pc (pc + 1)
  done;
  let preds = Array.make n [] in
  Array.iteri (fun p qs -> List.iter (fun q -> preds.(q) <- p :: preds.(q)) qs) succs;
  (* ---- reaching definitions over register def sites ---- *)
  let num_sites = ref 0 in
  let sites_at = Array.make n [] in
  for pc = 0 to n - 1 do
    Defuse.iter_mask
      (fun r ->
        sites_at.(pc) <- (!num_sites, r) :: sites_at.(pc);
        incr num_sites)
      (Defuse.def_mask code.(pc))
  done;
  let num_sites = !num_sites in
  let sites_of_reg = Array.init Reg.file_size (fun _ -> Bitset.create num_sites) in
  let site_pcs_of_reg = Array.make Reg.file_size [] in
  Array.iteri
    (fun pc l ->
      List.iter
        (fun (s, r) ->
          Bitset.add sites_of_reg.(r) s;
          site_pcs_of_reg.(r) <- (s, pc) :: site_pcs_of_reg.(r))
        l)
    sites_at;
  let gen pc =
    let b = Bitset.create num_sites in
    List.iter (fun (s, _) -> Bitset.add b s) sites_at.(pc);
    b
  in
  let kill pc =
    let b = Bitset.create num_sites in
    Defuse.iter_mask
      (fun r -> ignore (Bitset.union_into ~src:sites_of_reg.(r) ~dst:b))
      (Defuse.strong_def_mask code.(pc));
    b
  in
  let rd =
    Dataflow.solve ~num_nodes:n ~num_facts:num_sites ~direction:Dataflow.Forward
      ~succs:(fun p -> succs.(p))
      ~preds:(fun p -> preds.(p))
      ~gen ~kill ()
  in
  let reg_deps =
    Array.init n (fun pc ->
        let deps = ref [] in
        Defuse.iter_mask
          (fun r ->
            List.iter
              (fun (s, dpc) ->
                if Bitset.mem rd.Dataflow.in_.(pc) s then deps := dpc :: !deps)
              site_pcs_of_reg.(r))
          (Defuse.use_mask code.(pc));
        List.sort_uniq compare !deps)
  in
  let mem_reader = Array.init n (fun pc -> Defuse.reads_mem code.(pc)) in
  let mem_writers =
    List.filter (fun pc -> Defuse.writes_mem code.(pc)) (List.init n Fun.id)
  in
  (* ---- control dependences (region semantics) ---- *)
  let ctrl_parents = Array.make n [] in
  List.iter
    (fun (f : Cfg.func) ->
      let nb = Array.length f.Cfg.blocks in
      let block_parents = Array.make nb [] in
      Array.iter
        (fun (b : Cfg.block) ->
          let last = b.Cfg.end_pc - 1 in
          if Instr.is_branch code.(last) then begin
            let in_region = Array.make nb false in
            if b.Cfg.unknown_succs then
              (* unresolved indirect jump: the region cannot be tracked, so
                 conservatively everything in the function is controlled *)
              Array.fill in_region 0 nb true
            else begin
              let stop = f.Cfg.ipdom.(b.Cfg.id) in
              let rec go x =
                if x <> stop && not in_region.(x) then begin
                  in_region.(x) <- true;
                  List.iter go f.Cfg.blocks.(x).Cfg.succs
                end
              in
              List.iter go b.Cfg.succs
            end;
            for x = 0 to nb - 1 do
              if in_region.(x) then block_parents.(x) <- last :: block_parents.(x)
            done
          end)
        f.Cfg.blocks;
      for pc = f.Cfg.fentry to f.Cfg.fend - 1 do
        if pc < n then
          ctrl_parents.(pc) <- block_parents.(f.Cfg.block_of_pc.(pc - f.Cfg.fentry))
      done)
    cfg.Cfg.funcs;
  (* ---- invocation controllers: IC(f) = ∪ cs→f directctrl(cs) ∪ IC(caller) *)
  let ic_sets = Array.init nf (fun _ -> Hashtbl.create 8) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (s : Callgraph.site) ->
        let contrib = Hashtbl.create 8 in
        List.iter (fun b -> Hashtbl.replace contrib b ()) ctrl_parents.(s.Callgraph.site_pc);
        if s.Callgraph.caller >= 0 then
          Hashtbl.iter (fun b () -> Hashtbl.replace contrib b ())
            ic_sets.(s.Callgraph.caller);
        List.iter
          (fun g ->
            if g >= 0 then
              Hashtbl.iter
                (fun b () ->
                  if not (Hashtbl.mem ic_sets.(g) b) then begin
                    Hashtbl.replace ic_sets.(g) b ();
                    changed := true
                  end)
                contrib)
          s.Callgraph.callees)
      cg.Callgraph.sites
  done;
  let ic =
    Array.map
      (fun h -> List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) h []))
      ic_sets
  in
  { prog; cfg; cg; reg_deps; mem_reader; mem_writers; ctrl_parents; ic;
    unresolved = List.sort compare !unresolved }

(** Pc set of the static backward slice from [pc]: transitive closure over
    register def-use chains, the conservative memory edges, intra-region
    control dependences and invocation controllers. *)
let backward_slice (t : t) ~pc : Bitset.t =
  let n = Array.length t.prog.Program.code in
  let inslice = Bitset.create n in
  let mem_pulled = ref false in
  let stack = ref [ pc ] in
  let push p = if p >= 0 && p < n && not (Bitset.mem inslice p) then begin
      Bitset.add inslice p;
      stack := p :: !stack
    end
  in
  Bitset.add inslice pc;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | p :: rest ->
      stack := rest;
      List.iter push t.reg_deps.(p);
      List.iter push t.ctrl_parents.(p);
      let f = Callgraph.fn_at t.cg p in
      if f >= 0 then List.iter push t.ic.(f);
      if t.mem_reader.(p) && not !mem_pulled then begin
        mem_pulled := true;
        List.iter push t.mem_writers
      end
  done;
  inslice
