(** Generic worklist dataflow engine.

    Solves forward or backward monotone gen/kill problems with {e union}
    meet (may-analyses) over an explicit graph: nodes are integers
    [0, num_nodes), edges come from [succs]/[preds] callbacks, and facts
    are {!Dr_util.Bitset} rows of width [num_facts].  The per-node transfer
    is the classic [out = gen ∪ (in \ kill)].

    The engine is instantiated in this library for reaching definitions
    (forward, over the whole-program super-CFG in {!Pdg}), register
    liveness (backward) and maybe-uninitialized registers (forward, a
    kill-only problem) in {!Analysis}.  Callers supply [entry] facts for
    boundary nodes (e.g. the function entry for uninitialized-register
    analysis); everything else starts empty and grows monotonically, so
    the fixpoint is reached without ever clearing a row. *)

module Bitset = Dr_util.Bitset

type direction = Forward | Backward

type result = {
  in_ : Bitset.t array;  (** facts at node entry *)
  out_ : Bitset.t array;  (** facts at node exit *)
}

(** [solve ~num_nodes ~num_facts ~direction ~succs ~preds ~gen ~kill ()]
    runs the fixpoint and returns per-node entry/exit fact rows.  [gen]
    and [kill] are consulted once per node.  [entry] injects constant
    boundary facts into a node's meet input (its [in_] for forward
    problems, its [out_] for backward ones). *)
let solve ~num_nodes ~num_facts ~direction ~(succs : int -> int list)
    ~(preds : int -> int list) ~(gen : int -> Bitset.t)
    ~(kill : int -> Bitset.t) ?(entry : int -> Bitset.t option = fun _ -> None)
    () : result =
  let mk () = Array.init num_nodes (fun _ -> Bitset.create num_facts) in
  let in_ = mk () and out_ = mk () in
  (* [pre] is the meet side, [post] the transfer side; [downstream] lists
     the nodes whose meet input consumes our [post] row. *)
  let pre, post, downstream =
    match direction with
    | Forward -> (in_, out_, succs)
    | Backward -> (out_, in_, preds)
  in
  let gens = Array.init num_nodes gen and kills = Array.init num_nodes kill in
  for n = 0 to num_nodes - 1 do
    match entry n with
    | Some facts -> ignore (Bitset.union_into ~src:facts ~dst:pre.(n))
    | None -> ()
  done;
  let queue = Queue.create () in
  let queued = Array.make num_nodes false in
  let enqueue n =
    if not queued.(n) then begin
      queued.(n) <- true;
      Queue.push n queue
    end
  in
  (* Seed roughly in propagation order: pcs ascend along fallthrough
     edges, so forward problems converge fastest low-to-high. *)
  (match direction with
  | Forward -> for n = 0 to num_nodes - 1 do enqueue n done
  | Backward -> for n = num_nodes - 1 downto 0 do enqueue n done);
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    queued.(n) <- false;
    let changed =
      Bitset.transfer ~gen:gens.(n) ~kill:kills.(n) ~src:pre.(n) ~dst:post.(n)
    in
    if changed then
      List.iter
        (fun m ->
          if Bitset.union_into ~src:post.(n) ~dst:pre.(m) then enqueue m)
        (downstream n)
  done;
  { in_; out_ }
