(** Binary lint pass suite over a program image.

    Five passes, all purely static (run on the unrefined CFG, as a
    front-line audit before any dynamic information exists):

    - {b unreachable-blocks}: basic blocks unreachable from their function
      entry.  Blocks ending in an {e unresolved} indirect jump are treated
      as possibly jumping anywhere in their function, so jump-table case
      bodies are not false positives; what remains is genuinely dead code
      (e.g. statements after an unconditional [return]).
    - {b maybe-uninit}: uses of possibly-uninitialized registers
      ({!Analysis.maybe_uninit}).
    - {b indirect-audit}: every indirect jump/call whose targets are
      statically unknown, with refinement suggestions — jump-table entries
      found in the initial data image for [Jind], address-taken function
      entries for [Callind] — i.e. the candidates a dynamic refinement run
      is expected to confirm (paper §5.1).
    - {b save-restore}: prologue/epilogue discipline — for every [Ret],
      the pops before it must restore exactly the prologue's pushes in
      reverse order.  The candidate scan uses the same idiom rules as
      {!Dr_slicing.Prune.static_candidates} and is cross-checked against
      that module's output when the caller provides it.
    - {b races}: ranked static data-race candidate pairs from {!Race} —
      conflicting shared accesses reachable in distinct threads with
      disjoint must-locksets and no static happens-before order.

    [run ?passes] selects a subset by name (see {!pass_names}); passes
    left out contribute no findings and are absent from [passes_run]. *)

open Dr_isa
module Cfg = Dr_cfg.Cfg

type unreachable_block = {
  ub_fentry : int;
  ub_block : int;
  ub_start : int;
  ub_end : int;
}

type uninit = { un_fentry : int; un_pc : int; un_reg : Reg.t }

type indirect = {
  ind_pc : int;
  ind_kind : [ `Jind | `Callind ];
  ind_reg : Reg.t;
  ind_suggestions : int list;  (** candidate target pcs *)
}

type sr_kind =
  | Missing_restore  (** a prologue save with no matching epilogue pop *)
  | Unmatched_restore  (** an epilogue pop with no matching prologue push *)
  | Order_mismatch  (** pops are not the reverse of the pushes *)
  | Candidate_mismatch  (** disagreement with [Prune.static_candidates] *)

let sr_kind_name = function
  | Missing_restore -> "missing-restore"
  | Unmatched_restore -> "unmatched-restore"
  | Order_mismatch -> "order-mismatch"
  | Candidate_mismatch -> "candidate-mismatch"

type sr_issue = { sr_fentry : int; sr_kind : sr_kind; sr_pc : int; sr_reg : Reg.t }

type t = {
  unreachable : unreachable_block list;
  uninit : uninit list;
  indirect : indirect list;
  save_restore : sr_issue list;
  candidate_saves : int;
  candidate_restores : int;
  races : Race.pair list;  (** ranked, best first *)
  race_mutexes : int;  (** resolved mutex addresses seen by the race pass *)
  passes_run : string list;  (** subset of {!pass_names}, in canonical order *)
}

let pass_names =
  [ "unreachable-blocks"; "maybe-uninit"; "indirect-audit"; "save-restore";
    "races" ]

let findings_total t =
  List.length t.unreachable + List.length t.uninit + List.length t.indirect
  + List.length t.save_restore + List.length t.races

(* ---- pass: unreachable blocks ---- *)

let unreachable_blocks (cfg : Cfg.t) : unreachable_block list =
  List.concat_map
    (fun (f : Cfg.func) ->
      let nb = Array.length f.Cfg.blocks in
      let seen = Array.make nb false in
      let rec go b =
        if not seen.(b) then begin
          seen.(b) <- true;
          let blk = f.Cfg.blocks.(b) in
          List.iter go blk.Cfg.succs;
          if blk.Cfg.unknown_succs then
            (* unresolved indirect jump: may target any block here *)
            for x = 0 to nb - 1 do
              go x
            done
        end
      in
      if nb > 0 then go 0;
      List.filter_map
        (fun (b : Cfg.block) ->
          if seen.(b.Cfg.id) then None
          else
            Some
              { ub_fentry = f.Cfg.fentry; ub_block = b.Cfg.id;
                ub_start = b.Cfg.start_pc; ub_end = b.Cfg.end_pc })
        (Array.to_list f.Cfg.blocks))
    cfg.Cfg.funcs

(* ---- pass: maybe-uninitialized registers ---- *)

let maybe_uninit (prog : Program.t) (cfg : Cfg.t) : uninit list =
  let code = prog.Program.code in
  List.concat_map
    (fun (f : Cfg.func) ->
      List.map
        (fun (u : Analysis.uninit_use) ->
          { un_fentry = f.Cfg.fentry; un_pc = u.Analysis.u_pc;
            un_reg = u.Analysis.u_reg })
        (Analysis.maybe_uninit code ~fentry:f.Cfg.fentry ~fend:f.Cfg.fend ()))
    cfg.Cfg.funcs

(* ---- pass: unresolved-indirect audit ---- *)

let indirect_audit (prog : Program.t) (cfg : Cfg.t) (cg : Callgraph.t)
    : indirect list =
  let code = prog.Program.code in
  let n = Array.length code in
  let acc = ref [] in
  for pc = n - 1 downto 0 do
    match code.(pc) with
    | Instr.Jind r ->
      (* suggestions: initial-data words that look like pcs in the same
         function — exactly what the compiler's jump tables contain *)
      let suggestions =
        match Cfg.func_at cfg pc with
        | None -> []
        | Some f ->
          List.sort_uniq compare
            (List.filter_map
               (fun (_, v) ->
                 if v >= f.Cfg.fentry && v < f.Cfg.fend then Some v else None)
               prog.Program.data)
      in
      acc := { ind_pc = pc; ind_kind = `Jind; ind_reg = r;
               ind_suggestions = suggestions } :: !acc
    | Instr.Callind r ->
      let suggestions =
        List.map (fun i -> cg.Callgraph.entries.(i)) cg.Callgraph.address_taken
      in
      acc := { ind_pc = pc; ind_kind = `Callind; ind_reg = r;
               ind_suggestions = suggestions } :: !acc
    | _ -> ()
  done;
  !acc

(* ---- pass: save/restore verification ---- *)

(* Same idiom rule as Prune.is_frame_glue; the Candidate_mismatch
   cross-check below catches any drift between the two. *)
let is_frame_glue = function
  | Instr.Mov (rd, Instr.Reg rs) -> rd = Reg.fp && rs = Reg.sp
  | Instr.Bin ((Instr.Sub | Instr.Add), rd, rs, Instr.Imm _) ->
    rd = Reg.sp && (rs = Reg.sp || rs = Reg.fp)
  | _ -> false

(* Ordered variant of the Prune.static_candidates scan: prologue pushes in
   execution order, and per-ret pops in execution order. *)
let scan_saves code ~fentry ~fend ~max_save =
  let saves = ref [] in
  let count = ref 0 and pc = ref fentry and continue = ref true in
  while !continue && !pc < fend && !count < max_save do
    (match code.(!pc) with
    | Instr.Push r ->
      saves := (!pc, r) :: !saves;
      incr count
    | i when is_frame_glue i -> ()
    | _ -> continue := false);
    incr pc
  done;
  List.rev !saves

let scan_restores code ~fentry ~ret_pc ~max_save =
  let pops = ref [] in
  let count = ref 0 and pc = ref (ret_pc - 1) and continue = ref true in
  while !continue && !pc >= fentry && !count < max_save do
    (match code.(!pc) with
    | Instr.Pop r ->
      pops := (!pc, r) :: !pops;
      incr count
    | i when is_frame_glue i -> ()
    | _ -> continue := false);
    decr pc
  done;
  !pops (* already in execution order: collected walking backwards *)

let save_restore ?(max_save = 10)
    ?(candidates : ((int * Reg.t) list * (int * Reg.t) list) option)
    (prog : Program.t) (cfg : Cfg.t) : sr_issue list * int * int =
  let code = prog.Program.code in
  let issues = ref [] in
  let my_saves = ref [] and my_restores = ref [] in
  List.iter
    (fun (f : Cfg.func) ->
      let fentry = f.Cfg.fentry and fend = f.Cfg.fend in
      let saves = scan_saves code ~fentry ~fend ~max_save in
      my_saves := saves @ !my_saves;
      for ret_pc = fentry to fend - 1 do
        if code.(ret_pc) = Instr.Ret then begin
          let pops = scan_restores code ~fentry ~ret_pc ~max_save in
          my_restores := pops @ !my_restores;
          let expected = List.rev_map snd saves in
          let got = List.map snd pops in
          if got <> expected then begin
            let save_regs = List.map snd saves in
            (* pops of regs never saved *)
            List.iter
              (fun (ppc, r) ->
                if not (List.mem r save_regs) then
                  issues := { sr_fentry = fentry; sr_kind = Unmatched_restore;
                              sr_pc = ppc; sr_reg = r } :: !issues)
              pops;
            (* saves never popped before this ret *)
            List.iter
              (fun (spc, r) ->
                if not (List.mem r got) then
                  issues := { sr_fentry = fentry; sr_kind = Missing_restore;
                              sr_pc = spc; sr_reg = r } :: !issues)
              saves;
            (* same multiset but wrong order *)
            if List.sort compare got = List.sort compare expected then
              issues := { sr_fentry = fentry; sr_kind = Order_mismatch;
                          sr_pc = ret_pc; sr_reg = List.hd got } :: !issues
          end
        end
      done)
    cfg.Cfg.funcs;
  (* cross-check against Prune.static_candidates when provided *)
  (match candidates with
  | None -> ()
  | Some (cand_saves, cand_restores) ->
    let fentry_of pc =
      match Cfg.func_at cfg pc with Some f -> f.Cfg.fentry | None -> -1
    in
    let diff kind mine theirs =
      let mine = List.sort compare mine and theirs = List.sort compare theirs in
      if mine <> theirs then begin
        let missing l l' = List.filter (fun x -> not (List.mem x l')) l in
        List.iter
          (fun (pc, r) ->
            issues := { sr_fentry = fentry_of pc; sr_kind = kind; sr_pc = pc;
                        sr_reg = r } :: !issues)
          (missing mine theirs @ missing theirs mine)
      end
    in
    diff Candidate_mismatch !my_saves cand_saves;
    diff Candidate_mismatch !my_restores cand_restores);
  (!issues, List.length !my_saves, List.length !my_restores)

(** Run the pass suite.  [candidates] is the
    [Prune.static_candidates] output as assoc lists (saves, restores) for
    the cross-check — the caller converts, keeping this library
    independent of [dr_slicing].  [passes] restricts to a subset of
    {!pass_names} (default: all); unknown names raise
    [Invalid_argument]. *)
let run ?max_save ?candidates ?(passes = pass_names) (prog : Program.t) : t =
  List.iter
    (fun p ->
      if not (List.mem p pass_names) then
        invalid_arg (Printf.sprintf "Lint.run: unknown pass %S" p))
    passes;
  let on p = List.mem p passes in
  let cfg = Cfg.build prog in
  let cg = Callgraph.build prog ~cfg in
  let save_restore, candidate_saves, candidate_restores =
    if on "save-restore" then save_restore ?max_save ?candidates prog cfg
    else ([], 0, 0)
  in
  let races, race_mutexes =
    if on "races" then begin
      let r = Race.analyze prog in
      (r.Race.candidates, List.length r.Race.mutexes)
    end
    else ([], 0)
  in
  {
    unreachable = (if on "unreachable-blocks" then unreachable_blocks cfg else []);
    uninit = (if on "maybe-uninit" then maybe_uninit prog cfg else []);
    indirect = (if on "indirect-audit" then indirect_audit prog cfg cg else []);
    save_restore;
    candidate_saves;
    candidate_restores;
    races;
    race_mutexes;
    passes_run = List.filter on pass_names;
  }
