(** Interprocedural call graph.

    Edges come from three sources, matching what the code-discovery layer
    in {!Dr_cfg.Cfg} already recognizes:

    - direct [Call] instructions;
    - indirect [Callind] instructions, resolved by dynamically observed
      targets when provided, otherwise conservatively to every
      {e address-taken} function;
    - the spawn idiom: [Sys Spawn] starts a thread at a code address that
      was materialized into a register by a [Mov _, Imm entry].  The
      spawn-target register ([r1]) is chased backwards through a
      straight-line [Mov] chain (register copies included) within the
      enclosing block; when the chain bottoms out at an immediate that is
      a function entry, the site's callees narrow to that one function.
      Otherwise any address-taken function is a potential spawn target.

    A function is {e address-taken} when some instruction materializes its
    entry pc as an immediate ([Mov _, Imm entry]), the same heuristic
    [Cfg.discover_entries] uses to find spawn targets. *)

open Dr_isa
module Cfg = Dr_cfg.Cfg

type call_kind = Direct | Indirect | Spawn

type site = {
  site_pc : int;
  caller : int;  (** function index, -1 when the pc is outside any function *)
  kind : call_kind;
  callees : int list;  (** function indices *)
}

type t = {
  entries : int array;  (** function index -> entry pc (entry-sorted) *)
  ends : int array;  (** function index -> end pc (exclusive) *)
  sites : site list;
  callees : int list array;  (** function index -> callee function indices *)
  callers : int list array;
  address_taken : int list;  (** function indices *)
  unresolved_callind : int list;  (** [Callind] pcs with no observed targets *)
  fn_of_pc : int array;  (** pc -> function index, -1 when outside *)
}

let num_functions t = Array.length t.entries

let fn_at t pc =
  if pc < 0 || pc >= Array.length t.fn_of_pc then -1 else t.fn_of_pc.(pc)

let build ?(indirect_targets : (int * int list) list = [])
    (prog : Program.t) ~(cfg : Cfg.t) : t =
  let code = prog.Program.code in
  let n = Array.length code in
  let ranges = Array.of_list (Cfg.functions cfg) in
  Array.sort compare ranges;
  let nf = Array.length ranges in
  let entries = Array.map fst ranges and ends = Array.map snd ranges in
  let fn_of_pc = Array.make n (-1) in
  Array.iteri
    (fun i (e, f) ->
      for pc = e to min (f - 1) (n - 1) do
        fn_of_pc.(pc) <- i
      done)
    ranges;
  let entry_idx = Hashtbl.create 16 in
  Array.iteri (fun i e -> Hashtbl.replace entry_idx e i) entries;
  let address_taken =
    let seen = Array.make nf false in
    Array.iter
      (function
        | Instr.Mov (_, Instr.Imm v) -> (
          match Hashtbl.find_opt entry_idx v with
          | Some i -> seen.(i) <- true
          | None -> ())
        | _ -> ())
      code;
    List.filter (fun i -> seen.(i)) (List.init nf Fun.id)
  in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (pc, ts) -> Hashtbl.replace tbl pc ts) indirect_targets;
  (* Pcs where control can enter from elsewhere: backward value chases
     must not scan past one, since the instructions below it are then not
     the only predecessors. *)
  let is_join_point =
    let t = Array.make (n + 1) false in
    let mark d = if d >= 0 && d <= n then t.(d) <- true in
    Array.iteri
      (fun pc i ->
        match i with
        | Instr.Jmp d | Instr.Jcc (_, d) | Instr.Call d -> mark d
        | Instr.Jind _ | Instr.Callind _ -> (
          match Hashtbl.find_opt tbl pc with
          | Some ds -> List.iter mark ds
          | None -> ())
        | _ -> ())
      code;
    Array.iter mark entries;
    t
  in
  let transfers = function
    | Instr.Jmp _ | Instr.Jcc _ | Instr.Jind _ | Instr.Call _
    | Instr.Callind _ | Instr.Ret | Instr.Halt ->
      true
    | _ -> false
  in
  (* Value of [reg] on entry to [pc], found by scanning backwards through
     the straight-line run ending at [pc]: follows Mov-to-Mov register
     copies, gives up at any control transfer, join point, or non-Mov
     clobber of the chased register. *)
  let chase_immediate pc reg =
    let rec go i reg =
      if i < 0 || reg = Reg.sp || reg = Reg.fp then None
      else
        match code.(i) with
        | Instr.Mov (rd, Instr.Imm v) when rd = reg -> Some v
        | Instr.Mov (rd, Instr.Reg rs) when rd = reg ->
          if is_join_point.(i) then None else go (i - 1) rs
        | instr ->
          if
            transfers instr
            || Defuse.def_mask instr land (1 lsl reg) <> 0
            || is_join_point.(i)
          then None
          else go (i - 1) reg
    in
    go (pc - 1) reg
  in
  let sites = ref [] and unresolved = ref [] in
  for pc = 0 to n - 1 do
    let caller = fn_of_pc.(pc) in
    let site kind callees = sites := { site_pc = pc; caller; kind; callees } :: !sites in
    match code.(pc) with
    | Instr.Call t -> if t >= 0 && t < n then site Direct [ fn_of_pc.(t) ]
    | Instr.Callind _ -> (
      match Hashtbl.find_opt tbl pc with
      | Some ts ->
        site Indirect
          (List.sort_uniq compare
             (List.filter_map
                (fun t -> if t >= 0 && t < n then Some fn_of_pc.(t) else None)
                ts))
      | None ->
        unresolved := pc :: !unresolved;
        site Indirect address_taken)
    | Instr.Sys Instr.Spawn -> (
      match chase_immediate pc Reg.r1 with
      | Some v when Hashtbl.mem entry_idx v ->
        site Spawn [ Hashtbl.find entry_idx v ]
      | Some _ | None -> site Spawn address_taken)
    | _ -> ()
  done;
  let callees = Array.make nf [] and callers = Array.make nf [] in
  List.iter
    (fun s ->
      if s.caller >= 0 then
        List.iter
          (fun g ->
            if g >= 0 then begin
              callees.(s.caller) <- g :: callees.(s.caller);
              callers.(g) <- s.caller :: callers.(g)
            end)
          s.callees)
    !sites;
  Array.iteri (fun i l -> callees.(i) <- List.sort_uniq compare l) callees;
  Array.iteri (fun i l -> callers.(i) <- List.sort_uniq compare l) callers;
  { entries; ends; sites = List.rev !sites; callees; callers; address_taken;
    unresolved_callind = List.rev !unresolved; fn_of_pc }

(** Functions reachable from the one containing [prog.entry], following
    call edges (spawn and unresolved-indirect edges included). *)
let reachable_from_entry t ~(entry_pc : int) : bool array =
  let nf = num_functions t in
  let seen = Array.make nf false in
  let rec go i =
    if i >= 0 && i < nf && not seen.(i) then begin
      seen.(i) <- true;
      List.iter go t.callees.(i)
    end
  in
  go (fn_at t entry_pc);
  seen

let num_edges t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.callees
