(** Static data-race detector: must-held locksets + a static
    happens-before skeleton over the whole-program super-CFG, yielding a
    ranked list of race candidate pairs (DESIGN §14).

    Three cooperating analyses, all per program counter:

    - {e must-held locksets}: a forward union-meet dataflow on the
      complement ("may-not-held") run on the {!Dataflow} engine.  Facts
      are the statically-resolved mutex addresses; a resolved [Lock]
      kills its address from the may-not-held set, an unresolved
      [Unlock] generates every address, thread entries start with
      everything not held.  The complement of the solution at a pc is
      the set of mutexes held on {e every} path reaching it — an
      under-approximation of any run's actual held set, which is the
      sound direction for reporting disjointness.
    - {e static happens-before skeleton}: thread roots are the program
      entry plus every spawn-target entry.  An access ordered before the
      (unique, straight-line-reachable) spawn of a root cannot race with
      that root's accesses; an access dominated by a [Join] whose target
      chases back to the root's single spawn site cannot race with the
      joined thread.  Root multiplicity (can two instances of the same
      root run concurrently?) comes from a small fixpoint over spawn
      sites.
    - {e access classification}: [Load]/[Store] through [sp]/[fp] (and
      the push/pop/call/ret stack traffic) are thread-private and
      excluded; other accesses resolve their base register through
      unique reaching definitions to an exact address where possible,
      and otherwise conservatively may-alias every shared address.

    A candidate pair is two conflicting accesses (at least one write,
    possibly the same pc twice) that may touch the same shared address,
    can execute in distinct threads, have disjoint must-locksets and no
    static happens-before order.  Soundness contract (conformance
    oracle 8): when the refined CFG is fully resolved, every spawn
    target is statically known and every dynamic thread starts at a
    known entry, every dynamically-observed unsynchronized conflicting
    pair appears in the candidate set.  When a precondition fails the
    analysis degrades to the conservative all-pairs answer instead of
    guessing. *)

open Dr_isa
module Bitset = Dr_util.Bitset
module Cfg = Dr_cfg.Cfg

(** Statically-chased value of a register at a program point. *)
type value = Const of int | Spawn_result of int | Unknown

type access = {
  acc_pc : int;
  acc_write : bool;
  acc_addr : int option;  (** exact shared address, when resolved *)
}

type pair = {
  p_a : access;
  p_b : access;
  p_roots_a : int list;  (** thread-root entry pcs that can execute [p_a] *)
  p_roots_b : int list;
  p_lockset_a : int list;  (** must-held mutex addresses at [p_a] *)
  p_lockset_b : int list;
  p_score : int;  (** ranking score, higher = more plausible *)
}

type t = {
  prog : Program.t;
  cfg : Cfg.t;
  cg : Callgraph.t;
  accesses : access list;
  mutexes : int list;  (** resolved mutex address universe *)
  roots : int list;  (** thread-root entry pcs (program entry first) *)
  candidates : pair list;  (** ranked, best first *)
  pair_tbl : (int * int, unit) Hashtbl.t;
  lockset_of : int -> int list;
  unresolved : int list;  (** unresolved jind/callind/spawn-target pcs *)
}

(** First address of the stack region: every address at or above it
    belongs to some thread's stack and is excluded from race detection
    (mirrored by the dynamic checker). *)
let shared_limit (prog : Program.t) =
  prog.Program.mem_size - (prog.Program.max_threads * prog.Program.stack_words)

(** Instructions whose memory traffic is thread-private stack traffic
    under the compilation model: push/pop/call/ret, and loads/stores
    based on [sp]/[fp].  The dynamic checker skips the same pcs so the
    two sides agree on what counts as a shared access. *)
let stack_class (i : Instr.t) =
  match i with
  | Instr.Push _ | Instr.Pop _ | Instr.Call _ | Instr.Callind _ | Instr.Ret ->
    true
  | Instr.Load (_, rb, _) | Instr.Store (rb, _, _) ->
    rb = Reg.sp || rb = Reg.fp
  | _ -> false

let fully_resolved t = t.unresolved = []

let candidate_pairs t =
  List.map (fun p -> (p.p_a.acc_pc, p.p_b.acc_pc)) t.candidates

(** Is the unordered pc pair [(p, q)] a static race candidate? *)
let is_candidate t p q = Hashtbl.mem t.pair_tbl (min p q, max p q)

let analyze ?(indirect_targets : (int * int list) list = [])
    (prog : Program.t) : t =
  let cfg = Cfg.build ~indirect_targets prog in
  let cg = Callgraph.build ~indirect_targets prog ~cfg in
  let code = prog.Program.code in
  let n = Array.length code in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (pc, ts) -> Hashtbl.replace tbl pc ts) indirect_targets;
  let nf = Callgraph.num_functions cg in
  let rets = Array.make nf [] in
  for pc = 0 to n - 1 do
    if code.(pc) = Instr.Ret then begin
      let f = cg.Callgraph.fn_of_pc.(pc) in
      if f >= 0 then rets.(f) <- pc :: rets.(f)
    end
  done;
  (* ---- super-CFG, in two flavours: [intra] has no spawn -> child-entry
     edges (per-thread control flow only), [full] adds them (needed by
     reaching definitions, so the parent's spawn reaches the child's
     body, and by the lockset flow into child entries). *)
  let intra = Array.make n [] in
  let spawn_edges = Array.make n [] in
  let add p q =
    if p >= 0 && p < n && q >= 0 && q < n then intra.(p) <- q :: intra.(p)
  in
  let unresolved = ref [] in
  let spawn_entries =
    List.map (fun i -> cg.Callgraph.entries.(i)) cg.Callgraph.address_taken
  in
  for pc = 0 to n - 1 do
    match code.(pc) with
    | Instr.Jmp t -> add pc t
    | Instr.Jcc (_, t) ->
      add pc t;
      add pc (pc + 1)
    | Instr.Jind _ -> (
      match Hashtbl.find_opt tbl pc with
      | Some ts -> List.iter (add pc) ts
      | None -> unresolved := pc :: !unresolved)
    | Instr.Call t ->
      add pc t;
      add pc (pc + 1);
      let f = if t >= 0 && t < n then cg.Callgraph.fn_of_pc.(t) else -1 in
      if f >= 0 then List.iter (fun r -> add r (pc + 1)) rets.(f)
    | Instr.Callind _ ->
      add pc (pc + 1);
      (match Hashtbl.find_opt tbl pc with
      | Some ts ->
        List.iter
          (fun t ->
            add pc t;
            let f = if t >= 0 && t < n then cg.Callgraph.fn_of_pc.(t) else -1 in
            if f >= 0 then List.iter (fun r -> add r (pc + 1)) rets.(f))
          ts
      | None -> unresolved := pc :: !unresolved)
    | Instr.Ret | Instr.Halt | Instr.Sys Instr.Exit -> ()
    | Instr.Sys Instr.Spawn ->
      add pc (pc + 1);
      spawn_edges.(pc) <-
        List.filter (fun e -> e >= 0 && e < n) spawn_entries
    | _ -> add pc (pc + 1)
  done;
  let full = Array.init n (fun p -> spawn_edges.(p) @ intra.(p)) in
  let full_preds = Array.make n [] in
  Array.iteri
    (fun p qs -> List.iter (fun q -> full_preds.(q) <- p :: full_preds.(q)) qs)
    full;
  (* ---- reaching definitions over register def sites (full graph) ---- *)
  let num_sites = ref 0 in
  let sites_at = Array.make n [] in
  for pc = 0 to n - 1 do
    Defuse.iter_mask
      (fun r ->
        sites_at.(pc) <- (!num_sites, r) :: sites_at.(pc);
        incr num_sites)
      (Defuse.def_mask code.(pc))
  done;
  let num_sites = !num_sites in
  let sites_of_reg = Array.init Reg.file_size (fun _ -> Bitset.create num_sites) in
  let site_pcs_of_reg = Array.make Reg.file_size [] in
  Array.iteri
    (fun pc l ->
      List.iter
        (fun (s, r) ->
          Bitset.add sites_of_reg.(r) s;
          site_pcs_of_reg.(r) <- (s, pc) :: site_pcs_of_reg.(r))
        l)
    sites_at;
  let gen pc =
    let b = Bitset.create num_sites in
    List.iter (fun (s, _) -> Bitset.add b s) sites_at.(pc);
    b
  in
  let kill pc =
    let b = Bitset.create num_sites in
    Defuse.iter_mask
      (fun r -> ignore (Bitset.union_into ~src:sites_of_reg.(r) ~dst:b))
      (Defuse.strong_def_mask code.(pc));
    b
  in
  let rd =
    Dataflow.solve ~num_nodes:n ~num_facts:num_sites
      ~direction:Dataflow.Forward
      ~succs:(fun p -> full.(p))
      ~preds:(fun p -> full_preds.(p))
      ~gen ~kill ()
  in
  (* ---- unique-reaching-definition value chase ---- *)
  let memo : (int * int, value) Hashtbl.t = Hashtbl.create 64 in
  let rec resolve_at pc reg =
    (* value of [reg] on entry to [pc] *)
    if reg = Reg.sp || reg = Reg.fp then Unknown
    else
      match Hashtbl.find_opt memo (pc, reg) with
      | Some v -> v
      | None ->
        (* break copy cycles: an in-flight query resolves to Unknown *)
        Hashtbl.replace memo (pc, reg) Unknown;
        let defs =
          List.filter
            (fun (s, _) -> Bitset.mem rd.Dataflow.in_.(pc) s)
            site_pcs_of_reg.(reg)
        in
        let v =
          match defs with
          | [ (_, dpc) ] -> (
            match code.(dpc) with
            | Instr.Mov (rdst, Instr.Imm v) when rdst = reg -> Const v
            | Instr.Mov (rdst, Instr.Reg rs) when rdst = reg ->
              resolve_at dpc rs
            | Instr.Sys Instr.Spawn when reg = Reg.r0 -> Spawn_result dpc
            | _ -> Unknown)
          | _ -> Unknown
        in
        Hashtbl.replace memo (pc, reg) v;
        v
  in
  (* ---- spawn sites and thread roots ---- *)
  let entry_set = Hashtbl.create 16 in
  Array.iter (fun e -> Hashtbl.replace entry_set e ()) cg.Callgraph.entries;
  let spawn_sites = ref [] in
  for pc = 0 to n - 1 do
    if code.(pc) = Instr.Sys Instr.Spawn then begin
      let target =
        match resolve_at pc Reg.r1 with
        | Const v when Hashtbl.mem entry_set v -> Some v
        | _ -> None
      in
      if target = None then unresolved := pc :: !unresolved;
      spawn_sites := (pc, target) :: !spawn_sites
    end
  done;
  let spawn_sites = List.rev !spawn_sites in
  let has_spawn = spawn_sites <> [] in
  let main_root = prog.Program.entry in
  let precise = !unresolved = [] in
  let roots =
    let r =
      main_root
      :: List.filter_map
           (fun (_, t) -> t)
           spawn_sites
      @ (if List.exists (fun (_, t) -> t = None) spawn_sites then
           spawn_entries
         else [])
    in
    main_root :: List.sort_uniq compare (List.filter (fun e -> e <> main_root) r)
  in
  (* sites that can start root [r]: resolved sites targeting it, plus
     every unresolved site *)
  let sites_of_root r =
    List.filter_map
      (fun (pc, t) ->
        match t with
        | Some e when e = r -> Some pc
        | Some _ -> None
        | None -> Some pc)
      spawn_sites
  in
  (* ---- reachability helpers (intra edges = per-thread flow) ---- *)
  let bfs ?(avoid = -1) seeds =
    let seen = Bitset.create n in
    let stack = ref (List.filter (fun p -> p >= 0 && p < n && p <> avoid) seeds) in
    List.iter (Bitset.add seen) !stack;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | p :: rest ->
        stack := rest;
        List.iter
          (fun q ->
            if q <> avoid && not (Bitset.mem seen q) then begin
              Bitset.add seen q;
              stack := q :: !stack
            end)
          intra.(p)
    done;
    seen
  in
  let root_reach = List.map (fun r -> (r, bfs [ r ])) roots in
  let roots_of_pc pc =
    if not precise then roots
    else
      match
        List.filter_map
          (fun (r, set) -> if Bitset.mem set pc then Some r else None)
          root_reach
      with
      | [] -> roots  (* statically dead pc: stay conservative *)
      | l -> l
  in
  (* can a spawn site re-execute? (reachable from itself through any
     super-CFG edge, spawn edges included) *)
  let self_reach =
    let full_bfs seeds =
      let seen = Bitset.create n in
      let stack = ref (List.filter (fun p -> p >= 0 && p < n) seeds) in
      List.iter (Bitset.add seen) !stack;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | p :: rest ->
          stack := rest;
          List.iter
            (fun q ->
              if not (Bitset.mem seen q) then begin
                Bitset.add seen q;
                stack := q :: !stack
              end)
            full.(p)
      done;
      seen
    in
    let cache = Hashtbl.create 8 in
    fun pc ->
      match Hashtbl.find_opt cache pc with
      | Some b -> b
      | None ->
        let b = Bitset.mem (full_bfs full.(pc)) pc in
        Hashtbl.replace cache pc b;
        b
  in
  (* ---- root multiplicity: can two instances of a root overlap? ----
     [single r] is proven from below: the main root is single when no
     spawn targets it; a spawn root is single when it has exactly one
     site, the site cannot re-execute, and the site runs in exactly one
     already-single root. *)
  let single = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace single r false) roots;
  if precise then begin
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun r ->
          if not (Hashtbl.find single r) then begin
            let proven =
              if r = main_root then sites_of_root r = []
              else
                match sites_of_root r with
                | [ s ] -> (
                  (not (self_reach s))
                  &&
                  match roots_of_pc s with
                  | [ owner ] -> Hashtbl.find single owner
                  | _ -> false)
                | _ -> false
            in
            if proven then begin
              Hashtbl.replace single r true;
              changed := true
            end
          end)
        roots
    done
  end;
  let is_single r = try Hashtbl.find single r with Not_found -> false in
  (* ---- must-held locksets ---- *)
  let lock_addr pc =
    match resolve_at pc Reg.r1 with Const v -> Some v | _ -> None
  in
  let lock_sites = ref [] and unlock_sites = ref [] in
  for pc = 0 to n - 1 do
    match code.(pc) with
    | Instr.Sys Instr.Lock -> lock_sites := (pc, lock_addr pc) :: !lock_sites
    | Instr.Sys Instr.Unlock ->
      unlock_sites := (pc, lock_addr pc) :: !unlock_sites
    | _ -> ()
  done;
  let mutexes =
    List.sort_uniq compare
      (List.filter_map snd (!lock_sites @ !unlock_sites))
  in
  let mutex_idx = Hashtbl.create 8 in
  List.iteri (fun i a -> Hashtbl.replace mutex_idx a i) mutexes;
  let num_mx = List.length mutexes in
  let lockset_of =
    if (not precise) || num_mx = 0 then fun _ -> []
    else begin
      let all_mx = Bitset.create num_mx in
      for i = 0 to num_mx - 1 do
        Bitset.add all_mx i
      done;
      let empty = Bitset.create num_mx in
      (* facts: "may not be held".  Lock(a) kills a; Unlock(a) gens a;
         an unresolved Unlock gens everything; Wait is identity (the
         mutex is released and re-held entirely within the blocked
         span, so every successor pc sees it held again). *)
      let gen pc =
        match code.(pc) with
        | Instr.Sys Instr.Unlock -> (
          match lock_addr pc with
          | Some a -> (
            match Hashtbl.find_opt mutex_idx a with
            | Some i ->
              let b = Bitset.create num_mx in
              Bitset.add b i;
              b
            | None -> empty)
          | None -> all_mx)
        | _ -> empty
      in
      let kill pc =
        match code.(pc) with
        | Instr.Sys Instr.Lock -> (
          match lock_addr pc with
          | Some a -> (
            match Hashtbl.find_opt mutex_idx a with
            | Some i ->
              let b = Bitset.create num_mx in
              Bitset.add b i;
              b
            | None -> empty)
          | None -> empty)
        | _ -> empty
      in
      let thread_entries =
        main_root :: List.filter (fun r -> r <> main_root) roots
      in
      let entry p = if List.mem p thread_entries then Some all_mx else None in
      let sol =
        Dataflow.solve ~num_nodes:n ~num_facts:num_mx
          ~direction:Dataflow.Forward
          ~succs:(fun p -> full.(p))
          ~preds:(fun p -> full_preds.(p))
          ~gen ~kill ~entry ()
      in
      fun pc ->
        if pc < 0 || pc >= n then []
        else
          (* keep addresses whose fact bit is absent from may-not-held *)
          List.filter
            (fun a ->
              match Hashtbl.find_opt mutex_idx a with
              | Some i -> not (Bitset.mem sol.Dataflow.in_.(pc) i)
              | None -> false)
            mutexes
    end
  in
  (* ---- join sites: join pc -> the spawn site whose tid it joins ---- *)
  let joins =
    let l = ref [] in
    for pc = 0 to n - 1 do
      if code.(pc) = Instr.Sys Instr.Join then
        match resolve_at pc Reg.r1 with
        | Spawn_result s -> l := (pc, s) :: !l
        | _ -> ()
    done;
    !l
  in
  (* ---- shared-memory access classification ---- *)
  let limit = shared_limit prog in
  let classify pc =
    match code.(pc) with
    | i when stack_class i -> None
    | Instr.Load (_, rb, off) ->
      let addr =
        match resolve_at pc rb with Const v -> Some (v + off) | _ -> None
      in
      if match addr with Some a -> a >= limit | None -> false then None
      else Some { acc_pc = pc; acc_write = false; acc_addr = addr }
    | Instr.Store (rb, off, _) ->
      let addr =
        match resolve_at pc rb with Const v -> Some (v + off) | _ -> None
      in
      if match addr with Some a -> a >= limit | None -> false then None
      else Some { acc_pc = pc; acc_write = true; acc_addr = addr }
    | _ -> None
  in
  let accesses =
    List.filter_map classify (List.init n Fun.id)
  in
  (* ---- happens-before prunes ---- *)
  let reach_after_site =
    let cache = Hashtbl.create 8 in
    fun s ->
      match Hashtbl.find_opt cache s with
      | Some b -> b
      | None ->
        let b = bfs intra.(s) in
        Hashtbl.replace cache s b;
        b
  in
  let reach_avoiding_join =
    let cache = Hashtbl.create 8 in
    fun j ->
      match Hashtbl.find_opt cache j with
      | Some b -> b
      | None ->
        let b = bfs ~avoid:j [ main_root ] in
        Hashtbl.replace cache j b;
        b
  in
  (* [x] (proven main-only) executes before every instance of root [r]
     exists: every site starting [r] runs only in the single main root
     and cannot reach [x] afterwards. *)
  let before_spawn_of x r =
    is_single main_root
    && sites_of_root r <> []
    && List.for_all
         (fun s ->
           roots_of_pc s = [ main_root ]
           && not (Bitset.mem (reach_after_site s) x))
         (sites_of_root r)
  in
  (* [y] (proven main-only) executes after root [r]'s single thread has
     been joined: one non-reexecuting main-only site, a join that chases
     back to it, and every main path to [y] passes through the join. *)
  let after_join_of y r =
    is_single main_root
    &&
    match sites_of_root r with
    | [ s ] ->
      (not (self_reach s))
      && roots_of_pc s = [ main_root ]
      && List.exists
           (fun (j, js) ->
             js = s
             && roots_of_pc j = [ main_root ]
             && not (Bitset.mem (reach_avoiding_join j) y))
           joins
    | _ -> false
  in
  (* does the combo (a in root ra, b in root rb) survive? *)
  let combo_feasible a ra b rb =
    if ra = rb then (not (is_single ra)) || not precise
    else if not precise then true
    else if ra = main_root then
      not (before_spawn_of a rb || after_join_of a rb)
    else if rb = main_root then
      not (before_spawn_of b ra || after_join_of b ra)
    else true
  in
  let may_alias a b =
    match (a.acc_addr, b.acc_addr) with
    | Some x, Some y -> x = y
    | _ -> true
  in
  let alias_score a b =
    match (a.acc_addr, b.acc_addr) with
    | Some _, Some _ -> 2
    | Some _, None | None, Some _ -> 1
    | None, None -> 0
  in
  let feasible_roots a b =
    let ras = roots_of_pc a.acc_pc and rbs = roots_of_pc b.acc_pc in
    let keep_a = ref [] and keep_b = ref [] in
    List.iter
      (fun ra ->
        List.iter
          (fun rb ->
            if combo_feasible a.acc_pc ra b.acc_pc rb then begin
              if not (List.mem ra !keep_a) then keep_a := ra :: !keep_a;
              if not (List.mem rb !keep_b) then keep_b := rb :: !keep_b
            end)
          rbs)
      ras;
    (List.sort compare !keep_a, List.sort compare !keep_b)
  in
  let disjoint l1 l2 = not (List.exists (fun x -> List.mem x l2) l1) in
  let candidates = ref [] in
  let arr = Array.of_list accesses in
  let na = Array.length arr in
  for i = 0 to na - 1 do
    for k = i to na - 1 do
      let a = arr.(i) and b = arr.(k) in
      if (a.acc_write || b.acc_write) && has_spawn && may_alias a b then begin
        let la = lockset_of a.acc_pc and lb = lockset_of b.acc_pc in
        if disjoint la lb then begin
          let ra, rb = feasible_roots a b in
          if ra <> [] && rb <> [] then begin
            let score =
              (4 * alias_score a b)
              + (if la = [] && lb = [] then 2 else 0)
              + if a.acc_write && b.acc_write then 1 else 0
            in
            candidates :=
              { p_a = a; p_b = b; p_roots_a = ra; p_roots_b = rb;
                p_lockset_a = la; p_lockset_b = lb; p_score = score }
              :: !candidates
          end
        end
      end
    done
  done;
  let candidates =
    List.sort
      (fun x y ->
        match compare y.p_score x.p_score with
        | 0 -> compare (x.p_a.acc_pc, x.p_b.acc_pc) (y.p_a.acc_pc, y.p_b.acc_pc)
        | c -> c)
      !candidates
  in
  let pair_tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let x = p.p_a.acc_pc and y = p.p_b.acc_pc in
      Hashtbl.replace pair_tbl (min x y, max x y) ())
    candidates;
  { prog; cfg; cg; accesses; mutexes; roots; candidates; pair_tbl;
    lockset_of; unresolved = List.sort_uniq compare !unresolved }
