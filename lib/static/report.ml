(** [drdebug-analyze-v1] JSON documents: build from lint + call-graph
    results, and validate (the same checks [bench/validate_bench.exe]
    applies to every machine-readable artifact this repo emits).

    The document is fully deterministic for a given program — no
    timestamps, no floats beyond exact integers — so golden files under
    [examples/] can be diffed byte-for-byte by the [@static] alias. *)

open Dr_isa
module Json = Dr_util.Json

let schema = "drdebug-analyze-v1"

let reg_json r = Json.Str (Reg.name r)

let unreachable_json (u : Lint.unreachable_block) =
  Json.Obj
    [ ("fn", Json.int u.Lint.ub_fentry); ("block", Json.int u.Lint.ub_block);
      ("start_pc", Json.int u.Lint.ub_start);
      ("end_pc", Json.int u.Lint.ub_end) ]

let uninit_json (u : Lint.uninit) =
  Json.Obj
    [ ("fn", Json.int u.Lint.un_fentry); ("pc", Json.int u.Lint.un_pc);
      ("reg", reg_json u.Lint.un_reg) ]

let indirect_json (i : Lint.indirect) =
  Json.Obj
    [ ("pc", Json.int i.Lint.ind_pc);
      ("kind", Json.Str (match i.Lint.ind_kind with `Jind -> "jind" | `Callind -> "callind"));
      ("reg", reg_json i.Lint.ind_reg);
      ("suggestions", Json.List (List.map Json.int i.Lint.ind_suggestions)) ]

let sr_json (s : Lint.sr_issue) =
  Json.Obj
    [ ("fn", Json.int s.Lint.sr_fentry);
      ("kind", Json.Str (Lint.sr_kind_name s.Lint.sr_kind));
      ("pc", Json.int s.Lint.sr_pc); ("reg", reg_json s.Lint.sr_reg) ]

let race_json (prog : Program.t) (p : Race.pair) =
  let opt_int = function Some v -> Json.int v | None -> Json.Null in
  let access side (a : Race.access) roots lockset =
    ( side,
      Json.Obj
        [ ("pc", Json.int a.Race.acc_pc);
          ("line", opt_int (Debug_info.line_of_pc prog.Program.debug a.Race.acc_pc));
          ("write", Json.Bool a.Race.acc_write);
          ("addr", opt_int a.Race.acc_addr);
          ("roots", Json.List (List.map Json.int roots));
          ("lockset", Json.List (List.map Json.int lockset)) ] )
  in
  Json.Obj
    [ access "a" p.Race.p_a p.Race.p_roots_a p.Race.p_lockset_a;
      access "b" p.Race.p_b p.Race.p_roots_b p.Race.p_lockset_b;
      ("score", Json.int p.Race.p_score) ]

let pass_json ?(extra = []) findings =
  Json.Obj
    ([ ("count", Json.int (List.length findings)) ]
    @ extra
    @ [ ("findings", Json.List findings) ])

let callgraph_json (cg : Callgraph.t) ~entry_pc =
  let reachable = Callgraph.reachable_from_entry cg ~entry_pc in
  let unreachable_fns =
    List.filter_map
      (fun i -> if reachable.(i) then None else Some (Json.int cg.Callgraph.entries.(i)))
      (List.init (Callgraph.num_functions cg) Fun.id)
  in
  Json.Obj
    [ ("functions", Json.int (Callgraph.num_functions cg));
      ("edges", Json.int (Callgraph.num_edges cg));
      ("address_taken",
       Json.List
         (List.map (fun i -> Json.int cg.Callgraph.entries.(i))
            cg.Callgraph.address_taken));
      ("unreachable_functions", Json.List unreachable_fns) ]

let make (prog : Program.t) (lint : Lint.t) (cg : Callgraph.t) : Json.t =
  let all_passes =
    [ ("unreachable-blocks",
       pass_json (List.map unreachable_json lint.Lint.unreachable));
      ("maybe-uninit", pass_json (List.map uninit_json lint.Lint.uninit));
      ("indirect-audit",
       pass_json (List.map indirect_json lint.Lint.indirect));
      ( "save-restore",
        pass_json
          ~extra:
            [ ("candidate_saves", Json.int lint.Lint.candidate_saves);
              ("candidate_restores", Json.int lint.Lint.candidate_restores)
            ]
          (List.map sr_json lint.Lint.save_restore) );
      ( "races",
        pass_json
          ~extra:[ ("mutexes", Json.int lint.Lint.race_mutexes) ]
          (List.map (race_json prog) lint.Lint.races) ) ]
  in
  Json.Obj
    [ ("schema", Json.Str schema);
      ("program", Json.Str prog.Program.name);
      ("code_size", Json.int (Array.length prog.Program.code));
      ("functions", Json.int (Callgraph.num_functions cg));
      ("callgraph", callgraph_json cg ~entry_pc:prog.Program.entry);
      ( "passes_run",
        Json.List (List.map (fun p -> Json.Str p) lint.Lint.passes_run) );
      ( "passes",
        Json.Obj
          (List.filter
             (fun (name, _) -> List.mem name lint.Lint.passes_run)
             all_passes) );
      ("findings_total", Json.int (Lint.findings_total lint)) ]

(* ---- validation ---- *)

let pass_names = Lint.pass_names

let validate (doc : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need path v = match v with Some x -> Ok x | None -> Error ("missing or ill-typed " ^ path) in
  let* s = need "schema" (Option.bind (Json.member "schema" doc) Json.to_str) in
  let* () = if s = schema then Ok () else Error ("schema is " ^ s) in
  let* _ = need "program" (Option.bind (Json.member "program" doc) Json.to_str) in
  let* _ = need "code_size" (Option.bind (Json.member "code_size" doc) Json.to_float) in
  let* _ = need "functions" (Option.bind (Json.member "functions" doc) Json.to_float) in
  let* cgj = need "callgraph" (Json.member "callgraph" doc) in
  let* _ = need "callgraph.functions" (Option.bind (Json.member "functions" cgj) Json.to_float) in
  let* _ = need "callgraph.edges" (Option.bind (Json.member "edges" cgj) Json.to_float) in
  let* _ = need "callgraph.address_taken" (Option.bind (Json.member "address_taken" cgj) Json.to_list) in
  let* _ = need "callgraph.unreachable_functions" (Option.bind (Json.member "unreachable_functions" cgj) Json.to_list) in
  let* run_json = need "passes_run" (Option.bind (Json.member "passes_run" doc) Json.to_list) in
  let* run =
    List.fold_left
      (fun acc j ->
        let* l = acc in
        match Json.to_str j with
        | Some s when List.mem s pass_names -> Ok (s :: l)
        | Some s -> Error ("passes_run: unknown pass " ^ s)
        | None -> Error "passes_run: non-string entry")
      (Ok []) run_json
  in
  let* passes = need "passes" (Json.member "passes" doc) in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        let* p = need ("passes." ^ name) (Json.member name passes) in
        let* count = need ("passes." ^ name ^ ".count") (Option.bind (Json.member "count" p) Json.to_float) in
        let* findings = need ("passes." ^ name ^ ".findings") (Option.bind (Json.member "findings" p) Json.to_list) in
        if int_of_float count <> List.length findings then
          Error (Printf.sprintf "passes.%s: count %d <> %d findings" name
                   (int_of_float count) (List.length findings))
        else Ok ())
      (Ok ()) run
  in
  let* _ = need "findings_total" (Option.bind (Json.member "findings_total" doc) Json.to_float) in
  Ok ()

(** Analyze [prog] end to end: run the lint suite and package the
    report.  [candidates] and [passes] as in {!Lint.run}. *)
let analyze ?max_save ?candidates ?passes (prog : Program.t) : Lint.t * Json.t =
  let cfg = Dr_cfg.Cfg.build prog in
  let cg = Callgraph.build prog ~cfg in
  let lint = Lint.run ?max_save ?candidates ?passes prog in
  (lint, make prog lint cg)
