(** Per-function instantiations of the {!Dataflow} engine.

    Both analyses run at pc granularity over the intra-procedural graph
    (one node per instruction, edges from {!Dr_isa.Instr.static_successors}
    plus any resolved indirect targets), with facts over the register file
    ({!Dr_isa.Reg.file_size} slots including the flags pseudo-register). *)

open Dr_isa
module Bitset = Dr_util.Bitset

type graph = { nn : int; succs : int list array; preds : int list array }

(** Intra-procedural pc graph of [\[fentry, fend)], node [i] = pc
    [fentry + i].  [targets pc] supplies resolved targets for indirect
    jumps/calls (return [[]] for the purely static view). *)
let intra_graph (code : Instr.t array) ~fentry ~fend
    ~(targets : int -> int list) : graph =
  let nn = fend - fentry in
  let succs = Array.make nn [] in
  let add p q = if q >= fentry && q < fend then succs.(p - fentry) <- (q - fentry) :: succs.(p - fentry) in
  for pc = fentry to fend - 1 do
    match Instr.static_successors ~pc code.(pc) with
    | Some qs -> List.iter (add pc) qs
    | None ->
      (* indirect jump or call *)
      List.iter (add pc) (targets pc);
      (match code.(pc) with
      | Instr.Callind _ -> add pc (pc + 1)  (* falls through on return *)
      | _ -> ())
  done;
  let preds = Array.make nn [] in
  Array.iteri (fun p qs -> List.iter (fun q -> preds.(q) <- p :: preds.(q)) qs) succs;
  { nn; succs; preds }

let reg_bitset mask =
  let b = Bitset.create Reg.file_size in
  Defuse.iter_mask (Bitset.add b) mask;
  b

type liveness = {
  live_in : Bitset.t array;  (** node -> registers live on entry *)
  live_out : Bitset.t array;
}

(** Classic backward register liveness: gen = uses, kill = strong defs. *)
let liveness (code : Instr.t array) ~fentry ~fend
    ?(targets = fun _ -> []) () : liveness =
  let g = intra_graph code ~fentry ~fend ~targets in
  let r =
    Dataflow.solve ~num_nodes:g.nn ~num_facts:Reg.file_size
      ~direction:Dataflow.Backward
      ~succs:(fun i -> g.succs.(i))
      ~preds:(fun i -> g.preds.(i))
      ~gen:(fun i -> reg_bitset (Defuse.use_mask code.(fentry + i)))
      ~kill:(fun i -> reg_bitset (Defuse.strong_def_mask code.(fentry + i)))
      ()
  in
  { live_in = r.Dataflow.in_; live_out = r.Dataflow.out_ }

type uninit_use = { u_pc : int; u_reg : Reg.t }

(** Maybe-uninitialized registers: a forward kill-only may-analysis.  At
    function entry every tracked register is possibly-uninitialized except
    the argument registers [r1]..[r5]; a definition removes the register;
    calls conservatively "define" the caller-saved set (return value and
    clobbers — treating them as initialized avoids flagging the calling
    convention itself).  A use of a register still possibly-uninitialized
    is reported, except [Push] of a callee-saved register: the
    prologue-save idiom reads the register only to preserve it.  Nodes the
    fixpoint never reaches keep empty facts, so statically unreachable
    code is not reported. *)
let maybe_uninit (code : Instr.t array) ~fentry ~fend
    ?(targets = fun _ -> []) () : uninit_use list =
  let g = intra_graph code ~fentry ~fend ~targets in
  if g.nn = 0 then []
  else begin
    let entry_facts = Bitset.create Reg.file_size in
    for r = 0 to Reg.file_size - 1 do
      if Defuse.tracked r && not (List.mem r Reg.arg_regs) then
        Bitset.add entry_facts r
    done;
    let kill i =
      let pc = fentry + i in
      let m = Defuse.strong_def_mask code.(pc) in
      let m =
        match code.(pc) with
        | Instr.Call _ | Instr.Callind _ -> m lor Defuse.caller_saved_mask
        | _ -> m
      in
      reg_bitset m
    in
    let r =
      Dataflow.solve ~num_nodes:g.nn ~num_facts:Reg.file_size
        ~direction:Dataflow.Forward
        ~succs:(fun i -> g.succs.(i))
        ~preds:(fun i -> g.preds.(i))
        ~gen:(fun _ -> Bitset.create Reg.file_size)
        ~kill
        ~entry:(fun i -> if i = 0 then Some entry_facts else None)
        ()
    in
    let findings = ref [] in
    for i = g.nn - 1 downto 0 do
      let pc = fentry + i in
      match code.(pc) with
      | Instr.Push rr when Reg.is_callee_saved rr -> ()
      | instr ->
        Defuse.iter_mask
          (fun reg ->
            if Bitset.mem r.Dataflow.in_.(i) reg then
              findings := { u_pc = pc; u_reg = reg } :: !findings)
          (Defuse.use_mask instr)
    done;
    !findings
  end
