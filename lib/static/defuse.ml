(** Static per-instruction def/use sets, as register bit masks.

    The conservative static counterpart of {!Dr_machine.Def_use}: where the
    dynamic resolver emits concrete {!Dr_isa.Loc} encodings for one retired
    event, this module answers, for a bare instruction, which register
    {e numbers} it may read or write and whether it may touch memory.  The
    two must stay in lock-step — every location the dynamic side can emit
    for an instruction must be covered by the static mask — because the
    static program-dependence graph is used as a soundness bound on dynamic
    slices (oracle 6) and as a skip filter in the LP traversal.

    Conventions shared with the dynamic side:
    - [sp]/[fp] are untracked (never appear in masks);
    - the flags pseudo-register is bit {!Dr_isa.Reg.flags} (16);
    - register masks are thread-blind: [Sys Spawn]'s write of the {e child}
      thread's [r1] appears as an [r1] bit in {!def_mask} but not in
      {!strong_def_mask} — the parent's own [r1] survives a spawn, so a
      reaching-definitions analysis must not kill through it. *)

open Dr_isa

let tracked r = r <> Reg.sp && r <> Reg.fp
let bit r = if tracked r then 1 lsl r else 0
let flags_bit = 1 lsl Reg.flags

(** Caller-saved registers, clobbered (conservatively: defined) by a call
    under the calling convention: [r0]..[r5], [r12], [r13]. *)
let caller_saved_mask =
  List.fold_left (fun m r -> m lor bit r) 0 [ 0; 1; 2; 3; 4; 5; 12; 13 ]

let operand_mask = function Instr.Reg r -> bit r | Instr.Imm _ -> 0

(** Registers the instruction may read. *)
let use_mask (i : Instr.t) : int =
  match i with
  | Instr.Nop | Instr.Halt -> 0
  | Instr.Mov (_, op) -> operand_mask op
  | Instr.Bin (_, _, rs, op) -> bit rs lor operand_mask op
  | Instr.Load (_, rb, _) -> bit rb
  | Instr.Store (rb, _, rs) -> bit rb lor bit rs
  | Instr.Push r -> bit r
  | Instr.Pop _ -> 0
  | Instr.Cmp (r, op) -> bit r lor operand_mask op
  | Instr.Setcc (_, _) -> flags_bit
  | Instr.Jmp _ -> 0
  | Instr.Jcc _ -> flags_bit
  | Instr.Jind r -> bit r
  | Instr.Call _ -> 0
  | Instr.Callind r -> bit r
  | Instr.Ret -> 0
  | Instr.Assert (r, _) -> bit r
  | Instr.Sys sys -> (
    match sys with
    | Instr.Exit | Instr.Print -> bit Reg.r1
    | Instr.Rand | Instr.Time | Instr.Read -> 0
    | Instr.Spawn -> bit Reg.r1 lor bit Reg.r2
    | Instr.Join -> bit Reg.r1
    | Instr.Lock | Instr.Unlock -> bit Reg.r1
    | Instr.Yield -> 0
    | Instr.Alloc -> bit Reg.r1
    | Instr.Wait -> bit Reg.r1 lor bit Reg.r2
    | Instr.Signal | Instr.Broadcast -> bit Reg.r1)

(** Registers the instruction may write, in any thread. *)
let def_mask (i : Instr.t) : int =
  match i with
  | Instr.Mov (rd, _) -> bit rd
  | Instr.Bin (_, rd, _, _) -> bit rd
  | Instr.Load (rd, _, _) -> bit rd
  | Instr.Pop r -> bit r
  | Instr.Cmp _ -> flags_bit
  | Instr.Setcc (_, rd) -> bit rd
  | Instr.Sys (Instr.Rand | Instr.Time | Instr.Read | Instr.Join | Instr.Alloc)
    ->
    bit Reg.r0
  | Instr.Sys Instr.Spawn -> bit Reg.r0 lor bit Reg.r1  (* r1: the child's *)
  | _ -> 0

(** Registers the instruction always writes in the {e executing} thread —
    the kill set for reaching definitions.  Excludes [Sys Spawn]'s write of
    the child's [r1]. *)
let strong_def_mask (i : Instr.t) : int =
  match i with
  | Instr.Sys Instr.Spawn -> bit Reg.r0
  | i -> def_mask i

(** May the instruction write memory?  [Call]/[Callind] push the return
    address; [Push]/[Store] write their slot. *)
let writes_mem = function
  | Instr.Store _ | Instr.Push _ | Instr.Call _ | Instr.Callind _ -> true
  | _ -> false

(** May the instruction read memory?  [Ret] pops the return address. *)
let reads_mem = function
  | Instr.Load _ | Instr.Pop _ | Instr.Ret -> true
  | _ -> false

let iter_mask f mask =
  for r = 0 to Reg.file_size - 1 do
    if mask land (1 lsl r) <> 0 then f r
  done

let mask_to_list mask =
  let acc = ref [] in
  for r = Reg.file_size - 1 downto 0 do
    if mask land (1 lsl r) <> 0 then acc := r :: !acc
  done;
  !acc
