(** Architectural snapshots: the "initial state" part of a pinball.

    A snapshot captures everything needed to resume execution at a region
    boundary: memory, per-thread register files and states, the lock
    table, the heap pointer and the input cursor.  Program output is
    deliberately not captured — a replayed region produces the region's
    own output. *)

open Dr_isa

type thread_snap = {
  s_tid : int;
  s_pc : int;
  s_regs : int array;
  s_state : Machine.thread_state;
  s_icount : int;
  s_wait_reacquire : int;
}

type t = {
  mem : int array;
  threads : thread_snap list;
  locks : (int * int) list;  (** (address, owner) *)
  heap_ptr : int;
  input_pos : int;
  total_icount : int;
}

let capture (m : Machine.t) =
  let threads =
    Array.to_list (Machine.threads m)
    |> List.map (fun (th : Machine.thread) ->
           { s_tid = th.tid; s_pc = th.pc; s_regs = Array.copy th.regs;
             s_state = th.state; s_icount = th.icount;
             s_wait_reacquire = th.wait_reacquire })
  in
  let locks = Hashtbl.fold (fun a o acc -> (a, o) :: acc) m.locks [] in
  { mem = Array.copy m.mem;
    threads;
    locks = List.sort compare locks;
    heap_ptr = m.heap_ptr;
    input_pos = m.input_pos;
    total_icount = m.total_icount }

(** Build a fresh machine resumed at this snapshot.  [input] must be the
    same input array the original machine ran with (the cursor is
    restored); replayed regions never consult it because reads come from
    the syscall log, so the replayer passes [[||]]. *)
let restore ?(input = [||]) (prog : Program.t) (s : t) : Machine.t =
  let m = Machine.create ~input prog in
  Array.blit s.mem 0 m.mem 0 (Array.length s.mem);
  let threads =
    List.map
      (fun ts ->
        { Machine.tid = ts.s_tid; pc = ts.s_pc; regs = Array.copy ts.s_regs;
          state = ts.s_state; icount = ts.s_icount;
          wait_reacquire = ts.s_wait_reacquire })
      s.threads
  in
  List.iteri (fun i th -> m.threads.(i) <- th) threads;
  m.nthreads <- List.length threads;
  Hashtbl.reset m.locks;
  List.iter (fun (a, o) -> Hashtbl.replace m.locks a o) s.locks;
  m.heap_ptr <- s.heap_ptr;
  m.input_pos <- min s.input_pos (Array.length input);
  m.total_icount <- s.total_icount;
  m

let encode_state e = function
  | Machine.Runnable -> Dr_util.Codec.put_uint e 0
  | Machine.Blocked_lock a -> Dr_util.Codec.put_uint e 1; Dr_util.Codec.put_uint e a
  | Machine.Blocked_join t -> Dr_util.Codec.put_uint e 2; Dr_util.Codec.put_uint e t
  | Machine.Finished -> Dr_util.Codec.put_uint e 3
  | Machine.Blocked_cond a -> Dr_util.Codec.put_uint e 4; Dr_util.Codec.put_uint e a

let decode_state d =
  match Dr_util.Codec.get_uint d with
  | 0 -> Machine.Runnable
  | 1 -> Machine.Blocked_lock (Dr_util.Codec.get_uint d)
  | 2 -> Machine.Blocked_join (Dr_util.Codec.get_uint d)
  | 3 -> Machine.Finished
  | 4 -> Machine.Blocked_cond (Dr_util.Codec.get_uint d)
  | _ -> raise (Dr_util.Codec.Corrupt "thread_state")

(** Memory is encoded sparsely as (address delta, value) pairs for
    non-zero cells — pinball size then tracks the memory footprint of the
    region, as in the paper, not the address-space size. *)
let encode e (s : t) =
  let open Dr_util.Codec in
  put_uint e (Array.length s.mem);
  let nonzero = ref 0 in
  Array.iter (fun v -> if v <> 0 then incr nonzero) s.mem;
  put_uint e !nonzero;
  let last = ref 0 in
  Array.iteri
    (fun a v ->
      if v <> 0 then begin
        put_uint e (a - !last);
        put_int e v;
        last := a
      end)
    s.mem;
  put_list e
    (fun e ts ->
      put_uint e ts.s_tid;
      put_uint e ts.s_pc;
      put_int_array e ts.s_regs;
      encode_state e ts.s_state;
      put_uint e ts.s_icount;
      put_int e ts.s_wait_reacquire)
    s.threads;
  put_list e
    (fun e (a, o) ->
      put_uint e a;
      put_uint e o)
    s.locks;
  put_uint e s.heap_ptr;
  put_uint e s.input_pos;
  put_uint e s.total_icount

(* Decoded memory is materialized densely, so [mem_size] cannot be
   validated against the (sparse) input length the way collection counts
   are; cap it instead.  16M words is far beyond any Program.mem_size
   this VM configures, and keeps a corrupt count from allocating
   gigabytes. *)
let max_mem_words = 1 lsl 24

let decode d : t =
  let open Dr_util.Codec in
  let mem_size = get_uint d in
  if mem_size < 0 || mem_size > max_mem_words then
    raise (Corrupt "snapshot mem size implausible");
  let mem = Array.make mem_size 0 in
  let nonzero = get_count ~min_elt_bytes:2 d "snapshot mem cells" in
  let last = ref 0 in
  for _ = 1 to nonzero do
    let a = !last + get_uint d in
    let v = get_int d in
    if a < 0 || a >= mem_size then raise (Corrupt "snapshot mem");
    mem.(a) <- v;
    last := a
  done;
  let threads =
    get_list d (fun d ->
        let s_tid = get_uint d in
        let s_pc = get_uint d in
        let s_regs = get_int_array d in
        let s_state = decode_state d in
        let s_icount = get_uint d in
        let s_wait_reacquire = get_int d in
        { s_tid; s_pc; s_regs; s_state; s_icount; s_wait_reacquire })
  in
  let locks =
    get_list d (fun d ->
        let a = get_uint d in
        let o = get_uint d in
        (a, o))
  in
  let heap_ptr = get_uint d in
  let input_pos = get_uint d in
  let total_icount = get_uint d in
  { mem; threads; locks; heap_ptr; input_pos; total_icount }
