(** Periodic execution digests for divergence localization.

    While logging, a digest of the stepping thread's architectural state
    is sampled every N retired instructions and stored in the pinball;
    during replay the same hash is recomputed at the same steps.  The
    first mismatch pinpoints where a replay left the recorded execution
    ("first divergence at step K in thread T") instead of letting it run
    on and fail far from the cause — or worse, finish silently wrong.

    The logger and the replayer call {!hash} from the same post-retire
    event hook, so both sides see identical machine state.  The digest
    covers the thread's pc, register file and retired count plus the
    memory cell the instruction wrote (the thread's dirty memory at this
    event): any divergence in control flow, register contents or stores
    flips it. *)

open Dr_machine

(* splitmix64-style finalizer, truncated to OCaml's 63-bit int *)
let mix h x =
  let h = h lxor x in
  let h = h * 0x9e3779b97f4a7c1 in
  let h = h lxor (h lsr 29) in
  let h = h * 0xbf58476d1ce4e5b in
  h lxor (h lsr 32)

(** Digest of [m]'s state right after the retired instruction described
    by [ev], at global region step [step].  Always non-negative, so it
    varint-encodes compactly. *)
let hash (m : Machine.t) (ev : Event.t) ~step =
  let th = Machine.thread m ev.Event.tid in
  let h = ref (mix step ev.Event.tid) in
  h := mix !h th.Machine.pc;
  h := mix !h th.Machine.icount;
  Array.iter (fun r -> h := mix !h r) th.Machine.regs;
  if ev.Event.mem_write >= 0 then begin
    h := mix !h ev.Event.mem_write;
    h := mix !h ev.Event.mem_write_value
  end;
  !h land max_int
