(** The PinPlay relogger: replay a region pinball while {e excluding} code
    regions, producing a slice pinball (paper §4).

    Exclusion regions follow the paper's form
    [[startPc:sinstance:tid, endPc:einstance:tid)]: a per-thread exclusion
    flag turns on when the [sinstance]-th execution of [startPc] is
    encountered in [tid] (that instruction is excluded) and turns off when
    the [einstance]-th execution of [endPc] is reached (that instruction
    is included).  While the flag is on, side-effect detection records the
    memory cells and registers the excluded code modifies; when it turns
    off, an injection record restoring those values is emitted before the
    next included instruction — the same mechanism PinPlay uses for
    system-call side effects. *)

open Dr_machine

exception Relog_error of string

type exclusion = {
  x_tid : int;
  x_start_pc : int;
  x_start_instance : int;  (** 1-based, counted from region start, per thread *)
  x_end : (int * int) option;  (** (end_pc, end_instance); [None] = to region end *)
}

type per_thread = {
  mutable flag : bool;
  mutable queue : exclusion list;  (** remaining exclusions, in region order *)
  pending_mem : (int, int) Hashtbl.t;
  pending_regs : int array;  (** register file after the last excluded instr *)
  mutable dirty : bool;  (** an excluded instruction has executed *)
  instance_of_pc : (int, int) Hashtbl.t;
}

let fresh_thread_state queue =
  { flag = false; queue; pending_mem = Hashtbl.create 16;
    pending_regs = Array.make Dr_isa.Reg.file_size 0; dirty = false;
    instance_of_pc = Hashtbl.create 64 }

(** Replay [pinball] (a region pinball) and produce the slice pinball that
    skips the given exclusion regions.  The exclusions of each thread must
    be given in region order and must not overlap. *)
let relog (prog : Dr_isa.Program.t) (pinball : Pinball.t)
    ~(exclusions : exclusion list) : Pinball.t =
  if pinball.Pinball.kind <> Pinball.Region then
    invalid_arg "Relogger.relog: expected a region pinball";
  Dr_obs.Obs.with_span ~cat:"relog" "relogger.relog" @@ fun sp ->
  let max_tid =
    List.fold_left (fun acc x -> max acc x.x_tid) 0 exclusions
    + prog.Dr_isa.Program.max_threads
  in
  let per_thread =
    Array.init max_tid (fun tid ->
        fresh_thread_state
          (List.filter (fun x -> x.x_tid = tid) exclusions))
  in
  let events = Dr_util.Vec.create ~dummy:(Pinball.Inject (-1)) in
  let injections = Dr_util.Vec.create ~dummy:{ Pinball.inj_tid = 0; inj_mem = []; inj_regs = [] } in
  let syscalls = Dr_util.Vec.Int_vec.create () in
  let schedule = Dr_util.Vec.create ~dummy:(0, 0) in
  let replayer = Replayer.create prog pinball in
  let m = Replayer.machine replayer in
  (* Flush the side effects of a just-finished exclusion region: the final
     values of every memory cell the excluded code wrote, plus the
     thread's complete register file as of the last excluded instruction
     (registers untouched by the excluded code re-inject their unchanged
     values, which is harmless). *)
  let flush_injection tid (st : per_thread) =
    if st.dirty then begin
      let inj_mem =
        List.sort compare (Hashtbl.fold (fun a v acc -> (a, v) :: acc) st.pending_mem [])
      in
      let inj_regs =
        List.init Dr_isa.Reg.file_size (fun r -> (r, st.pending_regs.(r)))
      in
      let idx = Dr_util.Vec.length injections in
      Dr_util.Vec.push injections { Pinball.inj_tid = tid; inj_mem; inj_regs };
      Dr_util.Vec.push events (Pinball.Inject idx);
      Hashtbl.reset st.pending_mem;
      st.dirty <- false
    end
  in
  let on_event (ev : Event.t) =
    let tid = ev.Event.tid and pc = ev.Event.pc in
    let st = per_thread.(tid) in
    let instance =
      let i = 1 + Option.value ~default:0 (Hashtbl.find_opt st.instance_of_pc pc) in
      Hashtbl.replace st.instance_of_pc pc i;
      i
    in
    (* exclusion end: the end instruction itself is included *)
    let check_end () =
      if st.flag then
        match st.queue with
        | { x_end = Some (epc, einst); _ } :: rest when epc = pc && einst = instance ->
          st.flag <- false;
          st.queue <- rest;
          flush_injection tid st
        | _ -> ()
    in
    check_end ();
    (* exclusion start: the start instruction itself is excluded.  An
       empty region [p:i, p:i) has its end marker on the same
       instruction: re-checking the end right after the start keeps that
       instruction included and excludes nothing (half-open interval). *)
    (if not st.flag then
       match st.queue with
       | { x_start_pc; x_start_instance; _ } :: _
         when x_start_pc = pc && x_start_instance = instance ->
         st.flag <- true;
         check_end ()
       | _ -> ());
    if st.flag then begin
      (* side-effect detection for the excluded instruction *)
      (match ev.Event.sys with
      | Event.Sys_spawn _ | Event.Sys_join _ | Event.Sys_lock _
      | Event.Sys_unlock _ | Event.Sys_exit _ | Event.Sys_alloc _
      | Event.Sys_wait _ | Event.Sys_signal _ ->
        raise
          (Relog_error
             (Printf.sprintf
                "synchronization instruction excluded at tid=%d pc=%d" tid pc))
      | _ -> ());
      (match Dr_isa.Program.instr prog pc with
      | Some Dr_isa.Instr.Ret when ev.Event.mem_read_value = Machine.ret_sentinel ->
        raise
          (Relog_error
             (Printf.sprintf "thread-final return excluded at tid=%d pc=%d" tid pc))
      | _ -> ());
      if ev.Event.mem_write >= 0 then
        Hashtbl.replace st.pending_mem ev.Event.mem_write ev.Event.mem_write_value;
      let th = Machine.thread m tid in
      Array.blit th.Machine.regs 0 st.pending_regs 0 Dr_isa.Reg.file_size;
      st.dirty <- true
    end
    else begin
      (* included instruction *)
      (* An included write supersedes any pending excluded write to the
         same cell: injecting the excluded (earlier) value at region end
         would clobber this one.  The included instruction re-executes
         during slice replay, so the cell needs no injection at all. *)
      if ev.Event.mem_write >= 0 then
        Array.iter
          (fun (other : per_thread) ->
            if other.dirty then Hashtbl.remove other.pending_mem ev.Event.mem_write)
          per_thread;
      Dr_util.Vec.push events (Pinball.Step { tid; pc });
      let n = Dr_util.Vec.length schedule in
      (if n > 0 && fst (Dr_util.Vec.get schedule (n - 1)) = tid then
         let t', c = Dr_util.Vec.get schedule (n - 1) in
         Dr_util.Vec.set schedule (n - 1) (t', c + 1)
       else Dr_util.Vec.push schedule (tid, 1));
      match ev.Event.sys with
      | Event.Sys_nondet { result; _ } -> Dr_util.Vec.Int_vec.push syscalls result
      | _ -> ()
    end
  in
  let _reason = Replayer.run ~hooks:{ Driver.on_event } replayer in
  (* trailing exclusions: flush what's left *)
  Array.iteri (fun tid st -> if st.flag then flush_injection tid st) per_thread;
  Dr_obs.Obs.add_attr sp "exclusions"
    (Dr_obs.Obs.Int (List.length exclusions));
  Dr_obs.Obs.add_attr sp "injections"
    (Dr_obs.Obs.Int (Dr_util.Vec.length injections));
  Dr_obs.Obs.add_attr sp "slice_events"
    (Dr_obs.Obs.Int (Dr_util.Vec.length events));
  (* the region pinball's digests are indexed by region step, which slice
     replay does not follow — they would all misfire, so drop them *)
  { pinball with
    Pinball.kind = Pinball.Slice;
    schedule = Dr_util.Vec.to_array schedule;
    syscalls = Dr_util.Vec.Int_vec.to_array syscalls;
    injections = Dr_util.Vec.to_array injections;
    slice_events = Dr_util.Vec.to_array events;
    digest_interval = 0;
    digests = [||] }
