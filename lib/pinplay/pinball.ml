(** The pinball: a self-contained, portable capture of an execution
    region (paper §1).

    A {e region pinball} holds the initial architectural state (snapshot)
    plus the two non-deterministic inputs of a run: the thread schedule
    (RLE of retired-instruction slices) and the results of
    rand/time/read syscalls, in consumption order.  Replaying a pinball
    reproduces the region exactly, any number of times.

    A {e slice pinball} (paper §4) additionally carries the per-event
    stream of an execution slice: [Step] events for the instructions that
    belong to the slice and [Inject] events that restore the side effects
    of skipped code regions.  Its [schedule]/[syscalls] cover only the
    included instructions.

    {2 On-disk container (format v2)}

    Pinballs are durable artifacts shipped between machines, so the
    serialized form is defensive: a header with magic, format version and
    flags; a section table (meta / snapshot / schedule / syscalls /
    injections / slice-events / digests) with per-section byte length and
    CRC32; and a whole-file trailer CRC32 over everything before it.  Any
    truncation or bit flip is reported as a structured {!Pinball_error}
    naming the section and offset — never an OOM, a crash, or a silently
    wrong replay.  v1 pinballs (bare magic + body, no checksums) are
    still readable; {!migrate} rewrites them as v2. *)

type kind = Region | Slice

type region_spec = {
  skip : int;  (** main-thread instructions skipped before the region *)
  length : int;  (** main-thread instructions captured *)
}

(** Side effects of one excluded code region, to be injected when the
    region is skipped during slice replay. *)
type injection = {
  inj_tid : int;
  inj_mem : (int * int) list;  (** (address, final value) *)
  inj_regs : (int * int) list;  (** (register index incl. flags, final value) *)
}

type slice_event =
  | Step of { tid : int; pc : int }  (** execute one included instruction *)
  | Inject of int  (** apply [injections.(i)] *)

(** One sampled execution digest: at region step [dg_step], thread
    [dg_tid] retired an instruction and the machine hashed to [dg_hash]
    (see {!Exec_digest}).  The replayer recomputes these to localize
    divergence. *)
type digest = { dg_step : int; dg_tid : int; dg_hash : int }

type t = {
  program_name : string;
  kind : kind;
  region : region_spec;
  snapshot : Dr_machine.Snapshot.t;
  schedule : (int * int) array;  (** RLE: (tid, retired count) *)
  syscalls : int array;  (** nondet results in consumption order *)
  injections : injection array;
  slice_events : slice_event array;  (** empty for region pinballs *)
  digest_interval : int;  (** digest sampling period; 0 = no digests *)
  digests : digest array;  (** sampled digests, ascending [dg_step] *)
}

let make_region ?(digest_interval = 0) ?(digests = [||]) ~program_name
    ~region ~snapshot ~schedule ~syscalls () =
  { program_name; kind = Region; region; snapshot; schedule; syscalls;
    injections = [||]; slice_events = [||]; digest_interval; digests }

(** Total retired instructions across all threads in the captured region. *)
let schedule_instructions t =
  Array.fold_left (fun acc (_, n) -> acc + n) 0 t.schedule

(** Number of instructions a slice pinball actually executes. *)
let step_count t =
  match t.kind with
  | Region -> schedule_instructions t
  | Slice ->
    Array.fold_left
      (fun acc e -> match e with Step _ -> acc + 1 | Inject _ -> acc)
      0 t.slice_events

(* ---- structured decode errors ---- *)

type error = { pe_section : string; pe_offset : int; pe_reason : string }

exception Pinball_error of error

let corrupt ~section ~offset reason =
  raise (Pinball_error { pe_section = section; pe_offset = offset; pe_reason = reason })

let pp_error fmt { pe_section; pe_offset; pe_reason } =
  Format.fprintf fmt "corrupt pinball: %s (section %s, byte offset %d)"
    pe_reason pe_section pe_offset

let error_to_string e = Format.asprintf "%a" pp_error e

(* ---- serialization ---- *)

let magic_v1 = "DRPB1"
let magic_v2 = "DRPB2"
let format_version = 2

(* flag bits (header [flags] word) *)
let flag_has_digests = 1

(* section ids; the table may list them in any order, each at most once *)
let sec_meta = 1
let sec_snapshot = 2
let sec_schedule = 3
let sec_syscalls = 4
let sec_injections = 5
let sec_slice_events = 6
let sec_digests = 7

let section_name = function
  | 1 -> "meta"
  | 2 -> "snapshot"
  | 3 -> "schedule"
  | 4 -> "syscalls"
  | 5 -> "injections"
  | 6 -> "slice-events"
  | 7 -> "digests"
  | id -> Printf.sprintf "unknown(%d)" id

(* -- field-level encoders/decoders, shared by the v1 body and the v2
      sections -- *)

let encode_meta e (t : t) =
  let open Dr_util.Codec in
  put_string e t.program_name;
  put_uint e (match t.kind with Region -> 0 | Slice -> 1);
  put_uint e t.region.skip;
  put_uint e t.region.length;
  put_uint e t.digest_interval

let encode_schedule e (t : t) =
  let open Dr_util.Codec in
  put_uint e (Array.length t.schedule);
  Array.iter
    (fun (tid, n) ->
      put_uint e tid;
      put_uint e n)
    t.schedule

let encode_syscalls e (t : t) = Dr_util.Codec.put_int_array e t.syscalls

let encode_injections e (t : t) =
  let open Dr_util.Codec in
  put_uint e (Array.length t.injections);
  Array.iter
    (fun inj ->
      put_uint e inj.inj_tid;
      put_list e
        (fun e (a, v) ->
          put_uint e a;
          put_int e v)
        inj.inj_mem;
      put_list e
        (fun e (r, v) ->
          put_uint e r;
          put_int e v)
        inj.inj_regs)
    t.injections

let encode_slice_events e (t : t) =
  let open Dr_util.Codec in
  put_uint e (Array.length t.slice_events);
  Array.iter
    (fun ev ->
      match ev with
      | Step { tid; pc } ->
        put_uint e 0;
        put_uint e tid;
        put_uint e pc
      | Inject i ->
        put_uint e 1;
        put_uint e i)
    t.slice_events

let encode_digests e (t : t) =
  let open Dr_util.Codec in
  put_uint e (Array.length t.digests);
  Array.iter
    (fun dg ->
      put_uint e dg.dg_step;
      put_uint e dg.dg_tid;
      put_uint e dg.dg_hash)
    t.digests

let decode_schedule d =
  let open Dr_util.Codec in
  let nsched = get_count ~min_elt_bytes:2 d "schedule" in
  Array.init nsched (fun _ ->
      let tid = get_uint d in
      let n = get_uint d in
      (tid, n))

let decode_injections d =
  let open Dr_util.Codec in
  let ninj = get_count ~min_elt_bytes:3 d "injections" in
  Array.init ninj (fun _ ->
      let inj_tid = get_uint d in
      let inj_mem =
        get_list d (fun d ->
            let a = get_uint d in
            let v = get_int d in
            (a, v))
      in
      let inj_regs =
        get_list d (fun d ->
            let r = get_uint d in
            let v = get_int d in
            (r, v))
      in
      { inj_tid; inj_mem; inj_regs })

let decode_slice_events d =
  let open Dr_util.Codec in
  let nev = get_count ~min_elt_bytes:2 d "slice events" in
  Array.init nev (fun _ ->
      match get_uint d with
      | 0 ->
        let tid = get_uint d in
        let pc = get_uint d in
        Step { tid; pc }
      | 1 -> Inject (get_uint d)
      | _ -> raise (Corrupt "slice event"))

let decode_digests d =
  let open Dr_util.Codec in
  let n = get_count ~min_elt_bytes:3 d "digests" in
  Array.init n (fun _ ->
      let dg_step = get_uint d in
      let dg_tid = get_uint d in
      let dg_hash = get_uint d in
      { dg_step; dg_tid; dg_hash })

(* -- legacy v1 body (no sections, no checksums, no digests) -- *)

let encode_v1_body e (t : t) =
  let open Dr_util.Codec in
  put_string e t.program_name;
  put_uint e (match t.kind with Region -> 0 | Slice -> 1);
  put_uint e t.region.skip;
  put_uint e t.region.length;
  Dr_machine.Snapshot.encode e t.snapshot;
  encode_schedule e t;
  encode_syscalls e t;
  encode_injections e t;
  encode_slice_events e t

let decode_v1_body d : t =
  let open Dr_util.Codec in
  let program_name = get_string d in
  let kind = match get_uint d with 0 -> Region | 1 -> Slice | _ -> raise (Corrupt "kind") in
  let skip = get_uint d in
  let length = get_uint d in
  let snapshot = Dr_machine.Snapshot.decode d in
  let schedule = decode_schedule d in
  let syscalls = get_int_array d in
  let injections = decode_injections d in
  let slice_events = decode_slice_events d in
  { program_name; kind; region = { skip; length }; snapshot; schedule;
    syscalls; injections; slice_events; digest_interval = 0; digests = [||] }

(** Legacy v1 writer, kept for compatibility tests and for producing
    fixtures the v1 read path can be exercised against. *)
let to_bytes_v1 t =
  let e = Dr_util.Codec.encoder () in
  Dr_util.Codec.put_string e magic_v1;
  encode_v1_body e t;
  Dr_util.Codec.to_string e

(* -- v2 container -- *)

let trailer_bytes = 4

let crc_to_trailer crc =
  let b = Bytes.create trailer_bytes in
  Bytes.set b 0 (Char.chr ((crc lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((crc lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((crc lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (crc land 0xff));
  Bytes.to_string b

let trailer_of_string s =
  let n = String.length s in
  let b i = Char.code s.[n - trailer_bytes + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let section_payload encode_fn t =
  let e = Dr_util.Codec.encoder () in
  encode_fn e t;
  Dr_util.Codec.to_string e

(** The (id, payload) list a pinball serializes to.  Empty optional
    sections (injections / slice events / digests of a region pinball
    without digests) are omitted. *)
let sections_of (t : t) =
  let always =
    [ (sec_meta, section_payload encode_meta t);
      (sec_snapshot, section_payload (fun e t -> Dr_machine.Snapshot.encode e t.snapshot) t);
      (sec_schedule, section_payload encode_schedule t);
      (sec_syscalls, section_payload encode_syscalls t) ]
  in
  let optional =
    List.filter
      (fun (id, _) ->
        (id <> sec_injections || Array.length t.injections > 0)
        && (id <> sec_slice_events || Array.length t.slice_events > 0)
        && (id <> sec_digests || Array.length t.digests > 0))
      [ (sec_injections, section_payload encode_injections t);
        (sec_slice_events, section_payload encode_slice_events t);
        (sec_digests, section_payload encode_digests t) ]
  in
  always @ optional

let to_bytes t =
  let open Dr_util.Codec in
  let sections = sections_of t in
  let e = encoder () in
  put_string e magic_v2;
  put_uint e format_version;
  put_uint e (if Array.length t.digests > 0 then flag_has_digests else 0);
  put_uint e (List.length sections);
  List.iter
    (fun (id, payload) ->
      put_uint e id;
      put_uint e (String.length payload);
      put_uint e (Dr_util.Crc32.string payload))
    sections;
  List.iter (fun (_, payload) -> Buffer.add_string e payload) sections;
  let body = to_string e in
  body ^ crc_to_trailer (Dr_util.Crc32.string body)

(* Parsed container skeleton: header fields + section table + payload
   extent, before any section payload is interpreted.  Shared by decoding
   and by the [verify] report. *)
type container = {
  c_version : int;
  c_flags : int;
  c_table : (int * int * int) list;  (** (section id, byte length, crc) *)
  c_payload_start : int;
  c_trailer_ok : bool;
}

let parse_container s (d : Dr_util.Codec.decoder) : container =
  let open Dr_util.Codec in
  let n = String.length s in
  if n < trailer_bytes then
    corrupt ~section:"trailer" ~offset:n "file too short for trailer checksum";
  let c_trailer_ok =
    trailer_of_string s = Dr_util.Crc32.string ~pos:0 ~len:(n - trailer_bytes) s
  in
  if not c_trailer_ok then
    corrupt ~section:"trailer" ~offset:(n - trailer_bytes)
      "whole-file checksum mismatch";
  let header = fun f -> try f () with Corrupt r -> corrupt ~section:"header" ~offset:d.pos r in
  let c_version = header (fun () -> get_uint d) in
  if c_version <> format_version then
    corrupt ~section:"header" ~offset:d.pos
      (Printf.sprintf "unsupported format version %d" c_version);
  let c_flags = header (fun () -> get_uint d) in
  let nsec = header (fun () -> get_count ~min_elt_bytes:3 d "section table") in
  let c_table =
    List.init nsec (fun _ ->
        header (fun () ->
            let id = get_uint d in
            let len = get_uint d in
            let crc = get_uint d in
            (id, len, crc)))
  in
  let c_payload_start = d.pos in
  let total = List.fold_left (fun acc (_, len, _) -> acc + len) 0 c_table in
  (* lengths are individually bounded below; the sum check rejects both
     overlap past the trailer and trailing garbage between sections and
     trailer *)
  List.iter
    (fun (id, len, _) ->
      if len < 0 || len > n then
        corrupt ~section:(section_name id) ~offset:c_payload_start
          "section length exceeds file")
    c_table;
  if c_payload_start + total <> n - trailer_bytes then
    corrupt ~section:"header" ~offset:c_payload_start
      "section table does not cover the container payload";
  { c_version; c_flags; c_table; c_payload_start; c_trailer_ok }

(* Decode one section payload with a fresh decoder; wraps low-level
   [Corrupt] into a located [Pinball_error] and rejects intra-section
   trailing bytes. *)
let decode_section ~name ~file_off payload f =
  let d = Dr_util.Codec.decoder payload in
  let v =
    try f d
    with Dr_util.Codec.Corrupt r -> corrupt ~section:name ~offset:(file_off + d.Dr_util.Codec.pos) r
  in
  if not (Dr_util.Codec.at_end d) then
    corrupt ~section:name ~offset:(file_off + d.Dr_util.Codec.pos)
      "trailing bytes in section";
  v

let decode_v2 s (d : Dr_util.Codec.decoder) : t =
  let c = parse_container s d in
  let meta = ref None and snapshot = ref None and schedule = ref None in
  let syscalls = ref None and injections = ref [||] in
  let slice_events = ref [||] and digests = ref [||] in
  let off = ref c.c_payload_start in
  List.iter
    (fun (id, len, crc) ->
      let name = section_name id in
      let payload = String.sub s !off len in
      if Dr_util.Crc32.string payload <> crc then
        corrupt ~section:name ~offset:!off "section checksum mismatch";
      let seen_twice taken = if taken then corrupt ~section:name ~offset:!off "duplicate section" in
      (if id = sec_meta then begin
         seen_twice (Option.is_some !meta);
         meta :=
           Some
             (decode_section ~name ~file_off:!off payload (fun d ->
                  let open Dr_util.Codec in
                  let program_name = get_string d in
                  let kind =
                    match get_uint d with
                    | 0 -> Region
                    | 1 -> Slice
                    | _ -> raise (Corrupt "kind")
                  in
                  let skip = get_uint d in
                  let length = get_uint d in
                  let digest_interval = get_uint d in
                  (program_name, kind, { skip; length }, digest_interval)))
       end
       else if id = sec_snapshot then begin
         seen_twice (Option.is_some !snapshot);
         snapshot :=
           Some (decode_section ~name ~file_off:!off payload Dr_machine.Snapshot.decode)
       end
       else if id = sec_schedule then begin
         seen_twice (Option.is_some !schedule);
         schedule := Some (decode_section ~name ~file_off:!off payload decode_schedule)
       end
       else if id = sec_syscalls then begin
         seen_twice (Option.is_some !syscalls);
         syscalls :=
           Some (decode_section ~name ~file_off:!off payload Dr_util.Codec.get_int_array)
       end
       else if id = sec_injections then
         injections := decode_section ~name ~file_off:!off payload decode_injections
       else if id = sec_slice_events then
         slice_events := decode_section ~name ~file_off:!off payload decode_slice_events
       else if id = sec_digests then
         digests := decode_section ~name ~file_off:!off payload decode_digests
       else corrupt ~section:name ~offset:!off "unknown section id");
      off := !off + len)
    c.c_table;
  let require what = function
    | Some v -> v
    | None -> corrupt ~section:what ~offset:c.c_payload_start "missing required section"
  in
  let program_name, kind, region, digest_interval = require "meta" !meta in
  { program_name; kind; region;
    snapshot = require "snapshot" !snapshot;
    schedule = require "schedule" !schedule;
    syscalls = require "syscalls" !syscalls;
    injections = !injections;
    slice_events = !slice_events;
    digest_interval;
    digests = !digests }

let of_bytes s : t =
  let open Dr_util.Codec in
  let d = decoder s in
  let m = try get_string d with Corrupt r -> corrupt ~section:"header" ~offset:d.pos r in
  if m = magic_v2 then decode_v2 s d
  else if m = magic_v1 then begin
    let t = try decode_v1_body d with Corrupt r -> corrupt ~section:"v1-body" ~offset:d.pos r in
    if not (at_end d) then
      corrupt ~section:"v1-body" ~offset:d.pos "trailing bytes after pinball";
    t
  end
  else corrupt ~section:"header" ~offset:0 "bad pinball magic"

(* [encode]/[decode] wrap the container API for callers that splice a
   pinball into a larger stream; [decode] consumes the decoder's whole
   remaining input. *)
let encode e (t : t) = Buffer.add_string e (to_bytes t)

let decode (d : Dr_util.Codec.decoder) : t =
  let open Dr_util.Codec in
  let t = of_bytes (String.sub d.src d.pos (remaining d)) in
  d.pos <- String.length d.src;
  t

(** On-disk size in bytes of the serialized pinball — the paper's "Space"
    column. *)
let size_bytes t = String.length (to_bytes t)

let save_file path t = Dr_util.Atomic_file.write_string path (to_bytes t)

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_bytes (really_input_string ic (in_channel_length ic)))

(** Rewrite [src] (any readable version) as a v2 container at [dst]. *)
let migrate ~src ~dst = save_file dst (load_file src)

(* ---- integrity verification (pinball_tool verify) ---- *)

type section_report = { sr_name : string; sr_bytes : int; sr_crc_ok : bool }

type report = {
  r_version : int;  (** container format version (1 for legacy files) *)
  r_trailer_ok : bool;
  r_sections : section_report list;  (** empty for v1 files *)
  r_digest_count : int;
  r_problems : string list;  (** empty iff the file is fully intact *)
}

let report_ok r = r.r_trailer_ok && r.r_problems = []

(** Check every integrity layer of a serialized pinball without raising:
    trailer CRC, per-section CRCs, then a full decode.  Unlike
    {!of_bytes}, which fails fast, this reports all detectable problems. *)
let verify_bytes s : report =
  let open Dr_util.Codec in
  let d = decoder s in
  let magic = try Some (get_string d) with Corrupt _ -> None in
  match magic with
  | Some m when m = magic_v1 ->
    let problems =
      try
        let t = of_bytes s in
        ignore (t : t);
        []
      with Pinball_error e -> [ error_to_string e ]
    in
    { r_version = 1; r_trailer_ok = true; r_sections = [];
      r_digest_count = 0; r_problems = problems }
  | Some m when m = magic_v2 ->
    let n = String.length s in
    let trailer_ok =
      n >= trailer_bytes
      && trailer_of_string s
         = Dr_util.Crc32.string ~pos:0 ~len:(n - trailer_bytes) s
    in
    let problems = ref [] in
    let problem p = problems := !problems @ [ p ] in
    if not trailer_ok then problem "whole-file trailer checksum mismatch";
    (* parse the skeleton even with a bad trailer, to locate the damage *)
    let sections =
      match
        (try
           let d = decoder s in
           let _ = get_string d in
           let version = get_uint d in
           let _flags = get_uint d in
           let nsec = get_count ~min_elt_bytes:3 d "section table" in
           let table =
             List.init nsec (fun _ ->
                 let id = get_uint d in
                 let len = get_uint d in
                 let crc = get_uint d in
                 (id, len, crc))
           in
           Some (version, table, d.pos)
         with Corrupt r | Pinball_error { pe_reason = r; _ } ->
           problem ("unreadable section table: " ^ r);
           None)
      with
      | None -> []
      | Some (version, table, payload_start) ->
        if version <> format_version then
          problem (Printf.sprintf "unsupported format version %d" version);
        let off = ref payload_start in
        List.filter_map
          (fun (id, len, crc) ->
            if len < 0 || !off + len > n - trailer_bytes then begin
              problem
                (Printf.sprintf "section %s length %d exceeds file"
                   (section_name id) len);
              None
            end
            else begin
              let crc_ok = Dr_util.Crc32.string ~pos:!off ~len s = crc in
              if not crc_ok then
                problem (Printf.sprintf "section %s checksum mismatch" (section_name id));
              let sr =
                { sr_name = section_name id; sr_bytes = len; sr_crc_ok = crc_ok }
              in
              off := !off + len;
              Some sr
            end)
          table
    in
    let digest_count =
      match (try Some (of_bytes s) with Pinball_error e ->
               if !problems = [] then problem (error_to_string e);
               None)
      with
      | Some t -> Array.length t.digests
      | None -> 0
    in
    { r_version = format_version; r_trailer_ok = trailer_ok;
      r_sections = sections; r_digest_count = digest_count;
      r_problems = !problems }
  | _ ->
    { r_version = 0; r_trailer_ok = false; r_sections = [];
      r_digest_count = 0; r_problems = [ "bad pinball magic" ] }

let verify_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> verify_bytes (really_input_string ic (in_channel_length ic)))
