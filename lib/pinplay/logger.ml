(** The PinPlay logger: fast-forward to a region, snapshot the
    architectural state, then record every source of non-determinism
    (thread schedule, syscall results) until the region ends.

    As in the paper, regions on the main thread are specified by [skip]
    and [length] in retired instructions, or by a predicate ("until the
    assertion fails").  Fast-forwarding runs without instrumentation
    ("Pin-only speed"); the reported [log_time] covers only the region. *)

open Dr_machine

let h_pinball_bytes = Dr_obs.Histogram.get "logger.pinball_bytes"
let h_region_instr = Dr_obs.Histogram.get "logger.region_instructions"

type spec =
  | Skip_length of { skip : int; length : int }
      (** capture [length] main-thread instructions after skipping [skip] *)
  | Skip_until of { skip : int; until : Event.t -> bool }
      (** capture from [skip] until the predicate fires (inclusive) *)
  | Whole
      (** capture from program start to termination *)

type stats = {
  ff_time : float;  (** fast-forward wall-clock seconds *)
  log_time : float;  (** logging wall-clock seconds *)
  pinball_bytes : int;
  region_instructions : int;  (** retired instructions, all threads *)
  main_instructions : int;  (** retired instructions, main thread *)
  stop : Driver.stop_reason;  (** why the region ended *)
}

type error =
  | Terminated_before_region of Machine.outcome
  | Deadlock_before_region

let pp_error fmt = function
  | Terminated_before_region o ->
    Format.fprintf fmt "program ended before the region: %a" Machine.pp_outcome o
  | Deadlock_before_region -> Format.pp_print_string fmt "deadlock before the region"

(** Log a region of [prog]'s execution under the given schedule [policy]
    (default: a seeded pseudo-random schedule, the "native" run).

    Every [digest_interval] retired instructions the logger samples an
    execution digest (hash of the stepping thread's registers and dirty
    memory, see {!Exec_digest}) into the pinball; the replayer recomputes
    them to localize the first divergent step.  Pass [~digest_interval:0]
    to disable sampling. *)
let log ?(policy = Driver.Seeded { seed = 1; max_quantum = 8 })
    ?(input = [||]) ?nondet_seed ?(max_steps = max_int) ?(digest_interval = 256)
    (prog : Dr_isa.Program.t) (spec : spec) : (Pinball.t * stats, error) result
    =
  let m = Machine.create ~input prog in
  let nondet = Machine.native_nondet ?seed:nondet_seed m in
  let session = Driver.session ~nondet m policy in
  let skip = match spec with
    | Skip_length { skip; _ } -> skip
    | Skip_until { skip; _ } -> skip
    | Whole -> 0
  in
  (* Phase 1: fast-forward to the region start (minimal instrumentation). *)
  let sp_ff = Dr_obs.Obs.start ~cat:"log" "logger.fast_forward" in
  let ff_t0 = Dr_util.Timer.now () in
  let ff_ok =
    if skip = 0 then true
    else begin
      let reason =
        Driver.resume session ~max_steps
          ~stop_when:(fun ev ->
            ev.Event.tid = 0 && (Machine.thread m 0).Machine.icount >= skip)
      in
      match reason with Driver.Stop_requested -> true | _ -> false
    end
  in
  let ff_time = Dr_util.Timer.now () -. ff_t0 in
  Dr_obs.Obs.stop sp_ff
    ~attrs:[ ("skip", Dr_obs.Obs.Int skip); ("ok", Dr_obs.Obs.Bool ff_ok) ];
  if not ff_ok then
    Error
      (match Machine.outcome m with
      | Machine.Running -> Deadlock_before_region
      | o -> Terminated_before_region o)
  else begin
    (* Phase 2: snapshot + logged execution. *)
    let snapshot = Snapshot.capture m in
    let main_start = (Machine.thread m 0).Machine.icount in
    let total_start = Machine.total_icount m in
    let schedule = Dr_util.Vec.create ~dummy:(0, 0) in
    let syscalls = Dr_util.Vec.Int_vec.create () in
    let digests = Dr_util.Vec.create ~dummy:{ Pinball.dg_step = 0; dg_tid = 0; dg_hash = 0 } in
    let steps = ref 0 in
    let on_event (ev : Event.t) =
      let n = Dr_util.Vec.length schedule in
      (if n > 0 && fst (Dr_util.Vec.get schedule (n - 1)) = ev.Event.tid then
         let tid, c = Dr_util.Vec.get schedule (n - 1) in
         Dr_util.Vec.set schedule (n - 1) (tid, c + 1)
       else Dr_util.Vec.push schedule (ev.Event.tid, 1));
      incr steps;
      if digest_interval > 0 && !steps mod digest_interval = 0 then
        Dr_util.Vec.push digests
          { Pinball.dg_step = !steps; dg_tid = ev.Event.tid;
            dg_hash = Exec_digest.hash m ev ~step:!steps };
      match ev.Event.sys with
      | Event.Sys_nondet { result; _ } -> Dr_util.Vec.Int_vec.push syscalls result
      | _ -> ()
    in
    let stop_when =
      match spec with
      | Skip_length { length; _ } ->
        fun (ev : Event.t) ->
          ev.Event.tid = 0
          && (Machine.thread m 0).Machine.icount - main_start >= length
      | Skip_until { until; _ } -> until
      | Whole -> fun _ -> false
    in
    let sp_log = Dr_obs.Obs.start ~cat:"log" "logger.log_region" in
    let log_t0 = Dr_util.Timer.now () in
    let stop =
      Driver.resume session ~max_steps ~hooks:{ Driver.on_event } ~stop_when
    in
    let log_time = Dr_util.Timer.now () -. log_t0 in
    let main_instructions = (Machine.thread m 0).Machine.icount - main_start in
    let region_instructions = Machine.total_icount m - total_start in
    let pinball =
      Pinball.make_region ~digest_interval
        ~digests:(Dr_util.Vec.to_array digests)
        ~program_name:prog.Dr_isa.Program.name
        ~region:{ Pinball.skip; length = main_instructions }
        ~snapshot
        ~schedule:(Dr_util.Vec.to_array schedule)
        ~syscalls:(Dr_util.Vec.Int_vec.to_array syscalls) ()
    in
    let pinball_bytes = Pinball.size_bytes pinball in
    Dr_obs.Obs.stop sp_log
      ~attrs:
        [ ("region_instructions", Dr_obs.Obs.Int region_instructions);
          ("main_instructions", Dr_obs.Obs.Int main_instructions);
          ("pinball_bytes", Dr_obs.Obs.Int pinball_bytes) ];
    Dr_obs.Histogram.observe h_pinball_bytes (float_of_int pinball_bytes);
    Dr_obs.Histogram.observe h_region_instr (float_of_int region_instructions);
    let stats =
      { ff_time; log_time; pinball_bytes; region_instructions;
        main_instructions; stop }
    in
    Ok (pinball, stats)
  end
