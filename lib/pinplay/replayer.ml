(** The PinPlay replayer: deterministically re-execute a region pinball.

    The replayer restores the snapshot, drives threads with the recorded
    schedule, and feeds syscall results from the log.  Any analysis
    (slicing, relogging) and any debugger interaction attaches to the
    replay via hooks and breakpoints — replaying the same pinball always
    reproduces the same events.

    If the pinball does not match the program (wrong build, perturbed
    log), the replay diverges.  Digest-carrying pinballs localize this:
    the replayer recomputes each sampled {!Exec_digest} and reports the
    first step whose digest disagrees with the recording, instead of
    letting the replay run on into an unrelated failure. *)

open Dr_machine

(** Why a replay left the recorded execution. *)
type divergence =
  | Schedule_divergence of string
      (** the recorded schedule named a blocked/bad thread *)
  | Syscall_log_exhausted of { consumed : int }
      (** the replay asked for more nondet results than were recorded *)
  | Digest_mismatch of { step : int; tid : int; expected : int; got : int }
      (** first sampled digest that disagrees with the recording *)

exception Divergence of divergence

let divergence_message = function
  | Schedule_divergence msg -> msg
  | Syscall_log_exhausted { consumed } ->
    Printf.sprintf "syscall log exhausted after %d results" consumed
  | Digest_mismatch { step; tid; expected; got } ->
    Printf.sprintf
      "first divergence at step %d in thread %d (digest %x, recorded %x)"
      step tid got expected

let pp_divergence fmt d = Format.pp_print_string fmt (divergence_message d)

type t = {
  machine : Machine.t;
  pinball : Pinball.t;
  session : Driver.session;
  syscall_pos : int ref;
  mutable steps : int;  (** retired instructions since the region start *)
  mutable next_digest : int;  (** index of the next pinball digest to check *)
}

(** A mid-replay checkpoint: enough state to resume the {e same} replay
    from this point without re-executing the prefix.  This is the
    "user-level check-pointing" the paper's related-work section proposes
    for reverse debugging (§8). *)
type checkpoint = {
  c_snapshot : Snapshot.t;
  c_steps : int;
  c_syscall_pos : int;
}

(** A nondet source that feeds results from a recorded syscall log. *)
let log_nondet (syscalls : int array) (pos : int ref) : Machine.nondet =
  fun _kind ->
    if !pos >= Array.length syscalls then
      raise (Divergence (Syscall_log_exhausted { consumed = !pos }))
    else begin
      let v = syscalls.(!pos) in
      incr pos;
      v
    end

(* the RLE schedule with its first [n] retired instructions consumed *)
let schedule_suffix (schedule : (int * int) array) n =
  let remaining = ref n in
  let out = ref [] in
  Array.iter
    (fun (tid, cnt) ->
      if !remaining >= cnt then remaining := !remaining - cnt
      else if !remaining > 0 then begin
        out := (tid, cnt - !remaining) :: !out;
        remaining := 0
      end
      else out := (tid, cnt) :: !out)
    schedule;
  Array.of_list (List.rev !out)

(* first digest index strictly beyond [steps] retired instructions *)
let digest_index (digests : Pinball.digest array) steps =
  let i = ref 0 in
  while !i < Array.length digests && digests.(!i).Pinball.dg_step <= steps do
    incr i
  done;
  !i

(** Create a replayer for a region pinball, optionally resuming [from] a
    checkpoint taken on an earlier replay of the {e same} pinball. *)
let create ?(from : checkpoint option) (prog : Dr_isa.Program.t)
    (pinball : Pinball.t) : t =
  if pinball.Pinball.kind <> Pinball.Region then
    invalid_arg "Replayer.create: slice pinballs replay via Dr_exeslice";
  let snapshot, steps, sys0 =
    match from with
    | None -> (pinball.Pinball.snapshot, 0, 0)
    | Some c -> (c.c_snapshot, c.c_steps, c.c_syscall_pos)
  in
  let machine = Snapshot.restore prog snapshot in
  let syscall_pos = ref sys0 in
  let nondet = log_nondet pinball.Pinball.syscalls syscall_pos in
  let schedule = schedule_suffix pinball.Pinball.schedule steps in
  let session = Driver.session ~nondet machine (Driver.Scripted schedule) in
  { machine; pinball; session; syscall_pos; steps;
    next_digest = digest_index pinball.Pinball.digests steps }

let machine t = t.machine

let steps t = t.steps

(** Capture a checkpoint at the current replay position (must be between
    instructions, i.e. not from inside a hook that mutates state). *)
let checkpoint (t : t) : checkpoint =
  { c_snapshot = Snapshot.capture t.machine; c_steps = t.steps;
    c_syscall_pos = !(t.syscall_pos) }

(* Recompute and compare the next recorded digest once the replay reaches
   its step.  Runs before user hooks so a divergence is reported against
   pristine machine state. *)
let check_digest (t : t) (ev : Event.t) =
  let digests = t.pinball.Pinball.digests in
  if t.next_digest < Array.length digests then begin
    let dg = digests.(t.next_digest) in
    if t.steps = dg.Pinball.dg_step then begin
      t.next_digest <- t.next_digest + 1;
      let got = Exec_digest.hash t.machine ev ~step:t.steps in
      if ev.Event.tid <> dg.Pinball.dg_tid || got <> dg.Pinball.dg_hash then
        raise
          (Divergence
             (Digest_mismatch
                { step = t.steps; tid = ev.Event.tid;
                  expected = dg.Pinball.dg_hash; got }))
    end
  end

(** Resume replay until a stop condition (breakpoint, predicate,
    [max_steps]) or the end of the recorded region ([Schedule_end]). *)
let resume ?hooks ?max_steps ?break_at ?stop_when (t : t) : Driver.stop_reason
    =
  let user_on_event =
    match hooks with Some h -> h.Driver.on_event | None -> fun _ -> ()
  in
  let hooks =
    { Driver.on_event =
        (fun ev ->
          t.steps <- t.steps + 1;
          check_digest t ev;
          user_on_event ev) }
  in
  let steps0 = t.steps in
  Dr_obs.Obs.with_span ~cat:"replay" "replayer.resume" @@ fun sp ->
  Fun.protect
    ~finally:(fun () ->
      Dr_obs.Obs.add_attr sp "steps" (Dr_obs.Obs.Int (t.steps - steps0)))
    (fun () ->
      try Driver.resume ~hooks ?max_steps ?break_at ?stop_when t.session
      with Driver.Replay_divergence msg ->
        raise (Divergence (Schedule_divergence msg)))

(** Replay the whole region in one go. *)
let run ?hooks (t : t) : Driver.stop_reason = resume ?hooks t

(** Convenience: replay a pinball against [prog] and return the machine's
    final state together with the stop reason. *)
let replay ?hooks prog pinball =
  let t = create prog pinball in
  let reason = run ?hooks t in
  (t.machine, reason)
