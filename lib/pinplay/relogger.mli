(** The PinPlay relogger: replay a region pinball while {e excluding} code
    regions, producing a slice pinball (paper §4, Fig. 4b).

    While a thread's exclusion flag is on, side-effect detection records
    the memory cells and registers the excluded code modifies; when it
    turns off, an injection record restoring those values is emitted —
    the same mechanism PinPlay uses for system-call side effects. *)

(** The exclusion set is not replayable as-is: it covers a
    synchronization instruction (spawn/join/lock/unlock/exit/alloc) or a
    thread-final return, whose effects cannot be expressed as
    memory/register injections. *)
exception Relog_error of string

(** One per-thread exclusion region
    [[startPc:sinstance, endPc:einstance)]: the start instruction is the
    first excluded, the end instruction the first included again.
    Instances are 1-based per (thread, pc), counted from the region
    start.  The interval is half-open: a region whose end marker equals
    its start ([p:i, p:i)) is empty and excludes nothing. *)
type exclusion = {
  x_tid : int;
  x_start_pc : int;
  x_start_instance : int;
  x_end : (int * int) option;  (** [None] = excluded through region end *)
}

(** Replay [pinball] (a region pinball) and produce the slice pinball
    that skips the given exclusion regions.  Each thread's exclusions
    must be given in region order, non-overlapping.
    @raise Relog_error per the exception's documentation. *)
val relog :
  Dr_isa.Program.t ->
  Pinball.t ->
  exclusions:exclusion list ->
  Pinball.t
