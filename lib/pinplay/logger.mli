(** The PinPlay logger: fast-forward to an execution region, snapshot the
    architectural state, and record every source of non-determinism until
    the region ends (paper Fig. 2, phase 1). *)

type spec =
  | Skip_length of { skip : int; length : int }
      (** capture [length] main-thread instructions after skipping [skip] *)
  | Skip_until of { skip : int; until : Dr_machine.Event.t -> bool }
      (** capture from [skip] until the predicate fires or the program
          terminates (e.g. at an assertion failure) *)
  | Whole  (** capture from program start to termination *)

type stats = {
  ff_time : float;  (** fast-forward wall-clock seconds (uninstrumented) *)
  log_time : float;  (** logging wall-clock seconds *)
  pinball_bytes : int;
  region_instructions : int;  (** retired instructions, all threads *)
  main_instructions : int;  (** retired instructions, main thread *)
  stop : Dr_machine.Driver.stop_reason;  (** why the region ended *)
}

type error =
  | Terminated_before_region of Dr_machine.Machine.outcome
  | Deadlock_before_region

val pp_error : Format.formatter -> error -> unit

(** Log a region of [prog]'s execution under the given schedule [policy]
    (default: a seeded pseudo-random schedule — the "native" run whose
    non-determinism the pinball captures).

    [digest_interval] (default 256, 0 disables) is the sampling period of
    the execution digests stored in the pinball for divergence
    localization during replay. *)
val log :
  ?policy:Dr_machine.Driver.policy ->
  ?input:int array ->
  ?nondet_seed:int ->
  ?max_steps:int ->
  ?digest_interval:int ->
  Dr_isa.Program.t ->
  spec ->
  (Pinball.t * stats, error) result
