(** The pinball: a self-contained, portable capture of an execution
    region (paper §1, §2).

    A {e region pinball} holds the initial architectural state plus the
    two non-deterministic inputs of a run (thread schedule, syscall
    results); a {e slice pinball} (§4) additionally carries the event
    stream of an execution slice with side-effect injections.  Pinballs
    serialize to a versioned, checksummed binary container (format v2:
    magic + version + flags header, per-section byte lengths and CRC32s,
    whole-file trailer CRC32) and can be shipped between machines:
    replaying one reproduces the region exactly.  Legacy v1 files remain
    readable; {!migrate} upgrades them. *)

type kind = Region | Slice

type region_spec = {
  skip : int;  (** main-thread instructions skipped before the region *)
  length : int;  (** main-thread instructions captured *)
}

(** Side effects of one excluded code region, injected during slice
    replay. *)
type injection = {
  inj_tid : int;
  inj_mem : (int * int) list;  (** (address, final value) *)
  inj_regs : (int * int) list;  (** (register index incl. flags, final value) *)
}

type slice_event =
  | Step of { tid : int; pc : int }  (** execute one included instruction *)
  | Inject of int  (** apply [injections.(i)] *)

(** One sampled execution digest (see {!Exec_digest}): at region step
    [dg_step], thread [dg_tid] retired an instruction and the machine
    hashed to [dg_hash].  The replayer recomputes these to localize the
    first divergent step. *)
type digest = { dg_step : int; dg_tid : int; dg_hash : int }

type t = {
  program_name : string;
  kind : kind;
  region : region_spec;
  snapshot : Dr_machine.Snapshot.t;
  schedule : (int * int) array;  (** RLE: (tid, retired count) *)
  syscalls : int array;  (** nondet results in consumption order *)
  injections : injection array;
  slice_events : slice_event array;  (** empty for region pinballs *)
  digest_interval : int;  (** digest sampling period; 0 = no digests *)
  digests : digest array;  (** sampled digests, ascending [dg_step] *)
}

val make_region :
  ?digest_interval:int ->
  ?digests:digest array ->
  program_name:string ->
  region:region_spec ->
  snapshot:Dr_machine.Snapshot.t ->
  schedule:(int * int) array ->
  syscalls:int array ->
  unit ->
  t

(** Total retired instructions across all threads in the captured region. *)
val schedule_instructions : t -> int

(** Number of instructions a slice pinball actually executes (for region
    pinballs, same as {!schedule_instructions}). *)
val step_count : t -> int

(** {2 Decode errors} *)

(** Where and why a pinball failed to decode: the container section being
    read, the byte offset into the file, and the low-level reason. *)
type error = { pe_section : string; pe_offset : int; pe_reason : string }

exception Pinball_error of error

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** {2 Serialization} *)

(** Append the v2 container to an encoder. *)
val encode : Dr_util.Codec.encoder -> t -> unit

(** Decode a container occupying the decoder's whole remaining input.
    @raise Pinball_error on malformed input. *)
val decode : Dr_util.Codec.decoder -> t

val to_bytes : t -> string

(** Legacy v1 writer (no checksums), kept so the v1 compatibility path
    stays testable. *)
val to_bytes_v1 : t -> string

(** Decode either container version; rejects trailing bytes.
    @raise Pinball_error on malformed input. *)
val of_bytes : string -> t

(** Serialized size in bytes — the paper's "Space" columns. *)
val size_bytes : t -> int

(** Atomic write: the file is staged at [path ^ ".tmp"], fsynced, and
    renamed into place, so a crash mid-save never clobbers [path]. *)
val save_file : string -> t -> unit

val load_file : string -> t

(** Rewrite [src] (v1 or v2) as a v2 container at [dst]. *)
val migrate : src:string -> dst:string -> unit

(** {2 Integrity verification} *)

type section_report = { sr_name : string; sr_bytes : int; sr_crc_ok : bool }

type report = {
  r_version : int;  (** container format version (1 for legacy files) *)
  r_trailer_ok : bool;
  r_sections : section_report list;  (** empty for v1 files *)
  r_digest_count : int;
  r_problems : string list;  (** empty iff the file is fully intact *)
}

val report_ok : report -> bool

(** Check every integrity layer (trailer CRC, per-section CRCs, full
    decode) without raising; reports all detectable problems. *)
val verify_bytes : string -> report

val verify_file : string -> report
