(** The PinPlay replayer: deterministically re-execute a region pinball
    (paper Fig. 2, phase 2).

    Replays restore the snapshot, drive threads with the recorded
    schedule, and feed syscall results from the log; hooks, breakpoints
    and step budgets attach any analysis or debugger interaction.
    Replaying the same pinball always reproduces the same events — the
    repeatability guarantee every other component builds on. *)

(** Why a replay left the recorded execution. *)
type divergence =
  | Schedule_divergence of string
      (** the recorded schedule named a blocked/bad thread *)
  | Syscall_log_exhausted of { consumed : int }
      (** the replay asked for more nondet results than were recorded *)
  | Digest_mismatch of { step : int; tid : int; expected : int; got : int }
      (** first sampled digest that disagrees with the recording; [step]
          and [tid] localize the divergence *)

(** The pinball does not match the execution (wrong program build, or a
    corrupted log). *)
exception Divergence of divergence

(** Human-readable rendering, e.g.
    ["first divergence at step 112 in thread 1 (digest ..., recorded ...)"]. *)
val divergence_message : divergence -> string

val pp_divergence : Format.formatter -> divergence -> unit

type t

(** A mid-replay checkpoint: enough state to resume the {e same} replay
    from this point without re-executing the prefix — the substrate for
    reverse debugging (paper §8). *)
type checkpoint = {
  c_snapshot : Dr_machine.Snapshot.t;
  c_steps : int;
  c_syscall_pos : int;
}

(** A nondet source feeding results from a recorded syscall log; exposed
    for slice replay. *)
val log_nondet : int array -> int ref -> Dr_machine.Machine.nondet

(** The RLE schedule with its first [n] retired instructions consumed. *)
val schedule_suffix : (int * int) array -> int -> (int * int) array

(** Create a replayer for a region pinball, optionally resuming [from] a
    checkpoint taken on an earlier replay of the {e same} pinball.
    @raise Invalid_argument on slice pinballs (those replay via
    [Dr_exeslice.Slice_replay]). *)
val create : ?from:checkpoint -> Dr_isa.Program.t -> Pinball.t -> t

val machine : t -> Dr_machine.Machine.t

(** Retired instructions since the region start. *)
val steps : t -> int

(** Capture a checkpoint at the current (between-instructions) position. *)
val checkpoint : t -> checkpoint

(** Resume replay until a stop condition (breakpoint, predicate,
    [max_steps]) or the end of the recorded region ([Schedule_end]).
    @raise Divergence if the pinball does not match the program. *)
val resume :
  ?hooks:Dr_machine.Driver.hooks ->
  ?max_steps:int ->
  ?break_at:(tid:int -> pc:int -> bool) ->
  ?stop_when:(Dr_machine.Event.t -> bool) ->
  t ->
  Dr_machine.Driver.stop_reason

(** Replay the whole region in one go. *)
val run : ?hooks:Dr_machine.Driver.hooks -> t -> Dr_machine.Driver.stop_reason

(** Convenience: replay a pinball against [prog], returning the final
    machine and the stop reason. *)
val replay :
  ?hooks:Dr_machine.Driver.hooks ->
  Dr_isa.Program.t ->
  Pinball.t ->
  Dr_machine.Machine.t * Dr_machine.Driver.stop_reason
