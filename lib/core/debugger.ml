(** The DrDebug command interpreter: the gdb/KDbg front end of the paper
    as a scriptable textual debugger.

    Every interaction from the paper's workflow is a command here:
    recording regions ([record]), deterministic replay with breakpoints
    ([replay], [break], [continue], [stepi]), state inspection ([print],
    [backtrace], [info threads], [list]), dynamic slicing ([slice],
    [slice-failure]), slice browsing ([slice-lines], [deps]), execution
    slices ([slice-pinball], [slice-replay], [sstep]) and the Maple
    integration ([maple]).  Commands return their output as a string, so
    the same engine drives the interactive CLI, scripts, and tests. *)

type t = { session : Session.t; mutable last_output : string }

let create (session : Session.t) : t = { session; last_output = "" }

let of_program ?input ?seed prog = create (Session.create ?input ?seed prog)

(* ---- helpers ---- *)

let buf_printf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let describe_stop (t : t) b (stop : Session.stop) =
  let line_str =
    match stop.Session.stop_line with
    | Some l -> Printf.sprintf " line %d" l
    | None -> ""
  in
  buf_printf b "[tid %d] %s at pc %d%s\n" stop.Session.stop_tid
    stop.Session.stop_reason stop.Session.stop_pc line_str;
  match stop.Session.stop_line with
  | Some l -> (
    match Dr_isa.Debug_info.source_line t.session.Session.prog.Dr_isa.Program.debug l with
    | Some src -> buf_printf b "%4d  %s\n" l src
    | None -> ())
  | None -> ()

let int_of_string_opt' s = int_of_string_opt (String.trim s)

let slice_statement_line (t : t) (slice : Dr_slicing.Slicer.t) idx =
  let pos = slice.Dr_slicing.Slicer.positions.(idx) in
  let r = Dr_slicing.Global_trace.record slice.Dr_slicing.Slicer.gt pos in
  let line_str =
    if r.Dr_slicing.Trace.line >= 0 then
      match
        Dr_isa.Debug_info.source_line t.session.Session.prog.Dr_isa.Program.debug
          r.Dr_slicing.Trace.line
      with
      | Some src -> Printf.sprintf " | %s" (String.trim src)
      | None -> ""
    else ""
  in
  Printf.sprintf "[%d] tid %d pc %d #%d line %d%s" idx r.Dr_slicing.Trace.tid
    r.Dr_slicing.Trace.pc r.Dr_slicing.Trace.instance r.Dr_slicing.Trace.line
    line_str

let help_text =
  {|DrDebug commands:
  record whole | record region <skip> <len> | record until-fail
                          capture a pinball of the (region of) execution
  replay                  start (or restart) deterministic replay
  break <line|function>   set a breakpoint          delete <id>
  watch <var>             stop when the variable's memory cell is written
  continue | c            run to next breakpoint or end of region
  stepi [n]               execute n instructions (default 1)
  reverse-stepi [n]       step n instructions backwards (checkpoint + replay)
  reverse-continue | rc   run backwards to the previous breakpoint hit
  goto <step>             move the replay to an absolute step count
  where                   show the current stop
  info checkpoints        list auto-captured reverse-debugging checkpoints
  print <var> [tid]       read a variable (thread's frame or global)
  backtrace [tid]         call stack of a thread
  info threads|breaks|pinball|slice
  list <line>             show source around a line
  slice <var>             backwards dynamic slice for var at current stop
  slice-failure           slice for the failure point of the region
  slice-lines             source lines in the current slice
  slice-stmts [n]         first n slice statements (default 20)
  deps <idx>              dependences of slice statement idx (backwards nav)
  slice-tree [idx] [d]    dependence tree from statement idx (default: criterion)
  slice-save <file>       save the slice file
  slice-pinball           relog the slice into a slice pinball
  slice-replay            start replaying the execution slice
  sstep [n]               step n slice statements (default 1)
  set prune|refine on|off precision toggles (paper section 5)
  maple                   expose a concurrency bug and load its pinball
  help                    this text|}

(* ---- command execution ---- *)

let exec (t : t) (line : string) : (string, string) result =
  let s = t.session in
  let b = Buffer.create 256 in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  Dr_obs.Obs.with_span ~cat:"debugger" "debugger.exec" @@ fun sp ->
  (match words with
  | cmd :: _ -> Dr_obs.Obs.add_attr sp "command" (Dr_obs.Obs.Str cmd)
  | [] -> ());
  let result =
    match words with
    | [] -> Ok ()
    | [ "help" ] ->
      Buffer.add_string b help_text;
      Buffer.add_char b '\n';
      Ok ()
    (* ---- recording ---- *)
    | [ "record" ] | [ "record"; "whole" ] | [ "record"; "region" ] -> (
      match Session.record s Session.Whole with
      | Error e -> Error e
      | Ok stats ->
        buf_printf b
          "recorded whole execution: %d instructions (%d main thread), pinball %d bytes\n"
          stats.Dr_pinplay.Logger.region_instructions
          stats.Dr_pinplay.Logger.main_instructions
          stats.Dr_pinplay.Logger.pinball_bytes;
        buf_printf b "region ended: %s\n"
          (Format.asprintf "%a" Dr_machine.Driver.pp_stop_reason
             stats.Dr_pinplay.Logger.stop);
        Ok ())
    | [ "record"; "region"; skip; len ] -> (
      match (int_of_string_opt' skip, int_of_string_opt' len) with
      | Some skip, Some length -> (
        match Session.record s (Session.Region { skip; length }) with
        | Error e -> Error e
        | Ok stats ->
          buf_printf b
            "recorded region: skip=%d length=%d (%d instructions all threads), pinball %d bytes\n"
            skip stats.Dr_pinplay.Logger.main_instructions
            stats.Dr_pinplay.Logger.region_instructions
            stats.Dr_pinplay.Logger.pinball_bytes;
          Ok ())
      | _ -> Error "usage: record region <skip> <length>")
    | [ "record"; "until-fail" ] -> (
      match Session.record s Session.Until_failure with
      | Error e -> Error e
      | Ok stats ->
        buf_printf b "recorded until: %s (%d instructions)\n"
          (Format.asprintf "%a" Dr_machine.Driver.pp_stop_reason
             stats.Dr_pinplay.Logger.stop)
          stats.Dr_pinplay.Logger.region_instructions;
        Ok ())
    (* ---- replay ---- *)
    | [ "replay" ] -> (
      match Session.start_replay s with
      | Error e -> Error e
      | Ok () ->
        buf_printf b "replaying region pinball (deterministic)\n";
        Ok ())
    | [ "continue" ] | [ "c" ] -> (
      match Session.continue_replay s with
      | Error e -> Error e
      | Ok stop ->
        describe_stop t b stop;
        Ok ())
    | "stepi" :: rest -> (
      let n =
        match rest with
        | [] -> Some 1
        | [ x ] -> int_of_string_opt' x
        | _ -> None
      in
      match n with
      | None -> Error "usage: stepi [n]"
      | Some n -> (
        match Session.stepi s n with
        | Error e -> Error e
        | Ok stop ->
          describe_stop t b stop;
          Ok ()))
    | [ "where" ] -> (
      match s.Session.last_stop with
      | Some stop ->
        describe_stop t b stop;
        Ok ()
      | None -> Error "no current stop")
    (* ---- reverse debugging (paper section 8, implemented) ---- *)
    | "reverse-stepi" :: rest -> (
      let n =
        match rest with
        | [] -> Some 1
        | [ x ] -> int_of_string_opt' x
        | _ -> None
      in
      match n with
      | None -> Error "usage: reverse-stepi [n]"
      | Some n -> (
        match Session.reverse_stepi s n with
        | Error e -> Error e
        | Ok stop ->
          describe_stop t b stop;
          Ok ()))
    | [ "reverse-continue" ] | [ "rc" ] -> (
      match Session.reverse_continue s with
      | Error e -> Error e
      | Ok stop ->
        describe_stop t b stop;
        Ok ())
    | [ "goto"; target ] -> (
      match int_of_string_opt' target with
      | None -> Error "usage: goto <step>"
      | Some target -> (
        match Session.goto_step s ~target with
        | Error e -> Error e
        | Ok stop ->
          describe_stop t b stop;
          Ok ()))
    | [ "info"; "checkpoints" ] ->
      if s.Session.checkpoints = [] then buf_printf b "no checkpoints yet\n"
      else
        List.iter
          (fun c ->
            buf_printf b "checkpoint at step %d\n" c.Dr_pinplay.Replayer.c_steps)
          (List.rev s.Session.checkpoints);
      Ok ()
    (* ---- breakpoints ---- *)
    | [ "break"; target ] -> (
      let r =
        match int_of_string_opt' target with
        | Some line -> Session.add_breakpoint_line s line
        | None -> Session.add_breakpoint_func s target
      in
      match r with
      | Error e -> Error e
      | Ok bp ->
        buf_printf b "breakpoint %d at pc %d%s\n" bp.Session.bp_id
          bp.Session.bp_pc
          (match bp.Session.bp_line with
          | Some l -> Printf.sprintf " (line %d)" l
          | None -> "");
        Ok ())
    | [ "watch"; name ] -> (
      let tid =
        match s.Session.last_stop with
        | Some st -> st.Session.stop_tid
        | None -> 0
      in
      match Session.add_watchpoint s (Session.machine s) ~tid name with
      | Error e -> Error e
      | Ok wp ->
        buf_printf b "watchpoint %d on %s (address %d)\n" wp.Session.wp_id
          wp.Session.wp_name wp.Session.wp_addr;
        Ok ())
    | [ "info"; "watch" ] ->
      if s.Session.watchpoints = [] then buf_printf b "no watchpoints\n"
      else
        List.iter
          (fun w ->
            buf_printf b "%d: %s at address %d\n" w.Session.wp_id
              w.Session.wp_name w.Session.wp_addr)
          s.Session.watchpoints;
      Ok ()
    | [ "delete"; id ] -> (
      match int_of_string_opt' id with
      | Some id ->
        if Session.delete_breakpoint s id then begin
          buf_printf b "deleted breakpoint %d\n" id;
          Ok ()
        end
        else Error (Printf.sprintf "no breakpoint %d" id)
      | None -> Error "usage: delete <id>")
    (* ---- inspection ---- *)
    | "print" :: name :: rest -> (
      match Session.machine s with
      | None -> Error "no active replay"
      | Some m -> (
        let tid =
          match rest with
          | [ x ] -> int_of_string_opt' x
          | [] ->
            Some
              (match s.Session.last_stop with
              | Some st -> st.Session.stop_tid
              | None -> 0)
          | _ -> None
        in
        match tid with
        | None -> Error "usage: print <var> [tid]"
        | Some tid -> (
          match Session.read_var s m ~tid name with
          | Error e -> Error e
          | Ok v ->
            buf_printf b "%s = %d\n" name v;
            Ok ())))
    | "backtrace" :: rest -> (
      match Session.machine s with
      | None -> Error "no active replay"
      | Some m -> (
        let tid =
          match rest with
          | [ x ] -> int_of_string_opt' x
          | [] ->
            Some
              (match s.Session.last_stop with
              | Some st -> st.Session.stop_tid
              | None -> 0)
          | _ -> None
        in
        match tid with
        | None -> Error "usage: backtrace [tid]"
        | Some tid ->
          List.iteri
            (fun i (fname, pc) -> buf_printf b "#%d %s (pc %d)\n" i fname pc)
            (Session.backtrace s m ~tid);
          Ok ()))
    | [ "info"; "threads" ] -> (
      match Session.machine s with
      | None -> Error "no active replay"
      | Some m ->
        for tid = 0 to Dr_machine.Machine.num_threads m - 1 do
          let th = Dr_machine.Machine.thread m tid in
          let state =
            match th.Dr_machine.Machine.state with
            | Dr_machine.Machine.Runnable -> "runnable"
            | Dr_machine.Machine.Blocked_lock a -> Printf.sprintf "blocked on lock %d" a
            | Dr_machine.Machine.Blocked_join j -> Printf.sprintf "joining tid %d" j
            | Dr_machine.Machine.Blocked_cond a ->
              Printf.sprintf "waiting on condvar %d" a
            | Dr_machine.Machine.Finished -> "finished"
          in
          buf_printf b "tid %d: pc %d%s icount %d %s\n" tid
            th.Dr_machine.Machine.pc
            (match Session.line_of_pc s th.Dr_machine.Machine.pc with
            | Some l -> Printf.sprintf " (line %d)" l
            | None -> "")
            th.Dr_machine.Machine.icount state
        done;
        Ok ())
    | [ "info"; "breaks" ] ->
      if s.Session.breakpoints = [] then buf_printf b "no breakpoints\n"
      else
        List.iter
          (fun bp ->
            buf_printf b "%d: pc %d%s %s\n" bp.Session.bp_id bp.Session.bp_pc
              (match bp.Session.bp_line with
              | Some l -> Printf.sprintf " (line %d)" l
              | None -> "")
              (if bp.Session.bp_enabled then "enabled" else "disabled"))
          s.Session.breakpoints;
      Ok ()
    | [ "info"; "pinball" ] -> (
      match s.Session.pinball with
      | None -> Error "no pinball"
      | Some pb ->
        buf_printf b
          "pinball: %s region skip=%d length=%d, %d instructions, %d bytes\n"
          pb.Dr_pinplay.Pinball.program_name
          pb.Dr_pinplay.Pinball.region.Dr_pinplay.Pinball.skip
          pb.Dr_pinplay.Pinball.region.Dr_pinplay.Pinball.length
          (Dr_pinplay.Pinball.schedule_instructions pb)
          (Dr_pinplay.Pinball.size_bytes pb);
        (match s.Session.slice_pinball with
        | Some spb ->
          buf_printf b "slice pinball: %d instructions (%d injections), %d bytes\n"
            (Dr_pinplay.Pinball.step_count spb)
            (Array.length spb.Dr_pinplay.Pinball.injections)
            (Dr_pinplay.Pinball.size_bytes spb)
        | None -> ());
        Ok ())
    | [ "info"; "slice" ] -> (
      match s.Session.slice with
      | None -> Error "no slice"
      | Some slice ->
        buf_printf b "slice: %d statements, %d lines, %d edges\n"
          (Dr_slicing.Slicer.size slice)
          (List.length (Dr_slicing.Slicer.source_lines slice))
          (Array.length slice.Dr_slicing.Slicer.edges);
        buf_printf b "traversal: visited %d records, skipped %d/%d blocks\n"
          slice.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.visited
          slice.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.skipped_blocks
          slice.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.total_blocks;
        Ok ())
    | [ "list"; at ] -> (
      match int_of_string_opt' at with
      | None -> Error "usage: list <line>"
      | Some line ->
        let dbg = s.Session.prog.Dr_isa.Program.debug in
        for l = max 1 (line - 3) to line + 3 do
          match Dr_isa.Debug_info.source_line dbg l with
          | Some src -> buf_printf b "%4d%s %s\n" l (if l = line then ">" else " ") src
          | None -> ()
        done;
        Ok ())
    (* ---- slicing ---- *)
    | [ "slice"; var ] -> (
      match Session.slice_var s var with
      | Error e -> Error e
      | Ok slice ->
        buf_printf b "slice for %s: %d statements over %d source lines\n" var
          (Dr_slicing.Slicer.size slice)
          (List.length (Dr_slicing.Slicer.source_lines slice));
        Ok ())
    | [ "slice-failure" ] -> (
      match Session.slice_failure s with
      | Error e -> Error e
      | Ok slice ->
        buf_printf b "failure slice: %d statements over %d source lines\n"
          (Dr_slicing.Slicer.size slice)
          (List.length (Dr_slicing.Slicer.source_lines slice));
        Ok ())
    | [ "slice-lines" ] -> (
      match s.Session.slice with
      | None -> Error "no slice"
      | Some slice ->
        let dbg = s.Session.prog.Dr_isa.Program.debug in
        List.iter
          (fun l ->
            match Dr_isa.Debug_info.source_line dbg l with
            | Some src -> buf_printf b "%4d* %s\n" l src
            | None -> buf_printf b "%4d*\n" l)
          (Dr_slicing.Slicer.source_lines slice);
        Ok ())
    | "slice-stmts" :: rest -> (
      match s.Session.slice with
      | None -> Error "no slice"
      | Some slice -> (
        let n =
          match rest with
          | [] -> Some 20
          | [ x ] -> int_of_string_opt' x
          | _ -> None
        in
        match n with
        | None -> Error "usage: slice-stmts [n]"
        | Some n ->
          let total = Dr_slicing.Slicer.size slice in
          for i = max 0 (total - n) to total - 1 do
            buf_printf b "%s\n" (slice_statement_line t slice i)
          done;
          Ok ()))
    | [ "deps"; idx ] -> (
      match (s.Session.slice, int_of_string_opt' idx) with
      | None, _ -> Error "no slice"
      | _, None -> Error "usage: deps <idx>"
      | Some slice, Some i ->
        if i < 0 || i >= Dr_slicing.Slicer.size slice then Error "index out of range"
        else begin
          let pos = slice.Dr_slicing.Slicer.positions.(i) in
          let deps = Dr_slicing.Slicer.deps_of slice pos in
          if deps = [] then buf_printf b "no recorded dependences\n"
          else
            List.iter
              (fun (kind, target) ->
                (* find target's index within the slice *)
                let tidx = ref (-1) in
                Array.iteri
                  (fun j p -> if p = target then tidx := j)
                  slice.Dr_slicing.Slicer.positions;
                buf_printf b "%s -> %s\n"
                  (Format.asprintf "%a" Dr_slicing.Slicer.pp_kind kind)
                  (if !tidx >= 0 then slice_statement_line t slice !tidx
                   else Printf.sprintf "pos %d (outside slice)" target))
              deps;
          Ok ()
        end)
    | "slice-tree" :: rest -> (
      (* render the backwards dependence tree from a slice statement (the
         criterion by default): the textual version of browsing the
         dynamic dependence graph in the paper's KDbg GUI *)
      match s.Session.slice with
      | None -> Error "no slice"
      | Some slice -> (
        let root, depth =
          match rest with
          | [] -> (Some (Dr_slicing.Slicer.size slice - 1), 3)
          | [ i ] -> (int_of_string_opt' i, 3)
          | [ i; d ] -> (int_of_string_opt' i, Option.value ~default:3 (int_of_string_opt' d))
          | _ -> (None, 3)
        in
        match root with
        | None -> Error "usage: slice-tree [idx] [depth]"
        | Some root when root < 0 || root >= Dr_slicing.Slicer.size slice ->
          Error "index out of range"
        | Some root ->
          let visited = Hashtbl.create 32 in
          let idx_of_pos pos =
            let found = ref (-1) in
            Array.iteri
              (fun j p -> if p = pos then found := j)
              slice.Dr_slicing.Slicer.positions;
            !found
          in
          let rec render indent pos depth =
            let idx = idx_of_pos pos in
            let seen = Hashtbl.mem visited pos in
            buf_printf b "%s%s%s\n" indent
              (if idx >= 0 then slice_statement_line t slice idx
               else Printf.sprintf "(outside slice: pos %d)" pos)
              (if seen then "  [seen above]" else "");
            if (not seen) && depth > 0 then begin
              Hashtbl.replace visited pos ();
              List.iter
                (fun (kind, target) ->
                  buf_printf b "%s  %s\n" indent
                    (Format.asprintf "└─ %a" Dr_slicing.Slicer.pp_kind kind);
                  render (indent ^ "     ") target (depth - 1))
                (Dr_slicing.Slicer.deps_of slice pos)
            end
          in
          render "" slice.Dr_slicing.Slicer.positions.(root) depth;
          Ok ()))
    | [ "slice-save"; path ] -> (
      match s.Session.slice with
      | None -> Error "no slice"
      | Some slice ->
        Dr_slicing.Slicer.save_file path slice;
        buf_printf b "slice saved to %s\n" path;
        Ok ())
    | [ "slice-pinball" ] -> (
      match Session.make_slice_pinball s with
      | Error e -> Error e
      | Ok (spb, stats) ->
        buf_printf b
          "slice pinball: %d of %d instructions kept (%.1f%%), %d exclusion regions, %d bytes\n"
          stats.Dr_exeslice.Exclusion.included_records
          stats.Dr_exeslice.Exclusion.total_records
          (Dr_util.Stats.percent
             ~part:stats.Dr_exeslice.Exclusion.included_records
             ~total:stats.Dr_exeslice.Exclusion.total_records)
          stats.Dr_exeslice.Exclusion.regions
          (Dr_pinplay.Pinball.size_bytes spb);
        Ok ())
    | [ "slice-replay" ] -> (
      match Session.start_slice_replay s with
      | Error e -> Error e
      | Ok () ->
        buf_printf b "replaying execution slice (skipped code is injected)\n";
        Ok ())
    | "sstep" :: rest -> (
      let n =
        match rest with
        | [] -> Some 1
        | [ x ] -> int_of_string_opt' x
        | _ -> None
      in
      match n with
      | None -> Error "usage: sstep [n]"
      | Some n ->
        let rec go k =
          if k = 0 then Ok ()
          else
            match Session.slice_step s with
            | Error e -> Error e
            | Ok (Dr_exeslice.Slice_replay.Stepped { tid; pc; line }) ->
              buf_printf b "[tid %d] slice statement at pc %d line %d" tid pc line;
              (match
                 if line >= 0 then
                   Dr_isa.Debug_info.source_line
                     s.Session.prog.Dr_isa.Program.debug line
                 else None
               with
              | Some src -> buf_printf b " | %s\n" (String.trim src)
              | None -> buf_printf b "\n");
              go (k - 1)
            | Ok (Dr_exeslice.Slice_replay.Finished o) ->
              buf_printf b "slice replay finished: %s\n"
                (Format.asprintf "%a" Dr_machine.Machine.pp_outcome o);
              Ok ()
            | Ok Dr_exeslice.Slice_replay.End_of_slice ->
              buf_printf b "end of execution slice\n";
              Ok ()
            | Ok (Dr_exeslice.Slice_replay.Injected _) -> go k
        in
        go n)
    (* ---- settings ---- *)
    | [ "set"; "prune"; v ] when v = "on" || v = "off" ->
      s.Session.prune <- v = "on";
      s.Session.analysis <- None;
      buf_printf b "save/restore pruning %s\n" v;
      Ok ()
    | [ "set"; "refine"; v ] when v = "on" || v = "off" ->
      s.Session.refine <- v = "on";
      s.Session.analysis <- None;
      buf_printf b "CFG refinement %s\n" v;
      Ok ()
    (* ---- maple ---- *)
    | [ "maple" ] -> (
      match Dr_maple.Active.expose ~input:s.Session.input s.Session.prog with
      | None -> Error "maple: no bug exposed"
      | Some exposed ->
        Session.load_pinball s exposed.Dr_maple.Active.pinball;
        buf_printf b "maple exposed a bug via iRoot %s: %s\n"
          (Dr_maple.Iroot.to_string exposed.Dr_maple.Active.failing_iroot)
          (Format.asprintf "%a" Dr_machine.Machine.pp_outcome
             exposed.Dr_maple.Active.outcome);
        buf_printf b "buggy pinball loaded; use replay\n";
        Ok ())
    | cmd :: _ -> Error (Printf.sprintf "unknown command %s (try help)" cmd)
  in
  match result with
  | Ok () ->
    t.last_output <- Buffer.contents b;
    Ok (Buffer.contents b)
  | Error e -> Error e

(** Run a script of commands; stops at the first error. *)
let exec_script (t : t) (lines : string list) : (string list, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match exec t l with
      | Ok out -> go (out :: acc) rest
      | Error e -> Error (Printf.sprintf "%s: %s" l e))
  in
  go [] lines
