(** A DrDebug debugging session: the state machine behind the debugger
    front end (paper Fig. 2 and §6).

    A session owns a program and moves through the cyclic-debugging
    phases:

    - {e native}: run or record the program (logger);
    - {e replay}: deterministically re-execute a region pinball with
      breakpoints and stepping; request dynamic slices at any stop;
    - {e slice replay}: after a slice has been saved and relogged into a
      slice pinball, step statement-by-statement through the execution
      slice while examining program state.

    All analysis artifacts (trace, global trace, LP summaries) are cached
    per pinball: PinPlay's repeatability guarantee makes them valid for
    every subsequent replay of the same pinball. *)

open Dr_machine

type breakpoint = { bp_id : int; bp_pc : int; bp_line : int option; mutable bp_enabled : bool }

type watchpoint = { wp_id : int; wp_name : string; wp_addr : int }

type stop = {
  stop_tid : int;
  stop_pc : int;
  stop_line : int option;
  stop_reason : string;
}

type mode =
  | Idle
  | Replaying of Dr_pinplay.Replayer.t
  | Slice_stepping of Dr_exeslice.Slice_replay.t

type analysis = {
  collector : Dr_slicing.Collector.result;
  gt : Dr_slicing.Global_trace.t;
  lp : Dr_slicing.Lp.t;
}

type t = {
  prog : Dr_isa.Program.t;
  input : int array;
  mutable policy : Driver.policy;  (** schedule for native runs / recording *)
  mutable mode : mode;
  mutable pinball : Dr_pinplay.Pinball.t option;
  mutable slice_pinball : Dr_pinplay.Pinball.t option;
  mutable analysis : analysis option;
  mutable slice : Dr_slicing.Slicer.t option;
  mutable breakpoints : breakpoint list;
  mutable watchpoints : watchpoint list;
  mutable next_bp_id : int;
  mutable last_stop : stop option;
  mutable replay_steps : int;  (** retired instructions in the current replay *)
  mutable prune : bool;  (** apply save/restore pruning to slices *)
  mutable refine : bool;  (** apply CFG refinement to control deps *)
  mutable checkpoints : Dr_pinplay.Replayer.checkpoint list;
      (** auto-captured during replay, most recent first (reverse debugging) *)
  mutable checkpoint_interval : int;
  mutable stopped_at_bp : bool;
      (** gdb semantics: continuing from a breakpoint first steps off it *)
}

let create ?(input = [||]) ?(seed = 1)
    ?(policy : Driver.policy option) (prog : Dr_isa.Program.t) : t =
  let policy =
    match policy with
    | Some p -> p
    | None -> Driver.Seeded { seed; max_quantum = 6 }
  in
  { prog; input; policy; mode = Idle; pinball = None; slice_pinball = None;
    analysis = None; slice = None; breakpoints = []; watchpoints = [];
    next_bp_id = 1;
    last_stop = None; replay_steps = 0; prune = true; refine = true;
    checkpoints = []; checkpoint_interval = 2000; stopped_at_bp = false }

let line_of_pc t pc = Dr_isa.Debug_info.line_of_pc t.prog.Dr_isa.Program.debug pc

(* ---- recording ---- *)

type record_spec = Whole | Region of { skip : int; length : int } | Until_failure

let record (t : t) (spec : record_spec) :
    (Dr_pinplay.Logger.stats, string) result =
  let lspec =
    match spec with
    | Whole -> Dr_pinplay.Logger.Whole
    | Region { skip; length } -> Dr_pinplay.Logger.Skip_length { skip; length }
    | Until_failure -> Dr_pinplay.Logger.Skip_until { skip = 0; until = (fun _ -> false) }
  in
  match Dr_pinplay.Logger.log ~policy:t.policy ~input:t.input t.prog lspec with
  | Error e -> Error (Format.asprintf "%a" Dr_pinplay.Logger.pp_error e)
  | Ok (pb, stats) ->
    t.pinball <- Some pb;
    (* a new pinball invalidates all cached analysis *)
    t.analysis <- None;
    t.slice <- None;
    t.slice_pinball <- None;
    t.mode <- Idle;
    Ok stats

let load_pinball (t : t) (pb : Dr_pinplay.Pinball.t) =
  t.pinball <- Some pb;
  t.analysis <- None;
  t.slice <- None;
  t.slice_pinball <- None;
  t.mode <- Idle

(* ---- breakpoints ---- *)

let add_breakpoint_pc (t : t) pc =
  let bp =
    { bp_id = t.next_bp_id; bp_pc = pc; bp_line = line_of_pc t pc;
      bp_enabled = true }
  in
  t.next_bp_id <- t.next_bp_id + 1;
  t.breakpoints <- t.breakpoints @ [ bp ];
  bp

let add_breakpoint_line (t : t) line : (breakpoint, string) result =
  match Dr_isa.Debug_info.pc_of_line t.prog.Dr_isa.Program.debug line with
  | Some pc -> Ok (add_breakpoint_pc t pc)
  | None -> Error (Printf.sprintf "no code at line %d" line)

let add_breakpoint_func (t : t) name : (breakpoint, string) result =
  match Dr_isa.Debug_info.func_named t.prog.Dr_isa.Program.debug name with
  | Some f -> Ok (add_breakpoint_pc t f.Dr_isa.Debug_info.entry)
  | None -> Error (Printf.sprintf "no function named %s" name)

let delete_breakpoint (t : t) id =
  let before = List.length t.breakpoints + List.length t.watchpoints in
  t.breakpoints <- List.filter (fun b -> b.bp_id <> id) t.breakpoints;
  t.watchpoints <- List.filter (fun w -> w.wp_id <> id) t.watchpoints;
  List.length t.breakpoints + List.length t.watchpoints < before

(** Watch writes to a variable: replay stops on any store to its memory
    cell (globals, or a frame slot resolved at the current stop). *)
let add_watchpoint (t : t) (m : Machine.t option) ~tid name :
    (watchpoint, string) result =
  let resolve () =
    match m with
    | None -> (
      (* without a live machine only globals can be resolved *)
      match
        List.find_opt
          (fun (n, _, _) -> n = name)
          t.prog.Dr_isa.Program.debug.Dr_isa.Debug_info.globals
      with
      | Some (_, addr, _) -> Ok addr
      | None -> Error (Printf.sprintf "no global named %s (start a replay to watch locals)" name))
    | Some m -> (
      let th = Machine.thread m tid in
      match
        Dr_isa.Debug_info.lookup_var t.prog.Dr_isa.Program.debug
          ~pc:th.Machine.pc name
      with
      | Some (Dr_isa.Debug_info.Global a) -> Ok a
      | Some (Dr_isa.Debug_info.Frame off) ->
        Ok (th.Machine.regs.(Dr_isa.Reg.fp) + off)
      | Some (Dr_isa.Debug_info.Register _) ->
        Error (Printf.sprintf "%s lives in a register; watchpoints cover memory" name)
      | None -> Error (Printf.sprintf "no variable %s in scope" name))
  in
  match resolve () with
  | Error e -> Error e
  | Ok addr ->
    let wp = { wp_id = t.next_bp_id; wp_name = name; wp_addr = addr } in
    t.next_bp_id <- t.next_bp_id + 1;
    t.watchpoints <- t.watchpoints @ [ wp ];
    Ok wp

let break_at_fn (t : t) =
  let bps = t.breakpoints in
  fun ~tid:_ ~pc ->
    List.exists (fun b -> b.bp_enabled && b.bp_pc = pc) bps

(* ---- replay control ---- *)

let start_replay (t : t) : (unit, string) result =
  match t.pinball with
  | None -> Error "no pinball: record first"
  | Some pb ->
    let r = Dr_pinplay.Replayer.create t.prog pb in
    t.mode <- Replaying r;
    t.replay_steps <- 0;
    t.last_stop <- None;
    t.checkpoints <- [];
    t.stopped_at_bp <- false;
    Ok ()

let machine (t : t) : Machine.t option =
  match t.mode with
  | Idle -> None
  | Replaying r -> Some (Dr_pinplay.Replayer.machine r)
  | Slice_stepping s -> Some (Dr_exeslice.Slice_replay.machine s)

let stop_of_reason (t : t) (m : Machine.t) (reason : Driver.stop_reason) : stop =
  let mk tid pc why =
    { stop_tid = tid; stop_pc = pc; stop_line = line_of_pc t pc;
      stop_reason = why }
  in
  match reason with
  | Driver.Breakpoint { tid; pc } -> mk tid pc "breakpoint"
  | Driver.Terminated o ->
    let tid, pc =
      match o with
      | Machine.Assert_failed { tid; pc; _ } | Machine.Fault { tid; pc; _ } ->
        (tid, pc)
      | _ -> (0, (Machine.thread m 0).Machine.pc)
    in
    mk tid pc (Format.asprintf "%a" Machine.pp_outcome o)
  | Driver.Schedule_end -> mk 0 (Machine.thread m 0).Machine.pc "end of region"
  | Driver.Max_steps -> mk 0 (Machine.thread m 0).Machine.pc "step limit"
  | Driver.Deadlock -> mk 0 (Machine.thread m 0).Machine.pc "deadlock"
  | Driver.Stop_requested -> mk 0 (Machine.thread m 0).Machine.pc "stopped"

(* capture a checkpoint if we've moved far enough past the last one *)
let maybe_checkpoint (t : t) (r : Dr_pinplay.Replayer.t) =
  let here = Dr_pinplay.Replayer.steps r in
  let last =
    match t.checkpoints with
    | c :: _ -> c.Dr_pinplay.Replayer.c_steps
    | [] -> -t.checkpoint_interval
  in
  if here - last >= t.checkpoint_interval then
    t.checkpoints <- Dr_pinplay.Replayer.checkpoint r :: t.checkpoints

(** Continue replay until a breakpoint, the end of the region, or (with
    [max_steps]) a step count.  Checkpoints for reverse debugging are
    captured at every stop.  Continuing from a breakpoint first steps off
    it (gdb semantics). *)
let continue_replay ?max_steps (t : t) : (stop, string) result =
  match t.mode with
  | Replaying r -> (
    let finish reason =
      t.replay_steps <- Dr_pinplay.Replayer.steps r;
      maybe_checkpoint t r;
      t.stopped_at_bp <- (match reason with Driver.Breakpoint _ -> true | _ -> false);
      let stop = stop_of_reason t (Dr_pinplay.Replayer.machine r) reason in
      t.last_stop <- Some stop;
      Ok stop
    in
    let budget = ref (Option.value ~default:max_int max_steps) in
    let step_off =
      if t.stopped_at_bp && !budget > 0 then begin
        t.stopped_at_bp <- false;
        decr budget;
        try
          match Dr_pinplay.Replayer.resume ~max_steps:1 r with
          | Driver.Max_steps -> Ok None  (* stepped off; keep going *)
          | reason -> Ok (Some reason)
        with Dr_pinplay.Replayer.Divergence d ->
          Error ("replay divergence: " ^ Dr_pinplay.Replayer.divergence_message d)
      end
      else Ok None
    in
    match step_off with
    | Error e -> Error e
    | Ok (Some reason) -> finish reason
    | Ok None ->
      if !budget <= 0 then finish Driver.Max_steps
      else (
        let fired_watch = ref None in
        let stop_when =
          match t.watchpoints with
          | [] -> None
          | wps ->
            Some
              (fun (ev : Dr_machine.Event.t) ->
                match
                  List.find_opt
                    (fun w -> w.wp_addr = ev.Dr_machine.Event.mem_write)
                    wps
                with
                | Some w when ev.Dr_machine.Event.mem_write >= 0 ->
                  fired_watch :=
                    Some (w, ev.Dr_machine.Event.mem_write_value,
                          ev.Dr_machine.Event.tid, ev.Dr_machine.Event.pc);
                  true
                | _ -> false)
        in
        try
          let reason =
            Dr_pinplay.Replayer.resume ~max_steps:!budget
              ~break_at:(break_at_fn t) ?stop_when r
          in
          match (reason, !fired_watch) with
          | Driver.Stop_requested, Some (w, v, tid, pc) ->
            t.replay_steps <- Dr_pinplay.Replayer.steps r;
            maybe_checkpoint t r;
            t.stopped_at_bp <- false;
            let stop =
              { stop_tid = tid; stop_pc = pc; stop_line = line_of_pc t pc;
                stop_reason =
                  Printf.sprintf "watchpoint: %s = %d" w.wp_name v }
            in
            t.last_stop <- Some stop;
            Ok stop
          | _ -> finish reason
        with Dr_pinplay.Replayer.Divergence d ->
          Error ("replay divergence: " ^ Dr_pinplay.Replayer.divergence_message d)))
  | _ -> Error "not replaying: use replay first"

let stepi (t : t) n = continue_replay ~max_steps:n t

(* ---- reverse debugging (paper section 8's proposal, implemented) ----

   Replay is deterministic, so "going backwards" is: restart from the
   nearest checkpoint at or before the target step count and run forward
   to the target.  Without a checkpoint this degrades to replaying from
   the region start — still fast, because regions are small by design. *)

(** Move the replay to exactly [target] retired instructions. *)
let goto_step (t : t) ~target : (stop, string) result =
  match t.pinball with
  | None -> Error "no pinball"
  | Some pb ->
    if target < 0 then Error "cannot step before the region start"
    else begin
      let from =
        List.find_opt
          (fun c -> c.Dr_pinplay.Replayer.c_steps <= target)
          t.checkpoints
      in
      let r = Dr_pinplay.Replayer.create ?from t.prog pb in
      t.mode <- Replaying r;
      let already = Dr_pinplay.Replayer.steps r in
      let need = target - already in
      let last_event = ref None in
      let hooks =
        { Driver.on_event =
            (fun ev -> last_event := Some (ev.Dr_machine.Event.tid, ev.Dr_machine.Event.pc)) }
      in
      let result =
        if need = 0 then Ok ()
        else
          match Dr_pinplay.Replayer.resume ~max_steps:need ~hooks r with
          | Driver.Max_steps | Driver.Schedule_end | Driver.Terminated _ -> Ok ()
          | reason ->
            Error
              (Format.asprintf "unexpected stop while rewinding: %a"
                 Driver.pp_stop_reason reason)
      in
      match result with
      | Error e -> Error e
      | Ok () ->
        t.stopped_at_bp <- false;
        t.replay_steps <- Dr_pinplay.Replayer.steps r;
        let tid, pc =
          match !last_event with
          | Some (tid, pc) -> (tid, pc)
          | None ->
            let m = Dr_pinplay.Replayer.machine r in
            (0, (Machine.thread m 0).Machine.pc)
        in
        let stop =
          { stop_tid = tid; stop_pc = pc; stop_line = line_of_pc t pc;
            stop_reason = Printf.sprintf "rewound to step %d" t.replay_steps }
        in
        t.last_stop <- Some stop;
        Ok stop
    end

(** Step backwards by [n] retired instructions. *)
let reverse_stepi (t : t) n : (stop, string) result =
  match t.mode with
  | Replaying _ -> goto_step t ~target:(max 0 (t.replay_steps - n))
  | _ -> Error "not replaying"

(** Run backwards to the most recent earlier breakpoint hit.  Scans
    forward from the region start (deterministically) to find breakpoint
    hits before the current position, then rewinds to the last one. *)
let reverse_continue (t : t) : (stop, string) result =
  match (t.mode, t.pinball) with
  | Replaying _, Some pb ->
    let current = t.replay_steps in
    if current = 0 then Error "already at the region start"
    else begin
      (* scan: replay from the start, collecting breakpoint-hit step
         counts strictly before the current position *)
      let scan = Dr_pinplay.Replayer.create t.prog pb in
      let hits = ref [] in
      let break_at = break_at_fn t in
      let rec loop () =
        match
          Dr_pinplay.Replayer.resume ~break_at
            ~max_steps:(current - Dr_pinplay.Replayer.steps scan)
            scan
        with
        | Driver.Breakpoint { tid; pc } when Dr_pinplay.Replayer.steps scan < current ->
          hits := (Dr_pinplay.Replayer.steps scan, tid, pc) :: !hits;
          (* step past the breakpoint instruction and keep scanning *)
          (match Dr_pinplay.Replayer.resume ~max_steps:1 scan with
          | Driver.Max_steps -> loop ()
          | _ -> ())
        | _ -> ()
      in
      loop ();
      match !hits with
      | [] -> Error "no earlier breakpoint hit in this region"
      | (last, tid, pc) :: _ -> (
        match goto_step t ~target:last with
        | Error e -> Error e
        | Ok _ ->
          (* we are now stopped AT the breakpoint again *)
          t.stopped_at_bp <- true;
          let stop =
            { stop_tid = tid; stop_pc = pc; stop_line = line_of_pc t pc;
              stop_reason = "reverse-continue: breakpoint" }
          in
          t.last_stop <- Some stop;
          Ok stop)
    end
  | _ -> Error "not replaying"

(* ---- inspecting state ---- *)

(** Value of variable [name] as seen from the given thread's current
    frame. *)
let read_var (t : t) (m : Machine.t) ~tid name : (int, string) result =
  let th = Machine.thread m tid in
  match Dr_isa.Debug_info.lookup_var t.prog.Dr_isa.Program.debug ~pc:th.Machine.pc name with
  | None -> Error (Printf.sprintf "no variable %s in scope at pc %d" name th.Machine.pc)
  | Some (Dr_isa.Debug_info.Global a) -> Ok m.Machine.mem.(a)
  | Some (Dr_isa.Debug_info.Frame off) ->
    let addr = th.Machine.regs.(Dr_isa.Reg.fp) + off in
    if addr < 0 || addr >= Array.length m.Machine.mem then Error "frame slot out of range"
    else Ok m.Machine.mem.(addr)
  | Some (Dr_isa.Debug_info.Register r) -> Ok th.Machine.regs.(r)

(** The dependence location of variable [name] for slicing purposes. *)
let var_loc (t : t) (m : Machine.t) ~tid name : (int, string) result =
  let th = Machine.thread m tid in
  match Dr_isa.Debug_info.lookup_var t.prog.Dr_isa.Program.debug ~pc:th.Machine.pc name with
  | None -> Error (Printf.sprintf "no variable %s in scope" name)
  | Some (Dr_isa.Debug_info.Global a) -> Ok (Dr_isa.Loc.mem a)
  | Some (Dr_isa.Debug_info.Frame off) ->
    Ok (Dr_isa.Loc.mem (th.Machine.regs.(Dr_isa.Reg.fp) + off))
  | Some (Dr_isa.Debug_info.Register r) -> Ok (Dr_isa.Loc.reg ~tid r)

(** Call stack of a thread, innermost first: (function name, pc). *)
let backtrace (t : t) (m : Machine.t) ~tid : (string * int) list =
  let th = Machine.thread m tid in
  let dbg = t.prog.Dr_isa.Program.debug in
  let name_of pc =
    match Dr_isa.Debug_info.func_at dbg pc with
    | Some f -> f.Dr_isa.Debug_info.fname
    | None -> "??"
  in
  let rec walk pc fp acc depth =
    if depth > 64 then List.rev acc
    else begin
      let acc = (name_of pc, pc) :: acc in
      if fp < 0 || fp >= Array.length m.Machine.mem then List.rev acc
      else begin
        let ra = if fp + 1 < Array.length m.Machine.mem then m.Machine.mem.(fp + 1) else -1 in
        if ra = Machine.ret_sentinel || ra <= 0 then List.rev acc
        else walk (ra - 1) m.Machine.mem.(fp) acc (depth + 1)
      end
    end
  in
  let pc = th.Machine.pc and fp = th.Machine.regs.(Dr_isa.Reg.fp) in
  match Dr_isa.Debug_info.func_at dbg pc with
  | Some f when pc = f.Dr_isa.Debug_info.entry ->
    (* stopped at a function entry: the frame is not built yet, so the
       return address sits at the top of the stack and fp still belongs
       to the caller *)
    let sp = th.Machine.regs.(Dr_isa.Reg.sp) in
    let ra =
      if sp >= 0 && sp < Array.length m.Machine.mem then m.Machine.mem.(sp)
      else -1
    in
    if ra = Machine.ret_sentinel || ra <= 0 then [ (name_of pc, pc) ]
    else (name_of pc, pc) :: walk (ra - 1) fp [] 0
  | _ -> walk pc fp [] 0

(* ---- slicing ---- *)

(** Collect (and cache) the trace/global-trace/LP analysis for the
    current pinball. *)
let ensure_analysis (t : t) : (analysis, string) result =
  match t.analysis with
  | Some a -> Ok a
  | None -> (
    match t.pinball with
    | None -> Error "no pinball: record first"
    | Some pb ->
      let collector = Dr_slicing.Collector.collect ~refine:t.refine t.prog pb in
      let gt = Dr_slicing.Global_trace.construct collector in
      let lp = Dr_slicing.Lp.prepare gt in
      let a = { collector; gt; lp } in
      t.analysis <- Some a;
      Ok a)

(** Compute a backwards dynamic slice for variable [name] at the current
    stop point of the replay. *)
let slice_var (t : t) name : (Dr_slicing.Slicer.t, string) result =
  match t.mode with
  | Replaying r when t.replay_steps > 0 -> (
    match ensure_analysis t with
    | Error e -> Error e
    | Ok a -> (
      let m = Dr_pinplay.Replayer.machine r in
      let stop = Option.get t.last_stop in
      match var_loc t m ~tid:stop.stop_tid name with
      | Error e -> Error e
      | Ok loc ->
        (* the criterion is the last retired instruction: collection order
           equals replay order, so its gseq is replay_steps - 1 *)
        let crit_gseq = t.replay_steps - 1 in
        if crit_gseq
           >= Dr_slicing.Segment_store.length
                a.collector.Dr_slicing.Collector.records
        then Error "replay position beyond collected trace"
        else begin
          let crit_pos = Dr_slicing.Global_trace.position a.gt ~gseq:crit_gseq in
          let pairs =
            if t.prune then Some a.collector.Dr_slicing.Collector.pairs else None
          in
          let slice =
            Dr_slicing.Slicer.compute ~lp:a.lp ?pairs a.gt
              { Dr_slicing.Slicer.crit_pos; crit_locs = Some [ loc ] }
          in
          t.slice <- Some slice;
          Ok slice
        end))
  | Replaying _ -> Error "replay has not executed yet: continue or stepi first"
  | _ -> Error "slicing requires an active replay"

(** Slice for the failure point: criterion is the last record of the
    trace (the assert/fault), chasing all its inputs. *)
let slice_failure (t : t) : (Dr_slicing.Slicer.t, string) result =
  match ensure_analysis t with
  | Error e -> Error e
  | Ok a ->
    let n = Dr_slicing.Global_trace.length a.gt in
    if n = 0 then Error "empty trace"
    else begin
      let pairs = if t.prune then Some a.collector.Dr_slicing.Collector.pairs else None in
      let slice =
        Dr_slicing.Slicer.compute ~lp:a.lp ?pairs a.gt
          { Dr_slicing.Slicer.crit_pos = n - 1; crit_locs = None }
      in
      t.slice <- Some slice;
      Ok slice
    end

(** Generate the slice pinball for the current slice (paper Fig. 4b). *)
let make_slice_pinball (t : t) : (Dr_pinplay.Pinball.t * Dr_exeslice.Exclusion.stats, string) result =
  match (t.slice, t.pinball, t.analysis) with
  | Some slice, Some pb, Some a -> (
    try
      let spb, stats =
        Dr_exeslice.Exclusion.slice_pinball t.prog pb ~slice
          ~collector:a.collector
      in
      t.slice_pinball <- Some spb;
      Ok (spb, stats)
    with Dr_pinplay.Relogger.Relog_error msg -> Error ("relog failed: " ^ msg))
  | None, _, _ -> Error "no slice: compute one first"
  | _, None, _ -> Error "no pinball"
  | _ -> Error "no analysis"

(** Enter slice-stepping mode on the slice pinball (paper Fig. 4c). *)
let start_slice_replay (t : t) : (unit, string) result =
  match t.slice_pinball with
  | None -> Error "no slice pinball: use slice-pinball first"
  | Some spb ->
    t.mode <- Slice_stepping (Dr_exeslice.Slice_replay.create t.prog spb);
    t.last_stop <- None;
    Ok ()

let slice_step (t : t) : (Dr_exeslice.Slice_replay.step_result, string) result =
  match t.mode with
  | Slice_stepping s ->
    let r = Dr_exeslice.Slice_replay.step_statement s in
    (match r with
    | Dr_exeslice.Slice_replay.Stepped { tid; pc; line } ->
      t.last_stop <-
        Some
          { stop_tid = tid; stop_pc = pc;
            stop_line = (if line >= 0 then Some line else None);
            stop_reason = "slice step" }
    | _ -> ());
    Ok r
  | _ -> Error "not in slice replay: use slice-replay first"
