(** Wall-clock timing helpers with a process-wide monotonic guarantee.

    OCaml 5.1's stdlib exposes no raw monotonic clock, so [now] ratchets
    [Unix.gettimeofday] through an {!Atomic}: a read never returns less
    than any earlier read {e from any domain}.  An NTP step backwards
    therefore freezes the reported clock until real time catches up
    instead of producing negative span or timer durations; a step
    forwards is indistinguishable from elapsed time, as with any wall
    clock.  Every elapsed-time consumer in the tree ({!Obs} spans,
    Metrics timers, {!Budget} watchdogs, the bench loops) reads this one
    source, so no pair of subsystems can disagree about the direction of
    time. *)

let last : float Atomic.t = Atomic.make neg_infinity

let rec ratchet t =
  let prev = Atomic.get last in
  if t > prev then
    if Atomic.compare_and_set last prev t then t else ratchet t
  else prev

(** Monotonic non-decreasing wall-clock seconds (see module doc). *)
let now () = ratchet (Unix.gettimeofday ())

(** Test hook: force the clock ratchet forward to [t] (a no-op when the
    clock is already past it).  Simulates the wall clock having stepped
    backwards relative to an earlier reading — after
    [advance_to (now () +. d)], real time is behind the ratchet and
    subsequent [now] calls stand still instead of going backwards. *)
let advance_to t = ignore (ratchet t)

(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds (never negative). *)
let time f =
  let t0 = now () in
  let r = f () in
  let t1 = now () in
  (r, t1 -. t0)

let time_only f = snd (time f)
