(** Binary codec used for pinball serialization.

    Values are encoded with LEB128-style varints (zig-zag for signed
    values) into a [Buffer]; decoding reads from a string with an explicit
    cursor.  Pinballs additionally use run-length encoding for schedule
    logs (see {!Dr_pinplay.Pinball}); this module only provides the
    primitive layer. *)

type encoder = Buffer.t

let encoder () = Buffer.create 4096

let to_string (e : encoder) = Buffer.contents e

(* Varint over the raw 63-bit pattern (logical shifts, so negative inputs
   encode their full bit pattern in at most 9 bytes). *)
let put_bits (e : encoder) n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char e (Char.chr b);
      continue := false
    end
    else Buffer.add_char e (Char.chr (b lor 0x80))
  done

(* Unsigned varint. *)
let put_uint (e : encoder) n =
  if n < 0 then invalid_arg "Codec.put_uint: negative";
  put_bits e n

(* Zig-zag signed varint; [(n lsl 1) lxor (n asr 62)] is a bijection on the
   full 63-bit int range (including wraparound cases like [2^61]). *)
let put_int e n = put_bits e ((n lsl 1) lxor (n asr 62))

let put_bool e b = put_uint e (if b then 1 else 0)

let put_string e s =
  put_uint e (String.length s);
  Buffer.add_string e s

let put_int_array e a =
  put_uint e (Array.length a);
  Array.iter (put_int e) a

let put_list e put_elt l =
  put_uint e (List.length l);
  List.iter (put_elt e) l

type decoder = { src : string; mutable pos : int }

exception Corrupt of string

let decoder src = { src; pos = 0 }

let at_end d = d.pos >= String.length d.src

(** Bytes left to decode — the budget every count is checked against. *)
let remaining d = String.length d.src - d.pos

let get_uint d =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if d.pos >= String.length d.src then raise (Corrupt "truncated varint");
    (* 9 bytes of 7 bits cover the full 63-bit int range; a 10th byte can
       only smear garbage into the sign bit *)
    if !shift >= 63 then raise (Corrupt "varint too long");
    let b = Char.code d.src.[d.pos] in
    d.pos <- d.pos + 1;
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !n

(** Read a collection count and validate it against the remaining input:
    each element occupies at least [min_elt_bytes] encoded bytes, so a
    count that could not possibly fit is corrupt.  This bounds decode-time
    allocation by the input size — a 5-byte file can never make
    [Array.init] allocate gigabytes. *)
let get_count ?(min_elt_bytes = 1) d what =
  let n = get_uint d in
  if n < 0 || n > remaining d / min_elt_bytes then
    raise (Corrupt (what ^ ": count exceeds remaining input"));
  n

let get_int d =
  let z = get_uint d in
  (z lsr 1) lxor (-(z land 1))

let get_bool d =
  match get_uint d with
  | 0 -> false
  | 1 -> true
  | _ -> raise (Corrupt "bad bool")

let get_string d =
  let n = get_uint d in
  if n < 0 || n > remaining d then raise (Corrupt "truncated string");
  let s = String.sub d.src d.pos n in
  d.pos <- d.pos + n;
  s

let get_int_array d =
  let n = get_count d "int array" in
  Array.init n (fun _ -> get_int d)

let get_list d get_elt =
  let n = get_count d "list" in
  List.init n (fun _ -> get_elt d)
