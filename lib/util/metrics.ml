(** Lightweight process-wide counters and timers for observability.

    Hot paths register a handle once at module initialisation
    ([counter]/[timer]) and bump it with a plain field update — no hash
    lookup, no allocation — so instrumentation stays cheap enough to
    leave enabled everywhere.  The registry is global: [report] returns
    every registered metric for the CLI ([--stats]) and the bench
    harness; [reset] zeroes values between measurements but keeps the
    registrations. *)

type counter = { c_name : string; mutable count : int }

type timer = {
  t_name : string;
  mutable seconds : float;
  mutable events : int;  (** number of timed sections *)
}

(* registration order is preserved for reporting *)
let counters : counter list ref = ref []
let timers : timer list ref = ref []

let counter name =
  match List.find_opt (fun c -> c.c_name = name) !counters with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    counters := c :: !counters;
    c

let timer name =
  match List.find_opt (fun t -> t.t_name = name) !timers with
  | Some t -> t
  | None ->
    let t = { t_name = name; seconds = 0.0; events = 0 } in
    timers := t :: !timers;
    t

let bump c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count

let record t dt =
  t.seconds <- t.seconds +. dt;
  t.events <- t.events + 1

(** [time t f] runs [f ()], accumulating its wall-clock duration in [t].
    The elapsed time is recorded even when [f] raises. *)
let time t f =
  let t0 = Timer.now () in
  Fun.protect ~finally:(fun () -> record t (Timer.now () -. t0)) f

let seconds t = t.seconds
let events t = t.events

let reset () =
  List.iter (fun c -> c.count <- 0) !counters;
  List.iter
    (fun t ->
      t.seconds <- 0.0;
      t.events <- 0)
    !timers

(** All registered metrics, sorted by name: counters as
    [(name, `Counter n)], timers as [(name, `Timer (seconds, events))]. *)
let report () =
  let cs = List.map (fun c -> (c.c_name, `Counter c.count)) !counters in
  let ts = List.map (fun t -> (t.t_name, `Timer (t.seconds, t.events))) !timers in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (cs @ ts)

let pp fmt () =
  List.iter
    (fun (name, v) ->
      match v with
      | `Counter n -> Format.fprintf fmt "%-40s %12d@." name n
      | `Timer (s, e) ->
        Format.fprintf fmt "%-40s %12.6fs over %d events@." name s e)
    (report ())

let to_string () = Format.asprintf "%a" pp ()
