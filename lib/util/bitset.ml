(** Dense bitsets over [0, n). Used by the LP traversal ([to_include]
    marks) and by dominator computations. *)

type t = { bits : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) land lnot (1 lsl (i land 7)) land 0xff))

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let cardinal t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if mem t i then incr c
  done;
  !c

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let copy t = { bits = Bytes.copy t.bits; n = t.n }

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: length mismatch"

let equal a b =
  check_same a b;
  Bytes.equal a.bits b.bits

let blit ~src ~dst =
  check_same src dst;
  Bytes.blit src.bits 0 dst.bits 0 (Bytes.length src.bits)

let is_empty t =
  let r = ref true in
  let nb = Bytes.length t.bits in
  let i = ref 0 in
  while !r && !i < nb do
    if Bytes.get t.bits !i <> '\000' then r := false;
    incr i
  done;
  !r

(** [dst := dst ∪ src]; returns whether [dst] changed. *)
let union_into ~src ~dst =
  check_same src dst;
  let changed = ref false in
  for i = 0 to Bytes.length src.bits - 1 do
    let d = Char.code (Bytes.get dst.bits i) in
    let u = d lor Char.code (Bytes.get src.bits i) in
    if u <> d then begin
      changed := true;
      Bytes.set dst.bits i (Char.chr u)
    end
  done;
  !changed

(** [dst := gen ∪ (src \ kill)] — the gen/kill dataflow transfer;
    returns whether [dst] changed. *)
let transfer ~gen ~kill ~src ~dst =
  check_same gen kill;
  check_same gen src;
  check_same gen dst;
  let changed = ref false in
  for i = 0 to Bytes.length dst.bits - 1 do
    let v =
      Char.code (Bytes.get gen.bits i)
      lor (Char.code (Bytes.get src.bits i)
          land lnot (Char.code (Bytes.get kill.bits i))
          land 0xff)
    in
    if v <> Char.code (Bytes.get dst.bits i) then begin
      changed := true;
      Bytes.set dst.bits i (Char.chr v)
    end
  done;
  !changed
