(** Resource governance: memory/time budgets, watchdogs, and the
    structured failure taxonomy shared by the out-of-core trace pipeline.

    A {!t} bundles the three knobs a resource-governed run can set —
    a memory budget in bytes (past which trace segments spill to disk),
    a wall-clock budget in seconds (enforced by {!watchdog}s), and the
    directory spilled segments are written to — plus the running
    accounting against them.  Failures are never free-form strings:
    every way the pipeline can hit a wall is one {!resource_error}
    constructor, so callers (the CLI exit-code map, the conformance
    fault oracle) can dispatch on the cause.

    The module also records {e degradation decisions}: when a budget
    trips, the pipeline steps down a rung (indexed slicer -> scan
    slicer -> partial slice) instead of dying, and each step is noted
    here so run reports and the CLI can surface what was traded away.
    [dr_util] sits below [dr_obs], so the metrics mirroring of these
    counts lives in the consumers ({!Dr_slicing.Segment_store},
    {!Dr_slicing.Slicer}). *)

type resource_error =
  | Budget_exceeded of { re_what : string; re_used : int; re_limit : int }
      (** a hard memory cap was hit and spilling was not allowed *)
  | Disk_full of { re_path : string; re_reason : string }
      (** a spill write failed: ENOSPC, unwritable directory, ... *)
  | Segment_corrupt of { re_path : string; re_reason : string }
      (** a spilled segment is missing, truncated or fails its CRC *)
  | Watchdog_timeout of
      { re_what : string; re_elapsed_s : float; re_limit_s : float }
      (** a wall-clock watchdog fired *)

exception Resource_error of resource_error

let error_to_string = function
  | Budget_exceeded { re_what; re_used; re_limit } ->
    Printf.sprintf "memory budget exceeded in %s: %d bytes used, limit %d"
      re_what re_used re_limit
  | Disk_full { re_path; re_reason } ->
    Printf.sprintf "disk full or unwritable at %s: %s" re_path re_reason
  | Segment_corrupt { re_path; re_reason } ->
    Printf.sprintf "segment corrupt at %s: %s" re_path re_reason
  | Watchdog_timeout { re_what; re_elapsed_s; re_limit_s } ->
    Printf.sprintf "watchdog timeout in %s: %.3fs elapsed, limit %.3fs"
      re_what re_elapsed_s re_limit_s

let error fmt_arg = raise (Resource_error fmt_arg)

(* ---- watchdogs ---- *)

(** A polled wall-clock deadline.  Pollers call {!expired} (cheap: one
    clock read + compare) every few thousand steps; {!check} raises
    {!Resource_error} instead for phases where a partial result is
    useless (e.g. trace collection). *)
type watchdog = {
  wd_what : string;
  wd_started : float;
  wd_limit_s : float;
  mutable wd_fired : bool;  (** set once the deadline has passed *)
}

let watchdog ~what ~limit_s =
  { wd_what = what; wd_started = Timer.now (); wd_limit_s = limit_s;
    wd_fired = false }

let elapsed wd = Timer.now () -. wd.wd_started

let expired wd =
  if wd.wd_fired then true
  else begin
    let e = elapsed wd in
    if e > wd.wd_limit_s then wd.wd_fired <- true;
    wd.wd_fired
  end

let check wd =
  if expired wd then
    error
      (Watchdog_timeout
         { re_what = wd.wd_what; re_elapsed_s = elapsed wd;
           re_limit_s = wd.wd_limit_s })

(* ---- degradation ladder bookkeeping ---- *)

type degradation = {
  d_what : string;  (** the phase that degraded, e.g. "slicer" *)
  d_from : string;  (** the rung given up, e.g. "indexed" *)
  d_to : string;  (** the rung fallen back to, e.g. "scan" *)
  d_reason : string;
}

(* ---- budgets ---- *)

type t = {
  mem_bytes : int option;  (** memory budget for trace records *)
  time_s : float option;  (** wall-clock budget *)
  spill_dir : string;  (** directory for spilled segments *)
  created : float;
  mutable mem_used : int;  (** resident record bytes currently charged *)
  mutable spilled_bytes : int;  (** total bytes written to spill files *)
  mutable degradations : degradation list;  (** newest first *)
}

let default_spill_dir () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "drdebug-spill-%d" (Unix.getpid ()))

let create ?mem_bytes ?time_s ?spill_dir () =
  (match mem_bytes with
  | Some b when b < 0 -> invalid_arg "Budget.create: negative mem_bytes"
  | _ -> ());
  { mem_bytes; time_s;
    spill_dir = (match spill_dir with Some d -> d | None -> default_spill_dir ());
    created = Timer.now (); mem_used = 0; spilled_bytes = 0;
    degradations = [] }

(** An unlimited budget: never spills, never times out.  Lets callers
    thread [Budget.t] unconditionally. *)
let unlimited () = create ()

let spill_dir t = t.spill_dir

let mem_used t = t.mem_used

let spilled_bytes t = t.spilled_bytes

(** Charge [bytes] of resident memory against the budget (no check —
    pair with {!over_mem} to decide whether to spill). *)
let charge t bytes = t.mem_used <- t.mem_used + bytes

let release t bytes = t.mem_used <- max 0 (t.mem_used - bytes)

let note_spilled t bytes = t.spilled_bytes <- t.spilled_bytes + bytes

(** Is the resident charge above the memory budget?  [false] when no
    memory budget is set. *)
let over_mem t =
  match t.mem_bytes with None -> false | Some limit -> t.mem_used > limit

(** Would charging [bytes] more stay within the memory budget? *)
let mem_would_exceed t ~bytes =
  match t.mem_bytes with
  | None -> false
  | Some limit -> t.mem_used + bytes > limit

(** Raise {!Resource_error} [Budget_exceeded] if the resident charge is
    over budget — the hard-cap path, for callers that cannot spill. *)
let check_mem t ~what =
  match t.mem_bytes with
  | Some limit when t.mem_used > limit ->
    error (Budget_exceeded { re_what = what; re_used = t.mem_used; re_limit = limit })
  | _ -> ()

(** A watchdog over the budget's {e remaining} wall-clock time, or
    [None] when no time budget is set.  Each call measures from the
    budget's creation, so successive phases share one global deadline. *)
let watchdog_of t ~what =
  match t.time_s with
  | None -> None
  | Some limit ->
    let used = Timer.now () -. t.created in
    Some
      { wd_what = what; wd_started = t.created; wd_limit_s = limit;
        wd_fired = used > limit }

let note_degradation t ~what ~from_ ~to_ ~reason =
  t.degradations <-
    { d_what = what; d_from = from_; d_to = to_; d_reason = reason }
    :: t.degradations

(** Degradation decisions so far, oldest first. *)
let degradations t = List.rev t.degradations

let pp_degradation fmt d =
  Format.fprintf fmt "%s: %s -> %s (%s)" d.d_what d.d_from d.d_to d.d_reason

(* ---- spill directory management ---- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
      error (Disk_full { re_path = dir; re_reason = Unix.error_message e })
  end

(** Ensure the spill directory exists and is a writable directory.
    @raise Resource_error [Disk_full] when it cannot be created (e.g.
    the path names an existing regular file). *)
let ensure_spill_dir t =
  mkdir_p t.spill_dir;
  if not (try Sys.is_directory t.spill_dir with Sys_error _ -> false) then
    error
      (Disk_full
         { re_path = t.spill_dir; re_reason = "spill path is not a directory" });
  t.spill_dir
