(** CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.

    Used by the pinball v2 container format to give every section and the
    whole file an integrity checksum, so a truncated or bit-flipped
    pinball is rejected with a precise error instead of being decoded
    into garbage.  Values are in [0, 2^32), so they fit a non-negative
    OCaml int on 64-bit platforms. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** Fold [len] bytes of [s] starting at [pos] into a running checksum.
    Start from {!empty} and chain calls to checksum discontiguous data. *)
let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let empty = 0

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  update empty s ~pos ~len
