(** Crash-safe file writes: write to [path ^ ".tmp"], fsync, then rename
    over the destination.

    On POSIX the rename is atomic, so readers either see the complete old
    file or the complete new file — a crash mid-save can never leave a
    truncated pinball or slice file behind (it leaves at worst a stale
    [.tmp] that the next save overwrites). *)

let with_out path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     f oc;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_string path s = with_out path (fun oc -> output_string oc s)
