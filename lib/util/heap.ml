(** Array-based binary max-heap keyed by [int], carrying an arbitrary
    payload.  Used by the indexed slicer to pop the highest pending
    trace position; grows like {!Vec}. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy =
  { keys = Array.make 16 0; vals = Array.make 16 dummy; len = 0; dummy }

let length h = h.len
let is_empty h = h.len = 0

let clear h =
  Array.fill h.vals 0 h.len h.dummy;
  h.len <- 0

let ensure h n =
  if n > Array.length h.keys then begin
    let cap = ref (Array.length h.keys) in
    while n > !cap do
      cap := !cap * 2
    done;
    let keys = Array.make !cap 0 and vals = Array.make !cap h.dummy in
    Array.blit h.keys 0 keys 0 h.len;
    Array.blit h.vals 0 vals 0 h.len;
    h.keys <- keys;
    h.vals <- vals
  end

let swap h i j =
  let k = h.keys.(i) and v = h.vals.(i) in
  h.keys.(i) <- h.keys.(j);
  h.vals.(i) <- h.vals.(j);
  h.keys.(j) <- k;
  h.vals.(j) <- v

let push h key v =
  ensure h (h.len + 1);
  h.keys.(h.len) <- key;
  h.vals.(h.len) <- v;
  let i = ref h.len in
  h.len <- h.len + 1;
  while !i > 0 && h.keys.((!i - 1) / 2) < h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

(** Largest key, or [None]. *)
let peek_key h = if h.len = 0 then None else Some h.keys.(0)

(** Remove and return the entry with the largest key. *)
let pop h =
  if h.len = 0 then None
  else begin
    let k = h.keys.(0) and v = h.vals.(0) in
    h.len <- h.len - 1;
    h.keys.(0) <- h.keys.(h.len);
    h.vals.(0) <- h.vals.(h.len);
    h.vals.(h.len) <- h.dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let largest = ref !i in
      if l < h.len && h.keys.(l) > h.keys.(!largest) then largest := l;
      if r < h.len && h.keys.(r) > h.keys.(!largest) then largest := r;
      if !largest <> !i then begin
        swap h !i !largest;
        i := !largest
      end
      else continue := false
    done;
    Some (k, v)
  end
