(** A small fixed pool of OCaml 5 domains for embarrassingly parallel
    fan-out (parallel slicing criteria, sharded index preparation, the
    conformance fuzz farm).

    The pool owns [size - 1] worker domains parked on a condition
    variable; the domain that calls {!run} participates as the
    [size]-th worker, so a pool of size 1 spawns nothing and runs
    everything inline.  A {!run} hands every worker the same
    {e drain loop}: tasks are claimed by atomic fetch-and-add on a
    shared cursor, so scheduling is dynamic (good load balance for
    uneven task costs) while {e results stay deterministic} — {!map}
    writes slot [i] of the output from task [i] regardless of which
    domain ran it or in what order.

    Exceptions raised by tasks are captured; the first one (by
    completion order) is re-raised in the caller after the barrier, with
    its backtrace.  The remaining tasks still run — a parallel batch is
    not torn down half-way, which keeps shared structures (metric
    registries, segment caches) in a sane state.

    Every worker has a stable {e slot}: the caller is slot 0 and the
    spawned domains are slots 1 .. size-1.  Slots identify workers to
    the {!instrument} hooks (per-slot utilization metrics, per-domain
    span tracks) independently of the runtime's domain ids, which are
    not stable across pools or runs.

    The caller's wait at the barrier is a [Domain.cpu_relax] spin: it
    only covers the in-flight tail of tasks on other domains, and every
    intended workload (a slice, a fuzz case, an index shard) is far
    coarser than a spin quantum.  [run] must not be called from two
    domains at once on the same pool; nested [run] from inside a task
    deadlocks no one (the caller drains its own queue) but is not
    supported either. *)

type task = unit -> unit

(** Instrumentation hooks around the task fan-out, installed once by the
    observability layer ([Dr_obs.Obs] installs them at module
    initialisation).  [dr_util] cannot depend on [dr_obs], so the
    dependency is inverted through this hook: the pool stays
    observability-agnostic and pays one ref load + option match per
    batch/task when no hook is installed.

    [i_run_begin ~tasks] runs on the coordinating domain before the
    fan-out and returns a {e stream base}: task [i] of the batch is
    handed the logical stream id [base + i], allocated in program order
    so traced runs merge deterministically whatever the claim schedule.
    [i_task ~stream ~slot ~task f] wraps the execution of task [task]
    (claimed by worker [slot]) and must run [f] exactly once,
    propagating its exception. *)
type instrument = {
  i_run_begin : tasks:int -> int;
  i_task : stream:int -> slot:int -> task:int -> (unit -> unit) -> unit;
}

let instrument : instrument option ref = ref None

(** Install the instrumentation hooks (last install wins). *)
let set_instrument i = instrument := Some i

type t = {
  size : int;  (** total parallelism: worker domains + the caller *)
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable queue : (int -> unit) list;
      (** pending drain loops; a worker applies one to its own slot *)
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

(** What the runtime recommends for this machine (never below 1). *)
let default_domains () = max 1 (Domain.recommended_domain_count ())

let worker t slot () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      if t.closing then None
      else
        match t.queue with
        | task :: rest ->
          t.queue <- rest;
          Some task
        | [] ->
          Condition.wait t.has_work t.mutex;
          next ()
    in
    let task = next () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
      task slot;
      loop ()
  in
  loop ()

(** Create a pool of [domains] total workers (default
    {!default_domains}).  [domains - 1] domains are spawned; they idle
    on a condition variable until {!run}/{!map} hands them work. *)
let create ?domains () : t =
  let size =
    max 1 (match domains with Some d -> d | None -> default_domains ())
  in
  let t =
    { size; mutex = Mutex.create (); has_work = Condition.create ();
      queue = []; closing = false; workers = [] }
  in
  t.workers <- List.init (size - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

(** Join all worker domains.  Idempotent; the pool must be idle. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(** [with_pool ?domains f] runs [f pool] and shuts the pool down even
    when [f] raises. *)
let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** Run every task to completion, fanning out over the pool; returns
    when all have finished.  The first task exception (if any) is
    re-raised after the barrier.  Every task runs through the installed
    {!instrument} hook (even on the inline single-domain path, so a
    traced 1-domain batch records the same span sequence as a 4-domain
    one). *)
let run t (tasks : task array) =
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let ins = !instrument in
    let base = match ins with Some i -> i.i_run_begin ~tasks:n | None -> 0 in
    let exec slot i =
      match ins with
      | Some ins -> ins.i_task ~stream:(base + i) ~slot ~task:i tasks.(i)
      | None -> tasks.(i) ()
    in
    if t.size = 1 || n = 1 then
      for i = 0 to n - 1 do
        exec 0 i
      done
    else begin
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let failure = Atomic.make None in
      let drain slot =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else begin
            (try exec slot i
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            (* the atomic increment publishes the task's writes to the
               caller, which reads [completed] before touching results *)
            Atomic.incr completed
          end
        done
      in
      (* a stale drain surviving past its batch exits immediately (the
         cursor is spent), so leftovers in the queue are harmless *)
      let helpers = min (t.size - 1) (n - 1) in
      Mutex.lock t.mutex;
      for _ = 1 to helpers do
        t.queue <- drain :: t.queue
      done;
      Condition.broadcast t.has_work;
      Mutex.unlock t.mutex;
      drain 0;
      while Atomic.get completed < n do
        Domain.cpu_relax ()
      done;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(** [map t f xs] applies [f] to every element in parallel.  Output slot
    [i] holds [f xs.(i)] — the result array is identical to
    [Array.map f xs] whatever the domain count or schedule. *)
let map t (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out : 'b option array = Array.make n None in
    run t (Array.init n (fun i () -> out.(i) <- Some (f xs.(i))));
    Array.map (function Some v -> v | None -> assert false) out
  end

(** [split ~chunks ~len] partitions [0, len) into at most [chunks]
    contiguous [(lo, hi_exclusive)] ranges of near-equal size, in
    ascending order — the sharding unit for deterministic merges (shard
    outputs concatenated in range order preserve position order). *)
let split ~chunks ~len : (int * int) array =
  if len <= 0 then [||]
  else begin
    let chunks = max 1 (min chunks len) in
    let base = len / chunks and extra = len mod chunks in
    let ranges = Array.make chunks (0, 0) in
    let lo = ref 0 in
    for i = 0 to chunks - 1 do
      let size = base + if i < extra then 1 else 0 in
      ranges.(i) <- (!lo, !lo + size);
      lo := !lo + size
    done;
    ranges
  end
