(** Minimal JSON tree, emitter and parser.

    The container has no JSON library; the bench harness emits
    [BENCH_*.json] through {!to_string} and the schema smoke test reads
    it back through {!parse}.  Only the JSON subset we emit is
    supported: no unicode escapes beyond [\uXXXX] pass-through, numbers
    are OCaml floats, and NaN/infinity are rejected at emission time
    (they are not valid JSON). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* ---- emission ---- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    invalid_arg "Json: NaN/infinity is not representable"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let rec emit b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_string b (if indent then "[\n" else "[");
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b (if indent then ",\n" else ",");
        pad (level + 1);
        emit b ~indent ~level:(level + 1) item)
      items;
    if indent then begin
      Buffer.add_char b '\n';
      pad level
    end;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_string b (if indent then "{\n" else "{");
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string b (if indent then ",\n" else ",");
        pad (level + 1);
        escape_string b k;
        Buffer.add_string b (if indent then ": " else ":");
        emit b ~indent ~level:(level + 1) item)
      fields;
    if indent then begin
      Buffer.add_char b '\n';
      pad level
    end;
    Buffer.add_char b '}'

let to_string ?(indent = true) v =
  let b = Buffer.create 1024 in
  emit b ~indent ~level:0 v;
  Buffer.contents b

(* ---- parsing ---- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %c, found %c" c c')
  | None -> error st (Printf.sprintf "expected %c, found end of input" c)

let parse_literal st word v =
  String.iter (fun c -> expect st c) word;
  v

let parse_string_raw st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char b '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char b '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char b '/'; go ()
      | Some 'n' -> advance st; Buffer.add_char b '\n'; go ()
      | Some 'r' -> advance st; Buffer.add_char b '\r'; go ()
      | Some 't' -> advance st; Buffer.add_char b '\t'; go ()
      | Some 'b' -> advance st; Buffer.add_char b '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char b '\012'; go ()
      | Some 'u' ->
        advance st;
        let hex = Buffer.create 4 in
        for _ = 1 to 4 do
          match peek st with
          | Some c -> advance st; Buffer.add_char hex c
          | None -> error st "truncated \\u escape"
        done;
        let code =
          match int_of_string_opt ("0x" ^ Buffer.contents hex) with
          | Some c -> c
          | None -> error st "bad \\u escape"
        in
        (* BMP only; fine for our own output *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
        go ()
      | _ -> error st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws st;
        let k = parse_string_raw st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields_loop ()
        | Some '}' -> advance st
        | _ -> error st "expected , or } in object"
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items_loop ()
        | Some ']' -> advance st
        | _ -> error st "expected , or ] in array"
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string_raw st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %c" c)

let parse (s : string) : (t, string) result =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then error st "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors (for schema checks) ---- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
