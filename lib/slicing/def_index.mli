(** Per-location definition index over the combined global trace.

    Maps each defined {!Dr_isa.Loc} encoding to the ascending array of
    global-trace positions whose record defines it.  Built once per
    trace ({!build} is criterion-independent) and shared by {!Lp}
    (block summaries derive from it) and the indexed {!Slicer} fast
    path, which finds "the most recent definition of [loc] at or
    before [pos]" by binary search instead of a linear backwards
    scan. *)

type t

(** Build the index.  With [pool] the trace scan is sharded over the
    pool's domains in contiguous position ranges and merged in range
    order — the result is identical to a sequential build whatever the
    domain count or schedule. *)
val build : ?pool:Dr_util.Pool.t -> Global_trace.t -> t

(** An index with no entries, built in O(1) — for {!Lp.prepare_lite},
    the scan-only degradation rung that never consults it. *)
val empty : trace_len:int -> t

(** Length of the trace the index was built over. *)
val trace_len : t -> int

(** Number of distinct locations with at least one definition. *)
val num_locations : t -> int

(** Ascending positions of records defining [loc]; [[||]] when none.
    The returned array is owned by the index — do not mutate. *)
val positions : t -> loc:int -> int array

(** Position of the latest definition of [loc] at or before [pos], or
    [-1] when none exists. *)
val latest_at_or_before : t -> loc:int -> pos:int -> int

(** Does [loc] have a definition inside [\[lo, hi\]]? *)
val defines_in_range : t -> loc:int -> lo:int -> hi:int -> bool

(** Iterate over (location, ascending def positions) pairs, in
    unspecified order. *)
val iter : t -> (int -> int array -> unit) -> unit
