(** Backwards dynamic slicing over the combined global trace (paper
    §3(iii), §5.2).

    Starting from a criterion (a record in the global trace and,
    optionally, the specific locations of interest at it), the slicer
    walks the trace backwards recovering:

    - {e data dependences}: the most recent earlier definition of each
      wanted location (registers per thread, memory global — the
      topological order of the global trace guarantees the match is the
      true dynamic reaching definition);
    - {e control dependences}: the [cd] pointer of every included record,
      transitively.

    Blocks that can satisfy no wanted location and contain no pending
    control-dependence target are skipped wholesale using the {!Lp}
    summaries.

    When save/restore [pairs] are supplied, a wanted register satisfied by
    a confirmed restore is {e bypassed} (§5.2): the restore and its save
    stay out of the slice and the search for the register's definition
    resumes below the save, adding the paper's direct edge from the use to
    the real definition. *)

type dep_kind =
  | Data of int  (** data dependence on this location *)
  | Data_bypassed of int
      (** data dependence that skipped one or more save/restore pairs *)
  | Control

type edge = {
  from_pos : int;  (** the dependent (later) record's position *)
  to_pos : int;  (** the record it depends on *)
  kind : dep_kind;
}

type criterion = {
  crit_pos : int;  (** position in the global trace *)
  crit_locs : int list option;
      (** specific locations to chase; [None] = the record's uses *)
}

type stats = {
  visited : int;  (** records examined *)
  skipped_blocks : int;
  total_blocks : int;
  slice_time : float;
}

type t = {
  gt : Global_trace.t;
  criterion : criterion;
  positions : int array;  (** included positions, ascending *)
  edges : edge array;
  stats : stats;
}

let size t = Array.length t.positions

let mem t pos =
  (* positions is sorted ascending *)
  let a = t.positions in
  let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = pos then found := true
    else if a.(mid) < pos then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* deferred want created by a save/restore bypass *)
type deferred = {
  d_loc : int;
  d_save_pos : int;  (** re-activate strictly below this position *)
  d_requesters : (int * bool) list;  (** (requester, was already bypassed) *)
}

(** Compute the backwards dynamic slice for [criterion].

    [lp]: reuse precomputed block summaries (they are valid for any slice
    over the same global trace).  [pairs]: enable save/restore bypassing
    (§5.2).  [block_skipping]: disable to measure the LP optimisation's
    effect (ablation); the result is identical either way. *)
let compute ?(lp : Lp.t option) ?(pairs : Prune.pairs option)
    ?(block_skipping = true) (gt : Global_trace.t) (criterion : criterion) : t =
  let t0 = Dr_util.Timer.now () in
  let n = Global_trace.length gt in
  if criterion.crit_pos < 0 || criterion.crit_pos >= n then
    invalid_arg "Slicer.compute: criterion out of range";
  let lp = match lp with Some l -> l | None -> Lp.prepare gt in
  (* wanted location -> (requester position, reached via a bypass) *)
  let wanted : (int, (int * bool) list ref) Hashtbl.t = Hashtbl.create 256 in
  let deferred : deferred list ref = ref [] in
  let to_include = Dr_util.Bitset.create n in
  let to_include_in_block = Array.make lp.Lp.num_blocks 0 in
  let in_slice = Dr_util.Bitset.create n in
  let slice_positions = Dr_util.Vec.Int_vec.create () in
  let edges = Dr_util.Vec.create ~dummy:{ from_pos = 0; to_pos = 0; kind = Control } in
  let visited = ref 0 and skipped = ref 0 in
  let add_want ?(bypassed = false) loc requester =
    match Hashtbl.find_opt wanted loc with
    | Some reqs -> reqs := (requester, bypassed) :: !reqs
    | None -> Hashtbl.replace wanted loc (ref [ (requester, bypassed) ])
  in
  let mark_cd ~branch_gseq ~requester =
    let bpos = Global_trace.position gt ~gseq:branch_gseq in
    Dr_util.Vec.push edges { from_pos = requester; to_pos = bpos; kind = Control };
    if (not (Dr_util.Bitset.mem in_slice bpos))
       && not (Dr_util.Bitset.mem to_include bpos)
    then begin
      Dr_util.Bitset.add to_include bpos;
      to_include_in_block.(Lp.block_of lp bpos)
      <- to_include_in_block.(Lp.block_of lp bpos) + 1
    end
  in
  (* include a record: follow its uses and its control dependence *)
  let include_record pos =
    if not (Dr_util.Bitset.mem in_slice pos) then begin
      Dr_util.Bitset.add in_slice pos;
      Dr_util.Vec.Int_vec.push slice_positions pos;
      let r = Global_trace.record gt pos in
      Array.iter (fun u -> add_want u pos) r.Trace.uses;
      if r.Trace.cd >= 0 then mark_cd ~branch_gseq:r.Trace.cd ~requester:pos
    end
  in
  (* seed from the criterion *)
  let crit_rec = Global_trace.record gt criterion.crit_pos in
  Dr_util.Bitset.add in_slice criterion.crit_pos;
  Dr_util.Vec.Int_vec.push slice_positions criterion.crit_pos;
  (match criterion.crit_locs with
  | Some locs -> List.iter (fun l -> add_want l criterion.crit_pos) locs
  | None -> Array.iter (fun u -> add_want u criterion.crit_pos) crit_rec.Trace.uses);
  if crit_rec.Trace.cd >= 0 then
    mark_cd ~branch_gseq:crit_rec.Trace.cd ~requester:criterion.crit_pos;
  (* process one record *)
  let process pos =
    incr visited;
    (* activate deferred wants that apply strictly below their save *)
    if !deferred <> [] then begin
      let active, still = List.partition (fun d -> pos < d.d_save_pos) !deferred in
      deferred := still;
      List.iter
        (fun d ->
          List.iter
            (fun (req, _) -> add_want ~bypassed:true d.d_loc req)
            d.d_requesters)
        active
    end;
    let r = Global_trace.record gt pos in
    let included = ref (Dr_util.Bitset.mem to_include pos) in
    if !included then begin
      Dr_util.Bitset.remove to_include pos;
      let b = Lp.block_of lp pos in
      to_include_in_block.(b) <- to_include_in_block.(b) - 1
    end;
    Array.iter
      (fun d ->
        match Hashtbl.find_opt wanted d with
        | None -> ()
        | Some reqs ->
          let bypassed =
            match pairs with
            | None -> None
            | Some pairs -> (
              match Dr_isa.Loc.view d with
              | Dr_isa.Loc.Reg { reg; _ } -> (
                match Prune.bypass pairs ~gseq:r.Trace.gseq ~reg with
                | Some save_gseq ->
                  Some (Global_trace.position gt ~gseq:save_gseq)
                | None -> None)
              | Dr_isa.Loc.Mem _ -> None)
          in
          (match bypassed with
          | Some save_pos ->
            (* skip the restore and its save; resume below the save *)
            deferred :=
              { d_loc = d; d_save_pos = save_pos; d_requesters = !reqs }
              :: !deferred
          | None ->
            List.iter
              (fun (req, via_bypass) ->
                Dr_util.Vec.push edges
                  { from_pos = req; to_pos = pos;
                    kind = (if via_bypass then Data_bypassed d else Data d) })
              !reqs;
            included := true);
          Hashtbl.remove wanted d)
      r.Trace.defs;
    if !included then include_record pos
  in
  (* main backwards walk with LP block skipping *)
  let pos = ref (criterion.crit_pos - 1) in
  while !pos >= 0 do
    let b = Lp.block_of lp !pos in
    let lo, _ = Lp.block_range lp b in
    let at_block_top = !pos = min (criterion.crit_pos - 1) (snd (Lp.block_range lp b)) in
    let can_skip =
      block_skipping
      && at_block_top
      && to_include_in_block.(b) = 0
      && (not (Lp.may_satisfy lp ~block:b ~wanted))
      && List.for_all
           (fun d -> d.d_save_pos <= lo || not (Lp.defines lp ~block:b ~loc:d.d_loc))
           !deferred
    in
    if can_skip then begin
      incr skipped;
      pos := lo - 1
    end
    else begin
      process !pos;
      decr pos
    end
  done;
  let positions = Dr_util.Vec.Int_vec.to_array slice_positions in
  Array.sort compare positions;
  { gt; criterion; positions;
    edges = Dr_util.Vec.to_array edges;
    stats =
      { visited = !visited; skipped_blocks = !skipped;
        total_blocks = lp.Lp.num_blocks;
        slice_time = Dr_util.Timer.now () -. t0 } }

(* ---- derived views ---- *)

(** The slice as (tid, pc, instance) statements, in trace order. *)
let statements t =
  Array.map
    (fun pos ->
      let r = Global_trace.record t.gt pos in
      (r.Trace.tid, r.Trace.pc, r.Trace.instance))
    t.positions

(** Distinct source lines touched by the slice (for GUI highlighting). *)
let source_lines t =
  let lines = Hashtbl.create 32 in
  Array.iter
    (fun pos ->
      let r = Global_trace.record t.gt pos in
      if r.Trace.line >= 0 then Hashtbl.replace lines r.Trace.line ())
    t.positions;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) lines [])

(** Dependence edges out of the record at [pos] (what it depends on), for
    backwards navigation in the slice browser. *)
let deps_of t pos =
  Array.to_list t.edges
  |> List.filter (fun e -> e.from_pos = pos)
  |> List.map (fun e -> (e.kind, e.to_pos))

(** Records that depend on [pos] (forward navigation). *)
let uses_of t pos =
  Array.to_list t.edges
  |> List.filter (fun e -> e.to_pos = pos)
  |> List.map (fun e -> (e.kind, e.from_pos))

let pp_kind fmt = function
  | Data l -> Format.fprintf fmt "data(%s)" (Dr_isa.Loc.to_string l)
  | Data_bypassed l -> Format.fprintf fmt "data*(%s)" (Dr_isa.Loc.to_string l)
  | Control -> Format.pp_print_string fmt "control"

(* ---- slice files ---- *)

let slice_file_header = "# drdebug slice v1"

(** A slice file failed to parse: the 1-based line number and the reason. *)
exception Slice_file_error of { sf_line : int; sf_reason : string }

let slice_file_error sf_line sf_reason =
  raise (Slice_file_error { sf_line; sf_reason })

(** Save in the paper's "normal slice file" form: statements plus
    dependence edges, usable across debug sessions.  The write is atomic
    (tmp + fsync + rename): a crash mid-save cannot clobber a good file. *)
let save_file path t =
  Dr_util.Atomic_file.with_out path
    (fun oc ->
      Printf.fprintf oc "%s\n" slice_file_header;
      let r = Global_trace.record t.gt t.criterion.crit_pos in
      Printf.fprintf oc "criterion %d %d %d\n" r.Trace.tid r.Trace.pc
        r.Trace.instance;
      Array.iter
        (fun pos ->
          let r = Global_trace.record t.gt pos in
          Printf.fprintf oc "stmt %d %d %d %d\n" r.Trace.tid r.Trace.pc
            r.Trace.instance r.Trace.line)
        t.positions;
      Array.iter
        (fun e ->
          let kind, loc =
            match e.kind with
            | Data l -> ("data", l)
            | Data_bypassed l -> ("data*", l)
            | Control -> ("control", -1)
          in
          Printf.fprintf oc "edge %d %d %s %d\n" e.from_pos e.to_pos kind loc)
        t.edges)

(** Statements read back from a slice file: (tid, pc, instance, line).

    The header line is validated and malformed [stmt] lines raise
    {!Slice_file_error} — a corrupted slice file fails loudly instead of
    silently dropping statements.
    @raise Slice_file_error on a missing header or unparseable statement. *)
let load_file_statements path : (int * int * int * int) list =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match In_channel.input_line ic with
      | Some h when String.trim h = slice_file_header -> ()
      | Some h ->
        slice_file_error 1 (Printf.sprintf "bad slice file header %S" h)
      | None -> slice_file_error 1 "empty slice file");
      let int_field lineno what s =
        match int_of_string_opt s with
        | Some v -> v
        | None ->
          slice_file_error lineno (Printf.sprintf "bad %s field %S" what s)
      in
      let stmts = ref [] in
      let lineno = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           match String.split_on_char ' ' line with
           | [ "stmt"; tid; pc; inst; ln ] ->
             stmts :=
               (int_field !lineno "tid" tid, int_field !lineno "pc" pc,
                int_field !lineno "instance" inst, int_field !lineno "line" ln)
               :: !stmts
           | "stmt" :: _ ->
             slice_file_error !lineno "stmt line does not have 4 fields"
           | _ -> ()
         done
       with End_of_file -> ());
      List.rev !stmts)
