(** Backwards dynamic slicing over the combined global trace (paper
    §3(iii), §5.2).

    Starting from a criterion (a record in the global trace and,
    optionally, the specific locations of interest at it), the slicer
    walks the trace backwards recovering:

    - {e data dependences}: the most recent earlier definition of each
      wanted location (registers per thread, memory global — the
      topological order of the global trace guarantees the match is the
      true dynamic reaching definition);
    - {e control dependences}: the [cd] pointer of every included record,
      transitively.

    Two traversal drivers share the same record-processing core:

    - the {e indexed} fast path (default) pops candidate positions from
      a max-heap — the latest definition of each wanted location (found
      by binary search in the {!Def_index}), pending control-dependence
      targets, and deferred-bypass definitions — touching only
      positions that can change the slice state;
    - the {e scan} path walks every position backwards, skipping whole
      blocks via the {!Lp} summaries when they can satisfy nothing
      (Zhang et al.'s Limited Preprocessing) — kept as the reference
      implementation and the ablation baseline.

    Both produce the same positions and dependence edges (the edge
    array order is unspecified; compare canonically).

    When save/restore [pairs] are supplied, a wanted register satisfied by
    a confirmed restore is {e bypassed} (§5.2): the restore and its save
    stay out of the slice and the search for the register's definition
    resumes below the save, adding the paper's direct edge from the use to
    the real definition. *)

let m_computes = Dr_obs.Metrics.counter "slicer.computes"
let h_slice_size = Dr_obs.Histogram.get "slicer.slice_size"
let m_visited = Dr_obs.Metrics.counter "slicer.records_visited"
let m_skipped = Dr_obs.Metrics.counter "slicer.blocks_skipped"
let m_static_checks = Dr_obs.Metrics.counter "slicer.static_checks"
let m_static_skips = Dr_obs.Metrics.counter "slicer.static_skips"
let m_edges = Dr_obs.Metrics.counter "slicer.edges"
let m_heap_pops = Dr_obs.Metrics.counter "slicer.heap_pops"
let m_stale_pops = Dr_obs.Metrics.counter "slicer.heap_stale_pops"
let m_adj_builds = Dr_obs.Metrics.counter "slicer.adjacency_builds"
let m_truncated = Dr_obs.Metrics.counter "slicer.truncated_slices"
let m_degraded = Dr_obs.Metrics.counter "slicer.degraded_to_scan"
let m_degraded_reexec = Dr_obs.Metrics.counter "slicer.degraded_to_reexec"
let t_compute = Dr_obs.Metrics.timer "slicer.compute"

type dep_kind =
  | Data of int  (** data dependence on this location *)
  | Data_bypassed of int
      (** data dependence that skipped one or more save/restore pairs *)
  | Control

type edge = {
  from_pos : int;  (** the dependent (later) record's position *)
  to_pos : int;  (** the record it depends on *)
  kind : dep_kind;
}

type criterion = {
  crit_pos : int;  (** position in the global trace *)
  crit_locs : int list option;
      (** specific locations to chase; [None] = the record's uses *)
}

type stats = {
  visited : int;  (** records examined *)
  skipped_blocks : int;
  static_skipped_blocks : int;
      (** subset of [skipped_blocks] decided by the static filter alone *)
  total_blocks : int;
  slice_time : float;
  truncated : bool;
      (** a watchdog stopped the traversal early: the positions are a
          sound {e subset} of the full slice, honestly marked partial *)
}

(* edge indices grouped by endpoint, in edge-array order *)
type adjacency = {
  by_from : (int, int list) Hashtbl.t;
  by_to : (int, int list) Hashtbl.t;
}

type t = {
  gt : Global_trace.t;
  criterion : criterion;
  positions : int array;  (** included positions, ascending *)
  edges : edge array;
  stats : stats;
  mutable adj : adjacency option;  (** lazy edge adjacency index *)
}

let size t = Array.length t.positions

let mem t pos =
  (* positions is sorted ascending *)
  let a = t.positions in
  let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = pos then found := true
    else if a.(mid) < pos then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* deferred want created by a save/restore bypass *)
type deferred = {
  d_loc : int;
  d_save_pos : int;  (** re-activate strictly below this position *)
  d_requesters : (int * bool) list;  (** (requester, was already bypassed) *)
  mutable d_pending : bool;  (** cleared on activation (stale-heap check) *)
}

(* a wanted location's requesters plus, on the indexed path, the
   position of its latest definition below the cap in force when the
   entry was created (-1 = none / scan path) *)
type want_entry = { mutable reqs : (int * bool) list; cand : int }

(* indexed-path heap payloads; validity is re-checked at pop time
   because satisfied wants / reached includes / activated deferrals
   leave stale entries behind *)
type cand_kind =
  | Cand_want of int  (** location; valid iff its entry's cand = key *)
  | Cand_inc  (** valid iff key is still in [to_include] *)
  | Cand_defer of deferred  (** valid iff still pending *)

(** Compute the backwards dynamic slice for [criterion].

    [lp]: reuse precomputed block summaries and definition index (they
    are valid for any slice over the same global trace).  [pairs]:
    enable save/restore bypassing (§5.2).  [indexed] (default [true]):
    use the definition-index fast path; disable to run the backwards
    scan.  [block_skipping]: LP block skipping for the scan path
    (ignored when [indexed]); disable to measure the LP optimisation's
    effect (ablation).  The slice is identical on every path.
    [watchdog]: a polled wall-clock deadline; when it fires mid-walk the
    traversal stops and the result is marked [stats.truncated] — the
    positions found so far are a sound subset of the full slice.
    [driver] names the traversal backend explicitly and supersedes the
    [indexed]/[block_skipping] ablation flags: [`Indexed], [`Scan_skip]
    and [`Scan] are the stored-trace drivers; [`Reexec rx] answers
    record lookups by on-demand re-execution from checkpoints (see
    {!Reexec}) and walks the scan path with skipping off — record
    contents come from [rx], only [gt]'s merge order is consulted. *)
let compute ?(lp : Lp.t option) ?(pairs : Prune.pairs option)
    ?(block_skipping = true) ?(indexed = true)
    ?(static_filter : Lp.static_filter option)
    ?(watchdog : Dr_util.Budget.watchdog option)
    ?(driver : [ `Indexed | `Scan_skip | `Scan | `Reexec of Reexec.t ] option)
    (gt : Global_trace.t) (criterion : criterion) : t =
  Dr_obs.Metrics.bump m_computes;
  let t0 = Dr_util.Timer.now () in
  let n = Global_trace.length gt in
  if criterion.crit_pos < 0 || criterion.crit_pos >= n then
    invalid_arg "Slicer.compute: criterion out of range";
  let drv =
    match driver with
    | Some d -> d
    | None ->
      if indexed then `Indexed
      else if block_skipping then `Scan_skip
      else `Scan
  in
  let indexed = drv = `Indexed in
  let block_skipping = drv = `Scan_skip in
  Dr_obs.Obs.with_span ~cat:"slice" "slicer.compute" @@ fun sp ->
  Dr_obs.Obs.add_attr sp "crit_pos" (Dr_obs.Obs.Int criterion.crit_pos);
  Dr_obs.Obs.add_attr sp "indexed" (Dr_obs.Obs.Bool indexed);
  let lp =
    match lp with
    | Some l -> l
    | None -> (
      match drv with
      (* the re-execution driver must not walk the stored records to
         build summaries — that would defeat its purpose *)
      | `Reexec _ -> Lp.prepare_lite gt
      | _ -> Lp.prepare gt)
  in
  (* record lookups: from the stored trace, or re-derived on demand *)
  let fetch =
    match drv with
    | `Reexec rx ->
      fun pos -> Reexec.record rx ~gseq:(Global_trace.gseq_at gt pos)
    | _ -> Global_trace.record gt
  in
  let index = Lp.def_index lp in
  let wanted : (int, want_entry) Hashtbl.t = Hashtbl.create 256 in
  (* incremental want-set summary for the static pre-filter: per-register-
     number entry counts plus a wanted-memory count, kept in sync with
     [wanted] so a block check is a mask test instead of a hash iteration *)
  let track = static_filter <> None in
  let wreg_counts = Array.make Dr_isa.Reg.file_size 0 in
  let wmem = ref 0 in
  let track_add loc =
    if track then
      match Dr_isa.Loc.view loc with
      | Dr_isa.Loc.Reg { reg; _ } -> wreg_counts.(reg) <- wreg_counts.(reg) + 1
      | Dr_isa.Loc.Mem _ -> incr wmem
  in
  let track_remove loc =
    if track then
      match Dr_isa.Loc.view loc with
      | Dr_isa.Loc.Reg { reg; _ } -> wreg_counts.(reg) <- wreg_counts.(reg) - 1
      | Dr_isa.Loc.Mem _ -> decr wmem
  in
  let wanted_reg_mask () =
    let m = ref 0 in
    for r = 0 to Dr_isa.Reg.file_size - 1 do
      if wreg_counts.(r) > 0 then m := !m lor (1 lsl r)
    done;
    !m
  in
  let static_cannot b =
    match static_filter with
    | None -> false
    | Some sf ->
      Dr_obs.Metrics.bump m_static_checks;
      not
        (Lp.static_may_satisfy sf ~block:b ~reg_mask:(wanted_reg_mask ())
           ~wants_mem:(!wmem > 0))
  in
  let deferred : deferred list ref = ref [] in
  let heap = Dr_util.Heap.create ~dummy:Cand_inc in
  let to_include = Dr_util.Bitset.create n in
  let to_include_in_block = Array.make lp.Lp.num_blocks 0 in
  let in_slice = Dr_util.Bitset.create n in
  let slice_positions = Dr_util.Vec.Int_vec.create () in
  let edges = Dr_util.Vec.create ~dummy:{ from_pos = 0; to_pos = 0; kind = Control } in
  let visited = ref 0 and skipped = ref 0 and static_skipped = ref 0 in
  let truncated = ref false in
  (* polled every 2048 steps: one clock read, no cost on the happy path *)
  let steps = ref 0 in
  let deadline_hit () =
    match watchdog with
    | None -> false
    | Some wd ->
      incr steps;
      (* one up-front poll so an already-blown deadline stops even a
         trace shorter than the polling interval *)
      if (!steps = 1 || !steps land 2047 = 0) && Dr_util.Budget.expired wd
      then begin
        truncated := true;
        true
      end
      else false
  in
  (* [cap]: the largest position at which the want may be satisfied —
     the criterion and a record's uses look strictly below themselves,
     a reactivated deferral may be satisfied by the very record that
     activates it *)
  let add_want ?(bypassed = false) ~cap loc requester =
    match Hashtbl.find_opt wanted loc with
    | Some e ->
      (* the existing candidate is still the latest definition at or
         below [cap]: anything later was already popped and would have
         satisfied the entry *)
      e.reqs <- (requester, bypassed) :: e.reqs
    | None ->
      let cand =
        if indexed then Def_index.latest_at_or_before index ~loc ~pos:cap
        else -1
      in
      track_add loc;
      Hashtbl.replace wanted loc { reqs = [ (requester, bypassed) ]; cand };
      if indexed && cand >= 0 then
        Dr_util.Heap.push heap cand (Cand_want loc)
  in
  let mark_cd ~branch_gseq ~requester =
    let bpos = Global_trace.position gt ~gseq:branch_gseq in
    Dr_util.Vec.push edges { from_pos = requester; to_pos = bpos; kind = Control };
    if (not (Dr_util.Bitset.mem in_slice bpos))
       && not (Dr_util.Bitset.mem to_include bpos)
    then begin
      Dr_util.Bitset.add to_include bpos;
      to_include_in_block.(Lp.block_of lp bpos)
      <- to_include_in_block.(Lp.block_of lp bpos) + 1;
      if indexed then Dr_util.Heap.push heap bpos Cand_inc
    end
  in
  (* include a record: follow its uses and its control dependence *)
  let include_record pos =
    if not (Dr_util.Bitset.mem in_slice pos) then begin
      Dr_util.Bitset.add in_slice pos;
      Dr_util.Vec.Int_vec.push slice_positions pos;
      let r = fetch pos in
      Array.iter (fun u -> add_want ~cap:(pos - 1) u pos) r.Trace.uses;
      if r.Trace.cd >= 0 then mark_cd ~branch_gseq:r.Trace.cd ~requester:pos
    end
  in
  (* seed from the criterion *)
  let crit_rec = fetch criterion.crit_pos in
  Dr_util.Bitset.add in_slice criterion.crit_pos;
  Dr_util.Vec.Int_vec.push slice_positions criterion.crit_pos;
  let crit_cap = criterion.crit_pos - 1 in
  (match criterion.crit_locs with
  | Some locs -> List.iter (fun l -> add_want ~cap:crit_cap l criterion.crit_pos) locs
  | None ->
    Array.iter
      (fun u -> add_want ~cap:crit_cap u criterion.crit_pos)
      crit_rec.Trace.uses);
  if crit_rec.Trace.cd >= 0 then
    mark_cd ~branch_gseq:crit_rec.Trace.cd ~requester:criterion.crit_pos;
  (* process one record — shared by both traversal drivers *)
  let process pos =
    incr visited;
    (* activate deferred wants that apply strictly below their save;
       runs before the defs loop so this very record may satisfy them *)
    if !deferred <> [] then begin
      let active, still = List.partition (fun d -> pos < d.d_save_pos) !deferred in
      deferred := still;
      List.iter
        (fun d ->
          d.d_pending <- false;
          List.iter
            (fun (req, _) -> add_want ~bypassed:true ~cap:pos d.d_loc req)
            d.d_requesters)
        active
    end;
    let r = fetch pos in
    let included = ref (Dr_util.Bitset.mem to_include pos) in
    if !included then begin
      Dr_util.Bitset.remove to_include pos;
      let b = Lp.block_of lp pos in
      to_include_in_block.(b) <- to_include_in_block.(b) - 1
    end;
    Array.iter
      (fun d ->
        match Hashtbl.find_opt wanted d with
        | None -> ()
        | Some e ->
          let bypassed =
            match pairs with
            | None -> None
            | Some pairs -> (
              match Dr_isa.Loc.view d with
              | Dr_isa.Loc.Reg { reg; _ } -> (
                match Prune.bypass pairs ~gseq:r.Trace.gseq ~reg with
                | Some save_gseq ->
                  Some (Global_trace.position gt ~gseq:save_gseq)
                | None -> None)
              | Dr_isa.Loc.Mem _ -> None)
          in
          (match bypassed with
          | Some save_pos ->
            (* skip the restore and its save; resume below the save *)
            let dfr =
              { d_loc = d; d_save_pos = save_pos; d_requesters = e.reqs;
                d_pending = true }
            in
            deferred := dfr :: !deferred;
            if indexed then begin
              let dc =
                Def_index.latest_at_or_before index ~loc:d ~pos:(save_pos - 1)
              in
              if dc >= 0 then Dr_util.Heap.push heap dc (Cand_defer dfr)
            end
          | None ->
            List.iter
              (fun (req, via_bypass) ->
                Dr_util.Vec.push edges
                  { from_pos = req; to_pos = pos;
                    kind = (if via_bypass then Data_bypassed d else Data d) })
              e.reqs;
            included := true);
          track_remove d;
          Hashtbl.remove wanted d)
      r.Trace.defs;
    if !included then include_record pos
  in
  if indexed then begin
    (* indexed driver: pop candidate positions, largest first; stale
       entries (want satisfied, include reached, deferral activated
       since the push) are dropped.  Keys only ever decrease: every
       push during [process pos] is <= pos, and a key = pos re-pop is
       provably stale, so no position is processed twice. *)
    let continue = ref true in
    while !continue do
      if deadline_hit () then continue := false
      else
      match Dr_util.Heap.pop heap with
      | None -> continue := false
      | Some (key, kind) ->
        Dr_obs.Metrics.bump m_heap_pops;
        let valid =
          match kind with
          | Cand_inc -> Dr_util.Bitset.mem to_include key
          | Cand_want loc -> (
            match Hashtbl.find_opt wanted loc with
            | Some e -> e.cand = key
            | None -> false)
          | Cand_defer d -> d.d_pending
        in
        if valid then process key else Dr_obs.Metrics.bump m_stale_pops
    done
  end
  else begin
    (* scan driver: backwards walk with LP block skipping *)
    let pos = ref (criterion.crit_pos - 1) in
    while !pos >= 0 && not (deadline_hit ()) do
      let b = Lp.block_of lp !pos in
      let lo, hi = Lp.block_range lp b in
      (* the skippable top of this block: its range clamped to the
         trace end (the final block is partial) and to the walk's
         start below the criterion *)
      let block_top = min (min hi (n - 1)) (criterion.crit_pos - 1) in
      let skippable =
        block_skipping && !pos = block_top && to_include_in_block.(b) = 0
      in
      (* the static pre-filter short-circuits the exact summary check *)
      let sskip = skippable && static_cannot b in
      let can_skip =
        skippable
        && (sskip || not (Lp.may_satisfy lp ~block:b ~wanted))
        && List.for_all
             (fun d -> d.d_save_pos <= lo || not (Lp.defines lp ~block:b ~loc:d.d_loc))
             !deferred
      in
      if can_skip then begin
        incr skipped;
        if sskip then incr static_skipped;
        pos := lo - 1
      end
      else begin
        process !pos;
        decr pos
      end
    done
  end;
  let positions = Dr_util.Vec.Int_vec.to_array slice_positions in
  Array.sort Int.compare positions;
  let edges = Dr_util.Vec.to_array edges in
  Dr_obs.Metrics.add m_visited !visited;
  Dr_obs.Metrics.add m_skipped !skipped;
  Dr_obs.Metrics.add m_static_skips !static_skipped;
  Dr_obs.Metrics.add m_edges (Array.length edges);
  let slice_time = Dr_util.Timer.now () -. t0 in
  Dr_obs.Metrics.record t_compute slice_time;
  if !truncated then Dr_obs.Metrics.bump m_truncated;
  Dr_obs.Obs.add_attr sp "truncated" (Dr_obs.Obs.Bool !truncated);
  Dr_obs.Obs.add_attr sp "visited" (Dr_obs.Obs.Int !visited);
  Dr_obs.Obs.add_attr sp "skipped_blocks" (Dr_obs.Obs.Int !skipped);
  Dr_obs.Obs.add_attr sp "total_blocks" (Dr_obs.Obs.Int lp.Lp.num_blocks);
  Dr_obs.Obs.add_attr sp "slice_size" (Dr_obs.Obs.Int (Array.length positions));
  Dr_obs.Histogram.observe h_slice_size (float_of_int (Array.length positions));
  { gt; criterion; positions; edges;
    stats =
      { visited = !visited; skipped_blocks = !skipped;
        static_skipped_blocks = !static_skipped;
        total_blocks = lp.Lp.num_blocks; slice_time;
        truncated = !truncated };
    adj = None }

(* ---- parallel fan-out over independent criteria ---- *)

let m_par_batches = Dr_obs.Metrics.counter "slicer.parallel_batches"
let m_par_criteria = Dr_obs.Metrics.counter "slicer.parallel_criteria"

(** Slice every criterion of [criteria] over the same trace, fanning
    the independent computations over [pool] (sequential without one,
    or with a pool of size 1).

    Results come back in criterion order and each slice is {e identical}
    to what a sequential [compute] would produce: slices share only
    read-only state (the trace, the LP summaries and definition index,
    the save/restore pairs) plus the mutex-guarded segment cache and
    pc-index, and all per-slice traversal state is local to each call.
    Only [stats.slice_time] is schedule-dependent.

    The LP preparation (unless passed in) happens once, up front, with
    the scan itself sharded over the pool ({!Lp.prepare}). *)
let compute_many ?(lp : Lp.t option) ?(pairs : Prune.pairs option)
    ?(static_filter : Lp.static_filter option) ?(pool : Dr_util.Pool.t option)
    (gt : Global_trace.t) (criteria : criterion list) : t list =
  Dr_obs.Metrics.bump m_par_batches;
  Dr_obs.Metrics.add m_par_criteria (List.length criteria);
  Dr_obs.Obs.with_span ~cat:"slice" "slicer.compute_many" @@ fun sp ->
  Dr_obs.Obs.add_attr sp "criteria" (Dr_obs.Obs.Int (List.length criteria));
  let lp = match lp with Some l -> l | None -> Lp.prepare ?pool gt in
  (* Build the pc-index before the fan-out: workers then only read it.
     (It is mutex-guarded anyway; this just keeps the build off the
     contended path.) *)
  ignore (Global_trace.pc_index gt);
  let crits = Array.of_list criteria in
  let one c = compute ~lp ?pairs ?static_filter gt c in
  let results =
    (* always route a provided pool through Pool.map, even at size 1:
       the inline path runs the same instrumented task wrapper, so a
       traced 1-domain batch records the same merged span sequence as a
       4-domain one *)
    match pool with
    | Some p -> Dr_util.Pool.map p one crits
    | None -> Array.map one crits
  in
  Array.to_list results

(* ---- resource-governed slicing: the degradation ladder ---- *)

type rung = Rung_indexed | Rung_reexec | Rung_scan

let rung_name = function
  | Rung_indexed -> "indexed"
  | Rung_reexec -> "reexec"
  | Rung_scan -> "scan"

type governed = {
  g_slice : t;
  g_rung : rung;  (** the driver actually used *)
}

(** Rough resident bytes of [Lp.prepare] (definition index + block
    summaries) — the quantity {!compute_governed} tests against the
    memory budget before committing to the indexed rung. *)
let index_estimate_bytes gt = 40 * Global_trace.length gt

(** Compute the slice under [budget], stepping down the degradation
    ladder instead of dying when a budget trips:

    + {e indexed} (the default driver) when the definition index fits
      the remaining memory budget;
    + {e scan} with an {!Lp.prepare_lite} skeleton (O(1) preprocessing
      memory) when it does not;
    + on either rung, a {e partial} slice honestly marked
      [stats.truncated] when the budget's wall-clock watchdog fires.

    Every step down is recorded in the budget's degradation list and the
    [slicer.degraded_to_scan] / [slicer.degraded_to_reexec] /
    [slicer.truncated_slices] metrics.  Pass [lp] to reuse an index
    already paid for — that skips the memory check (the memory is
    already spent).  Pass [reexec] to make re-execution the middle rung
    of the ladder: when the definition index does not fit, record
    lookups come from checkpointed re-execution (O(ckpt interval)
    resident records) instead of a stored-trace scan. *)
let compute_governed ?lp ?pairs ?static_filter ?(reexec : Reexec.t option)
    ~(budget : Dr_util.Budget.t) (gt : Global_trace.t)
    (criterion : criterion) : governed =
  let watchdog = Dr_util.Budget.watchdog_of budget ~what:"slicer.compute" in
  let rung, lp =
    match lp with
    | Some l -> (Rung_indexed, l)
    | None ->
      if Dr_util.Budget.mem_would_exceed budget ~bytes:(index_estimate_bytes gt)
      then begin
        let to_ =
          match reexec with Some _ -> "reexec" | None -> "scan"
        in
        Dr_obs.Metrics.bump
          (match reexec with Some _ -> m_degraded_reexec | None -> m_degraded);
        Dr_util.Budget.note_degradation budget ~what:"slicer"
          ~from_:"indexed" ~to_
          ~reason:
            (Printf.sprintf "definition index (~%d bytes) over memory budget"
               (index_estimate_bytes gt));
        ( (match reexec with Some _ -> Rung_reexec | None -> Rung_scan),
          Lp.prepare_lite gt )
      end
      else (Rung_indexed, Lp.prepare gt)
  in
  let slice =
    match rung with
    | Rung_indexed ->
      compute ~lp ?pairs ?static_filter ?watchdog ~indexed:true gt criterion
    | Rung_reexec ->
      compute ~lp ?pairs ?watchdog
        ~driver:(`Reexec (Option.get reexec))
        gt criterion
    | Rung_scan ->
      compute ~lp ?pairs ?watchdog ~indexed:false ~block_skipping:false gt
        criterion
  in
  if slice.stats.truncated then
    Dr_util.Budget.note_degradation budget ~what:"slicer"
      ~from_:(rung_name rung) ~to_:"partial"
      ~reason:"wall-clock budget expired mid-traversal";
  { g_slice = slice; g_rung = rung }

(* ---- derived views ---- *)

(** The slice as (tid, pc, instance) statements, in trace order. *)
let statements t =
  Array.map
    (fun pos ->
      let r = Global_trace.record t.gt pos in
      (r.Trace.tid, r.Trace.pc, r.Trace.instance))
    t.positions

(** Distinct source lines touched by the slice (for GUI highlighting). *)
let source_lines t =
  let lines = Hashtbl.create 32 in
  Array.iter
    (fun pos ->
      let r = Global_trace.record t.gt pos in
      if r.Trace.line >= 0 then Hashtbl.replace lines r.Trace.line ())
    t.positions;
  List.sort Int.compare (Hashtbl.fold (fun l () acc -> l :: acc) lines [])

(* Build the per-endpoint edge index once; iterating backwards with
   prepends keeps each bucket in edge-array order, matching what the
   old whole-array filter returned. *)
let adjacency t =
  match t.adj with
  | Some a -> a
  | None ->
    Dr_obs.Metrics.bump m_adj_builds;
    let by_from = Hashtbl.create 64 and by_to = Hashtbl.create 64 in
    let prepend tbl key i =
      match Hashtbl.find_opt tbl key with
      | Some is -> Hashtbl.replace tbl key (i :: is)
      | None -> Hashtbl.replace tbl key [ i ]
    in
    for i = Array.length t.edges - 1 downto 0 do
      prepend by_from t.edges.(i).from_pos i;
      prepend by_to t.edges.(i).to_pos i
    done;
    let a = { by_from; by_to } in
    t.adj <- Some a;
    a

(** Dependence edges out of the record at [pos] (what it depends on), for
    backwards navigation in the slice browser.  Indexed: one hash lookup
    after the adjacency is built. *)
let deps_of t pos =
  match Hashtbl.find_opt (adjacency t).by_from pos with
  | None -> []
  | Some idxs ->
    List.map
      (fun i ->
        let e = t.edges.(i) in
        (e.kind, e.to_pos))
      idxs

(** Records that depend on [pos] (forward navigation).  Indexed. *)
let uses_of t pos =
  match Hashtbl.find_opt (adjacency t).by_to pos with
  | None -> []
  | Some idxs ->
    List.map
      (fun i ->
        let e = t.edges.(i) in
        (e.kind, e.from_pos))
      idxs

let pp_kind fmt = function
  | Data l -> Format.fprintf fmt "data(%s)" (Dr_isa.Loc.to_string l)
  | Data_bypassed l -> Format.fprintf fmt "data*(%s)" (Dr_isa.Loc.to_string l)
  | Control -> Format.pp_print_string fmt "control"

(* ---- slice files ---- *)

let slice_file_header = "# drdebug slice v1"

(** A slice file failed to parse: the 1-based line number and the reason. *)
exception Slice_file_error of { sf_line : int; sf_reason : string }

let slice_file_error sf_line sf_reason =
  raise (Slice_file_error { sf_line; sf_reason })

(** Save in the paper's "normal slice file" form: statements plus
    dependence edges, usable across debug sessions.  The write is atomic
    (tmp + fsync + rename): a crash mid-save cannot clobber a good file. *)
let save_file path t =
  Dr_util.Atomic_file.with_out path
    (fun oc ->
      Printf.fprintf oc "%s\n" slice_file_header;
      let r = Global_trace.record t.gt t.criterion.crit_pos in
      Printf.fprintf oc "criterion %d %d %d\n" r.Trace.tid r.Trace.pc
        r.Trace.instance;
      Array.iter
        (fun pos ->
          let r = Global_trace.record t.gt pos in
          Printf.fprintf oc "stmt %d %d %d %d\n" r.Trace.tid r.Trace.pc
            r.Trace.instance r.Trace.line)
        t.positions;
      Array.iter
        (fun e ->
          let kind, loc =
            match e.kind with
            | Data l -> ("data", l)
            | Data_bypassed l -> ("data*", l)
            | Control -> ("control", -1)
          in
          Printf.fprintf oc "edge %d %d %s %d\n" e.from_pos e.to_pos kind loc)
        t.edges)

(** Statements read back from a slice file: (tid, pc, instance, line).

    The header line is validated and malformed [stmt] lines raise
    {!Slice_file_error} — a corrupted slice file fails loudly instead of
    silently dropping statements.
    @raise Slice_file_error on a missing header or unparseable statement. *)
let load_file_statements path : (int * int * int * int) list =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match In_channel.input_line ic with
      | Some h when String.trim h = slice_file_header -> ()
      | Some h ->
        slice_file_error 1 (Printf.sprintf "bad slice file header %S" h)
      | None -> slice_file_error 1 "empty slice file");
      let int_field lineno what s =
        match int_of_string_opt s with
        | Some v -> v
        | None ->
          slice_file_error lineno (Printf.sprintf "bad %s field %S" what s)
      in
      let stmts = ref [] in
      let lineno = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           match String.split_on_char ' ' line with
           | [ "stmt"; tid; pc; inst; ln ] ->
             stmts :=
               (int_field !lineno "tid" tid, int_field !lineno "pc" pc,
                int_field !lineno "instance" inst, int_field !lineno "line" ln)
               :: !stmts
           | "stmt" :: _ ->
             slice_file_error !lineno "stmt line does not have 4 fields"
           | _ -> ()
         done
       with End_of_file -> ());
      List.rev !stmts)
