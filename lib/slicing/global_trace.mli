(** Combined global trace construction (paper §3(ii)): a topological
    merge of the per-thread traces under program order and the
    shared-memory access order, greedily clustering runs from the same
    thread for LP locality. *)

type t = {
  records : Segment_store.t;  (** shared with the collector result *)
  direct : Trace.record array option;
      (** the store's flat array when fully resident — internal fast
          path; always access records via {!record} *)
  order : int array;  (** position -> gseq *)
  pos_of_gseq : int array;  (** gseq -> position *)
  mutable pc_index : (int * int, int array) Hashtbl.t option;
      (** lazily built (tid, pc) -> ascending merge positions index;
          managed internally — use {!find} / {!find_last_at} *)
  pc_lock : Mutex.t;
      (** serializes the lazy [pc_index] build so concurrent first
          lookups from several domains agree on one index *)
}

(** One blocked per-thread head at the moment the merge stalled. *)
type cycle_head = {
  ch_tid : int;
  ch_gseq : int;
  ch_pc : int;
  ch_indeg : int;  (** unsatisfied incoming access-order edges *)
}

type cycle_info = {
  cy_emitted : int;  (** records merged before the stall *)
  cy_total : int;
  cy_heads : cycle_head list;  (** the offending record window *)
}

(** The access-order edges are cyclic — cannot happen for edges collected
    from a real execution; carries the blocked record window. *)
exception Cycle of cycle_info

val cycle_message : cycle_info -> string

(** Merge per-thread traces under the collector's cross-thread edges.
    [cluster] (default true) applies the paper's locality heuristic;
    disabling it rotates threads every record (ablation only — any
    topological order yields the same slices). *)
val construct : ?cluster:bool -> Collector.result -> t

val length : t -> int

(** Record at merge position [pos].  In-memory traces hit the flat
    array; spilled traces go through the segment cache (which can raise
    {!Dr_util.Budget.Resource_error} on a corrupt segment). *)
val record : t -> int -> Trace.record

(** Record with global sequence number [gseq]. *)
val record_at_gseq : t -> int -> Trace.record

(** Merge position of the record with the given gseq. *)
val position : t -> gseq:int -> int

(** Global sequence number of the record at merge position [pos] — the
    inverse of {!position}. *)
val gseq_at : t -> int -> int

(** Check the order against program order and the collector's
    cross-thread edges (used by tests). *)
val is_topological : t -> Collector.result -> bool

(** The (tid, pc) -> ascending merge positions index, built on first
    use under [pc_lock] (safe to call from several domains; they agree
    on one index).  Read-only once returned. *)
val pc_index : t -> (int * int, int array) Hashtbl.t

(** Ascending merge positions of records executing [pc] on [tid]
    ([[||]] when none).  Builds the (tid, pc) index on first use; the
    returned array is owned by the index — do not mutate. *)
val pc_positions : t -> tid:int -> pc:int -> int array

(** Position of the [instance]-th execution of [pc] by [tid], if any.
    Indexed: one hash lookup after the index is built. *)
val find : tid:int -> pc:int -> instance:int -> t -> int option

(** Position of the last execution of [pc] on [tid], if any.  Indexed. *)
val find_last_at : t -> tid:int -> pc:int -> int option

(** Position of the last record satisfying [p], if any.  The predicate
    is arbitrary, so this is a backwards scan — prefer {!find_last_at}
    for (tid, pc) targets. *)
val find_last : t -> p:(Trace.record -> bool) -> int option
