(** Combined global trace construction (paper §3(ii)).

    Per-thread traces are merged into a single fully ordered trace that
    honours (a) program order within each thread and (b) the shared-memory
    access order between threads (RAW, WAW and WAR edges captured during
    replay).  The merge is a topological sort of that graph; as in the
    paper, it greedily {e clusters} runs of records from the same thread
    to improve the locality of the LP traversal: it keeps emitting from
    the current thread until an incoming cross-thread edge forces a
    switch. *)

type t = {
  records : Segment_store.t;  (** shared with the collector result *)
  direct : Trace.record array option;
      (** the store's flat array when fully resident — keeps the hot
          [record] path at one array load for in-memory traces *)
  order : int array;  (** position -> gseq *)
  pos_of_gseq : int array;  (** gseq -> position *)
  mutable pc_index : (int * int, int array) Hashtbl.t option;
      (** lazy: (tid, pc) -> ascending merge positions; read/built under
          [pc_lock] (see {!pc_index}) *)
  pc_lock : Mutex.t;
      (** serializes the lazy [pc_index] build: without it two domains
          could build and clobber the index concurrently *)
}

(** One blocked per-thread head at the moment the merge stalled. *)
type cycle_head = {
  ch_tid : int;
  ch_gseq : int;
  ch_pc : int;
  ch_indeg : int;  (** unsatisfied incoming access-order edges *)
}

type cycle_info = {
  cy_emitted : int;  (** records merged before the stall *)
  cy_total : int;
  cy_heads : cycle_head list;  (** the offending record window *)
}

exception Cycle of cycle_info

let cycle_message { cy_emitted; cy_total; cy_heads } =
  let head_s h =
    Printf.sprintf "tid %d gseq %d pc %d (indeg %d)" h.ch_tid h.ch_gseq h.ch_pc
      h.ch_indeg
  in
  Printf.sprintf
    "no thread ready after %d of %d records: access-order edges form a cycle \
     among [%s]"
    cy_emitted cy_total
    (String.concat "; " (List.map head_s cy_heads))

let t_construct = Dr_obs.Metrics.timer "global_trace.construct"
let m_records = Dr_obs.Metrics.counter "global_trace.records_merged"
let m_find_indexed = Dr_obs.Metrics.counter "global_trace.find_indexed"
let m_find_fallback = Dr_obs.Metrics.counter "global_trace.find_fallback"

(** Merge per-thread traces under the given cross-thread edges.
    [cluster] (default true) keeps emitting from the current thread while
    its next record is ready — the paper's locality heuristic for the LP
    traversal; with [cluster:false] threads rotate every record (used by
    the ablation bench). *)
let construct ?(cluster = true) (c : Collector.result) : t =
  Dr_obs.Obs.with_span ~cat:"trace" "global_trace.construct" @@ fun _ ->
  Dr_obs.Metrics.time t_construct @@ fun () ->
  let n = Segment_store.length c.Collector.records in
  Dr_obs.Metrics.add m_records n;
  let indeg = Array.make n 0 in
  (* out-edges grouped by source *)
  let out_count = Array.make n 0 in
  Array.iter
    (fun (src, dst) ->
      out_count.(src) <- out_count.(src) + 1;
      indeg.(dst) <- indeg.(dst) + 1)
    c.Collector.order_edges;
  let out_start = Array.make (n + 1) 0 in
  for i = 1 to n do
    out_start.(i) <- out_start.(i - 1) + out_count.(i - 1)
  done;
  let out_edges = Array.make (Array.length c.Collector.order_edges) 0 in
  let fill = Array.copy out_start in
  Array.iter
    (fun (src, dst) ->
      out_edges.(fill.(src)) <- dst;
      fill.(src) <- fill.(src) + 1)
    c.Collector.order_edges;
  (* per-thread cursors *)
  let nthreads = Array.length c.Collector.per_thread in
  let cursor = Array.make nthreads 0 in
  let head tid =
    let tr = c.Collector.per_thread.(tid) in
    if cursor.(tid) < Array.length tr then Some tr.(cursor.(tid)) else None
  in
  let ready tid =
    match head tid with Some g -> indeg.(g) = 0 | None -> false
  in
  let order = Array.make n 0 in
  let pos_of_gseq = Array.make n 0 in
  let emitted = ref 0 in
  let cur = ref 0 in
  while !emitted < n do
    (* stay on the current thread while possible (clustering) *)
    if not cluster then cur := (!cur + 1) mod nthreads;
    let tid =
      if ready !cur then !cur
      else begin
        let found = ref (-1) in
        let k = ref 1 in
        while !found < 0 && !k <= nthreads do
          let t = (!cur + !k) mod nthreads in
          if ready t then found := t;
          incr k
        done;
        if !found < 0 then begin
          (* every thread head is blocked: report the offending window *)
          let heads = ref [] in
          for tid = nthreads - 1 downto 0 do
            match head tid with
            | Some g ->
              let r = Segment_store.get c.Collector.records g in
              heads :=
                { ch_tid = tid; ch_gseq = g; ch_pc = r.Trace.pc;
                  ch_indeg = indeg.(g) }
                :: !heads
            | None -> ()
          done;
          raise (Cycle { cy_emitted = !emitted; cy_total = n; cy_heads = !heads })
        end;
        !found
      end
    in
    cur := tid;
    let g = Option.get (head tid) in
    cursor.(tid) <- cursor.(tid) + 1;
    order.(!emitted) <- g;
    pos_of_gseq.(g) <- !emitted;
    incr emitted;
    for i = out_start.(g) to out_start.(g + 1) - 1 do
      let dst = out_edges.(i) in
      indeg.(dst) <- indeg.(dst) - 1
    done
  done;
  { records = c.Collector.records;
    direct = Segment_store.as_flat c.Collector.records;
    order; pos_of_gseq; pc_index = None; pc_lock = Mutex.create () }

let length t = Array.length t.order

(** Record at merge position [pos].  In-memory traces hit the flat
    array directly; spilled traces go through the segment cache. *)
let record t pos =
  match t.direct with
  | Some a -> a.(t.order.(pos))
  | None -> Segment_store.get t.records t.order.(pos)

(** Record with global sequence number [gseq]. *)
let record_at_gseq t gseq =
  match t.direct with
  | Some a -> a.(gseq)
  | None -> Segment_store.get t.records gseq

(** Position of the record with the given gseq. *)
let position t ~gseq = t.pos_of_gseq.(gseq)

(** [gseq_at t pos] is the collection-order sequence number of the record
    at merged position [pos] — the inverse of {!position}. *)
let gseq_at t pos = t.order.(pos)

(** [is_topological t c] checks the order against program order and the
    collector's cross-thread edges — used by tests. *)
let is_topological (t : t) (c : Collector.result) : bool =
  let ok = ref true in
  Array.iter
    (fun per ->
      for i = 1 to Array.length per - 1 do
        if t.pos_of_gseq.(per.(i - 1)) >= t.pos_of_gseq.(per.(i)) then ok := false
      done)
    c.Collector.per_thread;
  Array.iter
    (fun (src, dst) ->
      if t.pos_of_gseq.(src) >= t.pos_of_gseq.(dst) then ok := false)
    c.Collector.order_edges;
  !ok

(* Build (tid, pc) -> ascending merge positions on first lookup; the
   merge order never changes after [construct], so the index is built at
   most once per trace.  The build runs under [pc_lock] with a
   double-check — concurrent first lookups from several domains agree on
   one index instead of each building and clobbering its own.  The
   unlocked fast-path read is a benign race: it either sees the
   published index or falls through to the lock and re-checks. *)
let pc_index (t : t) : (int * int, int array) Hashtbl.t =
  match t.pc_index with
  | Some idx -> idx
  | None ->
    Mutex.lock t.pc_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.pc_lock)
      (fun () ->
        match t.pc_index with
        | Some idx -> idx
        | None ->
          let acc : (int * int, Dr_util.Vec.Int_vec.t) Hashtbl.t =
            Hashtbl.create 256
          in
          Array.iteri
            (fun pos g ->
              let r = record_at_gseq t g in
              let key = (r.Trace.tid, r.Trace.pc) in
              match Hashtbl.find_opt acc key with
              | Some v -> Dr_util.Vec.Int_vec.push v pos
              | None ->
                let v = Dr_util.Vec.Int_vec.create () in
                Dr_util.Vec.Int_vec.push v pos;
                Hashtbl.replace acc key v)
            t.order;
          let idx = Hashtbl.create (Hashtbl.length acc) in
          Hashtbl.iter
            (fun key v ->
              Hashtbl.replace idx key (Dr_util.Vec.Int_vec.to_array v))
            acc;
          t.pc_index <- Some idx;
          idx)

(** Ascending merge positions of records executing [pc] on [tid]. *)
let pc_positions (t : t) ~tid ~pc : int array =
  match Hashtbl.find_opt (pc_index t) (tid, pc) with
  | Some a -> a
  | None -> [||]

(** Find the position of the [instance]-th execution of [pc] by [tid], or
    [None].  Instances are recorded 1-based in program order, so the
    [instance]-th occurrence in the indexed position list is the match;
    the instance field is still verified and a linear probe of the
    occurrence list covers traces with non-contiguous numbering. *)
let find ~tid ~pc ~instance (t : t) : int option =
  let occ = pc_positions t ~tid ~pc in
  let len = Array.length occ in
  let direct =
    if instance >= 1 && instance <= len then begin
      let pos = occ.(instance - 1) in
      if (record t pos).Trace.instance = instance then Some pos else None
    end
    else None
  in
  match direct with
  | Some _ ->
    Dr_obs.Metrics.bump m_find_indexed;
    direct
  | None ->
    Dr_obs.Metrics.bump m_find_fallback;
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < len do
      if (record t occ.(!i)).Trace.instance = instance then
        found := Some occ.(!i);
      incr i
    done;
    !found

(** Position of the last execution of [pc] on [tid], or [None] —
    indexed, O(1) after the first lookup on a trace. *)
let find_last_at (t : t) ~tid ~pc : int option =
  let occ = pc_positions t ~tid ~pc in
  let len = Array.length occ in
  if len = 0 then None else Some occ.(len - 1)

(** Position of the last record satisfying [p], or [None].  The
    predicate is arbitrary, so this stays a backwards scan; prefer
    {!find_last_at} when the target is a (tid, pc). *)
let find_last (t : t) ~(p : Trace.record -> bool) : int option =
  let rec go pos =
    if pos < 0 then None
    else if p (record t pos) then Some pos
    else go (pos - 1)
  in
  go (length t - 1)
