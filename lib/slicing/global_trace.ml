(** Combined global trace construction (paper §3(ii)).

    Per-thread traces are merged into a single fully ordered trace that
    honours (a) program order within each thread and (b) the shared-memory
    access order between threads (RAW, WAW and WAR edges captured during
    replay).  The merge is a topological sort of that graph; as in the
    paper, it greedily {e clusters} runs of records from the same thread
    to improve the locality of the LP traversal: it keeps emitting from
    the current thread until an incoming cross-thread edge forces a
    switch. *)

type t = {
  records : Trace.record array;  (** shared with the collector result *)
  order : int array;  (** position -> gseq *)
  pos_of_gseq : int array;  (** gseq -> position *)
  mutable pc_index : (int * int, int array) Hashtbl.t option;
      (** lazy: (tid, pc) -> ascending merge positions *)
}

exception Cycle of string

let t_construct = Dr_obs.Metrics.timer "global_trace.construct"
let m_records = Dr_obs.Metrics.counter "global_trace.records_merged"
let m_find_indexed = Dr_obs.Metrics.counter "global_trace.find_indexed"
let m_find_fallback = Dr_obs.Metrics.counter "global_trace.find_fallback"

(** Merge per-thread traces under the given cross-thread edges.
    [cluster] (default true) keeps emitting from the current thread while
    its next record is ready — the paper's locality heuristic for the LP
    traversal; with [cluster:false] threads rotate every record (used by
    the ablation bench). *)
let construct ?(cluster = true) (c : Collector.result) : t =
  Dr_obs.Obs.with_span ~cat:"trace" "global_trace.construct" @@ fun _ ->
  Dr_obs.Metrics.time t_construct @@ fun () ->
  let n = Array.length c.Collector.records in
  Dr_obs.Metrics.add m_records n;
  let indeg = Array.make n 0 in
  (* out-edges grouped by source *)
  let out_count = Array.make n 0 in
  Array.iter
    (fun (src, dst) ->
      out_count.(src) <- out_count.(src) + 1;
      indeg.(dst) <- indeg.(dst) + 1)
    c.Collector.order_edges;
  let out_start = Array.make (n + 1) 0 in
  for i = 1 to n do
    out_start.(i) <- out_start.(i - 1) + out_count.(i - 1)
  done;
  let out_edges = Array.make (Array.length c.Collector.order_edges) 0 in
  let fill = Array.copy out_start in
  Array.iter
    (fun (src, dst) ->
      out_edges.(fill.(src)) <- dst;
      fill.(src) <- fill.(src) + 1)
    c.Collector.order_edges;
  (* per-thread cursors *)
  let nthreads = Array.length c.Collector.per_thread in
  let cursor = Array.make nthreads 0 in
  let head tid =
    let tr = c.Collector.per_thread.(tid) in
    if cursor.(tid) < Array.length tr then Some tr.(cursor.(tid)) else None
  in
  let ready tid =
    match head tid with Some g -> indeg.(g) = 0 | None -> false
  in
  let order = Array.make n 0 in
  let pos_of_gseq = Array.make n 0 in
  let emitted = ref 0 in
  let cur = ref 0 in
  while !emitted < n do
    (* stay on the current thread while possible (clustering) *)
    if not cluster then cur := (!cur + 1) mod nthreads;
    let tid =
      if ready !cur then !cur
      else begin
        let found = ref (-1) in
        let k = ref 1 in
        while !found < 0 && !k <= nthreads do
          let t = (!cur + !k) mod nthreads in
          if ready t then found := t;
          incr k
        done;
        if !found < 0 then
          raise
            (Cycle
               (Printf.sprintf
                  "no thread ready after %d of %d records: access-order edges form a cycle"
                  !emitted n));
        !found
      end
    in
    cur := tid;
    let g = Option.get (head tid) in
    cursor.(tid) <- cursor.(tid) + 1;
    order.(!emitted) <- g;
    pos_of_gseq.(g) <- !emitted;
    incr emitted;
    for i = out_start.(g) to out_start.(g + 1) - 1 do
      let dst = out_edges.(i) in
      indeg.(dst) <- indeg.(dst) - 1
    done
  done;
  { records = c.Collector.records; order; pos_of_gseq; pc_index = None }

let length t = Array.length t.order

(** Record at merge position [pos]. *)
let record t pos = t.records.(t.order.(pos))

(** Position of the record with the given gseq. *)
let position t ~gseq = t.pos_of_gseq.(gseq)

(** [is_topological t c] checks the order against program order and the
    collector's cross-thread edges — used by tests. *)
let is_topological (t : t) (c : Collector.result) : bool =
  let ok = ref true in
  Array.iter
    (fun per ->
      for i = 1 to Array.length per - 1 do
        if t.pos_of_gseq.(per.(i - 1)) >= t.pos_of_gseq.(per.(i)) then ok := false
      done)
    c.Collector.per_thread;
  Array.iter
    (fun (src, dst) ->
      if t.pos_of_gseq.(src) >= t.pos_of_gseq.(dst) then ok := false)
    c.Collector.order_edges;
  !ok

(* Build (tid, pc) -> ascending merge positions on first lookup; the
   merge order never changes after [construct], so the index is built at
   most once per trace. *)
let pc_index (t : t) : (int * int, int array) Hashtbl.t =
  match t.pc_index with
  | Some idx -> idx
  | None ->
    let acc : (int * int, Dr_util.Vec.Int_vec.t) Hashtbl.t =
      Hashtbl.create 256
    in
    Array.iteri
      (fun pos g ->
        let r = t.records.(g) in
        let key = (r.Trace.tid, r.Trace.pc) in
        match Hashtbl.find_opt acc key with
        | Some v -> Dr_util.Vec.Int_vec.push v pos
        | None ->
          let v = Dr_util.Vec.Int_vec.create () in
          Dr_util.Vec.Int_vec.push v pos;
          Hashtbl.replace acc key v)
      t.order;
    let idx = Hashtbl.create (Hashtbl.length acc) in
    Hashtbl.iter
      (fun key v -> Hashtbl.replace idx key (Dr_util.Vec.Int_vec.to_array v))
      acc;
    t.pc_index <- Some idx;
    idx

(** Ascending merge positions of records executing [pc] on [tid]. *)
let pc_positions (t : t) ~tid ~pc : int array =
  match Hashtbl.find_opt (pc_index t) (tid, pc) with
  | Some a -> a
  | None -> [||]

(** Find the position of the [instance]-th execution of [pc] by [tid], or
    [None].  Instances are recorded 1-based in program order, so the
    [instance]-th occurrence in the indexed position list is the match;
    the instance field is still verified and a linear probe of the
    occurrence list covers traces with non-contiguous numbering. *)
let find ~tid ~pc ~instance (t : t) : int option =
  let occ = pc_positions t ~tid ~pc in
  let len = Array.length occ in
  let direct =
    if instance >= 1 && instance <= len then begin
      let pos = occ.(instance - 1) in
      if (record t pos).Trace.instance = instance then Some pos else None
    end
    else None
  in
  match direct with
  | Some _ ->
    Dr_obs.Metrics.bump m_find_indexed;
    direct
  | None ->
    Dr_obs.Metrics.bump m_find_fallback;
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < len do
      if (record t occ.(!i)).Trace.instance = instance then
        found := Some occ.(!i);
      incr i
    done;
    !found

(** Position of the last execution of [pc] on [tid], or [None] —
    indexed, O(1) after the first lookup on a trace. *)
let find_last_at (t : t) ~tid ~pc : int option =
  let occ = pc_positions t ~tid ~pc in
  let len = Array.length occ in
  if len = 0 then None else Some occ.(len - 1)

(** Position of the last record satisfying [p], or [None].  The
    predicate is arbitrary, so this stays a backwards scan; prefer
    {!find_last_at} when the target is a (tid, pc). *)
let find_last (t : t) ~(p : Trace.record -> bool) : int option =
  let rec go pos =
    if pos < 0 then None
    else if p (record t pos) then Some pos
    else go (pos - 1)
  in
  go (length t - 1)
