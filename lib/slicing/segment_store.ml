(** Out-of-core storage for trace records.

    The store holds the records of one collected region trace, indexed
    by gseq, in fixed-size {e segments}.  While a {!Budget.t}'s memory
    budget holds, segments stay resident; past it, completed segments
    spill to disk oldest-first.  Spilled segments are written with the
    pinball container discipline — a magic header, a CRC32 trailer over
    the whole payload, and an atomic tmp+fsync+rename — and read back
    through a small LRU-pinned cache, so a backwards slice over a
    spilled trace re-reads each segment at most once per cache miss.

    A store that never spilled keeps a flat record array and costs one
    option match per access over the PR-5 representation.  Corruption is
    never silent: a missing, truncated, or bit-flipped segment raises
    {!Dr_util.Budget.Resource_error} [Segment_corrupt] with the path and
    reason, and a simulated-fault hook lets the conformance fuzzer
    inject ENOSPC and short writes at the exact write boundary. *)

let m_spilled = Dr_obs.Metrics.counter "segment_store.spilled_segments"
let m_spill_bytes = Dr_obs.Metrics.counter "segment_store.spilled_bytes"
let m_reads = Dr_obs.Metrics.counter "segment_store.segment_reads"

(* the cache tier reports under the segstore.* prefix; a miss re-reads
   and decodes a spilled segment, so the miss count tracks
   [segment_store.segment_reads] *)
let m_cache_hits = Dr_obs.Metrics.counter "segstore.hits"
let m_cache_misses = Dr_obs.Metrics.counter "segstore.misses"
let m_cache_evictions = Dr_obs.Metrics.counter "segstore.evictions"
let m_corrupt = Dr_obs.Metrics.counter "segment_store.corrupt_segments"
let t_spill_write = Dr_obs.Metrics.timer "segment_store.spill_write"
let t_spill_read = Dr_obs.Metrics.timer "segment_store.spill_read"

let default_seg_records = 4096

let default_cache_segments = 4

(* ---- segment file format ---- *)

let magic = "DRSEG1"

let corrupt path reason =
  Dr_obs.Metrics.bump m_corrupt;
  raise
    (Dr_util.Budget.Resource_error
       (Dr_util.Budget.Segment_corrupt { re_path = path; re_reason = reason }))

let encode_record e (r : Trace.record) =
  let open Dr_util.Codec in
  put_uint e r.Trace.gseq;
  put_uint e r.Trace.tid;
  put_uint e r.Trace.pc;
  put_uint e r.Trace.instance;
  put_uint e r.Trace.lidx;
  put_int_array e r.Trace.defs;
  put_int_array e r.Trace.uses;
  put_int e r.Trace.cd;
  put_uint e r.Trace.flags;
  put_int e r.Trace.line

let decode_record d : Trace.record =
  let open Dr_util.Codec in
  let gseq = get_uint d in
  let tid = get_uint d in
  let pc = get_uint d in
  let instance = get_uint d in
  let lidx = get_uint d in
  let defs = get_int_array d in
  let uses = get_int_array d in
  let cd = get_int d in
  let flags = get_uint d in
  let line = get_int d in
  { Trace.gseq; tid; pc; instance; lidx; defs; uses; cd; flags; line }

(** Encode a segment: magic, varint record count, records, then a
    4-byte little-endian CRC32 trailer over everything before it. *)
let encode_segment (records : Trace.record array) : string =
  let e = Dr_util.Codec.encoder () in
  Buffer.add_string e magic;
  Dr_util.Codec.put_uint e (Array.length records);
  Array.iter (encode_record e) records;
  let payload = Dr_util.Codec.to_string e in
  let crc = Dr_util.Crc32.string payload in
  let trailer = Bytes.create 4 in
  Bytes.set_uint8 trailer 0 (crc land 0xff);
  Bytes.set_uint8 trailer 1 ((crc lsr 8) land 0xff);
  Bytes.set_uint8 trailer 2 ((crc lsr 16) land 0xff);
  Bytes.set_uint8 trailer 3 ((crc lsr 24) land 0xff);
  payload ^ Bytes.to_string trailer

let decode_segment ~path ~expected_count (raw : string) : Trace.record array =
  let len = String.length raw in
  if len < String.length magic + 4 then corrupt path "file too short";
  let payload_len = len - 4 in
  let stored =
    Char.code raw.[payload_len]
    lor (Char.code raw.[payload_len + 1] lsl 8)
    lor (Char.code raw.[payload_len + 2] lsl 16)
    lor (Char.code raw.[payload_len + 3] lsl 24)
  in
  let actual = Dr_util.Crc32.string ~len:payload_len raw in
  if stored <> actual then
    corrupt path (Printf.sprintf "CRC mismatch: stored %d, computed %d" stored actual);
  if String.sub raw 0 (String.length magic) <> magic then
    corrupt path "bad magic";
  let d =
    Dr_util.Codec.decoder (String.sub raw (String.length magic) (payload_len - String.length magic))
  in
  match
    let n = Dr_util.Codec.get_count ~min_elt_bytes:8 d "segment records" in
    if n <> expected_count then
      corrupt path
        (Printf.sprintf "record count %d, expected %d" n expected_count);
    Array.init n (fun _ -> decode_record d)
  with
  | records -> records
  | exception Dr_util.Codec.Corrupt reason -> corrupt path reason

(* ---- simulated write faults (conformance fault injection) ---- *)

type write_fault =
  | Fault_enospc  (** the write fails as if the disk were full *)
  | Fault_short_write of int
      (** only the first [n] bytes reach disk (lost fsync / power cut) *)

(* Domain-local: each fuzz worker domain installs its own injector, so
   parallel fuzz cases with different fault plans never see each other's
   hooks. *)
let write_fault_hook : (string -> write_fault option) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> fun _ -> None)

(** Install a write-fault injector consulted on every segment write by
    the {e calling domain} (keyed by the target path).  The hook is
    domain-local, so concurrent fuzz cases on different domains inject
    independent fault plans.  Test/fuzzer use only. *)
let set_write_fault_hook f = Domain.DLS.set write_fault_hook f

let clear_write_fault_hook () =
  Domain.DLS.set write_fault_hook (fun _ -> None)

let write_segment_file path (data : string) =
  match Domain.DLS.get write_fault_hook path with
  | Some Fault_enospc ->
    raise
      (Dr_util.Budget.Resource_error
         (Dr_util.Budget.Disk_full
            { re_path = path; re_reason = "no space left on device (simulated)" }))
  | Some (Fault_short_write n) ->
    (* deliberately bypasses the atomic discipline: models a disk that
       acknowledged a write it never completed *)
    let keep = min (max n 0) (String.length data) in
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (String.sub data 0 keep))
  | None -> (
    try Dr_util.Atomic_file.write_string path data
    with Sys_error reason ->
      raise
        (Dr_util.Budget.Resource_error
           (Dr_util.Budget.Disk_full { re_path = path; re_reason = reason })))

(* ---- the store ---- *)

type seg =
  | Resident of Trace.record array
  | Spilled of { sp_path : string; sp_count : int; sp_bytes : int }

type t = {
  seg_records : int;
  total : int;
  segs : seg array;
  flat : Trace.record array option;
      (** set iff the store never spilled: the O(1) fast path *)
  cache : (int, Trace.record array) Hashtbl.t;
  mutable lru : int list;  (** cached segment indices, most recent first *)
  cache_cap : int;
  mutable s_hits : int;  (** per-store cache traffic, under [lock] *)
  mutable s_misses : int;
  mutable s_evictions : int;
  lock : Mutex.t;
      (** guards [cache], [lru] and the [s_*] stats so concurrent
          readers on several domains share the spilled-segment cache
          safely; the flat path never takes it *)
}

(** Cache traffic of one store (the process-wide aggregate lives in the
    [segstore.*] metrics).  [cs_hits + cs_misses] is the number of
    spilled-segment accesses; a never-spilled store reports zeros. *)
type cache_stats = { cs_hits : int; cs_misses : int; cs_evictions : int }

let cache_stats t =
  Mutex.lock t.lock;
  let st =
    { cs_hits = t.s_hits; cs_misses = t.s_misses;
      cs_evictions = t.s_evictions }
  in
  Mutex.unlock t.lock;
  st

(** Hits over total cache accesses; 0 when the store never spilled. *)
let cache_hit_rate t =
  let st = cache_stats t in
  let total = st.cs_hits + st.cs_misses in
  if total = 0 then 0.0 else float_of_int st.cs_hits /. float_of_int total

(** Resident bytes a record roughly occupies (boxed record + two int
    arrays), the unit all budget accounting uses. *)
let record_bytes (r : Trace.record) =
  8 * (16 + Array.length r.Trace.defs + Array.length r.Trace.uses)

let length t = t.total

let is_resident t = t.flat <> None

(** The flat record array when the store never spilled — the hot-path
    escape hatch {!Global_trace} uses to keep in-memory access at PR-5
    cost. *)
let as_flat t = t.flat

let num_segments t = Array.length t.segs

let spilled_segments t =
  Array.fold_left
    (fun acc s -> match s with Spilled _ -> acc + 1 | Resident _ -> acc)
    0 t.segs

(** (segment index, path) of every spilled segment, ascending. *)
let spilled_paths t =
  let acc = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Spilled { sp_path; _ } -> acc := (i, sp_path) :: !acc
      | Resident _ -> ())
    t.segs;
  List.rev !acc

let of_array (a : Trace.record array) : t =
  { seg_records = default_seg_records; total = Array.length a; segs = [||];
    flat = Some a; cache = Hashtbl.create 1; lru = []; cache_cap = 0;
    s_hits = 0; s_misses = 0; s_evictions = 0; lock = Mutex.create () }

(* LRU: move [s] to the front, evicting past capacity. *)
let cache_insert t s records =
  Hashtbl.replace t.cache s records;
  t.lru <- s :: List.filter (fun x -> x <> s) t.lru;
  let rec drop n = function
    | [] -> []
    | keep :: rest when n > 1 -> keep :: drop (n - 1) rest
    | evict :: rest ->
      Hashtbl.remove t.cache evict;
      Dr_obs.Metrics.bump m_cache_evictions;
      t.s_evictions <- t.s_evictions + 1;
      drop n rest
  in
  if List.length t.lru > t.cache_cap then t.lru <- drop t.cache_cap t.lru

let load_segment t s ~path ~count : Trace.record array =
  Dr_obs.Metrics.bump m_reads;
  Dr_obs.Metrics.time t_spill_read @@ fun () ->
  let raw =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | raw -> raw
    | exception Sys_error reason -> corrupt path ("unreadable: " ^ reason)
    | exception End_of_file -> corrupt path "truncated while reading"
  in
  let records = decode_segment ~path ~expected_count:count raw in
  cache_insert t s records;
  records

(* The cache lookup, LRU touch and miss-load all run under [t.lock]:
   concurrent readers from a domain pool then share one cache without
   corrupting the LRU list, and a segment is decoded once per miss
   rather than once per racing reader. *)
let seg_array t s =
  match t.segs.(s) with
  | Resident a -> a
  | Spilled { sp_path; sp_count; _ } ->
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        match Hashtbl.find_opt t.cache s with
        | Some a ->
          Dr_obs.Metrics.bump m_cache_hits;
          t.s_hits <- t.s_hits + 1;
          if (match t.lru with hd :: _ -> hd <> s | [] -> true) then
            t.lru <- s :: List.filter (fun x -> x <> s) t.lru;
          a
        | None ->
          Dr_obs.Metrics.bump m_cache_misses;
          t.s_misses <- t.s_misses + 1;
          load_segment t s ~path:sp_path ~count:sp_count)

(** Record with gseq [i].
    @raise Dr_util.Budget.Resource_error when a spilled segment is
    missing or corrupt. *)
let get t i =
  match t.flat with
  | Some a -> a.(i)
  | None -> (seg_array t (i / t.seg_records)).(i mod t.seg_records)

(** Iterate records in gseq order — sequential, one segment pinned at a
    time. *)
let iter t f =
  match t.flat with
  | Some a -> Array.iteri f a
  | None ->
    for s = 0 to Array.length t.segs - 1 do
      let a = seg_array t s in
      let base = s * t.seg_records in
      Array.iteri (fun j r -> f (base + j) r) a
    done

(* ---- builder ---- *)

type builder = {
  b_seg_records : int;
  b_cache_cap : int;
  b_budget : Dr_util.Budget.t option;
  b_store_id : int;
  mutable b_segs : seg list;  (** completed segments, newest first *)
  mutable b_nsegs : int;
  mutable b_resident : (int * int) list;
      (** completed resident segments as (index, bytes), oldest last *)
  mutable b_cur : Trace.record list;  (** current segment, newest first *)
  mutable b_cur_count : int;
  mutable b_cur_bytes : int;
  mutable b_total : int;
  mutable b_spilled : bool;
}

(* Atomic so builders created concurrently (parallel fuzz cases) get
   distinct spill-file prefixes. *)
let store_ids = Atomic.make 0

let builder ?budget ?(seg_records = default_seg_records)
    ?(cache_segments = default_cache_segments) () : builder =
  if seg_records < 1 then invalid_arg "Segment_store.builder: seg_records < 1";
  let id = 1 + Atomic.fetch_and_add store_ids 1 in
  { b_seg_records = seg_records; b_cache_cap = max 1 cache_segments;
    b_budget = budget; b_store_id = id; b_segs = []; b_nsegs = 0;
    b_resident = []; b_cur = []; b_cur_count = 0; b_cur_bytes = 0;
    b_total = 0; b_spilled = false }

let built_length b = b.b_total

let seg_path b ~dir ~index =
  Filename.concat dir (Printf.sprintf "seg-%d-%06d.drseg" b.b_store_id index)

(* Spill one completed resident segment (by completed-segment index). *)
let spill_seg b budget ~index =
  let nth_from_newest = b.b_nsegs - 1 - index in
  let rec replace i = function
    | [] -> []
    | s :: rest when i = 0 -> (
      match s with
      | Spilled _ -> s :: rest
      | Resident a ->
        let dir = Dr_util.Budget.ensure_spill_dir budget in
        let path = seg_path b ~dir ~index in
        let data =
          Dr_obs.Metrics.time t_spill_write @@ fun () ->
          let data = encode_segment a in
          write_segment_file path data;
          data
        in
        Dr_obs.Metrics.bump m_spilled;
        Dr_obs.Metrics.add m_spill_bytes (String.length data);
        Dr_util.Budget.note_spilled budget (String.length data);
        Spilled { sp_path = path; sp_count = Array.length a;
                  sp_bytes = String.length data }
        :: rest)
    | s :: rest -> s :: replace (i - 1) rest
  in
  b.b_segs <- replace nth_from_newest b.b_segs;
  b.b_spilled <- true

(* While over the memory budget, spill completed resident segments
   oldest-first. *)
let rebalance b =
  match b.b_budget with
  | None -> ()
  | Some budget ->
    let rec go () =
      if Dr_util.Budget.over_mem budget then
        match List.rev b.b_resident with
        | [] -> ()
        | (index, bytes) :: _ ->
          spill_seg b budget ~index;
          Dr_util.Budget.release budget bytes;
          b.b_resident <-
            List.filter (fun (i, _) -> i <> index) b.b_resident;
          go ()
    in
    go ()

let finish_segment b =
  if b.b_cur_count > 0 then begin
    let a = Array.make b.b_cur_count Trace.dummy in
    List.iteri (fun i r -> a.(b.b_cur_count - 1 - i) <- r) b.b_cur;
    let index = b.b_nsegs in
    b.b_segs <- Resident a :: b.b_segs;
    b.b_nsegs <- b.b_nsegs + 1;
    b.b_resident <- (index, b.b_cur_bytes) :: b.b_resident;
    b.b_cur <- [];
    b.b_cur_count <- 0;
    b.b_cur_bytes <- 0;
    rebalance b
  end

let append b (r : Trace.record) =
  b.b_cur <- r :: b.b_cur;
  b.b_cur_count <- b.b_cur_count + 1;
  b.b_total <- b.b_total + 1;
  let bytes = record_bytes r in
  b.b_cur_bytes <- b.b_cur_bytes + bytes;
  (match b.b_budget with
  | Some budget -> Dr_util.Budget.charge budget bytes
  | None -> ());
  if b.b_cur_count >= b.b_seg_records then finish_segment b

let seal (b : builder) : t =
  finish_segment b;
  let segs = Array.of_list (List.rev b.b_segs) in
  if not b.b_spilled then begin
    (* fully resident: flatten for the O(1) access path *)
    let flat = Array.make b.b_total Trace.dummy in
    let pos = ref 0 in
    Array.iter
      (fun s ->
        match s with
        | Resident a ->
          Array.blit a 0 flat !pos (Array.length a);
          pos := !pos + Array.length a
        | Spilled _ -> assert false)
      segs;
    { seg_records = b.b_seg_records; total = b.b_total; segs;
      flat = Some flat; cache = Hashtbl.create 1; lru = [];
      cache_cap = b.b_cache_cap; s_hits = 0; s_misses = 0; s_evictions = 0;
      lock = Mutex.create () }
  end
  else
    { seg_records = b.b_seg_records; total = b.b_total; segs; flat = None;
      cache = Hashtbl.create 8; lru = []; cache_cap = b.b_cache_cap;
      s_hits = 0; s_misses = 0; s_evictions = 0; lock = Mutex.create () }

(** Copy an existing store through a fresh (typically budgeted) builder
    — the conformance fault oracle uses this to produce a spilled twin
    of an in-memory trace. *)
let rebuild ?budget ?seg_records ?cache_segments (src : t) : t =
  let b = builder ?budget ?seg_records ?cache_segments () in
  iter src (fun _ r -> append b r);
  seal b
