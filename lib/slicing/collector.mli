(** Trace collection during deterministic replay (paper §3(i), §5).

    Attaches to a replay of a region pinball and records per-instruction
    def/use sets, online dynamic control dependences (Xin–Zhang, driven
    by {!Dr_cfg.Cfg} post-dominators), shared-memory access-order edges,
    dynamically observed indirect-jump targets, and confirmed
    save/restore pairs.  With [refine] (§5.1) collection runs twice:
    pass 1 gathers indirect-jump targets, the CFG is refined, pass 2
    collects the precise trace — sound because replay is deterministic. *)

type result = {
  records : Segment_store.t;  (** indexed by gseq = execution order *)
  per_thread : int array array;  (** tid -> gseqs in program order *)
  order_edges : (int * int) array;
      (** (earlier gseq, later gseq) cross-thread RAW/WAW/WAR edges *)
  indirect_targets : (int * int list) list;
      (** observed targets per indirect jump/call pc *)
  pairs : Prune.pairs;  (** confirmed save/restore pairs *)
  cfg : Dr_cfg.Cfg.t;  (** the CFG used in the final pass *)
  collect_time : float;  (** wall-clock seconds for trace collection *)
}

(** The record-derivation state machine shared between collection and
    on-demand re-execution ({!Reexec}): Xin–Zhang control-dependence
    stacks, per-(tid, pc) instance counters, per-thread local indices,
    and the line table.  The state is prefix-dependent, so a checkpoint
    that wants to resume derivation mid-trace carries a {!Derive.copy}
    taken at the same event boundary as the machine snapshot.  Both
    users call {!Derive.next} exactly once per retired instruction, in
    execution order — byte-identical records follow from replay
    determinism plus this shared core. *)
module Derive : sig
  type t

  (** Fresh state for a replay from the region start.  [cfg] must be
      the (refined) CFG the records' control dependences should be
      computed against. *)
  val create : cfg:Dr_cfg.Cfg.t -> Dr_isa.Program.t -> t

  (** Deep copy, safe to advance independently of the original. *)
  val copy : t -> t

  (** Derive the trace record for the [gseq]-th retired instruction and
      advance the state. *)
  val next : t -> gseq:int -> Dr_machine.Event.t -> Trace.record
end

(** Pass-1 helper: the dynamically observed targets of every indirect
    jump/call in the region. *)
val collect_indirect_targets :
  Dr_isa.Program.t -> Dr_pinplay.Pinball.t -> (int, int list) Hashtbl.t

(** Collect the full region trace.  [refine] (default true) enables the
    two-pass CFG refinement of §5.1; [max_save] is the save/restore
    candidate window of §5.2.  With [budget], records past the memory
    budget spill to disk in segments of [seg_records] records and the
    wall-clock watchdog aborts collection with a structured
    {!Dr_util.Budget.Resource_error} (a partial trace is useless). *)
val collect :
  ?refine:bool ->
  ?max_save:int ->
  ?budget:Dr_util.Budget.t ->
  ?seg_records:int ->
  Dr_isa.Program.t ->
  Dr_pinplay.Pinball.t ->
  result
