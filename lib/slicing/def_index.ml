(** Per-location definition index over the combined global trace.

    For every {!Dr_isa.Loc} encoding that is ever defined in the trace,
    the index stores the ascending array of merge positions whose record
    defines it.  Built in one pass over the trace (positions are visited
    in ascending order, so the per-location arrays come out sorted for
    free) and shared by {!Lp} (block summaries are derived from it) and
    the indexed {!Slicer} fast path, which resolves "the most recent
    definition of [loc] at or before [pos]" with one binary search
    instead of a linear backwards scan. *)

let m_builds = Dr_obs.Metrics.counter "def_index.builds"
let m_locations = Dr_obs.Metrics.counter "def_index.locations"
let m_defs = Dr_obs.Metrics.counter "def_index.def_positions"
let m_lookups = Dr_obs.Metrics.counter "def_index.lookups"
let t_build = Dr_obs.Metrics.timer "def_index.build"

type t = {
  defs_by_loc : (int, int array) Hashtbl.t;
      (** location -> ascending positions of records defining it *)
  trace_len : int;
}

(* One shard: per-location def positions for merge positions [lo, hi).
   Positions are visited ascending, so each vector comes out sorted. *)
let build_shard (gt : Global_trace.t) (lo, hi) :
    (int, Dr_util.Vec.Int_vec.t) Hashtbl.t =
  let acc : (int, Dr_util.Vec.Int_vec.t) Hashtbl.t = Hashtbl.create 256 in
  for pos = lo to hi - 1 do
    let r = Global_trace.record gt pos in
    Array.iter
      (fun d ->
        match Hashtbl.find_opt acc d with
        | Some v -> Dr_util.Vec.Int_vec.push v pos
        | None ->
          let v = Dr_util.Vec.Int_vec.create () in
          Dr_util.Vec.Int_vec.push v pos;
          Hashtbl.replace acc d v)
      r.Trace.defs
  done;
  acc

(** Build the index, optionally sharding the trace scan over [pool].
    Shards cover contiguous ascending position ranges and are merged in
    range order, so each location's concatenated positions stay
    ascending and the result is identical to a sequential build
    whatever the domain schedule. *)
let build ?pool (gt : Global_trace.t) : t =
  Dr_obs.Metrics.bump m_builds;
  Dr_obs.Obs.with_span ~cat:"slice" "def_index.build" @@ fun _ ->
  Dr_obs.Metrics.time t_build (fun () ->
      let n = Global_trace.length gt in
      let shards =
        match pool with
        | Some p when Dr_util.Pool.size p > 1 && n > 1 ->
          Dr_util.Pool.map p (build_shard gt)
            (Dr_util.Pool.split ~chunks:(Dr_util.Pool.size p) ~len:n)
        | _ -> [| build_shard gt (0, n) |]
      in
      let acc : (int, Dr_util.Vec.Int_vec.t) Hashtbl.t =
        if Array.length shards = 1 then shards.(0)
        else begin
          let acc = Hashtbl.create 256 in
          Array.iter
            (fun tbl ->
              Hashtbl.iter
                (fun loc v ->
                  let dst =
                    match Hashtbl.find_opt acc loc with
                    | Some d -> d
                    | None ->
                      let d = Dr_util.Vec.Int_vec.create () in
                      Hashtbl.replace acc loc d;
                      d
                  in
                  for i = 0 to Dr_util.Vec.Int_vec.length v - 1 do
                    Dr_util.Vec.Int_vec.push dst (Dr_util.Vec.Int_vec.get v i)
                  done)
                tbl)
            shards;
          acc
        end
      in
      let defs_by_loc = Hashtbl.create (Hashtbl.length acc) in
      Hashtbl.iter
        (fun loc v ->
          let a = Dr_util.Vec.Int_vec.to_array v in
          Dr_obs.Metrics.add m_defs (Array.length a);
          Hashtbl.replace defs_by_loc loc a)
        acc;
      Dr_obs.Metrics.add m_locations (Hashtbl.length defs_by_loc);
      { defs_by_loc; trace_len = n })

(** An index with no entries — the scan-driver degradation rung uses it
    so {!Lp.prepare_lite} can skip the index build entirely. *)
let empty ~trace_len = { defs_by_loc = Hashtbl.create 1; trace_len }

let trace_len t = t.trace_len

let num_locations t = Hashtbl.length t.defs_by_loc

let positions t ~loc =
  match Hashtbl.find_opt t.defs_by_loc loc with Some a -> a | None -> [||]

(** Position of the latest definition of [loc] at or before [pos], or
    [-1] when none exists.  One binary search in the location's def
    array. *)
let latest_at_or_before t ~loc ~pos : int =
  Dr_obs.Metrics.bump m_lookups;
  match Hashtbl.find_opt t.defs_by_loc loc with
  | None -> -1
  | Some a ->
    let len = Array.length a in
    if len = 0 || a.(0) > pos then -1
    else begin
      (* invariant: a.(lo) <= pos; answer is the last such element *)
      let lo = ref 0 and hi = ref (len - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if a.(mid) <= pos then lo := mid else hi := mid - 1
      done;
      a.(!lo)
    end

(** Does [loc] have a definition inside [\[lo, hi\]]? *)
let defines_in_range t ~loc ~lo ~hi : bool =
  let p = latest_at_or_before t ~loc ~pos:hi in
  p >= lo

let iter t f = Hashtbl.iter (fun loc a -> f loc a) t.defs_by_loc
