(** Limited Preprocessing (LP) block summaries for fast backwards
    traversal (Zhang et al. [33], paper §3(iii)).

    The global trace is divided into fixed-size blocks, each summarised
    by the set of locations it defines; the slicer skips whole blocks
    whose summary can satisfy no wanted location.  Summaries are
    criterion-independent: prepare once per global trace and reuse for
    every slice. *)

val default_block_size : int

type t = {
  block_size : int;
  num_blocks : int;
  summaries : int array array;
      (** per block: sorted distinct defined locations *)
  index : Def_index.t;
      (** per-location definition index the summaries derive from *)
}

(** Prepare summaries + definition index.  With [pool] the index scan
    is sharded over the pool ({!Def_index.build}); the result is
    identical with or without one. *)
val prepare : ?pool:Dr_util.Pool.t -> ?block_size:int -> Global_trace.t -> t

(** A degraded LP with correct block geometry but empty summaries and an
    empty index, built in O(1) memory.  Only valid for the scan driver
    with [block_skipping:false] (which consults neither) — the
    memory-budget rung of {!Slicer.compute_governed}. *)
val prepare_lite : ?block_size:int -> Global_trace.t -> t

(** The per-location definition index built by {!prepare}. *)
val def_index : t -> Def_index.t

(** Block containing the given trace position. *)
val block_of : t -> int -> int

(** Inclusive (lo, hi) position range of a block. *)
val block_range : t -> int -> int * int

(** Does the block define [loc]? *)
val defines : t -> block:int -> loc:int -> bool

(** Can the block satisfy any currently wanted location?  Iterates the
    smaller of the two sets, stopping at the first hit. *)
val may_satisfy : t -> block:int -> wanted:(int, 'a) Hashtbl.t -> bool

(** Per-block {e static} definition signatures: which register numbers
    (as a bit mask over the register file) and whether memory may be
    defined by the pcs executed in each trace block.  A cheaper,
    conservative pre-filter in front of {!may_satisfy}: static per-pc
    def sets are supersets of the dynamic ones, so a statically
    unsatisfiable block is exactly unsatisfiable too. *)
type static_filter = {
  sf_reg_masks : int array;
  sf_mem : bool array;
}

(** Build the signatures in one pass over the trace.  [reg_defs pc] is
    the static register-def bit mask of the instruction at [pc] and
    [writes_mem pc] its may-write-memory flag (e.g.
    [Dr_static.Defuse.def_mask] / [writes_mem] — passed as callbacks to
    keep this library independent of [dr_static]).

    With [pool] the pass is sharded by position range and the per-block
    masks merged with [lor]/[(||)] — commutative, so the filter is
    identical to a sequential build.  The callbacks must then be safe to
    call from several domains (the [Dr_static.Defuse] ones are: pure
    lookups in tables frozen before slicing). *)
val prepare_static :
  ?pool:Dr_util.Pool.t ->
  t ->
  Global_trace.t ->
  reg_defs:(int -> int) ->
  writes_mem:(int -> bool) ->
  static_filter

(** Can the block statically satisfy a want set summarised as a register
    bit mask plus a wants-memory flag? *)
val static_may_satisfy :
  static_filter -> block:int -> reg_mask:int -> wants_mem:bool -> bool
