(** Backwards dynamic slicing over the combined global trace (paper
    §3(iii), §5.2).

    Starting from a criterion, the slicer walks the global trace
    backwards recovering data dependences (most recent earlier definition
    of each wanted location) and control dependences (the [cd] pointers,
    transitively).  The default {e indexed} driver jumps between
    candidate positions found by binary search in the {!Def_index}; the
    {e scan} driver walks every position, skipping blocks via the {!Lp}
    summaries.  Both produce the same positions and edges (edge array
    order is unspecified; compare canonically).  With save/restore
    [pairs], wanted registers satisfied by a confirmed restore are
    bypassed: the search resumes below the matching save and a direct
    edge to the true definition is recorded. *)

type dep_kind =
  | Data of int  (** data dependence on this location *)
  | Data_bypassed of int
      (** data dependence that skipped one or more save/restore pairs *)
  | Control

type edge = {
  from_pos : int;  (** the dependent (later) record's position *)
  to_pos : int;  (** the record it depends on *)
  kind : dep_kind;
}

type criterion = {
  crit_pos : int;  (** position in the global trace *)
  crit_locs : int list option;
      (** specific {!Dr_isa.Loc} encodings to chase; [None] = the
          record's own uses *)
}

type stats = {
  visited : int;  (** records examined *)
  skipped_blocks : int;
  static_skipped_blocks : int;
      (** subset of [skipped_blocks] decided by the static filter alone *)
  total_blocks : int;
  slice_time : float;  (** wall-clock seconds *)
  truncated : bool;
      (** a watchdog stopped the traversal early: the positions are a
          sound {e subset} of the full slice, honestly marked partial *)
}

(** Edge adjacency index, built lazily for {!deps_of}/{!uses_of}. *)
type adjacency

type t = {
  gt : Global_trace.t;
  criterion : criterion;
  positions : int array;  (** included positions, ascending *)
  edges : edge array;
  stats : stats;
  mutable adj : adjacency option;  (** managed internally *)
}

(** Number of trace records in the slice. *)
val size : t -> int

(** Is the record at this global-trace position in the slice? *)
val mem : t -> int -> bool

(** Compute the slice.  [lp]: reuse precomputed block summaries and
    definition index.  [pairs]: enable save/restore bypassing (§5.2).
    [indexed] (default [true]): use the definition-index fast path;
    disable to run the backwards scan.  [block_skipping]: LP block
    skipping for the scan path (ignored when [indexed]); disable to
    measure the LP optimisation.  [static_filter] (scan path): consult
    per-block static definition signatures ({!Lp.prepare_static}) before
    the exact summary check, skipping blocks that statically cannot
    define any pending use.  The slice is identical on every path.
    [watchdog]: polled wall-clock deadline; on expiry the traversal
    stops and the result is marked [stats.truncated].  [driver] names
    the traversal backend explicitly (superseding the
    [indexed]/[block_skipping] ablation flags); [`Reexec rx] answers
    every record lookup by on-demand re-execution from checkpoints
    ({!Reexec}) — only [gt]'s merge order is consulted, never its
    stored records. *)
val compute :
  ?lp:Lp.t ->
  ?pairs:Prune.pairs ->
  ?block_skipping:bool ->
  ?indexed:bool ->
  ?static_filter:Lp.static_filter ->
  ?watchdog:Dr_util.Budget.watchdog ->
  ?driver:[ `Indexed | `Scan_skip | `Scan | `Reexec of Reexec.t ] ->
  Global_trace.t ->
  criterion ->
  t

(** Slice every criterion over the same trace, fanning the independent
    computations over [pool] (sequential without one).  Results come
    back in criterion order, and each slice is identical to a
    sequential {!compute} of the same criterion — only
    [stats.slice_time] is schedule-dependent.  The LP preparation
    (unless passed in) happens once up front, itself sharded over the
    pool. *)
val compute_many :
  ?lp:Lp.t ->
  ?pairs:Prune.pairs ->
  ?static_filter:Lp.static_filter ->
  ?pool:Dr_util.Pool.t ->
  Global_trace.t ->
  criterion list ->
  t list

(** {2 Resource-governed slicing} *)

(** The rung of the degradation ladder a governed slice ran on. *)
type rung = Rung_indexed | Rung_reexec | Rung_scan

val rung_name : rung -> string

type governed = {
  g_slice : t;
  g_rung : rung;  (** the driver actually used *)
}

(** Rough resident bytes {!Lp.prepare} would allocate for this trace —
    what {!compute_governed} tests against the memory budget. *)
val index_estimate_bytes : Global_trace.t -> int

(** Compute the slice under [budget], degrading instead of dying:
    indexed driver when the definition index fits the remaining memory
    budget, scan driver over an {!Lp.prepare_lite} skeleton when it does
    not, and on either rung a partial slice marked [stats.truncated]
    when the budget's wall-clock watchdog fires.  Degradations are
    recorded in the budget and mirrored to metrics.  [lp] skips the
    memory check (an existing index is already-spent memory).  With
    [reexec], on-demand re-execution replaces the scan as the
    over-budget rung: record lookups replay from checkpoints, bounding
    resident records by the checkpoint interval. *)
val compute_governed :
  ?lp:Lp.t ->
  ?pairs:Prune.pairs ->
  ?static_filter:Lp.static_filter ->
  ?reexec:Reexec.t ->
  budget:Dr_util.Budget.t ->
  Global_trace.t ->
  criterion ->
  governed

(** The slice as (tid, pc, instance) statements, in trace order. *)
val statements : t -> (int * int * int) array

(** Distinct source lines touched by the slice, sorted (for
    highlighting). *)
val source_lines : t -> int list

(** Dependence edges out of the record at [pos] — what it depends on
    (backwards navigation).  One hash lookup once the lazy adjacency
    index is built. *)
val deps_of : t -> int -> (dep_kind * int) list

(** Records that depend on [pos] (forward navigation).  Indexed. *)
val uses_of : t -> int -> (dep_kind * int) list

val pp_kind : Format.formatter -> dep_kind -> unit

(** A slice file failed to parse: the 1-based line number and the reason. *)
exception Slice_file_error of { sf_line : int; sf_reason : string }

(** Save in the paper's "normal slice file" form (statements plus
    dependence edges), reusable across debug sessions.  The write is
    atomic (tmp + fsync + rename). *)
val save_file : string -> t -> unit

(** Statements read back from a slice file: (tid, pc, instance, line).
    @raise Slice_file_error on a missing/bad header or a malformed
    [stmt] line. *)
val load_file_statements : string -> (int * int * int * int) list
