(** On-demand re-execution slicing backend (cf. "Dynamic Slicing by
    On-demand Re-execution", arXiv:2211.04683, and the rr-style
    user-level checkpointing DrDebug's related work proposes, §8).

    Instead of walking a stored {!Global_trace}, this backend answers
    record lookups by {e re-executing the deterministic replayer}: a
    build pass replays the region pinball once, taking a
    {!Dr_pinplay.Replayer.checkpoint} (machine snapshot + replay
    cursor) every [ckpt_interval] retired instructions {e together
    with} a {!Collector.Derive.copy} of the record-derivation state at
    the same event boundary.  A later [record ~gseq] request seeks to
    the nearest earlier checkpoint and replays forward at most one
    window, re-deriving the records of that window only.  Because
    replay is deterministic (paper §3) and both passes drive the same
    {!Collector.Derive} core, the re-derived records are byte-identical
    to what {!Collector.collect} would have stored — without ever
    holding more than O(ckpt_interval) records in memory.

    A small LRU keeps the most recently re-derived window fragments so
    that a backward slicer revisiting nearby positions does not pay a
    re-execution per lookup.  [peak_resident_bytes] tracks the largest
    number of record-bytes resident at once, which the beyond-RAM bench
    tier checks stays bounded by the checkpoint interval, not the trace
    length. *)

open Dr_machine

let m_windows = Dr_obs.Metrics.counter "reexec.windows_rederived"
let m_cache_hits = Dr_obs.Metrics.counter "reexec.window_hits"
let m_cache_misses = Dr_obs.Metrics.counter "reexec.window_misses"
let m_evictions = Dr_obs.Metrics.counter "reexec.window_evictions"
let m_records = Dr_obs.Metrics.counter "reexec.records_rederived"

(* forward replay distance (records) from the checkpoint to the
   requested gseq on each window miss — the cost the checkpoint-ladder
   spacing trades against snapshot memory *)
let h_seek = Dr_obs.Histogram.get "reexec.seek_distance"

type ckpt = {
  k_replay : Dr_pinplay.Replayer.checkpoint;
  k_derive : Collector.Derive.t;  (** derivation state at the same step *)
}

type stats = {
  windows_rederived : int;  (** = window-cache misses *)
  window_hits : int;
  window_evictions : int;
  records_rederived : int;
  peak_resident_bytes : int;
}

type t = {
  prog : Dr_isa.Program.t;
  pinball : Dr_pinplay.Pinball.t;
  ckpt_interval : int;
  ckpts : ckpt array;  (** ckpts.(w) is taken at step w * ckpt_interval *)
  nrec : int;  (** total records the region produces *)
  clobber : (Trace.record -> Trace.record) option;
      (** test hook: corrupt re-derived records to exercise oracle 3 *)
  lock : Mutex.t;
  (* window-id -> fragment, maintained LRU via the tick counter *)
  cache : (int, Trace.record array * int ref) Hashtbl.t;
  cache_windows : int;
  mutable tick : int;
  mutable s_windows : int;
  mutable s_hits : int;
  mutable s_evictions : int;
  mutable s_records : int;
  mutable resident_bytes : int;
  mutable peak_bytes : int;
}

let frag_bytes (frag : Trace.record array) =
  Array.fold_left (fun acc r -> acc + Segment_store.record_bytes r) 0 frag

(** Build the checkpoint ladder with one full replay of the region.
    [cfg] must be the {e refined} CFG the collector used (pass
    [c.Collector.cfg]) or re-derived control dependences would differ;
    when omitted it is rebuilt with the same two-pass refinement. *)
let create ?(ckpt_interval = 4096) ?(cache_windows = 4) ?cfg ?clobber
    (prog : Dr_isa.Program.t) (pinball : Dr_pinplay.Pinball.t) : t =
  if ckpt_interval <= 0 then invalid_arg "Reexec.create: ckpt_interval <= 0";
  Dr_obs.Obs.with_span ~cat:"slice" "reexec.build" @@ fun sp ->
  let cfg =
    match cfg with
    | Some cfg -> cfg
    | None ->
      let indirect = Collector.collect_indirect_targets prog pinball in
      let indirect_targets =
        Hashtbl.fold (fun pc ts acc -> (pc, ts) :: acc) indirect []
      in
      Dr_cfg.Cfg.build ~indirect_targets prog
  in
  let derive = Collector.Derive.create ~cfg prog in
  let replayer = Dr_pinplay.Replayer.create prog pinball in
  let count = ref 0 in
  let ckpts = ref [] in
  let hooks =
    { Driver.on_event =
        (fun ev ->
          ignore (Collector.Derive.next derive ~gseq:!count ev);
          incr count) }
  in
  let continue = ref true in
  while !continue do
    (* checkpoint at the window boundary, *between* resume calls so the
       machine is at an instruction boundary and the derive state
       matches the snapshot step exactly *)
    ckpts :=
      { k_replay = Dr_pinplay.Replayer.checkpoint replayer;
        k_derive = Collector.Derive.copy derive }
      :: !ckpts;
    let before = !count in
    (match Dr_pinplay.Replayer.resume ~hooks ~max_steps:ckpt_interval replayer
     with
    | Driver.Max_steps when !count > before -> ()
    | _ -> continue := false)
  done;
  let ckpts = Array.of_list (List.rev !ckpts) in
  Dr_obs.Obs.add_attr sp "records" (Dr_obs.Obs.Int !count);
  Dr_obs.Obs.add_attr sp "checkpoints" (Dr_obs.Obs.Int (Array.length ckpts));
  { prog; pinball; ckpt_interval; ckpts; nrec = !count; clobber;
    lock = Mutex.create ();
    cache = Hashtbl.create (2 * cache_windows);
    cache_windows = max 1 cache_windows;
    tick = 0; s_windows = 0; s_hits = 0; s_evictions = 0; s_records = 0;
    resident_bytes = 0; peak_bytes = 0 }

let length t = t.nrec

let num_checkpoints t = Array.length t.ckpts

(* Re-derive the records of window [w] by replaying forward from its
   checkpoint.  Called with t.lock held. *)
let rederive (t : t) (w : int) : Trace.record array =
  let base = w * t.ckpt_interval in
  let len = min t.ckpt_interval (t.nrec - base) in
  let frag = Array.make len Trace.dummy in
  Dr_obs.Obs.with_span ~cat:"slice" "reexec.window" @@ fun sp ->
  Dr_obs.Obs.add_attr sp "window" (Dr_obs.Obs.Int w);
  let ck = t.ckpts.(w) in
  (* resume derivation from a private copy; the ladder entry stays
     pristine for the next request on this window *)
  let derive = Collector.Derive.copy ck.k_derive in
  let replayer =
    Dr_pinplay.Replayer.create ~from:ck.k_replay t.prog t.pinball
  in
  let i = ref 0 in
  let hooks =
    { Driver.on_event =
        (fun ev ->
          let r = Collector.Derive.next derive ~gseq:(base + !i) ev in
          let r = match t.clobber with Some f -> f r | None -> r in
          frag.(!i) <- r;
          incr i) }
  in
  ignore (Dr_pinplay.Replayer.resume ~hooks ~max_steps:len replayer);
  if !i <> len then
    failwith
      (Printf.sprintf
         "Reexec.rederive: window %d replayed %d records, expected %d" w !i
         len);
  t.s_windows <- t.s_windows + 1;
  t.s_records <- t.s_records + len;
  Dr_obs.Metrics.add m_windows 1;
  Dr_obs.Metrics.add m_records len;
  frag

(* Evict least-recently-used fragments down to the cache budget.
   Called with t.lock held. *)
let evict (t : t) =
  while Hashtbl.length t.cache > t.cache_windows do
    let victim = ref (-1) and oldest = ref max_int in
    Hashtbl.iter
      (fun w (_, last) ->
        if !last < !oldest then begin
          oldest := !last;
          victim := w
        end)
      t.cache;
    match Hashtbl.find_opt t.cache !victim with
    | Some (frag, _) ->
      t.resident_bytes <- t.resident_bytes - frag_bytes frag;
      Hashtbl.remove t.cache !victim;
      t.s_evictions <- t.s_evictions + 1;
      Dr_obs.Metrics.add m_evictions 1
    | None -> ()
  done

(** Fetch the record with global sequence number [gseq], re-executing
    its checkpoint window if it is not cached. *)
let record (t : t) ~(gseq : int) : Trace.record =
  if gseq < 0 || gseq >= t.nrec then
    invalid_arg (Printf.sprintf "Reexec.record: gseq %d out of range" gseq);
  let w = gseq / t.ckpt_interval in
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let frag =
    match Hashtbl.find_opt t.cache w with
    | Some (frag, last) ->
      t.tick <- t.tick + 1;
      last := t.tick;
      t.s_hits <- t.s_hits + 1;
      Dr_obs.Metrics.add m_cache_hits 1;
      frag
    | None ->
      Dr_obs.Metrics.add m_cache_misses 1;
      Dr_obs.Histogram.observe h_seek
        (float_of_int (gseq - (w * t.ckpt_interval)));
      let frag = rederive t w in
      t.tick <- t.tick + 1;
      Hashtbl.replace t.cache w (frag, ref t.tick);
      t.resident_bytes <- t.resident_bytes + frag_bytes frag;
      if t.resident_bytes > t.peak_bytes then
        t.peak_bytes <- t.resident_bytes;
      evict t;
      frag
  in
  frag.(gseq - (w * t.ckpt_interval))

let stats (t : t) : stats =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  { windows_rederived = t.s_windows; window_hits = t.s_hits;
    window_evictions = t.s_evictions; records_rederived = t.s_records;
    peak_resident_bytes = t.peak_bytes }
