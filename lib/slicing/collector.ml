(** Trace collection during deterministic replay (paper §3(i), §5).

    The collector attaches to a {!Dr_pinplay.Replayer} run of a region
    pinball and records, per retired instruction:

    - the locations defined and used (registers thread-local, memory
      global),
    - the dynamic control dependence, via the online Xin–Zhang algorithm
      driven by immediate post-dominators from {!Dr_cfg.Cfg},
    - shared-memory access-order edges between threads (RAW/WAW/WAR),
      needed to construct the combined global trace,
    - dynamically observed indirect-jump targets (for CFG refinement),
    - dynamically confirmed save/restore pairs (for spurious-dependence
      pruning).

    Because replay is deterministic, collection can run in two passes:
    pass 1 gathers indirect-jump targets, the CFG is refined, and pass 2
    collects the trace with precise control dependences (the [refine]
    flag; §5.1). *)

open Dr_machine

type result = {
  records : Segment_store.t;  (** indexed by gseq = execution order *)
  per_thread : int array array;  (** tid -> gseqs in program order *)
  order_edges : (int * int) array;  (** (earlier gseq, later gseq) cross-thread *)
  indirect_targets : (int * int list) list;
  pairs : Prune.pairs;
  cfg : Dr_cfg.Cfg.t;  (** the CFG used in the final pass *)
  collect_time : float;  (** wall-clock seconds for trace collection *)
}

(* per-thread control-dependence stack entry *)
type cd_entry = { branch_gseq : int; ipdom_pc : int; cd_depth : int }
(* ipdom_pc = -1 means "pops at function return" *)

type thread_cd = {
  mutable stack : cd_entry list;
  mutable depth : int;
}

(** The record-derivation state machine, factored out of the collection
    hook so that {!Reexec} can re-derive the {e exact} records of a
    window by replaying forward from a checkpoint: Xin–Zhang
    control-dependence stacks, per-(tid, pc) instance counters,
    per-thread local indices, and the line table.  The state is
    {e prefix-dependent} — a record's cd/instance/lidx fields depend on
    every earlier event of its thread — so a checkpoint that wants to
    resume derivation mid-trace must carry a {!Derive.copy} taken at the
    same event boundary as the machine snapshot.

    Both users drive it identically: one {!Derive.next} call per retired
    instruction, in event order.  The collector keeps its own concerns
    (segment appends, access-order edges, save/restore confirmation,
    watchdog polling) outside, so a byte-for-byte agreement between a
    collected record and a re-derived one follows from determinism of
    the replay plus this shared core. *)
module Derive = struct
  type t = {
    cfg : Dr_cfg.Cfg.t;  (* shared, read-only *)
    nline : int;
    line_of_pc : int array;  (* shared, read-only *)
    cd_threads : (int, thread_cd) Hashtbl.t;
    instance_counts : (int, int) Hashtbl.t;  (* (tid lsl 32) lor pc *)
    lidx_counts : (int, int) Hashtbl.t;  (* tid -> records so far *)
    scratch_defs : Dr_util.Vec.Int_vec.t;  (* per-copy, never shared *)
    scratch_uses : Dr_util.Vec.Int_vec.t;
  }

  let create ~(cfg : Dr_cfg.Cfg.t) (prog : Dr_isa.Program.t) : t =
    let nline = Array.length prog.Dr_isa.Program.code in
    let line_of_pc =
      Array.init nline (fun pc ->
          Option.value ~default:(-1)
            (Dr_isa.Debug_info.line_of_pc prog.Dr_isa.Program.debug pc))
    in
    { cfg; nline; line_of_pc;
      cd_threads = Hashtbl.create 8;
      instance_counts = Hashtbl.create 4096;
      lidx_counts = Hashtbl.create 8;
      scratch_defs = Dr_util.Vec.Int_vec.create ();
      scratch_uses = Dr_util.Vec.Int_vec.create () }

  (* Deep copy, safe to resume independently: the hashtables are copied,
     the per-thread cd records are re-allocated (their stacks are
     immutable lists and can be shared), the read-only cfg and line
     table are shared. *)
  let copy (t : t) : t =
    let cd_threads = Hashtbl.create (Hashtbl.length t.cd_threads) in
    Hashtbl.iter
      (fun tid (st : thread_cd) ->
        Hashtbl.replace cd_threads tid { stack = st.stack; depth = st.depth })
      t.cd_threads;
    { cfg = t.cfg; nline = t.nline; line_of_pc = t.line_of_pc;
      cd_threads;
      instance_counts = Hashtbl.copy t.instance_counts;
      lidx_counts = Hashtbl.copy t.lidx_counts;
      scratch_defs = Dr_util.Vec.Int_vec.create ();
      scratch_uses = Dr_util.Vec.Int_vec.create () }

  let thread_cd t tid =
    match Hashtbl.find_opt t.cd_threads tid with
    | Some st -> st
    | None ->
      let st = { stack = []; depth = 0 } in
      Hashtbl.replace t.cd_threads tid st;
      st

  (** Derive the trace record for the [gseq]-th retired instruction and
      advance the derivation state.  Must be called exactly once per
      event, in execution order. *)
  let next (t : t) ~(gseq : int) (ev : Event.t) : Trace.record =
    let tid = ev.Event.tid and pc = ev.Event.pc in
    let cd_st = thread_cd t tid in
    (* 1. close control-dependence regions ending at this pc *)
    let rec pop_ipdoms () =
      match cd_st.stack with
      | e :: rest when e.cd_depth = cd_st.depth && e.ipdom_pc = pc ->
        cd_st.stack <- rest;
        pop_ipdoms ()
      | _ -> ()
    in
    pop_ipdoms ();
    (* 2. current control dependence *)
    let cd = match cd_st.stack with e :: _ -> e.branch_gseq | [] -> -1 in
    (* 3. def/use *)
    Dr_util.Vec.Int_vec.clear t.scratch_defs;
    Dr_util.Vec.Int_vec.clear t.scratch_uses;
    Def_use.collect ev ~defs:t.scratch_defs ~uses:t.scratch_uses;
    let defs = Dr_util.Vec.Int_vec.to_array t.scratch_defs in
    let uses = Dr_util.Vec.Int_vec.to_array t.scratch_uses in
    (* 4. flags and instance *)
    let instr = ev.Event.instr in
    let is_final_ret =
      instr = Dr_isa.Instr.Ret && ev.Event.mem_read_value = Machine.ret_sentinel
    in
    let flags =
      (match ev.Event.sys with
      | Event.Sys_spawn _ | Event.Sys_join _ | Event.Sys_lock _
      | Event.Sys_unlock _ | Event.Sys_exit _ | Event.Sys_alloc _
      | Event.Sys_wait _ | Event.Sys_signal _ ->
        Trace.flag_sync
      | Event.Sys_nondet _ -> Trace.flag_nondet
      | _ -> 0)
      lor (if is_final_ret then Trace.flag_final_ret lor Trace.flag_sync else 0)
      lor (if Dr_isa.Instr.is_branch instr then Trace.flag_branch else 0)
      lor (if ev.Event.mem_read >= 0 then Trace.flag_load else 0)
      lor if ev.Event.mem_write >= 0 then Trace.flag_store else 0
    in
    let key = (tid lsl 32) lor pc in
    let instance =
      let i = 1 + Option.value ~default:0 (Hashtbl.find_opt t.instance_counts key) in
      Hashtbl.replace t.instance_counts key i;
      i
    in
    let lidx = Option.value ~default:0 (Hashtbl.find_opt t.lidx_counts tid) in
    Hashtbl.replace t.lidx_counts tid (lidx + 1);
    let record =
      { Trace.gseq; tid; pc; instance; lidx; defs; uses; cd; flags;
        line = (if pc < t.nline then t.line_of_pc.(pc) else -1) }
    in
    (* 5. maintain CD frame depth (the record above is already built) *)
    (match instr with
    | Dr_isa.Instr.Call _ | Dr_isa.Instr.Callind _ ->
      cd_st.depth <- cd_st.depth + 1
    | Dr_isa.Instr.Ret ->
      (* close regions belonging to the returning frame *)
      let d = cd_st.depth in
      cd_st.stack <- List.filter (fun e -> e.cd_depth <> d) cd_st.stack;
      cd_st.depth <- max 0 (d - 1)
    | _ -> ());
    (* 6. push a CD region for branches *)
    if Dr_isa.Instr.is_branch instr then begin
      match Dr_cfg.Cfg.branch_region_end t.cfg ~pc with
      | Dr_cfg.Cfg.Unknown ->
        (* unresolved indirect jump: control dependence is lost (§5.1) *)
        ()
      | Dr_cfg.Cfg.To_exit ->
        cd_st.stack <-
          { branch_gseq = gseq; ipdom_pc = -1; cd_depth = cd_st.depth }
          :: cd_st.stack
      | Dr_cfg.Cfg.At p ->
        cd_st.stack <-
          { branch_gseq = gseq; ipdom_pc = p; cd_depth = cd_st.depth }
          :: cd_st.stack
    end;
    record
end

(* per-address access-order state *)
type addr_state = {
  mutable last_writer : int;  (** gseq, -1 if none *)
  mutable last_writer_tid : int;
  mutable readers : (int * int) list;  (** (gseq, tid) since last write *)
}

let collect_indirect_targets prog pinball : (int, int list) Hashtbl.t =
  let targets = Hashtbl.create 32 in
  let on_event (ev : Event.t) =
    match ev.Event.instr with
    | Dr_isa.Instr.Jind _ | Dr_isa.Instr.Callind _ ->
      let pc = ev.Event.pc in
      let old = Option.value ~default:[] (Hashtbl.find_opt targets pc) in
      if not (List.mem ev.Event.next_pc old) then
        Hashtbl.replace targets pc (ev.Event.next_pc :: old)
    | _ -> ()
  in
  let replayer = Dr_pinplay.Replayer.create prog pinball in
  ignore (Dr_pinplay.Replayer.resume ~hooks:{ Driver.on_event } replayer);
  targets

(** Collect the full region trace.  [refine] (default true) enables the
    two-pass CFG refinement of §5.1; [max_save] is the save/restore
    candidate window of §5.2.  [budget] governs resources: records spill
    to disk in segments past its memory budget, and its wall-clock
    watchdog aborts collection (a partial trace is useless) with a
    structured {!Dr_util.Budget.Resource_error}. *)
let collect ?(refine = true) ?(max_save = Prune.default_max_save) ?budget
    ?seg_records (prog : Dr_isa.Program.t) (pinball : Dr_pinplay.Pinball.t) :
    result =
  Dr_obs.Obs.with_span ~cat:"trace" "collector.collect" @@ fun sp ->
  Dr_obs.Obs.add_attr sp "refine" (Dr_obs.Obs.Bool refine);
  let indirect_tbl =
    if refine then collect_indirect_targets prog pinball else Hashtbl.create 1
  in
  let indirect_targets =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) indirect_tbl []
  in
  let cfg = Dr_cfg.Cfg.build ~indirect_targets prog in
  let cands = Prune.static_candidates ~max_save prog ~functions:(Dr_cfg.Cfg.functions cfg) in
  let prune_state = Prune.create_state cands in
  let derive = Derive.create ~cfg prog in
  let records = Segment_store.builder ?budget ?seg_records () in
  let watchdog =
    Option.bind budget (Dr_util.Budget.watchdog_of ~what:"collector.collect")
  in
  let per_thread = Hashtbl.create 8 in
  let order_edges = Dr_util.Vec.create ~dummy:(0, 0) in
  let addr_states : (int, addr_state) Hashtbl.t = Hashtbl.create 4096 in
  let thread_gseqs tid =
    match Hashtbl.find_opt per_thread tid with
    | Some v -> v
    | None ->
      let v = Dr_util.Vec.Int_vec.create () in
      Hashtbl.replace per_thread tid v;
      v
  in
  let on_event (ev : Event.t) =
    let tid = ev.Event.tid and pc = ev.Event.pc in
    let gseq = Segment_store.built_length records in
    (* cheap polled deadline: one clock read every 4096 records *)
    if gseq land 4095 = 0 then Option.iter Dr_util.Budget.check watchdog;
    (* cd / def-use / flags / instance / lidx: the shared derivation
       core (also replayed window-by-window by {!Reexec}) *)
    let record = Derive.next derive ~gseq ev in
    Segment_store.append records record;
    Dr_util.Vec.Int_vec.push (thread_gseqs tid) gseq;
    (* 5. shared-memory access order edges *)
    let addr_state a =
      match Hashtbl.find_opt addr_states a with
      | Some s -> s
      | None ->
        let s = { last_writer = -1; last_writer_tid = -1; readers = [] } in
        Hashtbl.replace addr_states a s;
        s
    in
    if ev.Event.mem_read >= 0 then begin
      let s = addr_state ev.Event.mem_read in
      if s.last_writer >= 0 && s.last_writer_tid <> tid then
        Dr_util.Vec.push order_edges (s.last_writer, gseq);
      s.readers <- (gseq, tid) :: s.readers
    end;
    if ev.Event.mem_write >= 0 then begin
      let s = addr_state ev.Event.mem_write in
      if s.last_writer >= 0 && s.last_writer_tid <> tid then
        Dr_util.Vec.push order_edges (s.last_writer, gseq);
      List.iter
        (fun (rg, rt) -> if rt <> tid then Dr_util.Vec.push order_edges (rg, gseq))
        s.readers;
      s.last_writer <- gseq;
      s.last_writer_tid <- tid;
      s.readers <- []
    end;
    (* 6. save/restore confirmation (the CD bookkeeping lives in Derive) *)
    (match ev.Event.instr with
    | Dr_isa.Instr.Call _ | Dr_isa.Instr.Callind _ -> Prune.on_call prune_state tid
    | Dr_isa.Instr.Ret -> Prune.on_ret prune_state tid
    | Dr_isa.Instr.Push reg when Hashtbl.mem cands.Prune.saves pc ->
      if Hashtbl.find cands.Prune.saves pc = reg then
        Prune.on_save prune_state ~tid ~pc ~reg ~addr:ev.Event.mem_write
          ~value:ev.Event.mem_write_value ~gseq
    | Dr_isa.Instr.Pop reg when Hashtbl.mem cands.Prune.restores pc ->
      if Hashtbl.find cands.Prune.restores pc = reg then
        Prune.on_restore prune_state ~tid ~pc ~reg ~addr:ev.Event.mem_read
          ~value:ev.Event.mem_read_value ~gseq
    | _ -> ())
  in
  let replayer = Dr_pinplay.Replayer.create prog pinball in
  let t0 = Dr_util.Timer.now () in
  ignore (Dr_pinplay.Replayer.resume ~hooks:{ Driver.on_event } replayer);
  let collect_time = Dr_util.Timer.now () -. t0 in
  let max_tid = Hashtbl.fold (fun k _ acc -> max k acc) per_thread 0 in
  let per_thread_arr =
    Array.init (max_tid + 1) (fun tid ->
        match Hashtbl.find_opt per_thread tid with
        | Some v -> Dr_util.Vec.Int_vec.to_array v
        | None -> [||])
  in
  let records = Segment_store.seal records in
  Dr_obs.Obs.add_attr sp "records" (Dr_obs.Obs.Int (Segment_store.length records));
  Dr_obs.Obs.add_attr sp "spilled_segments"
    (Dr_obs.Obs.Int (Segment_store.spilled_segments records));
  { records;
    per_thread = per_thread_arr;
    order_edges = Dr_util.Vec.to_array order_edges;
    indirect_targets;
    pairs = prune_state.Prune.pairs;
    cfg;
    collect_time }
