(** Limited Preprocessing (LP) for fast backwards traversal (Zhang et
    al. [33], used in paper §3(iii)).

    The global trace is divided into fixed-size blocks; for each block a
    summary of the locations it defines is precomputed.  The backwards
    slice traversal can then skip a whole block when the summary proves
    the block can satisfy none of the currently wanted locations and no
    pending control-dependence target lies inside it.

    Since PR 2, [prepare] first builds the per-location {!Def_index}
    and derives the block summaries from it: each location's ascending
    def-position array visits every block at most in runs, so one pass
    per location yields the distinct (location, block) pairs without a
    dedup pass over raw defs.  The index rides along in [t] and powers
    the indexed {!Slicer} fast path. *)

let default_block_size = 4096

let t_prepare = Dr_obs.Metrics.timer "lp.prepare"
let m_may_satisfy = Dr_obs.Metrics.counter "lp.may_satisfy_checks"

type t = {
  block_size : int;
  num_blocks : int;
  (* per block: sorted array of distinct defined locations *)
  summaries : int array array;
  index : Def_index.t;
}

(** [prepare ?pool] shards the {!Def_index} scan over [pool]; the
    summary derivation below stays sequential (it is a cheap pass over
    the already-merged index).  The result is identical with or without
    a pool. *)
let prepare ?pool ?(block_size = default_block_size) (gt : Global_trace.t) : t =
  Dr_obs.Obs.with_span ~cat:"slice" "lp.prepare" @@ fun _ ->
  Dr_obs.Metrics.time t_prepare (fun () ->
      let n = Global_trace.length gt in
      let num_blocks = (n + block_size - 1) / block_size in
      let index = Def_index.build ?pool gt in
      let accs =
        Array.init num_blocks (fun _ -> Dr_util.Vec.Int_vec.create ())
      in
      (* Each location contributes once to every block containing one of
         its defs; its positions are ascending, so a block change in the
         walk below is a first visit. *)
      Def_index.iter index (fun loc positions ->
          let last_block = ref (-1) in
          Array.iter
            (fun pos ->
              let b = pos / block_size in
              if b <> !last_block then begin
                last_block := b;
                Dr_util.Vec.Int_vec.push accs.(b) loc
              end)
            positions);
      let summaries =
        Array.map
          (fun acc ->
            let a = Dr_util.Vec.Int_vec.to_array acc in
            Array.sort Int.compare a;
            a)
          accs
      in
      { block_size; num_blocks; summaries; index })

(** A degraded LP: correct block geometry but {e empty} summaries and an
    empty {!Def_index} — built in O(1) memory.  Only valid for the scan
    driver with [block_skipping:false], which never consults either; the
    memory-budget degradation rung in {!Slicer.compute_governed} uses it
    when the full index would not fit. *)
let prepare_lite ?(block_size = default_block_size) (gt : Global_trace.t) : t =
  let n = Global_trace.length gt in
  let num_blocks = (n + block_size - 1) / block_size in
  { block_size; num_blocks;
    summaries = Array.make num_blocks [||];
    index = Def_index.empty ~trace_len:n }

let def_index t = t.index

let block_of t pos = pos / t.block_size

let block_range t b =
  (b * t.block_size, ((b + 1) * t.block_size) - 1)

(** Does block [b] define location [loc]?  Binary search in the summary. *)
let defines t ~block ~loc =
  let a = t.summaries.(block) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = a.(mid) in
    if v = loc then found := true
    else if v < loc then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* ---- static reach filter ---- *)

type static_filter = {
  sf_reg_masks : int array;
      (** per block: union of static register-def masks of the pcs whose
          records fall in the block (bit [r] = some pc may define [r]) *)
  sf_mem : bool array;  (** per block: some pc in the block may write memory *)
}

let t_static = Dr_obs.Metrics.timer "lp.static_prepare"

(** Per-block static definition signatures: which register {e numbers}
    and whether memory can be defined by the code executed in each trace
    block, per the {e static} def sets of the pcs occurring there.  The
    callbacks come from [Dr_static.Defuse] (passed in by the caller so
    this library stays independent of it); because static register defs
    are a superset of dynamic ones per pc and static memory-writers cover
    every dynamic memory def, "the signature cannot satisfy any wanted
    location" implies the exact {!may_satisfy} summary cannot either —
    the skip is sound and the slice unchanged. *)
let prepare_static ?pool (t : t) (gt : Global_trace.t)
    ~(reg_defs : int -> int) ~(writes_mem : int -> bool) : static_filter =
  Dr_obs.Metrics.time t_static (fun () ->
      let n = Global_trace.length gt in
      let scan (lo, hi) =
        let masks = Array.make t.num_blocks 0 in
        let mem = Array.make t.num_blocks false in
        for pos = lo to hi - 1 do
          let r = Global_trace.record gt pos in
          let b = pos / t.block_size in
          masks.(b) <- masks.(b) lor reg_defs r.Trace.pc;
          if writes_mem r.Trace.pc then mem.(b) <- true
        done;
        (masks, mem)
      in
      match pool with
      | Some p when Dr_util.Pool.size p > 1 && n > 1 ->
        (* per-shard masks merge with [lor] / [||] — commutative and
           associative, so the merged filter is shard-order independent
           and equal to the sequential scan *)
        let parts =
          Dr_util.Pool.map p scan
            (Dr_util.Pool.split ~chunks:(Dr_util.Pool.size p) ~len:n)
        in
        let masks = Array.make t.num_blocks 0 in
        let mem = Array.make t.num_blocks false in
        Array.iter
          (fun (pm, pb) ->
            for b = 0 to t.num_blocks - 1 do
              masks.(b) <- masks.(b) lor pm.(b);
              mem.(b) <- mem.(b) || pb.(b)
            done)
          parts;
        { sf_reg_masks = masks; sf_mem = mem }
      | _ ->
        let masks, mem = scan (0, n) in
        { sf_reg_masks = masks; sf_mem = mem })

(** Can block [b] statically satisfy a want set summarised as a register
    bit mask plus a wants-memory flag? *)
let static_may_satisfy (sf : static_filter) ~block ~reg_mask ~wants_mem =
  sf.sf_reg_masks.(block) land reg_mask <> 0 || (wants_mem && sf.sf_mem.(block))

exception Found

(** Can block [b] satisfy any of [wanted]?  Iterates over the smaller of
    the wanted set and the block summary, stopping at the first hit. *)
let may_satisfy t ~block ~(wanted : (int, 'a) Hashtbl.t) : bool =
  Dr_obs.Metrics.bump m_may_satisfy;
  let summary = t.summaries.(block) in
  let nw = Hashtbl.length wanted in
  if nw = 0 then false
  else if nw <= Array.length summary then (
    try
      Hashtbl.iter
        (fun loc _ -> if defines t ~block ~loc then raise_notrace Found)
        wanted;
      false
    with Found -> true)
  else Array.exists (fun loc -> Hashtbl.mem wanted loc) summary
