(** Random mini-C program generation for property-based testing.

    Generated programs are {e safe by construction}: loops are bounded,
    array indexes are masked to the array size, divisors are forced
    non-zero, and lock/unlock always appear as balanced pairs guarding a
    block — so a generated program always terminates without faulting,
    under any schedule.  That makes them ideal differential-testing
    inputs: record/replay equivalence, slicer-vs-reference equivalence
    and slice-replay value equivalence must all hold on every generated
    program (see test/test_gen.ml). *)

type cfg = {
  max_stmts : int;  (** statements per block *)
  max_depth : int;  (** nesting depth of if/for *)
  max_helpers : int;
  with_threads : bool;  (** spawn workers + lock-guarded shared updates *)
  max_workers : int;  (** worker threads spawnable when [with_threads] *)
}

let default_cfg =
  { max_stmts = 6; max_depth = 2; max_helpers = 3; with_threads = true;
    max_workers = 1 }

type ctx = {
  rng : Random.State.t;
  buf : Buffer.t;
  mutable indent : int;
  mutable fresh : int;
  cfg : cfg;
  (* names of scalar locals in scope, per block *)
  mutable scopes : string list list;
  mutable loop_vars : string list;
      (** readable but never assigned, so loops always terminate *)
  mutable helpers : (string * int) list;
      (** helpers callable from the current position (only
          earlier-defined ones while generating a helper body, so call
          chains are acyclic and generated programs always terminate) *)
}

let rnd ctx n = Random.State.int ctx.rng n

let pick ctx l = List.nth l (rnd ctx (List.length l))

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

(* assignable variables *)
let in_scope ctx = List.concat ctx.scopes

(* readable variables: assignables plus live loop counters *)
let readable ctx = ctx.loop_vars @ in_scope ctx

let push_scope ctx = ctx.scopes <- [] :: ctx.scopes

let pop_scope ctx = ctx.scopes <- List.tl ctx.scopes

let declare ctx v =
  match ctx.scopes with
  | s :: rest -> ctx.scopes <- (v :: s) :: rest
  | [] -> ctx.scopes <- [ [ v ] ]

(* globals are fixed: two scalars, one 16-element array, one mutex *)
let globals = [ "ga"; "gb" ]

(* ---- expressions ---- *)

let rec gen_expr ctx depth : string =
  let atoms =
    [ (fun () -> string_of_int (rnd ctx 10));
      (fun () -> pick ctx globals) ]
    @ (match readable ctx with
      | [] -> []
      | vars -> [ (fun () -> pick ctx vars) ])
    @ [ (fun () -> Printf.sprintf "arr[(%s) & 15]" (gen_expr ctx 0)) ]
  in
  if depth <= 0 then (pick ctx atoms) ()
  else
    match rnd ctx 8 with
    | 0 | 1 | 2 -> (pick ctx atoms) ()
    | 3 ->
      Printf.sprintf "(%s %s %s)"
        (gen_expr ctx (depth - 1))
        (pick ctx [ "+"; "-"; "*" ])
        (gen_expr ctx (depth - 1))
    | 4 ->
      (* guarded division/modulo: divisor is always in 1..8 *)
      Printf.sprintf "(%s %s (((%s) & 7) + 1))"
        (gen_expr ctx (depth - 1))
        (pick ctx [ "/"; "%" ])
        (gen_expr ctx (depth - 1))
    | 5 ->
      Printf.sprintf "(%s %s %s)"
        (gen_expr ctx (depth - 1))
        (pick ctx [ "=="; "!="; "<"; "<="; ">"; ">=" ])
        (gen_expr ctx (depth - 1))
    | 6 when ctx.helpers <> [] ->
      let name, arity = pick ctx ctx.helpers in
      let args = List.init arity (fun _ -> gen_expr ctx (depth - 1)) in
      Printf.sprintf "%s(%s)" name (String.concat ", " args)
    | _ ->
      Printf.sprintf "(%s & %s)" (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))

(* ---- statements ---- *)

let rec gen_stmt ctx depth =
  match rnd ctx 10 with
  | 0 | 1 ->
    let v = fresh ctx "v" in
    line ctx "int %s = %s;" v (gen_expr ctx depth);
    declare ctx v
  | 2 -> (
    match in_scope ctx with
    | [] -> line ctx "%s = %s;" (pick ctx globals) (gen_expr ctx depth)
    | vars -> line ctx "%s = %s;" (pick ctx vars) (gen_expr ctx depth))
  | 3 -> line ctx "%s = %s;" (pick ctx globals) (gen_expr ctx depth)
  | 4 -> line ctx "arr[(%s) & 15] = %s;" (gen_expr ctx 1) (gen_expr ctx depth)
  | 5 when depth > 0 ->
    line ctx "if (%s) {" (gen_expr ctx 1);
    gen_block ctx (depth - 1);
    if rnd ctx 2 = 0 then begin
      line ctx "} else {";
      gen_block ctx (depth - 1)
    end;
    line ctx "}"
  | 6 when depth > 0 ->
    let i = fresh ctx "i" in
    line ctx "for (int %s = 0; %s < %d; %s = %s + 1) {" i i (1 + rnd ctx 6) i i;
    ctx.loop_vars <- i :: ctx.loop_vars;
    gen_block ctx (depth - 1);
    ctx.loop_vars <- List.tl ctx.loop_vars;
    line ctx "}"
  | 7 -> line ctx "print(%s);" (gen_expr ctx depth)
  | 8 when depth > 0 ->
    (* a lock-guarded shared update: always balanced, and no helper
       calls under the lock (helpers may lock too — reentrancy) *)
    let saved_helpers = ctx.helpers in
    ctx.helpers <- [];
    line ctx "lock(&mtx);";
    line ctx "%s = %s + %s;" (pick ctx globals) (pick ctx globals)
      (gen_expr ctx 1);
    line ctx "unlock(&mtx);";
    ctx.helpers <- saved_helpers
  | _ -> line ctx "%s = %s;" (pick ctx globals) (gen_expr ctx depth)

and gen_block_inner ctx depth =
  let n = 1 + rnd ctx ctx.cfg.max_stmts in
  ctx.indent <- ctx.indent + 1;
  for _ = 1 to n do
    gen_stmt ctx depth
  done;
  ctx.indent <- ctx.indent - 1

and gen_block ctx depth =
  push_scope ctx;
  gen_block_inner ctx depth;
  pop_scope ctx

(* ---- functions ---- *)

let gen_helper ctx name arity =
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  line ctx "fn %s(%s) {"
    name
    (String.concat ", " (List.map (fun p -> "int " ^ p) params));
  ctx.scopes <- [ params ];
  ctx.indent <- 1;
  let n = 1 + rnd ctx 4 in
  for _ = 1 to n do
    gen_stmt ctx 1
  done;
  line ctx "return %s;" (gen_expr ctx 1);
  ctx.indent <- 0;
  ctx.scopes <- [];
  line ctx "}";
  line ctx ""

let gen_worker ctx ~name =
  line ctx "fn %s(int id) {" name;
  ctx.scopes <- [ [ "id" ] ];
  ctx.indent <- 1;
  let condvar = rnd ctx 2 = 0 in
  if condvar then begin
    (* the safe condvar pattern: predicate loop under the mutex; the
       producer (main) sets go=1 and broadcasts, so no lost wakeups *)
    line ctx "lock(&mtx);";
    line ctx "while (go == 0) {";
    line ctx "  wait(&cv, &mtx);";
    line ctx "}";
    line ctx "unlock(&mtx);"
  end;
  let iters = 2 + rnd ctx 6 in
  line ctx "for (int w = 0; w < %d; w = w + 1) {" iters;
  ctx.indent <- 2;
  line ctx "lock(&mtx);";
  line ctx "%s = %s + id + w;" (pick ctx globals) (pick ctx globals);
  line ctx "unlock(&mtx);";
  (match rnd ctx 2 with
  | 0 -> line ctx "arr[(id + w) & 15] = arr[(id + w) & 15] + 1;"
  | _ -> line ctx "yield();");
  ctx.indent <- 1;
  line ctx "}";
  ctx.indent <- 0;
  ctx.scopes <- [];
  line ctx "}";
  line ctx "";
  condvar

(** Generate a random well-behaved program from an explicit RNG state.
    Every random choice flows through [rng] (via [ctx.rng]); the global
    [Random] state is never touched, so two calls with equal states
    produce byte-identical programs regardless of what ran in between.
    [banner] is appended to the header comment (failure artifacts print
    the seed through it). *)
let program_rng ?(cfg = default_cfg) ?(banner = "") (rng : Random.State.t) :
    string =
  let nhelpers = Random.State.int rng (cfg.max_helpers + 1) in
  let helpers =
    List.init nhelpers (fun i ->
        (Printf.sprintf "h%d" i, 1 + Random.State.int rng 2))
  in
  let ctx =
    { rng; buf = Buffer.create 1024; indent = 0; fresh = 0; cfg;
      scopes = []; loop_vars = []; helpers = [] }
  in
  line ctx "// generated program%s" banner;
  List.iter (fun g -> line ctx "global int %s;" g) globals;
  line ctx "global int arr[16];";
  line ctx "global int mtx;";
  line ctx "global int cv;";
  line ctx "global int go;";
  line ctx "";
  List.iter
    (fun (name, arity) ->
      (* only earlier helpers are callable: no recursion *)
      gen_helper ctx name arity;
      ctx.helpers <- ctx.helpers @ [ (name, arity) ])
    helpers;
  let threads = cfg.with_threads && Random.State.int rng 2 = 0 in
  let nworkers =
    if threads then 1 + Random.State.int rng (max cfg.max_workers 1) else 0
  in
  let worker_waits =
    List.init nworkers (fun k ->
        gen_worker ctx ~name:(Printf.sprintf "worker%d" k))
  in
  let any_waits = List.exists Fun.id worker_waits in
  line ctx "fn main() {";
  ctx.indent <- 1;
  ctx.scopes <- [ [] ];
  List.iteri
    (fun k _ -> line ctx "int tw%d = spawn(worker%d, %d);" k k (k + 1))
    worker_waits;
  if any_waits then begin
    (* release the waiting workers: set the predicate, then broadcast
       (wakes every waiter; late arrivals see go=1 and never wait) *)
    line ctx "lock(&mtx);";
    line ctx "go = 1;";
    line ctx "broadcast(&cv);";
    line ctx "unlock(&mtx);"
  end;
  gen_block_inner ctx cfg.max_depth;
  List.iteri (fun k _ -> line ctx "join(tw%d);" k) worker_waits;
  (* make the program's result observable for differential testing *)
  line ctx "print(ga + gb);";
  line ctx "print(arr[3] + arr[7]);";
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf

(** Generate a random well-behaved program from the given seed. *)
let program ?cfg (seed : int) : string =
  program_rng ?cfg
    ~banner:(Printf.sprintf " (seed %d)" seed)
    (Random.State.make [| seed; 0x9e37 |])

(** An explicit thread schedule for differential testing: an RLE list of
    [(tid hint, quantum)] steps.  A driver realizes a hint by stepping
    that thread if it is runnable, else the next runnable tid after it —
    deterministic given the machine state, so a schedule plus a program
    fully determines a run (see [Dr_conformance.Sched]).  Deterministic
    in the seed; the global [Random] state is never touched. *)
let schedule ?(max_quantum = 6) ~threads ~steps (seed : int) :
    (int * int) array =
  let rng = Random.State.make [| seed; 0x5c4ed |] in
  Array.init steps (fun _ ->
      ( Random.State.int rng (max threads 1),
        1 + Random.State.int rng (max max_quantum 1) ))
