(** Nested tracing spans — the event tier of the observability registry,
    sharded per domain.

    A span is a named, monotonic-clock [start]/[stop] interval with a
    thread attribution, a phase category and key:value attributes.
    Spans nest: [start] pushes onto an open-span stack, [stop] pops and
    appends a completed {!span} to the completed-span buffer, from which
    the sinks ({!Chrome_trace}, {!Report}) read.

    Overhead discipline: every entry point checks {!Gate.enabled} first.
    With tracing off, [start] returns the preallocated {!none} token and
    [stop]/[add_attr]/[with_span] are a single field check — hot paths
    stay allocation-free.  Tokens are plain [int]s so the disabled path
    boxes nothing.

    Mismatched stops are detected, not ignored: stopping a token that is
    not the top of the stack closes the intervening spans (their data is
    kept) and records a diagnostic in [mismatch_messages]; stopping an
    unknown token records a diagnostic and does nothing else.  The count
    also surfaces as the [obs.span_mismatches] counter so a run report
    can never hide a broken instrumentation site.

    {2 Domain discipline: sharded recorders}

    Every domain owns a {e shard} in [Domain.DLS]: its own open-span
    stack, completed-span buffer, token counter and mismatch list.  A
    recording call touches only its own shard — the enabled hot path has
    no cross-domain synchronization at all, and the disabled path is the
    one {!Gate.enabled} load.  A span must be stopped on the domain that
    started it (tokens are shard-local).

    Export merges shards {e deterministically by (logical stream, local
    record order)} — never by timestamp.  Streams are assigned in
    program order on the coordinating domain: the main domain records on
    stream 0, and every {!Dr_util.Pool} batch claims a contiguous stream
    range so task [i] of a batch records on the same stream whatever
    domain happens to claim it.  Two traced runs of the same workload
    therefore export identical merged span sequences whatever the
    schedule.  Spans recorded on a worker domain {e outside} any pool
    task land on the {!orphan} stream and sort last (their cross-shard
    order is the one schedule-dependent corner; no instrumented site
    does this).

    Readers ([spans], [reset], the sinks) require {e quiescence}: call
    them from the main domain while no pool batch is in flight.  Every
    pool barrier ({!Dr_util.Pool.run} returning) publishes the workers'
    shard writes to the caller. *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span = {
  sp_name : string;
  sp_cat : string;  (** phase category: "log", "replay", "slice", ... *)
  sp_tid : int;  (** attributed thread (simulated tid; 0 = tool) *)
  sp_dom : int;
      (** recording domain slot: 0 = main domain, the pool worker slot
          inside a pool task — the Perfetto track dimension.  Unlike
          [sp_stream] it reflects the actual claim schedule. *)
  sp_stream : int;
      (** logical stream — the deterministic merge key: 0 = main
          domain, [base + i] inside pool task [i], {!orphan} for
          worker-domain spans outside any task *)
  sp_start_s : float;  (** seconds since the trace epoch *)
  sp_dur_s : float;
  sp_depth : int;  (** nesting depth within its stream *)
  sp_attrs : (string * attr) list;
}

let m_spans = Metrics.counter "obs.spans"
let m_mismatches = Metrics.counter "obs.span_mismatches"

(** Stream id of worker-domain spans recorded outside any pool task;
    they sort after every deterministic stream. *)
let orphan = max_int

(* ---- per-domain shards ---- *)

let dummy_span =
  { sp_name = ""; sp_cat = ""; sp_tid = 0; sp_dom = 0; sp_stream = 0;
    sp_start_s = 0.0; sp_dur_s = 0.0; sp_depth = 0; sp_attrs = [] }

type open_span = {
  o_id : int;
  o_name : string;
  o_cat : string;
  o_tid : int;
  o_t0 : float;
  mutable o_attrs : (string * attr) list;  (** newest first *)
}

let dummy_open =
  { o_id = 0; o_name = ""; o_cat = ""; o_tid = 0; o_t0 = 0.0; o_attrs = [] }

(* Gc stats sampled when a top-level span of this name closes (a phase
   boundary): words are the values at the *last* boundary, heap the max
   seen. *)
type gc_phase = {
  gp_name : string;
  mutable gp_samples : int;
  mutable gp_minor_words : float;
  mutable gp_major_words : float;
  mutable gp_heap_words : int;
}

type shard = {
  sh_main : bool;  (** created on the main (stream-0) domain? *)
  sh_domain : int;  (** runtime domain id, for diagnostics only *)
  spans : span Dr_util.Vec.t;
  stack : open_span Dr_util.Vec.t;
  mutable next_id : int;
  mutable stream : int;  (** current logical stream for closed spans *)
  mutable dom : int;  (** current domain slot for track attribution *)
  mutable depth_base : int;
      (** stack depth where the current stream began; depths are
          reported relative to it so a task span nests identically
          whether the caller or a worker claimed it *)
  mutable mismatches : string list;  (** newest first *)
  gc : (string, gc_phase) Hashtbl.t;
}

(* Registry of every shard ever created (newest first), guarded by
   [reg_lock].  Shards of joined pool domains stay registered: their
   buffers must survive the domain so a post-shutdown export still sees
   every span.  The leak is bounded by the number of domains the
   process ever spawns, and [reset] clears the buffers. *)
let reg_lock = Mutex.create ()
let shards : shard list ref = ref []

(* stream 0 is the main domain; pool batches allocate from 1 up *)
let next_stream = Atomic.make 1

(** Claim [n] consecutive logical stream ids; returns the base.  Called
    by the pool hook on the coordinating domain, in program order. *)
let alloc_streams n = Atomic.fetch_and_add next_stream n

(* trace epoch: set once by the first span on any domain; [epoch] is
   written under the lock before the atomic flag is raised, so a racing
   reader that sees the flag also sees the value *)
let epoch = ref 0.0
let epoch_set = Atomic.make false

let now () = Dr_util.Timer.now ()

let ensure_epoch () =
  if not (Atomic.get epoch_set) then begin
    Mutex.lock reg_lock;
    if not (Atomic.get epoch_set) then begin
      epoch := now ();
      Atomic.set epoch_set true
    end;
    Mutex.unlock reg_lock
  end

let new_shard () =
  let main = Gate.on_recorder_domain () in
  let sh =
    { sh_main = main; sh_domain = (Domain.self () :> int);
      spans = Dr_util.Vec.create ~dummy:dummy_span;
      stack = Dr_util.Vec.create ~dummy:dummy_open; next_id = 1;
      stream = (if main then 0 else orphan);
      dom = (if main then 0 else (Domain.self () :> int)); depth_base = 0;
      mismatches = []; gc = Hashtbl.create 8 }
  in
  Mutex.lock reg_lock;
  shards := sh :: !shards;
  Mutex.unlock reg_lock;
  sh

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key new_shard
let shard () = Domain.DLS.get shard_key

(* ---- switch ---- *)

let set_enabled b = Gate.enabled := b
let enabled () = !Gate.enabled

(** Drop all recorded spans, open spans, Gc samples and mismatch
    diagnostics in every shard, reset the token and stream counters and
    clear the epoch (the registrations in {!Metrics} and {!Histogram}
    are untouched).  Requires quiescence: no pool batch in flight. *)
let reset () =
  Mutex.lock reg_lock;
  List.iter
    (fun sh ->
      Dr_util.Vec.clear sh.spans;
      Dr_util.Vec.clear sh.stack;
      sh.next_id <- 1;
      sh.stream <- (if sh.sh_main then 0 else orphan);
      sh.dom <- (if sh.sh_main then 0 else sh.sh_domain);
      sh.depth_base <- 0;
      sh.mismatches <- [];
      Hashtbl.reset sh.gc)
    !shards;
  Atomic.set next_stream 1;
  epoch := 0.0;
  Atomic.set epoch_set false;
  Mutex.unlock reg_lock

(* ---- recording ---- *)

(** The token [start] returns when tracing is disabled; stopping it is
    a no-op. *)
let none = 0

let mismatch sh fmt =
  Printf.ksprintf
    (fun msg ->
      Metrics.bump m_mismatches;
      sh.mismatches <- msg :: sh.mismatches)
    fmt

(** Open a span on the calling domain's shard.  [cat] groups spans into
    a phase for the trace viewer and the report; [tid] attributes the
    span to a simulated thread. *)
let start ?(tid = 0) ?(cat = "drdebug") name =
  if not !Gate.enabled then none
  else begin
    let sh = shard () in
    ensure_epoch ();
    let id = sh.next_id in
    sh.next_id <- id + 1;
    Dr_util.Vec.push sh.stack
      { o_id = id; o_name = name; o_cat = cat; o_tid = tid; o_t0 = now ();
        o_attrs = [] };
    id
  end

(* index of [tok] in the shard's open stack, or -1 *)
let find_open sh tok =
  let n = Dr_util.Vec.length sh.stack in
  let idx = ref (-1) in
  for i = n - 1 downto 0 do
    if !idx < 0 && (Dr_util.Vec.get sh.stack i).o_id = tok then idx := i
  done;
  !idx

(** Attach an attribute to a still-open span (same domain as [start]). *)
let add_attr tok key v =
  if !Gate.enabled && tok <> none then begin
    let sh = shard () in
    let i = find_open sh tok in
    if i >= 0 then begin
      let o = Dr_util.Vec.get sh.stack i in
      o.o_attrs <- (key, v) :: o.o_attrs
    end
    else mismatch sh "add_attr %S on a closed or unknown span token" key
  end

(* a phase boundary: a top-level span (of its stream) just closed *)
let gc_boundary sh name =
  let st = Gc.quick_stat () in
  let gp =
    match Hashtbl.find_opt sh.gc name with
    | Some gp -> gp
    | None ->
      let gp =
        { gp_name = name; gp_samples = 0; gp_minor_words = 0.0;
          gp_major_words = 0.0; gp_heap_words = 0 }
      in
      Hashtbl.replace sh.gc name gp;
      gp
  in
  gp.gp_samples <- gp.gp_samples + 1;
  gp.gp_minor_words <- st.Gc.minor_words;
  gp.gp_major_words <- st.Gc.major_words;
  gp.gp_heap_words <- max gp.gp_heap_words st.Gc.heap_words

(* pop the top open span and append the completed record *)
let close_top sh t1 =
  let o = Dr_util.Vec.pop sh.stack in
  Metrics.bump m_spans;
  let depth = max 0 (Dr_util.Vec.length sh.stack - sh.depth_base) in
  Dr_util.Vec.push sh.spans
    { sp_name = o.o_name; sp_cat = o.o_cat; sp_tid = o.o_tid;
      sp_dom = sh.dom; sp_stream = sh.stream; sp_start_s = o.o_t0 -. !epoch;
      sp_dur_s = t1 -. o.o_t0; sp_depth = depth;
      sp_attrs = List.rev o.o_attrs };
  if Dr_util.Vec.length sh.stack <= sh.depth_base then gc_boundary sh o.o_name

(** Close a span, optionally attaching final [attrs].  Stopping out of
    order closes the spans opened above it first (recording a mismatch
    diagnostic); stopping an unknown token only records the mismatch. *)
let stop ?(attrs = []) tok =
  if !Gate.enabled && tok <> none then begin
    let sh = shard () in
    let i = find_open sh tok in
    if i < 0 then mismatch sh "stop of a closed or unknown span token %d" tok
    else begin
      let t1 = now () in
      let n = Dr_util.Vec.length sh.stack in
      if i < n - 1 then
        mismatch sh "stop of %S closed %d unfinished child span(s)"
          (Dr_util.Vec.get sh.stack i).o_name
          (n - 1 - i);
      while Dr_util.Vec.length sh.stack > i + 1 do
        close_top sh t1
      done;
      let o = Dr_util.Vec.get sh.stack i in
      o.o_attrs <- List.rev_append attrs o.o_attrs;
      close_top sh t1
    end
  end

(** [with_span name f] runs [f token] inside a span; the span is closed
    (and recorded) even when [f] raises.  [f] receives the token so it
    can {!add_attr} results as they become known. *)
let with_span ?tid ?cat ?attrs name f =
  if not !Gate.enabled then f none
  else begin
    let tok = start ?tid ?cat name in
    Fun.protect ~finally:(fun () -> stop ?attrs tok) (fun () -> f tok)
  end

(* ---- reading (quiescent, main domain) ---- *)

(* snapshot the registry in shard-creation order *)
let all_shards () =
  Mutex.lock reg_lock;
  let l = List.rev !shards in
  Mutex.unlock reg_lock;
  l

(** Completed spans of every shard, merged deterministically: stable
    sort by logical stream, record order within a stream.  A stream's
    spans all come from the single shard that ran it, so the merged
    sequence is independent of the claim schedule. *)
let spans () =
  let arr =
    Array.concat (List.map (fun sh -> Dr_util.Vec.to_array sh.spans) (all_shards ()))
  in
  Array.stable_sort (fun a b -> Int.compare a.sp_stream b.sp_stream) arr;
  arr

let span_count () =
  List.fold_left
    (fun acc sh -> acc + Dr_util.Vec.length sh.spans)
    0 (all_shards ())

(** Mismatch diagnostics, oldest first per shard, shards in creation
    order. *)
let mismatch_messages () =
  List.concat_map (fun sh -> List.rev sh.mismatches) (all_shards ())

let mismatch_count () =
  List.fold_left
    (fun acc sh -> acc + List.length sh.mismatches)
    0 (all_shards ())

(** Gc phase-boundary samples merged across shards, sorted by phase
    name: (name, samples, minor_words, major_words, heap_words) — words
    from the shard with the largest heap figure, heap the max. *)
let gc_samples () =
  let tbl : (string, gc_phase) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sh ->
      Hashtbl.iter
        (fun name gp ->
          match Hashtbl.find_opt tbl name with
          | None ->
            Hashtbl.replace tbl name
              { gp with gp_name = name }
          | Some acc ->
            acc.gp_samples <- acc.gp_samples + gp.gp_samples;
            if gp.gp_heap_words > acc.gp_heap_words then begin
              acc.gp_heap_words <- gp.gp_heap_words;
              acc.gp_minor_words <- gp.gp_minor_words;
              acc.gp_major_words <- gp.gp_major_words
            end)
        sh.gc)
    (all_shards ());
  Hashtbl.fold
    (fun name gp acc ->
      (name, gp.gp_samples, gp.gp_minor_words, gp.gp_major_words,
       gp.gp_heap_words)
      :: acc)
    tbl []
  |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> String.compare a b)

let attr_to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

(* ---- pool instrumentation ----

   Installed into Dr_util.Pool at module initialisation (dr_obs depends
   on dr_util, so the pool cannot call us directly).  Scalar tier: a
   per-slot claim counter and busy timer, always on.  Event tier (gated):
   the task runs under its batch-assigned stream with a fresh depth
   base, wrapped in claim/exec spans, so Perfetto shows a per-domain
   utilization timeline and the merged export stays schedule-
   independent. *)

let pool_task ~stream ~slot ~task f =
  Metrics.bump
    (Metrics.counter (Printf.sprintf "pool.slot%d.tasks_claimed" slot));
  Metrics.time (Metrics.timer (Printf.sprintf "pool.slot%d.busy" slot))
  @@ fun () ->
  if not !Gate.enabled then f ()
  else begin
    let sh = shard () in
    let prev_stream = sh.stream
    and prev_dom = sh.dom
    and prev_base = sh.depth_base in
    sh.stream <- stream;
    sh.dom <- slot;
    sh.depth_base <- Dr_util.Vec.length sh.stack;
    Fun.protect
      ~finally:(fun () ->
        sh.stream <- prev_stream;
        sh.dom <- prev_dom;
        sh.depth_base <- prev_base)
      (fun () ->
        with_span ~cat:"pool" "pool.claim" (fun sp ->
            add_attr sp "task" (Int task);
            add_attr sp "slot" (Int slot);
            with_span ~cat:"pool" "pool.exec" (fun _ -> f ())))
  end

let () =
  Dr_util.Pool.set_instrument
    { Dr_util.Pool.i_run_begin =
        (fun ~tasks -> if !Gate.enabled then alloc_streams tasks else 0);
      i_task = pool_task }
