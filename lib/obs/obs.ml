(** Nested tracing spans — the event tier of the observability registry.

    A span is a named, monotonic-clock [start]/[stop] interval with a
    thread attribution, a phase category and key:value attributes.
    Spans nest: [start] pushes onto an open-span stack, [stop] pops and
    appends a completed {!span} to the global buffer, from which the
    sinks ({!Chrome_trace}, {!Report}) read.

    Overhead discipline: every entry point checks {!Gate.enabled} first.
    With tracing off, [start] returns the preallocated {!none} token and
    [stop]/[add_attr]/[with_span] are a single field check — hot paths
    stay allocation-free.  Tokens are plain [int]s so the disabled path
    boxes nothing.

    Mismatched stops are detected, not ignored: stopping a token that is
    not the top of the stack closes the intervening spans (their data is
    kept) and records a diagnostic in [mismatch_messages]; stopping an
    unknown token records a diagnostic and does nothing else.  The count
    also surfaces as the [obs.span_mismatches] counter so a run report
    can never hide a broken instrumentation site.

    Domain discipline: the recorder is single-domain.  Every entry point
    additionally checks {!Gate.on_recorder_domain}, so spans opened from
    pool worker domains are silently dropped ([start] returns {!none})
    instead of racing on the shared stack and buffer.  The coordinating
    domain's spans around a parallel fan-out, plus the atomic
    {!Metrics}, are the supported observability of parallel sections
    (DESIGN §12). *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span = {
  sp_name : string;
  sp_cat : string;  (** phase category: "log", "replay", "slice", ... *)
  sp_tid : int;  (** attributed thread (simulated tid; 0 = tool) *)
  sp_start_s : float;  (** seconds since the trace epoch *)
  sp_dur_s : float;
  sp_depth : int;  (** nesting depth at the time the span was open *)
  sp_attrs : (string * attr) list;
}

let m_spans = Metrics.counter "obs.spans"
let m_mismatches = Metrics.counter "obs.span_mismatches"

(* ---- global recorder state ---- *)

let epoch = ref 0.0
let epoch_set = ref false

let dummy_span =
  { sp_name = ""; sp_cat = ""; sp_tid = 0; sp_start_s = 0.0; sp_dur_s = 0.0;
    sp_depth = 0; sp_attrs = [] }

let spans_buf : span Dr_util.Vec.t = Dr_util.Vec.create ~dummy:dummy_span

type open_span = {
  o_id : int;
  o_name : string;
  o_cat : string;
  o_tid : int;
  o_t0 : float;
  mutable o_attrs : (string * attr) list;  (** newest first *)
}

let dummy_open =
  { o_id = 0; o_name = ""; o_cat = ""; o_tid = 0; o_t0 = 0.0; o_attrs = [] }

let stack : open_span Dr_util.Vec.t = Dr_util.Vec.create ~dummy:dummy_open
let next_id = ref 1
let mismatches : string list ref = ref []

(* ---- switch ---- *)

let set_enabled b = Gate.enabled := b
let enabled () = !Gate.enabled

(** Drop all recorded spans, open spans and mismatch diagnostics (the
    registrations in {!Metrics} and {!Histogram} are untouched). *)
let reset () =
  Dr_util.Vec.clear spans_buf;
  Dr_util.Vec.clear stack;
  mismatches := [];
  epoch_set := false

(* ---- recording ---- *)

(** The token [start] returns when tracing is disabled; stopping it is
    a no-op. *)
let none = 0

let now () = Dr_util.Timer.now ()

let mismatch fmt =
  Printf.ksprintf
    (fun msg ->
      Metrics.bump m_mismatches;
      mismatches := msg :: !mismatches)
    fmt

(** Open a span.  [cat] groups spans into a phase for the trace viewer
    and the report; [tid] attributes the span to a simulated thread. *)
let start ?(tid = 0) ?(cat = "drdebug") name =
  if (not !Gate.enabled) || not (Gate.on_recorder_domain ()) then none
  else begin
    if not !epoch_set then begin
      epoch := now ();
      epoch_set := true
    end;
    let id = !next_id in
    incr next_id;
    Dr_util.Vec.push stack
      { o_id = id; o_name = name; o_cat = cat; o_tid = tid; o_t0 = now ();
        o_attrs = [] };
    id
  end

(* index of [tok] in the open stack, or -1 *)
let find_open tok =
  let n = Dr_util.Vec.length stack in
  let idx = ref (-1) in
  for i = n - 1 downto 0 do
    if !idx < 0 && (Dr_util.Vec.get stack i).o_id = tok then idx := i
  done;
  !idx

(** Attach an attribute to a still-open span. *)
let add_attr tok key v =
  if !Gate.enabled && tok <> none && Gate.on_recorder_domain () then begin
    let i = find_open tok in
    if i >= 0 then begin
      let o = Dr_util.Vec.get stack i in
      o.o_attrs <- (key, v) :: o.o_attrs
    end
    else mismatch "add_attr %S on a closed or unknown span token" key
  end

(* pop the top open span and append the completed record *)
let close_top t1 =
  let o = Dr_util.Vec.pop stack in
  Metrics.bump m_spans;
  Dr_util.Vec.push spans_buf
    { sp_name = o.o_name; sp_cat = o.o_cat; sp_tid = o.o_tid;
      sp_start_s = o.o_t0 -. !epoch; sp_dur_s = t1 -. o.o_t0;
      sp_depth = Dr_util.Vec.length stack; sp_attrs = List.rev o.o_attrs }

(** Close a span, optionally attaching final [attrs].  Stopping out of
    order closes the spans opened above it first (recording a mismatch
    diagnostic); stopping an unknown token only records the mismatch. *)
let stop ?(attrs = []) tok =
  if !Gate.enabled && tok <> none && Gate.on_recorder_domain () then begin
    let i = find_open tok in
    if i < 0 then
      mismatch "stop of a closed or unknown span token %d" tok
    else begin
      let t1 = now () in
      let n = Dr_util.Vec.length stack in
      if i < n - 1 then
        mismatch "stop of %S closed %d unfinished child span(s)"
          (Dr_util.Vec.get stack i).o_name
          (n - 1 - i);
      while Dr_util.Vec.length stack > i + 1 do
        close_top t1
      done;
      let o = Dr_util.Vec.get stack i in
      o.o_attrs <- List.rev_append attrs o.o_attrs;
      close_top t1
    end
  end

(** [with_span name f] runs [f token] inside a span; the span is closed
    (and recorded) even when [f] raises.  [f] receives the token so it
    can {!add_attr} results as they become known. *)
let with_span ?tid ?cat ?attrs name f =
  if (not !Gate.enabled) || not (Gate.on_recorder_domain ()) then f none
  else begin
    let tok = start ?tid ?cat name in
    Fun.protect ~finally:(fun () -> stop ?attrs tok) (fun () -> f tok)
  end

(* ---- reading ---- *)

(** Completed spans, in completion order. *)
let spans () = Dr_util.Vec.to_array spans_buf

let span_count () = Dr_util.Vec.length spans_buf

(** Mismatch diagnostics, oldest first. *)
let mismatch_messages () = List.rev !mismatches

let mismatch_count () = List.length !mismatches

let attr_to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b
