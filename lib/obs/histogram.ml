(** Log-bucketed distributions (latencies, sizes) with quantile
    summaries — part of the event tier of the observability registry.

    Buckets are base-2: bucket [i] covers [[2^(i-bias), 2^(i-bias+1))];
    bucket 0 additionally absorbs everything at or below its lower bound
    (including 0 and negative values) and the last bucket everything
    above.  With [bias = 32] and 73 buckets the range runs from ~2.3e-10
    to beyond 1e12, covering sub-nanosecond latencies through
    multi-gigabyte sizes with one integer increment per sample.

    [observe] is gated on {!Gate.enabled} and allocation-free: with
    tracing off it is a single field check, with tracing on it is a few
    field updates on preallocated arrays under a per-histogram mutex —
    unlike spans, histogram merges are commutative sums, so worker
    domains record into the shared buckets directly rather than into
    per-domain shards (see {!Gate}).  [record] is the ungated,
    unlocked variant used for single-domain ad-hoc aggregation
    (e.g. {!Report} summarising span durations).

    Quantiles are bucket-resolution upper bounds: [quantile h q] returns
    the upper bound of the bucket containing the rank-[ceil(q*count)]
    sample, clamped to the exact observed [min]/[max].  That makes p50 /
    p90 / p99 conservative (never under-reported) and deterministic. *)

let num_buckets = 73
let bias = 32

type t = {
  h_name : string;
  h_lock : Mutex.t;  (** guards the mutable fields for {!observe} *)
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

(** Bucket index for a sample value (total over all floats). *)
let bucket_of v =
  if v <= 0.0 then 0
  else begin
    (* v = m * 2^e with m in [0.5, 1): v lies in [2^(e-1), 2^e) *)
    let _, e = Float.frexp v in
    let b = e - 1 + bias in
    if b < 0 then 0 else if b >= num_buckets then num_buckets - 1 else b
  end

(** [(lo, hi)] of bucket [i]: samples land in [i] iff [lo <= v < hi]
    (bucket 0 reports [lo = 0] for its absorb-below role; the last
    bucket reports [hi = infinity]). *)
let bucket_bounds i =
  let lo = if i = 0 then 0.0 else Float.ldexp 1.0 (i - bias) in
  let hi =
    if i = num_buckets - 1 then Float.infinity
    else Float.ldexp 1.0 (i - bias + 1)
  in
  (lo, hi)

(** An unregistered histogram (for ad-hoc aggregation). *)
let create name =
  { h_name = name; h_lock = Mutex.create ();
    buckets = Array.make num_buckets 0; count = 0; sum = 0.0;
    vmin = Float.infinity; vmax = Float.neg_infinity }

(* registry: O(1) idempotent registration under a lock (two domains
   racing to register a name share one handle), report in registration
   order *)
let lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let order : t list ref = ref []

let get name =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
        let h = create name in
        Hashtbl.replace registry name h;
        order := h :: !order;
        h)

(** Record a sample unconditionally (ungated; used for report-time
    aggregation).  Hot paths use {!observe} instead. *)
let record h v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

(** Record a sample if tracing is enabled (a single field check
    otherwise), taking the per-histogram mutex so any domain may
    observe.  Bucket sums are commutative, so no ordering contract is
    needed for determinism — only the counts. *)
let observe h v =
  if !Gate.enabled then begin
    Mutex.lock h.h_lock;
    record h v;
    Mutex.unlock h.h_lock
  end

let name h = h.h_name
let count h = h.count
let sum h = h.sum
let min_value h = if h.count = 0 then 0.0 else h.vmin
let max_value h = if h.count = 0 then 0.0 else h.vmax
let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

(** Upper bound of the bucket holding the rank-[ceil(q*count)] sample,
    clamped to the observed range; 0 on an empty histogram. *)
let quantile h q =
  if h.count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let cum = ref 0 in
    let result = ref h.vmax in
    (try
       for i = 0 to num_buckets - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= rank then begin
           let _, hi = bucket_bounds i in
           result := Float.min hi h.vmax;
           raise Exit
         end
       done
     with Exit -> ());
    Float.max !result h.vmin
  end

let reset h =
  Array.fill h.buckets 0 num_buckets 0;
  h.count <- 0;
  h.sum <- 0.0;
  h.vmin <- Float.infinity;
  h.vmax <- Float.neg_infinity

(** All registered histograms, in registration order. *)
let all () = List.rev !order

let reset_all () = List.iter reset (all ())
