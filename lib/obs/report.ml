(** Machine-readable run reports ([drdebug-report-v1]).

    A report is one JSON document summarising the whole observability
    registry: the scalar tier ({!Metrics} counters and timers, in
    registration order), the registered {!Histogram}s (bucket counts
    plus p50/p90/p99), and the recorded {!Obs} spans aggregated into
    {e phases} — per span name: invocation count, total wall time and
    duration quantiles (computed through a fresh log-bucketed histogram,
    so a report never needs the raw span list).

    The schema is validated like the BENCH files: [validate] walks the
    parsed document and names the first violated field; the bench
    validator and the [drdebug_cli report] pretty-printer both run it
    before trusting a file. *)

module J = Dr_util.Json

let schema_version = "drdebug-report-v1"

(* ---- document construction ---- *)

let finite f = if Float.abs f = Float.infinity || Float.is_nan f then 0.0 else f

let histogram_json (h : Histogram.t) : J.t =
  let buckets = ref [] in
  for i = Histogram.num_buckets - 1 downto 0 do
    let n = h.Histogram.buckets.(i) in
    if n > 0 then begin
      let lo, hi = Histogram.bucket_bounds i in
      (* the last bucket's bound is infinite; clamp to the observed max
         so the document stays valid JSON *)
      let hi = if hi = Float.infinity then Histogram.max_value h else hi in
      buckets :=
        J.Obj [ ("lo", J.Num lo); ("hi", J.Num hi); ("count", J.int n) ]
        :: !buckets
    end
  done;
  J.Obj
    [ ("count", J.int (Histogram.count h));
      ("sum", J.Num (finite (Histogram.sum h)));
      ("min", J.Num (finite (Histogram.min_value h)));
      ("max", J.Num (finite (Histogram.max_value h)));
      ("mean", J.Num (finite (Histogram.mean h)));
      ("p50", J.Num (finite (Histogram.quantile h 0.50)));
      ("p90", J.Num (finite (Histogram.quantile h 0.90)));
      ("p99", J.Num (finite (Histogram.quantile h 0.99)));
      ("buckets", J.List !buckets) ]

(* per-name span aggregate *)
type phase = {
  ph_name : string;
  ph_cat : string;
  mutable ph_count : int;
  mutable ph_total : float;
  ph_hist : Histogram.t;  (** span durations *)
}

let phases_of_spans (spans : Obs.span array) : phase list =
  let tbl : (string, phase) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  Array.iter
    (fun (s : Obs.span) ->
      let p =
        match Hashtbl.find_opt tbl s.Obs.sp_name with
        | Some p -> p
        | None ->
          let p =
            { ph_name = s.Obs.sp_name; ph_cat = s.Obs.sp_cat; ph_count = 0;
              ph_total = 0.0; ph_hist = Histogram.create s.Obs.sp_name }
          in
          Hashtbl.replace tbl s.Obs.sp_name p;
          order := p :: !order;
          p
      in
      p.ph_count <- p.ph_count + 1;
      p.ph_total <- p.ph_total +. s.Obs.sp_dur_s;
      Histogram.record p.ph_hist s.Obs.sp_dur_s)
    spans;
  List.rev !order

let phase_json (p : phase) : J.t =
  J.Obj
    [ ("cat", J.Str p.ph_cat);
      ("count", J.int p.ph_count);
      ("total_s", J.Num (finite p.ph_total));
      ("mean_s", J.Num (finite (Histogram.mean p.ph_hist)));
      ("p50_s", J.Num (finite (Histogram.quantile p.ph_hist 0.50)));
      ("p90_s", J.Num (finite (Histogram.quantile p.ph_hist 0.90)));
      ("p99_s", J.Num (finite (Histogram.quantile p.ph_hist 0.99)));
      ("max_s", J.Num (finite (Histogram.max_value p.ph_hist))) ]

(** Build the [drdebug-report-v1] document from the current registry
    state. *)
let document ?(label = "drdebug") () : J.t =
  let counters, timers =
    List.partition_map
      (fun (name, v) ->
        match v with
        | `Counter n -> Either.Left (name, J.int n)
        | `Timer (s, e) ->
          Either.Right
            (name, J.Obj [ ("seconds", J.Num (finite s)); ("events", J.int e) ]))
      (Metrics.report ())
  in
  let histograms =
    List.filter_map
      (fun h ->
        if Histogram.count h = 0 then None
        else Some (Histogram.name h, histogram_json h))
      (Histogram.all ())
  in
  let phases =
    List.map (fun p -> (p.ph_name, phase_json p)) (phases_of_spans (Obs.spans ()))
  in
  let gc =
    List.map
      (fun (name, samples, minor_w, major_w, heap_w) ->
        ( name,
          J.Obj
            [ ("samples", J.int samples);
              ("minor_words", J.Num (finite minor_w));
              ("major_words", J.Num (finite major_w));
              ("heap_words", J.int heap_w) ] ))
      (Obs.gc_samples ())
  in
  J.Obj
    [ ("schema", J.Str schema_version);
      ("label", J.Str label);
      ("counters", J.Obj counters);
      ("timers", J.Obj timers);
      ("histograms", J.Obj histograms);
      ("phases", J.Obj phases);
      ("gc", J.Obj gc);
      ("span_total", J.int (Obs.span_count ()));
      ("span_mismatches", J.int (Obs.mismatch_count ())) ]

(** Write the current registry state as a report to [path] (atomic). *)
let write ?label path =
  Dr_util.Atomic_file.with_out path (fun oc ->
      output_string oc (J.to_string (document ?label ()));
      output_char oc '\n')

(* ---- validation ---- *)

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let get ctx doc k =
  match J.member k doc with
  | Some v -> v
  | None -> invalid "%s: missing field %S" ctx k

let want_num ctx v =
  match J.to_float v with Some f -> f | None -> invalid "%s: expected number" ctx

let want_str ctx v =
  match J.to_str v with Some s -> s | None -> invalid "%s: expected string" ctx

let want_obj ctx v =
  match v with J.Obj fields -> fields | _ -> invalid "%s: expected object" ctx

let want_nonneg ctx v =
  let f = want_num ctx v in
  if f < 0.0 then invalid "%s: negative" ctx;
  f

let check_histogram name h =
  let ctx k = Printf.sprintf "histograms.%s.%s" name k in
  List.iter
    (fun k -> ignore (want_num (ctx k) (get (ctx k) h k)))
    [ "count"; "sum"; "min"; "max"; "mean"; "p50"; "p90"; "p99" ];
  ignore (want_nonneg (ctx "count") (get (ctx "count") h "count"));
  match get (ctx "buckets") h "buckets" with
  | J.List buckets ->
    List.iteri
      (fun i b ->
        let bctx k = Printf.sprintf "histograms.%s.buckets[%d].%s" name i k in
        let lo = want_num (bctx "lo") (get (bctx "lo") b "lo") in
        let hi = want_num (bctx "hi") (get (bctx "hi") b "hi") in
        if hi < lo then invalid "%s: hi < lo" (bctx "hi");
        if want_nonneg (bctx "count") (get (bctx "count") b "count") < 1.0 then
          invalid "%s: empty bucket emitted" (bctx "count"))
      buckets
  | _ -> invalid "%s: expected list" (ctx "buckets")

let check_phase name p =
  let ctx k = Printf.sprintf "phases.%s.%s" name k in
  ignore (want_str (ctx "cat") (get (ctx "cat") p "cat"));
  if want_nonneg (ctx "count") (get (ctx "count") p "count") < 1.0 then
    invalid "%s: phase with no spans" (ctx "count");
  List.iter
    (fun k -> ignore (want_nonneg (ctx k) (get (ctx k) p k)))
    [ "total_s"; "mean_s"; "p50_s"; "p90_s"; "p99_s"; "max_s" ]

(** Validate a parsed [drdebug-report-v1] document; the error names the
    first violated field. *)
let validate (doc : J.t) : (unit, string) result =
  try
    let schema = want_str "schema" (get "schema" doc "schema") in
    if schema <> schema_version then
      invalid "schema: expected %S, found %S" schema_version schema;
    ignore (want_str "label" (get "label" doc "label"));
    List.iter
      (fun (name, v) -> ignore (want_nonneg ("counters." ^ name) v))
      (want_obj "counters" (get "counters" doc "counters"));
    List.iter
      (fun (name, v) ->
        let ctx k = Printf.sprintf "timers.%s.%s" name k in
        ignore (want_nonneg (ctx "seconds") (get (ctx "seconds") v "seconds"));
        ignore (want_nonneg (ctx "events") (get (ctx "events") v "events")))
      (want_obj "timers" (get "timers" doc "timers"));
    List.iter
      (fun (name, h) -> check_histogram name h)
      (want_obj "histograms" (get "histograms" doc "histograms"));
    List.iter
      (fun (name, p) -> check_phase name p)
      (want_obj "phases" (get "phases" doc "phases"));
    (* [gc] arrived with the sharded recorder; reports written before it
       are still valid, so the section is optional *)
    (match J.member "gc" doc with
    | None -> ()
    | Some gc ->
      List.iter
        (fun (name, g) ->
          let ctx k = Printf.sprintf "gc.%s.%s" name k in
          if want_nonneg (ctx "samples") (get (ctx "samples") g "samples") < 1.0
          then invalid "%s: phase with no samples" (ctx "samples");
          List.iter
            (fun k -> ignore (want_nonneg (ctx k) (get (ctx k) g k)))
            [ "minor_words"; "major_words"; "heap_words" ])
        (want_obj "gc" gc));
    ignore (want_nonneg "span_total" (get "span_total" doc "span_total"));
    ignore
      (want_nonneg "span_mismatches"
         (get "span_mismatches" doc "span_mismatches"));
    Ok ()
  with Invalid m -> Error m

(* ---- pretty-printing (drdebug_cli report, --stats) ---- *)

let num_of ctx doc k = want_num ctx (get ctx doc k)

(** Per-phase wall-time table from a parsed report document, heaviest
    phase first. *)
let pp_document fmt (doc : J.t) =
  let label =
    match Option.bind (J.member "label" doc) J.to_str with
    | Some l -> l
    | None -> "?"
  in
  Format.fprintf fmt "run report: %s@." label;
  let phases = want_obj "phases" (get "phases" doc "phases") in
  let rows =
    List.map
      (fun (name, p) ->
        let n k = num_of (name ^ "." ^ k) p k in
        ( name,
          (match Option.bind (J.member "cat" p) J.to_str with
          | Some c -> c
          | None -> ""),
          int_of_float (n "count"), n "total_s", n "p50_s", n "p99_s",
          n "max_s" ))
      phases
    |> List.sort (fun (_, _, _, a, _, _, _) (_, _, _, b, _, _, _) ->
           Float.compare b a)
  in
  if rows = [] then
    Format.fprintf fmt "  (no spans recorded — was tracing enabled?)@."
  else begin
    Format.fprintf fmt "  %-34s %-9s %7s %11s %11s %11s %11s@." "phase" "cat"
      "count" "total(s)" "p50(s)" "p99(s)" "max(s)";
    List.iter
      (fun (name, cat, count, total, p50, p99, mx) ->
        Format.fprintf fmt "  %-34s %-9s %7d %11.6f %11.6f %11.6f %11.6f@."
          name cat count total p50 p99 mx)
      rows
  end;
  let histograms = want_obj "histograms" (get "histograms" doc "histograms") in
  if histograms <> [] then begin
    Format.fprintf fmt "  %-34s %9s %14s %11s %11s@." "histogram" "count"
      "mean" "p50" "p99";
    List.iter
      (fun (name, h) ->
        let n k = num_of (name ^ "." ^ k) h k in
        Format.fprintf fmt "  %-34s %9d %14.6g %11.6g %11.6g@." name
          (int_of_float (n "count"))
          (n "mean") (n "p50") (n "p99"))
      histograms
  end;
  let mm = num_of "span_mismatches" doc "span_mismatches" in
  if mm > 0.0 then
    Format.fprintf fmt "  WARNING: %d span mismatch(es) recorded@."
      (int_of_float mm)

(** The live registry's per-phase summary (used by [--stats]). *)
let pp_summary fmt () = pp_document fmt (document ())

(* ---- report diffing (drdebug_cli report diff) ---- *)

(** One compared timing: a timer's [seconds] or a phase's [total_s],
    present in both documents.  [d_pct] is the relative change from
    [d_base] ([+] = slower). *)
type delta = {
  d_name : string;  (** "timers.<n>.seconds" or "phases.<n>.total_s" *)
  d_base : float;
  d_cur : float;
  d_pct : float;
}

type diff_result = {
  regressions : delta list;  (** deltas past the threshold, worst first *)
  improvements : delta list;  (** deltas past the threshold the other way *)
  compared : int;  (** timings present in both documents *)
}

(* timings too small for a stable relative comparison are skipped:
   sub-10ns totals are clock-resolution noise *)
let diff_floor_s = 1e-8

let timings ctx (doc : J.t) : (string * float) list =
  let section name field =
    match J.member name doc with
    | Some (J.Obj entries) ->
      List.filter_map
        (fun (n, v) ->
          Option.bind (J.member field v) J.to_float
          |> Option.map (fun f ->
                 (Printf.sprintf "%s.%s.%s" name n field, f)))
        entries
    | _ -> invalid "%s: missing or malformed %S section" ctx name
  in
  section "timers" "seconds" @ section "phases" "total_s"

(** Compare the wall-time trajectories of two parsed report documents:
    every timer and phase total present in both is compared, and a
    relative change beyond [threshold_pct] percent is a regression
    (slower) or an improvement (faster).  Timings absent from either
    document, or below the noise floor in the base, are skipped. *)
let diff ~threshold_pct (base : J.t) (cur : J.t) : (diff_result, string) result
    =
  try
    let b = timings "base" base and c = timings "current" cur in
    let regressions = ref [] and improvements = ref [] and compared = ref 0 in
    List.iter
      (fun (name, bv) ->
        match List.assoc_opt name c with
        | None -> ()
        | Some cv ->
          if bv > diff_floor_s then begin
            incr compared;
            let pct = (cv -. bv) /. bv *. 100.0 in
            let d = { d_name = name; d_base = bv; d_cur = cv; d_pct = pct } in
            if pct > threshold_pct then regressions := d :: !regressions
            else if pct < -.threshold_pct then improvements := d :: !improvements
          end)
      b;
    let by_severity a b = Float.compare (Float.abs b.d_pct) (Float.abs a.d_pct) in
    Ok
      { regressions = List.sort by_severity !regressions;
        improvements = List.sort by_severity !improvements;
        compared = !compared }
  with Invalid m -> Error m

let pp_delta fmt d =
  Format.fprintf fmt "  %-44s %11.6f -> %11.6f  %+7.1f%%@." d.d_name d.d_base
    d.d_cur d.d_pct

(** Human-readable diff table; returns [true] when there is at least
    one regression (the CLI's exit-code signal). *)
let pp_diff fmt (r : diff_result) : bool =
  Format.fprintf fmt "compared %d timing(s)@." r.compared;
  if r.regressions <> [] then begin
    Format.fprintf fmt "regressions:@.";
    List.iter (pp_delta fmt) r.regressions
  end;
  if r.improvements <> [] then begin
    Format.fprintf fmt "improvements:@.";
    List.iter (pp_delta fmt) r.improvements
  end;
  if r.regressions = [] && r.improvements = [] then
    Format.fprintf fmt "no change beyond threshold@.";
  r.regressions <> []
