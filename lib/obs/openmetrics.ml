(** OpenMetrics-{e style} text exporter.

    Renders the observability registry — or a parsed
    [drdebug-report-v1] document — as the line-oriented text format
    Prometheus-family scrapers ingest: [# TYPE] comments, one
    [name value] sample per line, summary quantiles as
    [name{quantile="0.5"}] and a terminating [# EOF].

    It is "-style" rather than strictly conformant on one point: metric
    names keep their registry spelling verbatim ([segstore.hits],
    [pool.slot0.busy.seconds]) instead of being mangled into
    [[a-zA-Z_:]] — the dots are the registry's namespace structure and
    the intended consumer is the repo's own tooling ([report diff], the
    bench validator, grep).  A strict scraper only needs a
    [s/\./_/g].

    Rendering is deterministic: counters and timers in name order (the
    {!Metrics.report} contract), histograms in registration order,
    derived gauges last. *)

module J = Dr_util.Json

(* %.17g round-trips every float; trailing-zero noise is trimmed by %g
   when the value is exactly representable short *)
let num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let counter_lines b name v =
  Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
  Buffer.add_string b (Printf.sprintf "%s %s\n" name (num v))

let gauge_lines b name v =
  Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
  Buffer.add_string b (Printf.sprintf "%s %s\n" name (num v))

(* a timer is a summary with only count and sum *)
let timer_lines b name ~seconds ~events =
  Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" name);
  Buffer.add_string b (Printf.sprintf "%s_count %d\n" name events);
  Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (num seconds))

let summary_lines b name ~count ~sum ~quantiles =
  Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" name);
  List.iter
    (fun (q, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s{quantile=\"%s\"} %s\n" name q (num v)))
    quantiles;
  Buffer.add_string b (Printf.sprintf "%s_count %d\n" name count);
  Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (num sum))

(* cache hit rates derived from hit/miss counter pairs; 0 when the
   cache saw no traffic *)
let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let derived_gauges b find =
  let c name = match find name with Some v -> v | None -> 0 in
  gauge_lines b "segstore.hit_rate"
    (hit_rate (c "segstore.hits") (c "segstore.misses"));
  gauge_lines b "reexec.window_hit_rate"
    (hit_rate (c "reexec.window_hits") (c "reexec.window_misses"))

(** The live registry as OpenMetrics-style text. *)
let render () : string =
  let b = Buffer.create 4096 in
  let entries = Metrics.report () in
  List.iter
    (fun (name, v) ->
      match v with
      | `Counter n -> counter_lines b name (float_of_int n)
      | `Timer (seconds, events) -> timer_lines b name ~seconds ~events)
    entries;
  List.iter
    (fun h ->
      if Histogram.count h > 0 then
        summary_lines b (Histogram.name h) ~count:(Histogram.count h)
          ~sum:(Histogram.sum h)
          ~quantiles:
            [ ("0.5", Histogram.quantile h 0.50);
              ("0.9", Histogram.quantile h 0.90);
              ("0.99", Histogram.quantile h 0.99) ])
    (Histogram.all ());
  derived_gauges b (fun name ->
      match List.assoc_opt name entries with
      | Some (`Counter n) -> Some n
      | _ -> None);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(** A parsed [drdebug-report-v1] document as OpenMetrics-style text —
    lets [drdebug_cli metrics FILE] re-export a stored report. *)
let of_report (doc : J.t) : (string, string) result =
  let b = Buffer.create 4096 in
  let obj name =
    match J.member name doc with
    | Some (J.Obj entries) -> Ok entries
    | _ -> Error (Printf.sprintf "missing or malformed %S section" name)
  in
  let ( let* ) = Result.bind in
  let* counters = obj "counters" in
  let* timers = obj "timers" in
  let* histograms = obj "histograms" in
  let fnum ctx v =
    match J.to_float v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: expected number" ctx)
  in
  let field ctx o k =
    match J.member k o with
    | Some v -> fnum (ctx ^ "." ^ k) v
    | None -> Error (Printf.sprintf "%s: missing field %S" ctx k)
  in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        let* f = fnum ("counters." ^ name) v in
        counter_lines b name f;
        Ok ())
      (Ok ()) counters
  in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        let* seconds = field ("timers." ^ name) v "seconds" in
        let* events = field ("timers." ^ name) v "events" in
        timer_lines b name ~seconds ~events:(int_of_float events);
        Ok ())
      (Ok ()) timers
  in
  let* () =
    List.fold_left
      (fun acc (name, h) ->
        let* () = acc in
        let ctx = "histograms." ^ name in
        let* count = field ctx h "count" in
        let* sum = field ctx h "sum" in
        let* p50 = field ctx h "p50" in
        let* p90 = field ctx h "p90" in
        let* p99 = field ctx h "p99" in
        summary_lines b name ~count:(int_of_float count) ~sum
          ~quantiles:[ ("0.5", p50); ("0.9", p90); ("0.99", p99) ];
        Ok ())
      (Ok ()) histograms
  in
  derived_gauges b (fun name ->
      match List.assoc_opt name counters with
      | Some v -> Option.map int_of_float (J.to_float v)
      | None -> None);
  Buffer.add_string b "# EOF\n";
  Ok (Buffer.contents b)

(** Write the live registry's metrics to [path] (atomic). *)
let write path =
  Dr_util.Atomic_file.with_out path (fun oc -> output_string oc (render ()))
