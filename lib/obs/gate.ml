(** The process-wide observability switch.

    It lives in its own tiny module so both the span recorder ({!Obs})
    and the histogram tier ({!Histogram}) can test it without depending
    on each other.  Hot paths read the field directly: with tracing off
    the entire event tier costs one mutable-field load per call site and
    allocates nothing.  The scalar tier ({!Metrics} counters and timers)
    is deliberately {e not} gated — it is atomic, domain-safe and cheap
    enough to leave enabled everywhere.

    The {e event} tier (spans, histogram observations) is {e sharded
    per domain}: every domain owns a recorder shard in [Domain.DLS]
    (its own open-span stack, completed-span buffer, token counter and
    mismatch list), so worker domains in a {!Dr_util.Pool} record spans
    without any cross-domain synchronization on the hot path — the only
    shared state a recording call touches is this [enabled] field.
    Export merges the shards deterministically by (logical stream,
    local record order), never by timestamp; see {!Obs} and DESIGN §12
    for the sharded-recorder contract.  Histogram observations take a
    per-histogram mutex instead (their merges are commutative sums, so
    no ordering contract is needed).

    [recorder_domain] identifies the domain that loaded the library —
    the main domain.  It no longer gates recording; the sharded
    recorder uses it only to pin the main domain's shard to logical
    stream 0 so coordinator spans sort ahead of pool-task streams in
    the merged export. *)

let enabled = ref false

(* the domain that loaded the observability library = the main domain *)
let recorder_domain : int = (Domain.self () :> int)

(** Is the calling domain the main (stream-0) domain? *)
let on_recorder_domain () = (Domain.self () :> int) = recorder_domain
