(** The process-wide observability switch.

    It lives in its own tiny module so both the span recorder ({!Obs})
    and the histogram tier ({!Histogram}) can test it without depending
    on each other.  Hot paths read the field directly: with tracing off
    the entire event tier costs one mutable-field load per call site and
    allocates nothing.  The scalar tier ({!Metrics} counters and timers)
    is deliberately {e not} gated — it was cheap enough to leave enabled
    everywhere before this flag existed and stays that way. *)

let enabled = ref false
