(** The process-wide observability switch.

    It lives in its own tiny module so both the span recorder ({!Obs})
    and the histogram tier ({!Histogram}) can test it without depending
    on each other.  Hot paths read the field directly: with tracing off
    the entire event tier costs one mutable-field load per call site and
    allocates nothing.  The scalar tier ({!Metrics} counters and timers)
    is deliberately {e not} gated — it is atomic, domain-safe and cheap
    enough to leave enabled everywhere.

    The {e event} tier (spans, histogram observations) is additionally
    pinned to the {e recorder domain} — the domain that loaded this
    module, i.e. the main domain.  Worker domains in a {!Dr_util.Pool}
    see their span and histogram calls as no-ops: the recorder keeps a
    single open-span stack and plain (unsynchronized) buffers, which
    stay correct because only one domain ever touches them.  Parallel
    sections remain observable through the scalar tier and through spans
    opened by the coordinating domain around the fan-out; DESIGN §12
    explains why per-domain event recording is deliberately out of
    scope. *)

let enabled = ref false

(* the domain that loaded the observability library = the main domain *)
let recorder_domain : int = (Domain.self () :> int)

(** Is the calling domain the one allowed to record events? *)
let on_recorder_domain () = (Domain.self () :> int) = recorder_domain
