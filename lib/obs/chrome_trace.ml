(** Chrome trace-event JSON sink: export the recorded spans as a file
    loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}.

    Spans are emitted as complete events ([ph = "X"]) with microsecond
    [ts]/[dur], the span's thread attribution as [tid] and its
    attributes under [args] — the object-of-arrays format both viewers
    accept.  A metadata event names the process so the timeline is
    labelled. *)

module J = Dr_util.Json

let attr_json = function
  | Obs.Int n -> J.int n
  | Obs.Float f -> J.Num f
  | Obs.Str s -> J.Str s
  | Obs.Bool b -> J.Bool b

let span_json (s : Obs.span) : J.t =
  J.Obj
    [ ("name", J.Str s.Obs.sp_name);
      ("cat", J.Str s.Obs.sp_cat);
      ("ph", J.Str "X");
      ("pid", J.int 1);
      ("tid", J.int s.Obs.sp_tid);
      ("ts", J.Num (s.Obs.sp_start_s *. 1e6));
      ("dur", J.Num (s.Obs.sp_dur_s *. 1e6));
      ("args",
       J.Obj
         (("depth", J.int s.Obs.sp_depth)
         :: List.map (fun (k, v) -> (k, attr_json v)) s.Obs.sp_attrs)) ]

let process_name_json : J.t =
  J.Obj
    [ ("name", J.Str "process_name");
      ("ph", J.Str "M");
      ("pid", J.int 1);
      ("tid", J.int 0);
      ("args", J.Obj [ ("name", J.Str "drdebug") ]) ]

(** The whole recorded trace as a Chrome trace-event document. *)
let to_json () : J.t =
  let events =
    process_name_json
    :: (Array.to_list (Obs.spans ()) |> List.map span_json)
  in
  J.Obj
    [ ("traceEvents", J.List events); ("displayTimeUnit", J.Str "ms") ]

(** Write the trace to [path] (atomic: tmp + fsync + rename). *)
let write path =
  Dr_util.Atomic_file.with_out path (fun oc ->
      output_string oc (J.to_string (to_json ()));
      output_char oc '\n')
