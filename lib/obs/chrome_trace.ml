(** Chrome trace-event JSON sink: export the recorded spans as a file
    loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}.

    Spans are emitted as complete events ([ph = "X"]) with microsecond
    [ts]/[dur] and their attributes under [args] — the object-of-arrays
    format both viewers accept.  The viewer's [tid] dimension is the
    {e track}: spans recorded on the main domain keep their simulated
    thread id as the track, while spans recorded inside a pool task on
    worker slot [d] are lifted onto track [d * 1000 + tid], so Perfetto
    shows one utilization timeline per worker domain without colliding
    with the simulated-thread tracks.  [thread_name] metadata events
    ([ph = "M"]) label every track; a [process_name] event labels the
    process. *)

module J = Dr_util.Json

let attr_json = function
  | Obs.Int n -> J.int n
  | Obs.Float f -> J.Num f
  | Obs.Str s -> J.Str s
  | Obs.Bool b -> J.Bool b

(* viewer track of a span: (domain slot, simulated tid) flattened *)
let track_id (s : Obs.span) =
  if s.Obs.sp_dom = 0 then s.Obs.sp_tid
  else (s.Obs.sp_dom * 1000) + s.Obs.sp_tid

let span_json (s : Obs.span) : J.t =
  J.Obj
    [ ("name", J.Str s.Obs.sp_name);
      ("cat", J.Str s.Obs.sp_cat);
      ("ph", J.Str "X");
      ("pid", J.int 1);
      ("tid", J.int (track_id s));
      ("ts", J.Num (s.Obs.sp_start_s *. 1e6));
      ("dur", J.Num (s.Obs.sp_dur_s *. 1e6));
      ("args",
       J.Obj
         (("depth", J.int s.Obs.sp_depth)
          :: ("dom", J.int s.Obs.sp_dom)
          :: List.map (fun (k, v) -> (k, attr_json v)) s.Obs.sp_attrs)) ]

let process_name_json : J.t =
  J.Obj
    [ ("name", J.Str "process_name");
      ("ph", J.Str "M");
      ("pid", J.int 1);
      ("tid", J.int 0);
      ("args", J.Obj [ ("name", J.Str "drdebug") ]) ]

let thread_name_json ~track ~label : J.t =
  J.Obj
    [ ("name", J.Str "thread_name");
      ("ph", J.Str "M");
      ("pid", J.int 1);
      ("tid", J.int track);
      ("args", J.Obj [ ("name", J.Str label) ]) ]

(* one thread_name metadata event per distinct (domain, tid) track, in
   ascending track order *)
let track_metadata spans =
  let module IS = Set.Make (Int) in
  let tracks =
    Array.fold_left
      (fun acc (s : Obs.span) ->
        (track_id s, s.Obs.sp_dom, s.Obs.sp_tid) :: acc)
      [] spans
    |> List.fold_left
         (fun (seen, out) ((track, _, _) as t) ->
           if IS.mem track seen then (seen, out)
           else (IS.add track seen, t :: out))
         (IS.empty, [])
    |> snd
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  List.map
    (fun (track, dom, tid) ->
      let label =
        if dom = 0 then Printf.sprintf "tid %d (main)" tid
        else Printf.sprintf "d%d worker / tid %d" dom tid
      in
      thread_name_json ~track ~label)
    tracks

(** The whole recorded trace as a Chrome trace-event document. *)
let to_json () : J.t =
  let spans = Obs.spans () in
  let events =
    (process_name_json :: track_metadata spans)
    @ (Array.to_list spans |> List.map span_json)
  in
  J.Obj
    [ ("traceEvents", J.List events); ("displayTimeUnit", J.Str "ms") ]

(** Write the trace to [path] (atomic: tmp + fsync + rename). *)
let write path =
  Dr_util.Atomic_file.with_out path (fun oc ->
      output_string oc (J.to_string (to_json ()));
      output_char oc '\n')
