(** Lightweight process-wide counters and timers — the {e scalar tier}
    of the observability registry (spans and histograms are the event
    tier, see {!Obs} and {!Histogram}).

    Hot paths register a handle once at module initialisation
    ([counter]/[timer]) and bump it with a plain field update — no hash
    lookup, no allocation — so instrumentation stays cheap enough to
    leave enabled everywhere; unlike the event tier, the scalar tier is
    not gated on {!Gate.enabled}.  The registry is global: [report]
    returns every registered metric for the CLI ([--stats]), the run
    report ({!Report}) and the bench harness; [reset] zeroes values
    between measurements but keeps the registrations.

    Registration is a Hashtbl lookup (O(1), not a scan of a growing
    list) and [report] emits metrics in registration order, which is the
    order the program's phases touch them — far more readable than the
    reversed cons order the list-based registry used to produce. *)

type counter = { c_name : string; mutable count : int }

type timer = {
  t_name : string;
  mutable seconds : float;
  mutable events : int;  (** number of timed sections *)
}

(* name -> handle for O(1) idempotent registration; [order] remembers
   first-registration order (newest first, reversed by [report]) *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 64
let order : [ `C of counter | `T of timer ] list ref = ref []

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace counters name c;
    order := `C c :: !order;
    c

let timer name =
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
    let t = { t_name = name; seconds = 0.0; events = 0 } in
    Hashtbl.replace timers name t;
    order := `T t :: !order;
    t

let bump c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count

let record t dt =
  t.seconds <- t.seconds +. dt;
  t.events <- t.events + 1

(** [time t f] runs [f ()], accumulating its wall-clock duration in [t].
    The elapsed time is recorded even when [f] raises. *)
let time t f =
  let t0 = Dr_util.Timer.now () in
  Fun.protect ~finally:(fun () -> record t (Dr_util.Timer.now () -. t0)) f

let seconds t = t.seconds
let events t = t.events

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ t ->
      t.seconds <- 0.0;
      t.events <- 0)
    timers

(** All registered metrics, in registration order: counters as
    [(name, `Counter n)], timers as [(name, `Timer (seconds, events))]. *)
let report () =
  List.rev_map
    (function
      | `C c -> (c.c_name, `Counter c.count)
      | `T t -> (t.t_name, `Timer (t.seconds, t.events)))
    !order

let pp fmt () =
  List.iter
    (fun (name, v) ->
      match v with
      | `Counter n -> Format.fprintf fmt "%-40s %12d@." name n
      | `Timer (s, e) ->
        Format.fprintf fmt "%-40s %12.6fs over %d events@." name s e)
    (report ())

let to_string () = Format.asprintf "%a" pp ()
