(** Lightweight process-wide counters and timers — the {e scalar tier}
    of the observability registry (spans and histograms are the event
    tier, see {!Obs} and {!Histogram}).

    Hot paths register a handle once at module initialisation
    ([counter]/[timer]) and bump it with one atomic fetch-and-add — no
    hash lookup, no allocation on the counter path — so instrumentation
    stays cheap enough to leave enabled everywhere; unlike the event
    tier, the scalar tier is not gated on {!Gate.enabled} and, also
    unlike the event tier, it is {e domain-safe}: counters and timers
    are {!Atomic} cells, so worker domains in a {!Dr_util.Pool} bump the
    same handles the sequential code does and [report] reads fully
    merged totals with no per-domain bookkeeping.

    Registration takes the registry lock (idempotent, O(1) via a
    Hashtbl) so two domains racing to register the same name always
    share one handle.  [report] snapshots the registry under the same
    lock and emits metrics {e sorted by name}: with parallel sections
    registering handles on first touch, arrival order depends on the
    schedule, and a deterministic report must not — two interleaved
    registrars produce byte-identical reports. *)

type counter = { c_name : string; count : int Atomic.t }

type timer = {
  t_name : string;
  seconds : float Atomic.t;
  events : int Atomic.t;  (** number of timed sections *)
}

(* name -> handle for O(1) idempotent registration; the lock covers
   every structural access (register, report, reset) — handle updates
   themselves are lock-free atomics *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = Atomic.make 0 } in
    Hashtbl.replace counters name c;
    c

let timer name =
  locked @@ fun () ->
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
    let t = { t_name = name; seconds = Atomic.make 0.0; events = Atomic.make 0 }
    in
    Hashtbl.replace timers name t;
    t

let bump c = Atomic.incr c.count
let add c n = ignore (Atomic.fetch_and_add c.count n)
let count c = Atomic.get c.count

(* lock-free float accumulation: retry the CAS on contention *)
let rec add_float (a : float Atomic.t) dt =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. dt)) then add_float a dt

let record t dt =
  add_float t.seconds dt;
  Atomic.incr t.events

(** [time t f] runs [f ()], accumulating its duration in [t].  The
    clock is {!Dr_util.Timer.now} — the same ratcheted monotonic source
    the span recorder uses, so a wall-clock step (NTP) can never yield a
    negative accumulation.  The elapsed time is recorded even when [f]
    raises. *)
let time t f =
  let t0 = Dr_util.Timer.now () in
  Fun.protect ~finally:(fun () -> record t (Dr_util.Timer.now () -. t0)) f

let seconds t = Atomic.get t.seconds
let events t = Atomic.get t.events

let reset () =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.count 0) counters;
  Hashtbl.iter
    (fun _ t ->
      Atomic.set t.seconds 0.0;
      Atomic.set t.events 0)
    timers

(** All registered metrics, sorted by name (deterministic whatever the
    registration interleaving): counters as [(name, `Counter n)], timers
    as [(name, `Timer (seconds, events))]. *)
let report () =
  let entries =
    locked @@ fun () ->
    Hashtbl.fold
      (fun _ c acc -> (c.c_name, `Counter (Atomic.get c.count)) :: acc)
      counters
      (Hashtbl.fold
         (fun _ t acc ->
           (t.t_name, `Timer (Atomic.get t.seconds, Atomic.get t.events))
           :: acc)
         timers [])
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let pp fmt () =
  List.iter
    (fun (name, v) ->
      match v with
      | `Counter n -> Format.fprintf fmt "%-40s %12d@." name n
      | `Timer (s, e) ->
        Format.fprintf fmt "%-40s %12.6fs over %d events@." name s e)
    (report ())

let to_string () = Format.asprintf "%a" pp ()
