(** Static code discovery and control-flow graphs.

    Plays the role of Pin's static code-discovery library (paper §5.1): it
    works on any program image, without compiler cooperation.  Indirect
    jumps ([jmp *r], from switch jump tables) have statically unknown
    targets, so the initial CFG is {e approximate}: the indirect-jump
    block gets no successors and its immediate post-dominator is unknown,
    which makes the control-dependence detector miss exactly the
    dependences the paper's Figure 7 shows.  {!build} accepts dynamically
    observed targets (collected during replay) to {e refine} the CFG and
    recompute post-dominators. *)

open Dr_isa

type block = {
  id : int;
  start_pc : int;
  end_pc : int;  (** exclusive *)
  succs : int list;  (** block ids *)
  preds : int list;
  exits : bool;  (** ends in ret/halt/exit (edge to virtual exit) *)
  unknown_succs : bool;  (** ends in an unresolved indirect jump *)
}

type func = {
  fentry : int;
  fend : int;  (** exclusive *)
  blocks : block array;
  block_of_pc : int array;  (** pc - fentry -> block id *)
  ipdom : int array;  (** block id -> ipdom block id, -1 = virtual exit/unknown *)
}

type t = {
  prog : Program.t;
  funcs : func list;  (** sorted by entry *)
  funcs_arr : func array;  (** same functions, entry-sorted, for binary search *)
}

(* ---- function boundary discovery ---- *)

(** Function entry points: debug info when present, else heuristic static
    discovery (program entry, direct call targets, and code addresses
    materialised into registers — the spawn-target idiom). *)
let discover_entries (prog : Program.t) : int list =
  let dbg = prog.Program.debug.Debug_info.funcs in
  if dbg <> [] then List.map (fun f -> f.Debug_info.entry) dbg
  else begin
    let n = Array.length prog.Program.code in
    let entries = Hashtbl.create 16 in
    Hashtbl.replace entries prog.Program.entry ();
    Array.iter
      (fun i ->
        match i with
        | Instr.Call t when t >= 0 && t < n -> Hashtbl.replace entries t ()
        | Instr.Mov (_, Instr.Imm v) when v >= 0 && v < n -> (
          (* looks like a code address if it targets a prologue *)
          match prog.Program.code.(v) with
          | Instr.Push r when r = Reg.fp -> Hashtbl.replace entries v ()
          | _ -> ())
        | _ -> ())
      prog.Program.code;
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) entries [])
  end

let func_ranges (prog : Program.t) : (int * int) list =
  let dbg = prog.Program.debug.Debug_info.funcs in
  if dbg <> [] then
    List.map (fun f -> (f.Debug_info.entry, f.Debug_info.code_end)) dbg
  else begin
    let entries = discover_entries prog in
    let n = Array.length prog.Program.code in
    let rec ranges = function
      | [] -> []
      | [ e ] -> [ (e, n) ]
      | e :: (e' :: _ as rest) -> (e, e') :: ranges rest
    in
    ranges entries
  end

(* ---- per-function CFG construction ---- *)

let build_func (prog : Program.t)
    ~(indirect_targets : (int, int list) Hashtbl.t) ~fentry ~fend : func =
  let code = prog.Program.code in
  let in_range pc = pc >= fentry && pc < fend in
  (* leaders: function entry, targets of jumps, fallthroughs of branches *)
  let leader = Array.make (fend - fentry) false in
  leader.(0) <- true;
  let mark pc = if in_range pc then leader.(pc - fentry) <- true in
  for pc = fentry to fend - 1 do
    match code.(pc) with
    | Instr.Jmp t ->
      mark t;
      mark (pc + 1)
    | Instr.Jcc (_, t) ->
      mark t;
      mark (pc + 1)
    | Instr.Jind _ | Instr.Callind _ ->
      List.iter mark (Option.value ~default:[] (Hashtbl.find_opt indirect_targets pc));
      mark (pc + 1)
    | Instr.Ret | Instr.Halt | Instr.Sys Instr.Exit -> mark (pc + 1)
    | _ -> ()
  done;
  (* block boundaries *)
  let starts = ref [] in
  for i = fend - fentry - 1 downto 0 do
    if leader.(i) then starts := (fentry + i) :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let block_end i = if i + 1 < nb then starts.(i + 1) else fend in
  let block_of_pc = Array.make (fend - fentry) 0 in
  Array.iteri
    (fun i s ->
      for pc = s to block_end i - 1 do
        block_of_pc.(pc - fentry) <- i
      done)
    starts;
  let bid pc = block_of_pc.(pc - fentry) in
  let succs = Array.make nb [] in
  let exits = Array.make nb false in
  let unknown = Array.make nb false in
  for i = 0 to nb - 1 do
    let last = block_end i - 1 in
    let fall () = if in_range (last + 1) then [ bid (last + 1) ] else [] in
    let s =
      match code.(last) with
      | Instr.Jmp t -> if in_range t then [ bid t ] else []
      | Instr.Jcc (_, t) -> (if in_range t then [ bid t ] else []) @ fall ()
      | Instr.Jind _ | Instr.Callind _ -> (
        match Hashtbl.find_opt indirect_targets last with
        | Some ts ->
          let ts = List.filter in_range ts in
          let blocks = List.sort_uniq compare (List.map bid ts) in
          (* an indirect call still falls through on return *)
          (match code.(last) with
          | Instr.Callind _ -> List.sort_uniq compare (blocks @ fall ())
          | _ -> blocks)
        | None ->
          unknown.(i) <- true;
          (match code.(last) with Instr.Callind _ -> fall () | _ -> []))
      | Instr.Ret | Instr.Halt | Instr.Sys Instr.Exit ->
        exits.(i) <- true;
        []
      | _ -> fall ()
    in
    succs.(i) <- s
  done;
  let preds = Array.make nb [] in
  Array.iteri (fun i s -> List.iter (fun j -> preds.(j) <- i :: preds.(j)) s) succs;
  (* post-dominators: dominators on the reverse CFG rooted at a virtual
     exit node (id nb).  Exit blocks and unknown-successor blocks connect
     to the virtual exit (the latter conservatively). *)
  let vexit = nb in
  let vexit_edges =
    List.concat
      (List.init nb (fun i ->
           if exits.(i) || (unknown.(i) && succs.(i) = []) then [ i ] else []))
  in
  let rsuccs v = if v = vexit then vexit_edges else preds.(v) in
  let rpreds v =
    if v = vexit then []
    else if exits.(v) || (unknown.(v) && succs.(v) = []) then vexit :: succs.(v)
    else succs.(v)
  in
  let doms =
    Dom.idom ~num_nodes:(nb + 1)
      ~succs:(fun v -> rsuccs v)
      ~preds:(fun v -> rpreds v)
      ~root:vexit
  in
  let ipdom =
    Array.init nb (fun i ->
        let d = doms.(i) in
        if d = vexit || d = -1 then -1 else d)
  in
  let blocks =
    Array.init nb (fun i ->
        { id = i; start_pc = starts.(i); end_pc = block_end i;
          succs = succs.(i); preds = preds.(i); exits = exits.(i);
          unknown_succs = unknown.(i) })
  in
  { fentry; fend; blocks; block_of_pc; ipdom }

(** Build CFGs for every function.  [indirect_targets] maps the pc of an
    indirect jump/call to its dynamically observed targets; omit it for
    the purely static (approximate) CFG. *)
let build ?(indirect_targets : (int * int list) list = []) (prog : Program.t) : t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (pc, ts) -> Hashtbl.replace tbl pc ts) indirect_targets;
  let funcs =
    List.map
      (fun (fentry, fend) -> build_func prog ~indirect_targets:tbl ~fentry ~fend)
      (func_ranges prog)
  in
  let funcs_arr = Array.of_list funcs in
  Array.sort (fun a b -> compare a.fentry b.fentry) funcs_arr;
  { prog; funcs; funcs_arr }

(* Binary search over the entry-sorted function array: find the function
   with the greatest [fentry <= pc], then check [pc < fend]. *)
let func_at (t : t) pc : func option =
  let a = t.funcs_arr in
  let n = Array.length a in
  if n = 0 || pc < a.(0).fentry then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: a.(!lo).fentry <= pc *)
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if a.(mid).fentry <= pc then lo := mid else hi := mid - 1
    done;
    let f = a.(!lo) in
    if pc < f.fend then Some f else None
  end

let block_at (t : t) pc : (func * block) option =
  match func_at t pc with
  | None -> None
  | Some f -> Some (f, f.blocks.(f.block_of_pc.(pc - f.fentry)))

(** Entry pc of the immediate post-dominator block of the branch at [pc]:
    the point where the branch's control-dependence region ends.  [None]
    when unknown (unresolved indirect jump) or when the region extends to
    function exit. *)
let ipdom_pc_of_branch (t : t) ~pc : int option =
  match block_at t pc with
  | None -> None
  | Some (f, b) ->
    if b.unknown_succs then None
    else
      let d = f.ipdom.(b.id) in
      if d = -1 then None else Some f.blocks.(d).start_pc

(** Where the control-dependence region of the branch at [pc] ends. *)
type region_end =
  | Unknown  (** unresolved indirect jump: no region can be tracked —
                 the §5.1 imprecision *)
  | To_exit  (** region extends to the function's return *)
  | At of int  (** region ends at this pc (ipdom block entry) *)

let branch_region_end (t : t) ~pc : region_end =
  match block_at t pc with
  | None -> Unknown
  | Some (f, b) ->
    if b.unknown_succs then Unknown
    else
      let d = f.ipdom.(b.id) in
      if d = -1 then To_exit else At f.blocks.(d).start_pc

(** All functions as (entry, end) ranges — used by the save/restore-pair
    static candidate scan. *)
let functions (t : t) = List.map (fun f -> (f.fentry, f.fend)) t.funcs

let pp fmt (t : t) =
  List.iter
    (fun f ->
      Format.fprintf fmt "function @%d..%d@." f.fentry f.fend;
      Array.iter
        (fun b ->
          Format.fprintf fmt "  B%d [%d,%d) -> %s%s ipdom=%d@." b.id b.start_pc
            b.end_pc
            (String.concat "," (List.map string_of_int b.succs))
            (if b.unknown_succs then " (unknown)" else if b.exits then " (exit)" else "")
            f.ipdom.(b.id))
        f.blocks)
    t.funcs
