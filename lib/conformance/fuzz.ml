(** The differential fuzz loop: generate -> log -> replay -> relog ->
    slice -> slice-replay, with the five {!Oracles} checked on every
    case and failing cases shrunk to minimal repros.

    Case derivation is pure: a master seed plus a case id yields the
    program seed, schedule seed and nondet seed through splitmix-style
    mixing, so any failing case replays from [(master_seed, case_id)]
    alone.  Failure artifacts additionally embed the exact (shrunk)
    source lines and schedule, so a corpus file stays a repro even if the
    generator changes. *)

let cases_counter = Dr_obs.Metrics.counter "conformance.cases"

let skips_counter = Dr_obs.Metrics.counter "conformance.skips"

let fail_counter kind =
  Dr_obs.Metrics.counter ("conformance.fail." ^ Oracles.kind_name kind)

(* ---- deterministic case derivation ---- *)

let mix64 h x =
  let h = h lxor x in
  let h = h * 0x9e3779b97f4a7c1 in
  let h = h lxor (h lsr 29) in
  let h = h * 0xbf58476d1ce4e5b in
  (* 30 bits: derived seeds survive a JSON float round-trip exactly *)
  (h lxor (h lsr 32)) land 0x3fffffff

let prog_seed ~master id = mix64 (mix64 master 1) id

let sched_seed ~master id = mix64 (mix64 master 2) id

let nondet_seed ~master id = mix64 (mix64 master 3) id

let fault_seed ~master id = mix64 (mix64 master 4) id

(** Deterministic disk-fault plan for a case: roughly one case in three
    runs fault-free (exercising the spill-identity phase alone), the
    rest get one of the five injected faults; the salt picks the victim
    write/segment/bit. *)
let fault_plan ~master id : Oracles.disk_fault option * int =
  let s = fault_seed ~master id in
  let nfaults = List.length Oracles.all_disk_faults in
  let pick = s mod (nfaults + 2) in
  let fault =
    if pick >= nfaults then None
    else Some (List.nth Oracles.all_disk_faults pick)
  in
  (fault, mix64 s 5)

(* ---- running one case ---- *)

let schedule_steps = 128

let gen_cfg =
  { Dr_lang.Gen.default_cfg with Dr_lang.Gen.max_workers = 2 }

(** Compile [lines] and run all oracles under [sched].  Compile errors
    are [Skip] — the fuzz loop treats the generator producing
    uncompilable source as its own (generator) bug surfaced by the
    skip count, not as a pipeline failure. *)
let check_case ?mutate_slice ?resource ?reexec_clobber
    ~(lines : string array) ~(sched : Sched.t) ~(nondet_seed : int) () :
    Oracles.verdict =
  let src = String.concat "\n" (Array.to_list lines) ^ "\n" in
  match Dr_lang.Codegen.compile_result ~name:"fuzz-case" src with
  | Error msg -> Oracles.Skip ("compile error: " ^ msg)
  | Ok prog ->
    Oracles.check ?mutate_slice ?resource ?reexec_clobber prog
      ~policy:(Sched.policy sched) ~nondet_seed

type failure = {
  fr_case_id : int;
  fr_prog_seed : int;
  fr_nondet_seed : int;
  fr_kind : Oracles.kind;
  fr_detail : string;
  fr_shrink_steps : int;
  fr_lines : string array;  (** shrunk source *)
  fr_sched : Sched.t;  (** shrunk schedule *)
}

type summary = {
  s_master_seed : int;
  s_cases : int;  (** cases attempted (incl. skips) *)
  s_passes : int;
  s_skips : int;
  s_failures : failure list;
  s_elapsed : float;
}

let all_green (s : summary) = s.s_failures = []

(* ---- JSON artifacts ---- *)

let case_schema = "drdebug-fuzz-case-v1"

let failure_json ~master_seed (f : failure) : Dr_util.Json.t =
  Dr_util.Json.Obj
    [ ("schema", Dr_util.Json.Str case_schema);
      ("master_seed", Dr_util.Json.int master_seed);
      ("case_id", Dr_util.Json.int f.fr_case_id);
      ("prog_seed", Dr_util.Json.int f.fr_prog_seed);
      ("nondet_seed", Dr_util.Json.int f.fr_nondet_seed);
      ("oracle", Dr_util.Json.Str (Oracles.kind_name f.fr_kind));
      ("detail", Dr_util.Json.Str f.fr_detail);
      ("shrink_steps", Dr_util.Json.int f.fr_shrink_steps);
      ("source_lines",
       Dr_util.Json.List
         (Array.to_list f.fr_lines |> List.map (fun l -> Dr_util.Json.Str l)));
      ("schedule", Sched.to_json f.fr_sched) ]

let summary_json (s : summary) : Dr_util.Json.t =
  let by_kind =
    List.map
      (fun k ->
        ( Oracles.kind_name k,
          Dr_util.Json.int
            (List.length (List.filter (fun f -> f.fr_kind = k) s.s_failures))
        ))
      Oracles.all_kinds
  in
  Dr_util.Json.Obj
    [ ("schema", Dr_util.Json.Str "drdebug-fuzz-report-v1");
      ("master_seed", Dr_util.Json.int s.s_master_seed);
      ("cases", Dr_util.Json.int s.s_cases);
      ("passes", Dr_util.Json.int s.s_passes);
      ("skips", Dr_util.Json.int s.s_skips);
      ("failures", Dr_util.Json.int (List.length s.s_failures));
      ("failures_by_oracle", Dr_util.Json.Obj by_kind);
      ("elapsed_s", Dr_util.Json.Num s.s_elapsed) ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

(* ---- corpus files: load + replay ---- *)

type corpus_case = {
  cc_lines : string array;
  cc_sched : Sched.t;
  cc_nondet_seed : int;
  cc_oracle : string;  (** the oracle that originally failed *)
  cc_detail : string;
}

let corpus_case_of_json (j : Dr_util.Json.t) : (corpus_case, string) result =
  let ( let* ) = Result.bind in
  let str k =
    match Option.bind (Dr_util.Json.member k j) Dr_util.Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %S" k)
  in
  let num k =
    match Option.bind (Dr_util.Json.member k j) Dr_util.Json.to_float with
    | Some f -> Ok (int_of_float f)
    | None -> Error (Printf.sprintf "missing numeric field %S" k)
  in
  let* schema = str "schema" in
  if schema <> case_schema then
    Error (Printf.sprintf "unsupported schema %S" schema)
  else
    let* lines =
      match Option.bind (Dr_util.Json.member "source_lines" j) Dr_util.Json.to_list with
      | None -> Error "missing list field \"source_lines\""
      | Some items ->
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | Dr_util.Json.Str s :: rest -> go (s :: acc) rest
          | _ -> Error "source_lines: expected strings"
        in
        go [] items
    in
    let* sched =
      match Dr_util.Json.member "schedule" j with
      | None -> Error "missing field \"schedule\""
      | Some s -> Sched.of_json s
    in
    let* cc_nondet_seed = num "nondet_seed" in
    let* cc_oracle = str "oracle" in
    let* cc_detail = str "detail" in
    Ok { cc_lines = lines; cc_sched = sched; cc_nondet_seed; cc_oracle;
         cc_detail }

let load_corpus_case path : (corpus_case, string) result =
  let contents =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  match Dr_util.Json.parse contents with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
    match corpus_case_of_json j with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok c -> Ok c)

(** Re-run all oracles on a stored corpus case.  A fixed bug stays fixed
    when this returns [Pass] (or [Skip] for an environment-dependent
    case). *)
let replay_corpus_case (c : corpus_case) : Oracles.verdict =
  check_case ~lines:c.cc_lines ~sched:c.cc_sched ~nondet_seed:c.cc_nondet_seed
    ()

(* ---- the fuzz loop ---- *)

let gen_case ~master id =
  let lines =
    Dr_lang.Gen.program ~cfg:gen_cfg (prog_seed ~master id)
    |> String.split_on_char '\n' |> Array.of_list
  in
  let sched =
    Dr_lang.Gen.schedule ~threads:(2 + gen_cfg.Dr_lang.Gen.max_workers)
      ~steps:schedule_steps (sched_seed ~master id)
  in
  (lines, sched)

(* The complete, pure input set of a case: everything {!run} uses to
   check it, derived from (master seed, case id) alone. *)
let case_inputs ~disk_faults ~seed case_id =
  let lines, sched = gen_case ~master:seed case_id in
  let nds = nondet_seed ~master:seed case_id in
  let resource =
    if not disk_faults then None
    else begin
      let fault, salt = fault_plan ~master:seed case_id in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "drdebug-fuzz-spill-%d-%d" (Unix.getpid ()) case_id)
      in
      Some { Oracles.r_spill_dir = dir; r_fault = fault; r_salt = salt }
    end
  in
  (lines, sched, nds, resource)

(** Re-run one fuzz case from its coordinates alone — the reproduction
    contract of the (possibly domain-sharded) fuzz farm: a failure
    reported by {!run} with [(seed, case_id)] yields the same verdict
    here, on one domain, with no farm state involved. *)
let replay_case ?mutate_slice ?reexec_clobber ?(disk_faults = false) ~seed
    ~case_id () :
    Oracles.verdict =
  let lines, sched, nds, resource = case_inputs ~disk_faults ~seed case_id in
  check_case ?mutate_slice ?resource ?reexec_clobber ~lines ~sched
      ~nondet_seed:nds ()

(* per-case result, folded into a summary in case-id order *)
type outcome = O_pass | O_skip | O_fail of failure

(* Check one case end-to-end (oracles, shrink, artifact).  Pure in the
   case coordinates apart from [log]/[out_dir] side effects, so it runs
   unchanged on any domain. *)
let run_case ?mutate_slice ?reexec_clobber ~disk_faults ~out_dir ~log ~seed
    case_id : outcome =
  Dr_obs.Metrics.bump cases_counter;
  let lines, sched, nds, resource = case_inputs ~disk_faults ~seed case_id in
  let verdict =
    Dr_obs.Obs.with_span ~cat:"fuzz" "fuzz.case" @@ fun sp ->
    Dr_obs.Obs.add_attr sp "case_id" (Dr_obs.Obs.Int case_id);
    (match resource with
    | Some { Oracles.r_fault; _ } ->
      Dr_obs.Obs.add_attr sp "disk_fault"
        (Dr_obs.Obs.Str
           (match r_fault with
           | Some f -> Oracles.disk_fault_name f
           | None -> "none"))
    | None -> ());
    let v =
      check_case ?mutate_slice ?resource ?reexec_clobber ~lines ~sched
      ~nondet_seed:nds ()
    in
    Dr_obs.Obs.add_attr sp "verdict"
      (Dr_obs.Obs.Str
         (match v with
         | Oracles.Pass -> "pass"
         | Oracles.Skip _ -> "skip"
         | Oracles.Fail f -> Oracles.kind_name f.Oracles.f_kind));
    v
  in
  match verdict with
  | Oracles.Pass -> O_pass
  | Oracles.Skip reason ->
    Dr_obs.Metrics.bump skips_counter;
    log (Printf.sprintf "case %d: skipped (%s)" case_id reason);
    O_skip
  | Oracles.Fail { Oracles.f_kind; f_detail } ->
    Dr_obs.Metrics.bump (fail_counter f_kind);
    log
      (Printf.sprintf "case %d: %s FAILED: %s (shrinking...)" case_id
         (Oracles.kind_name f_kind) f_detail);
    (* keep a reduction iff the same oracle still fails *)
    let still_fails ~lines ~sched =
      match
        check_case ?mutate_slice ?resource ?reexec_clobber ~lines ~sched
      ~nondet_seed:nds ()
      with
      | Oracles.Fail { Oracles.f_kind = k; _ } -> k = f_kind
      | _ -> false
    in
    let s_lines, s_sched, steps =
      Shrink.shrink ~check:still_fails ~lines ~sched ()
    in
    (* re-run the shrunk case for the final failure detail *)
    let detail =
      match
        check_case ?mutate_slice ?resource ?reexec_clobber ~lines:s_lines
          ~sched:s_sched
          ~nondet_seed:nds ()
      with
      | Oracles.Fail { Oracles.f_detail = d; _ } -> d
      | _ -> f_detail
    in
    let f =
      { fr_case_id = case_id; fr_prog_seed = prog_seed ~master:seed case_id;
        fr_nondet_seed = nds; fr_kind = f_kind; fr_detail = detail;
        fr_shrink_steps = steps; fr_lines = s_lines; fr_sched = s_sched }
    in
    (match out_dir with
    | Some d ->
      let path = Filename.concat d (Printf.sprintf "case-%d.json" case_id) in
      write_file path
        (Dr_util.Json.to_string (failure_json ~master_seed:seed f));
      log (Printf.sprintf "case %d: shrunk to %d lines, saved %s" case_id
             (Array.length f.fr_lines) path)
    | None -> ());
    O_fail f

(** Fuzz [runs] cases derived from [seed].  [budget_s] stops the loop
    early (quick mode under [dune runtest]); [out_dir] receives
    [report.json] plus one [case-<id>.json] per (shrunk) failure;
    [mutate_slice] is threaded through to {!Oracles.check} for
    broken-slicer self-tests.  [disk_faults] additionally runs the
    resource-robustness oracle on every case: the trace is rebuilt
    through a disk-spilled segment store and a deterministic, seed-
    derived disk fault plan is injected ({!fault_plan}).

    [domains] > 1 fans cases over that many domains (dynamic
    work-stealing off an atomic cursor — good balance against uneven
    shrink costs).  Because case derivation is pure in [(seed,
    case_id)], sharding changes nothing about any individual case: every
    reported failure replays bit-identically via {!replay_case} on one
    domain, and with no [budget_s] cutoff the summary (counts and
    failure list, ordered by case id) is identical to a sequential
    run's.  Each case's spill directory and artifact file are keyed by
    its case id, so concurrent cases never share disk paths. *)
let run ?mutate_slice ?reexec_clobber ?(disk_faults = false) ?budget_s
    ?out_dir ?(log = ignore)
    ?(domains = 1) ~seed ~runs () : summary =
  let t0 = Dr_util.Timer.now () in
  (match out_dir with Some d -> mkdir_p d | None -> ());
  let within_budget () =
    match budget_s with
    | None -> true
    | Some b -> Dr_util.Timer.now () -. t0 < b
  in
  let results : outcome option array = Array.make (max runs 0) None in
  if domains <= 1 then begin
    let id = ref 0 in
    while !id < runs && within_budget () do
      results.(!id) <-
        Some
          (run_case ?mutate_slice ?reexec_clobber ~disk_faults ~out_dir ~log
             ~seed !id);
      incr id
    done
  end
  else begin
    (* [log] is the only shared sink the workers write concurrently;
       serialize it so interleaved lines stay whole *)
    let log_lock = Mutex.create () in
    let log msg =
      Mutex.lock log_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock log_lock) (fun () -> log msg)
    in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        if not (within_budget ()) then continue := false
        else begin
          let id = Atomic.fetch_and_add next 1 in
          if id >= runs then continue := false
          else
            results.(id) <-
              Some
                (run_case ?mutate_slice ?reexec_clobber ~disk_faults ~out_dir
                   ~log ~seed id)
        end
      done
    in
    Dr_util.Pool.with_pool ~domains (fun pool ->
        Dr_util.Pool.run pool (Array.init domains (fun _ -> worker)))
  end;
  let passes = ref 0 and skips = ref 0 and cases = ref 0 in
  let failures = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some o -> (
        incr cases;
        match o with
        | O_pass -> incr passes
        | O_skip -> incr skips
        | O_fail f -> failures := f :: !failures))
    results;
  let s =
    { s_master_seed = seed; s_cases = !cases; s_passes = !passes;
      s_skips = !skips; s_failures = List.rev !failures;
      s_elapsed = Dr_util.Timer.now () -. t0 }
  in
  (match out_dir with
  | Some d ->
    write_file (Filename.concat d "report.json")
      (Dr_util.Json.to_string (summary_json s))
  | None -> ());
  s
