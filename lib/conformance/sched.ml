(** Realizing the explicit thread schedules of {!Dr_lang.Gen.schedule}
    as a {!Dr_machine.Driver} policy.

    A schedule is an RLE list of [(tid hint, quantum)] steps.  Each hint
    is realized as: step the hinted thread if runnable, else the next
    runnable tid at or after it (wrapping) — deterministic given the
    machine state, so a program plus a schedule fully determines a run.
    When the schedule runs out before the program terminates, the picker
    falls back to round-robin with quantum 1, which is also
    deterministic.  Unlike {!Dr_machine.Driver.Scripted}, a hinted
    schedule can never diverge: blocked hints degrade to the next
    runnable thread instead of raising. *)

open Dr_machine

type t = (int * int) array

(* Next runnable tid at or after [start mod n], wrapping; None when no
   thread is runnable. *)
let next_runnable m start =
  let n = Machine.num_threads m in
  let rec go i k =
    if k = 0 then None
    else if (Machine.thread m i).Machine.state = Machine.Runnable then Some i
    else go ((i + 1) mod n) (k - 1)
  in
  go (((start mod n) + n) mod n) n

(** A fresh driver policy realizing [sched].  The returned policy owns
    its cursor: use one policy per run. *)
let policy (sched : t) : Driver.policy =
  let pos = ref 0 and left = ref 0 and hint = ref 0 in
  Driver.Custom
    (fun m ~last ->
      ignore last;
      if !left <= 0 then
        if !pos < Array.length sched then begin
          let h, q = sched.(!pos) in
          incr pos;
          hint := h;
          left := max q 1
        end
        else begin
          (* schedule exhausted: deterministic round-robin fallback *)
          hint := !hint + 1;
          left := 1
        end;
      decr left;
      next_runnable m !hint)

(* ---- JSON round-trip for corpus files ---- *)

let to_json (sched : t) : Dr_util.Json.t =
  Dr_util.Json.List
    (Array.to_list sched
    |> List.map (fun (tid, q) ->
           Dr_util.Json.List [ Dr_util.Json.int tid; Dr_util.Json.int q ]))

let of_json (j : Dr_util.Json.t) : (t, string) result =
  match Dr_util.Json.to_list j with
  | None -> Error "schedule: expected a list"
  | Some items ->
    let step = function
      | Dr_util.Json.List [ Dr_util.Json.Num tid; Dr_util.Json.Num q ] ->
        Ok (int_of_float tid, int_of_float q)
      | _ -> Error "schedule: expected [tid, quantum] pairs"
    in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | x :: rest -> (
        match step x with Ok p -> go (p :: acc) rest | Error e -> Error e)
    in
    go [] items
