(** The seven pipeline oracles of the conformance subsystem.

    One fuzz case drives the whole DrDebug pipeline —
    log -> pinball save/load -> replay -> trace -> slice (three drivers)
    -> exclusion build -> relog -> slice replay — and checks an oracle at
    every seam:

    {ol
    {- {e replay determinism}: two independent replays of the pinball
       produce the same chained {!Dr_pinplay.Exec_digest} over every
       retired instruction, the same step count and the same output;}
    {- {e pinball roundtrip}: encode -> decode -> encode is byte-for-byte
       stable and the container passes integrity verification;}
    {- {e driver agreement}: the indexed, LP-scan and plain-scan slicers
       produce identical positions and (canonicalized) edges on several
       criteria;}
    {- {e slice soundness}: (a) slice replay with injected side effects
       reproduces the original r0 value at every slice statement and the
       original output subsequence; (b) a forward {e re-execution} of the
       {e unpruned} dependence closure (plus forced sync records) from
       the region snapshot — with {e no} injections, nondet fed from the
       recorded log, and the untracked sp/fp treated as ambient —
       reproduces the values used and defined by the criterion.  (b) is
       the oracle that catches an unsound slicer: injections would mask
       a dropped dependence, pure re-execution cannot.  It runs on the
       unpruned closure because save/restore pruning bypasses the
       excluded restore and is only value-faithful under the relogger's
       injections, which (a) checks;}
    {- {e exclusion sanity}: an independent walk of the per-thread traces
       under the relogger's flag semantics confirms no slice record falls
       inside an exclusion region and every bounded region closes;}
    {- {e static slice bound}: on programs whose refined CFG is fully
       resolved (no unknown indirect targets, every thread entered at a
       statically known entry), the pc set of every dynamic slice is
       contained in the static backward slice of its criterion's pc
       ({!Dr_static.Pdg}) — the static PDG must over-approximate every
       dynamic dependence;}
    {- {e resource robustness} (opt-in via [resource]): the trace
       rebuilt through a disk-spilled {!Dr_slicing.Segment_store} yields
       slices identical to the in-memory run on all four drivers, and an
       injected disk fault (ENOSPC, short write, bit flip, truncation,
       deletion) never yields a {e wrong} slice — only an identical one,
       a structured {!Dr_util.Budget.Resource_error}, or a result
       honestly marked truncated that is a subset of the clean slice.}} *)

open Dr_machine
open Dr_pinplay
open Dr_slicing

type kind =
  | Replay_determinism
  | Pinball_roundtrip
  | Driver_agreement
  | Slice_soundness
  | Exclusion_sanity
  | Static_slice_bound
  | Resource_robustness
  | Race_soundness

let all_kinds =
  [ Replay_determinism; Pinball_roundtrip; Driver_agreement; Slice_soundness;
    Exclusion_sanity; Static_slice_bound; Resource_robustness; Race_soundness ]

let kind_name = function
  | Replay_determinism -> "replay-determinism"
  | Pinball_roundtrip -> "pinball-roundtrip"
  | Driver_agreement -> "driver-agreement"
  | Slice_soundness -> "slice-soundness"
  | Exclusion_sanity -> "exclusion-sanity"
  | Static_slice_bound -> "static-slice-bound"
  | Resource_robustness -> "resource-robustness"
  | Race_soundness -> "race-soundness"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

type failure = { f_kind : kind; f_detail : string }

type verdict = Pass | Fail of failure | Skip of string

exception Oracle of failure

exception Skipped of string

let fail kind fmt =
  Printf.ksprintf (fun d -> raise (Oracle { f_kind = kind; f_detail = d })) fmt

(* each oracle stage runs under its own span so fuzz --stats can report
   per-oracle wall time *)
let oracle_span kind f =
  Dr_obs.Obs.with_span ~cat:"oracle" ("oracle." ^ kind_name kind) @@ fun _ ->
  f ()

(** Step bound per case: generated programs terminate well under this;
    anything longer is a runaway we skip rather than fuzz. *)
let max_case_steps = 2_000_000

(* splitmix-style chaining for run digests *)
let mix h x =
  let h = h lxor x in
  let h = h * 0x9e3779b97f4a7c1 in
  let h = h lxor (h lsr 29) in
  let h = h * 0xbf58476d1ce4e5b in
  h lxor (h lsr 32)

(* ---- oracle 1: replay determinism ---- *)

(* One full replay, reduced to (chained digest, steps, output). *)
let replay_digest prog pb =
  let r = Replayer.create prog pb in
  let m = Replayer.machine r in
  let h = ref 0 and steps = ref 0 in
  let hooks =
    { Driver.on_event =
        (fun ev ->
          incr steps;
          h := mix !h (Exec_digest.hash m ev ~step:!steps)) }
  in
  (try ignore (Replayer.resume ~hooks r)
   with Replayer.Divergence d ->
     fail Replay_determinism "replay diverged: %s" (Replayer.divergence_message d));
  (!h land max_int, !steps, Machine.output_list m)

let check_determinism prog pb =
  let h1, s1, o1 = replay_digest prog pb in
  let h2, s2, o2 = replay_digest prog pb in
  if (h1, s1, o1) <> (h2, s2, o2) then
    fail Replay_determinism
      "two replays disagree: digests %d/%d, steps %d/%d, outputs %s/%s" h1 h2
      s1 s2
      (String.concat "," (List.map string_of_int o1))
      (String.concat "," (List.map string_of_int o2))

(* ---- oracle 2: pinball roundtrip stability ---- *)

let check_roundtrip pb =
  let b1 = Pinball.to_bytes pb in
  let report = Pinball.verify_bytes b1 in
  if not (Pinball.report_ok report) then
    fail Pinball_roundtrip "fresh container fails verification: %s"
      (String.concat "; " report.Pinball.r_problems);
  let pb2 =
    try Pinball.of_bytes b1
    with Pinball.Pinball_error e ->
      fail Pinball_roundtrip "decode failed: %s" (Pinball.error_to_string e)
  in
  let b2 = Pinball.to_bytes pb2 in
  if not (String.equal b1 b2) then
    fail Pinball_roundtrip "re-encoded container differs (%d vs %d bytes)"
      (String.length b1) (String.length b2)

(* ---- oracle 3: driver agreement ---- *)

let slice_signature (s : Slicer.t) =
  ( Array.to_list s.Slicer.positions,
    List.sort compare
      (List.map
         (fun e -> (e.Slicer.from_pos, e.Slicer.to_pos, e.Slicer.kind))
         (Array.to_list s.Slicer.edges)) )

(* Five drivers: indexed, scan+LP-skip, plain scan, scan with the
   static pre-filter, and on-demand re-execution (record lookups
   replayed from checkpoints — no stored-record walk).  Returns the
   indexed slice so the caller can reuse it. *)
let check_agreement gt ~lp ~pairs ~sf ~rx crit =
  let a = Slicer.compute ~lp ~pairs ~indexed:true gt crit in
  let b = Slicer.compute ~lp ~pairs ~indexed:false ~block_skipping:true gt crit in
  let c = Slicer.compute ~lp ~pairs ~indexed:false ~block_skipping:false gt crit in
  let d =
    Slicer.compute ~lp ~pairs ~indexed:false ~block_skipping:true
      ~static_filter:sf gt crit
  in
  let e = Slicer.compute ~lp ~pairs ~driver:(`Reexec rx) gt crit in
  let sa = slice_signature a
  and sb = slice_signature b
  and sc = slice_signature c
  and sd = slice_signature d
  and se = slice_signature e in
  if sa <> sb || sb <> sc || sc <> sd || sd <> se then
    fail Driver_agreement
      "drivers disagree at crit_pos %d: indexed %d, scan+skip %d, scan %d, \
       scan+static %d, reexec %d positions"
      crit.Slicer.crit_pos (Slicer.size a) (Slicer.size b) (Slicer.size c)
      (Slicer.size d) (Slicer.size e);
  a

(* ---- oracle 6: static slice as a soundness bound ---- *)

(* Every pc in a dynamic slice must lie in the static backward slice of
   the criterion's pc: the static PDG over-approximates every dynamic
   dependence (register RD is thread-blind, memory is one global cell,
   control regions cover the dynamic tracker's [branch, ipdom) marks).
   The bound only holds when the super-CFG is complete — every indirect
   jump/call resolved by refinement — and every thread entered at a
   statically known entry (the program entry or an address-taken
   function).  When a precondition fails the oracle checks nothing
   rather than reporting Skip: corpus replay treats Skip as a failure,
   and an unresolved CFG is a property of the program, not a bug. *)
let check_static_bound prog (c : Collector.result) gt
    ~(slices : (int * Slicer.t) list) =
  let pdg =
    Dr_static.Pdg.build ~indirect_targets:c.Collector.indirect_targets prog
  in
  let known_entries =
    prog.Dr_isa.Program.entry :: Dr_static.Pdg.address_taken_entries pdg
  in
  let entries_known =
    Array.for_all
      (fun gseqs ->
        Array.length gseqs = 0
        || List.mem
             (Segment_store.get c.Collector.records gseqs.(0)).Trace.pc
             known_entries)
      c.Collector.per_thread
  in
  if Dr_static.Pdg.fully_resolved pdg && entries_known then
    List.iter
      (fun (pos, (slice : Slicer.t)) ->
        let crit_pc = (Global_trace.record gt pos).Trace.pc in
        let bound = Dr_static.Pdg.backward_slice pdg ~pc:crit_pc in
        Array.iter
          (fun p ->
            let pc = (Global_trace.record gt p).Trace.pc in
            if not (Dr_util.Bitset.mem bound pc) then
              fail Static_slice_bound
                "dynamic slice at crit_pos %d (pc %d) contains pc %d outside \
                 its static backward slice"
                pos crit_pc pc)
          slice.Slicer.positions)
      slices

(* ---- oracle 8: race soundness ---- *)

(* Every dynamically-observed unsynchronized conflicting access pair must
   appear in the static race candidate set.  Gated like oracle 6: the
   static detector is only a sound over-approximation when the refined
   CFG is fully resolved (including every spawn target) and every dynamic
   thread starts at a statically known entry.  The dynamic side
   ({!Racecheck}) under-reports by construction — per-thread must-held
   locksets are supersets of the static must-locksets, and its vector
   clocks encode exactly the spawn/join/signal orderings the static HB
   skeleton under-approximates — so a dynamic pair escaping the static
   set is a genuine soundness bug in {!Dr_static.Race}. *)
let check_race_soundness prog (c : Collector.result) pb =
  let race =
    Dr_static.Race.analyze ~indirect_targets:c.Collector.indirect_targets prog
  in
  let known_entries =
    prog.Dr_isa.Program.entry
    :: List.map
         (fun i -> race.Dr_static.Race.cg.Dr_static.Callgraph.entries.(i))
         race.Dr_static.Race.cg.Dr_static.Callgraph.address_taken
  in
  let entries_known =
    Array.for_all
      (fun gseqs ->
        Array.length gseqs = 0
        || List.mem
             (Segment_store.get c.Collector.records gseqs.(0)).Trace.pc
             known_entries)
      c.Collector.per_thread
  in
  if Dr_static.Race.fully_resolved race && entries_known then begin
    let dyn =
      try Racecheck.observe_pinball prog pb
      with Replayer.Divergence d ->
        fail Race_soundness "race-check replay diverged: %s"
          (Replayer.divergence_message d)
    in
    List.iter
      (fun (r : Racecheck.race) ->
        if not (Dr_static.Race.is_candidate race r.Racecheck.r_pc_a r.Racecheck.r_pc_b)
        then
          fail Race_soundness
            "dynamic race on addr %d (tid %d pc %d %s / tid %d pc %d %s) is \
             not a static race candidate"
            r.Racecheck.r_addr r.Racecheck.r_tid_a r.Racecheck.r_pc_a
            (if r.Racecheck.r_write_a then "write" else "read")
            r.Racecheck.r_tid_b r.Racecheck.r_pc_b
            (if r.Racecheck.r_write_b then "write" else "read"))
      dyn.Racecheck.races
  end

(* ---- oracle 5: exclusion-region sanity ---- *)

(* Re-walk each thread's records under the relogger's flag semantics
   (end marker included; empty regions exclude nothing) and confirm no
   slice record is flagged and every bounded region closes. *)
let check_exclusions ~exclusions ~(c : Collector.result) ~in_slice =
  let records = c.Collector.records in
  Array.iteri
    (fun tid gseqs ->
      let queue =
        ref (List.filter (fun x -> x.Relogger.x_tid = tid) exclusions)
      in
      let flag = ref false in
      Array.iter
        (fun g ->
          let r = Segment_store.get records g in
          let pc = r.Trace.pc and inst = r.Trace.instance in
          let check_end () =
            if !flag then
              match !queue with
              | { Relogger.x_end = Some (epc, einst); _ } :: rest
                when epc = pc && einst = inst ->
                flag := false;
                queue := rest
              | _ -> ()
          in
          check_end ();
          (if not !flag then
             match !queue with
             | { Relogger.x_start_pc; x_start_instance; _ } :: _
               when x_start_pc = pc && x_start_instance = inst ->
               flag := true;
               check_end ()
             | _ -> ());
          if !flag && Dr_util.Bitset.mem in_slice g then
            fail Exclusion_sanity
              "slice record inside an exclusion region: tid=%d pc=%d \
               instance=%d (gseq %d)"
              tid pc inst g)
        gseqs;
      if !flag then
        match !queue with
        | { Relogger.x_end = Some (epc, einst); _ } :: _ ->
          fail Exclusion_sanity
            "tid %d: bounded exclusion region never reached its end marker \
             (pc %d instance %d)"
            tid epc einst
        | _ -> ())
    c.Collector.per_thread

(* ---- observation replay (feeds both soundness checks) ---- *)

type observed = {
  o_nondet : (int, int) Hashtbl.t;  (** gseq -> recorded nondet result *)
  o_sp_fp : int array;  (** pre-step (sp, fp) per gseq, flattened *)
  o_sync_regs : (int, int array) Hashtbl.t;
      (** pre-step register file of forced (sync/final-ret) records *)
  o_r0 : (int * int, int list ref) Hashtbl.t;
      (** (tid, pc) -> post-step r0 of every {e included} record, in
          execution order (reversed while building).  Slice replay steps
          exactly the included records, preserving per-thread order, so
          its k-th execution of (tid, pc) pairs with the k-th entry. *)
  o_crit_uses : (int * int) list;  (** (loc, pre-step value) at criterion *)
  o_crit_defs : (int * int) list;  (** (loc, post-step value) at criterion *)
  o_prints : int list;  (** print values at included records, in order *)
}

let observe prog pb (c : Collector.result) ~included ~crit_gseq :
    observed =
  let nrec = Segment_store.length c.Collector.records in
  let file_size = Dr_isa.Reg.file_size in
  let o_nondet = Hashtbl.create 64 in
  let o_sp_fp = Array.make (max 1 (2 * nrec)) 0 in
  let o_sync_regs = Hashtbl.create 64 in
  let o_r0 = Hashtbl.create 256 in
  let o_crit_uses = ref [] and o_crit_defs = ref [] in
  let prints = ref [] in
  let r = Replayer.create prog pb in
  let m = Replayer.machine r in
  (* shadow register files: each thread's post-step registers so far,
     i.e. the pre-step registers of its next record *)
  let shadows = Hashtbl.create 8 in
  let shadow tid =
    match Hashtbl.find_opt shadows tid with
    | Some a -> a
    | None ->
      let a = Array.make file_size 0 in
      (match
         List.find_opt
           (fun t -> t.Snapshot.s_tid = tid)
           pb.Pinball.snapshot.Snapshot.threads
       with
      | Some t -> Array.blit t.Snapshot.s_regs 0 a 0 file_size
      | None -> ());
      Hashtbl.replace shadows tid a;
      a
  in
  let g = ref 0 in
  let hooks =
    { Driver.on_event =
        (fun ev ->
          let gseq = !g in
          incr g;
          if gseq >= nrec then
            fail Replay_determinism
              "observation replay retired more instructions (%d) than the \
               collected trace (%d)"
              (gseq + 1) nrec;
          let rec_ = Segment_store.get c.Collector.records gseq in
          let tid = ev.Event.tid in
          if rec_.Trace.tid <> tid || rec_.Trace.pc <> ev.Event.pc then
            fail Replay_determinism
              "observation replay diverged from the collected trace at gseq \
               %d: got tid=%d pc=%d, recorded tid=%d pc=%d"
              gseq tid ev.Event.pc rec_.Trace.tid rec_.Trace.pc;
          let pre = shadow tid in
          o_sp_fp.(2 * gseq) <- pre.(Dr_isa.Reg.sp);
          o_sp_fp.((2 * gseq) + 1) <- pre.(Dr_isa.Reg.fp);
          if Dr_exeslice.Exclusion.forced rec_ then
            Hashtbl.replace o_sync_regs gseq (Array.copy pre);
          (match ev.Event.sys with
          | Event.Sys_nondet { result; _ } -> Hashtbl.replace o_nondet gseq result
          | Event.Sys_print v -> if included gseq then prints := v :: !prints
          | _ -> ());
          (if included gseq then
             let r0 = (Machine.thread m tid).Machine.regs.(0) in
             match Hashtbl.find_opt o_r0 (tid, rec_.Trace.pc) with
             | Some l -> l := r0 :: !l
             | None -> Hashtbl.replace o_r0 (tid, rec_.Trace.pc) (ref [ r0 ]));
          if gseq = crit_gseq then begin
            o_crit_uses :=
              Array.to_list rec_.Trace.uses
              |> List.map (fun l ->
                     match Dr_isa.Loc.view l with
                     | Dr_isa.Loc.Reg { tid = rt; reg } ->
                       (l, (shadow rt).(reg))
                     | Dr_isa.Loc.Mem _ -> (l, ev.Event.mem_read_value));
            o_crit_defs :=
              Array.to_list rec_.Trace.defs
              |> List.map (fun l ->
                     match Dr_isa.Loc.view l with
                     | Dr_isa.Loc.Reg { tid = rt; reg } ->
                       (l, (Machine.thread m rt).Machine.regs.(reg))
                     | Dr_isa.Loc.Mem _ -> (l, ev.Event.mem_write_value))
          end;
          Array.blit (Machine.thread m tid).Machine.regs 0 pre 0 file_size;
          match ev.Event.sys with
          | Event.Sys_spawn { child; _ } ->
            Array.blit
              (Machine.thread m child).Machine.regs
              0 (shadow child) 0 file_size
          | _ -> ()) }
  in
  (try ignore (Replayer.resume ~hooks r)
   with Replayer.Divergence d ->
     fail Replay_determinism "observation replay diverged: %s"
       (Replayer.divergence_message d));
  { o_nondet; o_sp_fp; o_sync_regs; o_r0;
    o_crit_uses = !o_crit_uses; o_crit_defs = !o_crit_defs;
    o_prints = List.rev !prints }

(* ---- oracle 4a: slice replay with injections ---- *)

let check_slice_replay prog spb (obs : observed) =
  let expected = Hashtbl.create 128 in
  Hashtbl.iter
    (fun k l -> Hashtbl.replace expected k (Array.of_list (List.rev !l)))
    obs.o_r0;
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  let sm = Dr_exeslice.Slice_replay.machine sr in
  let counts = Hashtbl.create 128 in
  let rec go () =
    match Dr_exeslice.Slice_replay.step sr with
    | Dr_exeslice.Slice_replay.Stepped { tid; pc; _ } ->
      let k = (tid, pc) in
      let i = 1 + Option.value ~default:0 (Hashtbl.find_opt counts k) in
      Hashtbl.replace counts k i;
      (match Hashtbl.find_opt expected k with
      | Some vs when i <= Array.length vs ->
        let v = vs.(i - 1) in
        let got = (Machine.thread sm tid).Machine.regs.(0) in
        if got <> v then
          fail Slice_soundness
            "slice replay: r0=%d after execution %d of tid=%d pc=%d, \
             original had %d"
            got i tid pc v
      | Some vs ->
        fail Slice_soundness
          "slice replay executed tid=%d pc=%d %d times, original included \
           only %d"
          tid pc i (Array.length vs)
      | None ->
        fail Slice_soundness
          "slice replay executed tid=%d pc=%d, which the original never \
           included"
          tid pc);
      go ()
    | Dr_exeslice.Slice_replay.Injected _ -> go ()
    | Dr_exeslice.Slice_replay.Finished _ | Dr_exeslice.Slice_replay.End_of_slice
      ->
      ()
  in
  (try go ()
   with Dr_exeslice.Slice_replay.Divergence msg ->
     fail Slice_soundness "slice replay diverged: %s" msg);
  let out = Machine.output_list sm in
  if out <> obs.o_prints then
    fail Slice_soundness "slice replay output [%s] differs from original [%s]"
      (String.concat "," (List.map string_of_int out))
      (String.concat "," (List.map string_of_int obs.o_prints))

(* ---- oracle 4b: forward re-execution without injections ---- *)

let check_reexec prog pb (c : Collector.result) ~included ~in_slice ~crit_gseq
    (obs : observed) =
  let m = Snapshot.restore prog pb.Pinball.snapshot in
  let file_size = Dr_isa.Reg.file_size in
  let cur = ref (-1) in
  let nondet _kind =
    match Hashtbl.find_opt obs.o_nondet !cur with
    | Some v -> v
    | None ->
      fail Slice_soundness "re-execution: nondet result missing for gseq %d"
        !cur
  in
  for g = 0 to crit_gseq do
    if included g then begin
      let r = Segment_store.get c.Collector.records g in
      if Machine.outcome m <> Machine.Running then
        fail Slice_soundness
          "re-execution terminated before the criterion (at gseq %d)" g;
      if r.Trace.tid >= Machine.num_threads m then
        fail Slice_soundness "re-execution: thread %d does not exist at gseq %d"
          r.Trace.tid g;
      let th = Machine.thread m r.Trace.tid in
      if th.Machine.state <> Machine.Runnable then
        fail Slice_soundness
          "re-execution: thread %d not runnable at gseq %d (pc %d)" r.Trace.tid
          g r.Trace.pc;
      th.Machine.pc <- r.Trace.pc;
      (match Hashtbl.find_opt obs.o_sync_regs g with
      | Some regs when not (Dr_util.Bitset.mem in_slice g) ->
        (* forced sync record outside the slice: its operands are not in
           the dependence closure, so restore its full register file *)
        Array.blit regs 0 th.Machine.regs 0 file_size
      | _ ->
        (* sp/fp are untracked by dependence collection (ambient, as in
           binary slicers): pin them to their recorded values *)
        th.Machine.regs.(Dr_isa.Reg.sp) <- obs.o_sp_fp.(2 * g);
        th.Machine.regs.(Dr_isa.Reg.fp) <- obs.o_sp_fp.((2 * g) + 1));
      let pre =
        if g = crit_gseq then Array.copy th.Machine.regs else [||]
      in
      cur := g;
      let ev = Machine.step m ~tid:r.Trace.tid ~nondet in
      (match Machine.outcome m with
      | Machine.Fault { msg; _ } ->
        fail Slice_soundness "re-execution faulted at gseq %d: %s" g msg
      | _ -> ());
      if not ev.Event.retired then
        fail Slice_soundness
          "re-execution: included instruction blocked at gseq %d (tid %d pc \
           %d)"
          g r.Trace.tid r.Trace.pc;
      if g = crit_gseq then begin
        List.iter
          (fun (l, v) ->
            let got =
              match Dr_isa.Loc.view l with
              | Dr_isa.Loc.Reg { reg; _ } -> pre.(reg)
              | Dr_isa.Loc.Mem _ -> ev.Event.mem_read_value
            in
            if got <> v then
              fail Slice_soundness
                "re-execution: criterion use %s = %d, original %d"
                (Dr_isa.Loc.to_string l) got v)
          obs.o_crit_uses;
        List.iter
          (fun (l, v) ->
            let got =
              match Dr_isa.Loc.view l with
              | Dr_isa.Loc.Reg { tid = rt; reg } ->
                (Machine.thread m rt).Machine.regs.(reg)
              | Dr_isa.Loc.Mem _ -> ev.Event.mem_write_value
            in
            if got <> v then
              fail Slice_soundness
                "re-execution: criterion def %s = %d, original %d"
                (Dr_isa.Loc.to_string l) got v)
          obs.o_crit_defs
      end
    end
  done

(* ---- oracle 7: resource robustness ---- *)

(* A corrupted or missing trace segment must never yield a WRONG slice:
   the only acceptable endings are (a) a slice identical to the
   in-memory one (the fault hit nothing that was read), (b) a structured
   Resource_error, or (c) a result honestly marked truncated whose
   positions are a subset of the clean slice.  Phase A (no fault) is the
   spill-identity half of the oracle: the same trace rebuilt through a
   budgeted store — every segment on disk — must produce slices
   byte-identical to the in-memory run on all four drivers. *)

type disk_fault =
  | Fault_enospc_sim  (** a spill write fails as if the disk were full *)
  | Fault_short  (** a spill write silently persists only a prefix *)
  | Fault_bit_flip  (** one bit of a spilled segment flips on disk *)
  | Fault_truncate  (** a spilled segment loses its tail *)
  | Fault_delete  (** a spilled segment disappears *)

let all_disk_faults =
  [ Fault_enospc_sim; Fault_short; Fault_bit_flip; Fault_truncate;
    Fault_delete ]

let disk_fault_name = function
  | Fault_enospc_sim -> "enospc"
  | Fault_short -> "short-write"
  | Fault_bit_flip -> "bit-flip"
  | Fault_truncate -> "truncate"
  | Fault_delete -> "delete"

type resource_config = {
  r_spill_dir : string;  (** per-case scratch dir for spilled segments *)
  r_fault : disk_fault option;  (** [None]: spill-identity phase only *)
  r_salt : int;  (** picks the victim write/segment/bit, deterministically *)
}

(** Records per segment in oracle runs — small, so even short fuzz
    traces span several segments. *)
let oracle_seg_records = 64

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let apply_file_fault fault ~salt path =
  match fault with
  | Fault_delete -> Sys.remove path
  | Fault_truncate ->
    let data = read_whole_file path in
    let keep = salt mod max 1 (String.length data) in
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (String.sub data 0 keep))
  | Fault_bit_flip ->
    let data = Bytes.of_string (read_whole_file path) in
    if Bytes.length data > 0 then begin
      let bit = salt mod (Bytes.length data * 8) in
      let byte = bit / 8 in
      Bytes.set_uint8 data byte
        (Bytes.get_uint8 data byte lxor (1 lsl (bit mod 8)));
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Bytes.to_string data))
    end
  | Fault_enospc_sim | Fault_short -> invalid_arg "apply_file_fault: write fault"

(* best-effort removal of a per-case spill directory *)
let cleanup_spill_dir dir =
  (match Sys.readdir dir with
  | entries ->
    Array.iter
      (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
      entries
  | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let check_resource ~(rc : resource_config) (c : Collector.result) ~crit_pos
    ~(clean : Slicer.t) =
  let clean_sig = slice_signature clean in
  let clean_pos = clean.Slicer.positions in
  let crit = { Slicer.crit_pos; crit_locs = None } in
  let spilled_rebuild () =
    (* mem budget 0: every completed segment (and the sealed tail) must
       go to disk *)
    let budget =
      Dr_util.Budget.create ~mem_bytes:0 ~spill_dir:rc.r_spill_dir ()
    in
    let store =
      Segment_store.rebuild ~budget ~seg_records:oracle_seg_records
        ~cache_segments:2 c.Collector.records
    in
    (budget, store)
  in
  let slice_sig_of_store ?(driver = `Indexed) store =
    let gt = Global_trace.construct { c with Collector.records = store } in
    let s =
      match driver with
      | `Indexed -> Slicer.compute ~pairs:c.Collector.pairs ~indexed:true gt crit
      | `Scan_skip ->
        Slicer.compute ~pairs:c.Collector.pairs ~indexed:false
          ~block_skipping:true gt crit
      | `Scan ->
        Slicer.compute ~pairs:c.Collector.pairs ~indexed:false
          ~block_skipping:false gt crit
      | `Governed budget ->
        (Slicer.compute_governed ~pairs:c.Collector.pairs ~budget gt crit)
          .Slicer.g_slice
    in
    (slice_signature s, s)
  in
  Fun.protect ~finally:(fun () -> cleanup_spill_dir rc.r_spill_dir)
  @@ fun () ->
  (* Phase A: spill identity, all four drivers *)
  let budget, store = spilled_rebuild () in
  if Segment_store.length store > 0 && Segment_store.spilled_segments store = 0
  then
    fail Resource_robustness
      "a zero memory budget rebuilt the trace without spilling any segment";
  List.iter
    (fun (name, driver) ->
      let sg, s = slice_sig_of_store ~driver store in
      if s.Slicer.stats.Slicer.truncated then
        fail Resource_robustness
          "spilled %s slice marked truncated with no time budget" name;
      if sg <> clean_sig then
        fail Resource_robustness
          "spilled %s slice differs from the in-memory slice at crit_pos %d \
           (%d vs %d positions)"
          name crit_pos (Slicer.size s) (Slicer.size clean))
    [ ("indexed", `Indexed); ("scan+skip", `Scan_skip); ("scan", `Scan);
      ("governed", `Governed budget) ];
  (* the zero budget must also have forced the governed ladder down *)
  if Dr_util.Budget.degradations budget = [] then
    fail Resource_robustness
      "governed slicing under a zero memory budget recorded no degradation";
  List.iter
    (fun (_, p) -> try Sys.remove p with Sys_error _ -> ())
    (Segment_store.spilled_paths store);
  (* Phase B: one injected fault; never a wrong slice *)
  match rc.r_fault with
  | None -> ()
  | Some fault ->
    let faulted_store =
      match fault with
      | Fault_enospc_sim | Fault_short ->
        (* hit the (salt mod 3 + 1)-th spill write *)
        let target = 1 + (rc.r_salt mod 3) in
        let writes = ref 0 in
        Segment_store.set_write_fault_hook (fun _ ->
            incr writes;
            if !writes = target then
              match fault with
              | Fault_enospc_sim -> Some Segment_store.Fault_enospc
              | _ -> Some (Segment_store.Fault_short_write (rc.r_salt mod 48))
            else None);
        Fun.protect ~finally:Segment_store.clear_write_fault_hook (fun () ->
            try Ok (snd (spilled_rebuild ()))
            with Dr_util.Budget.Resource_error e -> Error e)
      | Fault_bit_flip | Fault_truncate | Fault_delete -> (
        let _, store = spilled_rebuild () in
        match Segment_store.spilled_paths store with
        | [] -> Ok store
        | paths ->
          let _, path = List.nth paths (rc.r_salt mod List.length paths) in
          apply_file_fault fault ~salt:rc.r_salt path;
          Ok store)
    in
    (match faulted_store with
    | Error _ -> ()  (* ending (b): a structured Resource_error *)
    | Ok store -> (
      match slice_sig_of_store store with
      | exception Dr_util.Budget.Resource_error _ -> ()  (* ending (b) *)
      | sg, s ->
        if s.Slicer.stats.Slicer.truncated then begin
          (* ending (c): honestly-marked partial — must be a subset *)
          let clean_set = Hashtbl.create (Array.length clean_pos) in
          Array.iter (fun p -> Hashtbl.replace clean_set p ()) clean_pos;
          Array.iter
            (fun p ->
              if not (Hashtbl.mem clean_set p) then
                fail Resource_robustness
                  "truncated slice after %s fault contains position %d not \
                   in the clean slice"
                  (disk_fault_name fault) p)
            s.Slicer.positions
        end
        else if sg <> clean_sig then
          (* the one forbidden ending: a silently wrong slice *)
          fail Resource_robustness
            "slice after %s fault differs from the clean slice without an \
             error or truncation mark (%d vs %d positions)"
            (disk_fault_name fault) (Slicer.size s) (Slicer.size clean)))

(* ---- the full pipeline for one case ---- *)

(** Run every stage and every oracle on [prog] under [policy].
    [mutate_slice] is a test hook: it rewrites the slice before exclusion
    building, standing in for a broken slicer — a mutation that drops a
    needed statement must be caught by the soundness oracle.
    [nondet_seed] seeds the native rand/time/read results of the logged
    run.  [resource] additionally runs the resource-robustness oracle:
    the trace is rebuilt through a disk-spilled segment store (and
    optionally hit with one injected disk fault) and the outcome checked
    against the in-memory slice. *)
let check ?mutate_slice ?resource ?reexec_clobber (prog : Dr_isa.Program.t)
    ~(policy : Driver.policy) ~(nondet_seed : int) : verdict =
  try
    match
      Logger.log ~policy ~nondet_seed ~max_steps:max_case_steps prog
        Logger.Whole
    with
    | Error e -> Skip (Format.asprintf "logging failed: %a" Logger.pp_error e)
    | Ok (pb, stats) ->
      (match stats.Logger.stop with
      | Driver.Terminated (Machine.Exited _) -> ()
      | r ->
        raise
          (Skipped
             (Format.asprintf "run did not exit cleanly: %a"
                Driver.pp_stop_reason r)));
      oracle_span Pinball_roundtrip (fun () -> check_roundtrip pb);
      oracle_span Replay_determinism (fun () -> check_determinism prog pb);
      let c = Collector.collect prog pb in
      let gt = Global_trace.construct c in
      let n = Global_trace.length gt in
      if n = 0 then raise (Skipped "empty trace");
      let lp = Lp.prepare gt in
      let pairs = c.Collector.pairs in
      (* The soundness criterion is the last print record — a
         value-bearing statement, as when slicing at a failure point.
         The final ret would slice only through control deps, which the
         value-comparing soundness oracle cannot exercise. *)
      let is_print (r : Trace.record) =
        match Dr_isa.Program.instr prog r.Trace.pc with
        | Some (Dr_isa.Instr.Sys Dr_isa.Instr.Print) -> true
        | _ -> false
      in
      let crit_pos =
        match Global_trace.find_last gt ~p:is_print with
        | Some p -> p
        | None -> n - 1
      in
      let crits = List.sort_uniq compare [ n / 4; n / 2; n - 1; crit_pos ] in
      let slices =
        oracle_span Driver_agreement @@ fun () ->
        let code = prog.Dr_isa.Program.code in
        let ncode = Array.length code in
        let sf =
          Lp.prepare_static lp gt
            ~reg_defs:(fun pc ->
              if pc >= 0 && pc < ncode then Dr_static.Defuse.def_mask code.(pc)
              else 0)
            ~writes_mem:(fun pc ->
              pc >= 0 && pc < ncode && Dr_static.Defuse.writes_mem code.(pc))
        in
        (* the refined CFG the collector used, so re-derived control
           dependences match the stored records exactly *)
        let rx =
          Reexec.create ~cfg:c.Collector.cfg ~ckpt_interval:64
            ?clobber:reexec_clobber prog pb
        in
        List.map
          (fun p ->
            ( p,
              check_agreement gt ~lp ~pairs ~sf ~rx
                { Slicer.crit_pos = p; crit_locs = None } ))
          crits
      in
      oracle_span Static_slice_bound (fun () ->
          check_static_bound prog c gt ~slices);
      oracle_span Race_soundness (fun () -> check_race_soundness prog c pb);
      let slice0 = List.assoc crit_pos slices in
      (match resource with
      | Some rc ->
        oracle_span Resource_robustness (fun () ->
            check_resource ~rc c ~crit_pos ~clean:slice0)
      | None -> ());
      let slice =
        match mutate_slice with None -> slice0 | Some f -> f slice0
      in
      let crit_gseq = (Global_trace.record gt crit_pos).Trace.gseq in
      let nrec = Segment_store.length c.Collector.records in
      let in_slice = Dr_util.Bitset.create nrec in
      Array.iter
        (fun pos ->
          Dr_util.Bitset.add in_slice (Global_trace.record gt pos).Trace.gseq)
        slice.Slicer.positions;
      let included g =
        Dr_util.Bitset.mem in_slice g
        || Dr_exeslice.Exclusion.forced (Segment_store.get c.Collector.records g)
      in
      let exclusions, _xstats =
        Dr_exeslice.Exclusion.build ~slice ~collector:c
      in
      oracle_span Exclusion_sanity (fun () ->
          check_exclusions ~exclusions ~c ~in_slice);
      let spb =
        try Relogger.relog prog pb ~exclusions
        with Relogger.Relog_error msg ->
          fail Exclusion_sanity "relog rejected the exclusion regions: %s" msg
      in
      oracle_span Slice_soundness @@ fun () ->
      let obs = observe prog pb c ~included ~crit_gseq in
      check_slice_replay prog spb obs;
      (* Oracle 4b re-executes the UNPRUNED dependence closure: a pruned
         slice bypasses confirmed save/restore pairs, so an included
         record inside the call may clobber the saved register and only
         the (excluded) restore would bring it back — sound under the
         relogger's injections (checked by 4a), but not under pure
         re-execution.  The closure still goes through [mutate_slice],
         so a slicer that drops a real dependence is caught here. *)
      let closure =
        let s =
          Slicer.compute ~lp ~indexed:true gt
            { Slicer.crit_pos; crit_locs = None }
        in
        match mutate_slice with None -> s | Some f -> f s
      in
      let in_closure = Dr_util.Bitset.create nrec in
      Array.iter
        (fun pos ->
          Dr_util.Bitset.add in_closure
            (Global_trace.record gt pos).Trace.gseq)
        closure.Slicer.positions;
      let included_cl g =
        Dr_util.Bitset.mem in_closure g
        || Dr_exeslice.Exclusion.forced (Segment_store.get c.Collector.records g)
      in
      check_reexec prog pb c ~included:included_cl ~in_slice:in_closure
        ~crit_gseq obs;
      Pass
  with
  | Oracle f -> Fail f
  | Skipped s -> Skip s
