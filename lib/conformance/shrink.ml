(** Greedy shrinking of failing fuzz cases.

    A candidate reduction removes structure from the source (a balanced
    brace block, a spawn/join pair, a single statement line) or from the
    schedule (a half, a single step).  A reduction is kept when [check]
    still reports the {e same} oracle failure on the reduced case — cases
    that no longer compile or fail differently are rejected by [check]
    itself.  Greedy to a fixpoint, bounded by [max_attempts] tried
    reductions. *)

let steps_counter = Dr_obs.Metrics.counter "conformance.shrink_steps"

let strip = String.trim

(* Lines i..j (inclusive) of a balanced brace block opened on line i.
   Returns None when braces never balance (malformed mid-shrink text). *)
let block_extent (lines : string array) i =
  let n = Array.length lines in
  let depth = ref 0 and j = ref i and found = ref false and closed = ref false in
  while (not !closed) && !j < n do
    String.iter
      (fun c ->
        if c = '{' then begin
          incr depth;
          found := true
        end
        else if c = '}' then decr depth)
      lines.(!j);
    if !found && !depth <= 0 then closed := true else incr j
  done;
  if !closed then Some !j else None

(* "int twK = spawn(workerN, ...);" -> Some "twK" *)
let spawn_var line =
  let s = strip line in
  let pfx = "int " in
  if String.length s > 4 && String.sub s 0 4 = pfx && ((
       match String.index_opt s '=' with
       | Some eq ->
         let rhs = strip (String.sub s (eq + 1) (String.length s - eq - 1)) in
         String.length rhs >= 6 && String.sub rhs 0 6 = "spawn("
       | None -> false))
  then
    match String.index_opt s '=' with
    | Some eq -> Some (strip (String.sub s 4 (eq - 4)))
    | None -> None
  else None

let remove_indices (lines : string array) (idxs : int list) =
  let drop = Hashtbl.create 8 in
  List.iter (fun i -> Hashtbl.replace drop i ()) idxs;
  Array.of_list
    (List.filteri
       (fun i _ -> not (Hashtbl.mem drop i))
       (Array.to_list lines))

(* Candidate source reductions, largest first: blocks, spawn/join pairs,
   single statement lines.  Each is the list of line indices to drop. *)
let source_candidates (lines : string array) : int list list =
  let n = Array.length lines in
  let blocks = ref [] and pairs = ref [] and singles = ref [] in
  for i = 0 to n - 1 do
    let s = strip lines.(i) in
    let len = String.length s in
    if len > 0 then begin
      (* brace blocks: if/while/helper-call headers, not fn definitions
         (removing a whole fn body is fine too — compile check decides) *)
      if s.[len - 1] = '{' then begin
        match block_extent lines i with
        | Some j when j > i && j - i < n - 2 ->
          blocks := List.init (j - i + 1) (fun k -> i + k) :: !blocks
        | _ -> ()
      end;
      (match spawn_var lines.(i) with
      | Some v ->
        let join = Printf.sprintf "join(%s);" v in
        let ji = ref None in
        for k = i + 1 to n - 1 do
          if !ji = None && strip lines.(k) = join then ji := Some k
        done;
        (match !ji with
        | Some k -> pairs := [ i; k ] :: !pairs
        | None -> ())
      | None -> ());
      if s.[len - 1] = ';' && not (String.contains s '{') then
        singles := [ i ] :: !singles
    end
  done;
  List.rev !blocks @ List.rev !pairs @ List.rev !singles

let sched_candidates (sched : Sched.t) : Sched.t list =
  let n = Array.length sched in
  if n = 0 then []
  else
    let halves =
      if n >= 2 then
        [ Array.sub sched 0 (n / 2); Array.sub sched (n / 2) (n - (n / 2)) ]
      else []
    in
    let singles =
      List.init (min n 32) (fun i ->
          Array.append (Array.sub sched 0 i)
            (Array.sub sched (i + 1) (n - i - 1)))
    in
    halves @ singles

(** Shrink a failing case to a (local) minimum.  [check ~lines ~sched]
    must return [true] iff the reduced case still compiles and fails the
    {e same} oracle.  Returns the reduced case and the number of accepted
    reduction steps. *)
let shrink ?(max_attempts = 400)
    ~(check : lines:string array -> sched:Sched.t -> bool)
    ~(lines : string array) ~(sched : Sched.t) () :
    string array * Sched.t * int =
  let lines = ref lines and sched = ref sched in
  let attempts = ref 0 and steps = ref 0 in
  let try_case ls sc =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      check ~lines:ls ~sched:sc
    end
  in
  let progress = ref true in
  while !progress && !attempts < max_attempts do
    progress := false;
    (* source reductions *)
    let rec try_sources = function
      | [] -> ()
      | idxs :: rest ->
        let reduced = remove_indices !lines idxs in
        if try_case reduced !sched then begin
          lines := reduced;
          incr steps;
          Dr_obs.Metrics.bump steps_counter;
          progress := true
        end
        else try_sources rest
    in
    try_sources (source_candidates !lines);
    (* schedule reductions (only once the source is stable this round) *)
    if not !progress then begin
      let rec try_scheds = function
        | [] -> ()
        | sc :: rest ->
          if try_case !lines sc then begin
            sched := sc;
            incr steps;
            Dr_obs.Metrics.bump steps_counter;
            progress := true
          end
          else try_scheds rest
      in
      try_scheds (sched_candidates !sched)
    end
  done;
  (!lines, !sched, !steps)
