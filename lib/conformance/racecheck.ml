(** Dynamic lockset + vector-clock race checker over replayed (or live)
    executions — the dynamic half of conformance oracle 8.

    The checker walks retired events maintaining, per thread:

    - a {e lockset}: mutex addresses currently held ([Sys_lock
      acquired=true] adds, [Sys_unlock] removes, phase 1 of [Sys_wait]
      removes the mutex — its reacquire comes back later as an ordinary
      [Sys_lock] event);
    - a {e vector clock}, advanced on every retired event and merged at
      the synchronizations the machine makes deterministic: spawn copies
      the parent's clock into the child, a retired join merges the
      target's clock, and a signal/broadcast merges the signaler's clock
      into each woken waiter (the checker mirrors the machine's
      wake-in-ascending-tid-order over its own record of who is blocked
      on each condvar, since the event only carries the {e count} woken).

    Shared accesses are [Load]/[Store] traffic outside the stack: pcs in
    {!Dr_static.Race.stack_class} and addresses at or above
    {!Dr_static.Race.shared_limit} are skipped, the same filter the
    static detector applies.  For each access the checker compares
    against the last write (and, for writes, last read) of every other
    thread at that address — a FastTrack-style last-epoch table, which
    may miss some racy pairs in long runs but never fabricates one: a
    reported pair really did execute unordered with disjoint locksets.
    That one-sided precision is exactly what the soundness oracle needs
    (dynamic ⊆ static). *)

open Dr_machine
open Dr_pinplay

type race = {
  r_addr : int;
  r_pc_a : int;  (** the earlier access *)
  r_tid_a : int;
  r_write_a : bool;
  r_pc_b : int;  (** the later access *)
  r_tid_b : int;
  r_write_b : bool;
}

type result = {
  races : race list;  (** in detection order *)
  pairs : (int * int) list;  (** deduped unordered pc pairs, sorted *)
  accesses : int;  (** shared accesses examined *)
}

type slot = { mutable s_clock : int; mutable s_pc : int; mutable s_locks : int list }
(* last access epoch of one (addr, tid): clock component of the accessing
   thread, access pc, lockset held *)

type state = {
  prog : Dr_isa.Program.t;
  limit : int;
  nt : int;  (** max threads = vector-clock width *)
  vc : int array array;  (** tid -> vector clock *)
  locks : int list array;  (** tid -> held mutex addresses *)
  waiters : (int, int list) Hashtbl.t;  (** cond addr -> blocked tids *)
  writes : (int, slot array) Hashtbl.t;  (** addr -> per-tid last write *)
  reads : (int, slot array) Hashtbl.t;  (** addr -> per-tid last read *)
  seen : (int * int, unit) Hashtbl.t;  (** dedup of unordered pc pairs *)
  mutable races : race list;
  mutable accesses : int;
}

let create (prog : Dr_isa.Program.t) : state =
  let nt = prog.Dr_isa.Program.max_threads in
  let vc = Array.init nt (fun _ -> Array.make nt 0) in
  vc.(0).(0) <- 1;
  { prog; limit = Dr_static.Race.shared_limit prog; nt; vc;
    locks = Array.make nt []; waiters = Hashtbl.create 4;
    writes = Hashtbl.create 64; reads = Hashtbl.create 64;
    seen = Hashtbl.create 32; races = []; accesses = 0 }

let merge_into ~(src : int array) ~(dst : int array) =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let slots st tbl addr =
  match Hashtbl.find_opt tbl addr with
  | Some a -> a
  | None ->
    let a = Array.init st.nt (fun _ -> { s_clock = -1; s_pc = -1; s_locks = [] }) in
    Hashtbl.replace tbl addr a;
    a

let disjoint l1 l2 = not (List.exists (fun x -> List.mem x l2) l1)

let note_access st ~tid ~pc ~addr ~write =
  if addr >= 0 && addr < st.limit then begin
    st.accesses <- st.accesses + 1;
    let my_vc = st.vc.(tid) and my_locks = st.locks.(tid) in
    let check ~(prior : slot array) ~prior_write =
      Array.iteri
        (fun u (s : slot) ->
          if
            u <> tid && s.s_clock >= 0
            && s.s_clock > my_vc.(u)  (* not ordered before us *)
            && disjoint s.s_locks my_locks
          then begin
            let key = (min s.s_pc pc, max s.s_pc pc) in
            if not (Hashtbl.mem st.seen key) then begin
              Hashtbl.replace st.seen key ();
              st.races <-
                { r_addr = addr; r_pc_a = s.s_pc; r_tid_a = u;
                  r_write_a = prior_write; r_pc_b = pc; r_tid_b = tid;
                  r_write_b = write }
                :: st.races
            end
          end)
        prior
    in
    (* conflicting = at least one write *)
    check ~prior:(slots st st.writes addr) ~prior_write:true;
    if write then check ~prior:(slots st st.reads addr) ~prior_write:false;
    let mine = (slots st (if write then st.writes else st.reads) addr).(tid) in
    mine.s_clock <- my_vc.(tid);
    mine.s_pc <- pc;
    mine.s_locks <- my_locks
  end

(** Feed one machine event.  Only retired events change any state. *)
let on_event (st : state) (ev : Event.t) =
  if ev.Event.retired then begin
    let tid = ev.Event.tid in
    if tid < st.nt then begin
      let pc = ev.Event.pc in
      (match ev.Event.sys with
      | Event.Sys_spawn { child; _ } ->
        if child < st.nt then begin
          Array.blit st.vc.(tid) 0 st.vc.(child) 0 st.nt;
          st.vc.(child).(child) <- st.vc.(child).(child) + 1
        end
      | Event.Sys_join { target; blocked = false } ->
        if target < st.nt then merge_into ~src:st.vc.(target) ~dst:st.vc.(tid)
      | Event.Sys_lock { addr; acquired = true } ->
        if not (List.mem addr st.locks.(tid)) then
          st.locks.(tid) <- addr :: st.locks.(tid)
      | Event.Sys_unlock { addr } ->
        st.locks.(tid) <- List.filter (fun a -> a <> addr) st.locks.(tid)
      | Event.Sys_wait { cond; mutex } ->
        (* phase 1: the mutex is released and the thread blocks on the
           condvar; the reacquire will arrive as a Sys_lock event *)
        st.locks.(tid) <- List.filter (fun a -> a <> mutex) st.locks.(tid);
        let w = Option.value ~default:[] (Hashtbl.find_opt st.waiters cond) in
        Hashtbl.replace st.waiters cond (List.sort_uniq compare (tid :: w))
      | Event.Sys_signal { cond; woken; _ } ->
        if woken > 0 then begin
          (* the machine wakes Blocked_cond threads in ascending tid
             order; mirror that over our waiter record *)
          let w = Option.value ~default:[] (Hashtbl.find_opt st.waiters cond) in
          let rec split k = function
            | x :: rest when k > 0 ->
              let woke, stay = split (k - 1) rest in
              (x :: woke, stay)
            | rest -> ([], rest)
          in
          let woke, stay = split woken w in
          Hashtbl.replace st.waiters cond stay;
          List.iter
            (fun u ->
              if u < st.nt then begin
                merge_into ~src:st.vc.(tid) ~dst:st.vc.(u);
                st.vc.(u).(u) <- st.vc.(u).(u) + 1
              end)
            woke
        end
      | _ -> ());
      if not (Dr_static.Race.stack_class ev.Event.instr) then begin
        if ev.Event.mem_read >= 0 then
          note_access st ~tid ~pc ~addr:ev.Event.mem_read ~write:false;
        if ev.Event.mem_write >= 0 then
          note_access st ~tid ~pc ~addr:ev.Event.mem_write ~write:true
      end;
      st.vc.(tid).(tid) <- st.vc.(tid).(tid) + 1
    end
  end

let finish (st : state) : result =
  { races = List.rev st.races;
    pairs = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) st.seen []);
    accesses = st.accesses }

(** Replay [pb] and race-check every retired event.  Raises
    {!Dr_pinplay.Replayer.Divergence} if the pinball does not replay. *)
let observe_pinball (prog : Dr_isa.Program.t) (pb : Pinball.t) : result =
  let st = create prog in
  let r = Replayer.create prog pb in
  let hooks = { Driver.on_event = (fun ev -> on_event st ev) } in
  ignore (Replayer.resume ~hooks r);
  finish st

(** Run [prog] live under [policy] and race-check it. *)
let observe_run ?(input = [||]) ?(max_steps = 2_000_000) ?nondet
    (prog : Dr_isa.Program.t) ~(policy : Driver.policy) :
    result * Driver.stop_reason =
  let st = create prog in
  let m = Machine.create ~input prog in
  let hooks = { Driver.on_event = (fun ev -> on_event st ev) } in
  let stop = Driver.run ?nondet ~hooks ~max_steps m policy in
  (finish st, stop)
