(* Schema validator for the repo's benchmark and observability JSON
   artifacts.  Dispatches on the document's "schema" field:

   - drdebug-bench-slicing-v1: the slicing bench output, including its
     embedded drdebug-report-v1 run report;
   - drdebug-bench-races-v1: the race-detection bench output (static
     candidates vs seeded Maple campaigns);
   - drdebug-report-v1: a standalone run report (drdebug_cli
     --report-out), checked via Dr_obs.Report.validate;
   - drdebug-analyze-v1: a static-lint report (drdebug_cli analyze
     --out), checked via Dr_static.Report.validate.

   Run by the dune runtest smoke right after the bench's --quick mode so
   the metrics layer and the emitted JSON cannot silently rot.  Exits
   non-zero with a message naming the first violated field.  An empty
   file or an unknown schema string is a failure, never a silent pass:
   a truncated artifact must not look green in CI. *)

module J = Dr_util.Json

(* Every failure names the JSON file being validated: under dune runtest
   the validator runs from a sandbox and a bare field name would leave
   the reader guessing which artifact to open. *)
let src = ref "<no file>"

let fail fmt =
  Printf.ksprintf (fun m -> Printf.eprintf "FAIL %s: %s\n" !src m; exit 1) fmt

let get obj k =
  match J.member k obj with
  | Some v -> v
  | None -> fail "missing field %S" k

let want_num ctx v =
  match J.to_float v with Some f -> f | None -> fail "%s: expected number" ctx

let want_str ctx v =
  match J.to_str v with Some s -> s | None -> fail "%s: expected string" ctx

let want_bool ctx v =
  match J.to_bool v with Some b -> b | None -> fail "%s: expected bool" ctx

let want_list ctx v =
  match J.to_list v with Some l -> l | None -> fail "%s: expected list" ctx

let check_workload i w =
  let ctx k = Printf.sprintf "workloads[%d].%s" i k in
  let num k = want_num (ctx k) (get w k) in
  let str k = want_str (ctx k) (get w k) in
  ignore (str "name");
  (match str "kind" with
  | "registry" | "generated" -> ()
  | other -> fail "%s: unknown kind %S" (ctx "kind") other);
  List.iter
    (fun k ->
      let v = num k in
      if v < 0.0 then fail "%s: negative" (ctx k))
    [ "records"; "criteria"; "reps"; "collect_s"; "construct_s";
      "lp_prepare_s"; "static_prepare_s"; "indexed_s"; "scan_skip_s";
      "scan_static_s"; "scan_noskip_s"; "speedup_vs_scan_skip";
      "speedup_vs_scan_noskip"; "records_per_s_indexed"; "blocks_skipped";
      "static_skips"; "total_blocks"; "visited_ratio_indexed";
      "visited_ratio_scan"; "slice_size_avg"; "spilled_segments";
      "spill_read_s"; "degradations"; "slice_size_total"; "par_slice_s";
      "par_speedup"; "par_slice_size_total"; "record_bytes_total";
      "reexec_slice_s"; "reexec_peak_mem"; "segstore_hit_rate";
      "reexec_window_hit_rate" ];
  (* hit rates are ratios *)
  List.iter
    (fun k ->
      if num k > 1.0 then fail "%s: hit rate above 1.0" (ctx k))
    [ "segstore_hit_rate"; "reexec_window_hit_rate" ];
  if num "records" < 1.0 then fail "%s: empty trace" (ctx "records");
  if num "spilled_segments" < 1.0 then
    fail "%s: out-of-core rerun never spilled" (ctx "spilled_segments");
  if num "degradations" < 1.0 then
    fail "%s: governed rerun recorded no ladder step" (ctx "degradations");
  if not (want_bool (ctx "results_identical") (get w "results_identical"))
  then fail "%s: drivers disagree" (ctx "results_identical");
  if not (want_bool (ctx "spill_identical") (get w "spill_identical")) then
    fail "%s: spilled rerun disagrees with in-memory run" (ctx "spill_identical");
  if not (want_bool (ctx "par_identical") (get w "par_identical")) then
    fail "%s: parallel slices disagree with sequential" (ctx "par_identical");
  if not (want_bool (ctx "reexec_identical") (get w "reexec_identical")) then
    fail "%s: re-execution slices disagree with indexed"
      (ctx "reexec_identical");
  (* the point of the re-execution tier: resident record memory bounded
     by the checkpoint interval, not the trace length (small traces are
     exempt — a couple of windows can legitimately cover them) *)
  if num "records" >= 1024.0 && num "reexec_peak_mem" >= num "record_bytes_total"
  then
    fail "%s: re-execution peak %g not below stored trace bytes %g"
      (ctx "reexec_peak_mem") (num "reexec_peak_mem")
      (num "record_bytes_total");
  (* slice sizes are schedule-independent: the domain-parallel fan-out
     must land on exactly the sequential totals *)
  let seq_total = num "slice_size_total" and par_total = num "par_slice_size_total" in
  if seq_total <> par_total then
    fail "%s: parallel slice size total %g <> sequential %g"
      (ctx "par_slice_size_total") par_total seq_total

let check_report ctx r =
  match Dr_obs.Report.validate r with
  | Ok () -> ()
  | Error e -> fail "%s: %s" ctx e

(* drdebug-bench-races-v1: every registry bug must be statically ranked
   (non-empty candidate set, fully resolved, root cause in a pair),
   exposed by the statically seeded campaign, and dynamically
   cross-checked (every observed racy pair a static candidate) — the
   acceptance gates of the race-detection tier, enforced on the
   checked-in artifact. *)
let check_races doc =
  ignore (want_bool "quick" (get doc "quick"));
  let bugs = want_list "bugs" (get doc "bugs") in
  if bugs = [] then fail "bugs: empty";
  List.iteri
    (fun i b ->
      let ctx k = Printf.sprintf "bugs[%d].%s" i k in
      let num k = want_num (ctx k) (get b k) in
      let boolean k = want_bool (ctx k) (get b k) in
      ignore (want_str (ctx "name") (get b "name"));
      List.iter
        (fun k -> if num k < 0.0 then fail "%s: negative" (ctx k))
        [ "static_candidates"; "static_s"; "iroot_predicted"; "iroot_seeded";
          "plain_attempts"; "seeded_attempts"; "maple_steps_saved";
          "campaign_s"; "dynamic_races" ];
      if num "static_candidates" < 1.0 then
        fail "%s: bug not statically ranked" (ctx "static_candidates");
      if not (boolean "static_resolved") then
        fail "%s: static detector degraded" (ctx "static_resolved");
      if not (boolean "root_cause_ranked") then
        fail "%s: root cause missing from candidates" (ctx "root_cause_ranked");
      if num "seeded_attempts" < 1.0 then
        fail "%s: seeded campaign recorded no attempts" (ctx "seeded_attempts");
      if num "iroot_seeded" < num "iroot_predicted" then
        fail "%s: seeding shrank the queue" (ctx "iroot_seeded");
      if num "dynamic_races" < 1.0 then
        fail "%s: race never observed dynamically" (ctx "dynamic_races");
      if not (boolean "dynamic_in_static") then
        fail "%s: dynamic race outside the static candidate set"
          (ctx "dynamic_in_static");
      ignore (boolean "plain_exposed"))
    bugs;
  if want_num "total_steps_saved" (get doc "total_steps_saved") < 0.0 then
    fail "total_steps_saved: negative";
  List.length bugs

let check_slicing doc =
  ignore (want_bool "quick" (get doc "quick"));
  if want_num "domains" (get doc "domains") < 1.0 then
    fail "domains: must be >= 1";
  let workloads = want_list "workloads" (get doc "workloads") in
  if workloads = [] then fail "workloads: empty";
  List.iteri check_workload workloads;
  (match get doc "largest_generated" with
  | J.Null -> ()
  | lg ->
    ignore (want_str "largest_generated.name" (get lg "name"));
    if
      not
        (want_bool "largest_generated.results_identical"
           (get lg "results_identical"))
    then fail "largest_generated: drivers disagree");
  (* per-slot pool utilization: slot 0 is the caller, 1.. the workers;
     across the whole bench at least one task must have been claimed *)
  let slots = want_list "pool_utilization" (get doc "pool_utilization") in
  if slots = [] then fail "pool_utilization: empty";
  let total_claimed =
    List.fold_left
      (fun acc s ->
        let ctx k = Printf.sprintf "pool_utilization[].%s" k in
        let num k = want_num (ctx k) (get s k) in
        List.iter
          (fun k -> if num k < 0.0 then fail "%s: negative" (ctx k))
          [ "slot"; "tasks_claimed"; "busy_s"; "busy_events" ];
        acc +. num "tasks_claimed")
      0.0 slots
  in
  if total_claimed < 1.0 then fail "pool_utilization: no tasks claimed";
  (match get doc "metrics" with
  | J.Obj _ -> ()
  | _ -> fail "metrics: expected object");
  check_report "report" (get doc "report");
  List.length workloads

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
      prerr_endline
        "usage: validate_bench <BENCH_slicing.json | report.json>";
      exit 2
  in
  src := path;
  let raw =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "unreadable: %s" e
  in
  if String.trim raw = "" then fail "empty file";
  let doc =
    match J.parse raw with
    | Ok v -> v
    | Error e -> fail "does not parse: %s" e
  in
  match want_str "schema" (get doc "schema") with
  | "drdebug-bench-slicing-v1" as schema ->
    let n = check_slicing doc in
    Printf.printf "ok: %s matches %s (%d workloads)\n" path schema n
  | "drdebug-bench-races-v1" as schema ->
    let n = check_races doc in
    Printf.printf "ok: %s matches %s (%d bugs)\n" path schema n
  | "drdebug-report-v1" as schema ->
    check_report "report" doc;
    Printf.printf "ok: %s matches %s\n" path schema
  | "drdebug-analyze-v1" as schema ->
    (match Dr_static.Report.validate doc with
    | Ok () -> Printf.printf "ok: %s matches %s\n" path schema
    | Error e -> fail "%s" e)
  | other -> fail "unknown schema %S" other
