(* Race-detection benchmark: for every concurrency bug in the registry,
   measure the static detector's candidate set, then run the Maple
   campaign twice — plain (profiler-predicted candidates only) and
   seeded with the static race pairs — and dynamically cross-check the
   exposed execution with the lockset checker.  Emits BENCH_races.json
   (schema drdebug-bench-races-v1, see README "Benchmarking"):
   `maple_steps_saved` is the attempts the static seeding shaved off the
   campaign (a plain campaign that never exposes counts its whole
   exhausted queue).  A dune runtest smoke runs this in --quick mode and
   validates the emitted JSON. *)

let printf = Printf.printf

module J = Dr_util.Json
module Race = Dr_static.Race

let schema_version = "drdebug-bench-races-v1"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type row = {
  r_name : string;
  r_static_candidates : int;
  r_static_resolved : bool;
  r_root_cause_ranked : bool;
  r_static_s : float;
  r_iroot_predicted : int;  (* profiler-predicted candidate iRoots *)
  r_iroot_seeded : int;  (* queue length after static seeding *)
  r_plain_exposed : bool;
  r_plain_attempts : int;  (* attempts used (queue length if exhausted) *)
  r_seeded_attempts : int;
  r_steps_saved : int;
  r_campaign_s : float;
  r_dynamic_races : int;  (* distinct racy pc pairs observed *)
  r_dynamic_in_static : bool;
}

let bench_bug (b : Dr_workloads.Bugs.t) : row =
  let name = b.Dr_workloads.Bugs.name in
  let prog = Dr_workloads.Bugs.compile b in
  let race, static_s = time (fun () -> Race.analyze prog) in
  let static_pairs = Race.candidate_pairs race in
  let root_cause_ranked =
    let line pc =
      Option.value ~default:(-1)
        (Dr_isa.Debug_info.line_of_pc prog.Dr_isa.Program.debug pc)
    in
    List.exists
      (fun (p, q) ->
        line p = b.Dr_workloads.Bugs.root_cause_line
        || line q = b.Dr_workloads.Bugs.root_cause_line)
      static_pairs
  in
  let obs = Dr_maple.Profiler.profile prog in
  let predicted = List.length obs.Dr_maple.Profiler.candidates in
  let seeded_extra =
    List.length
      (Dr_maple.Active.seed_candidates ~prog ~static_pairs
         obs.Dr_maple.Profiler.candidates)
  in
  let plain = Dr_maple.Active.expose prog in
  let plain_attempts =
    match plain with
    | Some e -> List.length e.Dr_maple.Active.attempts
    | None -> min 64 predicted  (* exhausted the whole plain queue *)
  in
  let (seeded, campaign_s) =
    time (fun () -> Dr_maple.Active.expose ~static_pairs prog)
  in
  match seeded with
  | None -> failwith (name ^ ": statically seeded campaign did not expose")
  | Some e ->
    let seeded_attempts = List.length e.Dr_maple.Active.attempts in
    let dyn_pairs =
      let on_pinball =
        Dr_conformance.Racecheck.observe_pinball prog
          e.Dr_maple.Active.pinball
      in
      (* bugs whose exposing schedule suppresses the racy access (the
         missed-signal case) still race under a plain interleaving *)
      let on_rr, _ =
        Dr_conformance.Racecheck.observe_run prog
          ~policy:(Dr_machine.Driver.Round_robin { quantum = 1 })
      in
      List.sort_uniq compare
        (on_pinball.Dr_conformance.Racecheck.pairs
        @ on_rr.Dr_conformance.Racecheck.pairs)
    in
    { r_name = name;
      r_static_candidates = List.length static_pairs;
      r_static_resolved = Race.fully_resolved race;
      r_root_cause_ranked = root_cause_ranked;
      r_static_s = static_s;
      r_iroot_predicted = predicted;
      r_iroot_seeded = predicted + seeded_extra;
      r_plain_exposed = plain <> None;
      r_plain_attempts = plain_attempts;
      r_seeded_attempts = seeded_attempts;
      r_steps_saved = max 0 (plain_attempts - seeded_attempts);
      r_campaign_s = campaign_s;
      r_dynamic_races = List.length dyn_pairs;
      r_dynamic_in_static =
        List.for_all (fun (p, q) -> Race.is_candidate race p q) dyn_pairs }

let row_json (r : row) : J.t =
  J.Obj
    [ ("name", J.Str r.r_name);
      ("static_candidates", J.int r.r_static_candidates);
      ("static_resolved", J.Bool r.r_static_resolved);
      ("root_cause_ranked", J.Bool r.r_root_cause_ranked);
      ("static_s", J.Num r.r_static_s);
      ("iroot_predicted", J.int r.r_iroot_predicted);
      ("iroot_seeded", J.int r.r_iroot_seeded);
      ("plain_exposed", J.Bool r.r_plain_exposed);
      ("plain_attempts", J.int r.r_plain_attempts);
      ("seeded_attempts", J.int r.r_seeded_attempts);
      ("maple_steps_saved", J.int r.r_steps_saved);
      ("campaign_s", J.Num r.r_campaign_s);
      ("dynamic_races", J.int r.r_dynamic_races);
      ("dynamic_in_static", J.Bool r.r_dynamic_in_static) ]

(** Run the race benchmark over every registry bug and write [out]
    (BENCH_races.json). *)
let run ~quick ~out () =
  let rows = List.map bench_bug Dr_workloads.Bugs.all in
  printf "%-10s %7s %9s %8s %7s %7s %6s %7s %7s\n" "bug" "static" "resolved"
    "iroots" "plain" "seeded" "saved" "dynraces" "subset";
  List.iter
    (fun r ->
      printf "%-10s %7d %9b %4d/%-3d %7s %7d %6d %7d %7b\n" r.r_name
        r.r_static_candidates r.r_static_resolved r.r_iroot_predicted
        r.r_iroot_seeded
        (if r.r_plain_exposed then string_of_int r.r_plain_attempts
         else Printf.sprintf "%d*" r.r_plain_attempts)
        r.r_seeded_attempts r.r_steps_saved r.r_dynamic_races
        r.r_dynamic_in_static)
    rows;
  printf "(* = plain campaign exhausted its queue without exposing)\n";
  let total_saved = List.fold_left (fun a r -> a + r.r_steps_saved) 0 rows in
  let doc =
    J.Obj
      [ ("schema", J.Str schema_version);
        ("quick", J.Bool quick);
        ("bugs", J.List (List.map row_json rows));
        ("total_steps_saved", J.int total_saved) ]
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (J.to_string doc);
      Out_channel.output_char oc '\n');
  printf "wrote %s\n" out
