(* Slicing fast-path benchmark: indexed traversal vs the backwards scan
   (with and without LP block skipping), across registry workloads and
   randomly generated programs.  Emits BENCH_slicing.json (schema
   drdebug-bench-slicing-v1, see README "Benchmarking") so the perf
   trajectory of the slicer is tracked in-repo; a dune runtest smoke
   runs this in --quick mode and validates the emitted JSON. *)

let printf = Printf.printf

module J = Dr_util.Json

let schema_version = "drdebug-bench-slicing-v1"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let log_or_fail ?policy prog spec =
  match Dr_pinplay.Logger.log ?policy prog spec with
  | Ok (pb, _) -> pb
  | Error e ->
    failwith (Format.asprintf "logging failed: %a" Dr_pinplay.Logger.pp_error e)

(* One prepared workload: its global trace, LP summaries + def index,
   and the slicing criteria (the last data loads, newest first, plus one
   register-chasing criterion that exercises the static reach filter). *)
type prepared = {
  w_name : string;
  w_kind : string;  (* "registry" | "generated" *)
  w_prog : Dr_isa.Program.t;
  w_pinball : Dr_pinplay.Pinball.t;
      (* retained for the re-execution tier *)
  w_collect : Dr_slicing.Collector.result;
      (* retained for the out-of-core rerun *)
  gt : Dr_slicing.Global_trace.t;
  lp : Dr_slicing.Lp.t;
  collect_s : float;
  construct_s : float;
  lp_s : float;
  criteria : Dr_slicing.Slicer.criterion list;
}

let criteria_of gt ~n =
  let len = Dr_slicing.Global_trace.length gt in
  let picks = ref [] and found = ref 0 and pos = ref (len - 1) in
  while !found < n && !pos > 0 do
    if Dr_slicing.Trace.is_load (Dr_slicing.Global_trace.record gt !pos)
    then begin
      picks := !pos :: !picks;
      incr found
    end;
    decr pos
  done;
  let picks = if !picks = [] then [ len - 1 ] else List.rev !picks in
  List.map
    (fun p -> { Dr_slicing.Slicer.crit_pos = p; crit_locs = None })
    picks

(* One register-chasing criterion: slice the full trace for the defined
   register location with the fewest dynamic definitions (ties broken by
   encoding, for determinism).  A scarce register concentrates its defs
   in few trace blocks, which is the shape the static reach filter
   prunes; memory-chasing criteria rarely do, because almost every block
   contains a store. *)
let register_criterion gt lp =
  let len = Dr_slicing.Global_trace.length gt in
  let best = ref None in
  Dr_slicing.Def_index.iter
    (Dr_slicing.Lp.def_index lp)
    (fun loc positions ->
      match Dr_isa.Loc.view loc with
      | Dr_isa.Loc.Mem _ -> ()
      | Dr_isa.Loc.Reg _ ->
        let n = Array.length positions in
        if
          n > 0
          &&
          match !best with
          | None -> true
          | Some (bn, bloc) -> n < bn || (n = bn && loc < bloc)
        then best := Some (n, loc));
  match !best with
  | None -> []
  | Some (_, loc) ->
    [ { Dr_slicing.Slicer.crit_pos = len - 1; crit_locs = Some [ loc ] } ]

let prepare ~name ~kind ~n_criteria prog pb =
  let c, collect_s = time (fun () -> Dr_slicing.Collector.collect prog pb) in
  let gt, construct_s = time (fun () -> Dr_slicing.Global_trace.construct c) in
  let lp, lp_s = time (fun () -> Dr_slicing.Lp.prepare gt) in
  { w_name = name; w_kind = kind; w_prog = prog; w_pinball = pb;
    w_collect = c; gt; lp; collect_s; construct_s; lp_s;
    criteria = criteria_of gt ~n:n_criteria @ register_criterion gt lp }

let prepare_registry ~name ~main_instrs ~n_criteria =
  match Dr_workloads.Registry.find name with
  | None -> failwith (Printf.sprintf "unknown registry workload %s" name)
  | Some e ->
    let iters = Dr_workloads.Registry.iters_for e ~main_instrs () in
    let prog = e.Dr_workloads.Registry.compile ~threads:4 ~iters in
    let pb = log_or_fail prog Dr_pinplay.Logger.Whole in
    prepare ~name ~kind:"registry" ~n_criteria prog pb

(* Generated workloads: wider than the property-test default so traces
   reach interesting sizes, several seeds, keep the largest traces. *)
let gen_cfg =
  { Dr_lang.Gen.max_stmts = 10; max_depth = 3; max_helpers = 4;
    with_threads = true; max_workers = 1 }

let prepare_generated ~seeds ~keep ~n_criteria =
  let candidates =
    List.filter_map
      (fun seed ->
        let src = Dr_lang.Gen.program ~cfg:gen_cfg seed in
        let name = Printf.sprintf "gen-%d" seed in
        match Dr_lang.Codegen.compile_result ~name src with
        | Error _ -> None
        | Ok prog ->
          let pb =
            log_or_fail
              ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
              prog Dr_pinplay.Logger.Whole
          in
          Some (prepare ~name ~kind:"generated" ~n_criteria prog pb))
      seeds
  in
  let by_size =
    List.sort
      (fun a b ->
        Int.compare
          (Dr_slicing.Global_trace.length b.gt)
          (Dr_slicing.Global_trace.length a.gt))
      candidates
  in
  List.filteri (fun i _ -> i < keep) by_size

(* ---- measurement ---- *)

let canonical_edges (s : Dr_slicing.Slicer.t) =
  let tag = function
    | Dr_slicing.Slicer.Data l -> (0, l)
    | Dr_slicing.Slicer.Data_bypassed l -> (1, l)
    | Dr_slicing.Slicer.Control -> (2, -1)
  in
  let l =
    Array.to_list
      (Array.map
         (fun (e : Dr_slicing.Slicer.edge) ->
           let k, loc = tag e.Dr_slicing.Slicer.kind in
           (e.Dr_slicing.Slicer.from_pos, e.Dr_slicing.Slicer.to_pos, k, loc))
         s.Dr_slicing.Slicer.edges)
  in
  List.sort compare l

type measured = {
  records : int;
  n_criteria : int;
  reps : int;
  indexed_s : float;
  scan_skip_s : float;
  scan_static_s : float;
  scan_noskip_s : float;
  static_prepare_s : float;
  blocks_skipped : int;
  static_skips : int;
  total_blocks : int;
  visited_indexed : int;
  visited_scan : int;
  slice_size_total : int;
  identical : bool;
  spilled_segments : int;  (* segments on disk during the out-of-core rerun *)
  spill_read_s : float;  (* one indexed pass over the spilled store *)
  degradations : int;  (* ladder steps recorded by the governed rerun *)
  spill_identical : bool;  (* spilled rerun matches in-memory, all drivers *)
  par_slice_s : float;  (* all criteria through compute_many on the pool *)
  par_slice_size_total : int;  (* total slice size of the parallel run *)
  par_identical : bool;  (* parallel slices byte-identical to sequential *)
  record_bytes_total : int;  (* stored size of every trace record *)
  reexec_slice_s : float;  (* one re-execution pass over all criteria *)
  reexec_peak_mem : int;  (* peak resident record bytes during it *)
  reexec_identical : bool;  (* re-exec slices byte-identical to indexed *)
  segstore_hit_rate : float;  (* segment-cache hits/(hits+misses), spilled run *)
  reexec_window_hit_rate : float;  (* window-cache hits/(hits+rederives) *)
}

(* Out-of-core rerun: rebuild the trace through a segment store whose
   memory budget is a quarter of the record bytes, so most segments
   spill to disk, then re-slice every criterion with all four drivers
   and demand byte-identical positions and edges vs the in-memory run.
   The governed driver runs under the same budget, which cannot fit the
   definition index either — the recorded indexed->scan degradation is
   the ladder exercising itself. *)
let measure_spill (p : prepared) =
  let c = p.w_collect in
  let n = Dr_slicing.Segment_store.length c.Dr_slicing.Collector.records in
  let total_bytes = ref 0 in
  Dr_slicing.Segment_store.iter c.Dr_slicing.Collector.records (fun _ r ->
      total_bytes := !total_bytes + Dr_slicing.Segment_store.record_bytes r);
  let spill_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "drdebug-bench-spill-%d-%s" (Unix.getpid ()) p.w_name)
  in
  let budget =
    Dr_util.Budget.create ~mem_bytes:(!total_bytes / 4) ~spill_dir ()
  in
  let cleanup () =
    if Sys.file_exists spill_dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat spill_dir f) with Sys_error _ -> ())
        (Sys.readdir spill_dir);
      try Unix.rmdir spill_dir with Unix.Unix_error _ -> ()
    end
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let store =
    Dr_slicing.Segment_store.rebuild ~budget ~seg_records:1024
      c.Dr_slicing.Collector.records
  in
  let spilled_segments = Dr_slicing.Segment_store.spilled_segments store in
  let gt' =
    Dr_slicing.Global_trace.construct
      { c with Dr_slicing.Collector.records = store }
  in
  let lp' = Dr_slicing.Lp.prepare gt' in
  let clean ?static_filter ~indexed ~block_skipping crit =
    Dr_slicing.Slicer.compute ?static_filter ~lp:p.lp ~indexed ~block_skipping
      p.gt crit
  in
  let spilled ~indexed ~block_skipping crit =
    Dr_slicing.Slicer.compute ~lp:lp' ~indexed ~block_skipping gt' crit
  in
  let spill_identical =
    n = Dr_slicing.Segment_store.length store
    && List.for_all
         (fun crit ->
           let base = clean ~indexed:true ~block_skipping:true crit in
           let governed =
             Dr_slicing.Slicer.compute_governed ~budget gt' crit
           in
           List.for_all
             (fun s ->
               s.Dr_slicing.Slicer.positions = base.Dr_slicing.Slicer.positions
               && canonical_edges s = canonical_edges base)
             [ spilled ~indexed:true ~block_skipping:true crit;
               spilled ~indexed:false ~block_skipping:true crit;
               spilled ~indexed:false ~block_skipping:false crit;
               governed.Dr_slicing.Slicer.g_slice ])
         p.criteria
  in
  let _, spill_read_s =
    time (fun () ->
        List.iter
          (fun crit -> ignore (spilled ~indexed:true ~block_skipping:true crit))
          p.criteria)
  in
  (* records-beyond-RAM tier: the same criteria answered by on-demand
     re-execution — record lookups replay forward from periodic
     checkpoints and the stored (spilled) records are never read, so
     resident record memory is bounded by the checkpoint interval (two
     cached windows), not the trace length.  The validator enforces
     both the byte-identity and the memory bound. *)
  let ckpt_interval = max 16 (n / 16) in
  let rx =
    Dr_slicing.Reexec.create ~cfg:c.Dr_slicing.Collector.cfg ~ckpt_interval
      ~cache_windows:2 p.w_prog p.w_pinball
  in
  let lp_lite = Dr_slicing.Lp.prepare_lite gt' in
  let reexec crit =
    Dr_slicing.Slicer.compute ~lp:lp_lite ~driver:(`Reexec rx) gt' crit
  in
  let reexec_identical =
    List.for_all
      (fun crit ->
        let base = clean ~indexed:true ~block_skipping:true crit in
        let s = reexec crit in
        s.Dr_slicing.Slicer.positions = base.Dr_slicing.Slicer.positions
        && canonical_edges s = canonical_edges base)
      p.criteria
  in
  let _, reexec_slice_s =
    time (fun () -> List.iter (fun crit -> ignore (reexec crit)) p.criteria)
  in
  let rx_stats = Dr_slicing.Reexec.stats rx in
  let reexec_peak_mem = rx_stats.Dr_slicing.Reexec.peak_resident_bytes in
  let reexec_window_hit_rate =
    let hits = rx_stats.Dr_slicing.Reexec.window_hits in
    let misses = rx_stats.Dr_slicing.Reexec.windows_rederived in
    if hits + misses > 0 then
      float_of_int hits /. float_of_int (hits + misses)
    else 0.0
  in
  ( spilled_segments,
    spill_read_s,
    List.length (Dr_util.Budget.degradations budget),
    spill_identical,
    !total_bytes,
    reexec_slice_s,
    reexec_peak_mem,
    reexec_identical,
    Dr_slicing.Segment_store.cache_hit_rate store,
    reexec_window_hit_rate )

let measure ~reps ~pool (p : prepared) : measured =
  let gt = p.gt and lp = p.lp in
  let records = Dr_slicing.Global_trace.length gt in
  let code = p.w_prog.Dr_isa.Program.code in
  let ncode = Array.length code in
  let sf, static_prepare_s =
    time (fun () ->
        Dr_slicing.Lp.prepare_static lp gt
          ~reg_defs:(fun pc ->
            if pc >= 0 && pc < ncode then Dr_static.Defuse.def_mask code.(pc)
            else 0)
          ~writes_mem:(fun pc ->
            pc >= 0 && pc < ncode && Dr_static.Defuse.writes_mem code.(pc)))
  in
  let compute ?static_filter ~indexed ~block_skipping crit =
    Dr_slicing.Slicer.compute ?static_filter ~lp ~indexed ~block_skipping gt
      crit
  in
  (* correctness first: all four drivers must agree on every criterion *)
  let identical =
    List.for_all
      (fun crit ->
        let fast = compute ~indexed:true ~block_skipping:true crit in
        let skip = compute ~indexed:false ~block_skipping:true crit in
        let sskip =
          compute ~static_filter:sf ~indexed:false ~block_skipping:true crit
        in
        let noskip = compute ~indexed:false ~block_skipping:false crit in
        fast.Dr_slicing.Slicer.positions = skip.Dr_slicing.Slicer.positions
        && skip.Dr_slicing.Slicer.positions
           = sskip.Dr_slicing.Slicer.positions
        && skip.Dr_slicing.Slicer.positions
           = noskip.Dr_slicing.Slicer.positions
        && canonical_edges fast = canonical_edges skip
        && canonical_edges skip = canonical_edges sskip
        && canonical_edges skip = canonical_edges noskip)
      p.criteria
  in
  (* stats from one pass per driver *)
  let stats ?static_filter ~indexed ~block_skipping () =
    List.fold_left
      (fun (v, sk, st, sz) crit ->
        let s = compute ?static_filter ~indexed ~block_skipping crit in
        ( v + s.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.visited,
          sk + s.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.skipped_blocks,
          st
          + s.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.static_skipped_blocks,
          sz + Dr_slicing.Slicer.size s ))
      (0, 0, 0, 0) p.criteria
  in
  let visited_indexed, _, _, slice_size_total =
    stats ~indexed:true ~block_skipping:true ()
  in
  let visited_scan, blocks_skipped, _, _ =
    stats ~indexed:false ~block_skipping:true ()
  in
  let _, _, static_skips, _ =
    stats ~static_filter:sf ~indexed:false ~block_skipping:true ()
  in
  (* timed runs: tracing off, so the measured loops stay comparable to
     pre-observability baselines (the gate is a single field check) *)
  let timed ?static_filter ~indexed ~block_skipping () =
    let _, t =
      time (fun () ->
          for _ = 1 to reps do
            List.iter
              (fun crit ->
                ignore (compute ?static_filter ~indexed ~block_skipping crit))
              p.criteria
          done)
    in
    t
  in
  (* domain-parallel fan-out: same criteria through compute_many; the
     validator fails the run if these differ from the sequential slices *)
  let par = Dr_slicing.Slicer.compute_many ~lp ~pool gt p.criteria in
  let par_identical =
    List.for_all2
      (fun crit par_s ->
        let seq = compute ~indexed:true ~block_skipping:true crit in
        par_s.Dr_slicing.Slicer.positions = seq.Dr_slicing.Slicer.positions
        && canonical_edges par_s = canonical_edges seq)
      p.criteria par
  in
  let par_slice_size_total =
    List.fold_left (fun acc s -> acc + Dr_slicing.Slicer.size s) 0 par
  in
  let was_enabled = Dr_obs.Obs.enabled () in
  Dr_obs.Obs.set_enabled false;
  let indexed_s = timed ~indexed:true ~block_skipping:true () in
  let scan_skip_s = timed ~indexed:false ~block_skipping:true () in
  let scan_static_s =
    timed ~static_filter:sf ~indexed:false ~block_skipping:true ()
  in
  let scan_noskip_s = timed ~indexed:false ~block_skipping:false () in
  let _, par_slice_s =
    time (fun () ->
        for _ = 1 to reps do
          ignore (Dr_slicing.Slicer.compute_many ~lp ~pool gt p.criteria)
        done)
  in
  Dr_obs.Obs.set_enabled was_enabled;
  let ( spilled_segments,
        spill_read_s,
        degradations,
        spill_identical,
        record_bytes_total,
        reexec_slice_s,
        reexec_peak_mem,
        reexec_identical,
        segstore_hit_rate,
        reexec_window_hit_rate ) =
    measure_spill p
  in
  { records; n_criteria = List.length p.criteria; reps; indexed_s;
    scan_skip_s; scan_static_s; scan_noskip_s; static_prepare_s;
    blocks_skipped; static_skips;
    total_blocks = lp.Dr_slicing.Lp.num_blocks; visited_indexed;
    visited_scan; slice_size_total; identical; spilled_segments;
    spill_read_s; degradations; spill_identical; par_slice_s;
    par_slice_size_total; par_identical; record_bytes_total;
    reexec_slice_s; reexec_peak_mem; reexec_identical;
    segstore_hit_rate; reexec_window_hit_rate }

let ratio a b = if b > 0.0 then a /. b else 0.0

let workload_json (p : prepared) (m : measured) : J.t =
  let slices = float_of_int (m.n_criteria * m.reps) in
  let per_slice_indexed = m.indexed_s /. Float.max slices 1.0 in
  J.Obj
    [ ("name", J.Str p.w_name);
      ("kind", J.Str p.w_kind);
      ("records", J.int m.records);
      ("criteria", J.int m.n_criteria);
      ("reps", J.int m.reps);
      ("collect_s", J.Num p.collect_s);
      ("construct_s", J.Num p.construct_s);
      ("lp_prepare_s", J.Num p.lp_s);
      ("static_prepare_s", J.Num m.static_prepare_s);
      ("indexed_s", J.Num m.indexed_s);
      ("scan_skip_s", J.Num m.scan_skip_s);
      ("scan_static_s", J.Num m.scan_static_s);
      ("scan_noskip_s", J.Num m.scan_noskip_s);
      ("speedup_vs_scan_skip", J.Num (ratio m.scan_skip_s m.indexed_s));
      ("speedup_vs_scan_noskip", J.Num (ratio m.scan_noskip_s m.indexed_s));
      ( "records_per_s_indexed",
        J.Num (ratio (float_of_int m.records) per_slice_indexed) );
      ("blocks_skipped", J.int m.blocks_skipped);
      ("static_skips", J.int m.static_skips);
      ("total_blocks", J.int m.total_blocks);
      ( "visited_ratio_indexed",
        J.Num
          (ratio
             (float_of_int m.visited_indexed)
             (float_of_int (m.records * m.n_criteria))) );
      ( "visited_ratio_scan",
        J.Num
          (ratio (float_of_int m.visited_scan)
             (float_of_int (m.records * m.n_criteria))) );
      ( "slice_size_avg",
        J.Num (ratio (float_of_int m.slice_size_total) (float_of_int m.n_criteria)) );
      ("slice_size_total", J.int m.slice_size_total);
      ("results_identical", J.Bool m.identical);
      ("spilled_segments", J.int m.spilled_segments);
      ("spill_read_s", J.Num m.spill_read_s);
      ("degradations", J.int m.degradations);
      ("spill_identical", J.Bool m.spill_identical);
      ("par_slice_s", J.Num m.par_slice_s);
      ("par_speedup", J.Num (ratio m.indexed_s m.par_slice_s));
      ("par_slice_size_total", J.int m.par_slice_size_total);
      ("par_identical", J.Bool m.par_identical);
      ("record_bytes_total", J.int m.record_bytes_total);
      ("reexec_slice_s", J.Num m.reexec_slice_s);
      ("reexec_peak_mem", J.int m.reexec_peak_mem);
      ("reexec_identical", J.Bool m.reexec_identical);
      ("segstore_hit_rate", J.Num m.segstore_hit_rate);
      ("reexec_window_hit_rate", J.Num m.reexec_window_hit_rate) ]

let metrics_json () : J.t =
  J.Obj
    (List.map
       (fun (name, v) ->
         match v with
         | `Counter n -> (name, J.int n)
         | `Timer (s, e) ->
           (name, J.Obj [ ("seconds", J.Num s); ("events", J.int e) ]))
       (Dr_obs.Metrics.report ()))

(* Per-slot pool utilization from the always-on scalar metrics: how many
   tasks each pool slot (0 = caller, 1.. = workers) claimed across the
   whole run and how long it spent executing them.  Slot balance close
   to uniform means the claim loop is not starving workers. *)
let pool_utilization_json ~domains () : J.t =
  let report = Dr_obs.Metrics.report () in
  let slot i =
    let claimed =
      match
        List.assoc_opt (Printf.sprintf "pool.slot%d.tasks_claimed" i) report
      with
      | Some (`Counter n) -> n
      | _ -> 0
    in
    let busy_s, busy_events =
      match List.assoc_opt (Printf.sprintf "pool.slot%d.busy" i) report with
      | Some (`Timer (s, e)) -> (s, e)
      | _ -> (0.0, 0)
    in
    J.Obj
      [ ("slot", J.int i);
        ("tasks_claimed", J.int claimed);
        ("busy_s", J.Num busy_s);
        ("busy_events", J.int busy_events) ]
  in
  J.List (List.init domains slot)

(** Run the slicing benchmark and write [out] (BENCH_slicing.json).
    [domains] sizes the pool the parallel fan-out measurements use. *)
let run ~quick ?(domains = 2) ~out () =
  (* tracing on for the preparation and stats passes (their spans feed
     the embedded run report); [measure] turns it off around the timed
     loops so the measurements stay gate-check-only *)
  Dr_obs.Obs.reset ();
  Dr_obs.Obs.set_enabled true;
  let n_criteria = if quick then 3 else 6 in
  let reps = if quick then 1 else 3 in
  let main_instrs = if quick then 6_000 else 40_000 in
  let seeds = if quick then [ 11; 23; 37 ] else [ 3; 7; 11; 23; 31; 37; 43; 51 ] in
  let keep = if quick then 2 else 3 in
  let registry_names = [ "pbzip2"; "streamcluster"; "ammp" ] in
  let prepared =
    List.map
      (fun name -> prepare_registry ~name ~main_instrs ~n_criteria)
      registry_names
    @ prepare_generated ~seeds ~keep ~n_criteria
  in
  printf "%-16s %-10s %9s %10s %10s %10s %10s %8s %7s %6s %s\n" "workload"
    "kind" "records" "indexed" "scan+skip" "scan+stat" "scan" "speedup"
    "sskips" "spill" "identical";
  let domains = max 1 domains in
  let pool = Dr_util.Pool.create ~domains () in
  let rows =
    List.map
      (fun p ->
        let m = measure ~reps ~pool p in
        printf
          "%-16s %-10s %9d %9.4fs %9.4fs %9.4fs %9.4fs %7.1fx %7d %6d %b/%b\n"
          p.w_name p.w_kind m.records m.indexed_s m.scan_skip_s
          m.scan_static_s m.scan_noskip_s
          (ratio m.scan_skip_s m.indexed_s)
          m.static_skips m.spilled_segments m.identical m.spill_identical;
        (p, m))
      prepared
  in
  Dr_util.Pool.shutdown pool;
  let largest_generated =
    rows
    |> List.filter (fun (p, _) -> p.w_kind = "generated")
    |> List.sort (fun (_, a) (_, b) -> Int.compare b.records a.records)
    |> function
    | [] -> J.Null
    | (p, m) :: _ ->
      J.Obj
        [ ("name", J.Str p.w_name);
          ("records", J.int m.records);
          ("speedup_vs_scan_skip", J.Num (ratio m.scan_skip_s m.indexed_s));
          ("results_identical", J.Bool m.identical) ]
  in
  let doc =
    J.Obj
      [ ("schema", J.Str schema_version);
        ("quick", J.Bool quick);
        ("domains", J.int domains);
        ("workloads", J.List (List.map (fun (p, m) -> workload_json p m) rows));
        ("largest_generated", largest_generated);
        ("pool_utilization", pool_utilization_json ~domains ());
        ("metrics", metrics_json ());
        ("report", Dr_obs.Report.document ~label:"slicing-bench" ()) ]
  in
  Dr_obs.Obs.set_enabled false;
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (J.to_string doc);
      Out_channel.output_char oc '\n');
  printf "wrote %s\n" out
