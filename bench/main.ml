(* DrDebug benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 7).

     table1    Table 1   bug inventory + reproduction check
     table2    Table 2   overheads with the buggy execution region
     table3    Table 3   overheads with the whole-program region
     fig11     Fig. 11   logging times vs region length (PARSEC)
     fig12     Fig. 12   replay times vs region length (PARSEC)
     fig13     Fig. 13   slice-size reduction from save/restore pruning
     fig14     Fig. 14   execution-slice replay times + slice %
     sec7text  section 7 prose: tracing time, slice size, slicing time
     micro     Bechamel micro-benchmarks, one per table/figure
     races     static race candidates vs seeded Maple campaigns

   Usage: dune exec bench/main.exe -- [experiment ...] [--quick]
   With no arguments, all experiments run.  --quick caps the fig11/12
   sweep at 100k instructions.

   Instruction counts are scaled down ~100x from the paper (the substrate
   is an interpreter, not native-under-Pin); the shapes — linear scaling,
   who wins, slice percentages — are the reproduction target.  See
   EXPERIMENTS.md. *)

let quick = ref false

let printf = Printf.printf

let hr () = printf "%s\n" (String.make 78 '-')

let section title =
  printf "\n";
  hr ();
  printf "%s\n" title;
  hr ()

(* ---------- shared helpers ---------- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let log_or_fail ?policy ?max_steps prog spec =
  match Dr_pinplay.Logger.log ?policy ?max_steps prog spec with
  | Ok r -> r
  | Error e -> failwith (Format.asprintf "logging failed: %a" Dr_pinplay.Logger.pp_error e)

(* Criteria for "the last N read instructions, spread across threads"
   (section 7): walk the global trace backwards, first taking the last
   data load of each thread, then the most recent remaining loads.
   Pop/ret also read memory but make degenerate criteria (their cone is
   the matching push), so only Load instructions qualify. *)
let last_load_criteria ?prog gt ~n =
  let is_data_load (r : Dr_slicing.Trace.record) =
    Dr_slicing.Trace.is_load r
    &&
    match prog with
    | None -> true
    | Some (p : Dr_isa.Program.t) -> (
      match Dr_isa.Program.instr p r.Dr_slicing.Trace.pc with
      | Some (Dr_isa.Instr.Load _) -> true
      | _ -> false)
  in
  let len = Dr_slicing.Global_trace.length gt in
  let per_tid = Hashtbl.create 8 in
  let rest = ref [] in
  let found = ref 0 in
  let pos = ref (len - 1) in
  while !found < n * 4 && !pos >= 0 do
    let r = Dr_slicing.Global_trace.record gt !pos in
    if is_data_load r then begin
      incr found;
      if not (Hashtbl.mem per_tid r.Dr_slicing.Trace.tid) then
        Hashtbl.replace per_tid r.Dr_slicing.Trace.tid !pos
      else rest := !pos :: !rest
    end;
    decr pos
  done;
  let spread = Hashtbl.fold (fun _ p acc -> p :: acc) per_tid [] in
  let all = List.sort (fun a b -> compare b a) (spread @ !rest) in
  List.filteri (fun i _ -> i < n) all

(* Full slicing pipeline timings for one pinball. *)
type slicing_run = {
  collect_s : float;
  construct_s : float;
  lp_s : float;
  analysis : Dr_slicing.Collector.result * Dr_slicing.Global_trace.t * Dr_slicing.Lp.t;
}

let run_slicing_pipeline ?(refine = true) prog pb : slicing_run =
  let c, collect_s = time (fun () -> Dr_slicing.Collector.collect ~refine prog pb) in
  let gt, construct_s = time (fun () -> Dr_slicing.Global_trace.construct c) in
  let lp, lp_s = time (fun () -> Dr_slicing.Lp.prepare gt) in
  { collect_s; construct_s; lp_s; analysis = (c, gt, lp) }

(* ---------- Table 1 ---------- *)

let table1 () =
  section "Table 1: Data race bugs used in our experiments";
  printf "%-9s| %-40s| %-5s| %s\n" "Program" "Program Description" "Type" "Bug Description";
  hr ();
  List.iter
    (fun (b : Dr_workloads.Bugs.t) ->
      printf "%-9s| %-40s| %-5s| %s\n" b.Dr_workloads.Bugs.name
        b.Dr_workloads.Bugs.program_description "Real"
        b.Dr_workloads.Bugs.description)
    Dr_workloads.Bugs.all;
  hr ();
  printf "reproduction check (modelled bugs, seeded schedule search):\n";
  List.iter
    (fun (b : Dr_workloads.Bugs.t) ->
      match Dr_workloads.Bugs.find_failing_seed b with
      | Some (seed, reason) ->
        printf "  %-9s manifests (seed %d): %s\n" b.Dr_workloads.Bugs.name seed
          (Format.asprintf "%a" Dr_machine.Driver.pp_stop_reason reason)
      | None -> printf "  %-9s DID NOT MANIFEST\n" b.Dr_workloads.Bugs.name)
    Dr_workloads.Bugs.all

(* ---------- Tables 2 and 3 ---------- *)

(* main-thread icount when the root-cause line first executes *)
let skip_to_root_cause prog ~seed ~root_line =
  let m = Dr_machine.Machine.create prog in
  let dbg = prog.Dr_isa.Program.debug in
  let main_at = ref 0 in
  let stop =
    Dr_machine.Driver.run ~max_steps:10_000_000 m
      ~stop_when:(fun ev ->
        match Dr_isa.Debug_info.line_of_pc dbg ev.Dr_machine.Event.pc with
        | Some l when l = root_line ->
          main_at := (Dr_machine.Machine.thread m 0).Dr_machine.Machine.icount;
          true
        | _ -> false)
      (Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
  in
  match stop with
  | Dr_machine.Driver.Stop_requested -> Some !main_at
  | _ -> None

type bug_row = {
  r_name : string;
  r_executed : int;
  r_slice_instrs : int;
  r_slice_pct : float;
  r_log_time : float;
  r_space_kb : float;
  r_replay_time : float;
  r_slicing_time : float;
}

let measure_bug ~(b : Dr_workloads.Bugs.t) ~whole : bug_row =
  let seed, _ =
    match Dr_workloads.Bugs.find_failing_seed b with
    | Some s -> s
    | None -> failwith (b.Dr_workloads.Bugs.name ^ ": bug did not manifest")
  in
  let prog = Dr_workloads.Bugs.compile b in
  let policy = Dr_machine.Driver.Seeded { seed; max_quantum = 3 } in
  let skip =
    if whole then 0
    else
      match skip_to_root_cause prog ~seed ~root_line:b.Dr_workloads.Bugs.root_cause_line with
      | Some s -> max 0 (s - 20)
      | None -> 0
  in
  (* capture from the region start to the failure point *)
  let pb, stats =
    log_or_fail ~policy prog
      (Dr_pinplay.Logger.Skip_until { skip; until = (fun _ -> false) })
  in
  let executed = stats.Dr_pinplay.Logger.region_instructions in
  (* replay, timed *)
  let _, replay_time = time (fun () -> Dr_pinplay.Replayer.replay prog pb) in
  (* slice the failure point *)
  let sr = run_slicing_pipeline prog pb in
  let c, gt, lp = sr.analysis in
  let slice, slice_s =
    time (fun () ->
        Dr_slicing.Slicer.compute ~lp ~pairs:c.Dr_slicing.Collector.pairs gt
          { Dr_slicing.Slicer.crit_pos = Dr_slicing.Global_trace.length gt - 1;
            crit_locs = None })
  in
  let slicing_time = sr.collect_s +. sr.construct_s +. sr.lp_s +. slice_s in
  (* the slice pinball *)
  let spb, _ = Dr_exeslice.Exclusion.slice_pinball prog pb ~slice ~collector:c in
  let slice_instrs = Dr_pinplay.Pinball.step_count spb in
  { r_name = b.Dr_workloads.Bugs.name;
    r_executed = executed;
    r_slice_instrs = slice_instrs;
    r_slice_pct = Dr_util.Stats.percent ~part:slice_instrs ~total:executed;
    r_log_time = stats.Dr_pinplay.Logger.log_time;
    r_space_kb = float_of_int stats.Dr_pinplay.Logger.pinball_bytes /. 1024.0;
    r_replay_time = replay_time;
    r_slicing_time = slicing_time }

let print_bug_table rows =
  printf "%-9s| %-10s| %-22s| %-9s %-9s| %-8s| %s\n" "Program" "#executed"
    "#instrs in slice pinball" "Logging" "" "Replay" "Slicing";
  printf "%-9s| %-10s| %-22s| %-9s %-9s| %-8s| %s\n" "Name" "instrs"
    "(% of executed)" "Time(s)" "Space(KB)" "Time(s)" "Time(s)";
  hr ();
  List.iter
    (fun r ->
      printf "%-9s| %-10d| %8d (%5.2f%%)      | %-9.3f %-9.1f| %-8.3f| %.3f\n"
        r.r_name r.r_executed r.r_slice_instrs r.r_slice_pct r.r_log_time
        r.r_space_kb r.r_replay_time r.r_slicing_time)
    rows

let table2 () =
  section "Table 2: overheads for data race bugs with buggy execution region";
  print_bug_table
    (List.map (fun b -> measure_bug ~b ~whole:false) Dr_workloads.Bugs.all)

let table3 () =
  section "Table 3: overheads for data race bugs with whole program execution region";
  print_bug_table
    (List.map (fun b -> measure_bug ~b ~whole:true) Dr_workloads.Bugs.all)

(* ---------- Figures 11 and 12 ---------- *)

let fig11_lengths () =
  if !quick then [ 10_000; 31_600; 100_000 ]
  else [ 10_000; 31_600; 100_000; 316_000; 1_000_000 ]

let fig11_skip = 1_000

(* shared measurement: log then replay each region *)
let fig11_data = ref []

let measure_fig11 () =
  if !fig11_data = [] then begin
    let lengths = fig11_lengths () in
    let max_len = List.fold_left max 0 lengths in
    fig11_data :=
      List.map
        (fun (w : Dr_workloads.Parsec.t) ->
          let entry =
            Option.get (Dr_workloads.Registry.find w.Dr_workloads.Parsec.name)
          in
          let iters =
            Dr_workloads.Registry.iters_for entry
              ~main_instrs:(fig11_skip + max_len) ()
          in
          let prog = Dr_workloads.Parsec.compile ~threads:4 ~iters w in
          let rows =
            List.map
              (fun length ->
                let pb, stats =
                  log_or_fail prog
                    (Dr_pinplay.Logger.Skip_length { skip = fig11_skip; length })
                in
                let _, replay_s =
                  time (fun () -> Dr_pinplay.Replayer.replay prog pb)
                in
                ( length,
                  stats.Dr_pinplay.Logger.log_time,
                  replay_s,
                  stats.Dr_pinplay.Logger.region_instructions,
                  stats.Dr_pinplay.Logger.pinball_bytes ))
              lengths
          in
          (w.Dr_workloads.Parsec.name, w.Dr_workloads.Parsec.kind, rows))
        Dr_workloads.Parsec.all
  end;
  !fig11_data

let print_sweep ~title ~select () =
  section title;
  let data = measure_fig11 () in
  let lengths = fig11_lengths () in
  printf "%-14s %-7s|" "program" "kind";
  List.iter (fun l -> printf " %9s |" (Printf.sprintf "%dk" (l / 1000))) lengths;
  printf "\n";
  hr ();
  List.iter
    (fun (name, kind, rows) ->
      printf "%-14s %-7s|" name
        (match kind with Dr_workloads.Parsec.App -> "app" | _ -> "kernel");
      List.iter (fun row -> printf " %8.3fs |" (select row)) rows;
      printf "\n")
    data;
  printf
    "(main-thread region lengths; skip=%d; all-thread instructions are ~3-5x)\n"
    fig11_skip

let fig11 () =
  print_sweep
    ~title:"Figure 11: logging times (wall clock) for regions of varying sizes"
    ~select:(fun (_, log_s, _, _, _) -> log_s)
    ()

let fig12 () =
  print_sweep
    ~title:"Figure 12: replay times (wall clock) for regions of varying sizes"
    ~select:(fun (_, _, replay_s, _, _) -> replay_s)
    ();
  (* the paper also notes pinball sizes are not proportional to length *)
  let data = measure_fig11 () in
  printf "\npinball sizes (KB) for the same regions:\n";
  List.iter
    (fun (name, _, rows) ->
      printf "%-14s |" name;
      List.iter (fun (_, _, _, _, bytes) -> printf " %8.1f |" (float_of_int bytes /. 1024.)) rows;
      printf "\n")
    data

(* ---------- Figure 13 ---------- *)

let fig13_lengths = [ 10_000; 100_000 ]  (* paper: 1M and 10M *)

let fig13 () =
  section
    "Figure 13: removal of spurious dependences - % reduction in slice sizes\n\
     (10 slices per region; MaxSave = 10; SPECOMP analogues)";
  printf "%-10s|" "program";
  List.iter (fun l -> printf " %8s region |" (Printf.sprintf "%dk" (l / 1000))) fig13_lengths;
  printf "\n";
  hr ();
  let per_length_reductions = Hashtbl.create 4 in
  List.iter
    (fun (w : Dr_workloads.Specomp.t) ->
      let entry = Option.get (Dr_workloads.Registry.find w.Dr_workloads.Specomp.name) in
      printf "%-10s|" w.Dr_workloads.Specomp.name;
      List.iter
        (fun length ->
          let iters =
            Dr_workloads.Registry.iters_for entry ~main_instrs:(500 + length) ()
          in
          let prog = Dr_workloads.Specomp.compile ~threads:4 ~iters w in
          let pb, _ =
            log_or_fail prog (Dr_pinplay.Logger.Skip_length { skip = 500; length })
          in
          let sr = run_slicing_pipeline prog pb in
          let c, gt, lp = sr.analysis in
          let criteria = last_load_criteria ~prog gt ~n:10 in
          let reductions =
            List.map
              (fun pos ->
                let crit = { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None } in
                let unpruned = Dr_slicing.Slicer.compute ~lp gt crit in
                let pruned =
                  Dr_slicing.Slicer.compute ~lp
                    ~pairs:c.Dr_slicing.Collector.pairs gt crit
                in
                let u = Dr_slicing.Slicer.size unpruned in
                let p = Dr_slicing.Slicer.size pruned in
                if u = 0 then 0.0 else 100.0 *. float_of_int (u - p) /. float_of_int u)
              criteria
          in
          let avg = Dr_util.Stats.mean reductions in
          let old = Option.value ~default:[] (Hashtbl.find_opt per_length_reductions length) in
          Hashtbl.replace per_length_reductions length (avg :: old);
          printf " %8.2f%%      |" avg)
        fig13_lengths;
      printf "\n")
    Dr_workloads.Specomp.all;
  hr ();
  printf "%-10s|" "average";
  List.iter
    (fun length ->
      let avg =
        Dr_util.Stats.mean
          (Option.value ~default:[] (Hashtbl.find_opt per_length_reductions length))
      in
      printf " %8.2f%%      |" avg)
    fig13_lengths;
  printf "\n(paper: 9.49%% for 1M regions, 6.31%% for 10M regions)\n"

(* ---------- Figure 14 + section 7 text ---------- *)

type fig14_row = {
  f_name : string;
  f_full_replay_s : float;
  f_avg_slice_replay_s : float;
  f_avg_slice_pct : float;
  f_collect_s : float;
  f_avg_slice_size : int;
  f_avg_slice_time : float;
}

let fig14_data = ref []

let measure_fig14 () =
  if !fig14_data = [] then begin
    let length = if !quick then 30_000 else 100_000 in
    fig14_data :=
      List.map
        (fun (w : Dr_workloads.Parsec.t) ->
          let entry =
            Option.get (Dr_workloads.Registry.find w.Dr_workloads.Parsec.name)
          in
          let iters =
            Dr_workloads.Registry.iters_for entry ~main_instrs:(500 + length) ()
          in
          let prog = Dr_workloads.Parsec.compile ~threads:4 ~iters w in
          let pb, _ =
            log_or_fail prog (Dr_pinplay.Logger.Skip_length { skip = 500; length })
          in
          let total = Dr_pinplay.Pinball.schedule_instructions pb in
          let _, full_replay_s = time (fun () -> Dr_pinplay.Replayer.replay prog pb) in
          let sr = run_slicing_pipeline prog pb in
          let c, gt, lp = sr.analysis in
          let criteria = last_load_criteria ~prog gt ~n:10 in
          let slice_pcts = ref [] and slice_replays = ref [] in
          let slice_sizes = ref [] and slice_times = ref [] in
          List.iter
            (fun pos ->
              let slice, slice_s =
                time (fun () ->
                    Dr_slicing.Slicer.compute ~lp
                      ~pairs:c.Dr_slicing.Collector.pairs gt
                      { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None })
              in
              slice_sizes := Dr_slicing.Slicer.size slice :: !slice_sizes;
              slice_times := slice_s :: !slice_times;
              match
                try
                  Some
                    (Dr_exeslice.Exclusion.slice_pinball prog pb ~slice
                       ~collector:c)
                with Dr_pinplay.Relogger.Relog_error _ -> None
              with
              | None -> ()
              | Some (spb, _) ->
                let steps = Dr_pinplay.Pinball.step_count spb in
                slice_pcts := Dr_util.Stats.percent ~part:steps ~total :: !slice_pcts;
                let sr2 = Dr_exeslice.Slice_replay.create prog spb in
                let _, t = time (fun () -> Dr_exeslice.Slice_replay.run sr2) in
                slice_replays := t :: !slice_replays)
            criteria;
          { f_name = w.Dr_workloads.Parsec.name;
            f_full_replay_s = full_replay_s;
            f_avg_slice_replay_s = Dr_util.Stats.mean !slice_replays;
            f_avg_slice_pct = Dr_util.Stats.mean !slice_pcts;
            f_collect_s = sr.collect_s;
            f_avg_slice_size =
              int_of_float
                (Dr_util.Stats.mean (List.map float_of_int !slice_sizes));
            f_avg_slice_time = Dr_util.Stats.mean !slice_times })
        Dr_workloads.Parsec.all
  end;
  !fig14_data

let fig14 () =
  let length_desc = if !quick then "30k" else "100k" in
  section
    (Printf.sprintf
       "Figure 14: execution slicing - avg replay times over 10 slices\n\
        (regions of %s main-thread instructions; PARSEC analogues)"
       length_desc);
  let rows = measure_fig14 () in
  printf "%-14s| %-13s| %-17s| %s\n" "program" "region replay"
    "avg slice replay" "avg %instrs in slice pinball";
  hr ();
  List.iter
    (fun r ->
      printf "%-14s| %10.3fs  | %14.3fs  | %.1f%%\n" r.f_name r.f_full_replay_s
        r.f_avg_slice_replay_s r.f_avg_slice_pct)
    rows;
  hr ();
  let avg_pct = Dr_util.Stats.mean (List.map (fun r -> r.f_avg_slice_pct) rows) in
  let avg_speedup =
    Dr_util.Stats.mean
      (List.filter_map
         (fun r ->
           if r.f_full_replay_s > 0.0 then
             Some (100.0 *. (1.0 -. (r.f_avg_slice_replay_s /. r.f_full_replay_s)))
           else None)
         rows)
  in
  printf "average: %.1f%% of instructions in slice pinballs; slice replay %.1f%% faster\n"
    avg_pct avg_speedup;
  printf "(paper: 41%% of instructions, replay 36%% faster)\n"

let sec7text () =
  section "Section 7 prose: slicing overhead and precision statistics";
  let rows = measure_fig14 () in
  printf "%-14s| %-14s| %-16s| %s\n" "program" "tracing time" "avg slice size"
    "avg slicing time";
  hr ();
  List.iter
    (fun r ->
      printf "%-14s| %11.3fs  | %8d instrs | %.3fs\n" r.f_name r.f_collect_s
        r.f_avg_slice_size r.f_avg_slice_time)
    rows;
  hr ();
  printf "averages: tracing %.3fs, slice size %d instrs, slicing %.3fs\n"
    (Dr_util.Stats.mean (List.map (fun r -> r.f_collect_s) rows))
    (int_of_float
       (Dr_util.Stats.mean (List.map (fun r -> float_of_int r.f_avg_slice_size) rows)))
    (Dr_util.Stats.mean (List.map (fun r -> r.f_avg_slice_time) rows));
  printf
    "(paper, 1M regions: tracing 51s; avg slice 218k instrs; avg slicing 585s;\n\
     \ the dynamic information is collected once per pinball and reused)\n"

(* ---------- Ablations ---------- *)

(* Design-choice ablations (DESIGN.md): the LP block skipping of §3(iii),
   the thread-clustering heuristic of §3(ii), the MaxSave window of §5.2,
   and the CFG refinement of §5.1. *)
let ablation () =
  section "Ablation: LP block skipping (paper section 3(iii))";
  let w = Option.get (Dr_workloads.Specomp.find "apsi") in
  let entry = Option.get (Dr_workloads.Registry.find "apsi") in
  let iters = Dr_workloads.Registry.iters_for entry ~main_instrs:60_000 () in
  let prog = Dr_workloads.Specomp.compile ~threads:4 ~iters w in
  let pb, _ =
    log_or_fail prog (Dr_pinplay.Logger.Skip_length { skip = 500; length = 50_000 })
  in
  let sr = run_slicing_pipeline prog pb in
  let c, gt, lp = sr.analysis in
  let criteria = last_load_criteria ~prog gt ~n:10 in
  printf "%-24s| %-12s| %-12s| %s\n" "configuration" "avg time" "avg visited"
    "avg blocks skipped";
  hr ();
  let run_config name ~block_skipping =
    let times = ref [] and visited = ref [] and skipped = ref [] in
    List.iter
      (fun pos ->
        let s, t =
          time (fun () ->
              (* scan driver on both sides: the ablation isolates LP
                 block skipping, not the indexed fast path *)
              Dr_slicing.Slicer.compute ~lp ~block_skipping ~indexed:false gt
                { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None })
        in
        times := t :: !times;
        visited := float_of_int s.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.visited :: !visited;
        skipped :=
          float_of_int s.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.skipped_blocks
          :: !skipped)
      criteria;
    printf "%-24s| %9.4fs  | %10.0f  | %.0f / %d\n" name
      (Dr_util.Stats.mean !times)
      (Dr_util.Stats.mean !visited)
      (Dr_util.Stats.mean !skipped)
      lp.Dr_slicing.Lp.num_blocks
  in
  run_config "LP skipping on" ~block_skipping:true;
  run_config "LP skipping off" ~block_skipping:false;
  printf
    "(broad slices touch most blocks, so skipping is a wash here; LP pays\n\
     \ off on narrow slices over long traces, below)\n";
  (* narrow-cone case: a long irrelevant prefix before a small relevant
     computation — the regime LP was designed for *)
  let narrow_src = {|global int g;
global int noise;
fn main() {
  for (int i = 0; i < 40000; i = i + 1) {
    noise = noise + i;
  }
  int a = 5;
  int b = a * 2;
  g = b + 1;
  print(g);
}|}
  in
  let narrow_prog =
    match Dr_lang.Codegen.compile_result ~name:"narrow" narrow_src with
    | Ok p -> p
    | Error e -> failwith e
  in
  let narrow_pb, _ = log_or_fail narrow_prog Dr_pinplay.Logger.Whole in
  let nsr = run_slicing_pipeline narrow_prog narrow_pb in
  let _, ngt, nlp = nsr.analysis in
  (* criterion: the load of g feeding the final print — a narrow cone
     (a, b, g) at the very end of a long noisy trace *)
  let ncrit =
    { Dr_slicing.Slicer.crit_pos =
        List.hd (last_load_criteria ~prog:narrow_prog ngt ~n:1);
      crit_locs = None }
  in
  printf "\nnarrow slice over a %d-instruction trace:\n"
    (Dr_slicing.Global_trace.length ngt);
  List.iter
    (fun (name, bs) ->
      let s, t =
        time (fun () ->
            Dr_slicing.Slicer.compute ~lp:nlp ~block_skipping:bs ~indexed:false
              ngt ncrit)
      in
      printf "%-24s| %9.4fs  | visited %7d  | skipped %d/%d blocks\n" name t
        s.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.visited
        s.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.skipped_blocks
        nlp.Dr_slicing.Lp.num_blocks)
    [ ("LP skipping on", true); ("LP skipping off", false) ];

  section "Ablation: thread clustering in global trace construction (section 3(ii))";
  printf "%-24s| %-12s| %s\n" "configuration" "construct" "thread switches in order";
  hr ();
  let switches gt2 =
    let sw = ref 0 in
    for pos = 1 to Dr_slicing.Global_trace.length gt2 - 1 do
      if
        (Dr_slicing.Global_trace.record gt2 pos).Dr_slicing.Trace.tid
        <> (Dr_slicing.Global_trace.record gt2 (pos - 1)).Dr_slicing.Trace.tid
      then incr sw
    done;
    !sw
  in
  List.iter
    (fun (name, cluster) ->
      let gt2, t = time (fun () -> Dr_slicing.Global_trace.construct ~cluster c) in
      printf "%-24s| %9.4fs  | %d\n" name t (switches gt2))
    [ ("clustering on", true); ("clustering off", false) ];

  section "Ablation: MaxSave window for save/restore detection (section 5.2)";
  printf "%-10s| %-16s| %s\n" "MaxSave" "confirmed pairs" "avg slice reduction";
  hr ();
  List.iter
    (fun max_save ->
      let c2 = Dr_slicing.Collector.collect ~max_save prog pb in
      let gt2 = Dr_slicing.Global_trace.construct c2 in
      let lp2 = Dr_slicing.Lp.prepare gt2 in
      let criteria2 = last_load_criteria ~prog gt2 ~n:5 in
      let reductions =
        List.map
          (fun pos ->
            let crit = { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None } in
            let u = Dr_slicing.Slicer.compute ~lp:lp2 gt2 crit in
            let p =
              Dr_slicing.Slicer.compute ~lp:lp2
                ~pairs:c2.Dr_slicing.Collector.pairs gt2 crit
            in
            let us = Dr_slicing.Slicer.size u and ps = Dr_slicing.Slicer.size p in
            if us = 0 then 0.0 else 100.0 *. float_of_int (us - ps) /. float_of_int us)
          criteria2
      in
      printf "%-10d| %14d  | %.2f%%\n" max_save
        (Hashtbl.length c2.Dr_slicing.Collector.pairs)
        (Dr_util.Stats.mean reductions))
    [ 0; 1; 2; 4; 10 ];

  section "Ablation: CFG refinement with dynamic jump targets (section 5.1)";
  printf "%-24s| %-16s| %s\n" "configuration" "indirect targets" "avg slice size";
  hr ();
  (* use a switch-heavy program so indirect jumps matter *)
  let sw_src = {|global int acc;
fn classify(int x) {
  int r = 0;
  switch (x % 5) {
    case 0: r = x + 1; break;
    case 1: r = x - 1; break;
    case 2: r = x * 2; break;
    case 3: r = x / 2; break;
    default: r = 0 - x; break;
  }
  return r;
}
fn main() {
  for (int i = 0; i < 2000; i = i + 1) {
    acc = acc + classify(i);
  }
  print(acc);
}|}
  in
  let sw_prog =
    match Dr_lang.Codegen.compile_result ~name:"switchy" sw_src with
    | Ok p -> p
    | Error e -> failwith e
  in
  let sw_pb, _ = log_or_fail sw_prog Dr_pinplay.Logger.Whole in
  List.iter
    (fun (name, refine) ->
      let c2 = Dr_slicing.Collector.collect ~refine sw_prog sw_pb in
      let gt2 = Dr_slicing.Global_trace.construct c2 in
      let lp2 = Dr_slicing.Lp.prepare gt2 in
      let criteria2 = last_load_criteria ~prog:sw_prog gt2 ~n:5 in
      let sizes =
        List.map
          (fun pos ->
            float_of_int
              (Dr_slicing.Slicer.size
                 (Dr_slicing.Slicer.compute ~lp:lp2 gt2
                    { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None })))
          criteria2
      in
      printf "%-24s| %14d  | %.0f instrs\n" name
        (List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0
           c2.Dr_slicing.Collector.indirect_targets)
        (Dr_util.Stats.mean sizes))
    [ ("refinement off", false); ("refinement on", true) ];
  printf
    "(the approximate CFG errs both ways: it misses control dependences\n\
     \ through the jump table — Fig. 7's missing statements — and it\n\
     \ over-extends other branches' regions to the function exit; refinement\n\
     \ fixes both, so refined slices are complete AND often smaller)\n"

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro () =
  section "Bechamel micro-benchmarks (one per table/figure)";
  (* staged resources *)
  let bug = Option.get (Dr_workloads.Bugs.find "pbzip2") in
  let bug_seed, _ = Option.get (Dr_workloads.Bugs.find_failing_seed bug) in
  let bug_prog = Dr_workloads.Bugs.compile bug in
  let bug_policy = Dr_machine.Driver.Seeded { seed = bug_seed; max_quantum = 3 } in
  let bug_pb, _ = log_or_fail ~policy:bug_policy bug_prog Dr_pinplay.Logger.Whole in
  let bs = Option.get (Dr_workloads.Parsec.find "blackscholes") in
  let bs_entry = Option.get (Dr_workloads.Registry.find "blackscholes") in
  let bs_iters = Dr_workloads.Registry.iters_for bs_entry ~main_instrs:12_000 () in
  let bs_prog = Dr_workloads.Parsec.compile ~threads:4 ~iters:bs_iters bs in
  let bs_pb, _ =
    log_or_fail bs_prog (Dr_pinplay.Logger.Skip_length { skip = 500; length = 10_000 })
  in
  let ammp = Option.get (Dr_workloads.Specomp.find "ammp") in
  let ammp_entry = Option.get (Dr_workloads.Registry.find "ammp") in
  let ammp_iters = Dr_workloads.Registry.iters_for ammp_entry ~main_instrs:12_000 () in
  let ammp_prog = Dr_workloads.Specomp.compile ~threads:4 ~iters:ammp_iters ammp in
  let ammp_pb, _ =
    log_or_fail ammp_prog (Dr_pinplay.Logger.Skip_length { skip = 500; length = 10_000 })
  in
  let ammp_c = Dr_slicing.Collector.collect ammp_prog ammp_pb in
  let ammp_gt = Dr_slicing.Global_trace.construct ammp_c in
  let ammp_lp = Dr_slicing.Lp.prepare ammp_gt in
  let ammp_crit =
    { Dr_slicing.Slicer.crit_pos = Dr_slicing.Global_trace.length ammp_gt - 1;
      crit_locs = None }
  in
  let bs_c = Dr_slicing.Collector.collect bs_prog bs_pb in
  let bs_gt = Dr_slicing.Global_trace.construct bs_c in
  let bs_lp = Dr_slicing.Lp.prepare bs_gt in
  let bs_slice =
    Dr_slicing.Slicer.compute ~lp:bs_lp ~pairs:bs_c.Dr_slicing.Collector.pairs
      bs_gt
      { Dr_slicing.Slicer.crit_pos = Dr_slicing.Global_trace.length bs_gt - 1;
        crit_locs = None }
  in
  let bs_spb, _ =
    Dr_exeslice.Exclusion.slice_pinball bs_prog bs_pb ~slice:bs_slice
      ~collector:bs_c
  in
  let open Bechamel in
  let tests =
    [ Test.make ~name:"table1/bug-reproduction"
        (Staged.stage (fun () ->
             let m = Dr_machine.Machine.create bug_prog in
             ignore (Dr_machine.Driver.run ~max_steps:200_000 m bug_policy)));
      Test.make ~name:"table2/log-buggy-region"
        (Staged.stage (fun () ->
             ignore (log_or_fail ~policy:bug_policy bug_prog Dr_pinplay.Logger.Whole)));
      Test.make ~name:"table3/replay-bug-pinball"
        (Staged.stage (fun () ->
             ignore (Dr_pinplay.Replayer.replay bug_prog bug_pb)));
      Test.make ~name:"fig11/log-10k-region"
        (Staged.stage (fun () ->
             ignore
               (log_or_fail bs_prog
                  (Dr_pinplay.Logger.Skip_length { skip = 500; length = 10_000 }))));
      Test.make ~name:"fig12/replay-10k-region"
        (Staged.stage (fun () -> ignore (Dr_pinplay.Replayer.replay bs_prog bs_pb)));
      Test.make ~name:"fig13/slice-pruned"
        (Staged.stage (fun () ->
             ignore
               (Dr_slicing.Slicer.compute ~lp:ammp_lp
                  ~pairs:ammp_c.Dr_slicing.Collector.pairs ammp_gt ammp_crit)));
      Test.make ~name:"fig13/slice-unpruned"
        (Staged.stage (fun () ->
             ignore (Dr_slicing.Slicer.compute ~lp:ammp_lp ammp_gt ammp_crit)));
      Test.make ~name:"fig14/slice-replay"
        (Staged.stage (fun () ->
             let sr = Dr_exeslice.Slice_replay.create bs_prog bs_spb in
             ignore (Dr_exeslice.Slice_replay.run sr)));
      Test.make ~name:"sec7/trace-collection"
        (Staged.stage (fun () ->
             ignore (Dr_slicing.Collector.collect ~refine:false bs_prog bs_pb))) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  printf "%-28s %14s\n" "benchmark" "time/run";
  hr ();
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            let ms = est /. 1e6 in
            printf "%-28s %11.3f ms\n" name ms
          | _ -> printf "%-28s %14s\n" name "n/a")
        analyzed)
    tests

(* ---------- driver ---------- *)

let bench_out = ref "BENCH_slicing.json"
let bench_domains = ref 2
let races_out = ref "BENCH_races.json"

let slicing () =
  section "Slicing fast path: indexed traversal vs backwards scan";
  Slicing_bench.run ~quick:!quick ~domains:!bench_domains ~out:!bench_out ()

let races () =
  section "Race detection: static candidates vs Maple campaign";
  Races_bench.run ~quick:!quick ~out:!races_out ()

let experiments =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig11", fig11); ("fig12", fig12); ("fig13", fig13); ("fig14", fig14);
    ("sec7text", sec7text); ("ablation", ablation); ("micro", micro);
    ("slicing", slicing); ("races", races) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--bench-out" :: path :: rest ->
      bench_out := path;
      parse acc rest
    | "--races-out" :: path :: rest ->
      races_out := path;
      parse acc rest
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some d when d >= 1 -> bench_domains := d
      | _ -> printf "ignoring bad --domains %s\n" n);
      parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  let chosen =
    match args with
    | [] -> List.map fst experiments
    | names -> names
  in
  printf "DrDebug benchmark harness (reproducing CGO'14 tables and figures)\n";
  if !quick then printf "[quick mode: reduced region sizes]\n";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        printf "unknown experiment %s (available: %s)\n" name
          (String.concat ", " (List.map fst experiments)))
    chosen;
  printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
