(* Pinball inspection tool: examine, verify, and dump pinball files
   (the paper notes pinballs are portable artifacts that can be shipped
   between developers — this is the tool you run on one you received).

   Usage:
     pinball_tool info <file.pinball>
     pinball_tool dump <file.pinball>            # schedule + syscalls + events
     pinball_tool verify <file.pinball>          # section CRC integrity report
     pinball_tool verify <file.pinball> --workload <name> [--threads N --iters N]
                                                 # ... plus a double-replay check
     pinball_tool migrate <in.pinball> <out.pinball>   # rewrite as format v2
     pinball_tool record --workload <name> [--seed N] [--digest-interval N] -o <file.pinball>
*)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let load path =
  try Dr_pinplay.Pinball.load_file path with
  | Sys_error e -> die "cannot read %s: %s" path e
  | Dr_pinplay.Pinball.Pinball_error e ->
    die "%s is not a valid pinball: %s" path
      (Dr_pinplay.Pinball.error_to_string e)
  | Dr_util.Codec.Corrupt e -> die "%s is not a valid pinball: %s" path e

let info path =
  let pb = load path in
  let open Dr_pinplay.Pinball in
  Printf.printf "pinball: %s\n" path;
  Printf.printf "  program:       %s\n" pb.program_name;
  Printf.printf "  kind:          %s\n"
    (match pb.kind with Region -> "region" | Slice -> "slice");
  Printf.printf "  region:        skip=%d length=%d (main-thread instructions)\n"
    pb.region.skip pb.region.length;
  Printf.printf "  instructions:  %d (all threads)\n" (schedule_instructions pb);
  Printf.printf "  schedule:      %d slices\n" (Array.length pb.schedule);
  Printf.printf "  syscalls:      %d logged results\n" (Array.length pb.syscalls);
  Printf.printf "  threads:       %d in snapshot\n"
    (List.length pb.snapshot.Dr_machine.Snapshot.threads);
  Printf.printf "  locks held:    %d\n" (List.length pb.snapshot.Dr_machine.Snapshot.locks);
  Printf.printf "  digests:       %d (every %d instructions)\n"
    (Array.length pb.digests) pb.digest_interval;
  (match pb.kind with
  | Slice ->
    Printf.printf "  slice events:  %d (%d executed instructions, %d injections)\n"
      (Array.length pb.slice_events) (step_count pb)
      (Array.length pb.injections)
  | Region -> ());
  Printf.printf "  size on disk:  %d bytes\n" (size_bytes pb)

let dump path =
  let pb = load path in
  let open Dr_pinplay.Pinball in
  Printf.printf "schedule (tid x count):\n ";
  Array.iter (fun (tid, n) -> Printf.printf " %d x%d" tid n) pb.schedule;
  Printf.printf "\nsyscall results:\n ";
  Array.iter (fun v -> Printf.printf " %d" v) pb.syscalls;
  print_newline ();
  if pb.kind = Slice then begin
    Printf.printf "slice events:\n";
    Array.iter
      (fun ev ->
        match ev with
        | Step { tid; pc } -> Printf.printf "  step tid=%d pc=%d\n" tid pc
        | Inject i ->
          let inj = pb.injections.(i) in
          Printf.printf "  inject tid=%d (%d cells, %d regs)\n" inj.inj_tid
            (List.length inj.inj_mem) (List.length inj.inj_regs))
      pb.slice_events
  end

let compile_workload name threads iters =
  match Dr_workloads.Registry.find name with
  | Some e -> e.Dr_workloads.Registry.compile ~threads ~iters
  | None ->
    die "unknown workload %s (available: %s)" name
      (String.concat ", " (Dr_workloads.Registry.names ()))

(* Integrity verification: header, section CRCs, trailer CRC, full decode.
   Prints one line per section and exits non-zero on any problem. *)
let verify_integrity path =
  let r =
    try Dr_pinplay.Pinball.verify_file path
    with Sys_error e -> die "cannot read %s: %s" path e
  in
  let open Dr_pinplay.Pinball in
  Printf.printf "pinball: %s\n" path;
  if r.r_version = 1 then
    Printf.printf "  format:  v1 (legacy — no checksums; consider `pinball_tool migrate`)\n"
  else Printf.printf "  format:  v%d\n" r.r_version;
  List.iter
    (fun s ->
      Printf.printf "  section %-12s %8d bytes  crc %s\n" s.sr_name s.sr_bytes
        (if s.sr_crc_ok then "ok" else "MISMATCH"))
    r.r_sections;
  if r.r_version > 1 then
    Printf.printf "  trailer: %s\n" (if r.r_trailer_ok then "ok" else "MISMATCH");
  if r.r_digest_count > 0 then
    Printf.printf "  digests: %d replay checkpoints\n" r.r_digest_count;
  if report_ok r then begin
    print_endline "verify: OK — all checksums match";
    true
  end
  else begin
    List.iter (fun p -> Printf.printf "  problem: %s\n" p) r.r_problems;
    print_endline "verify: FAILED — pinball is corrupt";
    false
  end

(* Replay verification: two replays of the pinball against the workload's
   program must be bit-identical (the paper's repeatability guarantee). *)
let verify_replay path name threads iters =
  let pb = load path in
  if pb.Dr_pinplay.Pinball.kind <> Dr_pinplay.Pinball.Region then
    die "replay verify supports region pinballs";
  let prog = compile_workload name threads iters in
  try
    let m, reason = Dr_pinplay.Replayer.replay prog pb in
    Printf.printf "replay 1: %s (%d instructions)\n"
      (Format.asprintf "%a" Dr_machine.Driver.pp_stop_reason reason)
      (Dr_machine.Machine.total_icount m
      - pb.Dr_pinplay.Pinball.snapshot.Dr_machine.Snapshot.total_icount);
    let m2, _ = Dr_pinplay.Replayer.replay prog pb in
    if
      Dr_machine.Machine.output_list m = Dr_machine.Machine.output_list m2
      && m.Dr_machine.Machine.mem = m2.Dr_machine.Machine.mem
    then print_endline "verify: OK — two replays are bit-identical"
    else die "verify: FAILED — replays diverged (pinball/program mismatch?)"
  with Dr_pinplay.Replayer.Divergence d ->
    die "verify: FAILED — %s (wrong program build?)"
      (Dr_pinplay.Replayer.divergence_message d)

let verify path workload threads iters =
  let intact = verify_integrity path in
  if not intact then exit 1;
  match workload with
  | Some name -> verify_replay path name threads iters
  | None -> ()

let migrate src dst =
  (try Dr_pinplay.Pinball.migrate ~src ~dst with
  | Sys_error e -> die "migrate failed: %s" e
  | Dr_pinplay.Pinball.Pinball_error e ->
    die "%s is not a valid pinball: %s" src (Dr_pinplay.Pinball.error_to_string e)
  | Dr_util.Codec.Corrupt e -> die "%s is not a valid pinball: %s" src e);
  Printf.printf "migrated %s -> %s (format v2)\n" src dst

let record name seed out threads iters digest_interval =
  let prog = compile_workload name threads iters in
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 6 })
      ~digest_interval prog Dr_pinplay.Logger.Whole
  with
  | Error e -> die "recording failed: %s" (Format.asprintf "%a" Dr_pinplay.Logger.pp_error e)
  | Ok (pb, stats) ->
    Dr_pinplay.Pinball.save_file out pb;
    Printf.printf "recorded %s: %d instructions -> %s (%d bytes)\n" name
      stats.Dr_pinplay.Logger.region_instructions out
      stats.Dr_pinplay.Logger.pinball_bytes

let () =
  let args = Array.to_list Sys.argv in
  let opt name =
    let rec go = function
      | a :: b :: _ when a = name -> Some b
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let opt_or name default = Option.value ~default (opt name) in
  let req name what =
    match opt name with Some v -> v | None -> die "%s needs %s" what name
  in
  let threads = int_of_string (opt_or "--threads" "4") in
  let iters = int_of_string (opt_or "--iters" "500") in
  match args with
  | _ :: "info" :: path :: _ -> info path
  | _ :: "dump" :: path :: _ -> dump path
  | _ :: "verify" :: path :: _ -> verify path (opt "--workload") threads iters
  | _ :: "migrate" :: src :: dst :: _ -> migrate src dst
  | _ :: "record" :: _ ->
    record
      (req "--workload" "record")
      (int_of_string (opt_or "--seed" "1"))
      (opt_or "-o" "out.pinball") threads iters
      (int_of_string (opt_or "--digest-interval" "64"))
  | _ ->
    prerr_endline
      "usage: pinball_tool info|dump|verify|migrate|record <file> [--workload N] [--seed N] [-o F]";
    exit 2
