(* The DrDebug command-line debugger.

   Usage:
     drdebug_cli --workload pbzip2 [--seed N]
     drdebug_cli --source prog.c [--input 1,2,3]
     drdebug_cli --workload Aget --script 'record until-fail;replay;continue;slice-failure;slice-lines'

   Without --script, reads commands from stdin (one per line; `quit`
   exits).  See `help` inside the session for the command set. *)

let load_program workload source =
  match (workload, source) with
  | Some name, None -> (
    match Dr_workloads.Registry.find name with
    | Some e -> Ok (e.Dr_workloads.Registry.compile ~threads:4 ~iters:500)
    | None ->
      Error
        (Printf.sprintf "unknown workload %s (available: %s)" name
           (String.concat ", " (Dr_workloads.Registry.names ()))))
  | None, Some path -> (
    match
      In_channel.with_open_text path In_channel.input_all |> fun src ->
      Dr_lang.Codegen.compile_result ~name:(Filename.basename path) ~file:path src
    with
    | Ok p -> Ok p
    | Error e -> Error e)
  | _ -> Error "specify exactly one of --workload or --source"

let run workload source seed input script stats =
  match load_program workload source with
  | Error e ->
    prerr_endline e;
    1
  | Ok prog ->
    let input =
      match input with
      | None -> [||]
      | Some s ->
        Array.of_list
          (List.filter_map int_of_string_opt (String.split_on_char ',' s))
    in
    let session = Drdebug.Session.create ~input ~seed prog in
    let dbg = Drdebug.Debugger.create session in
    let exec_one line =
      let line = String.trim line in
      if line = "" then true
      else if line = "quit" || line = "exit" then false
      else begin
        (match Drdebug.Debugger.exec dbg line with
        | Ok out -> print_string out
        | Error e -> Printf.printf "error: %s\n" e);
        true
      end
    in
    (match script with
    | Some s -> List.iter (fun l -> ignore (exec_one l)) (String.split_on_char ';' s)
    | None ->
      Printf.printf "DrDebug on %s — type help for commands, quit to exit\n"
        prog.Dr_isa.Program.name;
      let rec loop () =
        print_string "(drdebug) ";
        match In_channel.input_line stdin with
        | None -> ()
        | Some line -> if exec_one line then loop ()
      in
      loop ());
    if stats then
      Printf.printf "--- internal metrics ---\n%s" (Dr_util.Metrics.to_string ());
    0

(* ---- fuzz subcommand: differential pipeline fuzzing ---- *)

let run_fuzz seed runs out budget stats =
  let budget_s = if budget <= 0.0 then None else Some budget in
  let log msg = Printf.printf "%s\n%!" msg in
  let s =
    Dr_conformance.Fuzz.run ?budget_s ?out_dir:out ~log ~seed ~runs ()
  in
  Printf.printf
    "fuzz: %d cases (%d passed, %d skipped, %d failed) in %.1fs [seed %d]\n"
    s.Dr_conformance.Fuzz.s_cases s.Dr_conformance.Fuzz.s_passes
    s.Dr_conformance.Fuzz.s_skips
    (List.length s.Dr_conformance.Fuzz.s_failures)
    s.Dr_conformance.Fuzz.s_elapsed seed;
  List.iter
    (fun (f : Dr_conformance.Fuzz.failure) ->
      Printf.printf "  case %d: %s: %s (%d-line repro, %d shrink steps)\n"
        f.Dr_conformance.Fuzz.fr_case_id
        (Dr_conformance.Oracles.kind_name f.Dr_conformance.Fuzz.fr_kind)
        f.Dr_conformance.Fuzz.fr_detail
        (Array.length f.Dr_conformance.Fuzz.fr_lines)
        f.Dr_conformance.Fuzz.fr_shrink_steps)
    s.Dr_conformance.Fuzz.s_failures;
  if stats then
    Printf.printf "--- internal metrics ---\n%s" (Dr_util.Metrics.to_string ());
  if Dr_conformance.Fuzz.all_green s then 0 else 1

open Cmdliner

let workload =
  Arg.(value & opt (some string) None & info [ "workload"; "w" ] ~doc:"Named workload to debug.")

let source =
  Arg.(value & opt (some string) None & info [ "source"; "s" ] ~doc:"Mini-C source file to debug.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule seed for native runs/recording.")

let input =
  Arg.(value & opt (some string) None & info [ "input" ] ~doc:"Comma-separated input words for read().")

let script =
  Arg.(value & opt (some string) None & info [ "script" ] ~doc:"Semicolon-separated commands to run non-interactively.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print internal counters and timers (trace construction, LP, slicing, slice replay) on exit.")

let debug_term =
  Term.(const run $ workload $ source $ seed $ input $ script $ stats)

let fuzz_cmd =
  let doc =
    "differential pipeline fuzzing: generated programs through log, replay, \
     relog, slice and slice-replay, checking determinism, roundtrip, driver \
     agreement, slice soundness and exclusion sanity"
  in
  let fseed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master fuzz seed; every case derives deterministically from it.")
  in
  let runs =
    Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Number of fuzz cases to run.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc:"Directory for report.json and shrunk failure cases.")
  in
  let budget =
    Arg.(value & opt float 0.0 & info [ "budget-s" ] ~doc:"Wall-clock budget in seconds; 0 = unlimited.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run_fuzz $ fseed $ runs $ out $ budget $ stats)

let cmd =
  let doc = "deterministic replay based cyclic debugging with dynamic slicing" in
  Cmd.group ~default:debug_term (Cmd.info "drdebug" ~doc) [ fuzz_cmd ]

let () = exit (Cmd.eval' cmd)
