(* The DrDebug command-line debugger.

   Usage:
     drdebug_cli --workload pbzip2 [--seed N]
     drdebug_cli --source prog.c [--input 1,2,3]
     drdebug_cli --workload Aget --script 'record until-fail;replay;continue;slice-failure;slice-lines'
     drdebug_cli slice --workload pbzip2 --trace-out trace.json --report-out report.json
     drdebug_cli fuzz --runs 50 --stats
     drdebug_cli report report.json

   Without --script, reads commands from stdin (one per line; `quit`
   exits).  See `help` inside the session for the command set.

   Every pipeline subcommand takes --trace-out (Chrome trace-event JSON,
   loadable in ui.perfetto.dev) and --report-out (drdebug-report-v1 run
   report); either flag enables tracing for the run.

   Exit codes (stable, documented in README "Resource limits"):
     0  success
     1  generic failure (bad arguments, failed run, fuzz failures)
     2  command-line usage error (cmdliner)
     3  pinball container error (Pinball_error: bad magic, CRC, bounds)
     4  slice file error (Slice_file_error: bad header or statement)
     5  resource error (Resource_error: budget exceeded, disk full,
        segment corrupt, watchdog timeout) *)

let exit_pinball_error = 3
let exit_slice_file_error = 4
let exit_resource_error = 5

(* Map structured pipeline errors to documented exit codes instead of
   uncaught exceptions with backtraces.  Wraps every subcommand body. *)
let guarded f =
  try f () with
  | Dr_pinplay.Pinball.Pinball_error e ->
    Printf.eprintf "pinball error: %s\n"
      (Dr_pinplay.Pinball.error_to_string e);
    exit_pinball_error
  | Dr_slicing.Slicer.Slice_file_error { sf_line; sf_reason } ->
    Printf.eprintf "slice file error: line %d: %s\n" sf_line sf_reason;
    exit_slice_file_error
  | Dr_util.Budget.Resource_error e ->
    Printf.eprintf "resource error: %s\n" (Dr_util.Budget.error_to_string e);
    exit_resource_error

(* ---- observability plumbing shared by the subcommands ---- *)

(* Tracing is enabled iff some sink will consume it: a trace file, a
   report file, a metrics file, or the --stats span summary. *)
let setup_obs ~trace_out ~report_out ~metrics_out ~stats =
  if trace_out <> None || report_out <> None || metrics_out <> None || stats
  then Dr_obs.Obs.set_enabled true

(* The scalar tier is always on, so --metrics-out works even on
   subcommands with no tracing plumbing of their own. *)
let write_metrics = function
  | None -> ()
  | Some path ->
    Dr_obs.Openmetrics.write path;
    Printf.printf "metrics written to %s\n" path

let finish_obs ~trace_out ~report_out ~metrics_out ~stats ~label =
  Dr_obs.Obs.set_enabled false;
  (match trace_out with
  | Some path ->
    Dr_obs.Chrome_trace.write path;
    Printf.printf "trace written to %s (%d spans; load in ui.perfetto.dev)\n"
      path (Dr_obs.Obs.span_count ())
  | None -> ());
  (match report_out with
  | Some path ->
    Dr_obs.Report.write ~label path;
    Printf.printf "run report written to %s\n" path
  | None -> ());
  write_metrics metrics_out;
  if stats then begin
    Printf.printf "--- internal metrics ---\n%s" (Dr_obs.Metrics.to_string ());
    print_string (Format.asprintf "%a" Dr_obs.Report.pp_summary ())
  end;
  List.iter
    (fun m -> Printf.eprintf "span mismatch: %s\n" m)
    (Dr_obs.Obs.mismatch_messages ())

let load_program workload source =
  match (workload, source) with
  | Some name, None -> (
    match Dr_workloads.Registry.find name with
    | Some e -> Ok (e.Dr_workloads.Registry.compile ~threads:4 ~iters:500)
    | None ->
      Error
        (Printf.sprintf "unknown workload %s (available: %s)" name
           (String.concat ", " (Dr_workloads.Registry.names ()))))
  | None, Some path -> (
    match
      In_channel.with_open_text path In_channel.input_all |> fun src ->
      Dr_lang.Codegen.compile_result ~name:(Filename.basename path) ~file:path src
    with
    | Ok p -> Ok p
    | Error e -> Error e)
  | _ -> Error "specify exactly one of --workload or --source"

let run workload source seed input script stats trace_out report_out
    metrics_out =
  guarded @@ fun () ->
  match load_program workload source with
  | Error e ->
    prerr_endline e;
    1
  | Ok prog ->
    setup_obs ~trace_out ~report_out ~metrics_out ~stats;
    let input =
      match input with
      | None -> [||]
      | Some s ->
        Array.of_list
          (List.filter_map int_of_string_opt (String.split_on_char ',' s))
    in
    let session = Drdebug.Session.create ~input ~seed prog in
    let dbg = Drdebug.Debugger.create session in
    let exec_one line =
      let line = String.trim line in
      if line = "" then true
      else if line = "quit" || line = "exit" then false
      else begin
        (match Drdebug.Debugger.exec dbg line with
        | Ok out -> print_string out
        | Error e -> Printf.printf "error: %s\n" e);
        true
      end
    in
    (match script with
    | Some s -> List.iter (fun l -> ignore (exec_one l)) (String.split_on_char ';' s)
    | None ->
      Printf.printf "DrDebug on %s — type help for commands, quit to exit\n"
        prog.Dr_isa.Program.name;
      let rec loop () =
        print_string "(drdebug) ";
        match In_channel.input_line stdin with
        | None -> ()
        | Some line -> if exec_one line then loop ()
      in
      loop ());
    finish_obs ~trace_out ~report_out ~metrics_out ~stats
      ~label:("debug:" ^ prog.Dr_isa.Program.name);
    0

(* ---- slice subcommand: one-shot pipeline run ---- *)

(* Run the whole pipeline non-interactively: log the execution (or load
   a pinball with --pinball), collect the trace, build the global trace,
   and slice at the last print statement (or the last record).  With a
   resource budget (--mem-budget / --time-budget / --spill-dir), trace
   records spill to disk in segments past the memory budget and slicing
   runs through the governed degradation ladder.  This is the canonical
   producer of --trace-out / --report-out documents. *)
let run_slice workload source seed input stats trace_out report_out
    metrics_out slice_out pinball_in mem_budget time_budget spill_dir domains
    driver ckpt_interval =
  guarded @@ fun () ->
  match load_program workload source with
  | Error e ->
    prerr_endline e;
    1
  | Ok prog ->
    setup_obs ~trace_out ~report_out ~metrics_out ~stats;
    let input =
      match input with
      | None -> [||]
      | Some s ->
        Array.of_list
          (List.filter_map int_of_string_opt (String.split_on_char ',' s))
    in
    let budget =
      if mem_budget > 0 || time_budget > 0.0 || spill_dir <> None then
        Some
          (Dr_util.Budget.create
             ?mem_bytes:(if mem_budget > 0 then Some mem_budget else None)
             ?time_s:(if time_budget > 0.0 then Some time_budget else None)
             ?spill_dir ())
      else None
    in
    let finish () =
      finish_obs ~trace_out ~report_out ~metrics_out ~stats
        ~label:("slice:" ^ prog.Dr_isa.Program.name)
    in
    let pinball =
      match pinball_in with
      | Some path ->
        (* raises Pinball_error (exit 3) on a corrupt container *)
        let pb = Dr_pinplay.Pinball.load_file path in
        Printf.printf "loaded pinball %s\n" path;
        Ok pb
      | None -> (
        match
          Dr_pinplay.Logger.log ~input
            ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 8 })
            prog Dr_pinplay.Logger.Whole
        with
        | Error e ->
          Format.eprintf "logging failed: %a@." Dr_pinplay.Logger.pp_error e;
          Error ()
        | Ok (pb, lstats) ->
          Printf.printf "logged %s: %d instructions, pinball %d bytes\n"
            prog.Dr_isa.Program.name
            lstats.Dr_pinplay.Logger.region_instructions
            lstats.Dr_pinplay.Logger.pinball_bytes;
          Ok pb)
    in
    (match pinball with
    | Error () ->
      finish ();
      1
    | Ok pb ->
      let c = Dr_slicing.Collector.collect ?budget prog pb in
      let gt = Dr_slicing.Global_trace.construct c in
      let n = Dr_slicing.Global_trace.length gt in
      if n = 0 then begin
        prerr_endline "empty trace: nothing to slice";
        finish ();
        1
      end
      else begin
        (* slice at the last print — a value-bearing statement, as when
           slicing at a failure point — falling back to the last record *)
        let is_print (r : Dr_slicing.Trace.record) =
          match Dr_isa.Program.instr prog r.Dr_slicing.Trace.pc with
          | Some (Dr_isa.Instr.Sys Dr_isa.Instr.Print) -> true
          | _ -> false
        in
        let crit_pos =
          match Dr_slicing.Global_trace.find_last gt ~p:is_print with
          | Some p -> p
          | None -> n - 1
        in
        let criterion = { Dr_slicing.Slicer.crit_pos; crit_locs = None } in
        let pairs = c.Dr_slicing.Collector.pairs in
        (* the re-execution driver needs a checkpoint ladder over the
           same refined CFG the collector used *)
        let rx =
          match driver with
          | `Reexec ->
            Some
              (Dr_slicing.Reexec.create ~cfg:c.Dr_slicing.Collector.cfg
                 ~ckpt_interval prog pb)
          | _ -> None
        in
        let slice =
          match budget with
          | None -> (
            match driver with
            | `Reexec ->
              let rx = Option.get rx in
              let s =
                Dr_slicing.Slicer.compute ~pairs ~driver:(`Reexec rx) gt
                  criterion
              in
              let rst = Dr_slicing.Reexec.stats rx in
              Printf.printf
                "reexec driver: interval %d, %d checkpoints, %d windows \
                 re-derived (%d window hits), peak %d resident record bytes\n"
                ckpt_interval
                (Dr_slicing.Reexec.num_checkpoints rx)
                rst.Dr_slicing.Reexec.windows_rederived
                rst.Dr_slicing.Reexec.window_hits
                rst.Dr_slicing.Reexec.peak_resident_bytes;
              s
            | (`Scan_skip | `Scan) as d ->
              let lp = Dr_slicing.Lp.prepare gt in
              Dr_slicing.Slicer.compute ~lp ~pairs ~driver:d gt criterion
            | `Indexed ->
              if domains > 1 then
                (* one criterion: the parallelism is in the sharded LP
                   preparation inside compute_many *)
                Dr_util.Pool.with_pool ~domains (fun pool ->
                    match
                      Dr_slicing.Slicer.compute_many ~pairs ~pool gt
                        [ criterion ]
                    with
                    | [ s ] -> s
                    | _ -> assert false)
              else
                let lp = Dr_slicing.Lp.prepare gt in
                Dr_slicing.Slicer.compute ~lp ~pairs gt criterion)
          | Some b ->
            let g =
              Dr_slicing.Slicer.compute_governed ?reexec:rx ~pairs ~budget:b
                gt criterion
            in
            Printf.printf "governed slicing: %s driver\n"
              (Dr_slicing.Slicer.rung_name g.Dr_slicing.Slicer.g_rung);
            g.Dr_slicing.Slicer.g_slice
        in
        let st = slice.Dr_slicing.Slicer.stats in
        Printf.printf
          "slice at position %d/%d: %d statements over %d source lines \
           (visited %d records, skipped %d of %d blocks, %.6fs)%s\n"
          crit_pos n
          (Dr_slicing.Slicer.size slice)
          (List.length (Dr_slicing.Slicer.source_lines slice))
          st.Dr_slicing.Slicer.visited st.Dr_slicing.Slicer.skipped_blocks
          st.Dr_slicing.Slicer.total_blocks st.Dr_slicing.Slicer.slice_time
          (if st.Dr_slicing.Slicer.truncated then " [TRUNCATED]" else "");
        (match budget with
        | Some b ->
          let spilled =
            Dr_slicing.Segment_store.spilled_segments
              c.Dr_slicing.Collector.records
          in
          if spilled > 0 then
            Printf.printf "spilled %d segments (%d bytes) to %s\n" spilled
              (Dr_util.Budget.spilled_bytes b)
              (Dr_util.Budget.spill_dir b);
          List.iter
            (fun d ->
              Printf.printf "degraded: %s\n"
                (Format.asprintf "%a" Dr_util.Budget.pp_degradation d))
            (Dr_util.Budget.degradations b)
        | None -> ());
        (match slice_out with
        | Some path ->
          Dr_slicing.Slicer.save_file path slice;
          Printf.printf "slice saved to %s\n" path
        | None -> ());
        finish ();
        0
      end)

(* ---- analyze subcommand: static binary lint ---- *)

(* Purely static: no execution, no pinball.  Runs the five lint passes
   (or the --passes subset) over the program image, prints a per-pass
   summary and optionally writes the validated drdebug-analyze-v1 JSON
   document. *)
let run_analyze workload source passes out metrics_out =
  guarded @@ fun () ->
  match load_program workload source with
  | Error e ->
    prerr_endline e;
    1
  | Ok prog ->
    let passes =
      match passes with
      | None -> None
      | Some s ->
        Some
          (List.filter
             (fun p -> p <> "")
             (String.split_on_char ',' (String.trim s)))
    in
    let bad =
      match passes with
      | None -> []
      | Some l ->
        List.filter (fun p -> not (List.mem p Dr_static.Lint.pass_names)) l
    in
    if bad <> [] then begin
      Printf.eprintf "unknown pass(es): %s (valid: %s)\n"
        (String.concat ", " bad)
        (String.concat ", " Dr_static.Lint.pass_names);
      1
    end
    else begin
    let cfg = Dr_cfg.Cfg.build prog in
    let cands =
      Dr_slicing.Prune.static_candidates prog
        ~functions:(Dr_cfg.Cfg.functions cfg)
    in
    let to_assoc h = Hashtbl.fold (fun pc r acc -> (pc, r) :: acc) h [] in
    let candidates =
      ( to_assoc cands.Dr_slicing.Prune.saves,
        to_assoc cands.Dr_slicing.Prune.restores )
    in
    let lint, doc = Dr_static.Report.analyze ~candidates ?passes prog in
    Printf.printf "analyze %s: %d instructions, %d functions\n"
      prog.Dr_isa.Program.name
      (Array.length prog.Dr_isa.Program.code)
      (List.length (Dr_cfg.Cfg.functions cfg));
    let ran = lint.Dr_static.Lint.passes_run in
    let pass name count =
      if List.mem name ran then Printf.printf "  %-20s %d\n" name count
    in
    pass "unreachable-blocks" (List.length lint.Dr_static.Lint.unreachable);
    pass "maybe-uninit" (List.length lint.Dr_static.Lint.uninit);
    pass "indirect-audit" (List.length lint.Dr_static.Lint.indirect);
    pass "save-restore" (List.length lint.Dr_static.Lint.save_restore);
    pass "races" (List.length lint.Dr_static.Lint.races);
    Printf.printf "  %-20s %d\n" "findings total"
      (Dr_static.Lint.findings_total lint);
    List.iter
      (fun (u : Dr_static.Lint.unreachable_block) ->
        Printf.printf "  [unreachable-blocks] fn@%d block %d pcs %d..%d\n"
          u.Dr_static.Lint.ub_fentry u.Dr_static.Lint.ub_block
          u.Dr_static.Lint.ub_start
          (u.Dr_static.Lint.ub_end - 1))
      lint.Dr_static.Lint.unreachable;
    List.iter
      (fun (u : Dr_static.Lint.uninit) ->
        Printf.printf "  [maybe-uninit] fn@%d pc %d reg %s\n"
          u.Dr_static.Lint.un_fentry u.Dr_static.Lint.un_pc
          (Dr_isa.Reg.name u.Dr_static.Lint.un_reg))
      lint.Dr_static.Lint.uninit;
    List.iter
      (fun (i : Dr_static.Lint.indirect) ->
        Printf.printf "  [indirect-audit] pc %d %s %s suggestions: %s\n"
          i.Dr_static.Lint.ind_pc
          (match i.Dr_static.Lint.ind_kind with
          | `Jind -> "jind"
          | `Callind -> "callind")
          (Dr_isa.Reg.name i.Dr_static.Lint.ind_reg)
          (match i.Dr_static.Lint.ind_suggestions with
          | [] -> "(none)"
          | l -> String.concat "," (List.map string_of_int l)))
      lint.Dr_static.Lint.indirect;
    List.iter
      (fun (s : Dr_static.Lint.sr_issue) ->
        Printf.printf "  [save-restore] fn@%d %s pc %d reg %s\n"
          s.Dr_static.Lint.sr_fentry
          (Dr_static.Lint.sr_kind_name s.Dr_static.Lint.sr_kind)
          s.Dr_static.Lint.sr_pc
          (Dr_isa.Reg.name s.Dr_static.Lint.sr_reg))
      lint.Dr_static.Lint.save_restore;
    List.iter
      (fun (p : Dr_static.Race.pair) ->
        let acc (a : Dr_static.Race.access) roots lockset =
          Printf.sprintf "pc %d%s%s roots:%s locks:%s" a.Dr_static.Race.acc_pc
            (if a.Dr_static.Race.acc_write then " write" else " read")
            (match a.Dr_static.Race.acc_addr with
            | Some ad -> Printf.sprintf " @%d" ad
            | None -> "")
            (String.concat "," (List.map string_of_int roots))
            (String.concat "," (List.map string_of_int lockset))
        in
        Printf.printf "  [races] score %d: %s <-> %s\n" p.Dr_static.Race.p_score
          (acc p.Dr_static.Race.p_a p.Dr_static.Race.p_roots_a
             p.Dr_static.Race.p_lockset_a)
          (acc p.Dr_static.Race.p_b p.Dr_static.Race.p_roots_b
             p.Dr_static.Race.p_lockset_b))
      lint.Dr_static.Lint.races;
    write_metrics metrics_out;
    match out with
    | None -> 0
    | Some path -> (
      match Dr_static.Report.validate doc with
      | Error e ->
        Printf.eprintf "internal error: generated report fails validation: %s\n"
          e;
        1
      | Ok () ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              (Dr_util.Json.to_string ~indent:true doc);
            Out_channel.output_char oc '\n');
        Printf.printf "report written to %s\n" path;
        0)
    end

(* ---- maple subcommand: active iRoot testing campaign ---- *)

(* Profile, predict, and actively schedule candidate iRoots until a bug
   is exposed.  With --static-races the candidate queue is reordered so
   iRoots matching a static race candidate pair run first — the
   campaign-seeding integration of the static race detector. *)
let run_maple workload source static_races max_candidates max_steps out
    metrics_out =
  guarded @@ fun () ->
  match load_program workload source with
  | Error e ->
    prerr_endline e;
    1
  | Ok prog ->
    let static_pairs =
      if static_races then begin
        let r = Dr_static.Race.analyze prog in
        let pairs = Dr_static.Race.candidate_pairs r in
        Printf.printf "static race candidates: %d%s\n" (List.length pairs)
          (if Dr_static.Race.fully_resolved r then "" else " (degraded: unresolved targets)");
        Some pairs
      end
      else None
    in
    let exposed =
      Dr_maple.Active.expose ?static_pairs ~max_candidates ~max_steps prog
    in
    write_metrics metrics_out;
    (match exposed with
    | None ->
      Printf.printf "maple: no bug exposed (%s)\n"
        (match static_pairs with
        | Some _ -> "with static seeding"
        | None -> "no static seeding");
      0
    | Some e ->
      let n = List.length e.Dr_maple.Active.attempts in
      Printf.printf "maple: exposed %s after %d attempt(s) via %s\n"
        (match e.Dr_maple.Active.outcome with
        | Dr_machine.Machine.Assert_failed { msg; _ } ->
          Printf.sprintf "assertion %S" msg
        | Dr_machine.Machine.Fault { msg; _ } -> Printf.sprintf "fault %S" msg
        | _ -> "deadlock")
        n
        (Dr_maple.Iroot.to_string e.Dr_maple.Active.failing_iroot);
      (match out with
      | Some path ->
        Dr_pinplay.Pinball.save_file path e.Dr_maple.Active.pinball;
        Printf.printf "failing run recorded to %s\n" path
      | None -> ());
      0)

(* ---- fuzz subcommand: differential pipeline fuzzing ---- *)

let run_fuzz seed runs out budget disk_faults domains stats trace_out
    report_out metrics_out =
  guarded @@ fun () ->
  setup_obs ~trace_out ~report_out ~metrics_out ~stats;
  let budget_s = if budget <= 0.0 then None else Some budget in
  let log msg = Printf.printf "%s\n%!" msg in
  let s =
    Dr_conformance.Fuzz.run ~disk_faults ?budget_s ?out_dir:out ~log
      ~domains:(max 1 domains) ~seed ~runs ()
  in
  Printf.printf
    "fuzz: %d cases (%d passed, %d skipped, %d failed) in %.1fs [seed %d]\n"
    s.Dr_conformance.Fuzz.s_cases s.Dr_conformance.Fuzz.s_passes
    s.Dr_conformance.Fuzz.s_skips
    (List.length s.Dr_conformance.Fuzz.s_failures)
    s.Dr_conformance.Fuzz.s_elapsed seed;
  List.iter
    (fun (f : Dr_conformance.Fuzz.failure) ->
      Printf.printf "  case %d: %s: %s (%d-line repro, %d shrink steps)\n"
        f.Dr_conformance.Fuzz.fr_case_id
        (Dr_conformance.Oracles.kind_name f.Dr_conformance.Fuzz.fr_kind)
        f.Dr_conformance.Fuzz.fr_detail
        (Array.length f.Dr_conformance.Fuzz.fr_lines)
        f.Dr_conformance.Fuzz.fr_shrink_steps)
    s.Dr_conformance.Fuzz.s_failures;
  finish_obs ~trace_out ~report_out ~metrics_out ~stats ~label:"fuzz";
  if Dr_conformance.Fuzz.all_green s then 0 else 1

(* ---- report subcommand: validate + pretty-print a run report ---- *)

(* ---- slice-file subcommand: validate + summarize a saved slice ---- *)

let run_slice_file path metrics_out =
  guarded @@ fun () ->
  (* raises Slice_file_error (exit 4) on a corrupt file *)
  let stmts = Dr_slicing.Slicer.load_file_statements path in
  Printf.printf "%s: %d statements\n" path (List.length stmts);
  List.iter
    (fun (tid, pc, inst, line) ->
      Printf.printf "  tid %d pc %d instance %d line %d\n" tid pc inst line)
    stmts;
  write_metrics metrics_out;
  0

(* Load and validate a drdebug-report-v1 document; a bench file with an
   embedded report (BENCH_slicing.json's "report" member) is unwrapped,
   so the @obs CI gate can diff bench trajectories directly. *)
let load_report path : (Dr_util.Json.t, int) result =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
    Printf.eprintf "cannot read %s: %s\n" path e;
    Error 1
  | contents -> (
    match Dr_util.Json.parse contents with
    | Error e ->
      Printf.eprintf "%s: not valid JSON: %s\n" path e;
      Error 1
    | Ok doc -> (
      let doc =
        match
          Option.bind (Dr_util.Json.member "schema" doc) Dr_util.Json.to_str
        with
        | Some s when s <> Dr_obs.Report.schema_version -> (
          match Dr_util.Json.member "report" doc with
          | Some embedded -> embedded
          | None -> doc)
        | _ -> doc
      in
      match Dr_obs.Report.validate doc with
      | Error e ->
        Printf.eprintf "%s: invalid %s document: %s\n" path
          Dr_obs.Report.schema_version e;
        Error 1
      | Ok () -> Ok doc))

(* `report FILE` validates and pretty-prints; `report diff BASE CUR`
   compares the timing trajectories and exits 1 on a regression beyond
   --threshold-pct — the CI gate for BENCH report trajectories. *)
let run_report args threshold_pct =
  guarded @@ fun () ->
  match args with
  | [ path ] -> (
    match load_report path with
    | Error code -> code
    | Ok doc ->
      print_string (Format.asprintf "%a" Dr_obs.Report.pp_document doc);
      0)
  | [ "diff"; base_path; cur_path ] -> (
    match (load_report base_path, load_report cur_path) with
    | Error code, _ | _, Error code -> code
    | Ok base, Ok cur -> (
      match Dr_obs.Report.diff ~threshold_pct base cur with
      | Error e ->
        Printf.eprintf "diff failed: %s\n" e;
        1
      | Ok r ->
        Printf.printf "report diff (threshold %g%%): %s -> %s\n" threshold_pct
          base_path cur_path;
        let buf = Buffer.create 256 in
        let fmt = Format.formatter_of_buffer buf in
        let regressed = Dr_obs.Report.pp_diff fmt r in
        Format.pp_print_flush fmt ();
        print_string (Buffer.contents buf);
        if regressed then 1 else 0))
  | _ ->
    prerr_endline "usage: drdebug report FILE | drdebug report diff BASE CUR";
    1

(* ---- metrics subcommand: OpenMetrics-style text export ---- *)

let run_metrics file out =
  guarded @@ fun () ->
  let emit text =
    match out with
    | None ->
      print_string text;
      0
    | Some path ->
      Dr_util.Atomic_file.with_out path (fun oc -> output_string oc text);
      Printf.printf "metrics written to %s\n" path;
      0
  in
  match file with
  | None -> emit (Dr_obs.Openmetrics.render ())
  | Some path -> (
    match load_report path with
    | Error code -> code
    | Ok doc -> (
      match Dr_obs.Openmetrics.of_report doc with
      | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        1
      | Ok text -> emit text))

open Cmdliner

let workload =
  Arg.(value & opt (some string) None & info [ "workload"; "w" ] ~doc:"Named workload to debug.")

let source =
  Arg.(value & opt (some string) None & info [ "source"; "s" ] ~doc:"Mini-C source file to debug.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule seed for native runs/recording.")

let input =
  Arg.(value & opt (some string) None & info [ "input" ] ~doc:"Comma-separated input words for read().")

let script =
  Arg.(value & opt (some string) None & info [ "script" ] ~doc:"Semicolon-separated commands to run non-interactively.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print internal counters/timers and the per-phase span summary on exit.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ]
         ~doc:"Write a Chrome trace-event JSON file (load in ui.perfetto.dev or chrome://tracing); enables tracing.")

let report_out =
  Arg.(value & opt (some string) None & info [ "report-out" ]
         ~doc:"Write a drdebug-report-v1 JSON run report; enables tracing.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ]
         ~doc:"Write the metrics registry as OpenMetrics-style text; enables tracing.")

let debug_term =
  Term.(
    const run $ workload $ source $ seed $ input $ script $ stats $ trace_out
    $ report_out $ metrics_out)

let slice_cmd =
  let doc =
    "one-shot pipeline run: log the whole execution (or load --pinball), \
     collect the trace, build the global trace, and slice at the last print \
     statement — under an optional resource budget with disk spill and \
     graceful degradation"
  in
  let slice_out =
    Arg.(value & opt (some string) None & info [ "slice-out" ] ~doc:"Save the computed slice file.")
  in
  let pinball_in =
    Arg.(value & opt (some string) None & info [ "pinball" ]
           ~doc:"Replay this pinball file instead of logging a fresh run (exit 3 on a corrupt container).")
  in
  let mem_budget =
    Arg.(value & opt int 0 & info [ "mem-budget" ]
           ~doc:"Memory budget in bytes for trace records; past it, segments spill to --spill-dir. 0 = unlimited.")
  in
  let time_budget =
    Arg.(value & opt float 0.0 & info [ "time-budget" ]
           ~doc:"Wall-clock budget in seconds; collection aborts (exit 5) and slicing returns an honestly-marked partial slice when it expires. 0 = unlimited.")
  in
  let spill_dir =
    Arg.(value & opt (some string) None & info [ "spill-dir" ]
           ~doc:"Directory for spilled trace segments (default: a per-process directory under the system temp dir).")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ]
           ~doc:"Slice with this many OCaml domains: the LP/index preparation is sharded over a domain pool. The slice is identical to --domains 1.")
  in
  let driver =
    Arg.(value
         & opt
             (enum
                [ ("indexed", `Indexed); ("scan", `Scan_skip);
                  ("scan-noskip", `Scan); ("reexec", `Reexec) ])
             `Indexed
         & info [ "driver" ]
             ~doc:"Slicer driver: $(b,indexed) (definition-index fast path, default), $(b,scan) (backwards scan with LP block skipping), $(b,scan-noskip) (plain backwards scan), or $(b,reexec) (on-demand re-execution: record lookups replay from periodic checkpoints instead of walking the stored trace). All drivers produce identical slices.")
  in
  let ckpt_interval =
    Arg.(value & opt int 4096 & info [ "ckpt-interval" ]
           ~doc:"Checkpoint interval in retired instructions for --driver reexec: smaller intervals bound re-execution (and resident record memory) tighter at the cost of more snapshots.")
  in
  Cmd.v (Cmd.info "slice" ~doc)
    Term.(
      const run_slice $ workload $ source $ seed $ input $ stats $ trace_out
      $ report_out $ metrics_out $ slice_out $ pinball_in $ mem_budget
      $ time_budget $ spill_dir $ domains $ driver $ ckpt_interval)

let analyze_cmd =
  let doc =
    "static binary lint: unreachable blocks, maybe-uninitialized registers, \
     unresolved-indirect audit with refinement suggestions, save/restore \
     discipline (cross-checked against the slicer's candidate scan), and \
     static data-race candidates (lockset + happens-before)"
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ]
           ~doc:"Write the drdebug-analyze-v1 JSON report.")
  in
  let passes =
    Arg.(value & opt (some string) None & info [ "passes" ]
           ~doc:"Comma-separated subset of lint passes to run \
                 (unreachable-blocks, maybe-uninit, indirect-audit, \
                 save-restore, races). Default: all.")
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run_analyze $ workload $ source $ passes $ out $ metrics_out)

let maple_cmd =
  let doc =
    "Maple active-scheduling campaign: profile observed iRoots, predict \
     untested interleavings, and force each candidate under the PinPlay \
     logger until a bug is exposed; --static-races seeds the queue with \
     the static race detector's candidate pairs"
  in
  let static_races =
    Arg.(value & flag & info [ "static-races" ]
           ~doc:"Prioritize candidate iRoots whose pc pair is a static race \
                 candidate (lockset + happens-before analysis).")
  in
  let max_candidates =
    Arg.(value & opt int 64 & info [ "max-candidates" ]
           ~doc:"Test at most this many candidate iRoots.")
  in
  let max_steps =
    Arg.(value & opt int 2_000_000 & info [ "max-steps" ]
           ~doc:"Per-attempt step bound.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ]
           ~doc:"Save the failing run's pinball.")
  in
  Cmd.v (Cmd.info "maple" ~doc)
    Term.(
      const run_maple $ workload $ source $ static_races $ max_candidates
      $ max_steps $ out $ metrics_out)

let fuzz_cmd =
  let doc =
    "differential pipeline fuzzing: generated programs through log, replay, \
     relog, slice and slice-replay, checking determinism, roundtrip, driver \
     agreement, slice soundness and exclusion sanity"
  in
  let fseed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master fuzz seed; every case derives deterministically from it.")
  in
  let runs =
    Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Number of fuzz cases to run.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc:"Directory for report.json and shrunk failure cases.")
  in
  let budget =
    Arg.(value & opt float 0.0 & info [ "budget-s" ] ~doc:"Wall-clock budget in seconds; 0 = unlimited.")
  in
  let disk_faults =
    Arg.(value & flag & info [ "disk-faults" ]
           ~doc:"Also run the resource-robustness oracle on every case: rebuild the trace through a disk-spilled segment store and inject one deterministic disk fault (ENOSPC, short write, bit flip, truncation, deletion).")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ]
           ~doc:"Fan fuzz cases over this many OCaml domains. Case derivation is pure in (seed, case id), so any failure still reproduces on one domain from its seed alone.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run_fuzz $ fseed $ runs $ out $ budget $ disk_faults $ domains
      $ stats $ trace_out $ report_out $ metrics_out)

let report_cmd =
  let doc =
    "validate and pretty-print a drdebug-report-v1 run report \
     ($(b,report FILE)), or compare two reports' timing trajectories \
     ($(b,report diff BASE CUR)), exiting 1 when any timer or phase \
     total regressed beyond --threshold-pct"
  in
  let args =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ARGS"
           ~doc:"Either a report file, or $(b,diff) followed by the base and current report files (bench files with an embedded report are unwrapped).")
  in
  let threshold =
    Arg.(value & opt float 10.0 & info [ "threshold-pct" ]
           ~doc:"Relative timing change (percent) that counts as a regression/improvement for $(b,report diff).")
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run_report $ args $ threshold)

let metrics_cmd =
  let doc =
    "emit the metrics registry — or the counters/timers/histograms of a \
     stored drdebug-report-v1 (or bench) file — as OpenMetrics-style text"
  in
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Report (or bench) file to re-export; the live registry when omitted.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ]
           ~doc:"Write to this file instead of stdout.")
  in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run_metrics $ file $ out)

let slice_file_cmd =
  let doc =
    "validate and summarize a saved slice file (exit 4 on a corrupt file)"
  in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Slice file to load.")
  in
  Cmd.v (Cmd.info "slice-file" ~doc)
    Term.(const run_slice_file $ file $ metrics_out)

let cmd =
  let doc = "deterministic replay based cyclic debugging with dynamic slicing" in
  Cmd.group ~default:debug_term (Cmd.info "drdebug" ~doc)
    [ slice_cmd; analyze_cmd; maple_cmd; fuzz_cmd; report_cmd; metrics_cmd;
      slice_file_cmd ]

let () = exit (Cmd.eval' cmd)
