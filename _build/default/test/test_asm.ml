(* Tests for the textual assembler/disassembler (Dr_isa.Asm). *)

let parse_ok src =
  match Dr_isa.Asm.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "asm parse failed: %s" e

let run prog =
  let m = Dr_machine.Machine.create prog in
  let r =
    Dr_machine.Driver.run ~max_steps:100_000 m
      (Dr_machine.Driver.Round_robin { quantum = 2 })
  in
  (m, r)

let test_basic_program () =
  let prog = parse_ok {|
; compute 6*7 and print it
main:
  mov r1, $6
  mov r2, $7
  mul r0, r1, r2
  mov r1, r0
  sys print
  halt
|} in
  let m, r = run prog in
  (match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> ()
  | _ -> Alcotest.fail "did not exit");
  Alcotest.(check (list int)) "42" [ 42 ] (Dr_machine.Machine.output_list m)

let test_labels_and_branches () =
  let prog = parse_ok {|
.entry start
start:
  mov r1, $0
  mov r2, $0
loop:
  cmp r1, $10
  jge done
  add r2, r2, r1
  add r1, r1, $1
  jmp loop
done:
  mov r1, r2
  sys print
  halt
|} in
  let m, _ = run prog in
  Alcotest.(check (list int)) "sum 0..9" [ 45 ] (Dr_machine.Machine.output_list m)

let test_jump_table () =
  (* the fig-7 shape: data cells holding code addresses + indirect jump *)
  let prog = parse_ok {|
.entry main
.data 8 @case0
.data 9 @case1
main:
  sys read
  mov r1, $8
  add r1, r1, r0
  load r2, [r1+0]
  jmp *r2
case0:
  mov r1, $100
  jmp out
case1:
  mov r1, $200
out:
  sys print
  halt
|} in
  let m = Dr_machine.Machine.create ~input:[| 1 |] prog in
  let _ =
    Dr_machine.Driver.run ~max_steps:1_000 m
      (Dr_machine.Driver.Round_robin { quantum = 1 })
  in
  Alcotest.(check (list int)) "case 1 taken" [ 200 ]
    (Dr_machine.Machine.output_list m)

let test_memref_offsets () =
  let prog = parse_ok {|
main:
  mov r1, $10
  mov r2, $77
  store [r1+2], r2
  load r3, [r1+2]
  mov r1, r3
  sys print
  halt
|} in
  let m, _ = run prog in
  Alcotest.(check (list int)) "store/load" [ 77 ] (Dr_machine.Machine.output_list m)

let test_assert_with_string () =
  let prog = parse_ok {|
main:
  mov r1, $0
  assert r1, "it broke"
  halt
|} in
  let _, r = run prog in
  match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Assert_failed { msg; _ }) ->
    Alcotest.(check string) "message interned" "it broke" msg
  | _ -> Alcotest.fail "expected assert failure"

let test_parse_errors () =
  let cases =
    [ "bogus r1, r2";
      "mov r99, $1";
      "jmp nowhere\nmain:\n  halt";
      "main:\nmain:\n  halt";
      "load r1, r2";
      ".data x 1\nmain:\n halt";
      "" ]
  in
  List.iter
    (fun src ->
      match Dr_isa.Asm.parse src with
      | Ok _ -> Alcotest.failf "should not parse: %S" src
      | Error _ -> ())
    cases

let test_disassemble_roundtrip_compiled () =
  (* disassembling a compiled program and re-assembling preserves code *)
  let src = {|global int g;
fn f(int x) {
  if (x > 2) { return x * 2; }
  return x;
}
fn main() {
  g = f(5);
  switch (g) {
    case 10: print(1); break;
    default: print(0); break;
  }
}|} in
  let prog =
    match Dr_lang.Codegen.compile_result ~name:"rt" src with
    | Ok p -> p
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let text = Dr_isa.Asm.disassemble prog in
  let prog' = parse_ok text in
  Alcotest.(check bool) "code preserved" true
    (prog.Dr_isa.Program.code = prog'.Dr_isa.Program.code);
  Alcotest.(check int) "entry preserved" prog.Dr_isa.Program.entry
    prog'.Dr_isa.Program.entry;
  Alcotest.(check bool) "data preserved" true
    (List.sort compare prog.Dr_isa.Program.data
    = List.sort compare prog'.Dr_isa.Program.data)

let prop_roundtrip_generated =
  QCheck.Test.make ~name:"disassemble/parse round-trip on generated programs"
    ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let src = Dr_lang.Gen.program seed in
      match Dr_lang.Codegen.compile_result src with
      | Error _ -> false
      | Ok prog -> (
        match Dr_isa.Asm.parse (Dr_isa.Asm.disassemble prog) with
        | Error _ -> false
        | Ok prog' ->
          prog.Dr_isa.Program.code = prog'.Dr_isa.Program.code
          && prog.Dr_isa.Program.entry = prog'.Dr_isa.Program.entry))

let test_roundtrip_executes_identically () =
  let src = {|fn main() {
  int acc = 0;
  for (int i = 0; i < 10; i = i + 1) { acc = acc + i * i; }
  print(acc);
}|} in
  let prog =
    match Dr_lang.Codegen.compile_result src with
    | Ok p -> p
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let prog' = parse_ok (Dr_isa.Asm.disassemble prog) in
  let m1, _ = run prog and m2, _ = run prog' in
  Alcotest.(check (list int)) "same output"
    (Dr_machine.Machine.output_list m1)
    (Dr_machine.Machine.output_list m2)

let () =
  Alcotest.run "asm"
    [ ( "assembler",
        [ Alcotest.test_case "basic" `Quick test_basic_program;
          Alcotest.test_case "labels/branches" `Quick test_labels_and_branches;
          Alcotest.test_case "jump table" `Quick test_jump_table;
          Alcotest.test_case "memrefs" `Quick test_memref_offsets;
          Alcotest.test_case "assert string" `Quick test_assert_with_string;
          Alcotest.test_case "parse errors" `Quick test_parse_errors ] );
      ( "round-trip",
        [ Alcotest.test_case "compiled program" `Quick
            test_disassemble_roundtrip_compiled;
          QCheck_alcotest.to_alcotest prop_roundtrip_generated;
          Alcotest.test_case "executes identically" `Quick
            test_roundtrip_executes_identically ] ) ]
