(* Tests for dr_maple: iRoot profiling/prediction, active scheduling, and
   the paper's Maple integration (exposed bug -> pinball -> DrDebug). *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

(* A bug that plain schedules rarely hit: main usually reads x before the
   worker writes it; the assert fails only when the write wins the race. *)
let order_bug_src = {|global int x;
fn t1(int n) {
  x = 1;
}
fn main() {
  int t = spawn(t1, 0);
  int k = x;
  join(t);
  assert(k == 0, "read saw remote write");
}|}

let test_iroot_flip () =
  let ir = { Dr_maple.Iroot.pre = 10; post = 20; idiom = Dr_maple.Iroot.RW } in
  let f = Dr_maple.Iroot.flip ir in
  Alcotest.(check int) "pre" 20 f.Dr_maple.Iroot.pre;
  Alcotest.(check int) "post" 10 f.Dr_maple.Iroot.post;
  Alcotest.(check bool) "idiom flipped" true (f.Dr_maple.Iroot.idiom = Dr_maple.Iroot.WR);
  Alcotest.(check bool) "double flip = id" true
    (Dr_maple.Iroot.equal ir (Dr_maple.Iroot.flip f))

let test_profiler_observes () =
  let prog = compile order_bug_src in
  let obs = Dr_maple.Profiler.profile prog in
  Alcotest.(check bool) "observed some iroots" true
    (obs.Dr_maple.Profiler.observed <> []);
  (* every candidate must be unobserved *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate not observed" false
        (List.exists (Dr_maple.Iroot.equal c) obs.Dr_maple.Profiler.observed))
    obs.Dr_maple.Profiler.candidates

let test_plain_schedules_pass () =
  (* confirm the bug is actually hard to hit with the profiling seeds *)
  let prog = compile order_bug_src in
  let ok = ref 0 in
  List.iter
    (fun seed ->
      let m = Dr_machine.Machine.create prog in
      match
        Dr_machine.Driver.run ~max_steps:100_000 m
          (Dr_machine.Driver.Seeded { seed; max_quantum = 6 })
      with
      | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> incr ok
      | _ -> ())
    [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "most plain runs pass" true (!ok >= 3)

let test_active_exposes_bug () =
  let prog = compile order_bug_src in
  match Dr_maple.Active.expose prog with
  | None -> Alcotest.fail "Maple failed to expose the order violation"
  | Some exposed -> (
    match exposed.Dr_maple.Active.outcome with
    | Dr_machine.Machine.Assert_failed { msg; _ } ->
      Alcotest.(check string) "the seeded assert" "read saw remote write" msg
    | o ->
      Alcotest.failf "unexpected outcome %a"
        (fun fmt () -> Dr_machine.Machine.pp_outcome fmt o) ())

let test_exposed_pinball_replays () =
  (* the paper's integration: the pinball recorded during the exposing run
     deterministically reproduces the failure under DrDebug *)
  let prog = compile order_bug_src in
  match Dr_maple.Active.expose prog with
  | None -> Alcotest.fail "expose failed"
  | Some exposed ->
    for _ = 1 to 3 do
      let _, reason =
        Dr_pinplay.Replayer.replay prog exposed.Dr_maple.Active.pinball
      in
      match reason with
      | Dr_machine.Driver.Terminated (Dr_machine.Machine.Assert_failed _) -> ()
      | r ->
        Alcotest.failf "replay did not reproduce: %a"
          (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r) ()
    done

(* a two-update atomicity bug, as in the paper's Fig. 5 *)
let atomicity_bug_src = {|global int x;
fn t1(int n) {
  x = x + 1;
}
fn main() {
  int t = spawn(t1, 0);
  int k = x;
  k = k + 1;
  x = k;
  join(t);
  assert(x == 2, "lost update");
}|}

let test_active_exposes_lost_update () =
  let prog = compile atomicity_bug_src in
  match Dr_maple.Active.expose prog with
  | None -> Alcotest.fail "Maple failed to expose the lost update"
  | Some exposed -> (
    match exposed.Dr_maple.Active.outcome with
    | Dr_machine.Machine.Assert_failed { msg; _ } ->
      Alcotest.(check string) "lost update" "lost update" msg
    | _ -> Alcotest.fail "unexpected outcome")

let test_exposed_bug_slices () =
  (* end-to-end: Maple pinball -> slicing finds the remote write *)
  let prog = compile order_bug_src in
  match Dr_maple.Active.expose prog with
  | None -> Alcotest.fail "expose failed"
  | Some exposed ->
    let c = Dr_slicing.Collector.collect prog exposed.Dr_maple.Active.pinball in
    let gt = Dr_slicing.Global_trace.construct c in
    let crit =
      match
        Dr_slicing.Global_trace.find_last gt ~p:(fun r ->
            match prog.Dr_isa.Program.code.(r.Dr_slicing.Trace.pc) with
            | Dr_isa.Instr.Assert _ -> true
            | _ -> false)
      with
      | Some pos -> { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None }
      | None -> Alcotest.fail "no assert in exposed trace"
    in
    let slice = Dr_slicing.Slicer.compute gt crit in
    let lines = Dr_slicing.Slicer.source_lines slice in
    (* x = 1 in t1 (line 3) is the root cause and must be in the slice *)
    Alcotest.(check bool) "root cause in slice" true (List.mem 3 lines)

(* ---- additional maple coverage ---- *)

let test_profiler_idioms () =
  (* a WW conflict must be observed as a WW iroot *)
  let src = {|global int x;
fn t1(int n) { x = 1; }
fn main() {
  int t = spawn(t1, 0);
  x = 2;
  join(t);
  print(x);
}|} in
  let prog = compile src in
  let obs = Dr_maple.Profiler.profile ~seeds:(List.init 16 (fun i -> i)) prog in
  Alcotest.(check bool) "some WW iroot observed" true
    (List.exists
       (fun ir -> ir.Dr_maple.Iroot.idiom = Dr_maple.Iroot.WW)
       obs.Dr_maple.Profiler.observed)

let test_active_policy_realizes_ordering () =
  (* the custom policy must actually realize the forced iRoot ordering *)
  let prog = compile order_bug_src in
  let obs = Dr_maple.Profiler.profile prog in
  Alcotest.(check bool) "has candidates" true
    (obs.Dr_maple.Profiler.candidates <> []);
  let success =
    List.exists
      (fun cand ->
        let _, attempt = Dr_maple.Active.try_iroot prog cand in
        attempt.Dr_maple.Active.realized)
      obs.Dr_maple.Profiler.candidates
  in
  Alcotest.(check bool) "some candidate ordering realized" true success

let test_exposed_attempt_log () =
  let prog = compile order_bug_src in
  match Dr_maple.Active.expose prog with
  | None -> Alcotest.fail "expose failed"
  | Some exposed ->
    Alcotest.(check bool) "attempts recorded" true
      (exposed.Dr_maple.Active.attempts <> []);
    (* the last attempt is the failing one *)
    let last = List.nth exposed.Dr_maple.Active.attempts
        (List.length exposed.Dr_maple.Active.attempts - 1) in
    Alcotest.(check bool) "last attempt matches failing iroot" true
      (Dr_maple.Iroot.equal last.Dr_maple.Active.iroot
         exposed.Dr_maple.Active.failing_iroot)

let test_expose_clean_program_finds_nothing () =
  (* a properly locked program yields no bug *)
  let src = {|global int x;
global int m;
fn t1(int n) { lock(&m); x = x + 1; unlock(&m); }
fn main() {
  int t = spawn(t1, 0);
  lock(&m);
  x = x + 1;
  unlock(&m);
  join(t);
  assert(x == 2, "never fails");
}|} in
  let prog = compile src in
  match Dr_maple.Active.expose ~max_candidates:16 prog with
  | None -> ()
  | Some exposed ->
    Alcotest.failf "clean program 'exposed' %s"
      (Format.asprintf "%a" Dr_machine.Machine.pp_outcome
         exposed.Dr_maple.Active.outcome)

let () =
  Alcotest.run "maple"
    [ ( "iroots",
        [ Alcotest.test_case "flip" `Quick test_iroot_flip;
          Alcotest.test_case "profiler" `Quick test_profiler_observes ] );
      ( "active scheduling",
        [ Alcotest.test_case "plain schedules pass" `Quick
            test_plain_schedules_pass;
          Alcotest.test_case "exposes order violation" `Quick
            test_active_exposes_bug;
          Alcotest.test_case "exposes lost update" `Quick
            test_active_exposes_lost_update ] );
      ( "integration",
        [ Alcotest.test_case "pinball replays" `Quick test_exposed_pinball_replays;
          Alcotest.test_case "exposed bug slices" `Quick test_exposed_bug_slices ] );
      ( "coverage",
        [ Alcotest.test_case "WW idiom" `Quick test_profiler_idioms;
          Alcotest.test_case "policy realizes ordering" `Quick
            test_active_policy_realizes_ordering;
          Alcotest.test_case "attempt log" `Quick test_exposed_attempt_log;
          Alcotest.test_case "clean program" `Quick
            test_expose_clean_program_finds_nothing ] ) ]
