(* Tests for dr_isa: location encoding, instruction serialization,
   program/debug-info round-trips. *)

let instr_gen : Dr_isa.Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let operand =
    oneof
      [ map (fun r -> Dr_isa.Instr.Reg r) reg;
        map (fun n -> Dr_isa.Instr.Imm n) (int_range (-1000) 1000) ]
  in
  let binop =
    oneofl
      Dr_isa.Instr.[ Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr ]
  in
  let cond = oneofl Dr_isa.Instr.[ Eq; Ne; Lt; Le; Gt; Ge ] in
  let sys =
    oneofl
      Dr_isa.Instr.
        [ Exit; Print; Rand; Time; Read; Spawn; Join; Lock; Unlock; Yield; Alloc ]
  in
  oneof
    [ map2 (fun r o -> Dr_isa.Instr.Mov (r, o)) reg operand;
      (let* b = binop in
       let* rd = reg in
       let* rs = reg in
       let* o = operand in
       return (Dr_isa.Instr.Bin (b, rd, rs, o)));
      (let* rd = reg in
       let* rb = reg in
       let* off = int_range (-64) 64 in
       return (Dr_isa.Instr.Load (rd, rb, off)));
      (let* rb = reg in
       let* off = int_range (-64) 64 in
       let* rs = reg in
       return (Dr_isa.Instr.Store (rb, off, rs)));
      map (fun r -> Dr_isa.Instr.Push r) reg;
      map (fun r -> Dr_isa.Instr.Pop r) reg;
      map2 (fun r o -> Dr_isa.Instr.Cmp (r, o)) reg operand;
      map2 (fun c r -> Dr_isa.Instr.Setcc (c, r)) cond reg;
      map (fun t -> Dr_isa.Instr.Jmp t) (int_bound 1000);
      map2 (fun c t -> Dr_isa.Instr.Jcc (c, t)) cond (int_bound 1000);
      map (fun r -> Dr_isa.Instr.Jind r) reg;
      map (fun t -> Dr_isa.Instr.Call t) (int_bound 1000);
      map (fun r -> Dr_isa.Instr.Callind r) reg;
      return Dr_isa.Instr.Ret;
      map (fun s -> Dr_isa.Instr.Sys s) sys;
      map2 (fun r m -> Dr_isa.Instr.Assert (r, m)) reg (int_bound 10);
      return Dr_isa.Instr.Halt;
      return Dr_isa.Instr.Nop ]

let prop_instr_roundtrip =
  QCheck.Test.make ~name:"instr encode/decode round-trip" ~count:1000
    (QCheck.make instr_gen ~print:Dr_isa.Instr.to_string)
    (fun i ->
      let e = Dr_util.Codec.encoder () in
      Dr_isa.Instr.encode e i;
      let d = Dr_util.Codec.decoder (Dr_util.Codec.to_string e) in
      Dr_isa.Instr.decode d = i)

let test_loc_encoding () =
  let m = Dr_isa.Loc.mem 1234 in
  (match Dr_isa.Loc.view m with
  | Dr_isa.Loc.Mem 1234 -> ()
  | _ -> Alcotest.fail "mem view");
  let r = Dr_isa.Loc.reg ~tid:3 5 in
  (match Dr_isa.Loc.view r with
  | Dr_isa.Loc.Reg { tid = 3; reg = 5 } -> ()
  | _ -> Alcotest.fail "reg view");
  Alcotest.(check bool) "mem is mem" true (Dr_isa.Loc.is_mem m);
  Alcotest.(check bool) "reg not mem" false (Dr_isa.Loc.is_mem r);
  let f = Dr_isa.Loc.flags ~tid:2 in
  match Dr_isa.Loc.view f with
  | Dr_isa.Loc.Reg { tid = 2; reg } ->
    Alcotest.(check int) "flags reg" Dr_isa.Reg.flags reg
  | _ -> Alcotest.fail "flags view"

let prop_loc_distinct =
  QCheck.Test.make ~name:"loc encoding is injective" ~count:500
    QCheck.(pair (pair (int_bound 15) (int_bound 16)) (pair (int_bound 15) (int_bound 16)))
    (fun ((t1, r1), (t2, r2)) ->
      let l1 = Dr_isa.Loc.reg ~tid:t1 r1 and l2 = Dr_isa.Loc.reg ~tid:t2 r2 in
      (l1 = l2) = (t1 = t2 && r1 = r2))

let test_loc_mem_reg_disjoint () =
  (* memory and register encodings never collide *)
  for a = 0 to 1000 do
    let m = Dr_isa.Loc.mem a in
    Alcotest.(check bool) "parity" true (Dr_isa.Loc.is_mem m)
  done;
  for t = 0 to 7 do
    for r = 0 to 16 do
      Alcotest.(check bool) "reg parity" false
        (Dr_isa.Loc.is_mem (Dr_isa.Loc.reg ~tid:t r))
    done
  done

let sample_program () =
  let open Dr_isa.Instr in
  Dr_isa.Program.make ~name:"sample"
    ~data:[ (8, 42) ]
    ~data_end:9
    ~strings:[| "oops" |]
    ~entry:0
    [ Mov (0, Imm 1); Assert (0, 0); Halt ]

let test_program_roundtrip () =
  let p = sample_program () in
  let e = Dr_util.Codec.encoder () in
  Dr_isa.Program.encode e p;
  let d = Dr_util.Codec.decoder (Dr_util.Codec.to_string e) in
  let p' = Dr_isa.Program.decode d in
  Alcotest.(check string) "name" p.Dr_isa.Program.name p'.Dr_isa.Program.name;
  Alcotest.(check int) "code size" (Dr_isa.Program.code_size p)
    (Dr_isa.Program.code_size p');
  Alcotest.(check bool) "code equal" true
    (p.Dr_isa.Program.code = p'.Dr_isa.Program.code);
  Alcotest.(check bool) "data equal" true
    (p.Dr_isa.Program.data = p'.Dr_isa.Program.data);
  Alcotest.(check string) "strings" "oops" (Dr_isa.Program.string_at p' 0)

let test_debug_info_roundtrip () =
  let src = {|
fn helper(int x) { return x * 2; }
fn main() { print(helper(21)); }
|} in
  let p =
    match Dr_lang.Codegen.compile_result ~name:"dbg" src with
    | Ok p -> p
    | Error m -> Alcotest.failf "compile: %s" m
  in
  let e = Dr_util.Codec.encoder () in
  Dr_isa.Debug_info.encode e p.Dr_isa.Program.debug;
  let d = Dr_util.Codec.decoder (Dr_util.Codec.to_string e) in
  let dbg = Dr_isa.Debug_info.decode d in
  Alcotest.(check bool) "funcs preserved" true
    (List.map (fun f -> f.Dr_isa.Debug_info.fname) dbg.Dr_isa.Debug_info.funcs
    = List.map
        (fun f -> f.Dr_isa.Debug_info.fname)
        p.Dr_isa.Program.debug.Dr_isa.Debug_info.funcs);
  Alcotest.(check bool) "lines preserved" true
    (dbg.Dr_isa.Debug_info.lines = p.Dr_isa.Program.debug.Dr_isa.Debug_info.lines)

let test_stack_layout () =
  let p = sample_program () in
  let b0 = Dr_isa.Program.stack_base p ~tid:0 in
  let b1 = Dr_isa.Program.stack_base p ~tid:1 in
  Alcotest.(check int) "stack separation" p.Dr_isa.Program.stack_words (b0 - b1);
  Alcotest.(check int) "limit" (b0 - p.Dr_isa.Program.stack_words)
    (Dr_isa.Program.stack_limit p ~tid:0)

let test_line_of_pc_boundaries () =
  let dbg =
    { Dr_isa.Debug_info.empty with
      lines = [| (0, 1); (5, 2); (10, 3) |] }
  in
  Alcotest.(check (option int)) "pc 0" (Some 1) (Dr_isa.Debug_info.line_of_pc dbg 0);
  Alcotest.(check (option int)) "pc 4" (Some 1) (Dr_isa.Debug_info.line_of_pc dbg 4);
  Alcotest.(check (option int)) "pc 5" (Some 2) (Dr_isa.Debug_info.line_of_pc dbg 5);
  Alcotest.(check (option int)) "pc 100" (Some 3)
    (Dr_isa.Debug_info.line_of_pc dbg 100);
  Alcotest.(check (option int)) "pc_of_line" (Some 5)
    (Dr_isa.Debug_info.pc_of_line dbg 2)

let () =
  Alcotest.run "isa"
    [ ( "loc",
        [ Alcotest.test_case "encoding" `Quick test_loc_encoding;
          Alcotest.test_case "mem/reg disjoint" `Quick test_loc_mem_reg_disjoint;
          QCheck_alcotest.to_alcotest prop_loc_distinct ] );
      ( "instr",
        [ QCheck_alcotest.to_alcotest prop_instr_roundtrip ] );
      ( "program",
        [ Alcotest.test_case "round-trip" `Quick test_program_roundtrip;
          Alcotest.test_case "debug info round-trip" `Quick
            test_debug_info_roundtrip;
          Alcotest.test_case "stack layout" `Quick test_stack_layout;
          Alcotest.test_case "line table" `Quick test_line_of_pc_boundaries ] ) ]
