test/test_lang.ml: Alcotest Array Dr_isa Dr_lang Dr_machine List Option QCheck QCheck_alcotest
