test/test_exeslice.ml: Alcotest Array Dr_exeslice Dr_isa Dr_lang Dr_machine Dr_pinplay Dr_slicing Hashtbl List Option QCheck QCheck_alcotest
