test/test_machine.ml: Alcotest Array Dr_isa Dr_lang Dr_machine Dr_pinplay Dr_util Hashtbl List Printf QCheck QCheck_alcotest String
