test/test_gen.ml: Alcotest Array Dr_exeslice Dr_lang Dr_machine Dr_pinplay Dr_slicing Drdebug Format Hashtbl List Option Printf QCheck QCheck_alcotest
