test/test_drdebug.mli:
