test/test_maple.ml: Alcotest Array Dr_isa Dr_lang Dr_machine Dr_maple Dr_pinplay Dr_slicing Format List
