test/test_pinplay.ml: Alcotest Array Dr_isa Dr_lang Dr_machine Dr_pinplay Dr_util Filename Fun Hashtbl List Option QCheck QCheck_alcotest String Sys
