test/test_drdebug.ml: Alcotest Buffer Dr_lang Dr_machine Dr_slicing Dr_workloads Drdebug Filename Fun List Option Printf String Sys
