test/test_exeslice.mli:
