test/test_workloads.ml: Alcotest Dr_machine Dr_maple Dr_pinplay Dr_slicing Dr_workloads List Option Printf
