test/test_maple.mli:
