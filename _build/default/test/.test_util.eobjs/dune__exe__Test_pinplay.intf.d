test/test_pinplay.mli:
