test/test_isa.ml: Alcotest Dr_isa Dr_lang Dr_util List QCheck QCheck_alcotest
