test/test_cfg.ml: Alcotest Array Dr_cfg Dr_isa Dr_lang Dr_machine Hashtbl List Option QCheck QCheck_alcotest
