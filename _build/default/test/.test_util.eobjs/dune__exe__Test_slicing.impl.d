test/test_slicing.ml: Alcotest Array Dr_isa Dr_lang Dr_machine Dr_pinplay Dr_slicing Filename Fun Hashtbl List QCheck QCheck_alcotest Sys
