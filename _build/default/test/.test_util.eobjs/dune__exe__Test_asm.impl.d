test/test_asm.ml: Alcotest Dr_isa Dr_lang Dr_machine List QCheck QCheck_alcotest
