test/test_util.ml: Alcotest Array Dr_util List QCheck QCheck_alcotest
