(* Tests for the mini-C front end: lexer, parser, sema, codegen, and
   end-to-end execution of compiled programs on the VM. *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let compile_err src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error msg -> msg

(* Run a program to completion under a deterministic round-robin schedule
   and return (outcome, output). *)
let run ?(input = [||]) ?(quantum = 3) ?(max_steps = 2_000_000) prog =
  let m = Dr_machine.Machine.create ~input prog in
  let reason =
    Dr_machine.Driver.run ~max_steps m
      (Dr_machine.Driver.Round_robin { quantum })
  in
  (reason, Dr_machine.Machine.output_list m)

let check_output ?input src expected =
  let reason, out = run ?input (compile src) in
  (match reason with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> ()
  | r ->
    Alcotest.failf "program did not exit cleanly: %a"
      (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r)
      ());
  Alcotest.(check (list int)) "output" expected out

(* ---- lexer ---- *)

let test_lex_basic () =
  let toks = Dr_lang.Lexer.tokenize "fn main() { return 42; }" in
  let kinds = List.map (fun t -> t.Dr_lang.Lexer.tok) toks in
  Alcotest.(check int) "token count" 10 (List.length kinds);
  Alcotest.(check bool) "ends with eof" true
    (List.nth kinds 9 = Dr_lang.Token.EOF)

let test_lex_comments () =
  let toks =
    Dr_lang.Lexer.tokenize "// comment\nfn /* inline */ main() {}"
  in
  let idents =
    List.filter_map
      (fun t ->
        match t.Dr_lang.Lexer.tok with Dr_lang.Token.IDENT s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "idents" [ "main" ] idents

let test_lex_lines () =
  let toks = Dr_lang.Lexer.tokenize "fn\nmain\n(\n)" in
  let lines = List.map (fun t -> t.Dr_lang.Lexer.line) toks in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 3; 4; 4 ] lines

let test_lex_string_escape () =
  let toks = Dr_lang.Lexer.tokenize {|"a\nb"|} in
  match (List.hd toks).Dr_lang.Lexer.tok with
  | Dr_lang.Token.STRING s -> Alcotest.(check string) "escaped" "a\nb" s
  | _ -> Alcotest.fail "expected string token"

let test_lex_error () =
  Alcotest.check_raises "bad char"
    (Dr_lang.Lexer.Error { line = 1; msg = "unexpected character '@'" })
    (fun () -> ignore (Dr_lang.Lexer.tokenize "@"))

(* ---- end-to-end execution ---- *)

let test_arith () =
  check_output "fn main() { print(1 + 2 * 3 - 4 / 2); }" [ 5 ]

let test_precedence () =
  check_output "fn main() { print(2 + 3 << 1); print(1 | 2 ^ 3 & 2); }"
    [ 10; 1 ]

let test_locals_and_if () =
  check_output
    {|
fn main() {
  int a = 10;
  int b = 20;
  if (a < b) { print(1); } else { print(0); }
  if (a == 10 && b == 20) { print(2); }
  if (a > b || b == 20) { print(3); }
}
|}
    [ 1; 2; 3 ]

let test_while_loop () =
  check_output
    {|
fn main() {
  int i = 0;
  int sum = 0;
  while (i < 10) { sum = sum + i; i = i + 1; }
  print(sum);
}
|}
    [ 45 ]

let test_for_loop () =
  check_output
    {|
fn main() {
  int sum = 0;
  for (int i = 0; i < 5; i = i + 1) { sum = sum + i * i; }
  print(sum);
}
|}
    [ 30 ]

let test_break_continue () =
  check_output
    {|
fn main() {
  int sum = 0;
  for (int i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 10) { break; }
    sum = sum + i;
  }
  print(sum);
}
|}
    [ 1 + 3 + 5 + 7 + 9 ]

let test_functions () =
  check_output
    {|
fn add(int a, int b) { return a + b; }
fn fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() {
  print(add(3, 4));
  print(fib(10));
}
|}
    [ 7; 55 ]

let test_many_locals () =
  (* more locals than callee-saved registers: exercises frame slots *)
  check_output
    {|
fn f(int a, int b) {
  int c = a + b;
  int d = c * 2;
  int e = d + a;
  int g = e - b;
  int h = g * g;
  int i = h + 1;
  int j = i - d;
  int k = j + c;
  return k;
}
fn main() { print(f(2, 3)); }
|}
    [ (let a, b = (2, 3) in
       let c = a + b in
       let d = c * 2 in
       let e = d + a in
       let g = e - b in
       let h = g * g in
       let i = h + 1 in
       let j = i - d in
       j + c) ]

let test_globals () =
  check_output
    {|
global int counter = 5;
global int arr[4];
fn bump(int by) { counter = counter + by; return counter; }
fn main() {
  arr[0] = 10;
  arr[3] = 40;
  print(bump(1));
  print(bump(2));
  print(arr[0] + arr[3]);
  print(arr[1]);
}
|}
    [ 6; 8; 50; 0 ]

let test_switch () =
  check_output
    {|
fn classify(int x) {
  int r = 0;
  switch (x) {
    case 1: r = 100; break;
    case 2: r = 200; break;
    case 4: r = 400; break;
    default: r = 999; break;
  }
  return r;
}
fn main() {
  print(classify(1));
  print(classify(2));
  print(classify(3));
  print(classify(4));
  print(classify(77));
}
|}
    [ 100; 200; 999; 400; 999 ]

let test_switch_fallthrough () =
  check_output
    {|
fn main() {
  int r = 0;
  switch (2) {
    case 1: r = r + 1;
    case 2: r = r + 10;
    case 3: r = r + 100; break;
    case 4: r = r + 1000;
  }
  print(r);
}
|}
    [ 110 ]

let test_read_input () =
  let reason, out =
    run ~input:[| 7; 8 |] (compile "fn main() { print(read() + read()); }")
  in
  (match reason with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> ()
  | _ -> Alcotest.fail "did not exit");
  Alcotest.(check (list int)) "sum of inputs" [ 15 ] out

let test_assert_failure () =
  let reason, _ = run (compile {|fn main() { assert(1 == 2, "boom"); }|}) in
  match reason with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Assert_failed { msg; _ }) ->
    Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected assert failure"

let test_spawn_join () =
  check_output
    {|
global int total;
global int m;
fn worker(int n) {
  lock(&m);
  total = total + n;
  unlock(&m);
}
fn main() {
  int t1 = spawn(worker, 10);
  int t2 = spawn(worker, 20);
  join(t1);
  join(t2);
  print(total);
}
|}
    [ 30 ]

let test_alloc () =
  check_output
    {|
fn main() {
  int p = alloc(4);
  int q = alloc(2);
  print(q - p);
}
|}
    [ 4 ]

let test_negative_and_not () =
  check_output "fn main() { print(-5 + 3); print(!0); print(!7); }"
    [ -2; 1; 0 ]

let test_exit_builtin () =
  let reason, out = run (compile "fn main() { print(1); exit(3); print(2); }") in
  (match reason with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited 3) -> ()
  | _ -> Alcotest.fail "expected exit(3)");
  Alcotest.(check (list int)) "output before exit" [ 1 ] out

let test_debug_info () =
  let prog = compile {|
global int g;
fn helper(int x) {
  int y = x + 1;
  return y;
}
fn main() {
  int a = helper(1);
  print(a);
}
|} in
  let dbg = prog.Dr_isa.Program.debug in
  let f = Option.get (Dr_isa.Debug_info.func_named dbg "helper") in
  Alcotest.(check (list string)) "params" [ "x" ] f.Dr_isa.Debug_info.params;
  Alcotest.(check bool) "has var y" true
    (List.exists (fun v -> v.Dr_isa.Debug_info.vname = "y") f.Dr_isa.Debug_info.vars);
  (match Dr_isa.Debug_info.lookup_var dbg ~pc:f.Dr_isa.Debug_info.entry "g" with
  | Some (Dr_isa.Debug_info.Global _) -> ()
  | _ -> Alcotest.fail "global g not found");
  (* every pc inside helper maps to a plausible line *)
  for pc = f.Dr_isa.Debug_info.entry to f.Dr_isa.Debug_info.code_end - 1 do
    match Dr_isa.Debug_info.line_of_pc dbg pc with
    | Some l -> Alcotest.(check bool) "line in range" true (l >= 1 && l <= 10)
    | None -> Alcotest.fail "missing line info"
  done

let test_sema_errors () =
  let cases =
    [ "fn main() { x = 1; }";
      "fn main() { int x; int x; }";
      "fn f() {} fn f() {} fn main() {}";
      "fn main() { break; }";
      "fn main() { continue; }";
      "fn nope() {}";
      "fn main(int x) {}";
      "fn main() { f(1); }";
      "fn f(int a) {} fn main() { f(); }";
      "global int g; global int g; fn main() {}";
      "fn main() { print(spawn(main, 1, 2)); }";
      "global int a[3]; fn main() { a = 1; }";
      "fn main() { int x; print(x[0]); }";
      "fn main() { print(&localname); }";
      "fn main() { switch (1) { } }" ]
  in
  List.iter (fun src -> ignore (compile_err src)) cases

let test_codegen_has_savrestore_shape () =
  (* the generated prologue/epilogue must contain push/pop pairs *)
  let prog = compile {|
fn f(int a) { int b = a * 2; return b; }
fn main() { print(f(21)); }
|} in
  let dbg = prog.Dr_isa.Program.debug in
  let f = Option.get (Dr_isa.Debug_info.func_named dbg "f") in
  let pushes = ref 0 and pops = ref 0 in
  for pc = f.Dr_isa.Debug_info.entry to f.Dr_isa.Debug_info.code_end - 1 do
    match prog.Dr_isa.Program.code.(pc) with
    | Dr_isa.Instr.Push _ -> incr pushes
    | Dr_isa.Instr.Pop _ -> incr pops
    | _ -> ()
  done;
  Alcotest.(check bool) "has pushes" true (!pushes >= 2);
  Alcotest.(check bool) "balanced" true (!pushes = !pops)

let test_switch_uses_jind () =
  let prog = compile {|
fn main() {
  switch (read()) {
    case 0: print(0); break;
    case 1: print(1); break;
    default: print(9); break;
  }
}
|} in
  let has_jind =
    Array.exists
      (function Dr_isa.Instr.Jind _ -> true | _ -> false)
      prog.Dr_isa.Program.code
  in
  Alcotest.(check bool) "switch compiles to an indirect jump" true has_jind

(* ---- additional language coverage ---- *)

let test_else_if_chain () =
  check_output ~input:[| 2 |]
    {|fn main() {
  int x = read();
  if (x == 0) { print(100); }
  else if (x == 1) { print(200); }
  else if (x == 2) { print(300); }
  else { print(999); }
}|}
    [ 300 ]

let test_deep_recursion () =
  check_output
    {|fn sum(int n) {
  if (n <= 0) { return 0; }
  return n + sum(n - 1);
}
fn main() { print(sum(100)); }|}
    [ 5050 ]

let test_mutual_recursion () =
  check_output
    {|fn is_odd(int n) {
  if (n == 0) { return 0; }
  return is_even(n - 1);
}
fn is_even(int n) {
  if (n == 0) { return 1; }
  return is_odd(n - 1);
}
fn main() { print(is_even(10)); print(is_odd(10)); }|}
    [ 1; 0 ]

let test_peek_poke () =
  check_output
    {|global int base;
fn main() {
  base = alloc(4);
  poke(base + 2, 77);
  print(peek(base + 2));
  print(peek(base + 1));
}|}
    [ 77; 0 ]

let test_addr_of_array_element () =
  check_output
    {|global int locks[4];
global int n;
fn main() {
  lock(&locks[2]);
  n = 5;
  unlock(&locks[2]);
  print(n);
}|}
    [ 5 ]

let test_short_circuit_no_side_effect () =
  (* the right operand of && must not evaluate when the left is false *)
  check_output
    {|global int calls;
fn bump() { calls = calls + 1; return 1; }
fn main() {
  if (0 == 1 && bump() == 1) { print(111); }
  print(calls);
  if (1 == 1 || bump() == 1) { print(222); }
  print(calls);
}|}
    [ 0; 222; 0 ]

let test_block_scoping_sibling_reuse () =
  check_output
    {|fn main() {
  int total = 0;
  for (int i = 0; i < 3; i = i + 1) { total = total + i; }
  for (int i = 0; i < 4; i = i + 1) { total = total + i; }
  if (total > 0) { int t = 100; total = total + t; }
  if (total > 0) { int t = 1000; total = total + t; }
  print(total);
}|}
    [ 3 + 6 + 100 + 1000 ]

let test_nested_shadowing_rejected () =
  ignore
    (compile_err
       {|fn main() {
  for (int i = 0; i < 3; i = i + 1) {
    int i = 5;
  }
}|})

let test_global_initializers () =
  check_output {|global int a = 7;
global int b = -3;
global int c;
fn main() { print(a); print(b); print(c); }|}
    [ 7; -3; 0 ]

let test_switch_negative_case () =
  check_output ~input:[| 3 |]
    {|fn main() {
  int x = read() - 4;
  switch (x) {
    case -1: print(11); break;
    case 0: print(22); break;
    default: print(33); break;
  }
}|}
    [ 11 ]

let test_while_with_break_only () =
  check_output
    {|fn main() {
  int n = 0;
  while (1 == 1) {
    n = n + 1;
    if (n == 5) { break; }
  }
  print(n);
}|}
    [ 5 ]

let test_return_void_function () =
  check_output
    {|global int g;
fn set(int v) {
  if (v < 0) { return; }
  g = v;
}
fn main() {
  set(0 - 1);
  print(g);
  set(9);
  print(g);
}|}
    [ 0; 9 ]

let test_line_table_monotonic () =
  let prog = compile {|global int g;
fn f(int x) {
  int y = x;
  if (y > 2) { y = y * 2; }
  return y;
}
fn main() {
  g = f(5);
  print(g);
}|} in
  let lines = prog.Dr_isa.Program.debug.Dr_isa.Debug_info.lines in
  for i = 1 to Array.length lines - 1 do
    Alcotest.(check bool) "pcs ascending" true (fst lines.(i) > fst lines.(i - 1))
  done

let prop_generated_sources_reparse =
  QCheck.Test.make ~name:"generated programs lex+parse+compile" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let src = Dr_lang.Gen.program seed in
      match Dr_lang.Codegen.compile_result src with
      | Ok prog -> Array.length prog.Dr_isa.Program.code > 0
      | Error _ -> false)

let prop_compile_deterministic =
  QCheck.Test.make ~name:"compilation is deterministic" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let src = Dr_lang.Gen.program seed in
      match (Dr_lang.Codegen.compile_result src, Dr_lang.Codegen.compile_result src) with
      | Ok a, Ok b ->
        a.Dr_isa.Program.code = b.Dr_isa.Program.code
        && a.Dr_isa.Program.data = b.Dr_isa.Program.data
      | _ -> false)

let () =
  Alcotest.run "lang"
    [ ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "line numbers" `Quick test_lex_lines;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escape;
          Alcotest.test_case "error" `Quick test_lex_error ] );
      ( "exec",
        [ Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "locals/if" `Quick test_locals_and_if;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "for" `Quick test_for_loop;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "many locals" `Quick test_many_locals;
          Alcotest.test_case "globals/arrays" `Quick test_globals;
          Alcotest.test_case "switch" `Quick test_switch;
          Alcotest.test_case "switch fallthrough" `Quick test_switch_fallthrough;
          Alcotest.test_case "read input" `Quick test_read_input;
          Alcotest.test_case "assert failure" `Quick test_assert_failure;
          Alcotest.test_case "spawn/join" `Quick test_spawn_join;
          Alcotest.test_case "alloc" `Quick test_alloc;
          Alcotest.test_case "neg/not" `Quick test_negative_and_not;
          Alcotest.test_case "exit" `Quick test_exit_builtin ] );
      ( "meta",
        [ Alcotest.test_case "debug info" `Quick test_debug_info;
          Alcotest.test_case "sema errors" `Quick test_sema_errors;
          Alcotest.test_case "save/restore shape" `Quick
            test_codegen_has_savrestore_shape;
          Alcotest.test_case "switch jind" `Quick test_switch_uses_jind ] );
      ( "language coverage",
        [ Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
          Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "peek/poke" `Quick test_peek_poke;
          Alcotest.test_case "&array[i]" `Quick test_addr_of_array_element;
          Alcotest.test_case "short circuit" `Quick
            test_short_circuit_no_side_effect;
          Alcotest.test_case "block scoping" `Quick
            test_block_scoping_sibling_reuse;
          Alcotest.test_case "shadowing rejected" `Quick
            test_nested_shadowing_rejected;
          Alcotest.test_case "global initializers" `Quick test_global_initializers;
          Alcotest.test_case "negative switch case" `Quick
            test_switch_negative_case;
          Alcotest.test_case "while+break" `Quick test_while_with_break_only;
          Alcotest.test_case "void return" `Quick test_return_void_function;
          Alcotest.test_case "line table monotonic" `Quick
            test_line_table_monotonic;
          QCheck_alcotest.to_alcotest prop_generated_sources_reparse;
          QCheck_alcotest.to_alcotest prop_compile_deterministic ] ) ]
