(* Tests for the drdebug core: end-to-end cyclic-debugging sessions
   driven through the command language (the paper's Fig. 2 workflow). *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" ~file:"test.c" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let exec dbg cmd =
  match Drdebug.Debugger.exec dbg cmd with
  | Ok out -> out
  | Error e -> Alcotest.failf "command %S failed: %s" cmd e

let exec_err dbg cmd =
  match Drdebug.Debugger.exec dbg cmd with
  | Ok _ -> Alcotest.failf "command %S should have failed" cmd
  | Error e -> e

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
  ln = 0 || at 0

let simple_src = {|global int g;
fn helper(int x) {
  int y = x * 2;
  return y;
}
fn main() {
  int a = helper(5);
  g = a + 1;
  int bad = g - 11;
  assert(bad == 99, "bad value");
}|}

let test_record_replay_print () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  let out = exec dbg "record whole" in
  Alcotest.(check bool) "recorded" true (contains out "recorded whole execution");
  ignore (exec dbg "replay");
  (* break on the line computing g and inspect *)
  ignore (exec dbg "break 8");
  let out = exec dbg "continue" in
  Alcotest.(check bool) "stopped at breakpoint" true (contains out "breakpoint");
  (* a has been computed by now *)
  let out = exec dbg "print a" in
  Alcotest.(check bool) "a = 10" true (contains out "a = 10")

let test_breakpoints_by_function () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  let out = exec dbg "break helper" in
  Alcotest.(check bool) "bp set" true (contains out "breakpoint 1");
  let out = exec dbg "continue" in
  Alcotest.(check bool) "stopped in helper" true (contains out "breakpoint");
  let out = exec dbg "backtrace" in
  Alcotest.(check bool) "helper on stack" true (contains out "helper");
  Alcotest.(check bool) "main on stack" true (contains out "main")

let test_replay_is_cyclic () =
  (* the defining property: replaying twice stops at the same place with
     the same state (paper challenge 2) *)
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record whole");
  let run_once () =
    ignore (exec dbg "replay");
    ignore (exec dbg "continue");
    exec dbg "print g"
  in
  ignore (exec dbg "break 9");
  let g1 = run_once () in
  let g2 = run_once () in
  Alcotest.(check string) "same g across replays" g1 g2

let test_stepi_and_where () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  let out = exec dbg "stepi 5" in
  Alcotest.(check bool) "stepped" true (contains out "step limit");
  let out = exec dbg "where" in
  Alcotest.(check bool) "where works" true (contains out "tid 0")

let test_info_threads_and_pinball () =
  let src = {|global int x;
fn worker(int n) { x = n; }
fn main() {
  int t = spawn(worker, 7);
  join(t);
  print(x);
}|} in
  let dbg = Drdebug.Debugger.of_program (compile src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  ignore (exec dbg "continue");
  let out = exec dbg "info threads" in
  Alcotest.(check bool) "two threads" true
    (contains out "tid 0" && contains out "tid 1");
  let out = exec dbg "info pinball" in
  Alcotest.(check bool) "pinball info" true (contains out "pinball:")

let test_slice_workflow () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record until-fail");
  ignore (exec dbg "replay");
  ignore (exec dbg "continue");
  (* the replay ends at the assert; slice the failure *)
  let out = exec dbg "slice-failure" in
  Alcotest.(check bool) "slice computed" true (contains out "failure slice:");
  let out = exec dbg "slice-lines" in
  (* g = a + 1 (line 8) and a = helper(5) (line 7) feed the failing assert *)
  Alcotest.(check bool) "line 8 highlighted" true (contains out "g = a + 1");
  Alcotest.(check bool) "line 7 highlighted" true (contains out "helper(5)");
  let out = exec dbg "info slice" in
  Alcotest.(check bool) "stats shown" true (contains out "statements");
  let out = exec dbg "slice-stmts 5" in
  Alcotest.(check bool) "statements listed" true (contains out "tid 0");
  (* navigation: the last statement (the assert) has dependences *)
  let slice = Option.get dbg.Drdebug.Debugger.session.Drdebug.Session.slice in
  let out = exec dbg (Printf.sprintf "deps %d" (Dr_slicing.Slicer.size slice - 1)) in
  Alcotest.(check bool) "deps listed" true
    (contains out "data" || contains out "control")

let test_slice_var_at_stop () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  ignore (exec dbg "break 9");
  ignore (exec dbg "continue");
  let out = exec dbg "slice g" in
  Alcotest.(check bool) "slice for g" true (contains out "slice for g");
  let out = exec dbg "slice-lines" in
  Alcotest.(check bool) "g's def in slice" true (contains out "g = a + 1")

let test_execution_slice_stepping () =
  let src = {|global int g;
global int noise;
fn main() {
  int a = 2;
  for (int i = 0; i < 40; i = i + 1) {
    noise = noise + i;
  }
  g = a * 10;
  int w = g + 1;
  assert(w == 0, "w");
}|} in
  let dbg = Drdebug.Debugger.of_program (compile src) in
  ignore (exec dbg "record until-fail");
  ignore (exec dbg "replay");
  ignore (exec dbg "continue");
  ignore (exec dbg "slice-failure");
  let out = exec dbg "slice-pinball" in
  Alcotest.(check bool) "exclusions happened" true (contains out "exclusion regions");
  ignore (exec dbg "slice-replay");
  (* step through every slice statement; the noisy loop must not appear *)
  let all_steps = Buffer.create 256 in
  let rec go n =
    if n > 200 then Alcotest.fail "slice stepping did not terminate"
    else begin
      let out = exec dbg "sstep" in
      Buffer.add_string all_steps out;
      if contains out "finished" || contains out "end of execution slice" then ()
      else go (n + 1)
    end
  in
  go 0;
  let steps = Buffer.contents all_steps in
  Alcotest.(check bool) "a=2 stepped" true (contains steps "int a = 2");
  Alcotest.(check bool) "g=a*10 stepped" true (contains steps "g = a * 10");
  Alcotest.(check bool) "noise never stepped" false (contains steps "noise + i");
  (* and variables are examinable during slice replay *)
  ()

let test_print_during_slice_replay () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record until-fail");
  ignore (exec dbg "replay");
  ignore (exec dbg "continue");
  ignore (exec dbg "slice-failure");
  ignore (exec dbg "slice-pinball");
  ignore (exec dbg "slice-replay");
  (* step until g has been written, then print it *)
  let rec go n saw_g =
    if n > 100 then saw_g
    else begin
      match Drdebug.Debugger.exec dbg "sstep" with
      | Error _ -> saw_g
      | Ok out ->
        if contains out "g = a + 1" then true
        else if contains out "finished" || contains out "end of" then saw_g
        else go (n + 1) saw_g
    end
  in
  let reached = go 0 false in
  Alcotest.(check bool) "reached g's def while stepping" true reached;
  ignore (exec dbg "sstep");
  let out = exec dbg "print g" in
  Alcotest.(check bool) "g examinable in slice replay" true (contains out "g = 11")

(* ---- reverse debugging (paper section 8, implemented) ---- *)

let loop_src = {|global int g;
fn main() {
  for (int i = 0; i < 20; i = i + 1) {
    g = g + i;
  }
  print(g);
}|}

let test_breakpoint_hit_repeatedly () =
  (* continuing from a breakpoint must make progress (gdb step-off) *)
  let dbg = Drdebug.Debugger.of_program (compile loop_src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  ignore (exec dbg "break 4");
  let hits = ref 0 in
  let rec go n =
    if n > 50 then Alcotest.fail "breakpoint loop did not terminate"
    else begin
      let out = exec dbg "continue" in
      if contains out "breakpoint" then begin
        incr hits;
        go (n + 1)
      end
    end
  in
  go 0;
  Alcotest.(check int) "hit once per iteration" 20 !hits

let test_reverse_stepi () =
  let dbg = Drdebug.Debugger.of_program (compile loop_src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  ignore (exec dbg "stepi 100");
  let g_at_100 = exec dbg "print g" in
  ignore (exec dbg "stepi 30");
  let out = exec dbg "reverse-stepi 30" in
  Alcotest.(check bool) "rewound" true (contains out "rewound to step 100");
  let g_again = exec dbg "print g" in
  Alcotest.(check string) "state identical after rewind" g_at_100 g_again

let test_reverse_continue () =
  let dbg = Drdebug.Debugger.of_program (compile loop_src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  ignore (exec dbg "break 4");
  (* run to the 3rd hit, then reverse to the 2nd *)
  ignore (exec dbg "continue");
  let g1 = exec dbg "print g" in
  ignore (exec dbg "continue");
  let g2 = exec dbg "print g" in
  ignore (exec dbg "continue");
  let out = exec dbg "reverse-continue" in
  Alcotest.(check bool) "reverse hit" true (contains out "reverse-continue");
  let g_back = exec dbg "print g" in
  Alcotest.(check string) "at 2nd hit state" g2 g_back;
  (* and once more, back to the 1st hit *)
  ignore (exec dbg "reverse-continue");
  let g_back1 = exec dbg "print g" in
  Alcotest.(check string) "at 1st hit state" g1 g_back1;
  (* forward again works *)
  let out = exec dbg "continue" in
  Alcotest.(check bool) "forward after reverse" true (contains out "breakpoint")

let test_goto_and_checkpoints () =
  let src = {|global int g;
fn main() {
  for (int i = 0; i < 3000; i = i + 1) {
    g = g + i;
  }
  print(g);
}|} in
  let dbg = Drdebug.Debugger.of_program (compile src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  ignore (exec dbg "continue");
  (* long enough for auto-checkpoints *)
  let out = exec dbg "info checkpoints" in
  Alcotest.(check bool) "checkpoints captured" true (contains out "checkpoint at step");
  let out = exec dbg "goto 5000" in
  Alcotest.(check bool) "goto" true (contains out "rewound to step 5000");
  let g5000 = exec dbg "print g" in
  ignore (exec dbg "goto 9000");
  ignore (exec dbg "goto 5000");
  Alcotest.(check string) "goto deterministic" g5000 (exec dbg "print g")

let test_error_paths () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec_err dbg "replay");
  ignore (exec_err dbg "continue");
  ignore (exec_err dbg "slice g");
  ignore (exec_err dbg "slice-pinball");
  ignore (exec_err dbg "nonsense");
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  ignore (exec_err dbg "print nosuchvar");
  ignore (exec_err dbg "break 9999");
  ignore (exec_err dbg "delete 42");
  let out = exec dbg "help" in
  Alcotest.(check bool) "help text" true (contains out "slice-pinball")

let test_watchpoints () =
  let src = {|global int counter;
fn main() {
  for (int i = 0; i < 5; i = i + 1) {
    counter = counter + 10;
  }
  print(counter);
}|} in
  let dbg = Drdebug.Debugger.of_program (compile src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  let out = exec dbg "watch counter" in
  Alcotest.(check bool) "watch set" true (contains out "watchpoint");
  (* each continue stops at the next write, with the new value *)
  let out1 = exec dbg "continue" in
  Alcotest.(check bool) "first write" true (contains out1 "counter = 10");
  let out2 = exec dbg "continue" in
  Alcotest.(check bool) "second write" true (contains out2 "counter = 20");
  let out3 = exec dbg "continue" in
  Alcotest.(check bool) "third write" true (contains out3 "counter = 30");
  (* deleting the watchpoint lets the replay run to the end *)
  let id =
    match dbg.Drdebug.Debugger.session.Drdebug.Session.watchpoints with
    | w :: _ -> w.Drdebug.Session.wp_id
    | [] -> Alcotest.fail "no watchpoint"
  in
  ignore (exec dbg (Printf.sprintf "delete %d" id));
  let out = exec dbg "continue" in
  Alcotest.(check bool) "runs to end" true
    (contains out "exited" || contains out "end of region")

let test_watch_and_break_mix () =
  let src = {|global int g;
fn helper(int x) { g = x; return x; }
fn main() {
  int a = helper(1);
  int b = helper(2);
  print(a + b);
}|} in
  let dbg = Drdebug.Debugger.of_program (compile src) in
  ignore (exec dbg "record whole");
  ignore (exec dbg "replay");
  ignore (exec dbg "watch g");
  ignore (exec dbg "break helper");
  (* first stop: breakpoint at helper entry, before any write *)
  let out = exec dbg "continue" in
  Alcotest.(check bool) "breakpoint first" true (contains out "breakpoint");
  (* then the watchpoint fires inside helper *)
  let out = exec dbg "continue" in
  Alcotest.(check bool) "watchpoint next" true (contains out "watchpoint: g = 1")

let test_slice_tree_and_save () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record until-fail");
  ignore (exec dbg "replay");
  ignore (exec dbg "continue");
  ignore (exec dbg "slice-failure");
  let out = exec dbg "slice-tree" in
  Alcotest.(check bool) "tree has edges" true (contains out "data(");
  let out = exec dbg "slice-tree 0 1" in
  Alcotest.(check bool) "tree from idx 0" true (contains out "[0]");
  (* save and reload the slice file *)
  let path = Filename.temp_file "drdebug" ".slice" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let out = exec dbg (Printf.sprintf "slice-save %s" path) in
      Alcotest.(check bool) "saved" true (contains out "saved");
      let stmts = Dr_slicing.Slicer.load_file_statements path in
      Alcotest.(check bool) "reloadable" true (stmts <> []))

let test_list_command () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  let out = exec dbg "list 8" in
  Alcotest.(check bool) "shows target line" true (contains out "g = a + 1");
  Alcotest.(check bool) "marks it" true (contains out ">")

let test_sstep_multi () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record until-fail");
  ignore (exec dbg "replay");
  ignore (exec dbg "continue");
  ignore (exec dbg "slice-failure");
  ignore (exec dbg "slice-pinball");
  ignore (exec dbg "slice-replay");
  let out = exec dbg "sstep 3" in
  (* three slice statements reported in one command *)
  let count =
    List.length
      (List.filter
         (fun l -> String.length l > 0)
         (String.split_on_char '\n' out))
  in
  Alcotest.(check bool) "three lines of stepping" true (count >= 3)

let test_maple_command () =
  let src = {|global int x;
fn t1(int n) { x = 1; }
fn main() {
  int t = spawn(t1, 0);
  int k = x;
  join(t);
  assert(k == 0, "race");
}|} in
  let dbg = Drdebug.Debugger.of_program (compile src) in
  let out = exec dbg "maple" in
  Alcotest.(check bool) "maple exposed" true (contains out "maple exposed");
  (* the loaded pinball replays to the failure *)
  ignore (exec dbg "replay");
  let out = exec dbg "continue" in
  Alcotest.(check bool) "assert reproduced" true (contains out "assertion failed")

let test_precision_toggles () =
  let dbg = Drdebug.Debugger.of_program (compile simple_src) in
  ignore (exec dbg "record whole");
  let out = exec dbg "set prune off" in
  Alcotest.(check bool) "prune off" true (contains out "off");
  let out = exec dbg "set refine on" in
  Alcotest.(check bool) "refine on" true (contains out "on")

let test_bug_case_study_workflow () =
  (* full paper workflow on the pbzip2 model: record the failing run,
     replay, slice the failure, confirm the root cause line is in the
     slice, generate and replay the execution slice *)
  let b = Option.get (Dr_workloads.Bugs.find "pbzip2") in
  let seed, _ = Option.get (Dr_workloads.Bugs.find_failing_seed b) in
  let session =
    Drdebug.Session.create
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
      (Dr_workloads.Bugs.compile b)
  in
  let dbg = Drdebug.Debugger.create session in
  let out = exec dbg "record until-fail" in
  Alcotest.(check bool) "captured failure" true (contains out "assertion failed");
  ignore (exec dbg "replay");
  let out = exec dbg "continue" in
  Alcotest.(check bool) "failure reproduced" true (contains out "assertion failed");
  ignore (exec dbg "slice-failure");
  let out = exec dbg "slice-lines" in
  Alcotest.(check bool) "root cause in slice" true (contains out "fifo_freed = 1");
  let out = exec dbg "slice-pinball" in
  Alcotest.(check bool) "slice pinball built" true (contains out "instructions kept")

let () =
  Alcotest.run "drdebug"
    [ ( "record/replay",
        [ Alcotest.test_case "record+replay+print" `Quick test_record_replay_print;
          Alcotest.test_case "function breakpoints" `Quick
            test_breakpoints_by_function;
          Alcotest.test_case "cyclic replay" `Quick test_replay_is_cyclic;
          Alcotest.test_case "stepi/where" `Quick test_stepi_and_where;
          Alcotest.test_case "info" `Quick test_info_threads_and_pinball ] );
      ( "slicing",
        [ Alcotest.test_case "failure slice workflow" `Quick test_slice_workflow;
          Alcotest.test_case "slice var at stop" `Quick test_slice_var_at_stop;
          Alcotest.test_case "execution slice stepping" `Quick
            test_execution_slice_stepping;
          Alcotest.test_case "print during slice replay" `Quick
            test_print_during_slice_replay ] );
      ( "reverse debugging",
        [ Alcotest.test_case "repeated breakpoint hits" `Quick
            test_breakpoint_hit_repeatedly;
          Alcotest.test_case "reverse-stepi" `Quick test_reverse_stepi;
          Alcotest.test_case "reverse-continue" `Quick test_reverse_continue;
          Alcotest.test_case "goto + checkpoints" `Quick
            test_goto_and_checkpoints ] );
      ( "robustness",
        [ Alcotest.test_case "error paths" `Quick test_error_paths;
          Alcotest.test_case "precision toggles" `Quick test_precision_toggles;
          Alcotest.test_case "watchpoints" `Quick test_watchpoints;
          Alcotest.test_case "watch+break mix" `Quick test_watch_and_break_mix;
          Alcotest.test_case "slice tree + save" `Quick test_slice_tree_and_save;
          Alcotest.test_case "list" `Quick test_list_command;
          Alcotest.test_case "sstep n" `Quick test_sstep_multi ] );
      ( "integration",
        [ Alcotest.test_case "maple command" `Quick test_maple_command;
          Alcotest.test_case "pbzip2 case study" `Quick
            test_bug_case_study_workflow ] ) ]
