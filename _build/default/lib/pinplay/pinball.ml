(** The pinball: a self-contained, portable capture of an execution
    region (paper §1).

    A {e region pinball} holds the initial architectural state (snapshot)
    plus the two non-deterministic inputs of a run: the thread schedule
    (RLE of retired-instruction slices) and the results of
    rand/time/read syscalls, in consumption order.  Replaying a pinball
    reproduces the region exactly, any number of times.

    A {e slice pinball} (paper §4) additionally carries the per-event
    stream of an execution slice: [Step] events for the instructions that
    belong to the slice and [Inject] events that restore the side effects
    of skipped code regions.  Its [schedule]/[syscalls] cover only the
    included instructions. *)

type kind = Region | Slice

type region_spec = {
  skip : int;  (** main-thread instructions skipped before the region *)
  length : int;  (** main-thread instructions captured *)
}

(** Side effects of one excluded code region, to be injected when the
    region is skipped during slice replay. *)
type injection = {
  inj_tid : int;
  inj_mem : (int * int) list;  (** (address, final value) *)
  inj_regs : (int * int) list;  (** (register index incl. flags, final value) *)
}

type slice_event =
  | Step of { tid : int; pc : int }  (** execute one included instruction *)
  | Inject of int  (** apply [injections.(i)] *)

type t = {
  program_name : string;
  kind : kind;
  region : region_spec;
  snapshot : Dr_machine.Snapshot.t;
  schedule : (int * int) array;  (** RLE: (tid, retired count) *)
  syscalls : int array;  (** nondet results in consumption order *)
  injections : injection array;
  slice_events : slice_event array;  (** empty for region pinballs *)
}

let make_region ~program_name ~region ~snapshot ~schedule ~syscalls =
  { program_name; kind = Region; region; snapshot; schedule; syscalls;
    injections = [||]; slice_events = [||] }

(** Total retired instructions across all threads in the captured region. *)
let schedule_instructions t =
  Array.fold_left (fun acc (_, n) -> acc + n) 0 t.schedule

(** Number of instructions a slice pinball actually executes. *)
let step_count t =
  match t.kind with
  | Region -> schedule_instructions t
  | Slice ->
    Array.fold_left
      (fun acc e -> match e with Step _ -> acc + 1 | Inject _ -> acc)
      0 t.slice_events

(* ---- serialization ---- *)

let magic = "DRPB1"

let encode e (t : t) =
  let open Dr_util.Codec in
  put_string e magic;
  put_string e t.program_name;
  put_uint e (match t.kind with Region -> 0 | Slice -> 1);
  put_uint e t.region.skip;
  put_uint e t.region.length;
  Dr_machine.Snapshot.encode e t.snapshot;
  put_uint e (Array.length t.schedule);
  Array.iter
    (fun (tid, n) ->
      put_uint e tid;
      put_uint e n)
    t.schedule;
  put_int_array e t.syscalls;
  put_uint e (Array.length t.injections);
  Array.iter
    (fun inj ->
      put_uint e inj.inj_tid;
      put_list e
        (fun e (a, v) ->
          put_uint e a;
          put_int e v)
        inj.inj_mem;
      put_list e
        (fun e (r, v) ->
          put_uint e r;
          put_int e v)
        inj.inj_regs)
    t.injections;
  put_uint e (Array.length t.slice_events);
  Array.iter
    (fun ev ->
      match ev with
      | Step { tid; pc } ->
        put_uint e 0;
        put_uint e tid;
        put_uint e pc
      | Inject i ->
        put_uint e 1;
        put_uint e i)
    t.slice_events

let decode d : t =
  let open Dr_util.Codec in
  let m = get_string d in
  if m <> magic then raise (Corrupt "bad pinball magic");
  let program_name = get_string d in
  let kind = match get_uint d with 0 -> Region | 1 -> Slice | _ -> raise (Corrupt "kind") in
  let skip = get_uint d in
  let length = get_uint d in
  let snapshot = Dr_machine.Snapshot.decode d in
  let nsched = get_uint d in
  let schedule =
    Array.init nsched (fun _ ->
        let tid = get_uint d in
        let n = get_uint d in
        (tid, n))
  in
  let syscalls = get_int_array d in
  let ninj = get_uint d in
  let injections =
    Array.init ninj (fun _ ->
        let inj_tid = get_uint d in
        let inj_mem =
          get_list d (fun d ->
              let a = get_uint d in
              let v = get_int d in
              (a, v))
        in
        let inj_regs =
          get_list d (fun d ->
              let r = get_uint d in
              let v = get_int d in
              (r, v))
        in
        { inj_tid; inj_mem; inj_regs })
  in
  let nev = get_uint d in
  let slice_events =
    Array.init nev (fun _ ->
        match get_uint d with
        | 0 ->
          let tid = get_uint d in
          let pc = get_uint d in
          Step { tid; pc }
        | 1 -> Inject (get_uint d)
        | _ -> raise (Corrupt "slice event"))
  in
  { program_name; kind; region = { skip; length }; snapshot; schedule;
    syscalls; injections; slice_events }

let to_bytes t =
  let e = Dr_util.Codec.encoder () in
  encode e t;
  Dr_util.Codec.to_string e

let of_bytes s = decode (Dr_util.Codec.decoder s)

(** On-disk size in bytes of the serialized pinball — the paper's "Space"
    column. *)
let size_bytes t = String.length (to_bytes t)

let save_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes t))

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_bytes (really_input_string ic (in_channel_length ic)))
