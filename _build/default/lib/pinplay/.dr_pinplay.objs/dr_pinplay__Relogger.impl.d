lib/pinplay/relogger.ml: Array Dr_isa Dr_machine Dr_util Driver Event Hashtbl List Machine Option Pinball Printf Replayer
