lib/pinplay/pinball.ml: Array Dr_machine Dr_util Fun String
