lib/pinplay/pinball.mli: Dr_machine Dr_util
