lib/pinplay/logger.mli: Dr_isa Dr_machine Format Pinball
