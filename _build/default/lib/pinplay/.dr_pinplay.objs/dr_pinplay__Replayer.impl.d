lib/pinplay/replayer.ml: Array Dr_isa Dr_machine Driver List Machine Pinball Snapshot
