lib/pinplay/replayer.mli: Dr_isa Dr_machine Pinball
