lib/pinplay/relogger.mli: Dr_isa Pinball
