lib/pinplay/logger.ml: Dr_isa Dr_machine Dr_util Driver Event Format Machine Pinball Snapshot
