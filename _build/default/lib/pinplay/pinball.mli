(** The pinball: a self-contained, portable capture of an execution
    region (paper §1, §2).

    A {e region pinball} holds the initial architectural state plus the
    two non-deterministic inputs of a run (thread schedule, syscall
    results); a {e slice pinball} (§4) additionally carries the event
    stream of an execution slice with side-effect injections.  Pinballs
    serialize to a compact binary format and can be shipped between
    machines: replaying one reproduces the region exactly. *)

type kind = Region | Slice

type region_spec = {
  skip : int;  (** main-thread instructions skipped before the region *)
  length : int;  (** main-thread instructions captured *)
}

(** Side effects of one excluded code region, injected during slice
    replay. *)
type injection = {
  inj_tid : int;
  inj_mem : (int * int) list;  (** (address, final value) *)
  inj_regs : (int * int) list;  (** (register index incl. flags, final value) *)
}

type slice_event =
  | Step of { tid : int; pc : int }  (** execute one included instruction *)
  | Inject of int  (** apply [injections.(i)] *)

type t = {
  program_name : string;
  kind : kind;
  region : region_spec;
  snapshot : Dr_machine.Snapshot.t;
  schedule : (int * int) array;  (** RLE: (tid, retired count) *)
  syscalls : int array;  (** nondet results in consumption order *)
  injections : injection array;
  slice_events : slice_event array;  (** empty for region pinballs *)
}

val make_region :
  program_name:string ->
  region:region_spec ->
  snapshot:Dr_machine.Snapshot.t ->
  schedule:(int * int) array ->
  syscalls:int array ->
  t

(** Total retired instructions across all threads in the captured region. *)
val schedule_instructions : t -> int

(** Number of instructions a slice pinball actually executes (for region
    pinballs, same as {!schedule_instructions}). *)
val step_count : t -> int

val encode : Dr_util.Codec.encoder -> t -> unit

(** @raise Dr_util.Codec.Corrupt on malformed input. *)
val decode : Dr_util.Codec.decoder -> t

val to_bytes : t -> string

val of_bytes : string -> t

(** Serialized size in bytes — the paper's "Space" columns. *)
val size_bytes : t -> int

val save_file : string -> t -> unit

val load_file : string -> t
