(** The PinPlay replayer: deterministically re-execute a region pinball.

    The replayer restores the snapshot, drives threads with the recorded
    schedule, and feeds syscall results from the log.  Any analysis
    (slicing, relogging) and any debugger interaction attaches to the
    replay via hooks and breakpoints — replaying the same pinball always
    reproduces the same events. *)

open Dr_machine

exception Divergence of string

type t = {
  machine : Machine.t;
  pinball : Pinball.t;
  session : Driver.session;
  syscall_pos : int ref;
  mutable steps : int;  (** retired instructions since the region start *)
}

(** A mid-replay checkpoint: enough state to resume the {e same} replay
    from this point without re-executing the prefix.  This is the
    "user-level check-pointing" the paper's related-work section proposes
    for reverse debugging (§8). *)
type checkpoint = {
  c_snapshot : Snapshot.t;
  c_steps : int;
  c_syscall_pos : int;
}

(** A nondet source that feeds results from a recorded syscall log. *)
let log_nondet (syscalls : int array) (pos : int ref) : Machine.nondet =
  fun _kind ->
    if !pos >= Array.length syscalls then
      raise (Divergence "syscall log exhausted")
    else begin
      let v = syscalls.(!pos) in
      incr pos;
      v
    end

(* the RLE schedule with its first [n] retired instructions consumed *)
let schedule_suffix (schedule : (int * int) array) n =
  let remaining = ref n in
  let out = ref [] in
  Array.iter
    (fun (tid, cnt) ->
      if !remaining >= cnt then remaining := !remaining - cnt
      else if !remaining > 0 then begin
        out := (tid, cnt - !remaining) :: !out;
        remaining := 0
      end
      else out := (tid, cnt) :: !out)
    schedule;
  Array.of_list (List.rev !out)

(** Create a replayer for a region pinball, optionally resuming [from] a
    checkpoint taken on an earlier replay of the {e same} pinball. *)
let create ?(from : checkpoint option) (prog : Dr_isa.Program.t)
    (pinball : Pinball.t) : t =
  if pinball.Pinball.kind <> Pinball.Region then
    invalid_arg "Replayer.create: slice pinballs replay via Dr_exeslice";
  let snapshot, steps, sys0 =
    match from with
    | None -> (pinball.Pinball.snapshot, 0, 0)
    | Some c -> (c.c_snapshot, c.c_steps, c.c_syscall_pos)
  in
  let machine = Snapshot.restore prog snapshot in
  let syscall_pos = ref sys0 in
  let nondet = log_nondet pinball.Pinball.syscalls syscall_pos in
  let schedule = schedule_suffix pinball.Pinball.schedule steps in
  let session = Driver.session ~nondet machine (Driver.Scripted schedule) in
  { machine; pinball; session; syscall_pos; steps }

let machine t = t.machine

let steps t = t.steps

(** Capture a checkpoint at the current replay position (must be between
    instructions, i.e. not from inside a hook that mutates state). *)
let checkpoint (t : t) : checkpoint =
  { c_snapshot = Snapshot.capture t.machine; c_steps = t.steps;
    c_syscall_pos = !(t.syscall_pos) }

(** Resume replay until a stop condition (breakpoint, predicate,
    [max_steps]) or the end of the recorded region ([Schedule_end]). *)
let resume ?hooks ?max_steps ?break_at ?stop_when (t : t) : Driver.stop_reason
    =
  let user_on_event =
    match hooks with Some h -> h.Driver.on_event | None -> fun _ -> ()
  in
  let hooks =
    { Driver.on_event =
        (fun ev ->
          t.steps <- t.steps + 1;
          user_on_event ev) }
  in
  try Driver.resume ~hooks ?max_steps ?break_at ?stop_when t.session
  with Driver.Replay_divergence msg -> raise (Divergence msg)

(** Replay the whole region in one go. *)
let run ?hooks (t : t) : Driver.stop_reason = resume ?hooks t

(** Convenience: replay a pinball against [prog] and return the machine's
    final state together with the stop reason. *)
let replay ?hooks prog pinball =
  let t = create prog pinball in
  let reason = run ?hooks t in
  (t.machine, reason)
