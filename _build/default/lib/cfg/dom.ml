(** Generic immediate-dominator computation (Cooper–Harvey–Kennedy
    iterative algorithm).  Used on the {e reverse} CFG to obtain immediate
    post-dominators for dynamic control-dependence detection. *)

(** [idom ~num_nodes ~succs ~preds ~root] returns an array [d] with
    [d.(v)] the immediate dominator of [v], [d.(root) = root], and
    [d.(v) = -1] for nodes unreachable from [root]. *)
let idom ~num_nodes ~(succs : int -> int list) ~(preds : int -> int list)
    ~root : int array =
  (* reverse postorder from root *)
  let order = Array.make num_nodes (-1) in
  (* postorder index of each node *)
  let visited = Array.make num_nodes false in
  let postorder = ref [] in
  (* iterative DFS *)
  let stack = Stack.create () in
  Stack.push (root, ref (succs root)) stack;
  visited.(root) <- true;
  while not (Stack.is_empty stack) do
    let node, rest = Stack.top stack in
    match !rest with
    | [] ->
      ignore (Stack.pop stack);
      postorder := node :: !postorder
    | next :: tl ->
      rest := tl;
      if not visited.(next) then begin
        visited.(next) <- true;
        Stack.push (next, ref (succs next)) stack
      end
  done;
  let rpo = Array.of_list !postorder in
  Array.iteri (fun i v -> order.(v) <- i) rpo;
  (* order.(v) = position in reverse postorder; smaller = earlier *)
  let doms = Array.make num_nodes (-1) in
  doms.(root) <- root;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while order.(!a) > order.(!b) do
        a := doms.(!a)
      done;
      while order.(!b) > order.(!a) do
        b := doms.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> root then begin
          let new_idom = ref (-1) in
          List.iter
            (fun p ->
              if doms.(p) <> -1 then
                if !new_idom = -1 then new_idom := p
                else new_idom := intersect p !new_idom)
            (preds v);
          if !new_idom <> -1 && doms.(v) <> !new_idom then begin
            doms.(v) <- !new_idom;
            changed := true
          end
        end)
      rpo
  done;
  doms
