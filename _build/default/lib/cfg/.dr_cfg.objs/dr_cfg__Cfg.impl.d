lib/cfg/cfg.ml: Array Debug_info Dom Dr_isa Format Hashtbl Instr List Option Program Reg String
