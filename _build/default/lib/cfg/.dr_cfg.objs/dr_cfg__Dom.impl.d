lib/cfg/dom.ml: Array List Stack
