(** Wall-clock timing helpers (monotonic where available). *)

let now () = Unix.gettimeofday ()

(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)
let time f =
  let t0 = now () in
  let r = f () in
  let t1 = now () in
  (r, t1 -. t0)

let time_only f = snd (time f)
