lib/util/codec.ml: Array Buffer Char List String
