(** Small statistics helpers for the benchmark harness. *)

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let geomean = function
  | [] -> 0.0
  | l ->
    let logsum = List.fold_left (fun acc x -> acc +. log (max x 1e-12)) 0.0 l in
    exp (logsum /. float_of_int (List.length l))

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean l in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 l
      /. float_of_int (List.length l - 1)
    in
    sqrt var

let percent ~part ~total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total
