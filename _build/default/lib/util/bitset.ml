(** Dense bitsets over [0, n). Used by the LP traversal ([to_include]
    marks) and by dominator computations. *)

type t = { bits : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) land lnot (1 lsl (i land 7)) land 0xff))

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let cardinal t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if mem t i then incr c
  done;
  !c

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
