(** Growable vectors.

    Two flavours are provided: a polymorphic vector ['a t] and an unboxed
    integer vector {!Int_vec.t} used on hot paths (trace collection,
    def/use sets) where avoiding boxing matters. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let clear v = v.len <- 0

let ensure v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while n > !cap do
      cap := !cap * 2
    done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let last v = if v.len = 0 then invalid_arg "Vec.last" else v.data.(v.len - 1)

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let to_array v = Array.sub v.data 0 v.len

let of_array ~dummy a =
  let v = { data = Array.copy a; len = Array.length a; dummy } in
  if Array.length v.data = 0 then v.data <- Array.make 16 dummy;
  v

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

(** Unboxed int vector. *)
module Int_vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 16 0; len = 0 }

  let with_capacity n = { data = Array.make (max n 1) 0; len = 0 }

  let length v = v.len

  let clear v = v.len <- 0

  let ensure v n =
    if n > Array.length v.data then begin
      let cap = ref (Array.length v.data) in
      while n > !cap do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end

  let push v x =
    ensure v (v.len + 1);
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i =
    if i < 0 || i >= v.len then invalid_arg "Int_vec.get";
    v.data.(i)

  let unsafe_get v i = Array.unsafe_get v.data i

  let set v i x =
    if i < 0 || i >= v.len then invalid_arg "Int_vec.set";
    v.data.(i) <- x

  let last v =
    if v.len = 0 then invalid_arg "Int_vec.last";
    v.data.(v.len - 1)

  let pop v =
    if v.len = 0 then invalid_arg "Int_vec.pop";
    v.len <- v.len - 1;
    v.data.(v.len)

  let to_array v = Array.sub v.data 0 v.len

  let iter f v =
    for i = 0 to v.len - 1 do
      f v.data.(i)
    done

  let to_list v =
    let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
    go (v.len - 1) []
end
