(** Unified view of every workload, plus iteration-count calibration so
    benches can target a desired main-thread region length in
    instructions. *)

type kind = Bug | Parsec_app | Parsec_kernel | Specomp

type entry = {
  name : string;
  kind : kind;
  compile : threads:int -> iters:int -> Dr_isa.Program.t;
}

let all : entry list =
  List.map
    (fun (b : Bugs.t) ->
      { name = b.Bugs.name; kind = Bug;
        compile = (fun ~threads:_ ~iters:_ -> Bugs.compile b) })
    Bugs.all
  @ List.map
      (fun (w : Parsec.t) ->
        { name = w.Parsec.name;
          kind = (match w.Parsec.kind with Parsec.App -> Parsec_app | Parsec.Kernel -> Parsec_kernel);
          compile = (fun ~threads ~iters -> Parsec.compile ~threads ~iters w) })
      Parsec.all
  @ List.map
      (fun (w : Specomp.t) ->
        { name = w.Specomp.name; kind = Specomp;
          compile = (fun ~threads ~iters -> Specomp.compile ~threads ~iters w) })
      Specomp.all

let find name = List.find_opt (fun e -> e.name = name) all

let names () = List.map (fun e -> e.name) all

let kind_name = function
  | Bug -> "bug"
  | Parsec_app -> "parsec-app"
  | Parsec_kernel -> "parsec-kernel"
  | Specomp -> "specomp"

(** Main-thread instructions consumed by a full run with the given
    iteration count (probe run under round-robin). *)
let probe_main_icount (e : entry) ~threads ~iters : int =
  let prog = e.compile ~threads ~iters in
  let m = Dr_machine.Machine.create prog in
  let _ =
    Dr_machine.Driver.run ~max_steps:50_000_000 m
      (Dr_machine.Driver.Round_robin { quantum = 20 })
  in
  (Dr_machine.Machine.thread m 0).Dr_machine.Machine.icount

(** Iteration count so that the main thread retires at least
    [main_instrs] instructions (with ~30% headroom).  Uses two probe runs
    to fit the linear model [icount = a + b * iters]. *)
let iters_for (e : entry) ?(threads = 4) ~main_instrs () : int =
  let n1 = 64 and n2 = 256 in
  let i1 = probe_main_icount e ~threads ~iters:n1 in
  let i2 = probe_main_icount e ~threads ~iters:n2 in
  let b = max 1 ((i2 - i1) / (n2 - n1)) in
  let a = max 0 (i1 - (b * n1)) in
  let need = (main_instrs * 13 / 10) - a in
  max 64 ((need / b) + 1)
