lib/workloads/parsec.ml: Dr_isa Dr_lang List Printf
