lib/workloads/bugs.ml: Dr_isa Dr_lang Dr_machine List Printf String
