lib/workloads/specomp.ml: Dr_isa Dr_lang List Printf
