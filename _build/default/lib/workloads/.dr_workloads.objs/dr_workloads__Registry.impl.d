lib/workloads/registry.ml: Bugs Dr_isa Dr_machine List Parsec Specomp
