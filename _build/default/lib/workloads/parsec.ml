(** PARSEC-analogue multithreaded workloads (paper §7, "Logging and
    Replay": five "apps" and three "kernels", 4-threaded runs).

    Each program spawns [threads - 1] workers and does its own share of
    work on the main thread, so regions specified by main-thread
    skip/length counts behave as in the paper (total instructions across
    threads are a small multiple of the main-thread length).  The
    programs mimic the {e concurrency structure} of their namesakes —
    data-parallel loops, striped locks, pipelines, sliding windows —
    which is what drives logging and replay cost (shared-memory
    interleavings, lock traffic). *)

type kind = App | Kernel

type t = {
  name : string;
  kind : kind;
  (* generate the program source for a worker/main iteration count *)
  source : threads:int -> iters:int -> string;
}

let spawn_join_boilerplate threads =
  let w = threads - 1 in
  ( Printf.sprintf
      {|  for (int t = 0; t < %d; t = t + 1) {
    tids[t] = spawn(worker, t + 1);
  }|}
      w,
    Printf.sprintf
      {|  for (int t = 0; t < %d; t = t + 1) {
    join(tids[t]);
  }|}
      w )

(* ---- apps ---- *)

let blackscholes ~threads ~iters =
  let spawns, joins = spawn_join_boilerplate threads in
  Printf.sprintf
    {|// blackscholes analogue: data-parallel option pricing, no locks
global int tids[8];
global int prices[128];
global int results[8];

fn bs_price(int s) {
  // fixed-point polynomial approximation of the pricing kernel
  int x = s %% 97 + 1;
  int v = 1587 + x * 37;
  v = v + (x * x) / 13;
  v = v - (x * x * x) / 711;
  return v;
}

fn worker(int id) {
  int acc = 0;
  for (int i = 0; i < %d; i = i + 1) {
    int opt = (id * 31 + i) %% 128;
    prices[opt] = bs_price(opt + i);
    acc = acc + prices[opt];
  }
  results[id] = acc;
}

fn main() {
%s
  int acc = 0;
  for (int i = 0; i < %d; i = i + 1) {
    int opt = i %% 128;
    prices[opt] = bs_price(opt);
    acc = acc + prices[opt];
  }
  results[0] = acc;
%s
  print(results[0] + results[1]);
}|}
    iters spawns iters joins

let swaptions ~threads ~iters =
  let spawns, joins = spawn_join_boilerplate threads in
  Printf.sprintf
    {|// swaptions analogue: per-thread Monte Carlo simulation (HJM flavour)
global int tids[8];
global int results[8];

fn hjm_path(int seed) {
  int r = seed;
  int v = 0;
  for (int s = 0; s < 4; s = s + 1) {
    r = (r * 1103515245 + 12345) & 1073741823;
    v = v + r %% 1000;
  }
  return v / 4;
}

fn worker(int id) {
  int sum = 0;
  for (int i = 0; i < %d; i = i + 1) {
    sum = sum + hjm_path(id * 7919 + i);
  }
  results[id] = sum;
}

fn main() {
%s
  int sum = 0;
  for (int i = 0; i < %d; i = i + 1) {
    sum = sum + hjm_path(rand() %% 1000 + i);
  }
  results[0] = sum;
%s
  print(results[0] %% 100000);
}|}
    iters spawns iters joins

let fluidanimate ~threads ~iters =
  let spawns, joins = spawn_join_boilerplate threads in
  Printf.sprintf
    {|// fluidanimate analogue: grid updates guarded by striped cell locks
global int tids[8];
global int grid[256];
global int locks[8];
global int steps;

fn cell_update(int c) {
  int v = grid[c];
  v = v + (grid[(c + 1) %% 256] - v) / 4;
  v = v + (grid[(c + 255) %% 256] - v) / 4;
  grid[c] = v + 1;
  return v;
}

fn worker(int id) {
  for (int i = 0; i < %d; i = i + 1) {
    int c = (id * 67 + i * 13) %% 256;
    lock(&locks[c %% 8]);
    cell_update(c);
    unlock(&locks[c %% 8]);
  }
}

fn main() {
%s
  for (int i = 0; i < %d; i = i + 1) {
    int c = (i * 29) %% 256;
    lock(&locks[c %% 8]);
    cell_update(c);
    steps = steps + 1;
    unlock(&locks[c %% 8]);
  }
%s
  print(grid[0] + steps);
}|}
    iters spawns iters joins

let ferret ~threads ~iters =
  let spawns, joins = spawn_join_boilerplate threads in
  Printf.sprintf
    {|// ferret analogue: similarity-search pipeline (produce -> rank)
global int tids[8];
global int queue[64];
global int qhead;
global int qtail;
global int qlock;
global int ranked;
global int done_producing;

fn rank(int item) {
  int h = item;
  for (int k = 0; k < 3; k = k + 1) {
    h = (h * 131 + k) %% 65536;
  }
  return h;
}

fn worker(int id) {
  int running = 1;
  while (running == 1) {
    int item = 0 - 1;
    lock(&qlock);
    if (qhead < qtail) {
      item = queue[qhead %% 64];
      qhead = qhead + 1;
    } else {
      if (done_producing == 1) {
        running = 0;
      }
    }
    unlock(&qlock);
    if (item >= 0) {
      int r = rank(item);
      lock(&qlock);
      ranked = ranked + (r %% 7);
      unlock(&qlock);
    } else {
      yield();
    }
  }
}

fn main() {
%s
  for (int i = 0; i < %d; i = i + 1) {
    lock(&qlock);
    if (qtail - qhead < 64) {
      queue[qtail %% 64] = i * 3;
      qtail = qtail + 1;
    }
    unlock(&qlock);
  }
  lock(&qlock);
  done_producing = 1;
  unlock(&qlock);
%s
  print(ranked);
}|}
    spawns iters joins

let x264 ~threads ~iters =
  let spawns, joins = spawn_join_boilerplate threads in
  Printf.sprintf
    {|// x264 analogue: sliding-window frame encoding; each thread waits on
// the previous thread's progress (pipeline parallelism with yields)
global int tids[8];
global int progress[8];
global int frames[128];

fn encode_mb(int f, int row) {
  int v = frames[f %% 128];
  v = (v * 17 + row * 3 + f) %% 32768;
  frames[f %% 128] = v;
  return v;
}

fn worker(int id) {
  for (int row = 0; row < %d; row = row + 1) {
    // wait until the previous stage is at least two rows ahead
    while (progress[id - 1] < row + 2) {
      yield();
    }
    encode_mb(id * 41 + row, row);
    progress[id] = row + 1;
  }
  // release any stage waiting on us near the window edge
  progress[id] = %d + 8;
}

fn main() {
%s
  for (int row = 0; row < %d; row = row + 1) {
    encode_mb(row, row);
    progress[0] = row + 1;
  }
  progress[0] = %d + 8;
%s
  print(frames[0] + progress[1]);
}|}
    iters iters spawns iters iters joins

(* ---- kernels ---- *)

let canneal ~threads ~iters =
  let spawns, joins = spawn_join_boilerplate threads in
  Printf.sprintf
    {|// canneal analogue: random element swaps under ordered striped locks
global int tids[8];
global int layout[256];
global int locks[8];
global int accepted;

fn swap_cost(int a, int b) {
  return (layout[a] - layout[b]) * (a - b);
}

fn worker(int id) {
  int r = id * 7368787;
  for (int i = 0; i < %d; i = i + 1) {
    r = (r * 1103515245 + 12345) & 1073741823;
    int a = r %% 256;
    int b = (r / 256) %% 256;
    int la = a %% 8;
    int lb = b %% 8;
    // take stripes in sorted order to avoid deadlock
    int lo = la;
    int hi = lb;
    if (lo > hi) { lo = lb; hi = la; }
    lock(&locks[lo]);
    if (hi != lo) { lock(&locks[hi]); }
    if (swap_cost(a, b) > 0) {
      int tmp = layout[a];
      layout[a] = layout[b];
      layout[b] = tmp;
      accepted = accepted + 1;
    }
    if (hi != lo) { unlock(&locks[hi]); }
    unlock(&locks[lo]);
  }
}

fn main() {
  for (int i = 0; i < 256; i = i + 1) {
    layout[i] = (i * 37) %% 101;
  }
%s
  int r = 99991;
  for (int i = 0; i < %d; i = i + 1) {
    r = (r * 1103515245 + 12345) & 1073741823;
    int a = r %% 256;
    lock(&locks[a %% 8]);
    layout[a] = layout[a] + 1;
    unlock(&locks[a %% 8]);
  }
%s
  print(accepted + layout[7]);
}|}
    iters spawns iters joins

let dedup ~threads ~iters =
  let spawns, joins = spawn_join_boilerplate threads in
  Printf.sprintf
    {|// dedup analogue: chunk, fingerprint, and deduplicate into buckets
global int tids[8];
global int data[256];
global int buckets[64];
global int block_lock;
global int dupes;

fn fingerprint(int start) {
  int h = 5381;
  for (int k = 0; k < 4; k = k + 1) {
    h = (h * 33 + data[(start + k) %% 256]) %% 1000003;
  }
  return h;
}

fn worker(int id) {
  for (int i = 0; i < %d; i = i + 1) {
    int start = (id * 101 + i * 7) %% 256;
    int h = fingerprint(start);
    int slot = h %% 64;
    lock(&block_lock);
    if (buckets[slot] == h) {
      dupes = dupes + 1;
    } else {
      buckets[slot] = h;
    }
    unlock(&block_lock);
  }
}

fn main() {
  for (int i = 0; i < 256; i = i + 1) {
    data[i] = (i * i) %% 251;
  }
%s
  for (int i = 0; i < %d; i = i + 1) {
    int h = fingerprint(i %% 256);
    int slot = h %% 64;
    lock(&block_lock);
    if (buckets[slot] == h) {
      dupes = dupes + 1;
    } else {
      buckets[slot] = h;
    }
    unlock(&block_lock);
  }
%s
  print(dupes);
}|}
    iters spawns iters joins

let streamcluster ~threads ~iters =
  let spawns, joins = spawn_join_boilerplate threads in
  Printf.sprintf
    {|// streamcluster analogue: distance sums into a shared cost accumulator
global int tids[8];
global int points[128];
global int centers[8];
global int cost_lock;
global int total_cost;

fn dist(int p, int c) {
  int d = points[p] - centers[c];
  if (d < 0) { d = 0 - d; }
  return d;
}

fn nearest(int p) {
  int best = dist(p, 0);
  for (int c = 1; c < 8; c = c + 1) {
    int d = dist(p, c);
    if (d < best) { best = d; }
  }
  return best;
}

fn worker(int id) {
  int local = 0;
  for (int i = 0; i < %d; i = i + 1) {
    local = local + nearest((id * 43 + i) %% 128);
    if (i %% 16 == 15) {
      lock(&cost_lock);
      total_cost = total_cost + local;
      unlock(&cost_lock);
      local = 0;
    }
  }
  lock(&cost_lock);
  total_cost = total_cost + local;
  unlock(&cost_lock);
}

fn main() {
  for (int i = 0; i < 128; i = i + 1) {
    points[i] = (i * 53) %% 211;
  }
  for (int c = 0; c < 8; c = c + 1) {
    centers[c] = c * 31;
  }
%s
  int local = 0;
  for (int i = 0; i < %d; i = i + 1) {
    local = local + nearest(i %% 128);
  }
  lock(&cost_lock);
  total_cost = total_cost + local;
  unlock(&cost_lock);
%s
  print(total_cost %% 100000);
}|}
    iters spawns iters joins

let all : t list =
  [ { name = "blackscholes"; kind = App; source = blackscholes };
    { name = "swaptions"; kind = App; source = swaptions };
    { name = "fluidanimate"; kind = App; source = fluidanimate };
    { name = "ferret"; kind = App; source = ferret };
    { name = "x264"; kind = App; source = x264 };
    { name = "canneal"; kind = Kernel; source = canneal };
    { name = "dedup"; kind = Kernel; source = dedup };
    { name = "streamcluster"; kind = Kernel; source = streamcluster } ]

let find name = List.find_opt (fun w -> w.name = name) all

let compile ?(threads = 4) ~iters (w : t) : Dr_isa.Program.t =
  match
    Dr_lang.Codegen.compile_result ~name:w.name ~file:(w.name ^ ".c")
      (w.source ~threads ~iters)
  with
  | Ok p -> p
  | Error msg -> invalid_arg (Printf.sprintf "parsec workload %s: %s" w.name msg)
