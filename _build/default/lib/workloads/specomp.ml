(** SPEC OMP 2001 analogue workloads (paper Fig. 13: ammp, apsi, galgel,
    mgrid, wupwise).

    These are the programs the paper uses to evaluate save/restore-pair
    pruning, so what matters here is their {e call structure}: hot inner
    loops calling small helper functions whose locals live in callee-saved
    registers.  Every call then saves/restores registers in its
    prologue/epilogue, creating exactly the spurious dependence chains
    §5.2 prunes.  mgrid additionally recurses (multigrid V-cycles),
    stressing the control-dependence frame stack. *)

type t = {
  name : string;
  source : threads:int -> iters:int -> string;
}

let spawn_join threads =
  let w = threads - 1 in
  ( Printf.sprintf
      {|  for (int t = 0; t < %d; t = t + 1) {
    tids[t] = spawn(worker, t + 1);
  }|}
      w,
    Printf.sprintf
      {|  for (int t = 0; t < %d; t = t + 1) {
    join(tids[t]);
  }|}
      w )

let ammp ~threads ~iters =
  let spawns, joins = spawn_join threads in
  Printf.sprintf
    {|// ammp analogue: molecular mechanics force evaluation, deep call chains
global int tids[8];
global int pos[128];
global int vel[128];
global int forces[8];

fn sq(int x) {
  int y = x * x;
  return y;
}

fn dist2(int a, int b) {
  int dx = pos[a] - pos[b];
  int d = sq(dx);
  return d + 1;
}

fn lj_force(int a, int b) {
  int d = dist2(a, b);
  int inv = 100000 / d;
  int f = inv / d - inv / (d * 2);
  return f;
}

fn atom_step(int a) {
  int f = lj_force(a, (a + 1) %% 128);
  f = f + lj_force(a, (a + 7) %% 128);
  int v = vel[a] + f / 16;
  vel[a] = v;
  pos[a] = pos[a] + v / 8;
  return f;
}

fn worker(int id) {
  int acc = 0;
  for (int i = 0; i < %d; i = i + 1) {
    acc = acc + atom_step((id * 37 + i) %% 128);
  }
  forces[id] = acc;
}

fn main() {
  for (int i = 0; i < 128; i = i + 1) { pos[i] = i * 3 + 11; }
%s
  int acc = 0;
  for (int i = 0; i < %d; i = i + 1) {
    acc = acc + atom_step(i %% 128);
  }
  forces[0] = acc;
%s
  print(forces[0] %% 10000);
}|}
    iters spawns iters joins

let apsi ~threads ~iters =
  let spawns, joins = spawn_join threads in
  Printf.sprintf
    {|// apsi analogue: pollutant transport (advect/diffuse/deposit helpers)
global int tids[8];
global int conc[128];
global int wind[128];
global int sums[8];

fn advect(int c, int w) {
  int moved = (c * w) / 64;
  return c - moved;
}

fn diffuse(int c, int left, int right) {
  int lap = left + right - 2 * c;
  return c + lap / 8;
}

fn deposit(int c) {
  int lost = c / 50;
  return c - lost;
}

fn cell_step(int i) {
  int c = conc[i];
  c = advect(c, wind[i]);
  c = diffuse(c, conc[(i + 127) %% 128], conc[(i + 1) %% 128]);
  c = deposit(c);
  conc[i] = c;
  return c;
}

fn worker(int id) {
  int s = 0;
  for (int i = 0; i < %d; i = i + 1) {
    s = s + cell_step((id * 53 + i) %% 128);
  }
  sums[id] = s;
}

fn main() {
  for (int i = 0; i < 128; i = i + 1) {
    conc[i] = 1000 + i;
    wind[i] = i %% 17;
  }
%s
  int s = 0;
  for (int i = 0; i < %d; i = i + 1) {
    s = s + cell_step(i %% 128);
  }
  sums[0] = s;
%s
  print(sums[0] %% 100000);
}|}
    iters spawns iters joins

let galgel ~threads ~iters =
  let spawns, joins = spawn_join threads in
  Printf.sprintf
    {|// galgel analogue: Galerkin fluid oscillation (dot/axpy helpers)
global int tids[8];
global int va[64];
global int vb[64];
global int vc[64];
global int norms[8];

fn dot8(int off) {
  int s = 0;
  for (int k = 0; k < 8; k = k + 1) {
    s = s + va[(off + k) %% 64] * vb[(off + k) %% 64];
  }
  return s;
}

fn axpy8(int alpha, int off) {
  for (int k = 0; k < 8; k = k + 1) {
    vc[(off + k) %% 64] = alpha * va[(off + k) %% 64] + vc[(off + k) %% 64];
  }
  return vc[off %% 64];
}

fn galerkin_step(int i) {
  int alpha = dot8(i) %% 7 - 3;
  int r = axpy8(alpha, i);
  return r;
}

fn worker(int id) {
  int n = 0;
  for (int i = 0; i < %d; i = i + 1) {
    n = n + galerkin_step((id * 29 + i) %% 64);
  }
  norms[id] = n;
}

fn main() {
  for (int i = 0; i < 64; i = i + 1) {
    va[i] = i %% 9 + 1;
    vb[i] = (i * 5) %% 11;
  }
%s
  int n = 0;
  for (int i = 0; i < %d; i = i + 1) {
    n = n + galerkin_step(i %% 64);
  }
  norms[0] = n;
%s
  print(norms[0] %% 100000);
}|}
    iters spawns iters joins

let mgrid ~threads ~iters =
  let spawns, joins = spawn_join threads in
  Printf.sprintf
    {|// mgrid analogue: recursive multigrid V-cycles (recursion exercises
// the interprocedural control-dependence stack)
global int tids[8];
global int grid[256];
global int residuals[8];

fn smooth(int base, int len) {
  int r = 0;
  for (int k = 1; k < len - 1; k = k + 1) {
    int v = (grid[base + k - 1] + grid[base + k + 1]) / 2;
    grid[base + k] = (grid[base + k] + v) / 2;
    r = r + v;
  }
  return r;
}

fn vcycle(int base, int len) {
  if (len <= 4) {
    return smooth(base, len);
  }
  int r = smooth(base, len);
  r = r + vcycle(base, len / 2);
  r = r + smooth(base, len);
  return r;
}

fn worker(int id) {
  int r = 0;
  for (int i = 0; i < %d; i = i + 1) {
    r = r + vcycle((id %% 4) * 64, 16);
  }
  residuals[id] = r;
}

fn main() {
  for (int i = 0; i < 256; i = i + 1) { grid[i] = (i * 7) %% 93; }
%s
  int r = 0;
  for (int i = 0; i < %d; i = i + 1) {
    r = r + vcycle(0, 32);
  }
  residuals[0] = r;
%s
  print(residuals[0] %% 100000);
}|}
    iters spawns iters joins

let wupwise ~threads ~iters =
  let spawns, joins = spawn_join threads in
  Printf.sprintf
    {|// wupwise analogue: lattice QCD complex matrix-vector helpers
global int tids[8];
global int re[64];
global int im[64];
global int acc[8];

fn cmul_re(int ar, int ai, int br, int bi) {
  return ar * br - ai * bi;
}

fn cmul_im(int ar, int ai, int br, int bi) {
  return ar * bi + ai * br;
}

fn su3_apply(int i) {
  int j = (i + 1) %% 64;
  int r = cmul_re(re[i], im[i], re[j], im[j]);
  int m = cmul_im(re[i], im[i], re[j], im[j]);
  re[i] = (r + re[i]) %% 10007;
  im[i] = (m + im[i]) %% 10007;
  return r + m;
}

fn worker(int id) {
  int a = 0;
  for (int i = 0; i < %d; i = i + 1) {
    a = a + su3_apply((id * 17 + i) %% 64);
  }
  acc[id] = a;
}

fn main() {
  for (int i = 0; i < 64; i = i + 1) {
    re[i] = i + 1;
    im[i] = 2 * i + 1;
  }
%s
  int a = 0;
  for (int i = 0; i < %d; i = i + 1) {
    a = a + su3_apply(i %% 64);
  }
  acc[0] = a;
%s
  print(acc[0] %% 100000);
}|}
    iters spawns iters joins

let all : t list =
  [ { name = "ammp"; source = ammp };
    { name = "apsi"; source = apsi };
    { name = "galgel"; source = galgel };
    { name = "mgrid"; source = mgrid };
    { name = "wupwise"; source = wupwise } ]

let find name = List.find_opt (fun w -> w.name = name) all

let compile ?(threads = 4) ~iters (w : t) : Dr_isa.Program.t =
  match
    Dr_lang.Codegen.compile_result ~name:w.name ~file:(w.name ^ ".c")
      (w.source ~threads ~iters)
  with
  | Ok p -> p
  | Error msg -> invalid_arg (Printf.sprintf "specomp workload %s: %s" w.name msg)
