lib/core/debugger.ml: Array Buffer Dr_exeslice Dr_isa Dr_machine Dr_maple Dr_pinplay Dr_slicing Dr_util Format Hashtbl List Option Printf Session String
