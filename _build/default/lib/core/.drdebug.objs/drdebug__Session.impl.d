lib/core/session.ml: Array Dr_exeslice Dr_isa Dr_machine Dr_pinplay Dr_slicing Driver Format List Machine Option Printf
