(** Abstract syntax of the mini-C language.  Every node carries the source
    line it starts on, feeding the debug line table. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr

type unop = Neg | Not

type expr = { e : expr_kind; eline : int }

and expr_kind =
  | Int of int
  | Var of string
  | Index of string * expr  (** [a[e]] — global arrays *)
  | AddrOf of string  (** [&g] — globals only *)
  | AddrIndex of string * expr  (** [&a[e]] — address of a global array element *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list  (** user function or builtin *)

type stmt = { s : stmt_kind; sline : int }

and stmt_kind =
  | Decl of string * expr option
  | Assign of string * expr
  | Index_assign of string * expr * expr  (** [a[i] = e] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Switch of expr * (int * stmt list) list * stmt list option
      (** cases (value, body) and optional default *)
  | Return of expr option
  | Break
  | Continue
  | Expr of expr  (** expression statement (calls) *)
  | Assert of expr * string

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  fline : int;
}

type global = {
  gname : string;
  gsize : int option;  (** [Some n] for arrays of n words *)
  ginit : int;
  gline : int;
}

type program = { globals : global list; funcs : func list }

(** Builtin functions recognised by sema/codegen.  [arity = -1] means
    variable printing of one value (not used; all are fixed arity). *)
let builtins =
  [ ("spawn", 2); ("join", 1); ("lock", 1); ("unlock", 1); ("print", 1);
    ("rand", 0); ("time", 0); ("read", 0); ("alloc", 1); ("yield", 0);
    ("exit", 1); ("peek", 1); ("poke", 2); ("wait", 2); ("signal", 1);
    ("broadcast", 1) ]

let is_builtin name = List.mem_assoc name builtins
