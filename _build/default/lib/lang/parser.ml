(** Recursive-descent parser for the mini-C language. *)

exception Error of { line : int; msg : string }

type state = { mutable toks : Lexer.lexed list }

let peek st =
  match st.toks with
  | [] -> { Lexer.tok = Token.EOF; line = 0 }
  | t :: _ -> t

let peek2 st =
  match st.toks with
  | _ :: t :: _ -> t
  | _ -> { Lexer.tok = Token.EOF; line = 0 }

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error st msg = raise (Error { line = (peek st).Lexer.line; msg })

let expect st tok =
  let t = peek st in
  if t.Lexer.tok = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s, found %s" (Token.to_string tok)
         (Token.to_string t.Lexer.tok))

let expect_ident st =
  match (peek st).Lexer.tok with
  | Token.IDENT s ->
    advance st;
    s
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let expect_int st =
  match (peek st).Lexer.tok with
  | Token.INT n ->
    advance st;
    n
  | Token.MINUS -> (
    advance st;
    match (peek st).Lexer.tok with
    | Token.INT n ->
      advance st;
      -n
    | t -> error st (Printf.sprintf "expected integer, found %s" (Token.to_string t)))
  | t -> error st (Printf.sprintf "expected integer, found %s" (Token.to_string t))

(* ---- expressions, precedence climbing ---- *)

let binop_of_token = function
  | Token.PIPEPIPE -> Some (Ast.LOr, 1)
  | Token.AMPAMP -> Some (Ast.LAnd, 2)
  | Token.PIPE -> Some (Ast.BOr, 3)
  | Token.CARET -> Some (Ast.BXor, 4)
  | Token.AMP -> Some (Ast.BAnd, 5)
  | Token.EQ -> Some (Ast.Eq, 6)
  | Token.NE -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek st).Lexer.tok with
    | Some (op, prec) when prec >= min_prec ->
      let line = (peek st).Lexer.line in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := { Ast.e = Ast.Binop (op, !lhs, rhs); eline = line }
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Token.MINUS ->
    advance st;
    { Ast.e = Ast.Unop (Ast.Neg, parse_unary st); eline = t.Lexer.line }
  | Token.NOT ->
    advance st;
    { Ast.e = Ast.Unop (Ast.Not, parse_unary st); eline = t.Lexer.line }
  | Token.AMP ->
    advance st;
    let name = expect_ident st in
    if (peek st).Lexer.tok = Token.LBRACKET then begin
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      { Ast.e = Ast.AddrIndex (name, idx); eline = t.Lexer.line }
    end
    else { Ast.e = Ast.AddrOf name; eline = t.Lexer.line }
  | _ -> parse_primary st

and parse_primary st =
  let t = peek st in
  match t.Lexer.tok with
  | Token.INT n ->
    advance st;
    { Ast.e = Ast.Int n; eline = t.Lexer.line }
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.IDENT name -> (
    advance st;
    match (peek st).Lexer.tok with
    | Token.LPAREN ->
      advance st;
      let args = parse_args st in
      { Ast.e = Ast.Call (name, args); eline = t.Lexer.line }
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      { Ast.e = Ast.Index (name, idx); eline = t.Lexer.line }
    | _ -> { Ast.e = Ast.Var name; eline = t.Lexer.line })
  | tok -> error st (Printf.sprintf "expected expression, found %s" (Token.to_string tok))

and parse_args st =
  if (peek st).Lexer.tok = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr st in
      match (peek st).Lexer.tok with
      | Token.COMMA ->
        advance st;
        go (e :: acc)
      | Token.RPAREN ->
        advance st;
        List.rev (e :: acc)
      | tok -> error st (Printf.sprintf "expected , or ), found %s" (Token.to_string tok))
    in
    go []
  end

(* ---- statements ---- *)

(* A "simple" statement: decl / assign / expr, without the trailing
   semicolon.  Used both for normal statements and for-headers. *)
let rec parse_simple st : Ast.stmt =
  let t = peek st in
  match t.Lexer.tok with
  | Token.KW_INT ->
    advance st;
    let name = expect_ident st in
    let init =
      if (peek st).Lexer.tok = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    { Ast.s = Ast.Decl (name, init); sline = t.Lexer.line }
  | Token.IDENT name when (peek2 st).Lexer.tok = Token.ASSIGN ->
    advance st;
    advance st;
    let e = parse_expr st in
    { Ast.s = Ast.Assign (name, e); sline = t.Lexer.line }
  | Token.IDENT name when (peek2 st).Lexer.tok = Token.LBRACKET ->
    (* could be a[i] = e or an expression; try index-assign *)
    let saved = st.toks in
    advance st;
    advance st;
    let idx = parse_expr st in
    expect st Token.RBRACKET;
    if (peek st).Lexer.tok = Token.ASSIGN then begin
      advance st;
      let e = parse_expr st in
      { Ast.s = Ast.Index_assign (name, idx, e); sline = t.Lexer.line }
    end
    else begin
      st.toks <- saved;
      let e = parse_expr st in
      { Ast.s = Ast.Expr e; sline = t.Lexer.line }
    end
  | _ ->
    let e = parse_expr st in
    { Ast.s = Ast.Expr e; sline = t.Lexer.line }

and parse_stmt st : Ast.stmt =
  let t = peek st in
  match t.Lexer.tok with
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let then_b = parse_block st in
    let else_b =
      if (peek st).Lexer.tok = Token.KW_ELSE then begin
        advance st;
        if (peek st).Lexer.tok = Token.KW_IF then [ parse_stmt st ]
        else parse_block st
      end
      else []
    in
    { Ast.s = Ast.If (cond, then_b, else_b); sline = t.Lexer.line }
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_block st in
    { Ast.s = Ast.While (cond, body); sline = t.Lexer.line }
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if (peek st).Lexer.tok = Token.SEMI then None else Some (parse_simple st)
    in
    expect st Token.SEMI;
    let cond =
      if (peek st).Lexer.tok = Token.SEMI then None else Some (parse_expr st)
    in
    expect st Token.SEMI;
    let step =
      if (peek st).Lexer.tok = Token.RPAREN then None else Some (parse_simple st)
    in
    expect st Token.RPAREN;
    let body = parse_block st in
    { Ast.s = Ast.For (init, cond, step, body); sline = t.Lexer.line }
  | Token.KW_SWITCH ->
    advance st;
    expect st Token.LPAREN;
    let scrut = parse_expr st in
    expect st Token.RPAREN;
    expect st Token.LBRACE;
    let cases = ref [] in
    let default = ref None in
    let rec body_stmts acc =
      match (peek st).Lexer.tok with
      | Token.KW_CASE | Token.KW_DEFAULT | Token.RBRACE -> List.rev acc
      | _ -> body_stmts (parse_stmt st :: acc)
    in
    let rec go () =
      match (peek st).Lexer.tok with
      | Token.KW_CASE ->
        advance st;
        let v = expect_int st in
        expect st Token.COLON;
        let body = body_stmts [] in
        cases := (v, body) :: !cases;
        go ()
      | Token.KW_DEFAULT ->
        advance st;
        expect st Token.COLON;
        let body = body_stmts [] in
        if !default <> None then error st "duplicate default";
        default := Some body;
        go ()
      | Token.RBRACE -> advance st
      | tok ->
        error st (Printf.sprintf "expected case/default/}, found %s" (Token.to_string tok))
    in
    go ();
    { Ast.s = Ast.Switch (scrut, List.rev !cases, !default); sline = t.Lexer.line }
  | Token.KW_RETURN ->
    advance st;
    let e =
      if (peek st).Lexer.tok = Token.SEMI then None else Some (parse_expr st)
    in
    expect st Token.SEMI;
    { Ast.s = Ast.Return e; sline = t.Lexer.line }
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    { Ast.s = Ast.Break; sline = t.Lexer.line }
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    { Ast.s = Ast.Continue; sline = t.Lexer.line }
  | Token.KW_ASSERT ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expr st in
    expect st Token.COMMA;
    let msg =
      match (peek st).Lexer.tok with
      | Token.STRING s ->
        advance st;
        s
      | tok -> error st (Printf.sprintf "expected string, found %s" (Token.to_string tok))
    in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    { Ast.s = Ast.Assert (e, msg); sline = t.Lexer.line }
  | _ ->
    let s = parse_simple st in
    expect st Token.SEMI;
    s

and parse_block st : Ast.stmt list =
  expect st Token.LBRACE;
  let rec go acc =
    if (peek st).Lexer.tok = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ---- top level ---- *)

let parse_global st : Ast.global =
  let line = (peek st).Lexer.line in
  expect st Token.KW_GLOBAL;
  expect st Token.KW_INT;
  let name = expect_ident st in
  let size =
    if (peek st).Lexer.tok = Token.LBRACKET then begin
      advance st;
      let n = expect_int st in
      expect st Token.RBRACKET;
      Some n
    end
    else None
  in
  let init =
    if (peek st).Lexer.tok = Token.ASSIGN then begin
      advance st;
      expect_int st
    end
    else 0
  in
  expect st Token.SEMI;
  { Ast.gname = name; gsize = size; ginit = init; gline = line }

let parse_func st : Ast.func =
  let line = (peek st).Lexer.line in
  expect st Token.KW_FN;
  let name = expect_ident st in
  expect st Token.LPAREN;
  let params =
    if (peek st).Lexer.tok = Token.RPAREN then begin
      advance st;
      []
    end
    else begin
      let rec go acc =
        expect st Token.KW_INT;
        let p = expect_ident st in
        match (peek st).Lexer.tok with
        | Token.COMMA ->
          advance st;
          go (p :: acc)
        | Token.RPAREN ->
          advance st;
          List.rev (p :: acc)
        | tok -> error st (Printf.sprintf "expected , or ), found %s" (Token.to_string tok))
      in
      go []
    end
  in
  let body = parse_block st in
  { Ast.fname = name; params; body; fline = line }

let parse (src : string) : Ast.program =
  let st = { toks = Lexer.tokenize src } in
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match (peek st).Lexer.tok with
    | Token.EOF -> ()
    | Token.KW_GLOBAL ->
      globals := parse_global st :: !globals;
      go ()
    | Token.KW_FN ->
      funcs := parse_func st :: !funcs;
      go ()
    | tok -> error st (Printf.sprintf "expected global or fn, found %s" (Token.to_string tok))
  in
  go ();
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }
