lib/lang/codegen.ml: Ast Debug_info Dr_isa Dr_util Hashtbl Instr Lexer List Option Parser Printf Program Reg Sema
