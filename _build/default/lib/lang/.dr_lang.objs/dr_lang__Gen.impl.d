lib/lang/gen.ml: Buffer List Printf Random String
