lib/lang/sema.ml: Ast Fun Hashtbl List Option Printf
