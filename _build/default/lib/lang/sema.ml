(** Semantic checks for the mini-C language: name resolution, arity
    checks, array/scalar distinctions, and placement of break/continue.
    All errors carry the offending source line. *)

exception Error of { line : int; msg : string }

let err line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

type ctx = {
  funcs : (string * int) list;  (** name, arity *)
  globals : (string * bool) list;  (** name, is_array *)
  mutable scopes : string list ref list;
      (** lexical scopes, innermost first; block-scoped: a name may be
          reused in sibling scopes but not shadowed in nested ones
          (codegen shares one slot per name per function) *)
  mutable loop_depth : int;
  mutable switch_depth : int;
}

let in_scope ctx name = List.exists (fun s -> List.mem name !s) ctx.scopes

let declare ctx name =
  match ctx.scopes with
  | s :: _ -> s := name :: !s
  | [] -> invalid_arg "no scope"

let with_scope ctx f =
  ctx.scopes <- ref [] :: ctx.scopes;
  Fun.protect
    ~finally:(fun () -> ctx.scopes <- List.tl ctx.scopes)
    f

let is_global_array ctx name =
  match List.assoc_opt name ctx.globals with Some b -> b | None -> false

let is_global ctx name = List.mem_assoc name ctx.globals

let var_visible ctx name =
  in_scope ctx name || (is_global ctx name && not (is_global_array ctx name))

let rec check_expr ctx (e : Ast.expr) =
  let line = e.Ast.eline in
  match e.Ast.e with
  | Ast.Int _ -> ()
  | Ast.Var name ->
    if List.mem_assoc name ctx.funcs then
      err line "function %s used as a value (only allowed as spawn target)" name
    else if is_global_array ctx name then
      err line "array %s used without an index" name
    else if not (var_visible ctx name) then err line "undeclared variable %s" name
  | Ast.Index (name, idx) ->
    if not (is_global_array ctx name) then
      err line "%s is not a global array" name;
    check_expr ctx idx
  | Ast.AddrOf name ->
    if not (is_global ctx name) then
      err line "&%s: address-of applies to globals only" name
  | Ast.AddrIndex (name, idx) ->
    if not (is_global_array ctx name) then
      err line "&%s[...]: %s is not a global array" name name;
    check_expr ctx idx
  | Ast.Unop (_, e1) -> check_expr ctx e1
  | Ast.Binop (_, a, b) ->
    check_expr ctx a;
    check_expr ctx b
  | Ast.Call ("spawn", args) -> (
    match args with
    | [ { Ast.e = Ast.Var fname; eline }; arg ] -> (
      check_expr ctx arg;
      match List.assoc_opt fname ctx.funcs with
      | None -> err eline "spawn target %s is not a function" fname
      | Some arity when arity > 1 ->
        err eline "spawn target %s must take at most one argument" fname
      | Some _ -> ())
    | _ -> err line "spawn expects (function, argument)")
  | Ast.Call (name, args) -> (
    List.iter (check_expr ctx) args;
    match List.assoc_opt name Ast.builtins with
    | Some arity ->
      if List.length args <> arity then
        err line "builtin %s expects %d argument(s), got %d" name arity
          (List.length args)
    | None -> (
      match List.assoc_opt name ctx.funcs with
      | Some arity ->
        if List.length args <> arity then
          err line "function %s expects %d argument(s), got %d" name arity
            (List.length args)
      | None -> err line "call to undefined function %s" name))

let rec check_stmt ctx (s : Ast.stmt) =
  let line = s.Ast.sline in
  match s.Ast.s with
  | Ast.Decl (name, init) ->
    if in_scope ctx name then err line "duplicate declaration of %s" name;
    if List.mem_assoc name ctx.funcs then
      err line "%s shadows a function name" name;
    Option.iter (check_expr ctx) init;
    declare ctx name
  | Ast.Assign (name, e) ->
    if not (var_visible ctx name) then
      err line "assignment to undeclared variable %s" name;
    check_expr ctx e
  | Ast.Index_assign (name, idx, e) ->
    if not (is_global_array ctx name) then err line "%s is not a global array" name;
    check_expr ctx idx;
    check_expr ctx e
  | Ast.If (c, t, f) ->
    check_expr ctx c;
    with_scope ctx (fun () -> List.iter (check_stmt ctx) t);
    with_scope ctx (fun () -> List.iter (check_stmt ctx) f)
  | Ast.While (c, body) ->
    check_expr ctx c;
    ctx.loop_depth <- ctx.loop_depth + 1;
    with_scope ctx (fun () -> List.iter (check_stmt ctx) body);
    ctx.loop_depth <- ctx.loop_depth - 1
  | Ast.For (init, cond, step, body) ->
    with_scope ctx (fun () ->
        Option.iter (check_stmt ctx) init;
        Option.iter (check_expr ctx) cond;
        ctx.loop_depth <- ctx.loop_depth + 1;
        with_scope ctx (fun () -> List.iter (check_stmt ctx) body);
        Option.iter (check_stmt ctx) step;
        ctx.loop_depth <- ctx.loop_depth - 1)
  | Ast.Switch (scrut, cases, default) ->
    check_expr ctx scrut;
    let seen = Hashtbl.create 7 in
    List.iter
      (fun (v, _) ->
        if Hashtbl.mem seen v then err line "duplicate case %d" v;
        Hashtbl.replace seen v ())
      cases;
    if cases = [] && default = None then err line "empty switch";
    ctx.switch_depth <- ctx.switch_depth + 1;
    with_scope ctx (fun () ->
        List.iter (fun (_, body) -> List.iter (check_stmt ctx) body) cases;
        Option.iter (List.iter (check_stmt ctx)) default);
    ctx.switch_depth <- ctx.switch_depth - 1
  | Ast.Return e -> Option.iter (check_expr ctx) e
  | Ast.Break ->
    if ctx.loop_depth = 0 && ctx.switch_depth = 0 then
      err line "break outside loop or switch"
  | Ast.Continue -> if ctx.loop_depth = 0 then err line "continue outside loop"
  | Ast.Expr e -> check_expr ctx e
  | Ast.Assert (e, _) -> check_expr ctx e

let check (p : Ast.program) : unit =
  let funcs =
    List.map (fun (f : Ast.func) -> (f.Ast.fname, List.length f.Ast.params)) p.Ast.funcs
  in
  List.iter
    (fun (f : Ast.func) ->
      if List.length (List.filter (fun (n, _) -> n = f.Ast.fname) funcs) > 1 then
        err f.Ast.fline "duplicate function %s" f.Ast.fname;
      if Ast.is_builtin f.Ast.fname then
        err f.Ast.fline "%s is a builtin name" f.Ast.fname)
    p.Ast.funcs;
  let globals =
    List.map (fun (g : Ast.global) -> (g.Ast.gname, g.Ast.gsize <> None)) p.Ast.globals
  in
  List.iter
    (fun (g : Ast.global) ->
      if List.length (List.filter (fun (n, _) -> n = g.Ast.gname) globals) > 1 then
        err g.Ast.gline "duplicate global %s" g.Ast.gname;
      match g.Ast.gsize with
      | Some n when n <= 0 -> err g.Ast.gline "array %s has size %d" g.Ast.gname n
      | _ -> ())
    p.Ast.globals;
  (match List.assoc_opt "main" funcs with
  | None -> err 1 "no main function"
  | Some 0 -> ()
  | Some _ -> err 1 "main must take no parameters");
  List.iter
    (fun (f : Ast.func) ->
      let ctx =
        { funcs; globals; scopes = [ ref [] ]; loop_depth = 0;
          switch_depth = 0 }
      in
      List.iter
        (fun p ->
          if in_scope ctx p then
            err f.Ast.fline "duplicate parameter %s in %s" p f.Ast.fname;
          declare ctx p)
        f.Ast.params;
      if List.length f.Ast.params > 5 then
        err f.Ast.fline "%s: at most 5 parameters supported" f.Ast.fname;
      List.iter (check_stmt ctx) f.Ast.body)
    p.Ast.funcs
