(** Tokens of the mini-C surface language. *)

type t =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW_GLOBAL
  | KW_INT
  | KW_FN
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_ASSERT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | AMPAMP
  | PIPE
  | PIPEPIPE
  | CARET
  | SHL
  | SHR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | NOT
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | KW_GLOBAL -> "global"
  | KW_INT -> "int"
  | KW_FN -> "fn"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_ASSERT -> "assert"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | AMPAMP -> "&&"
  | PIPE -> "|"
  | PIPEPIPE -> "||"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | NOT -> "!"
  | EOF -> "<eof>"
