(** Hand-written lexer for the mini-C language.

    Supports [//] line comments and [/* */] block comments; tracks line
    numbers for the debug line table. *)

exception Error of { line : int; msg : string }

type lexed = { tok : Token.t; line : int }

let keywords =
  [ ("global", Token.KW_GLOBAL); ("int", Token.KW_INT); ("fn", Token.KW_FN);
    ("if", Token.KW_IF); ("else", Token.KW_ELSE); ("while", Token.KW_WHILE);
    ("for", Token.KW_FOR); ("switch", Token.KW_SWITCH);
    ("case", Token.KW_CASE); ("default", Token.KW_DEFAULT);
    ("return", Token.KW_RETURN); ("break", Token.KW_BREAK);
    ("continue", Token.KW_CONTINUE); ("assert", Token.KW_ASSERT) ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let toks = ref [] in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with Some '\n' -> incr line | _ -> ());
    incr pos
  in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let error msg = raise (Error { line = !line; msg }) in
  let rec skip_ws () =
    match cur () with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance ();
      skip_ws ()
    | Some '/' when peek 1 = Some '/' ->
      while cur () <> None && cur () <> Some '\n' do
        advance ()
      done;
      skip_ws ()
    | Some '/' when peek 1 = Some '*' ->
      advance ();
      advance ();
      let rec close () =
        match cur () with
        | None -> error "unterminated block comment"
        | Some '*' when peek 1 = Some '/' ->
          advance ();
          advance ()
        | Some _ ->
          advance ();
          close ()
      in
      close ();
      skip_ws ()
    | _ -> ()
  in
  let lex_number () =
    let start = !pos in
    while (match cur () with Some c -> is_digit c | None -> false) do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    emit (Token.INT (int_of_string s))
  in
  let lex_ident () =
    let start = !pos in
    while (match cur () with Some c -> is_alnum c | None -> false) do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    match List.assoc_opt s keywords with
    | Some kw -> emit kw
    | None -> emit (Token.IDENT s)
  in
  let lex_string () =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match cur () with
      | None | Some '\n' -> error "unterminated string literal"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match cur () with
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
        | None -> error "unterminated escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    emit (Token.STRING (Buffer.contents buf))
  in
  let two tok = advance (); advance (); emit tok in
  let one tok = advance (); emit tok in
  let rec loop () =
    skip_ws ();
    match cur () with
    | None -> emit Token.EOF
    | Some c ->
      (if is_digit c then lex_number ()
       else if is_alpha c then lex_ident ()
       else
         match (c, peek 1) with
         | '"', _ -> lex_string ()
         | '&', Some '&' -> two Token.AMPAMP
         | '|', Some '|' -> two Token.PIPEPIPE
         | '<', Some '<' -> two Token.SHL
         | '>', Some '>' -> two Token.SHR
         | '=', Some '=' -> two Token.EQ
         | '!', Some '=' -> two Token.NE
         | '<', Some '=' -> two Token.LE
         | '>', Some '=' -> two Token.GE
         | '(', _ -> one Token.LPAREN
         | ')', _ -> one Token.RPAREN
         | '{', _ -> one Token.LBRACE
         | '}', _ -> one Token.RBRACE
         | '[', _ -> one Token.LBRACKET
         | ']', _ -> one Token.RBRACKET
         | ';', _ -> one Token.SEMI
         | ',', _ -> one Token.COMMA
         | ':', _ -> one Token.COLON
         | '=', _ -> one Token.ASSIGN
         | '+', _ -> one Token.PLUS
         | '-', _ -> one Token.MINUS
         | '*', _ -> one Token.STAR
         | '/', _ -> one Token.SLASH
         | '%', _ -> one Token.PERCENT
         | '&', _ -> one Token.AMP
         | '|', _ -> one Token.PIPE
         | '^', _ -> one Token.CARET
         | '<', _ -> one Token.LT
         | '>', _ -> one Token.GT
         | '!', _ -> one Token.NOT
         | _ -> error (Printf.sprintf "unexpected character %C" c));
      if (match !toks with { tok = Token.EOF; _ } :: _ -> false | _ -> true)
      then loop ()
  in
  loop ();
  List.rev !toks
