(** Code generation from mini-C to the DrDebug ISA.

    Deliberately gcc-shaped where it matters to the paper:

    - Function prologues push the frame pointer and the callee-saved
      registers that host locals, and epilogues pop them in reverse —
      producing the save/restore pairs whose spurious dependences §5.2
      prunes.
    - [switch] compiles to a bounds check plus a load from a jump table
      and an {e indirect jump} — the CFG-imprecision source of §5.1.
    - The first few scalar variables of each function live in
      callee-saved registers (a toy register allocator), the rest in
      frame slots.

    Expression evaluation uses r0 as accumulator with partial results
    pushed on the stack, so push/pop also occur mid-function — exercising
    the paper's observation that push/pop are "not exclusively used to
    save/restore registers". *)

open Dr_isa

exception Error of { line : int; msg : string }

let err line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

type home = HReg of int | HFrame of int | HGlobal of int

type emitter = {
  code : Instr.t Dr_util.Vec.t;
  mutable fixups : (int * int) list;  (** code index -> label *)
  labels : (int, int) Hashtbl.t;  (** label -> pc *)
  mutable next_label : int;
  lines : (int * int) Dr_util.Vec.t;
  strings : string Dr_util.Vec.t;
  string_ids : (string, int) Hashtbl.t;
  data : (int * int) Dr_util.Vec.t;  (** (address, value) initial cells *)
  mutable data_fixups : (int * int) list;  (** data vec index -> label *)
  mutable data_ptr : int;
}

let new_emitter ~data_base =
  { code = Dr_util.Vec.create ~dummy:Instr.Nop;
    fixups = [];
    labels = Hashtbl.create 64;
    next_label = 0;
    lines = Dr_util.Vec.create ~dummy:(0, 0);
    strings = Dr_util.Vec.create ~dummy:"";
    string_ids = Hashtbl.create 16;
    data = Dr_util.Vec.create ~dummy:(0, 0);
    data_fixups = [];
    data_ptr = data_base }

let pc_here em = Dr_util.Vec.length em.code

let emit em i = Dr_util.Vec.push em.code i

let new_label em =
  let l = em.next_label in
  em.next_label <- l + 1;
  l

let place_label em l =
  if Hashtbl.mem em.labels l then invalid_arg "label placed twice";
  Hashtbl.replace em.labels l (pc_here em)

(* Emit an instruction whose integer target is the given label; patched at
   the end of codegen. *)
let emit_fix em l i =
  em.fixups <- (pc_here em, l) :: em.fixups;
  emit em i

let string_id em s =
  match Hashtbl.find_opt em.string_ids s with
  | Some i -> i
  | None ->
    let i = Dr_util.Vec.length em.strings in
    Dr_util.Vec.push em.strings s;
    Hashtbl.replace em.string_ids s i;
    i

let note_line em line =
  let n = Dr_util.Vec.length em.lines in
  if n > 0 && snd (Dr_util.Vec.get em.lines (n - 1)) = line then ()
  else Dr_util.Vec.push em.lines (pc_here em, line)

(* ---- per-function context ---- *)

type fctx = {
  homes : (string, home) Hashtbl.t;
  ret_label : int;
  mutable break_labels : int list;
  mutable continue_labels : int list;
  globals : (string, int * int option) Hashtbl.t;  (** name -> addr, array size *)
  func_labels : (string, int) Hashtbl.t;
  func_arities : (string, int) Hashtbl.t;
}

let var_home fctx line name =
  match Hashtbl.find_opt fctx.homes name with
  | Some h -> h
  | None -> (
    match Hashtbl.find_opt fctx.globals name with
    | Some (addr, None) -> HGlobal addr
    | Some (_, Some _) -> err line "array %s used as scalar" name
    | None -> err line "unbound variable %s" name)

(* Collect local declarations in source order (accumulator is reversed). *)
let rec decls_of_stmt acc (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Decl (n, _) -> n :: acc
  | Ast.If (_, a, b) ->
    let acc = List.fold_left decls_of_stmt acc a in
    List.fold_left decls_of_stmt acc b
  | Ast.While (_, body) -> List.fold_left decls_of_stmt acc body
  | Ast.For (init, _, step, body) ->
    let acc = Option.fold ~none:acc ~some:(decls_of_stmt acc) init in
    let acc = List.fold_left decls_of_stmt acc body in
    Option.fold ~none:acc ~some:(decls_of_stmt acc) step
  | Ast.Switch (_, cases, default) ->
    let acc =
      List.fold_left (fun acc (_, body) -> List.fold_left decls_of_stmt acc body) acc cases
    in
    (match default with
    | Some body -> List.fold_left decls_of_stmt acc body
    | None -> acc)
  | _ -> acc

let decls_of_body body = List.rev (List.fold_left decls_of_stmt [] body)

(* ---- expression compilation: result in r0 ---- *)

let isa_binop = function
  | Ast.Add -> Instr.Add
  | Ast.Sub -> Instr.Sub
  | Ast.Mul -> Instr.Mul
  | Ast.Div -> Instr.Div
  | Ast.Mod -> Instr.Mod
  | Ast.BAnd -> Instr.And
  | Ast.BOr -> Instr.Or
  | Ast.BXor -> Instr.Xor
  | Ast.Shl -> Instr.Shl
  | Ast.Shr -> Instr.Shr
  | _ -> invalid_arg "isa_binop"

let isa_cond = function
  | Ast.Eq -> Instr.Eq
  | Ast.Ne -> Instr.Ne
  | Ast.Lt -> Instr.Lt
  | Ast.Le -> Instr.Le
  | Ast.Gt -> Instr.Gt
  | Ast.Ge -> Instr.Ge
  | _ -> invalid_arg "isa_cond"

let load_home em h =
  match h with
  | HReg r -> emit em (Instr.Mov (Reg.r0, Instr.Reg r))
  | HFrame off -> emit em (Instr.Load (Reg.r0, Reg.fp, off))
  | HGlobal a ->
    emit em (Instr.Mov (Reg.r12, Instr.Imm a));
    emit em (Instr.Load (Reg.r0, Reg.r12, 0))

(* store r0 to home (may clobber r12) *)
let store_home em h =
  match h with
  | HReg r -> emit em (Instr.Mov (r, Instr.Reg Reg.r0))
  | HFrame off -> emit em (Instr.Store (Reg.fp, off, Reg.r0))
  | HGlobal a ->
    emit em (Instr.Mov (Reg.r12, Instr.Imm a));
    emit em (Instr.Store (Reg.r12, 0, Reg.r0))

let rec gen_expr em fctx (e : Ast.expr) =
  let line = e.Ast.eline in
  match e.Ast.e with
  | Ast.Int n -> emit em (Instr.Mov (Reg.r0, Instr.Imm n))
  | Ast.Var name -> load_home em (var_home fctx line name)
  | Ast.AddrOf name -> (
    match Hashtbl.find_opt fctx.globals name with
    | Some (addr, _) -> emit em (Instr.Mov (Reg.r0, Instr.Imm addr))
    | None -> err line "&%s: unknown global" name)
  | Ast.AddrIndex (name, idx) -> (
    match Hashtbl.find_opt fctx.globals name with
    | Some (base, Some _) ->
      gen_expr em fctx idx;
      emit em (Instr.Mov (Reg.r12, Instr.Imm base));
      emit em (Instr.Bin (Instr.Add, Reg.r0, Reg.r12, Instr.Reg Reg.r0))
    | _ -> err line "&%s[...]: not a global array" name)
  | Ast.Index (name, idx) -> (
    match Hashtbl.find_opt fctx.globals name with
    | Some (base, Some _) ->
      gen_expr em fctx idx;
      emit em (Instr.Mov (Reg.r12, Instr.Imm base));
      emit em (Instr.Bin (Instr.Add, Reg.r12, Reg.r12, Instr.Reg Reg.r0));
      emit em (Instr.Load (Reg.r0, Reg.r12, 0))
    | _ -> err line "%s is not a global array" name)
  | Ast.Unop (Ast.Neg, e1) ->
    gen_expr em fctx e1;
    emit em (Instr.Mov (Reg.r12, Instr.Imm 0));
    emit em (Instr.Bin (Instr.Sub, Reg.r0, Reg.r12, Instr.Reg Reg.r0))
  | Ast.Unop (Ast.Not, e1) ->
    gen_expr em fctx e1;
    emit em (Instr.Cmp (Reg.r0, Instr.Imm 0));
    emit em (Instr.Setcc (Instr.Eq, Reg.r0))
  | Ast.Binop (Ast.LAnd, a, b) ->
    let l_false = new_label em and l_end = new_label em in
    gen_expr em fctx a;
    emit em (Instr.Cmp (Reg.r0, Instr.Imm 0));
    emit_fix em l_false (Instr.Jcc (Instr.Eq, 0));
    gen_expr em fctx b;
    emit em (Instr.Cmp (Reg.r0, Instr.Imm 0));
    emit_fix em l_false (Instr.Jcc (Instr.Eq, 0));
    emit em (Instr.Mov (Reg.r0, Instr.Imm 1));
    emit_fix em l_end (Instr.Jmp 0);
    place_label em l_false;
    emit em (Instr.Mov (Reg.r0, Instr.Imm 0));
    place_label em l_end
  | Ast.Binop (Ast.LOr, a, b) ->
    let l_true = new_label em and l_end = new_label em in
    gen_expr em fctx a;
    emit em (Instr.Cmp (Reg.r0, Instr.Imm 0));
    emit_fix em l_true (Instr.Jcc (Instr.Ne, 0));
    gen_expr em fctx b;
    emit em (Instr.Cmp (Reg.r0, Instr.Imm 0));
    emit_fix em l_true (Instr.Jcc (Instr.Ne, 0));
    emit em (Instr.Mov (Reg.r0, Instr.Imm 0));
    emit_fix em l_end (Instr.Jmp 0);
    place_label em l_true;
    emit em (Instr.Mov (Reg.r0, Instr.Imm 1));
    place_label em l_end
  | Ast.Binop (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) ->
    gen_expr em fctx a;
    emit em (Instr.Push Reg.r0);
    gen_expr em fctx b;
    emit em (Instr.Mov (Reg.r12, Instr.Reg Reg.r0));
    emit em (Instr.Pop Reg.r13);
    emit em (Instr.Cmp (Reg.r13, Instr.Reg Reg.r12));
    emit em (Instr.Setcc (isa_cond op, Reg.r0))
  | Ast.Binop (op, a, b) ->
    gen_expr em fctx a;
    emit em (Instr.Push Reg.r0);
    gen_expr em fctx b;
    emit em (Instr.Mov (Reg.r12, Instr.Reg Reg.r0));
    emit em (Instr.Pop Reg.r13);
    emit em (Instr.Bin (isa_binop op, Reg.r0, Reg.r13, Instr.Reg Reg.r12))
  | Ast.Call ("spawn", [ { Ast.e = Ast.Var fname; _ }; arg ]) -> (
    gen_expr em fctx arg;
    emit em (Instr.Mov (Reg.r2, Instr.Reg Reg.r0));
    match Hashtbl.find_opt fctx.func_labels fname with
    | Some l ->
      emit_fix em l (Instr.Mov (Reg.r1, Instr.Imm 0));
      emit em (Instr.Sys Instr.Spawn)
    | None -> err line "spawn: unknown function %s" fname)
  | Ast.Call ("spawn", _) -> err line "spawn expects (function, argument)"
  | Ast.Call (("join" | "lock" | "unlock" | "print" | "exit" | "alloc") as b, [ arg ]) ->
    gen_expr em fctx arg;
    emit em (Instr.Mov (Reg.r1, Instr.Reg Reg.r0));
    let sys =
      match b with
      | "join" -> Instr.Join
      | "lock" -> Instr.Lock
      | "unlock" -> Instr.Unlock
      | "print" -> Instr.Print
      | "exit" -> Instr.Exit
      | _ -> Instr.Alloc
    in
    emit em (Instr.Sys sys)
  | Ast.Call ("peek", [ addr ]) ->
    (* raw memory load: r0 <- mem[addr] *)
    gen_expr em fctx addr;
    emit em (Instr.Mov (Reg.r12, Instr.Reg Reg.r0));
    emit em (Instr.Load (Reg.r0, Reg.r12, 0))
  | Ast.Call ("poke", [ addr; value ]) ->
    (* raw memory store: mem[addr] <- value *)
    gen_expr em fctx addr;
    emit em (Instr.Push Reg.r0);
    gen_expr em fctx value;
    emit em (Instr.Pop Reg.r13);
    emit em (Instr.Mov (Reg.r12, Instr.Reg Reg.r13));
    emit em (Instr.Store (Reg.r12, 0, Reg.r0))
  | Ast.Call ("wait", [ cond; mutex ]) ->
    (* wait(cond, mutex): r1 = condvar address, r2 = mutex address *)
    gen_expr em fctx cond;
    emit em (Instr.Push Reg.r0);
    gen_expr em fctx mutex;
    emit em (Instr.Mov (Reg.r2, Instr.Reg Reg.r0));
    emit em (Instr.Pop Reg.r1);
    emit em (Instr.Sys Instr.Wait)
  | Ast.Call (("signal" | "broadcast") as b, [ cond ]) ->
    gen_expr em fctx cond;
    emit em (Instr.Mov (Reg.r1, Instr.Reg Reg.r0));
    emit em
      (Instr.Sys (if b = "signal" then Instr.Signal else Instr.Broadcast))
  | Ast.Call (("rand" | "time" | "read" | "yield") as b, []) ->
    let sys =
      match b with
      | "rand" -> Instr.Rand
      | "time" -> Instr.Time
      | "read" -> Instr.Read
      | _ -> Instr.Yield
    in
    emit em (Instr.Sys sys)
  | Ast.Call (name, args) -> (
    match Hashtbl.find_opt fctx.func_labels name with
    | None -> err line "call to unknown function %s" name
    | Some l ->
      List.iter
        (fun a ->
          gen_expr em fctx a;
          emit em (Instr.Push Reg.r0))
        args;
      let n = List.length args in
      for i = n - 1 downto 0 do
        emit em (Instr.Pop (Reg.r1 + i))
      done;
      emit_fix em l (Instr.Call 0))

(* ---- statements ---- *)

let rec gen_stmt em fctx (s : Ast.stmt) =
  note_line em s.Ast.sline;
  let line = s.Ast.sline in
  match s.Ast.s with
  | Ast.Decl (name, init) ->
    (match init with
    | Some e -> gen_expr em fctx e
    | None -> emit em (Instr.Mov (Reg.r0, Instr.Imm 0)));
    store_home em (var_home fctx line name)
  | Ast.Assign (name, e) ->
    gen_expr em fctx e;
    store_home em (var_home fctx line name)
  | Ast.Index_assign (name, idx, e) -> (
    match Hashtbl.find_opt fctx.globals name with
    | Some (base, Some _) ->
      gen_expr em fctx idx;
      emit em (Instr.Push Reg.r0);
      gen_expr em fctx e;
      emit em (Instr.Pop Reg.r13);
      emit em (Instr.Mov (Reg.r12, Instr.Imm base));
      emit em (Instr.Bin (Instr.Add, Reg.r12, Reg.r12, Instr.Reg Reg.r13));
      emit em (Instr.Store (Reg.r12, 0, Reg.r0))
    | _ -> err line "%s is not a global array" name)
  | Ast.If (cond, then_b, else_b) ->
    let l_else = new_label em and l_end = new_label em in
    gen_expr em fctx cond;
    emit em (Instr.Cmp (Reg.r0, Instr.Imm 0));
    emit_fix em l_else (Instr.Jcc (Instr.Eq, 0));
    List.iter (gen_stmt em fctx) then_b;
    if else_b <> [] then emit_fix em l_end (Instr.Jmp 0);
    place_label em l_else;
    List.iter (gen_stmt em fctx) else_b;
    place_label em l_end
  | Ast.While (cond, body) ->
    let l_head = new_label em and l_end = new_label em in
    place_label em l_head;
    note_line em line;
    gen_expr em fctx cond;
    emit em (Instr.Cmp (Reg.r0, Instr.Imm 0));
    emit_fix em l_end (Instr.Jcc (Instr.Eq, 0));
    fctx.break_labels <- l_end :: fctx.break_labels;
    fctx.continue_labels <- l_head :: fctx.continue_labels;
    List.iter (gen_stmt em fctx) body;
    fctx.break_labels <- List.tl fctx.break_labels;
    fctx.continue_labels <- List.tl fctx.continue_labels;
    emit_fix em l_head (Instr.Jmp 0);
    place_label em l_end
  | Ast.For (init, cond, step, body) ->
    let l_head = new_label em
    and l_step = new_label em
    and l_end = new_label em in
    Option.iter (gen_stmt em fctx) init;
    place_label em l_head;
    (match cond with
    | Some c ->
      note_line em line;
      gen_expr em fctx c;
      emit em (Instr.Cmp (Reg.r0, Instr.Imm 0));
      emit_fix em l_end (Instr.Jcc (Instr.Eq, 0))
    | None -> ());
    fctx.break_labels <- l_end :: fctx.break_labels;
    fctx.continue_labels <- l_step :: fctx.continue_labels;
    List.iter (gen_stmt em fctx) body;
    fctx.break_labels <- List.tl fctx.break_labels;
    fctx.continue_labels <- List.tl fctx.continue_labels;
    place_label em l_step;
    Option.iter (gen_stmt em fctx) step;
    emit_fix em l_head (Instr.Jmp 0);
    place_label em l_end
  | Ast.Switch (scrut, cases, default) ->
    let l_end = new_label em in
    let l_default = new_label em in
    gen_expr em fctx scrut;
    if cases = [] then emit_fix em l_default (Instr.Jmp 0)
    else begin
      let values = List.map fst cases in
      let lo = List.fold_left min (List.hd values) values in
      let hi = List.fold_left max (List.hd values) values in
      if hi - lo > 1024 then err line "switch too sparse (range %d)" (hi - lo);
      (* bounds check, then jump through the table: the indirect jump *)
      emit em (Instr.Cmp (Reg.r0, Instr.Imm lo));
      emit_fix em l_default (Instr.Jcc (Instr.Lt, 0));
      emit em (Instr.Cmp (Reg.r0, Instr.Imm hi));
      emit_fix em l_default (Instr.Jcc (Instr.Gt, 0));
      let table = em.data_ptr in
      em.data_ptr <- em.data_ptr + (hi - lo + 1);
      let case_labels = List.map (fun (v, _) -> (v, new_label em)) cases in
      for v = lo to hi do
        let l =
          match List.assoc_opt v case_labels with
          | Some l -> l
          | None -> l_default
        in
        em.data_fixups <- (Dr_util.Vec.length em.data, l) :: em.data_fixups;
        Dr_util.Vec.push em.data (table + v - lo, 0)
      done;
      emit em (Instr.Mov (Reg.r12, Instr.Imm (table - lo)));
      emit em (Instr.Bin (Instr.Add, Reg.r12, Reg.r12, Instr.Reg Reg.r0));
      emit em (Instr.Load (Reg.r13, Reg.r12, 0));
      emit em (Instr.Jind Reg.r13);
      (* case bodies with C fallthrough *)
      fctx.break_labels <- l_end :: fctx.break_labels;
      List.iter
        (fun (v, body) ->
          place_label em (List.assoc v case_labels);
          List.iter (gen_stmt em fctx) body)
        cases;
      fctx.break_labels <- List.tl fctx.break_labels
    end;
    place_label em l_default;
    (match default with
    | Some body ->
      fctx.break_labels <- l_end :: fctx.break_labels;
      List.iter (gen_stmt em fctx) body;
      fctx.break_labels <- List.tl fctx.break_labels
    | None -> ());
    place_label em l_end
  | Ast.Return e ->
    (match e with
    | Some e -> gen_expr em fctx e
    | None -> emit em (Instr.Mov (Reg.r0, Instr.Imm 0)));
    emit_fix em fctx.ret_label (Instr.Jmp 0)
  | Ast.Break -> (
    match fctx.break_labels with
    | l :: _ -> emit_fix em l (Instr.Jmp 0)
    | [] -> err line "break outside loop/switch")
  | Ast.Continue -> (
    match fctx.continue_labels with
    | l :: _ -> emit_fix em l (Instr.Jmp 0)
    | [] -> err line "continue outside loop")
  | Ast.Expr e -> gen_expr em fctx e
  | Ast.Assert (e, msg) ->
    gen_expr em fctx e;
    emit em (Instr.Assert (Reg.r0, string_id em msg))

(* ---- functions and programs ---- *)

let gen_func em ~globals ~func_labels ~func_arities (f : Ast.func) :
    Debug_info.func =
  let entry = pc_here em in
  place_label em (Hashtbl.find func_labels f.Ast.fname);
  note_line em f.Ast.fline;
  let vars = f.Ast.params @ decls_of_body f.Ast.body in
  let nregs = min (List.length vars) (List.length Reg.callee_saved) in
  let homes = Hashtbl.create 16 in
  let callee_used = ref [] in
  List.iteri
    (fun i v ->
      if Hashtbl.mem homes v then ()
      else if i < nregs then begin
        let r = List.nth Reg.callee_saved i in
        callee_used := r :: !callee_used;
        Hashtbl.replace homes v (HReg r)
      end
      else Hashtbl.replace homes v (HFrame (-(nregs + 1 + (i - nregs)))))
    vars;
  let callee_used = List.rev !callee_used in
  let k = List.length callee_used in
  let nstack = List.length vars - nregs in
  let fctx =
    { homes;
      ret_label = new_label em;
      break_labels = [];
      continue_labels = [];
      globals;
      func_labels;
      func_arities }
  in
  (* prologue: the save side of the save/restore pairs *)
  emit em (Instr.Push Reg.fp);
  emit em (Instr.Mov (Reg.fp, Instr.Reg Reg.sp));
  List.iter (fun r -> emit em (Instr.Push r)) callee_used;
  if nstack > 0 then emit em (Instr.Bin (Instr.Sub, Reg.sp, Reg.sp, Instr.Imm nstack));
  (* move parameters to their homes *)
  List.iteri
    (fun i p ->
      let arg_reg = Reg.r1 + i in
      match Hashtbl.find homes p with
      | HReg r -> emit em (Instr.Mov (r, Instr.Reg arg_reg))
      | HFrame off -> emit em (Instr.Store (Reg.fp, off, arg_reg))
      | HGlobal _ -> assert false)
    f.Ast.params;
  List.iter (gen_stmt em fctx) f.Ast.body;
  (* implicit return 0 *)
  emit em (Instr.Mov (Reg.r0, Instr.Imm 0));
  (* epilogue: the restore side; discard stack locals with sp = fp - k *)
  place_label em fctx.ret_label;
  emit em (Instr.Bin (Instr.Add, Reg.sp, Reg.fp, Instr.Imm (-k)));
  List.iter (fun r -> emit em (Instr.Pop r)) (List.rev callee_used);
  emit em (Instr.Pop Reg.fp);
  emit em Instr.Ret;
  let code_end = pc_here em in
  let dvars =
    List.map
      (fun v ->
        let vloc =
          match Hashtbl.find homes v with
          | HReg r -> Debug_info.Register r
          | HFrame off -> Debug_info.Frame off
          | HGlobal a -> Debug_info.Global a
        in
        { Debug_info.vname = v; vloc; varray = None })
      vars
  in
  { Debug_info.fname = f.Ast.fname; entry; code_end; params = f.Ast.params;
    vars = dvars }

let globals_base = 8

let compile ?(name = "<mini-c>") ?(file = "<source>") (src : string) :
    Program.t =
  let ast = Parser.parse src in
  Sema.check ast;
  (* global layout *)
  let globals = Hashtbl.create 16 in
  let next = ref globals_base in
  let ginits = ref [] in
  let dbg_globals = ref [] in
  List.iter
    (fun (g : Ast.global) ->
      let addr = !next in
      let words = match g.Ast.gsize with Some n -> n | None -> 1 in
      next := !next + words;
      Hashtbl.replace globals g.Ast.gname (addr, g.Ast.gsize);
      dbg_globals := (g.Ast.gname, addr, g.Ast.gsize) :: !dbg_globals;
      if g.Ast.ginit <> 0 && g.Ast.gsize = None then
        ginits := (addr, g.Ast.ginit) :: !ginits)
    ast.Ast.globals;
  let em = new_emitter ~data_base:!next in
  List.iter (fun (a, v) -> Dr_util.Vec.push em.data (a, v)) (List.rev !ginits);
  let func_labels = Hashtbl.create 16 in
  let func_arities = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      Hashtbl.replace func_labels f.Ast.fname (new_label em);
      Hashtbl.replace func_arities f.Ast.fname (List.length f.Ast.params))
    ast.Ast.funcs;
  let dfuncs =
    List.map (gen_func em ~globals ~func_labels ~func_arities) ast.Ast.funcs
  in
  (* resolve label fixups *)
  let resolve l =
    match Hashtbl.find_opt em.labels l with
    | Some pc -> pc
    | None -> invalid_arg "unresolved label"
  in
  List.iter
    (fun (pos, l) ->
      let pc = resolve l in
      let patched =
        match Dr_util.Vec.get em.code pos with
        | Instr.Jmp _ -> Instr.Jmp pc
        | Instr.Jcc (c, _) -> Instr.Jcc (c, pc)
        | Instr.Call _ -> Instr.Call pc
        | Instr.Mov (rd, Instr.Imm _) -> Instr.Mov (rd, Instr.Imm pc)
        | i -> i
      in
      Dr_util.Vec.set em.code pos patched)
    em.fixups;
  List.iter
    (fun (idx, l) ->
      let addr, _ = Dr_util.Vec.get em.data idx in
      Dr_util.Vec.set em.data idx (addr, resolve l))
    em.data_fixups;
  let entry =
    match Hashtbl.find_opt em.labels (Hashtbl.find func_labels "main") with
    | Some pc -> pc
    | None -> invalid_arg "main not generated"
  in
  let debug =
    { Debug_info.file; source = src; funcs = dfuncs;
      lines = Dr_util.Vec.to_array em.lines;
      globals = List.rev !dbg_globals }
  in
  Program.make ~name ~data:(Dr_util.Vec.to_list em.data) ~data_end:em.data_ptr
    ~strings:(Dr_util.Vec.to_array em.strings) ~debug ~entry
    (Dr_util.Vec.to_list em.code)

(** [compile_result] is [compile] with errors as [Error msg]. *)
let compile_result ?name ?file src =
  try Ok (compile ?name ?file src) with
  | Lexer.Error { line; msg } -> Error (Printf.sprintf "line %d: lexical error: %s" line msg)
  | Parser.Error { line; msg } -> Error (Printf.sprintf "line %d: parse error: %s" line msg)
  | Sema.Error { line; msg } -> Error (Printf.sprintf "line %d: %s" line msg)
  | Error { line; msg } -> Error (Printf.sprintf "line %d: codegen error: %s" line msg)
