(** Textual assembler and disassembler for the DrDebug ISA.

    The format round-trips: {!disassemble} emits labels at every jump
    target and {!parse} re-assembles to identical code.  It is also
    convenient for hand-writing test programs (e.g. the bounds-check-free
    switch of the paper's Figure 7, which the mini-C compiler would not
    emit).

    Syntax, one item per line ([;] starts a comment):

    {v
      .entry main          ; start label (default: first instruction)
      .data 8 42           ; initial memory cell: mem[8] = 42
      .data 9 @case1       ; a cell holding a code address (jump table)
      .string "boom"       ; string table entry (referenced by index)
      main:
        mov r1, $5         ; immediate
        mov r2, r1         ; register
        mov r3, @main      ; code address of a label
        load r0, [r1+2]    ; rd = mem[rbase + off]
        store [r1-1], r0   ; mem[rbase + off] = rs
        add r0, r1, $3     ; rd = rs op operand
        cmp r0, $0
        jeq done           ; conditional jump to label
        jmp *r3            ; indirect jump
        call main
        sys print
        assert r0, #0      ; string-table index
      done:
        halt
    v} *)

open Instr

exception Parse_error of { line : int; msg : string }

let err line fmt = Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

(* ---- lexing helpers ---- *)

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let tokens_of_line s =
  strip_comment s
  |> String.map (fun c -> if c = ',' then ' ' else c)
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let parse_reg ln s =
  match s with
  | "fp" -> Reg.fp
  | "sp" -> Reg.sp
  | _ ->
    if String.length s >= 2 && s.[0] = 'r' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some r when Reg.valid r -> r
      | _ -> err ln "bad register %s" s
    else err ln "expected register, got %s" s

(* operands: $imm | reg | @label *)
type operand_tok = OImm of int | OReg of Reg.t | OLabel of string

let parse_operand ln s =
  if String.length s = 0 then err ln "empty operand"
  else if s.[0] = '$' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> OImm n
    | None -> err ln "bad immediate %s" s
  else if s.[0] = '@' then OLabel (String.sub s 1 (String.length s - 1))
  else OReg (parse_reg ln s)

(* [rbase+off] / [rbase-off] *)
let parse_memref ln s =
  let n = String.length s in
  if n < 3 || s.[0] <> '[' || s.[n - 1] <> ']' then err ln "expected [reg+off], got %s" s
  else begin
    let inner = String.sub s 1 (n - 2) in
    let split_at i =
      let base = String.sub inner 0 i in
      let off = String.sub inner i (String.length inner - i) in
      (parse_reg ln base,
       match int_of_string_opt off with
       | Some o -> o
       | None -> err ln "bad offset in %s" s)
    in
    let rec find i =
      if i >= String.length inner then (parse_reg ln inner, 0)
      else if (inner.[i] = '+' || inner.[i] = '-') && i > 0 then split_at i
      else find (i + 1)
    in
    find 0
  end

let cond_of_suffix ln s =
  match s with
  | "eq" -> Eq
  | "ne" -> Ne
  | "lt" -> Lt
  | "le" -> Le
  | "gt" -> Gt
  | "ge" -> Ge
  | _ -> err ln "bad condition %s" s

let syscall_of_name ln s =
  match s with
  | "exit" -> Exit
  | "print" -> Print
  | "rand" -> Rand
  | "time" -> Time
  | "read" -> Read
  | "spawn" -> Spawn
  | "join" -> Join
  | "lock" -> Lock
  | "unlock" -> Unlock
  | "yield" -> Yield
  | "alloc" -> Alloc
  | "wait" -> Wait
  | "signal" -> Signal
  | "broadcast" -> Broadcast
  | _ -> err ln "unknown syscall %s" s

(* ---- the assembler ---- *)

type pending =
  | P_instr of Instr.t
  | P_jmp of string
  | P_jcc of cond * string
  | P_call of string
  | P_mov_label of Reg.t * string

let parse (src : string) : (Program.t, string) result =
  try
    let lines = String.split_on_char '\n' src in
    let labels = Hashtbl.create 32 in
    let code = ref [] (* pending, reversed *) in
    let ncode = ref 0 in
    let data = ref [] in
    let data_labels = ref [] in (* (address, label) *)
    let strings = ref [] in
    let nstrings = ref 0 in
    let entry_label = ref None in
    let string_index s =
      match
        List.find_opt (fun (_, s') -> s' = s) !strings
      with
      | Some (i, _) -> i
      | None ->
        let i = !nstrings in
        strings := (i, s) :: !strings;
        incr nstrings;
        i
    in
    let emit p =
      code := p :: !code;
      incr ncode
    in
    List.iteri
      (fun i raw ->
        let ln = i + 1 in
        match tokens_of_line raw with
        | [] -> ()
        | [ ".entry"; l ] -> entry_label := Some l
        | [ ".data"; addr; value ] -> (
          match int_of_string_opt addr with
          | None -> err ln "bad data address %s" addr
          | Some a ->
            if String.length value > 0 && value.[0] = '@' then
              data_labels := (a, String.sub value 1 (String.length value - 1)) :: !data_labels
            else (
              match int_of_string_opt value with
              | Some v -> data := (a, v) :: !data
              | None -> err ln "bad data value %s" value))
        | [ tok ] when String.length tok > 1 && tok.[String.length tok - 1] = ':' ->
          let name = String.sub tok 0 (String.length tok - 1) in
          if Hashtbl.mem labels name then err ln "duplicate label %s" name;
          Hashtbl.replace labels name !ncode
        | first :: rest when first = ".string" ->
          let s = String.trim (String.concat " " rest) in
          if String.length s < 2 || s.[0] <> '"' || s.[String.length s - 1] <> '"'
          then err ln "expected quoted string"
          else ignore (string_index (String.sub s 1 (String.length s - 2)))
        | op :: args -> (
          match (op, args) with
          | "nop", [] -> emit (P_instr Nop)
          | "halt", [] -> emit (P_instr Halt)
          | "ret", [] -> emit (P_instr Ret)
          | "push", [ r ] -> emit (P_instr (Push (parse_reg ln r)))
          | "pop", [ r ] -> emit (P_instr (Pop (parse_reg ln r)))
          | "sys", [ s ] -> emit (P_instr (Sys (syscall_of_name ln s)))
          | "mov", [ rd; src ] -> (
            let rd = parse_reg ln rd in
            match parse_operand ln src with
            | OImm n -> emit (P_instr (Mov (rd, Imm n)))
            | OReg r -> emit (P_instr (Mov (rd, Reg r)))
            | OLabel l -> emit (P_mov_label (rd, l)))
          | "load", [ rd; mem ] ->
            let rd = parse_reg ln rd in
            let rb, off = parse_memref ln mem in
            emit (P_instr (Load (rd, rb, off)))
          | "store", [ mem; rs ] ->
            let rb, off = parse_memref ln mem in
            emit (P_instr (Store (rb, off, parse_reg ln rs)))
          | "cmp", [ r; o ] -> (
            let r = parse_reg ln r in
            match parse_operand ln o with
            | OImm n -> emit (P_instr (Cmp (r, Imm n)))
            | OReg r2 -> emit (P_instr (Cmp (r, Reg r2)))
            | OLabel _ -> err ln "cmp cannot take a label")
          | "jmp", [ t ] ->
            if String.length t > 0 && t.[0] = '*' then
              emit (P_instr (Jind (parse_reg ln (String.sub t 1 (String.length t - 1)))))
            else emit (P_jmp t)
          | "call", [ t ] ->
            if String.length t > 0 && t.[0] = '*' then
              emit (P_instr (Callind (parse_reg ln (String.sub t 1 (String.length t - 1)))))
            else emit (P_call t)
          | "assert", r :: (_ :: _ as rest) -> (
            let m = String.concat " " rest in
            let r = parse_reg ln r in
            if String.length m > 1 && m.[0] = '#' then
              match int_of_string_opt (String.sub m 1 (String.length m - 1)) with
              | Some i -> emit (P_instr (Assert (r, i)))
              | None -> err ln "bad string index %s" m
            else if String.length m >= 2 && m.[0] = '"' then
              emit (P_instr (Assert (r, string_index (String.sub m 1 (String.length m - 2)))))
            else err ln "assert needs #index or a string")
          | _, [ t ]
            when String.length op = 3
                 && op.[0] = 'j'
                 && (try ignore (cond_of_suffix ln (String.sub op 1 2)); true
                     with _ -> false) ->
            emit (P_jcc (cond_of_suffix ln (String.sub op 1 2), t))
          | _, [ rd; rs; o ]
            when List.mem op
                   [ "add"; "sub"; "mul"; "div"; "mod"; "and"; "or"; "xor";
                     "shl"; "shr" ] -> (
            let b =
              match op with
              | "add" -> Add | "sub" -> Sub | "mul" -> Mul | "div" -> Div
              | "mod" -> Mod | "and" -> And | "or" -> Or | "xor" -> Xor
              | "shl" -> Shl | _ -> Shr
            in
            let rd = parse_reg ln rd and rs = parse_reg ln rs in
            match parse_operand ln o with
            | OImm n -> emit (P_instr (Bin (b, rd, rs, Imm n)))
            | OReg r -> emit (P_instr (Bin (b, rd, rs, Reg r)))
            | OLabel _ -> err ln "binop cannot take a label")
          | _, [ r ]
            when String.length op > 3 && String.sub op 0 3 = "set" ->
            emit (P_instr (Setcc (cond_of_suffix ln (String.sub op 3 (String.length op - 3)),
                                  parse_reg ln r)))
          | _ -> err ln "cannot parse instruction %s" (String.trim raw)))
      lines;
    (* resolve *)
    let resolve ln l =
      match Hashtbl.find_opt labels l with
      | Some pc -> pc
      | None -> err ln "undefined label %s" l
    in
    let code =
      List.rev !code
      |> List.map (function
           | P_instr i -> i
           | P_jmp l -> Jmp (resolve 0 l)
           | P_jcc (c, l) -> Jcc (c, resolve 0 l)
           | P_call l -> Call (resolve 0 l)
           | P_mov_label (rd, l) -> Mov (rd, Imm (resolve 0 l)))
    in
    let data =
      List.rev !data
      @ List.map (fun (a, l) -> (a, resolve 0 l)) (List.rev !data_labels)
    in
    let data_end =
      List.fold_left (fun acc (a, _) -> max acc (a + 1)) 0 data
    in
    let strings =
      Array.of_list (List.map snd (List.sort compare !strings))
    in
    let entry =
      match !entry_label with
      | Some l -> resolve 0 l
      | None -> 0
    in
    if code = [] then Error "no instructions"
    else
      Ok
        (Program.make ~name:"<asm>" ~data ~data_end ~strings ~entry
           code)
  with Parse_error { line; msg } -> Error (Printf.sprintf "line %d: %s" line msg)

(* ---- the disassembler ---- *)

let disassemble (p : Program.t) : string =
  let buf = Buffer.create 1024 in
  let code = p.Program.code in
  (* find all label targets *)
  let targets = Hashtbl.create 32 in
  let add_target pc = if pc >= 0 && pc <= Array.length code then Hashtbl.replace targets pc () in
  Array.iter
    (function
      | Jmp t | Jcc (_, t) | Call t -> add_target t
      | Mov (_, Imm v) when v >= 0 && v < Array.length code -> ()
      | _ -> ())
    code;
  add_target p.Program.entry;
  List.iter (fun (_, v) -> if v >= 0 && v < Array.length code then add_target v)
    p.Program.data;
  let label_name pc = Printf.sprintf "L%d" pc in
  Buffer.add_string buf (Printf.sprintf ".entry %s\n" (label_name p.Program.entry));
  List.iter
    (fun (a, v) ->
      if v >= 0 && v < Array.length code && Hashtbl.mem targets v then
        Buffer.add_string buf (Printf.sprintf ".data %d @%s\n" a (label_name v))
      else Buffer.add_string buf (Printf.sprintf ".data %d %d\n" a v))
    p.Program.data;
  Array.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf ".string %S\n" s))
    p.Program.strings;
  Array.iteri
    (fun pc i ->
      if Hashtbl.mem targets pc then
        Buffer.add_string buf (Printf.sprintf "%s:\n" (label_name pc));
      let text =
        match i with
        | Mov (rd, Imm n) -> Printf.sprintf "mov %s, $%d" (Reg.name rd) n
        | Mov (rd, Reg r) -> Printf.sprintf "mov %s, %s" (Reg.name rd) (Reg.name r)
        | Bin (b, rd, rs, Imm n) ->
          Printf.sprintf "%s %s, %s, $%d" (binop_name b) (Reg.name rd) (Reg.name rs) n
        | Bin (b, rd, rs, Reg r) ->
          Printf.sprintf "%s %s, %s, %s" (binop_name b) (Reg.name rd) (Reg.name rs)
            (Reg.name r)
        | Load (rd, rb, off) ->
          Printf.sprintf "load %s, [%s%+d]" (Reg.name rd) (Reg.name rb) off
        | Store (rb, off, rs) ->
          Printf.sprintf "store [%s%+d], %s" (Reg.name rb) off (Reg.name rs)
        | Push r -> Printf.sprintf "push %s" (Reg.name r)
        | Pop r -> Printf.sprintf "pop %s" (Reg.name r)
        | Cmp (r, Imm n) -> Printf.sprintf "cmp %s, $%d" (Reg.name r) n
        | Cmp (r, Reg r2) -> Printf.sprintf "cmp %s, %s" (Reg.name r) (Reg.name r2)
        | Setcc (c, r) -> Printf.sprintf "set%s %s" (cond_name c) (Reg.name r)
        | Jmp t -> Printf.sprintf "jmp %s" (label_name t)
        | Jcc (c, t) -> Printf.sprintf "j%s %s" (cond_name c) (label_name t)
        | Jind r -> Printf.sprintf "jmp *%s" (Reg.name r)
        | Call t -> Printf.sprintf "call %s" (label_name t)
        | Callind r -> Printf.sprintf "call *%s" (Reg.name r)
        | Ret -> "ret"
        | Sys s -> Printf.sprintf "sys %s" (syscall_name s)
        | Assert (r, m) -> Printf.sprintf "assert %s, #%d" (Reg.name r) m
        | Halt -> "halt"
        | Nop -> "nop"
      in
      Buffer.add_string buf (Printf.sprintf "  %s\n" text))
    code;
  Buffer.contents buf
