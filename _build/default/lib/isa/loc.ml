(** Dynamic dependence locations.

    A location is either a global memory word or a thread-local register
    (including the flags pseudo-register).  Locations are encoded as
    integers so that trace records can store unboxed def/use arrays:

    - memory address [a]  ->  [(a lsl 1) lor 1]
    - register [r] of thread [t]  ->  [(t * Reg.file_size + r) lsl 1]

    Registers are {e per-thread}: the same register number in two threads
    is two distinct locations, which is what makes register dependences
    thread-local while memory dependences are global (paper §3). *)

type view = Mem of int | Reg of { tid : int; reg : Reg.t }

let mem a =
  if a < 0 then invalid_arg "Loc.mem: negative address";
  (a lsl 1) lor 1

let reg ~tid r =
  if tid < 0 then invalid_arg "Loc.reg: negative tid";
  if r < 0 || r >= Reg.file_size then invalid_arg "Loc.reg: bad register";
  ((tid * Reg.file_size) + r) lsl 1

let flags ~tid = reg ~tid Reg.flags

let is_mem l = l land 1 = 1

let view l =
  if l land 1 = 1 then Mem (l lsr 1)
  else
    let v = l lsr 1 in
    Reg { tid = v / Reg.file_size; reg = v mod Reg.file_size }

let to_string l =
  match view l with
  | Mem a -> Printf.sprintf "mem[%d]" a
  | Reg { tid; reg } -> Printf.sprintf "t%d:%s" tid (Reg.name reg)

let pp fmt l = Format.pp_print_string fmt (to_string l)
