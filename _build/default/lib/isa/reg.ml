(** Register file layout of the DrDebug virtual ISA.

    Sixteen general-purpose registers plus a flags pseudo-register.  The
    calling convention (implemented by {!Dr_lang.Codegen} and assumed by
    the save/restore-pair detector) is:

    - [r0]: return value / scratch
    - [r1]..[r5]: arguments, caller-saved
    - [r6]..[r11]: callee-saved (saved/restored in prologues/epilogues —
      these give rise to the save/restore pairs of paper §5.2)
    - [r12], [r13]: caller-saved temporaries
    - [r14] = frame pointer, [r15] = stack pointer
    - index 16 is the flags pseudo-register (written by [cmp], read by
      conditional jumps and [setcc]); it never lives in memory. *)

type t = int

let count = 16

(* Index of the flags pseudo-register in a thread's register array. *)
let flags = 16

(* Total slots in a thread register file, including flags. *)
let file_size = 17

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r12 = 12
let r13 = 13
let fp = 14
let sp = 15

let arg_regs = [ r1; r2; r3; r4; r5 ]
let callee_saved = [ 6; 7; 8; 9; 10; 11 ]
let is_callee_saved r = r >= 6 && r <= 11

let valid r = r >= 0 && r < count

let name r =
  match r with
  | 14 -> "fp"
  | 15 -> "sp"
  | 16 -> "flags"
  | r when r >= 0 && r < 14 -> Printf.sprintf "r%d" r
  | r -> Printf.sprintf "?reg%d" r

let pp fmt r = Format.pp_print_string fmt (name r)
