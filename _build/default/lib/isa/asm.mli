(** Textual assembler and disassembler for the DrDebug ISA.

    The format round-trips: {!disassemble} emits labels at every jump
    target and {!parse} re-assembles identical code.  See the
    implementation header for the full syntax; the essentials:

    {v
      .entry main           .data 8 @case0          .string "boom"
      main:
        mov r1, $5          load r0, [r1+2]         add r0, r1, $3
        cmp r0, $0          jeq done                jmp *r3
        call main           sys print               assert r0, "boom"
      done:
        halt
    v} *)

exception Parse_error of { line : int; msg : string }

(** Assemble a program; errors carry the offending line. *)
val parse : string -> (Program.t, string) result

(** Emit a textual listing that {!parse} accepts, with [Ln] labels at
    every jump target. *)
val disassemble : Program.t -> string
