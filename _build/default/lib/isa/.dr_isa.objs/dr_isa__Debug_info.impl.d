lib/isa/debug_info.ml: Array Dr_util List Reg String
