lib/isa/instr.ml: Dr_util Format Reg
