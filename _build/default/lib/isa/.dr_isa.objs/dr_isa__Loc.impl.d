lib/isa/loc.ml: Format Printf Reg
