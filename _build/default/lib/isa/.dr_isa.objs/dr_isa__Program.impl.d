lib/isa/program.ml: Array Debug_info Dr_util Format Instr List Printf
