lib/isa/asm.ml: Array Buffer Hashtbl Instr List Printf Program Reg String
