(** Instruction set of the DrDebug virtual machine.

    The ISA is deliberately shaped like the subset of x86 the paper's
    algorithms care about: explicit flags, a downward-growing stack with
    [push]/[pop], direct and {e indirect} jumps (the latter produced by
    [switch] jump tables and the source of CFG imprecision, §5.1), and
    call/ret with return addresses on the stack. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cond = Eq | Ne | Lt | Le | Gt | Ge

type operand = Reg of Reg.t | Imm of int

(** Non-deterministic or OS-level operations, modelled as syscalls.  The
    results of [Rand], [Time] and [Read] are non-deterministic and are
    captured in pinballs by the PinPlay logger. *)
type syscall =
  | Exit  (** terminate the program; status in [r1] *)
  | Print  (** append [r1] to the program output stream *)
  | Rand  (** [r0 <- ] fresh random value (non-deterministic) *)
  | Time  (** [r0 <- ] current "time" (non-deterministic) *)
  | Read  (** [r0 <- ] next input word (non-deterministic) *)
  | Spawn  (** [r0 <- ] new tid; thread starts at pc [r1] with arg [r2] *)
  | Join  (** block until thread [r1] finishes *)
  | Lock  (** acquire mutex at address [r1] (blocking) *)
  | Unlock  (** release mutex at address [r1] *)
  | Yield  (** scheduling hint; no architectural effect *)
  | Alloc  (** [r0 <- ] fresh heap block of [r1] words *)
  | Wait  (** wait on condvar [r1], atomically releasing mutex [r2];
              reacquires the mutex before returning *)
  | Signal  (** wake one waiter of condvar [r1] *)
  | Broadcast  (** wake all waiters of condvar [r1] *)

type t =
  | Mov of Reg.t * operand  (** [rd <- op] *)
  | Bin of binop * Reg.t * Reg.t * operand  (** [rd <- rs <op> op] *)
  | Load of Reg.t * Reg.t * int  (** [rd <- mem[rbase + off]] *)
  | Store of Reg.t * int * Reg.t  (** [mem[rbase + off] <- rsrc] *)
  | Push of Reg.t  (** [sp <- sp-1; mem[sp] <- r] *)
  | Pop of Reg.t  (** [r <- mem[sp]; sp <- sp+1] *)
  | Cmp of Reg.t * operand  (** [flags <- sign (r - op)] *)
  | Setcc of cond * Reg.t  (** [rd <- flags satisfies cond] *)
  | Jmp of int  (** unconditional direct jump *)
  | Jcc of cond * int  (** conditional direct jump (reads flags) *)
  | Jind of Reg.t  (** indirect jump: [pc <- r] (jump tables) *)
  | Call of int  (** push return pc; jump to target *)
  | Callind of Reg.t  (** indirect call: [pc <- r] *)
  | Ret  (** pop return pc *)
  | Sys of syscall
  | Assert of Reg.t * int
      (** trap with message [strings.(i)] if the register is zero — the
          failure points of the bug workloads *)
  | Halt  (** terminate the program with status 0 *)
  | Nop

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let syscall_name = function
  | Exit -> "exit"
  | Print -> "print"
  | Rand -> "rand"
  | Time -> "time"
  | Read -> "read"
  | Spawn -> "spawn"
  | Join -> "join"
  | Lock -> "lock"
  | Unlock -> "unlock"
  | Yield -> "yield"
  | Alloc -> "alloc"
  | Wait -> "wait"
  | Signal -> "signal"
  | Broadcast -> "broadcast"

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise Division_by_zero else a / b
  | Mod -> if b = 0 then raise Division_by_zero else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)

(* Flags encode the sign of [a - b] as -1 / 0 / 1. *)
let eval_cmp a b = compare a b

let eval_cond c flags =
  match c with
  | Eq -> flags = 0
  | Ne -> flags <> 0
  | Lt -> flags < 0
  | Le -> flags <= 0
  | Gt -> flags > 0
  | Ge -> flags >= 0

let pp_operand fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm n -> Format.fprintf fmt "$%d" n

let pp fmt = function
  | Mov (rd, op) -> Format.fprintf fmt "mov %a, %a" Reg.pp rd pp_operand op
  | Bin (b, rd, rs, op) ->
    Format.fprintf fmt "%s %a, %a, %a" (binop_name b) Reg.pp rd Reg.pp rs
      pp_operand op
  | Load (rd, rb, off) ->
    Format.fprintf fmt "load %a, [%a%+d]" Reg.pp rd Reg.pp rb off
  | Store (rb, off, rs) ->
    Format.fprintf fmt "store [%a%+d], %a" Reg.pp rb off Reg.pp rs
  | Push r -> Format.fprintf fmt "push %a" Reg.pp r
  | Pop r -> Format.fprintf fmt "pop %a" Reg.pp r
  | Cmp (r, op) -> Format.fprintf fmt "cmp %a, %a" Reg.pp r pp_operand op
  | Setcc (c, r) -> Format.fprintf fmt "set%s %a" (cond_name c) Reg.pp r
  | Jmp t -> Format.fprintf fmt "jmp %d" t
  | Jcc (c, t) -> Format.fprintf fmt "j%s %d" (cond_name c) t
  | Jind r -> Format.fprintf fmt "jmp *%a" Reg.pp r
  | Call t -> Format.fprintf fmt "call %d" t
  | Callind r -> Format.fprintf fmt "call *%a" Reg.pp r
  | Ret -> Format.pp_print_string fmt "ret"
  | Sys s -> Format.fprintf fmt "sys %s" (syscall_name s)
  | Assert (r, m) -> Format.fprintf fmt "assert %a, #%d" Reg.pp r m
  | Halt -> Format.pp_print_string fmt "halt"
  | Nop -> Format.pp_print_string fmt "nop"

let to_string i = Format.asprintf "%a" pp i

(** [is_branch i] holds for instructions that are sources of dynamic
    control dependences: conditional and indirect jumps.  Unconditional
    direct jumps, calls and returns do not create control dependences
    (calls/returns are handled by the Xin–Zhang frame rule). *)
let is_branch = function Jcc _ | Jind _ -> true | _ -> false

(** Static control-flow successors of the instruction at [pc], or [None]
    for indirect jumps whose targets are statically unknown.  [Ret] and
    terminating instructions return [Some []]. *)
let static_successors ~pc = function
  | Jmp t -> Some [ t ]
  | Jcc (_, t) -> Some [ t; pc + 1 ]
  | Jind _ | Callind _ -> None
  | Ret | Halt | Sys Exit -> Some []
  | Assert _ ->
    (* Failure terminates, success falls through; for CFG purposes only
       fallthrough matters (the trap edge leaves the function). *)
    Some [ pc + 1 ]
  | Call _ ->
    (* Intra-procedural CFG: a call falls through to its continuation. *)
    Some [ pc + 1 ]
  | _ -> Some [ pc + 1 ]

(* ---- Serialization (used by pinballs that embed programs) ---- *)

let binop_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9

let binop_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Div | 4 -> Mod
  | 5 -> And | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Shr
  | _ -> raise (Dr_util.Codec.Corrupt "binop")

let cond_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let cond_of_code = function
  | 0 -> Eq | 1 -> Ne | 2 -> Lt | 3 -> Le | 4 -> Gt | 5 -> Ge
  | _ -> raise (Dr_util.Codec.Corrupt "cond")

let syscall_code = function
  | Exit -> 0 | Print -> 1 | Rand -> 2 | Time -> 3 | Read -> 4 | Spawn -> 5
  | Join -> 6 | Lock -> 7 | Unlock -> 8 | Yield -> 9 | Alloc -> 10
  | Wait -> 11 | Signal -> 12 | Broadcast -> 13

let syscall_of_code = function
  | 0 -> Exit | 1 -> Print | 2 -> Rand | 3 -> Time | 4 -> Read | 5 -> Spawn
  | 6 -> Join | 7 -> Lock | 8 -> Unlock | 9 -> Yield | 10 -> Alloc
  | 11 -> Wait | 12 -> Signal | 13 -> Broadcast
  | _ -> raise (Dr_util.Codec.Corrupt "syscall")

let encode_operand e = function
  | Reg r ->
    Dr_util.Codec.put_uint e 0;
    Dr_util.Codec.put_uint e r
  | Imm n ->
    Dr_util.Codec.put_uint e 1;
    Dr_util.Codec.put_int e n

let decode_operand d =
  match Dr_util.Codec.get_uint d with
  | 0 -> Reg (Dr_util.Codec.get_uint d)
  | 1 -> Imm (Dr_util.Codec.get_int d)
  | _ -> raise (Dr_util.Codec.Corrupt "operand")

let encode e i =
  let open Dr_util.Codec in
  match i with
  | Mov (rd, op) -> put_uint e 0; put_uint e rd; encode_operand e op
  | Bin (b, rd, rs, op) ->
    put_uint e 1; put_uint e (binop_code b); put_uint e rd; put_uint e rs;
    encode_operand e op
  | Load (rd, rb, off) -> put_uint e 2; put_uint e rd; put_uint e rb; put_int e off
  | Store (rb, off, rs) -> put_uint e 3; put_uint e rb; put_int e off; put_uint e rs
  | Push r -> put_uint e 4; put_uint e r
  | Pop r -> put_uint e 5; put_uint e r
  | Cmp (r, op) -> put_uint e 6; put_uint e r; encode_operand e op
  | Setcc (c, r) -> put_uint e 7; put_uint e (cond_code c); put_uint e r
  | Jmp t -> put_uint e 8; put_uint e t
  | Jcc (c, t) -> put_uint e 9; put_uint e (cond_code c); put_uint e t
  | Jind r -> put_uint e 10; put_uint e r
  | Call t -> put_uint e 11; put_uint e t
  | Callind r -> put_uint e 12; put_uint e r
  | Ret -> put_uint e 13
  | Sys s -> put_uint e 14; put_uint e (syscall_code s)
  | Assert (r, m) -> put_uint e 15; put_uint e r; put_uint e m
  | Halt -> put_uint e 16
  | Nop -> put_uint e 17

let decode d =
  let open Dr_util.Codec in
  match get_uint d with
  | 0 -> let rd = get_uint d in Mov (rd, decode_operand d)
  | 1 ->
    let b = binop_of_code (get_uint d) in
    let rd = get_uint d in
    let rs = get_uint d in
    Bin (b, rd, rs, decode_operand d)
  | 2 -> let rd = get_uint d in let rb = get_uint d in Load (rd, rb, get_int d)
  | 3 -> let rb = get_uint d in let off = get_int d in Store (rb, off, get_uint d)
  | 4 -> Push (get_uint d)
  | 5 -> Pop (get_uint d)
  | 6 -> let r = get_uint d in Cmp (r, decode_operand d)
  | 7 -> let c = cond_of_code (get_uint d) in Setcc (c, get_uint d)
  | 8 -> Jmp (get_uint d)
  | 9 -> let c = cond_of_code (get_uint d) in Jcc (c, get_uint d)
  | 10 -> Jind (get_uint d)
  | 11 -> Call (get_uint d)
  | 12 -> Callind (get_uint d)
  | 13 -> Ret
  | 14 -> Sys (syscall_of_code (get_uint d))
  | 15 -> let r = get_uint d in Assert (r, get_uint d)
  | 16 -> Halt
  | 17 -> Nop
  | _ -> raise (Dr_util.Codec.Corrupt "instr")
