(** Source-level debug information emitted by the mini-C compiler.

    This plays the role of DWARF in the paper's setting: the debugger uses
    it to set breakpoints by line, print variables by name, and render
    slices as highlighted source lines. *)

type var_loc =
  | Global of int  (** absolute memory address *)
  | Frame of int  (** offset from the frame pointer (negative = local) *)
  | Register of Reg.t  (** allocated to a callee-saved register *)

type var = { vname : string; vloc : var_loc; varray : int option  (** element count if an array *) }

type func = {
  fname : string;
  entry : int;  (** pc of the first instruction *)
  code_end : int;  (** one past the last instruction *)
  params : string list;
  vars : var list;  (** params and locals, in declaration order *)
}

type t = {
  file : string;
  source : string;  (** full source text, for the debugger's [list] *)
  funcs : func list;
  lines : (int * int) array;  (** (pc, line), sorted by pc; line of a pc is the last entry at or before it *)
  globals : (string * int * int option) list;  (** name, address, array size *)
}

let empty =
  { file = "<none>"; source = ""; funcs = []; lines = [||]; globals = [] }

(** Function containing [pc], if any. *)
let func_at t pc = List.find_opt (fun f -> pc >= f.entry && pc < f.code_end) t.funcs

let func_named t name = List.find_opt (fun f -> f.fname = name) t.funcs

(** Source line of [pc] via binary search over the line table. *)
let line_of_pc t pc =
  let a = t.lines in
  let n = Array.length a in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let p, _ = a.(mid) in
      if p <= pc then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best < 0 then None else Some (snd a.(!best))
  end

(** First pc whose line is exactly [line] (for breakpoints). *)
let pc_of_line t line =
  let found = ref None in
  Array.iter
    (fun (p, l) -> if l = line && !found = None then found := Some p)
    t.lines;
  !found

(** Resolve a variable name visible at [pc]: locals of the enclosing
    function shadow globals. *)
let lookup_var t ~pc name =
  let local =
    match func_at t pc with
    | None -> None
    | Some f -> List.find_opt (fun v -> v.vname = name) f.vars
  in
  match local with
  | Some v -> Some v.vloc
  | None -> (
    match List.find_opt (fun (n, _, _) -> n = name) t.globals with
    | Some (_, addr, _) -> Some (Global addr)
    | None -> None)

let source_line t n =
  let lines = String.split_on_char '\n' t.source in
  List.nth_opt lines (n - 1)

(* ---- serialization ---- *)

let encode_var_loc e = function
  | Global a -> Dr_util.Codec.put_uint e 0; Dr_util.Codec.put_uint e a
  | Frame off -> Dr_util.Codec.put_uint e 1; Dr_util.Codec.put_int e off
  | Register r -> Dr_util.Codec.put_uint e 2; Dr_util.Codec.put_uint e r

let decode_var_loc d =
  match Dr_util.Codec.get_uint d with
  | 0 -> Global (Dr_util.Codec.get_uint d)
  | 1 -> Frame (Dr_util.Codec.get_int d)
  | 2 -> Register (Dr_util.Codec.get_uint d)
  | _ -> raise (Dr_util.Codec.Corrupt "var_loc")

let encode e t =
  let open Dr_util.Codec in
  put_string e t.file;
  put_string e t.source;
  put_list e
    (fun e f ->
      put_string e f.fname;
      put_uint e f.entry;
      put_uint e f.code_end;
      put_list e (fun e p -> put_string e p) f.params;
      put_list e
        (fun e v ->
          put_string e v.vname;
          encode_var_loc e v.vloc;
          match v.varray with
          | None -> put_uint e 0
          | Some n -> put_uint e 1; put_uint e n)
        f.vars)
    t.funcs;
  put_uint e (Array.length t.lines);
  Array.iter
    (fun (p, l) ->
      put_uint e p;
      put_uint e l)
    t.lines;
  put_list e
    (fun e (n, a, sz) ->
      put_string e n;
      put_uint e a;
      match sz with None -> put_uint e 0 | Some s -> put_uint e 1; put_uint e s)
    t.globals

let decode d =
  let open Dr_util.Codec in
  let file = get_string d in
  let source = get_string d in
  let funcs =
    get_list d (fun d ->
        let fname = get_string d in
        let entry = get_uint d in
        let code_end = get_uint d in
        let params = get_list d (fun d -> get_string d) in
        let vars =
          get_list d (fun d ->
              let vname = get_string d in
              let vloc = decode_var_loc d in
              let varray =
                match get_uint d with
                | 0 -> None
                | 1 -> Some (get_uint d)
                | _ -> raise (Corrupt "varray")
              in
              { vname; vloc; varray })
        in
        { fname; entry; code_end; params; vars })
  in
  let nlines = get_uint d in
  let lines =
    Array.init nlines (fun _ ->
        let p = get_uint d in
        let l = get_uint d in
        (p, l))
  in
  let globals =
    get_list d (fun d ->
        let n = get_string d in
        let a = get_uint d in
        let sz =
          match get_uint d with
          | 0 -> None
          | 1 -> Some (get_uint d)
          | _ -> raise (Corrupt "gsize")
        in
        (n, a, sz))
  in
  { file; source; funcs; lines; globals }
