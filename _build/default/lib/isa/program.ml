(** An executable program image: code, initial data, and debug info.

    Memory layout (word-addressed, see {!Dr_machine.Machine}):

    {v
      [0, data_end)             globals, string/jump tables
      [data_end, stack_floor)   heap (bump-allocated by sys alloc)
      [stack_floor, mem_size)   per-thread stacks, growing downward
    v} *)

type t = {
  name : string;
  code : Instr.t array;
  entry : int;  (** initial pc of the main thread *)
  data : (int * int) list;  (** initial memory cells: (address, value) *)
  data_end : int;  (** first address past static data; heap base *)
  mem_size : int;  (** total memory words *)
  stack_words : int;  (** stack region size per thread *)
  max_threads : int;
  strings : string array;  (** messages referenced by [Assert] *)
  debug : Debug_info.t;
}

let default_mem_size = 1 lsl 20
let default_stack_words = 1 lsl 14
let default_max_threads = 16

let make ?(name = "<anon>") ?(data = []) ?(data_end = 0)
    ?(mem_size = default_mem_size) ?(stack_words = default_stack_words)
    ?(max_threads = default_max_threads) ?(strings = [||])
    ?(debug = Debug_info.empty) ~entry code =
  let code = Array.of_list code in
  if entry < 0 || entry >= Array.length code then
    invalid_arg "Program.make: entry out of range";
  List.iter
    (fun (a, _) ->
      if a < 0 || a >= mem_size then invalid_arg "Program.make: data address out of range")
    data;
  { name; code; entry; data; data_end; mem_size; stack_words; max_threads;
    strings; debug }

let code_size t = Array.length t.code

let instr t pc =
  if pc < 0 || pc >= Array.length t.code then None else Some t.code.(pc)

let string_at t i =
  if i >= 0 && i < Array.length t.strings then t.strings.(i) else "<bad-string>"

(** Base address of thread [tid]'s stack (exclusive upper bound; the stack
    grows down from here). *)
let stack_base t ~tid = t.mem_size - (tid * t.stack_words)

(** Lowest address thread [tid]'s stack may touch. *)
let stack_limit t ~tid = stack_base t ~tid - t.stack_words

let pp_listing fmt t =
  Array.iteri
    (fun pc i ->
      let line =
        match Debug_info.line_of_pc t.debug pc with
        | Some l -> Printf.sprintf " ; line %d" l
        | None -> ""
      in
      Format.fprintf fmt "%4d: %a%s@." pc Instr.pp i line)
    t.code

let encode e t =
  let open Dr_util.Codec in
  put_string e t.name;
  put_uint e (Array.length t.code);
  Array.iter (Instr.encode e) t.code;
  put_uint e t.entry;
  put_list e
    (fun e (a, v) ->
      put_uint e a;
      put_int e v)
    t.data;
  put_uint e t.data_end;
  put_uint e t.mem_size;
  put_uint e t.stack_words;
  put_uint e t.max_threads;
  put_uint e (Array.length t.strings);
  Array.iter (put_string e) t.strings;
  Debug_info.encode e t.debug

let decode d =
  let open Dr_util.Codec in
  let name = get_string d in
  let ncode = get_uint d in
  let code = Array.init ncode (fun _ -> Instr.decode d) in
  let entry = get_uint d in
  let data =
    get_list d (fun d ->
        let a = get_uint d in
        let v = get_int d in
        (a, v))
  in
  let data_end = get_uint d in
  let mem_size = get_uint d in
  let stack_words = get_uint d in
  let max_threads = get_uint d in
  let nstr = get_uint d in
  let strings = Array.init nstr (fun _ -> get_string d) in
  let debug = Debug_info.decode d in
  { name; code; entry; data; data_end; mem_size; stack_words; max_threads;
    strings; debug }
