(** Maple's profiling phase: observe inter-thread dependencies over a few
    runs and predict untested candidate orderings. *)

open Dr_machine

type observation = {
  observed : Iroot.t list;  (** iRoots seen in the profiled runs *)
  candidates : Iroot.t list;  (** predicted orderings, not yet observed *)
  runs : int;
}

(* per-address last-access state *)
type access = { a_tid : int; a_pc : int; a_write : bool }

let observe_run prog ~policy ~input (seen : (Iroot.t, unit) Hashtbl.t) :
    unit =
  let m = Machine.create ~input prog in
  let last : (int, access) Hashtbl.t = Hashtbl.create 1024 in
  let note ~tid ~pc ~write addr =
    (match Hashtbl.find_opt last addr with
    | Some prev when prev.a_tid <> tid && (prev.a_write || write) ->
      let idiom =
        match (prev.a_write, write) with
        | false, true -> Iroot.RW
        | true, false -> Iroot.WR
        | true, true -> Iroot.WW
        | false, false -> assert false
      in
      Hashtbl.replace seen { Iroot.pre = prev.a_pc; post = pc; idiom } ()
    | _ -> ());
    Hashtbl.replace last addr { a_tid = tid; a_pc = pc; a_write = write }
  in
  let on_event (ev : Event.t) =
    if ev.Event.mem_read >= 0 then
      note ~tid:ev.Event.tid ~pc:ev.Event.pc ~write:false ev.Event.mem_read;
    if ev.Event.mem_write >= 0 then
      note ~tid:ev.Event.tid ~pc:ev.Event.pc ~write:true ev.Event.mem_write
  in
  ignore
    (Driver.run ~hooks:{ Driver.on_event } ~max_steps:2_000_000 m policy)

(** Profile [prog] under several seeded schedules; candidates are the
    flips of observed iRoots that were never themselves observed. *)
let profile ?(seeds = [ 1; 2; 3; 4 ]) ?(input = [||]) ?(max_quantum = 6)
    (prog : Dr_isa.Program.t) : observation =
  let seen = Hashtbl.create 256 in
  List.iter
    (fun seed ->
      observe_run prog
        ~policy:(Driver.Seeded { seed; max_quantum })
        ~input seen)
    seeds;
  let observed = Hashtbl.fold (fun ir () acc -> ir :: acc) seen [] in
  let candidates =
    observed
    |> List.map Iroot.flip
    |> List.filter (fun ir -> not (Hashtbl.mem seen ir))
    |> List.sort_uniq Iroot.compare
  in
  { observed = List.sort_uniq Iroot.compare observed;
    candidates;
    runs = List.length seeds }
