lib/maple/profiler.ml: Dr_isa Dr_machine Driver Event Hashtbl Iroot List Machine
