lib/maple/iroot.mli: Format
