lib/maple/active.ml: Dr_isa Dr_machine Dr_pinplay Driver Iroot List Machine Profiler
