lib/maple/iroot.ml: Format Stdlib
