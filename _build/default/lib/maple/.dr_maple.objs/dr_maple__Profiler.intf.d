lib/maple/profiler.mli: Dr_isa Iroot
