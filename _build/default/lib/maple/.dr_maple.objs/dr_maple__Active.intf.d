lib/maple/active.mli: Dr_isa Dr_machine Dr_pinplay Iroot
