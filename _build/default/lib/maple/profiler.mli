(** Maple's profiling phase: observe inter-thread memory dependencies
    over a few seeded runs and predict untested candidate orderings (the
    flips of observed iRoots). *)

type observation = {
  observed : Iroot.t list;  (** iRoots seen in the profiled runs *)
  candidates : Iroot.t list;  (** predicted orderings, never observed *)
  runs : int;
}

val profile :
  ?seeds:int list ->
  ?input:int array ->
  ?max_quantum:int ->
  Dr_isa.Program.t ->
  observation
