(** Inter-thread memory-dependency idioms ("iRoots"), after Maple [30].

    An iRoot is an ordered pair of instructions from {e different} threads
    that access the same shared memory location, at least one of them a
    write.  The profiler records iRoots it observes; the predictor flips
    them into untested candidate orderings for the active scheduler to
    force. *)

type idiom =
  | RW  (** a read immediately before a remote write *)
  | WR  (** a write immediately before a remote read *)
  | WW  (** two remote writes *)

type t = {
  pre : int;  (** pc of the instruction that should execute first *)
  post : int;  (** pc of the instruction that should follow, in another thread *)
  idiom : idiom;
}

let idiom_name = function RW -> "RW" | WR -> "WR" | WW -> "WW"

(** Flip the ordering of an iRoot: the candidate interleaving the paper's
    Maple integration exposes ("if A-then-B was observed, try B-then-A"). *)
let flip t =
  let idiom = match t.idiom with RW -> WR | WR -> RW | WW -> WW in
  { pre = t.post; post = t.pre; idiom }

let compare a b = Stdlib.compare (a.pre, a.post, a.idiom) (b.pre, b.post, b.idiom)

let equal a b = compare a b = 0

let pp fmt t =
  Format.fprintf fmt "%s(%d -> %d)" (idiom_name t.idiom) t.pre t.post

let to_string t = Format.asprintf "%a" pp t
