(** Inter-thread memory-dependency idioms ("iRoots"), after Maple [30]:
    an ordered pair of instructions from different threads touching the
    same shared location, at least one a write. *)

type idiom =
  | RW  (** a read immediately before a remote write *)
  | WR  (** a write immediately before a remote read *)
  | WW  (** two remote writes *)

type t = {
  pre : int;  (** pc of the instruction that should execute first *)
  post : int;  (** pc of the following instruction, in another thread *)
  idiom : idiom;
}

val idiom_name : idiom -> string

(** The reversed ordering — the candidate interleaving to force. *)
val flip : t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
