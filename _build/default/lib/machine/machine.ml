(** The DrDebug virtual machine: a word-addressed memory shared by
    simulated threads, executed one instruction at a time.

    The machine itself is {e sequentially consistent and deterministic}:
    all non-determinism lives in (a) which thread the driver chooses to
    step next and (b) the results of the [rand]/[time]/[read] syscalls,
    supplied by a [nondet] callback.  This factoring is what makes
    PinPlay-style record/replay possible: the logger records exactly those
    two inputs, and the replayer feeds them back. *)

open Dr_isa

type thread_state =
  | Runnable
  | Blocked_lock of int  (** waiting to acquire the mutex at this address *)
  | Blocked_join of int  (** waiting for this thread to finish *)
  | Blocked_cond of int  (** waiting on the condition variable at this address *)
  | Finished

type thread = {
  tid : int;
  mutable pc : int;
  regs : int array;  (** [Reg.file_size] slots; flags at index 16 *)
  mutable state : thread_state;
  mutable icount : int;  (** retired instructions *)
  mutable wait_reacquire : int;
      (** mutex address this thread must reacquire to finish a [wait],
          or -1; see the Wait syscall *)
}

type outcome =
  | Running
  | Exited of int
  | Assert_failed of { tid : int; pc : int; msg : string }
  | Fault of { tid : int; pc : int; msg : string }

type nondet = Event.nondet_kind -> int

type t = {
  prog : Program.t;
  mem : int array;
  mutable threads : thread array;
  mutable nthreads : int;
  locks : (int, int) Hashtbl.t;  (** mutex address -> owner tid *)
  mutable heap_ptr : int;
  mutable outcome : outcome;
  output : Dr_util.Vec.Int_vec.t;  (** words printed by [sys print] *)
  mutable input : int array;
  mutable input_pos : int;
  mutable total_icount : int;
  ev : Event.t;  (** scratch event, filled by [step] *)
}

let ret_sentinel = -1

let heap_limit t =
  t.prog.Program.mem_size - (t.prog.Program.max_threads * t.prog.Program.stack_words)

let make_thread prog ~tid ~pc ~arg mem =
  let regs = Array.make Reg.file_size 0 in
  let base = Program.stack_base prog ~tid in
  let sp = base - 1 in
  mem.(sp) <- ret_sentinel;
  regs.(Reg.sp) <- sp;
  regs.(Reg.fp) <- sp;
  regs.(Reg.r1) <- arg;
  { tid; pc; regs; state = Runnable; icount = 0; wait_reacquire = -1 }

let create ?(input = [||]) prog =
  let mem = Array.make prog.Program.mem_size 0 in
  List.iter (fun (a, v) -> mem.(a) <- v) prog.Program.data;
  let main = make_thread prog ~tid:0 ~pc:prog.Program.entry ~arg:0 mem in
  { prog; mem;
    threads = Array.make prog.Program.max_threads main;
    nthreads = 1;
    locks = Hashtbl.create 7;
    heap_ptr = prog.Program.data_end;
    outcome = Running;
    output = Dr_util.Vec.Int_vec.create ();
    input; input_pos = 0;
    total_icount = 0;
    ev = Event.create () }

let program t = t.prog
let outcome t = t.outcome
let num_threads t = t.nthreads
let total_icount t = t.total_icount

let thread t tid =
  if tid < 0 || tid >= t.nthreads then invalid_arg "Machine.thread";
  t.threads.(tid)

let threads t = Array.sub t.threads 0 t.nthreads

let output_list t = Dr_util.Vec.Int_vec.to_list t.output

let next_input t =
  if t.input_pos < Array.length t.input then begin
    let v = t.input.(t.input_pos) in
    t.input_pos <- t.input_pos + 1;
    v
  end
  else -1

(** A native [nondet] source: seeded PRNG for [rand], the retired
    instruction count for [time], the machine's input stream for [read]. *)
let native_nondet ?(seed = 42) t : nondet =
  let rng = Random.State.make [| seed |] in
  fun kind ->
    match kind with
    | Event.Rand -> Random.State.int rng 0x3FFFFFFF
    | Event.Time -> t.total_icount
    | Event.Read -> next_input t

let runnable_tids t =
  let acc = ref [] in
  for tid = t.nthreads - 1 downto 0 do
    if t.threads.(tid).state = Runnable then acc := tid :: !acc
  done;
  !acc

let all_finished t =
  let ok = ref true in
  for tid = 0 to t.nthreads - 1 do
    if t.threads.(tid).state <> Finished then ok := false
  done;
  !ok

(* ---- memory helpers ---- *)

exception Trap of string

let mem_load t th addr (ev : Event.t) =
  if addr < 0 || addr >= Array.length t.mem then
    raise (Trap (Printf.sprintf "load out of bounds: %d" addr));
  let v = t.mem.(addr) in
  ev.mem_read <- addr;
  ev.mem_read_value <- v;
  ignore th;
  v

let mem_store t th addr v (ev : Event.t) =
  if addr < 0 || addr >= Array.length t.mem then
    raise (Trap (Printf.sprintf "store out of bounds: %d" addr));
  t.mem.(addr) <- v;
  ev.mem_write <- addr;
  ev.mem_write_value <- v;
  ignore th

let operand_value th = function
  | Instr.Reg r -> th.regs.(r)
  | Instr.Imm n -> n

(* ---- syscall execution ---- *)

let do_spawn t th (ev : Event.t) =
  let fn = th.regs.(Reg.r1) and arg = th.regs.(Reg.r2) in
  if t.nthreads >= t.prog.Program.max_threads then
    raise (Trap "spawn: too many threads");
  if fn < 0 || fn >= Array.length t.prog.Program.code then
    raise (Trap (Printf.sprintf "spawn: bad entry pc %d" fn));
  let tid = t.nthreads in
  let child = make_thread t.prog ~tid ~pc:fn ~arg t.mem in
  t.threads.(tid) <- child;
  t.nthreads <- t.nthreads + 1;
  th.regs.(Reg.r0) <- tid;
  ev.sys <- Event.Sys_spawn { child = tid; child_pc = fn; arg }

let wake_joiners t ~finished_tid =
  for i = 0 to t.nthreads - 1 do
    match t.threads.(i).state with
    | Blocked_join target when target = finished_tid ->
      t.threads.(i).state <- Runnable
    | _ -> ()
  done

let finish_thread t th =
  th.state <- Finished;
  wake_joiners t ~finished_tid:th.tid

let do_syscall t th sys nondet (ev : Event.t) =
  match sys with
  | Instr.Exit ->
    let status = th.regs.(Reg.r1) in
    t.outcome <- Exited status;
    ev.sys <- Event.Sys_exit status
  | Instr.Print ->
    let v = th.regs.(Reg.r1) in
    Dr_util.Vec.Int_vec.push t.output v;
    ev.sys <- Event.Sys_print v
  | Instr.Rand ->
    let v = nondet Event.Rand in
    th.regs.(Reg.r0) <- v;
    ev.sys <- Event.Sys_nondet { kind = Event.Rand; result = v }
  | Instr.Time ->
    let v = nondet Event.Time in
    th.regs.(Reg.r0) <- v;
    ev.sys <- Event.Sys_nondet { kind = Event.Time; result = v }
  | Instr.Read ->
    let v = nondet Event.Read in
    th.regs.(Reg.r0) <- v;
    ev.sys <- Event.Sys_nondet { kind = Event.Read; result = v }
  | Instr.Spawn -> do_spawn t th ev
  | Instr.Join ->
    let target = th.regs.(Reg.r1) in
    if target < 0 || target >= t.nthreads then
      raise (Trap (Printf.sprintf "join: bad tid %d" target))
    else if t.threads.(target).state = Finished then begin
      th.regs.(Reg.r0) <- 0;
      ev.sys <- Event.Sys_join { target; blocked = false }
    end
    else begin
      th.state <- Blocked_join target;
      ev.retired <- false;
      ev.sys <- Event.Sys_join { target; blocked = true }
    end
  | Instr.Lock ->
    let addr = th.regs.(Reg.r1) in
    if addr < 0 || addr >= Array.length t.mem then raise (Trap "lock: bad address");
    (match Hashtbl.find_opt t.locks addr with
    | None ->
      Hashtbl.replace t.locks addr th.tid;
      ev.sys <- Event.Sys_lock { addr; acquired = true }
    | Some owner when owner = th.tid -> raise (Trap "lock: not reentrant")
    | Some _ ->
      th.state <- Blocked_lock addr;
      ev.retired <- false;
      ev.sys <- Event.Sys_lock { addr; acquired = false })
  | Instr.Unlock ->
    let addr = th.regs.(Reg.r1) in
    (match Hashtbl.find_opt t.locks addr with
    | Some owner when owner = th.tid ->
      Hashtbl.remove t.locks addr;
      for i = 0 to t.nthreads - 1 do
        match t.threads.(i).state with
        | Blocked_lock a when a = addr -> t.threads.(i).state <- Runnable
        | _ -> ()
      done;
      ev.sys <- Event.Sys_unlock { addr }
    | _ -> raise (Trap "unlock: lock not held by this thread"))
  | Instr.Yield -> ev.sys <- Event.Sys_yield
  | Instr.Wait ->
    (* Two-phase, both visible in the schedule so replay is sound:
       phase 1 RETIRES without advancing the pc — it releases the mutex
       and blocks the thread on the condvar (the retirement places the
       block in the recorded schedule before the waking signal); after a
       signal wakes the thread, phase 2 re-executes the instruction to
       reacquire the mutex, blocking like a contended lock (convergent
       under scripted replay). *)
    if th.wait_reacquire >= 0 then begin
      let mutex = th.wait_reacquire in
      match Hashtbl.find_opt t.locks mutex with
      | None ->
        Hashtbl.replace t.locks mutex th.tid;
        th.wait_reacquire <- -1;
        ev.sys <- Event.Sys_lock { addr = mutex; acquired = true }
      | Some _ ->
        th.state <- Blocked_lock mutex;
        ev.retired <- false;
        ev.sys <- Event.Sys_lock { addr = mutex; acquired = false }
    end
    else begin
      let cond = th.regs.(Reg.r1) and mutex = th.regs.(Reg.r2) in
      if cond < 0 || cond >= Array.length t.mem then raise (Trap "wait: bad condvar");
      (match Hashtbl.find_opt t.locks mutex with
      | Some owner when owner = th.tid -> Hashtbl.remove t.locks mutex
      | _ -> raise (Trap "wait: mutex not held by this thread"));
      (* waking lock-blocked threads now that the mutex is free *)
      for i = 0 to t.nthreads - 1 do
        match t.threads.(i).state with
        | Blocked_lock a when a = mutex -> t.threads.(i).state <- Runnable
        | _ -> ()
      done;
      th.wait_reacquire <- mutex;
      th.state <- Blocked_cond cond;
      (* phase 1 retires in place: pc stays at the wait instruction *)
      ev.next_pc <- th.pc;
      ev.sys <- Event.Sys_wait { cond; mutex }
    end
  | Instr.Signal | Instr.Broadcast ->
    let cond = th.regs.(Reg.r1) in
    let all = sys = Instr.Broadcast in
    let woken = ref 0 in
    (* wake in tid order: deterministic given machine state *)
    for i = 0 to t.nthreads - 1 do
      match t.threads.(i).state with
      | Blocked_cond a when a = cond && (all || !woken = 0) ->
        t.threads.(i).state <- Runnable;
        incr woken
      | _ -> ()
    done;
    ev.sys <- Event.Sys_signal { cond; woken = !woken; broadcast = all }
  | Instr.Alloc ->
    let words = th.regs.(Reg.r1) in
    if words < 0 then raise (Trap "alloc: negative size");
    if t.heap_ptr + words > heap_limit t then raise (Trap "alloc: out of memory");
    th.regs.(Reg.r0) <- t.heap_ptr;
    ev.sys <- Event.Sys_alloc { addr = t.heap_ptr; words };
    t.heap_ptr <- t.heap_ptr + words

(* ---- the interpreter ---- *)

(** Execute one instruction of thread [tid].  Returns the machine's scratch
    {!Event.t} describing what happened; [ev.retired = false] means the
    instruction blocked (lock/join) and did not retire — the thread is now
    blocked and must not be stepped until woken.  Raises [Invalid_argument]
    if the thread is not runnable or the machine has terminated. *)
let step t ~tid ~(nondet : nondet) : Event.t =
  if t.outcome <> Running then invalid_arg "Machine.step: not running";
  let th = thread t tid in
  if th.state <> Runnable then invalid_arg "Machine.step: thread not runnable";
  let pc = th.pc in
  let ev = t.ev in
  (match Program.instr t.prog pc with
  | None ->
    Event.reset ev ~tid ~pc ~instr:Instr.Nop;
    t.outcome <- Fault { tid; pc; msg = Printf.sprintf "pc out of code: %d" pc }
  | Some instr -> (
    Event.reset ev ~tid ~pc ~instr;
    try
      (match instr with
      | Instr.Nop -> ()
      | Instr.Halt -> t.outcome <- Exited 0
      | Instr.Mov (rd, op) -> th.regs.(rd) <- operand_value th op
      | Instr.Bin (b, rd, rs, op) ->
        th.regs.(rd) <- Instr.eval_binop b th.regs.(rs) (operand_value th op)
      | Instr.Load (rd, rb, off) ->
        th.regs.(rd) <- mem_load t th (th.regs.(rb) + off) ev
      | Instr.Store (rb, off, rs) ->
        mem_store t th (th.regs.(rb) + off) th.regs.(rs) ev
      | Instr.Push r ->
        let sp = th.regs.(Reg.sp) - 1 in
        mem_store t th sp th.regs.(r) ev;
        th.regs.(Reg.sp) <- sp
      | Instr.Pop r ->
        let sp = th.regs.(Reg.sp) in
        th.regs.(r) <- mem_load t th sp ev;
        th.regs.(Reg.sp) <- sp + 1
      | Instr.Cmp (r, op) ->
        th.regs.(Reg.flags) <- Instr.eval_cmp th.regs.(r) (operand_value th op)
      | Instr.Setcc (c, rd) ->
        th.regs.(rd) <- (if Instr.eval_cond c th.regs.(Reg.flags) then 1 else 0)
      | Instr.Jmp target -> ev.next_pc <- target
      | Instr.Jcc (c, target) ->
        if Instr.eval_cond c th.regs.(Reg.flags) then begin
          ev.branch_taken <- true;
          ev.next_pc <- target
        end
      | Instr.Jind r ->
        ev.branch_taken <- true;
        ev.next_pc <- th.regs.(r)
      | Instr.Call target ->
        let sp = th.regs.(Reg.sp) - 1 in
        mem_store t th sp (pc + 1) ev;
        th.regs.(Reg.sp) <- sp;
        ev.next_pc <- target
      | Instr.Callind r ->
        let sp = th.regs.(Reg.sp) - 1 in
        mem_store t th sp (pc + 1) ev;
        th.regs.(Reg.sp) <- sp;
        ev.next_pc <- th.regs.(r)
      | Instr.Ret ->
        let sp = th.regs.(Reg.sp) in
        let ra = mem_load t th sp ev in
        th.regs.(Reg.sp) <- sp + 1;
        if ra = ret_sentinel then begin
          ev.next_pc <- pc;
          if tid = 0 then t.outcome <- Exited th.regs.(Reg.r0)
          else finish_thread t th
        end
        else ev.next_pc <- ra
      | Instr.Sys sys -> do_syscall t th sys nondet ev
      | Instr.Assert (r, msg_idx) ->
        if th.regs.(r) = 0 then
          t.outcome <-
            Assert_failed { tid; pc; msg = Program.string_at t.prog msg_idx });
      (* Validate control-flow targets eagerly so bad jumps fault at the
         jump, not at the next fetch. *)
      if t.outcome = Running && ev.retired
         && (ev.next_pc < 0 || ev.next_pc > Array.length t.prog.Program.code)
      then t.outcome <- Fault { tid; pc; msg = Printf.sprintf "bad jump target %d" ev.next_pc }
    with
    | Trap msg -> t.outcome <- Fault { tid; pc; msg }
    | Division_by_zero -> t.outcome <- Fault { tid; pc; msg = "division by zero" }
    | Invalid_argument m -> t.outcome <- Fault { tid; pc; msg = "invalid: " ^ m }));
  if ev.retired then begin
    (match t.outcome with
    | Fault _ -> ()
    | _ ->
      th.pc <- ev.next_pc;
      th.icount <- th.icount + 1;
      t.total_icount <- t.total_icount + 1)
  end;
  ev

let pp_outcome fmt = function
  | Running -> Format.pp_print_string fmt "running"
  | Exited n -> Format.fprintf fmt "exited(%d)" n
  | Assert_failed { tid; pc; msg } ->
    Format.fprintf fmt "assertion failed [tid=%d pc=%d]: %s" tid pc msg
  | Fault { tid; pc; msg } -> Format.fprintf fmt "fault [tid=%d pc=%d]: %s" tid pc msg
