(** Resolve the locations defined and used by a retired instruction.

    This is the per-instruction def/use information of paper §3(i):
    registers are thread-local locations, memory addresses (resolved
    dynamically from the event) are global.

    The stack and frame pointers are excluded from dependence tracking, as
    in binary slicers: sp/fp updates would otherwise chain every stack
    operation to every other.  The {e memory} traffic of push/pop remains
    fully tracked (addresses are concrete in the trace), which is exactly
    what creates the save/restore dependence chains that
    {!Dr_slicing.Prune} removes (§5.2). *)

open Dr_isa

(** Appends the defs and uses of [ev] to the two vectors (they are not
    cleared first).  Locations are {!Dr_isa.Loc} encodings. *)
let collect (ev : Event.t) ~(defs : Dr_util.Vec.Int_vec.t)
    ~(uses : Dr_util.Vec.Int_vec.t) : unit =
  let tid = ev.Event.tid in
  let tracked r = r <> Reg.sp && r <> Reg.fp in
  let reg r = Loc.reg ~tid r in
  let flags = Loc.flags ~tid in
  let def l = Dr_util.Vec.Int_vec.push defs l in
  let use l = Dr_util.Vec.Int_vec.push uses l in
  let def_reg r = if tracked r then def (reg r) in
  let use_reg r = if tracked r then use (reg r) in
  let use_operand = function
    | Instr.Reg r -> use_reg r
    | Instr.Imm _ -> ()
  in
  let mem_read () = if ev.Event.mem_read >= 0 then use (Loc.mem ev.Event.mem_read) in
  let mem_write () =
    if ev.Event.mem_write >= 0 then def (Loc.mem ev.Event.mem_write)
  in
  match ev.Event.instr with
  | Instr.Nop | Instr.Halt -> ()
  | Instr.Mov (rd, op) ->
    use_operand op;
    def_reg rd
  | Instr.Bin (_, rd, rs, op) ->
    use_reg rs;
    use_operand op;
    def_reg rd
  | Instr.Load (rd, rb, _) ->
    use_reg rb;
    mem_read ();
    def_reg rd
  | Instr.Store (rb, _, rs) ->
    use_reg rb;
    use_reg rs;
    mem_write ()
  | Instr.Push r ->
    use_reg r;
    mem_write ()
  | Instr.Pop r ->
    mem_read ();
    def_reg r
  | Instr.Cmp (r, op) ->
    use_reg r;
    use_operand op;
    def flags
  | Instr.Setcc (_, rd) ->
    use flags;
    def_reg rd
  | Instr.Jmp _ -> ()
  | Instr.Jcc _ -> use flags
  | Instr.Jind r -> use_reg r
  | Instr.Call _ -> mem_write ()
  | Instr.Callind r ->
    use_reg r;
    mem_write ()
  | Instr.Ret -> mem_read ()
  | Instr.Assert (r, _) -> use_reg r
  | Instr.Sys sys -> (
    match sys with
    | Instr.Exit -> use (reg Reg.r1)
    | Instr.Print -> use (reg Reg.r1)
    | Instr.Rand | Instr.Time | Instr.Read -> def (reg Reg.r0)
    | Instr.Spawn ->
      use (reg Reg.r1);
      use (reg Reg.r2);
      def (reg Reg.r0);
      (* the child's argument register is written by the spawn: the
         inter-thread dependence from parent arg to child body *)
      (match ev.Event.sys with
      | Event.Sys_spawn { child; _ } -> def (Loc.reg ~tid:child Reg.r1)
      | _ -> ())
    | Instr.Join ->
      use (reg Reg.r1);
      def (reg Reg.r0)
    | Instr.Lock | Instr.Unlock -> use (reg Reg.r1)
    | Instr.Yield -> ()
    | Instr.Alloc ->
      use (reg Reg.r1);
      def (reg Reg.r0)
    | Instr.Wait ->
      use (reg Reg.r1);
      use (reg Reg.r2)
    | Instr.Signal | Instr.Broadcast -> use (reg Reg.r1))
