(** Per-instruction observation record, the analogue of Pin's
    instrumentation arguments.

    [Machine.step] fills a single mutable scratch event per machine to
    avoid allocating on the hot path; instrumentation hooks must copy any
    field they retain past the callback. *)

type nondet_kind = Rand | Time | Read

type sys_effect =
  | Sys_none
  | Sys_nondet of { kind : nondet_kind; result : int }
  | Sys_spawn of { child : int; child_pc : int; arg : int }
  | Sys_join of { target : int; blocked : bool }
  | Sys_lock of { addr : int; acquired : bool }
  | Sys_unlock of { addr : int }
  | Sys_exit of int
  | Sys_print of int
  | Sys_alloc of { addr : int; words : int }
  | Sys_yield
  | Sys_wait of { cond : int; mutex : int }
  | Sys_signal of { cond : int; woken : int; broadcast : bool }

type t = {
  mutable tid : int;
  mutable pc : int;
  mutable instr : Dr_isa.Instr.t;
  mutable next_pc : int;  (** pc after this instruction (same thread) *)
  mutable mem_read : int;  (** address read, or -1 *)
  mutable mem_read_value : int;
  mutable mem_write : int;  (** address written, or -1 *)
  mutable mem_write_value : int;
  mutable branch_taken : bool;  (** meaningful for Jcc only *)
  mutable sys : sys_effect;
  mutable retired : bool;
      (** false when the instruction blocked (lock/join) and will re-execute *)
}

let create () =
  { tid = 0; pc = 0; instr = Dr_isa.Instr.Nop; next_pc = 0; mem_read = -1;
    mem_read_value = 0; mem_write = -1; mem_write_value = 0;
    branch_taken = false; sys = Sys_none; retired = true }

let reset ev ~tid ~pc ~instr =
  ev.tid <- tid;
  ev.pc <- pc;
  ev.instr <- instr;
  ev.next_pc <- pc + 1;
  ev.mem_read <- -1;
  ev.mem_read_value <- 0;
  ev.mem_write <- -1;
  ev.mem_write_value <- 0;
  ev.branch_taken <- false;
  ev.sys <- Sys_none;
  ev.retired <- true
