lib/machine/driver.ml: Array Event Format Machine Option Printf Random
