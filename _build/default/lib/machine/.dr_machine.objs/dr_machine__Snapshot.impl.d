lib/machine/snapshot.ml: Array Dr_isa Dr_util Hashtbl List Machine Program
