lib/machine/machine.ml: Array Dr_isa Dr_util Event Format Hashtbl Instr List Printf Program Random Reg
