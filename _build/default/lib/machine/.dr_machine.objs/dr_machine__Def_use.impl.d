lib/machine/def_use.ml: Dr_isa Dr_util Event Instr Loc Reg
