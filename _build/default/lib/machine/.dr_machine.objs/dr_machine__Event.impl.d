lib/machine/event.ml: Dr_isa
