(** Scheduling drivers for the virtual machine.

    A driver repeatedly picks a runnable thread and steps it.  Policies:

    - {!Round_robin}: fixed quantum, deterministic given the program.
    - {!Seeded}: pseudo-random thread and quantum from a seed — the
      "native" non-deterministic schedule; different seeds give the
      run-to-run variation that makes cyclic debugging hard (paper §1).
    - {!Scripted}: replay of a recorded schedule (RLE list of
      [(tid, retired-instruction count)] slices); divergence raises.
    - {!Custom}: externally controlled — used by Maple's active scheduler
      and by the interactive debugger. *)

type policy =
  | Round_robin of { quantum : int }
  | Seeded of { seed : int; max_quantum : int }
  | Scripted of (int * int) array
  | Custom of (Machine.t -> last:int -> int option)

type stop_reason =
  | Terminated of Machine.outcome  (** exited / assert / fault *)
  | Deadlock  (** live threads, none runnable *)
  | Max_steps
  | Schedule_end  (** scripted schedule exhausted *)
  | Breakpoint of { tid : int; pc : int }
  | Stop_requested  (** [stop_when] hook fired *)

exception Replay_divergence of string

type hooks = { on_event : Event.t -> unit }

let no_hooks = { on_event = (fun _ -> ()) }

(* Pick the next runnable tid at or after [start mod n], wrapping. *)
let next_runnable m start =
  let n = Machine.num_threads m in
  let rec go i k =
    if k = 0 then None
    else if (Machine.thread m i).Machine.state = Machine.Runnable then Some i
    else go ((i + 1) mod n) (k - 1)
  in
  go (((start mod n) + n) mod n) n

(* A picker returns the tid to step next, or None for "no runnable thread"
   (deadlock, or schedule exhausted for scripted picks). *)
let make_picker policy =
  match policy with
  | Round_robin { quantum } ->
    let left = ref quantum in
    fun m ~last ->
      let start = if !left <= 0 then last + 1 else last in
      let chosen = next_runnable m start in
      (match chosen with
      | Some t ->
        if t <> last || !left <= 0 then left := quantum;
        decr left
      | None -> ());
      chosen
  | Seeded { seed; max_quantum } ->
    let rng = Random.State.make [| seed; 0x5eed |] in
    let left = ref 0 and cur = ref (-1) in
    fun m ~last ->
      ignore last;
      let cur_ok =
        !cur >= 0 && !left > 0
        && !cur < Machine.num_threads m
        && (Machine.thread m !cur).Machine.state = Machine.Runnable
      in
      if cur_ok then begin
        decr left;
        Some !cur
      end
      else
        let n = Machine.num_threads m in
        (match next_runnable m (Random.State.int rng n) with
        | None -> None
        | Some t ->
          cur := t;
          left := 1 + Random.State.int rng (max max_quantum 1);
          Some t)
  | Scripted sched ->
    let pos = ref 0 and left = ref 0 in
    fun _m ~last ->
      ignore last;
      (* advance past empty slices *)
      while !left = 0 && !pos < Array.length sched do
        let _, cnt = sched.(!pos) in
        if cnt = 0 then incr pos else left := cnt
      done;
      if !left = 0 then None
      else begin
        let tid, _ = sched.(!pos) in
        decr left;
        if !left = 0 then incr pos;
        Some tid
      end
  | Custom f -> f

(** A resumable scheduling session: the picker's state (round-robin
    rotation, PRNG, script cursor) persists across {!resume} calls, so a
    debugger can stop at a breakpoint and continue as if uninterrupted. *)
type session = {
  m : Machine.t;
  nondet : Machine.nondet;
  pick : Machine.t -> last:int -> int option;
  scripted : bool;
  mutable last : int;
}

let session ?(nondet : Machine.nondet option) (m : Machine.t) (policy : policy)
    : session =
  let nondet = match nondet with Some f -> f | None -> Machine.native_nondet m in
  let scripted = match policy with Scripted _ -> true | _ -> false in
  { m; nondet; pick = make_picker policy; scripted; last = 0 }

(** Run the session until a stop condition.

    [break_at] is consulted {e before} executing an instruction
    (breakpoint semantics); [stop_when] is consulted on the event {e
    after} each retired instruction.  [max_steps] bounds retired
    instructions across all threads.  For scripted policies, scheduling a
    blocked thread or a bad tid raises {!Replay_divergence}: a correct
    pinball never does this. *)
let resume ?(hooks = no_hooks) ?(max_steps = max_int)
    ?(break_at : (tid:int -> pc:int -> bool) option)
    ?(stop_when : (Event.t -> bool) option) (s : session) : stop_reason =
  let { m; nondet; pick; scripted; _ } = s in
  let last = ref s.last in
  let steps = ref 0 in
  let result = ref None in
  while !result = None do
    if Machine.outcome m <> Machine.Running then
      result := Some (Terminated (Machine.outcome m))
    else if !steps >= max_steps then result := Some Max_steps
    else
      match pick m ~last:!last with
      | None ->
        if scripted then result := Some Schedule_end
        else if Machine.all_finished m then
          (* every thread returned; no explicit halt was executed *)
          result := Some (Terminated (Machine.Exited 0))
        else result := Some Deadlock
      | Some tid ->
        if tid < 0 || tid >= Machine.num_threads m then
          if scripted then
            raise (Replay_divergence (Printf.sprintf "schedule names bad tid %d" tid))
          else invalid_arg "Driver.run: picker returned bad tid"
        else begin
          let th = Machine.thread m tid in
          if th.Machine.state <> Machine.Runnable then begin
            if scripted then
              raise
                (Replay_divergence
                   (Printf.sprintf "scheduled tid %d not runnable at pc %d" tid
                      th.Machine.pc))
            else result := Some Deadlock
          end
          else begin
            match break_at with
            | Some f when f ~tid ~pc:th.Machine.pc ->
              result := Some (Breakpoint { tid; pc = th.Machine.pc })
            | _ ->
              let ev = Machine.step m ~tid ~nondet in
              last := tid;
              if ev.Event.retired then begin
                incr steps;
                hooks.on_event ev;
                (match stop_when with
                | Some f when f ev -> result := Some Stop_requested
                | _ -> ());
                match Machine.outcome m with
                | Machine.Running -> ()
                | o -> if !result = None then result := Some (Terminated o)
              end
              else if scripted then
                raise
                  (Replay_divergence
                     (Printf.sprintf "scheduled tid %d blocked at pc %d" tid
                        th.Machine.pc))
          end
        end
  done;
  s.last <- !last;
  Option.get !result

(** One-shot convenience: create a session and run it to the first stop. *)
let run ?nondet ?hooks ?max_steps ?break_at ?stop_when (m : Machine.t)
    (policy : policy) : stop_reason =
  resume ?hooks ?max_steps ?break_at ?stop_when (session ?nondet m policy)

let pp_stop_reason fmt = function
  | Terminated o -> Format.fprintf fmt "terminated: %a" Machine.pp_outcome o
  | Deadlock -> Format.pp_print_string fmt "deadlock"
  | Max_steps -> Format.pp_print_string fmt "max steps reached"
  | Schedule_end -> Format.pp_print_string fmt "schedule exhausted"
  | Breakpoint { tid; pc } -> Format.fprintf fmt "breakpoint [tid=%d pc=%d]" tid pc
  | Stop_requested -> Format.pp_print_string fmt "stop requested"
