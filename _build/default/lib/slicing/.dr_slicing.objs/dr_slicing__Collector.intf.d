lib/slicing/collector.mli: Dr_cfg Dr_isa Dr_pinplay Hashtbl Prune Trace
