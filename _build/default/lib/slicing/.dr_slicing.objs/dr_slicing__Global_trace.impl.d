lib/slicing/global_trace.ml: Array Collector Option Printf Trace
