lib/slicing/trace.ml: Array Dr_isa Format String
