lib/slicing/global_trace.mli: Collector Trace
