lib/slicing/prune.ml: Array Dr_isa Hashtbl Instr List Program Reg
