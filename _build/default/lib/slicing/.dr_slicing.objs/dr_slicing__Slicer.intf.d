lib/slicing/slicer.mli: Format Global_trace Lp Prune
