lib/slicing/collector.ml: Array Def_use Dr_cfg Dr_isa Dr_machine Dr_pinplay Dr_util Driver Event Hashtbl List Machine Option Prune Trace
