lib/slicing/lp.mli: Global_trace Hashtbl
