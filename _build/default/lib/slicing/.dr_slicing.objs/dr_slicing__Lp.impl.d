lib/slicing/lp.ml: Array Dr_util Global_trace Hashtbl Trace
