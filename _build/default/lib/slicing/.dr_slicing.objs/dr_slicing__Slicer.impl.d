lib/slicing/slicer.ml: Array Dr_isa Dr_util Format Fun Global_trace Hashtbl List Lp Printf Prune String Trace
