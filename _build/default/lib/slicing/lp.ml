(** Limited Preprocessing (LP) for fast backwards traversal (Zhang et
    al. [33], used in paper §3(iii)).

    The global trace is divided into fixed-size blocks; for each block a
    summary of the locations it defines is precomputed.  The backwards
    slice traversal can then skip a whole block when the summary proves
    the block can satisfy none of the currently wanted locations and no
    pending control-dependence target lies inside it. *)

let default_block_size = 4096

type t = {
  block_size : int;
  num_blocks : int;
  (* per block: sorted array of distinct defined locations *)
  summaries : int array array;
}

let prepare ?(block_size = default_block_size) (gt : Global_trace.t) : t =
  let n = Global_trace.length gt in
  let num_blocks = (n + block_size - 1) / block_size in
  let summaries =
    Array.init num_blocks (fun b ->
        let lo = b * block_size in
        let hi = min ((b + 1) * block_size) n - 1 in
        let acc = Dr_util.Vec.Int_vec.create () in
        for pos = lo to hi do
          let r = Global_trace.record gt pos in
          Array.iter (fun d -> Dr_util.Vec.Int_vec.push acc d) r.Trace.defs
        done;
        let a = Dr_util.Vec.Int_vec.to_array acc in
        Array.sort compare a;
        (* dedup in place *)
        let m = Array.length a in
        if m = 0 then a
        else begin
          let w = ref 1 in
          for i = 1 to m - 1 do
            if a.(i) <> a.(!w - 1) then begin
              a.(!w) <- a.(i);
              incr w
            end
          done;
          Array.sub a 0 !w
        end)
  in
  { block_size; num_blocks; summaries }

let block_of t pos = pos / t.block_size

let block_range t b =
  (b * t.block_size, ((b + 1) * t.block_size) - 1)

(** Does block [b] define location [loc]?  Binary search in the summary. *)
let defines t ~block ~loc =
  let a = t.summaries.(block) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = a.(mid) in
    if v = loc then found := true
    else if v < loc then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(** Can block [b] satisfy any of [wanted]?  Iterates over the smaller of
    the wanted set and the block summary. *)
let may_satisfy t ~block ~(wanted : (int, 'a) Hashtbl.t) : bool =
  let summary = t.summaries.(block) in
  let nw = Hashtbl.length wanted in
  if nw = 0 then false
  else if nw <= Array.length summary then
    Hashtbl.fold
      (fun loc _ acc -> acc || defines t ~block ~loc)
      wanted false
  else Array.exists (fun loc -> Hashtbl.mem wanted loc) summary
