(** Save/restore pair detection (paper §5.2).

    A {e save/restore pair} is a push at function entry and the matching
    pop at function exit that exist only to preserve a callee-saved
    register.  Binary-level slicing would otherwise thread data
    dependences through the pair ([use -> restore -> save -> older def])
    and, because the restore is control dependent on whatever guarded the
    call, drag large spurious subgraphs into the slice.

    Detection is two-stage, exactly as in the paper:

    - {e static candidates}: the first [max_save] push instructions at a
      function entry and the last [max_save] pops before each return
      (compiler idioms such as the [mov fp, sp] and stack adjustments in
      between are skipped, but any other instruction ends the scan — so
      mid-function pushes of expression temporaries are never candidates);
    - {e dynamic confirmation}: a candidate pair is confirmed for one
      invocation only if the pop reads the same value from the same stack
      slot that the push wrote from the same register. *)

open Dr_isa

type candidates = {
  saves : (int, Reg.t) Hashtbl.t;  (** pc of candidate save push -> register *)
  restores : (int, Reg.t) Hashtbl.t;  (** pc of candidate restore pop -> register *)
}

let default_max_save = 10

(* Instructions that may appear interleaved with prologue pushes /
   epilogue pops without ending the candidate scan. *)
let is_frame_glue = function
  | Instr.Mov (rd, Instr.Reg rs) -> rd = Reg.fp && rs = Reg.sp
  | Instr.Bin ((Instr.Sub | Instr.Add), rd, rs, Instr.Imm _) ->
    rd = Reg.sp && (rs = Reg.sp || rs = Reg.fp)
  | _ -> false

(** Scan every function of [prog] for candidate saves and restores. *)
let static_candidates ?(max_save = default_max_save) (prog : Program.t)
    ~(functions : (int * int) list) : candidates =
  let saves = Hashtbl.create 64 and restores = Hashtbl.create 64 in
  let code = prog.Program.code in
  List.iter
    (fun (entry, fend) ->
      (* forward scan from entry *)
      let count = ref 0 in
      let pc = ref entry in
      let continue = ref true in
      while !continue && !pc < fend && !count < max_save do
        (match code.(!pc) with
        | Instr.Push r ->
          Hashtbl.replace saves !pc r;
          incr count
        | i when is_frame_glue i -> ()
        | _ -> continue := false);
        incr pc
      done;
      (* backward scan from each ret *)
      for ret_pc = entry to fend - 1 do
        if code.(ret_pc) = Instr.Ret then begin
          let count = ref 0 in
          let pc = ref (ret_pc - 1) in
          let continue = ref true in
          while !continue && !pc >= entry && !count < max_save do
            (match code.(!pc) with
            | Instr.Pop r ->
              Hashtbl.replace restores !pc r;
              incr count
            | i when is_frame_glue i -> ()
            | _ -> continue := false);
            decr pc
          done
        end
      done)
    functions;
  { saves; restores }

(** Confirmed pairs: maps the gseq of a confirmed {e restore} record to
    the gseq of its {e save} record and the register involved. *)
type pairs = (int, int * Reg.t) Hashtbl.t

(** Dynamic confirmation state, driven by the trace collector. *)
type frame = { mutable fsaves : (Reg.t * int * int * int) list }
(* (register, stack address, value, save gseq) *)

type thread_state = { mutable frames : frame list }

type state = {
  cands : candidates;
  threads : (int, thread_state) Hashtbl.t;
  pairs : pairs;
}

let create_state cands =
  { cands; threads = Hashtbl.create 8; pairs = Hashtbl.create 256 }

let thread_state st tid =
  match Hashtbl.find_opt st.threads tid with
  | Some t -> t
  | None ->
    let t = { frames = [ { fsaves = [] } ] } in
    Hashtbl.replace st.threads tid t;
    t

let on_call st tid =
  let t = thread_state st tid in
  t.frames <- { fsaves = [] } :: t.frames

let on_ret st tid =
  let t = thread_state st tid in
  match t.frames with _ :: (_ :: _ as rest) -> t.frames <- rest | _ -> ()

(** Record a candidate save execution: [push reg] wrote [value] to stack
    slot [addr] at trace position [gseq]. *)
let on_save st ~tid ~pc ~reg ~addr ~value ~gseq =
  ignore pc;
  let t = thread_state st tid in
  match t.frames with
  | f :: _ -> f.fsaves <- (reg, addr, value, gseq) :: f.fsaves
  | [] -> ()

(** Check a candidate restore execution; on match, confirm the pair. *)
let on_restore st ~tid ~pc ~reg ~addr ~value ~gseq =
  ignore pc;
  let t = thread_state st tid in
  match t.frames with
  | f :: _ -> (
    match
      List.find_opt (fun (r, a, v, _) -> r = reg && a = addr && v = value) f.fsaves
    with
    | Some (_, _, _, save_gseq) -> Hashtbl.replace st.pairs gseq (save_gseq, reg)
    | None -> ())
  | [] -> ()

(** Is the record at [gseq] a confirmed restore of register [reg]?  If so,
    return the gseq of the matching save. *)
let bypass (pairs : pairs) ~gseq ~reg : int option =
  match Hashtbl.find_opt pairs gseq with
  | Some (save_gseq, r) when r = reg -> Some save_gseq
  | _ -> None
