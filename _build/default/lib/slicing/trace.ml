(** Per-instruction trace records (paper §3(i)).

    One record per retired instruction of the replayed region.  Registers
    are thread-local locations and memory addresses are global, both
    encoded with {!Dr_isa.Loc}.  [cd] points to the dynamically
    controlling branch record (by global sequence number), computed online
    with the Xin–Zhang algorithm during collection. *)

(* Flag bits. *)
let flag_sync = 1  (** spawn/join/lock/unlock/exit/alloc *)

let flag_final_ret = 2  (** a return that finished its thread *)

let flag_branch = 4  (** conditional or indirect jump *)

let flag_nondet = 8  (** rand/time/read syscall *)

let flag_load = 16  (** reads memory *)

let flag_store = 32  (** writes memory *)

type record = {
  gseq : int;  (** index in execution order (collection order) *)
  tid : int;
  pc : int;
  instance : int;  (** nth execution of [pc] by [tid] within the region, 1-based *)
  lidx : int;  (** index within the thread's local trace, 0-based *)
  defs : int array;  (** encoded locations *)
  uses : int array;
  mutable cd : int;  (** gseq of the controlling branch record, or -1 *)
  flags : int;
  line : int;  (** source line, or -1 *)
}

let is_sync r = r.flags land flag_sync <> 0
let is_final_ret r = r.flags land flag_final_ret <> 0
let is_branch r = r.flags land flag_branch <> 0
let is_nondet r = r.flags land flag_nondet <> 0
let is_load r = r.flags land flag_load <> 0
let is_store r = r.flags land flag_store <> 0

(** Placeholder record used as a vector dummy. *)
let dummy =
  { gseq = -1; tid = 0; pc = 0; instance = 0; lidx = 0; defs = [||];
    uses = [||]; cd = -1; flags = 0; line = -1 }

let pp fmt r =
  Format.fprintf fmt "#%d t%d pc=%d i=%d defs=[%s] uses=[%s] cd=%d" r.gseq
    r.tid r.pc r.instance
    (String.concat ";" (Array.to_list (Array.map Dr_isa.Loc.to_string r.defs)))
    (String.concat ";" (Array.to_list (Array.map Dr_isa.Loc.to_string r.uses)))
    r.cd
