(** Code-exclusion region construction from a dynamic slice (paper §4,
    Fig. 6a).

    Per thread, maximal runs of non-slice records become exclusion
    regions.  Synchronization instructions and thread-final returns are
    always kept: their effects (thread creation, lock state, heap growth)
    are not expressible as memory/register injections. *)

type stats = {
  total_records : int;
  included_records : int;  (** slice + forced sync instructions *)
  excluded_records : int;
  regions : int;
}

(** Is this record kept regardless of slice membership? *)
val forced : Dr_slicing.Trace.record -> bool

(** Build the exclusion regions for [slice] over the collector's
    per-thread traces. *)
val build :
  slice:Dr_slicing.Slicer.t ->
  collector:Dr_slicing.Collector.result ->
  Dr_pinplay.Relogger.exclusion list * stats

(** One-call pipeline: slice -> exclusion regions -> relogged slice
    pinball.
    @raise Dr_pinplay.Relogger.Relog_error if a forced instruction was
    somehow excluded (a builder invariant violation). *)
val slice_pinball :
  Dr_isa.Program.t ->
  Dr_pinplay.Pinball.t ->
  slice:Dr_slicing.Slicer.t ->
  collector:Dr_slicing.Collector.result ->
  Dr_pinplay.Pinball.t * stats
