(** Replaying an execution slice from a slice pinball (paper §4,
    Fig. 4c and 6b).

    Each thread's pc is driven along its included instructions in the
    recorded global order; skipped code regions are replaced by applying
    their injection records.  Every [Step] event is a natural breakpoint:
    the user steps "from the execution of one statement in the slice to
    the next while examining values of program variables". *)

(** The slice pinball does not match the program (or was corrupted). *)
exception Divergence of string

type t

type step_result =
  | Stepped of { tid : int; pc : int; line : int }
  | Injected of { tid : int }
  | Finished of Dr_machine.Machine.outcome
      (** the machine terminated (e.g. the captured assert fired) *)
  | End_of_slice  (** all slice events consumed *)

(** @raise Invalid_argument on region pinballs. *)
val create : Dr_isa.Program.t -> Dr_pinplay.Pinball.t -> t

val machine : t -> Dr_machine.Machine.t

(** Slice events not yet consumed. *)
val remaining : t -> int

(** Advance by one slice event (one instruction or one injection). *)
val step : t -> step_result

(** Step forward to the next {e statement} of the slice: the next
    included instruction whose (thread, source line) differs from the
    current one. *)
val step_statement : t -> step_result

(** Run the whole slice; [on_step] sees every executed instruction. *)
val run : ?on_step:(tid:int -> pc:int -> unit) -> t -> step_result
