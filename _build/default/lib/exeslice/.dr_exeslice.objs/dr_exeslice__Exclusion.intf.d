lib/exeslice/exclusion.mli: Dr_isa Dr_pinplay Dr_slicing
