lib/exeslice/slice_replay.ml: Array Dr_isa Dr_machine Dr_pinplay Event List Machine Option Printf Snapshot
