lib/exeslice/exclusion.ml: Array Dr_isa Dr_pinplay Dr_slicing Dr_util List
