lib/exeslice/slice_replay.mli: Dr_isa Dr_machine Dr_pinplay
