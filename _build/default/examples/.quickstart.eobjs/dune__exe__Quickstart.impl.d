examples/quickstart.ml: Dr_lang Dr_machine Drdebug Printf
