examples/maple_expose.ml: Dr_lang Dr_machine Dr_maple Drdebug Format List Printf
