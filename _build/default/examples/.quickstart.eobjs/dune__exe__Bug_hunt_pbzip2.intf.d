examples/bug_hunt_pbzip2.mli:
