examples/quickstart.mli:
