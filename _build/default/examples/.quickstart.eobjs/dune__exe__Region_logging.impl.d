examples/region_logging.ml: Dr_pinplay Dr_workloads Format List Option Printf Unix
