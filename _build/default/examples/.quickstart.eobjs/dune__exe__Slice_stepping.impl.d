examples/slice_stepping.ml: Dr_lang Drdebug List Printf String
