examples/bug_hunt_pbzip2.ml: Dr_machine Dr_workloads Drdebug Option Printf
