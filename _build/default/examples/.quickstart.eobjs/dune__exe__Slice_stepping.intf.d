examples/slice_stepping.mli:
