examples/region_logging.mli:
