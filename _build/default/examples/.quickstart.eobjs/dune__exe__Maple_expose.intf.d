examples/maple_expose.mli:
