(* Execution regions (paper section 2, "Replay efficiency"): instead of
   capturing a whole execution, fast-forward and log only a region of
   interest, then replay just that region — each debug session starts at
   the region entry with no fast-forwarding.

   Run with: dune exec examples/region_logging.exe *)

let () =
  print_endline "== DrDebug region logging on a PARSEC-style workload ==\n";
  let w = Option.get (Dr_workloads.Parsec.find "fluidanimate") in
  let prog = Dr_workloads.Parsec.compile ~threads:4 ~iters:3000 w in
  Printf.printf "workload: %s (4 threads)\n\n" "fluidanimate";
  List.iter
    (fun (skip, length) ->
      match
        Dr_pinplay.Logger.log prog
          (Dr_pinplay.Logger.Skip_length { skip; length })
      with
      | Error e ->
        Format.printf "region skip=%d len=%d: failed: %a@." skip length
          Dr_pinplay.Logger.pp_error e
      | Ok (pb, stats) ->
        (* replay the region and time it *)
        let t0 = Unix.gettimeofday () in
        let _, _ = Dr_pinplay.Replayer.replay prog pb in
        let replay_time = Unix.gettimeofday () -. t0 in
        Printf.printf
          "region skip=%-6d len=%-6d: logged %7d instrs (all threads) in %.3fs, \
           pinball %6d bytes, replayed in %.3fs\n"
          skip length stats.Dr_pinplay.Logger.region_instructions
          stats.Dr_pinplay.Logger.log_time
          stats.Dr_pinplay.Logger.pinball_bytes replay_time)
    [ (0, 5_000); (10_000, 5_000); (50_000, 5_000); (10_000, 50_000) ];
  print_endline "\nEvery region replays from its snapshot: no fast-forward, same";
  print_endline "heap/stack/schedule every time — the paper's replay efficiency."
