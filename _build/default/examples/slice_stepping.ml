(* Execution-slice stepping (paper section 4): compute a slice, relog it
   into a slice pinball, then step statement-by-statement through ONLY
   the slice while examining live variable values — the capability the
   paper notes no prior slicing tool provides.

   Run with: dune exec examples/slice_stepping.exe *)

let source = {|global int g;
global int noise;
fn main() {
  int a = 2;
  for (int i = 0; i < 60; i = i + 1) {
    noise = noise + i;
  }
  int b = a * 3;
  g = b * 10;
  int w = g + 1;
  assert(w == 0, "w should never be 61");
}|}

let () =
  print_endline "== DrDebug execution-slice stepping ==\n";
  print_endline "program under debug:";
  List.iteri (fun i l -> Printf.printf "%4d  %s\n" (i + 1) l)
    (String.split_on_char '\n' source);
  print_newline ();
  let prog =
    match Dr_lang.Codegen.compile_result ~name:"stepping" ~file:"stepping.c" source with
    | Ok p -> p
    | Error e -> failwith e
  in
  let session = Drdebug.Session.create prog in
  let dbg = Drdebug.Debugger.create session in
  let run cmd =
    Printf.printf "(drdebug) %s\n" cmd;
    match Drdebug.Debugger.exec dbg cmd with
    | Ok out -> print_string out
    | Error e -> Printf.printf "error: %s\n" e
  in
  run "record until-fail";
  run "replay";
  run "continue";
  run "slice-failure";
  run "slice-pinball";
  run "slice-replay";
  print_endline "\nstepping through the slice (the 60-iteration noise loop is skipped):";
  let rec step n =
    if n > 50 then ()
    else
      match Drdebug.Debugger.exec dbg "sstep" with
      | Error e -> Printf.printf "error: %s\n" e
      | Ok out ->
        print_string out;
        (* examine state at each slice statement, as the paper's GUI does *)
        (match Drdebug.Debugger.exec dbg "print g" with
        | Ok v -> Printf.printf "        %s" v
        | Error _ -> ());
        if
          String.length out >= 3
          && (String.sub out 0 3 = "end"
             || String.length out >= 5 && String.sub out 0 5 = "slice"
                && String.length out > 13
                && String.sub out 0 13 = "slice replay ")
        then ()
        else step (n + 1)
  in
  step 0;
  print_endline "\nOnly statements in the slice executed; the skipped loop's";
  print_endline "side effects were restored by the relogger's injections."
