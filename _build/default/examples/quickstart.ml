(* Quickstart: the paper's Figure 5 scenario end to end.

   A two-thread program has an atomicity violation: main assumes that
   reading z, incrementing, and adding x happens atomically, but thread
   t1 modifies x concurrently.  We (1) capture a failing execution in a
   pinball, (2) replay it deterministically, (3) compute the backwards
   dynamic slice of the failing assert, and (4) read the root cause
   straight from the slice.

   Run with: dune exec examples/quickstart.exe *)

let source = {|global int x;
global int y;
global int z;
fn t1(int n) {
  y = 10;
  x = y + 1;
}
fn main() {
  int t = spawn(t1, 0);
  int k = z;
  k = k + 1;
  k = k + x;
  join(t);
  assert(k == 1, "atomic region violated");
}|}

let () =
  print_endline "== DrDebug quickstart: slicing a multi-threaded bug ==\n";
  let prog =
    match Dr_lang.Codegen.compile_result ~name:"fig5" ~file:"fig5.c" source with
    | Ok p -> p
    | Error e -> failwith e
  in
  (* find a schedule where the race bites *)
  let seed =
    let rec go seed =
      if seed > 5000 then failwith "no failing schedule found"
      else begin
        let m = Dr_machine.Machine.create prog in
        match
          Dr_machine.Driver.run ~max_steps:100_000 m
            (Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
        with
        | Dr_machine.Driver.Terminated (Dr_machine.Machine.Assert_failed _) -> seed
        | _ -> go (seed + 1)
      end
    in
    go 0
  in
  Printf.printf "found a failing schedule (seed %d)\n\n" seed;
  let session =
    Drdebug.Session.create
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
      prog
  in
  let dbg = Drdebug.Debugger.create session in
  let run cmd =
    Printf.printf "(drdebug) %s\n" cmd;
    match Drdebug.Debugger.exec dbg cmd with
    | Ok out -> print_string out
    | Error e -> Printf.printf "error: %s\n" e
  in
  run "record until-fail";
  run "replay";
  run "continue";
  run "slice-failure";
  run "slice-lines";
  print_endline "\nThe slice highlights `x = y + 1` in t1: the remote write";
  print_endline "that broke main's assumed-atomic region — the root cause."
