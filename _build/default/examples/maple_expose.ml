(* Maple integration (paper section 6): expose a hard-to-reproduce
   concurrency bug with coverage-driven active scheduling, record the
   exposing run as a pinball, and hand it to DrDebug for cyclic
   debugging.

   The bug here is an order violation that almost never fires under
   plain schedules: main reads x before the worker's write in virtually
   every free-running interleaving.

   Run with: dune exec examples/maple_expose.exe *)

let source = {|global int x;
global int warmup;
fn t1(int n) {
  // the worker does some setup first, so its write lands late
  for (int i = 0; i < 30; i = i + 1) {
    warmup = warmup + i;
  }
  x = 1;
}
fn main() {
  int t = spawn(t1, 0);
  int k = x;
  join(t);
  assert(k == 0, "main read the worker's write");
}|}

let () =
  print_endline "== Maple + DrDebug: exposing and debugging an order violation ==\n";
  let prog =
    match Dr_lang.Codegen.compile_result ~name:"order-bug" ~file:"order.c" source with
    | Ok p -> p
    | Error e -> failwith e
  in
  (* show that plain schedules pass *)
  let passes = ref 0 in
  for seed = 1 to 20 do
    let m = Dr_machine.Machine.create prog in
    match
      Dr_machine.Driver.run ~max_steps:100_000 m
        (Dr_machine.Driver.Seeded { seed; max_quantum = 8 })
    with
    | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> incr passes
    | _ -> ()
  done;
  Printf.printf "plain seeded schedules: %d/20 runs pass (bug hides)\n\n" !passes;
  (* profile + predict + actively schedule *)
  let obs = Dr_maple.Profiler.profile prog in
  Printf.printf "maple profiler: %d observed iRoots, %d predicted candidates\n"
    (List.length obs.Dr_maple.Profiler.observed)
    (List.length obs.Dr_maple.Profiler.candidates);
  match Dr_maple.Active.expose prog with
  | None -> print_endline "maple: no bug exposed"
  | Some exposed ->
    Printf.printf "maple active scheduler exposed the bug: %s\n"
      (Format.asprintf "%a" Dr_machine.Machine.pp_outcome
         exposed.Dr_maple.Active.outcome);
    Printf.printf "forced iRoot: %s (attempts: %d)\n\n"
      (Dr_maple.Iroot.to_string exposed.Dr_maple.Active.failing_iroot)
      (List.length exposed.Dr_maple.Active.attempts);
    (* the pinball recorded during the exposing run drives DrDebug *)
    let session = Drdebug.Session.create prog in
    Drdebug.Session.load_pinball session exposed.Dr_maple.Active.pinball;
    let dbg = Drdebug.Debugger.create session in
    let run cmd =
      Printf.printf "(drdebug) %s\n" cmd;
      match Drdebug.Debugger.exec dbg cmd with
      | Ok out -> print_string out
      | Error e -> Printf.printf "error: %s\n" e
    in
    run "replay";
    run "continue";
    run "print k";
    run "slice-failure";
    run "slice-lines";
    print_endline "\nEvery replay of the Maple pinball reproduces the bug:";
    run "replay";
    run "continue"
