(* Case study: the pbzip2 data race (paper Table 1, row 1).

   The model reproduces the real bug's structure: the main thread tears
   down the FIFO while compressor threads still use its mutex.  We drive
   the full cyclic-debugging loop of the paper's Figure 2:

   1. capture the buggy execution region (root cause -> failure),
   2. replay it under the debugger, reproducing the failure exactly,
   3. set a breakpoint and inspect state across iterations,
   4. slice the failure and confirm the root cause,
   5. squeeze the region into a slice pinball and re-check its size.

   Run with: dune exec examples/bug_hunt_pbzip2.exe *)

let () =
  print_endline "== DrDebug case study: pbzip2 fifo->mut use-after-free ==\n";
  let bug = Option.get (Dr_workloads.Bugs.find "pbzip2") in
  Printf.printf "program: %s\nbug: %s\n\n" bug.Dr_workloads.Bugs.program_description
    bug.Dr_workloads.Bugs.description;
  let seed, _ = Option.get (Dr_workloads.Bugs.find_failing_seed bug) in
  let prog = Dr_workloads.Bugs.compile bug in
  let session =
    Drdebug.Session.create
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
      prog
  in
  let dbg = Drdebug.Debugger.create session in
  let run cmd =
    Printf.printf "(drdebug) %s\n" cmd;
    match Drdebug.Debugger.exec dbg cmd with
    | Ok out -> print_string out
    | Error e -> Printf.printf "error: %s\n" e
  in
  (* 1. capture *)
  run "record until-fail";
  (* 2. first debug iteration: reproduce and look around *)
  run "replay";
  run "continue";
  run "info threads";
  run "print fifo_freed";
  run "print consumed";
  (* 3. second debug iteration: same pinball, earlier breakpoint *)
  run "replay";
  run (Printf.sprintf "break %d" bug.Dr_workloads.Bugs.root_cause_line);
  run "continue";
  run "print produced";
  run "backtrace";
  (* 4. slice the failure *)
  run "continue";
  run "slice-failure";
  run "info slice";
  run "slice-lines";
  (* 5. execution slice *)
  run "slice-pinball";
  run "info pinball";
  Printf.printf
    "\nThe slice pins the root cause to line %d (`fifo_freed = 1;`):\n\
     main frees the FIFO before the compressors are done.\n"
    bug.Dr_workloads.Bugs.root_cause_line
