(* On-demand re-execution driver tests (Reexec): the qcheck property
   that re-exec slices equal indexed slices on generated programs over
   shuffled criteria x 1/2/4 domains, a handwritten corpus case whose
   checkpoint boundaries land mid-block (open control-dependence stack
   and mid-call at the window edge), byte-identity of every re-derived
   record against the stored trace, the governed ladder's reexec rung,
   watchdog truncation through the reexec driver, and LRU cache /
   peak-memory accounting. *)

module Slicer = Dr_slicing.Slicer
module Reexec = Dr_slicing.Reexec
module Lp = Dr_slicing.Lp
module Global_trace = Dr_slicing.Global_trace
module Pool = Dr_util.Pool

let compile ?(name = "test") src =
  match Dr_lang.Codegen.compile_result ~name src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let log_whole ?policy ?(seed = 3) prog =
  let policy =
    match policy with
    | Some p -> p
    | None -> Dr_machine.Driver.Seeded { seed; max_quantum = 4 }
  in
  match
    Dr_pinplay.Logger.log ~policy ~nondet_seed:1 prog Dr_pinplay.Logger.Whole
  with
  | Ok (pb, _) -> pb
  | Error e -> Alcotest.failf "logging failed: %a" Dr_pinplay.Logger.pp_error e

(* load-record criteria spread over the trace, same recipe as the bench *)
let criteria_of gt ~n =
  let len = Global_trace.length gt in
  let picks = ref [] and found = ref 0 and pos = ref (len - 1) in
  while !found < n && !pos > 0 do
    if Dr_slicing.Trace.is_load (Global_trace.record gt !pos) then begin
      picks := !pos :: !picks;
      incr found
    end;
    decr pos
  done;
  let picks = if !picks = [] then [ len - 1 ] else List.rev !picks in
  List.map (fun p -> { Slicer.crit_pos = p; crit_locs = None }) picks

let canonical_edges (s : Slicer.t) =
  let tag = function
    | Slicer.Data l -> (0, l)
    | Slicer.Data_bypassed l -> (1, l)
    | Slicer.Control -> (2, -1)
  in
  let l =
    Array.to_list
      (Array.map
         (fun (e : Slicer.edge) ->
           let k, loc = tag e.Slicer.kind in
           (e.Slicer.from_pos, e.Slicer.to_pos, k, loc))
         s.Slicer.edges)
  in
  List.sort compare l

(* positions + edges only: the reexec driver runs the plain-scan
   traversal, so visited/skip stats legitimately differ from indexed *)
let slice_eq (a : Slicer.t) (b : Slicer.t) =
  a.Slicer.positions = b.Slicer.positions
  && canonical_edges a = canonical_edges b
  && a.Slicer.stats.Slicer.truncated = b.Slicer.stats.Slicer.truncated

type fx = {
  f_name : string;
  f_prog : Dr_isa.Program.t;
  f_pb : Dr_pinplay.Pinball.t;
  f_cfg : Dr_cfg.Cfg.t;
  f_gt : Global_trace.t;
  f_lp : Lp.t;
  f_crits : Slicer.criterion list;
  f_rx : Reexec.t;
}

(* Generated programs, as in the bench: wide enough for real traces,
   several seeds, keep the ones that compile and produce work.  The
   checkpoint interval is a prime-ish fraction of the trace so window
   edges do not line up with loop iterations or LP blocks. *)
let gen_cfg =
  { Dr_lang.Gen.max_stmts = 8; max_depth = 3; max_helpers = 3;
    with_threads = true; max_workers = 1 }

let make_fixture ~name ?policy ?seed prog =
  let pb = log_whole ?policy ?seed prog in
  let c = Dr_slicing.Collector.collect ~refine:true prog pb in
  let gt = Global_trace.construct c in
  let n = Global_trace.length gt in
  if n < 50 then None
  else
    let lp = Lp.prepare gt in
    let interval = max 7 (n / 11) in
    let rx =
      Reexec.create ~cfg:c.Dr_slicing.Collector.cfg ~ckpt_interval:interval
        ~cache_windows:3 prog pb
    in
    Some
      { f_name = name; f_prog = prog; f_pb = pb;
        f_cfg = c.Dr_slicing.Collector.cfg; f_gt = gt; f_lp = lp;
        f_crits = criteria_of gt ~n:6; f_rx = rx }

let fixtures =
  lazy
    (let of_seed seed =
       let src = Dr_lang.Gen.program ~cfg:gen_cfg seed in
       match Dr_lang.Codegen.compile_result ~name:(Printf.sprintf "gen-%d" seed) src with
       | Error _ -> None
       | Ok prog -> make_fixture ~name:(Printf.sprintf "gen-%d" seed) ~seed prog
     in
     let fxs = List.filter_map of_seed [ 1; 2; 3; 5; 8; 13; 21 ] in
     let fxs = List.filteri (fun i _ -> i < 3) fxs in
     if List.length fxs < 2 then
       Alcotest.fail "fewer than two generated fixtures survived";
     fxs)

(* ---- property: reexec = indexed, shuffled criteria x 1/2/4 domains ---- *)

let prop_reexec_matches_indexed =
  QCheck.Test.make
    ~name:"reexec slices = indexed slices, shuffled criteria x 1/2/4 domains"
    ~count:8
    QCheck.(pair (int_range 1 4) (int_bound 10_000))
    (fun (domains, shuffle_seed) ->
      let fxs = Lazy.force fixtures in
      let fx = List.nth fxs (shuffle_seed mod List.length fxs) in
      let rng = Random.State.make [| shuffle_seed |] in
      let shuffled =
        List.map (fun c -> (Random.State.bits rng, c)) fx.f_crits
        |> List.sort compare |> List.map snd
      in
      Pool.with_pool ~domains (fun pool ->
          let indexed = Slicer.compute_many ~lp:fx.f_lp ~pool fx.f_gt shuffled in
          List.for_all2
            (fun crit (ix : Slicer.t) ->
              let re =
                Slicer.compute ~lp:fx.f_lp ~driver:(`Reexec fx.f_rx) fx.f_gt
                  crit
              in
              ix.Slicer.criterion = crit && slice_eq re ix)
            shuffled indexed))

(* ---- handwritten corpus case: checkpoint boundary mid-block ---- *)

let corpus_fixture =
  lazy
    (match
       Dr_conformance.Fuzz.load_corpus_case "corpus/reexec-window-boundary.json"
     with
    | Error e -> Alcotest.failf "corpus case unreadable: %s" e
    | Ok cc ->
      let src = String.concat "\n" (Array.to_list cc.Dr_conformance.Fuzz.cc_lines) in
      let prog = compile ~name:"reexec-window-boundary" src in
      let pb =
        log_whole
          ~policy:(Dr_conformance.Sched.policy cc.Dr_conformance.Fuzz.cc_sched)
          prog
      in
      let c = Dr_slicing.Collector.collect ~refine:true prog pb in
      let gt = Global_trace.construct c in
      (* a deliberately prime interval: 7 never divides the 9- and
         11-iteration call-bearing loops, so checkpoints land mid-call
         with the cd stack open *)
      let rx =
        Reexec.create ~cfg:c.Dr_slicing.Collector.cfg ~ckpt_interval:7
          ~cache_windows:2 prog pb
      in
      (prog, gt, Lp.prepare gt, rx))

let pos_of_gseq gt =
  let n = Global_trace.length gt in
  let inv = Array.make n (-1) in
  for p = 0 to n - 1 do
    inv.(Global_trace.gseq_at gt p) <- p
  done;
  inv

let test_corpus_boundary_mid_block () =
  let _, gt, lp, rx = Lazy.force corpus_fixture in
  let n = Global_trace.length gt in
  Alcotest.(check int) "reexec sees every record" n (Reexec.length rx);
  Alcotest.(check bool) "several windows" true (Reexec.num_checkpoints rx > 4);
  (* at least one checkpoint boundary must fall strictly inside an LP
     block of the merged trace — the case exists to exercise exactly
     that window edge *)
  let inv = pos_of_gseq gt in
  let mid_block = ref 0 in
  for w = 1 to Reexec.num_checkpoints rx - 1 do
    let g = w * 7 in
    if g < n then begin
      let p = inv.(g) in
      let lo, _ = Lp.block_range lp (Lp.block_of lp p) in
      if p > lo then incr mid_block
    end
  done;
  Alcotest.(check bool) "a checkpoint boundary falls mid-block" true
    (!mid_block > 0)

let test_corpus_records_byte_identical () =
  let _, gt, _, rx = Lazy.force corpus_fixture in
  (* the strongest form of the driver contract: every re-derived record
     equals the stored one, field for field, in any lookup order *)
  let n = Global_trace.length gt in
  for p = n - 1 downto 0 do
    let stored = Global_trace.record gt p in
    let rederived = Reexec.record rx ~gseq:(Global_trace.gseq_at gt p) in
    if stored <> rederived then
      Alcotest.failf "record at position %d differs after re-execution" p
  done

let test_corpus_slices_match_indexed () =
  let _, gt, lp, rx = Lazy.force corpus_fixture in
  List.iter
    (fun crit ->
      let ix = Slicer.compute ~lp gt crit in
      let re = Slicer.compute ~lp ~driver:(`Reexec rx) gt crit in
      Alcotest.(check bool) "slice identical across the window boundary" true
        (slice_eq re ix))
    (criteria_of gt ~n:8)

(* ---- governed ladder: the reexec rung ---- *)

let test_governed_degrades_to_reexec () =
  let fx = List.hd (Lazy.force fixtures) in
  let crit = List.nth fx.f_crits (List.length fx.f_crits - 1) in
  let clean = Slicer.compute ~lp:fx.f_lp fx.f_gt crit in
  let budget = Dr_util.Budget.create ~mem_bytes:0 () in
  let g = Slicer.compute_governed ~reexec:fx.f_rx ~budget fx.f_gt crit in
  Alcotest.(check string) "rung" "reexec" (Slicer.rung_name g.Slicer.g_rung);
  Alcotest.(check bool) "degradation recorded" true
    (Dr_util.Budget.degradations budget <> []);
  Alcotest.(check bool) "degraded slice identical" true
    (slice_eq g.Slicer.g_slice clean)

(* ---- watchdog truncation through the reexec driver ---- *)

let test_watchdog_truncates_reexec () =
  let fx = List.hd (Lazy.force fixtures) in
  let crit = List.hd fx.f_crits in
  let clean = Slicer.compute ~lp:fx.f_lp ~driver:(`Reexec fx.f_rx) fx.f_gt crit in
  Alcotest.(check bool) "clean run not truncated" false
    clean.Slicer.stats.Slicer.truncated;
  let wd = Dr_util.Budget.watchdog ~what:"test" ~limit_s:0.0 in
  ignore (Dr_util.Budget.expired wd);
  let partial =
    Slicer.compute ~lp:fx.f_lp ~watchdog:wd ~driver:(`Reexec fx.f_rx) fx.f_gt
      crit
  in
  Alcotest.(check bool) "marked truncated" true
    partial.Slicer.stats.Slicer.truncated;
  Array.iter
    (fun p ->
      if not (Array.mem p clean.Slicer.positions) then
        Alcotest.failf "truncated reexec slice has spurious position %d" p)
    partial.Slicer.positions

(* ---- LRU cache and peak-memory accounting ---- *)

let test_cache_and_peak_memory () =
  let fx = List.hd (Lazy.force fixtures) in
  let n = Global_trace.length fx.f_gt in
  let interval = max 4 (n / 8) in
  (* a one-window cache over ~8 windows: the backward traversal must
     thrash it, and peak residency must still stay near one window *)
  let rx =
    Reexec.create ~cfg:fx.f_cfg ~ckpt_interval:interval ~cache_windows:1
      fx.f_prog fx.f_pb
  in
  List.iter
    (fun crit ->
      let ix = Slicer.compute ~lp:fx.f_lp fx.f_gt crit in
      let re = Slicer.compute ~lp:fx.f_lp ~driver:(`Reexec rx) fx.f_gt crit in
      Alcotest.(check bool) "thrashed cache still identical" true
        (slice_eq re ix))
    fx.f_crits;
  let s = Reexec.stats rx in
  Alcotest.(check bool) "windows were re-derived" true
    (s.Reexec.windows_rederived >= 1);
  Alcotest.(check bool) "records accounted" true
    (s.Reexec.records_rederived >= s.Reexec.windows_rederived);
  (* per-window byte ceiling from the stored trace *)
  let window_bytes = Array.make (Reexec.num_checkpoints rx) 0 in
  for p = 0 to n - 1 do
    let g = Global_trace.gseq_at fx.f_gt p in
    let w = g / interval in
    window_bytes.(w) <-
      window_bytes.(w)
      + Dr_slicing.Segment_store.record_bytes (Global_trace.record fx.f_gt p)
  done;
  let max_window = Array.fold_left max 0 window_bytes in
  let total = Array.fold_left ( + ) 0 window_bytes in
  (* eviction runs after insertion, so at most two windows are ever
     resident with a one-window cache *)
  Alcotest.(check bool) "peak bounded by two windows" true
    (s.Reexec.peak_resident_bytes <= 2 * max_window);
  if Reexec.num_checkpoints rx > 2 then
    Alcotest.(check bool) "peak below whole-trace bytes" true
      (s.Reexec.peak_resident_bytes < total)

let () =
  Alcotest.run "reexec"
    [ ( "property",
        [ QCheck_alcotest.to_alcotest prop_reexec_matches_indexed ] );
      ( "window boundary corpus",
        [ Alcotest.test_case "checkpoint lands mid-block" `Quick
            test_corpus_boundary_mid_block;
          Alcotest.test_case "records byte-identical" `Quick
            test_corpus_records_byte_identical;
          Alcotest.test_case "slices match indexed" `Quick
            test_corpus_slices_match_indexed ] );
      ( "contract",
        [ Alcotest.test_case "governed ladder reexec rung" `Quick
            test_governed_degrades_to_reexec;
          Alcotest.test_case "watchdog truncates" `Quick
            test_watchdog_truncates_reexec;
          Alcotest.test_case "LRU cache and peak memory" `Quick
            test_cache_and_peak_memory ] ) ]
