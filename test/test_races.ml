(* Tests for the race-detection stack: the static lockset +
   happens-before detector (Dr_static.Race), the dynamic lockset checker
   (Dr_conformance.Racecheck), the spawn-target Mov-chain chase in the
   callgraph, and the statically seeded Maple campaign over the seeded
   racy workloads. *)

module Race = Dr_static.Race
module Racecheck = Dr_conformance.Racecheck

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"races-test" src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile failed: %s" e

let asm src =
  match Dr_isa.Asm.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "asm parse failed: %s" e

(* ---- static detector ---- *)

let racy_pair_src =
  {|
global int m;
global int hits;
global int misses;

fn worker(int id) {
  for (int i = 0; i < 4; i = i + 1) {
    lock(&m);
    hits = hits + 1;
    unlock(&m);
    misses = misses + id;
  }
}

fn main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a);
  join(b);
  print(hits);
  print(misses);
}
|}

let test_lockset_clears_protected () =
  let prog = compile racy_pair_src in
  let r = Race.analyze prog in
  Alcotest.(check bool) "fully resolved" true (Race.fully_resolved r);
  Alcotest.(check bool) "has candidates" true (r.Race.candidates <> []);
  (* the mutex-protected counter never pairs with itself: no candidate
     has overlapping locksets, and some candidate is bare-vs-bare *)
  List.iter
    (fun (p : Race.pair) ->
      Alcotest.(check bool) "locksets disjoint" true
        (not
           (List.exists
              (fun l -> List.mem l p.Race.p_lockset_b)
              p.Race.p_lockset_a)))
    r.Race.candidates;
  Alcotest.(check bool) "a bare-vs-bare pair exists" true
    (List.exists
       (fun (p : Race.pair) ->
         p.Race.p_lockset_a = [] && p.Race.p_lockset_b = [])
       r.Race.candidates)

let test_no_spawn_no_candidates () =
  let prog =
    compile
      {|
global int x;
fn main() {
  for (int i = 0; i < 8; i = i + 1) {
    x = x + 1;
  }
  print(x);
}
|}
  in
  let r = Race.analyze prog in
  Alcotest.(check int) "no threads, no races" 0 (List.length r.Race.candidates)

let test_spawn_join_clean () =
  (* one worker, spawned once and joined: the spawn-before / join-after
     prunes plus the single-root rule clear every pair *)
  let prog =
    compile
      {|
global int buf[16];
global int done;

fn worker(int id) {
  int sum = 0;
  for (int i = 0; i < 16; i = i + 1) {
    buf[i] = buf[i] + id;
    sum = sum + buf[i];
  }
  done = sum;
}

fn main() {
  for (int i = 0; i < 16; i = i + 1) {
    buf[i] = i * 3;
  }
  int t = spawn(worker, 7);
  join(t);
  print(done);
}
|}
  in
  let r = Race.analyze prog in
  Alcotest.(check int) "spawn/join ordered" 0 (List.length r.Race.candidates)

(* ---- callgraph spawn-target Mov-chain chase (satellite 2) ---- *)

let spawn_sites (cg : Dr_static.Callgraph.t) =
  List.filter
    (fun (s : Dr_static.Callgraph.site) ->
      s.Dr_static.Callgraph.kind = Dr_static.Callgraph.Spawn)
    cg.Dr_static.Callgraph.sites

let test_movchain_spawn_singleton () =
  (* two address-taken workers; the spawn target flows through a
     register-copy chain — the chase must pin the single real target *)
  let prog =
    asm
      {|
.entry main
worker1:
  push fp
  mov r1, $1
  sys print
  halt
worker2:
  push fp
  mov r1, $2
  sys print
  halt
main:
  mov r3, @worker1
  mov r4, @worker2
  mov r1, r3
  mov r2, $0
  sys spawn
  halt
|}
  in
  let cfg = Dr_cfg.Cfg.build prog in
  let cg = Dr_static.Callgraph.build prog ~cfg in
  Alcotest.(check int) "both workers address-taken" 2
    (List.length cg.Dr_static.Callgraph.address_taken);
  match spawn_sites cg with
  | [ s ] ->
    Alcotest.(check int) "chased to one target" 1
      (List.length s.Dr_static.Callgraph.callees)
  | sites -> Alcotest.failf "expected 1 spawn site, got %d" (List.length sites)

let test_movchain_clobber_widens () =
  (* same shape, but the chain passes through arithmetic: the chase must
     give up and fall back to all address-taken functions *)
  let prog =
    asm
      {|
.entry main
worker1:
  push fp
  mov r1, $1
  sys print
  halt
worker2:
  push fp
  mov r1, $2
  sys print
  halt
main:
  mov r3, @worker1
  mov r4, @worker2
  add r1, r3, $0
  mov r2, $0
  sys spawn
  halt
|}
  in
  let cfg = Dr_cfg.Cfg.build prog in
  let cg = Dr_static.Callgraph.build prog ~cfg in
  match spawn_sites cg with
  | [ s ] ->
    Alcotest.(check int) "widened to all address-taken" 2
      (List.length s.Dr_static.Callgraph.callees)
  | sites -> Alcotest.failf "expected 1 spawn site, got %d" (List.length sites)

(* ---- dynamic checker ---- *)

let test_racecheck_flags_bare_counter () =
  let prog = compile racy_pair_src in
  let r = Race.analyze prog in
  let result, stop =
    Racecheck.observe_run prog
      ~policy:(Dr_machine.Driver.Round_robin { quantum = 1 })
  in
  (match stop with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> ()
  | _ -> Alcotest.fail "run did not exit");
  Alcotest.(check bool) "dynamic races observed" true
    (result.Racecheck.races <> []);
  (* the oracle-8 relation: every dynamic pair is a static candidate *)
  List.iter
    (fun (p, q) ->
      Alcotest.(check bool)
        (Printf.sprintf "(%d,%d) in static set" p q)
        true (Race.is_candidate r p q))
    result.Racecheck.pairs

let test_racecheck_signal_orders () =
  (* a correct condvar handshake: the signal's vector-clock merge orders
     the pre-signal write against the post-wake read, so the checker
     must stay silent on every schedule *)
  let prog =
    compile
      {|
global int m;
global int cv;
global int ready;
global int data;

fn waiter(int id) {
  lock(&m);
  if (ready == 0) {
    wait(&cv, &m);
  }
  unlock(&m);
  int v = data;
  print(v);
}

fn main() {
  int t = spawn(waiter, 1);
  data = 42;
  int spin = 0;
  for (int i = 0; i < 60; i = i + 1) {
    spin = spin + 1;
  }
  lock(&m);
  ready = 1;
  signal(&cv);
  unlock(&m);
  join(t);
  print(spin);
}
|}
  in
  List.iter
    (fun q ->
      let result, stop =
        Racecheck.observe_run prog
          ~policy:(Dr_machine.Driver.Round_robin { quantum = q })
      in
      (match stop with
      | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> ()
      | _ -> Alcotest.fail "handshake did not exit");
      Alcotest.(check int)
        (Printf.sprintf "no races at quantum %d" q)
        0
        (List.length result.Racecheck.races))
    [ 1; 2; 5 ]

(* ---- campaign seeding ---- *)

let test_seed_candidates_orderings () =
  let prog = compile racy_pair_src in
  let covered =
    [ { Dr_maple.Iroot.pre = 3; post = 7; idiom = Dr_maple.Iroot.RW } ]
  in
  let out =
    Dr_maple.Active.seed_candidates ~prog ~static_pairs:[ (3, 7); (9, 9) ]
      covered
  in
  (* (3,7) already covered in that order: only the reverse plus the
     self-pair are synthesized *)
  Alcotest.(check int) "two synthesized" 2 (List.length out);
  Alcotest.(check bool) "reverse ordering present" true
    (List.exists
       (fun (ir : Dr_maple.Iroot.t) ->
         ir.Dr_maple.Iroot.pre = 7 && ir.Dr_maple.Iroot.post = 3)
       out);
  Alcotest.(check bool) "self pair present" true
    (List.exists
       (fun (ir : Dr_maple.Iroot.t) ->
         ir.Dr_maple.Iroot.pre = 9 && ir.Dr_maple.Iroot.post = 9)
       out)

(* ---- the seeded racy workloads, end to end (satellite 3) ----

   For every bug in the registry: the static detector ranks a candidate
   pair on the root-cause line; a statically seeded Maple campaign
   exposes the failure; and the dynamic races observed (on the exposed
   pinball, or on a plain round-robin run for bugs whose exposing
   schedule suppresses the racy access) are all static candidates. *)

let test_bugs_statically_ranked () =
  List.iter
    (fun (b : Dr_workloads.Bugs.t) ->
      let prog = Dr_workloads.Bugs.compile b in
      let r = Race.analyze prog in
      Alcotest.(check bool)
        (b.Dr_workloads.Bugs.name ^ " fully resolved")
        true (Race.fully_resolved r);
      Alcotest.(check bool)
        (b.Dr_workloads.Bugs.name ^ " has candidates")
        true
        (r.Race.candidates <> []);
      let line pc =
        Option.value ~default:(-1)
          (Dr_isa.Debug_info.line_of_pc prog.Dr_isa.Program.debug pc)
      in
      let pair_lines =
        List.concat_map
          (fun (p, q) -> [ line p; line q ])
          (Race.candidate_pairs r)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s root cause (line %d) ranked"
           b.Dr_workloads.Bugs.name b.Dr_workloads.Bugs.root_cause_line)
        true
        (List.mem b.Dr_workloads.Bugs.root_cause_line pair_lines))
    Dr_workloads.Bugs.all

let test_bugs_dynamically_confirmed () =
  List.iter
    (fun (b : Dr_workloads.Bugs.t) ->
      let name = b.Dr_workloads.Bugs.name in
      let prog = Dr_workloads.Bugs.compile b in
      let r = Race.analyze prog in
      let static_pairs = Race.candidate_pairs r in
      match Dr_maple.Active.expose ~static_pairs prog with
      | None -> Alcotest.failf "%s: seeded campaign did not expose" name
      | Some e ->
        let on_pinball =
          Racecheck.observe_pinball prog e.Dr_maple.Active.pinball
        in
        let on_rr, _ =
          Racecheck.observe_run prog
            ~policy:(Dr_machine.Driver.Round_robin { quantum = 1 })
        in
        let dyn =
          List.sort_uniq compare
            (on_pinball.Racecheck.pairs @ on_rr.Racecheck.pairs)
        in
        Alcotest.(check bool) (name ^ " race observed dynamically") true
          (dyn <> []);
        List.iter
          (fun (p, q) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: dynamic (%d,%d) in static set" name p q)
              true (Race.is_candidate r p q))
          dyn)
    Dr_workloads.Bugs.all

(* ---- lint pass selection (satellite 1) ---- *)

let test_lint_pass_subset () =
  let prog = compile racy_pair_src in
  let l = Dr_static.Lint.run ~passes:[ "races" ] prog in
  Alcotest.(check (list string)) "only races ran" [ "races" ]
    l.Dr_static.Lint.passes_run;
  Alcotest.(check int) "total counts races only"
    (List.length l.Dr_static.Lint.races)
    (Dr_static.Lint.findings_total l);
  Alcotest.check_raises "unknown pass rejected"
    (Invalid_argument "Lint.run: unknown pass \"nope\"") (fun () ->
      ignore (Dr_static.Lint.run ~passes:[ "nope" ] prog))

let () =
  Alcotest.run "races"
    [ ( "static",
        [ Alcotest.test_case "lockset clears protected" `Quick
            test_lockset_clears_protected;
          Alcotest.test_case "no spawn, no candidates" `Quick
            test_no_spawn_no_candidates;
          Alcotest.test_case "spawn/join ordered" `Quick test_spawn_join_clean
        ] );
      ( "callgraph",
        [ Alcotest.test_case "mov-chain spawn singleton" `Quick
            test_movchain_spawn_singleton;
          Alcotest.test_case "clobbered chain widens" `Quick
            test_movchain_clobber_widens ] );
      ( "dynamic",
        [ Alcotest.test_case "bare counter flagged" `Quick
            test_racecheck_flags_bare_counter;
          Alcotest.test_case "signal orders handshake" `Quick
            test_racecheck_signal_orders ] );
      ( "campaign",
        [ Alcotest.test_case "seed candidate orderings" `Quick
            test_seed_candidates_orderings;
          Alcotest.test_case "bugs statically ranked" `Quick
            test_bugs_statically_ranked;
          Alcotest.test_case "bugs dynamically confirmed" `Quick
            test_bugs_dynamically_confirmed ] );
      ( "lint",
        [ Alcotest.test_case "pass subset" `Quick test_lint_pass_subset ] ) ]
