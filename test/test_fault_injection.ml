(* Fault-injection harness for the pinball container (the robustness
   counterpart of test_pinplay): systematic truncation at every byte
   boundary, seeded bit flips, hostile tiny inputs, v1 compatibility,
   and divergence localization via execution digests.

   The invariant under test: no corrupted pinball may decode silently,
   crash with an unstructured exception, or make the decoder allocate
   memory proportional to anything but the input size.  Every mutation
   must surface as a structured [Pinball_error]. *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"fault" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

(* Two racing threads plus rand/read syscalls: exercises the snapshot,
   schedule, syscall, and digest sections. *)
let racy_src =
  {|
global int x;
fn t2(int n) {
  int k = x;
  k = k + 1;
  x = k;
}
fn main() {
  int t = spawn(t2, 0);
  int k = x;
  k = k + 1;
  x = k;
  join(t);
  print(x);
  print(rand() % 100);
  print(read());
}
|}

let straightline_src =
  {|
global int a;
global int b;
global int c;
fn main() {
  a = 1;
  b = 2;
  b = b * 10;
  b = b + 3;
  c = a + b;
  print(c);
}
|}

let log_whole ?(digest_interval = 1) src =
  let prog = compile src in
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed = 3; max_quantum = 4 })
      ~input:[| 55 |] ~digest_interval prog Dr_pinplay.Logger.Whole
  with
  | Ok (pb, _) -> (prog, pb)
  | Error e -> Alcotest.failf "logging failed: %a" Dr_pinplay.Logger.pp_error e

(* A slice pinball (carries injections + slice-events sections). *)
let slice_pinball () =
  let prog = compile straightline_src in
  let pb, _ =
    match Dr_pinplay.Logger.log prog Dr_pinplay.Logger.Whole with
    | Ok r -> r
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let trace = ref [] in
  let hooks =
    { Dr_machine.Driver.on_event =
        (fun ev -> trace := (ev.Dr_machine.Event.tid, ev.Dr_machine.Event.pc) :: !trace) }
  in
  let _ = Dr_pinplay.Replayer.replay ~hooks prog pb in
  let trace = Array.of_list (List.rev !trace) in
  let _, spc = trace.(5) and _, epc = trace.(10) in
  Dr_pinplay.Relogger.relog prog pb
    ~exclusions:
      [ { Dr_pinplay.Relogger.x_tid = 0; x_start_pc = spc; x_start_instance = 1;
          x_end = Some (epc, 1) } ]

(* Decoding corrupted bytes must yield exactly a structured error —
   anything else (success, Invalid_argument, Out_of_memory, ...) fails. *)
let expect_structured what s =
  match Dr_pinplay.Pinball.of_bytes s with
  | _ -> Alcotest.failf "%s: corrupt pinball decoded without error" what
  | exception Dr_pinplay.Pinball.Pinball_error _ -> ()
  | exception e ->
    Alcotest.failf "%s: unstructured exception %s" what (Printexc.to_string e)

let flip_bit s i bit =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  Bytes.to_string b

(* ---- systematic truncation ---- *)

let test_truncation_region () =
  let _, pb = log_whole racy_src in
  let bytes = Dr_pinplay.Pinball.to_bytes pb in
  for len = 0 to String.length bytes - 1 do
    expect_structured
      (Printf.sprintf "region truncated to %d/%d" len (String.length bytes))
      (String.sub bytes 0 len)
  done

let test_truncation_slice () =
  let spb = slice_pinball () in
  Alcotest.(check bool) "is a slice" true
    (spb.Dr_pinplay.Pinball.kind = Dr_pinplay.Pinball.Slice);
  let bytes = Dr_pinplay.Pinball.to_bytes spb in
  for len = 0 to String.length bytes - 1 do
    expect_structured
      (Printf.sprintf "slice truncated to %d/%d" len (String.length bytes))
      (String.sub bytes 0 len)
  done

(* ---- seeded bit flips ---- *)

(* 256 deterministic single-bit flips spread over the container.  The
   whole-file trailer CRC32 guarantees every one is caught (a flip in
   the trailer itself mismatches too). *)
let test_bit_flips () =
  let _, pb = log_whole racy_src in
  let bytes = Dr_pinplay.Pinball.to_bytes pb in
  let n = String.length bytes in
  let state = ref 42 in
  let next () =
    state := ((!state * 2685821657736338717) + 1442695040888963407) land max_int;
    !state
  in
  for k = 1 to 256 do
    let i = next () mod n in
    let bit = next () mod 8 in
    let mutated = flip_bit bytes i bit in
    expect_structured
      (Printf.sprintf "flip #%d (byte %d bit %d)" k i bit)
      mutated;
    (* verify_bytes must agree, without raising *)
    if k mod 32 = 0 then
      Alcotest.(check bool)
        (Printf.sprintf "verify_bytes flags flip #%d" k)
        false
        (Dr_pinplay.Pinball.report_ok (Dr_pinplay.Pinball.verify_bytes mutated))
  done

(* ---- hostile tiny inputs: structured errors, bounded allocation ---- *)

let test_tiny_inputs () =
  expect_structured "empty" "";
  expect_structured "single byte" "\x00";
  expect_structured "bad magic" "\x05WRONG";
  expect_structured "magic only v1" "\x05DRPB1";
  expect_structured "magic only v2" "\x05DRPB2";
  (* v1 body whose first varint claims a ~2^62 program-name length: must
     fail against the remaining-input budget, not allocate. *)
  expect_structured "huge v1 string length"
    ("\x05DRPB1" ^ String.make 8 '\xff' ^ "\x3f");
  (* v1 body with a plausible name but an absurd schedule count *)
  let e = Dr_util.Codec.encoder () in
  Dr_util.Codec.put_string e "DRPB1";
  Dr_util.Codec.put_string e "prog";
  Dr_util.Codec.put_uint e 0 (* kind *);
  Dr_util.Codec.put_uint e 0 (* skip *);
  Dr_util.Codec.put_uint e 0 (* length *);
  Dr_util.Codec.put_uint e (1 lsl 50) (* snapshot decode sees huge count *);
  expect_structured "huge v1 count" (Dr_util.Codec.to_string e)

(* ---- trailing garbage ---- *)

let test_trailing_bytes () =
  let _, pb = log_whole racy_src in
  expect_structured "v2 + trailing byte" (Dr_pinplay.Pinball.to_bytes pb ^ "\x00");
  expect_structured "v1 + trailing byte" (Dr_pinplay.Pinball.to_bytes_v1 pb ^ "\x00")

(* ---- v1 compatibility + migrate ---- *)

let test_v1_roundtrip () =
  let _, pb = log_whole ~digest_interval:0 racy_src in
  let pb' = Dr_pinplay.Pinball.of_bytes (Dr_pinplay.Pinball.to_bytes_v1 pb) in
  Alcotest.(check bool) "v1 round-trip equals v2 serialization" true
    (Dr_pinplay.Pinball.to_bytes pb = Dr_pinplay.Pinball.to_bytes pb')

let test_migrate () =
  let _, pb = log_whole ~digest_interval:0 racy_src in
  let src = Filename.temp_file "drdebug" ".v1.pinball" in
  let dst = Filename.temp_file "drdebug" ".v2.pinball" in
  Fun.protect
    ~finally:(fun () -> Sys.remove src; Sys.remove dst)
    (fun () ->
      let oc = open_out_bin src in
      output_string oc (Dr_pinplay.Pinball.to_bytes_v1 pb);
      close_out oc;
      let r1 = Dr_pinplay.Pinball.verify_file src in
      Alcotest.(check int) "src reported as v1" 1 r1.Dr_pinplay.Pinball.r_version;
      Alcotest.(check bool) "src intact" true (Dr_pinplay.Pinball.report_ok r1);
      Dr_pinplay.Pinball.migrate ~src ~dst;
      let r2 = Dr_pinplay.Pinball.verify_file dst in
      Alcotest.(check int) "dst reported as v2" 2 r2.Dr_pinplay.Pinball.r_version;
      Alcotest.(check bool) "dst intact" true (Dr_pinplay.Pinball.report_ok r2);
      let pb' = Dr_pinplay.Pinball.load_file dst in
      Alcotest.(check bool) "migration preserves content" true
        (Dr_pinplay.Pinball.to_bytes pb = Dr_pinplay.Pinball.to_bytes pb'))

(* ---- verify report on intact input ---- *)

let test_verify_report () =
  let _, pb = log_whole racy_src in
  let bytes = Dr_pinplay.Pinball.to_bytes pb in
  let r = Dr_pinplay.Pinball.verify_bytes bytes in
  let open Dr_pinplay.Pinball in
  Alcotest.(check bool) "intact" true (report_ok r);
  Alcotest.(check int) "version" 2 r.r_version;
  Alcotest.(check bool) "trailer ok" true r.r_trailer_ok;
  Alcotest.(check bool) "has the four required sections" true
    (List.length r.r_sections >= 4);
  Alcotest.(check bool) "every section crc ok" true
    (List.for_all (fun s -> s.sr_crc_ok) r.r_sections);
  Alcotest.(check bool) "digests seen" true (r.r_digest_count > 0);
  (* corrupt one payload byte: the report localizes it to a section *)
  let payload_flip = flip_bit bytes (String.length bytes - 8) 3 in
  let r' = verify_bytes payload_flip in
  Alcotest.(check bool) "flip detected" false (report_ok r');
  Alcotest.(check bool) "problems listed" true (r'.r_problems <> [])

(* ---- divergence localization via digests ---- *)

let test_digests_verify_clean () =
  let prog, pb = log_whole racy_src in
  Alcotest.(check bool) "digests recorded" true
    (Array.length pb.Dr_pinplay.Pinball.digests > 0);
  (* an unperturbed replay must pass every digest checkpoint *)
  let _ = Dr_pinplay.Replayer.replay prog pb in
  ()

let test_perturbed_syscall_localized () =
  let prog, pb = log_whole racy_src in
  let syscalls = Array.copy pb.Dr_pinplay.Pinball.syscalls in
  Alcotest.(check bool) "has syscalls" true (Array.length syscalls > 0);
  syscalls.(0) <- syscalls.(0) + 7;
  let pb' = { pb with Dr_pinplay.Pinball.syscalls } in
  match Dr_pinplay.Replayer.replay prog pb' with
  | _ -> Alcotest.fail "perturbed replay did not diverge"
  | exception
      Dr_pinplay.Replayer.Divergence
        (Dr_pinplay.Replayer.Digest_mismatch { step; tid; _ } as d) ->
    Alcotest.(check bool) "step localized" true (step >= 1);
    Alcotest.(check bool) "thread localized" true (tid >= 0);
    let msg = Dr_pinplay.Replayer.divergence_message d in
    Alcotest.(check bool)
      (Printf.sprintf "message names step and thread: %s" msg)
      true
      (String.length msg > 0
      && String.sub msg 0 19 = "first divergence at")
  | exception Dr_pinplay.Replayer.Divergence d ->
    Alcotest.failf "wrong divergence kind: %s"
      (Dr_pinplay.Replayer.divergence_message d)

let test_truncated_syscall_log () =
  let prog, pb = log_whole ~digest_interval:0 racy_src in
  let n = Array.length pb.Dr_pinplay.Pinball.syscalls in
  Alcotest.(check bool) "has syscalls" true (n > 0);
  let pb' =
    { pb with
      Dr_pinplay.Pinball.syscalls =
        Array.sub pb.Dr_pinplay.Pinball.syscalls 0 (n - 1) }
  in
  match Dr_pinplay.Replayer.replay prog pb' with
  | _ -> Alcotest.fail "replay with truncated syscall log did not diverge"
  | exception
      Dr_pinplay.Replayer.Divergence
        (Dr_pinplay.Replayer.Syscall_log_exhausted { consumed }) ->
    Alcotest.(check int) "consumed the whole log" (n - 1) consumed
  | exception Dr_pinplay.Replayer.Divergence d ->
    Alcotest.failf "wrong divergence kind: %s"
      (Dr_pinplay.Replayer.divergence_message d)

let () =
  Alcotest.run "fault_injection"
    [ ( "truncation",
        [ Alcotest.test_case "region pinball, every prefix" `Quick
            test_truncation_region;
          Alcotest.test_case "slice pinball, every prefix" `Quick
            test_truncation_slice ] );
      ( "corruption",
        [ Alcotest.test_case "256 seeded bit flips" `Quick test_bit_flips;
          Alcotest.test_case "hostile tiny inputs" `Quick test_tiny_inputs;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_bytes ] );
      ( "compat",
        [ Alcotest.test_case "v1 round-trip" `Quick test_v1_roundtrip;
          Alcotest.test_case "migrate v1 to v2" `Quick test_migrate ] );
      ( "verify",
        [ Alcotest.test_case "report on intact and damaged" `Quick
            test_verify_report ] );
      ( "divergence",
        [ Alcotest.test_case "clean replay passes digests" `Quick
            test_digests_verify_clean;
          Alcotest.test_case "perturbed syscall localized" `Quick
            test_perturbed_syscall_localized;
          Alcotest.test_case "exhausted syscall log" `Quick
            test_truncated_syscall_log ] ) ]
