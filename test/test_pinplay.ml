(* Tests for dr_pinplay: pinball serialization, logger region capture,
   deterministic replay (the paper's core guarantee), and relogging with
   exclusion regions. *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let racy_src =
  {|
global int x;
global int trace[64];
global int tpos;
fn t2(int n) {
  int k = x;
  k = k + 1;
  x = k;
  trace[tpos] = 100 + k;
  tpos = tpos + 1;
}
fn main() {
  int t = spawn(t2, 0);
  int k = x;
  k = k + 1;
  x = k;
  trace[tpos] = 200 + k;
  tpos = tpos + 1;
  join(t);
  print(x);
  print(rand() % 100);
  print(read());
}
|}

let log_whole ?(seed = 3) ?(input = [| 55 |]) src =
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
      ~input (compile src) Dr_pinplay.Logger.Whole
  with
  | Ok (pb, stats) -> (pb, stats)
  | Error e -> Alcotest.failf "logging failed: %a" Dr_pinplay.Logger.pp_error e

(* ---- pinball serialization ---- *)

let test_pinball_roundtrip () =
  let pb, _ = log_whole racy_src in
  let bytes = Dr_pinplay.Pinball.to_bytes pb in
  let pb' = Dr_pinplay.Pinball.of_bytes bytes in
  Alcotest.(check bool) "schedule preserved" true
    (pb.Dr_pinplay.Pinball.schedule = pb'.Dr_pinplay.Pinball.schedule);
  Alcotest.(check bool) "syscalls preserved" true
    (pb.Dr_pinplay.Pinball.syscalls = pb'.Dr_pinplay.Pinball.syscalls);
  Alcotest.(check int) "size consistent"
    (String.length bytes)
    (Dr_pinplay.Pinball.size_bytes pb)

let test_pinball_file () =
  let pb, _ = log_whole racy_src in
  let path = Filename.temp_file "drdebug" ".pinball" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dr_pinplay.Pinball.save_file path pb;
      let pb' = Dr_pinplay.Pinball.load_file path in
      Alcotest.(check bool) "file round-trip" true
        (Dr_pinplay.Pinball.to_bytes pb = Dr_pinplay.Pinball.to_bytes pb'))

let test_pinball_corrupt () =
  let structured what s =
    match Dr_pinplay.Pinball.of_bytes s with
    | _ -> Alcotest.failf "%s: decoded a corrupt pinball" what
    | exception Dr_pinplay.Pinball.Pinball_error _ -> ()
  in
  structured "bad magic" "\x05WRONG";
  structured "empty" "";
  structured "trailing bytes" (Dr_pinplay.Pinball.to_bytes (fst (log_whole racy_src)) ^ "x")

(* ---- logger + replayer: whole executions ---- *)

let run_native ~seed ~input src =
  let prog = compile src in
  let m = Dr_machine.Machine.create ~input prog in
  let r =
    Dr_machine.Driver.run ~max_steps:1_000_000 m
      (Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
  in
  (r, Dr_machine.Machine.output_list m)

let test_replay_reproduces_output () =
  (* the replayed run must produce exactly the output of the logged run,
     including rand() and read() results *)
  let seed = 7 and input = [| 99 |] in
  let _, native_out = run_native ~seed ~input racy_src in
  let pb, _ =
    match
      Dr_pinplay.Logger.log
        ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
        ~input (compile racy_src) Dr_pinplay.Logger.Whole
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let m, reason = Dr_pinplay.Replayer.replay (compile racy_src) pb in
  (match reason with
  | Dr_machine.Driver.Terminated _ | Dr_machine.Driver.Schedule_end -> ()
  | r ->
    Alcotest.failf "unexpected replay stop: %a"
      (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r) ());
  Alcotest.(check (list int)) "replay output = native output" native_out
    (Dr_machine.Machine.output_list m)

let test_replay_is_repeatable () =
  let pb, _ = log_whole ~seed:11 racy_src in
  let prog = compile racy_src in
  let run () =
    let m, _ = Dr_pinplay.Replayer.replay prog pb in
    (Dr_machine.Machine.output_list m, Dr_machine.Machine.total_icount m)
  in
  let r1 = run () and r2 = run () and r3 = run () in
  Alcotest.(check bool) "three replays identical" true (r1 = r2 && r2 = r3)

let prop_replay_determinism =
  QCheck.Test.make ~name:"replay reproduces any seeded schedule" ~count:25
    QCheck.(pair (int_bound 500) (int_bound 1000))
    (fun (seed, input0) ->
      let input = [| input0 |] in
      let _, native_out = run_native ~seed ~input racy_src in
      match
        Dr_pinplay.Logger.log
          ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
          ~input (compile racy_src) Dr_pinplay.Logger.Whole
      with
      | Error _ -> false
      | Ok (pb, _) ->
        let m, _ = Dr_pinplay.Replayer.replay (compile racy_src) pb in
        Dr_machine.Machine.output_list m = native_out)

(* ---- region capture ---- *)

let loopy_src =
  {|
global int acc;
fn main() {
  for (int i = 0; i < 2000; i = i + 1) {
    acc = acc + i;
  }
  print(acc);
}
|}

let test_region_skip_length () =
  let prog = compile loopy_src in
  match
    Dr_pinplay.Logger.log prog
      (Dr_pinplay.Logger.Skip_length { skip = 500; length = 300 })
  with
  | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  | Ok (pb, stats) ->
    Alcotest.(check int) "main instructions" 300 stats.Dr_pinplay.Logger.main_instructions;
    Alcotest.(check int) "region length recorded" 300
      pb.Dr_pinplay.Pinball.region.Dr_pinplay.Pinball.length;
    Alcotest.(check int) "skip recorded" 500
      pb.Dr_pinplay.Pinball.region.Dr_pinplay.Pinball.skip;
    (* single-threaded: schedule instructions = main instructions *)
    Alcotest.(check int) "schedule totals" 300
      (Dr_pinplay.Pinball.schedule_instructions pb);
    (* replaying the region executes exactly those instructions *)
    let m, reason = Dr_pinplay.Replayer.replay prog pb in
    (match reason with
    | Dr_machine.Driver.Schedule_end -> ()
    | r ->
      Alcotest.failf "expected schedule end, got %a"
        (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r) ());
    Alcotest.(check int) "replayed instruction count" 300
      (Dr_machine.Machine.total_icount m
      - pb.Dr_pinplay.Pinball.snapshot.Dr_machine.Snapshot.total_icount)

let test_region_ends_early_at_termination () =
  let prog = compile loopy_src in
  match
    Dr_pinplay.Logger.log prog
      (Dr_pinplay.Logger.Skip_length { skip = 100; length = 10_000_000 })
  with
  | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  | Ok (_, stats) -> (
    match stats.Dr_pinplay.Logger.stop with
    | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> ()
    | r ->
      Alcotest.failf "expected termination, got %a"
        (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r) ())

let test_skip_past_end_is_error () =
  let prog = compile "fn main() { print(1); }" in
  match
    Dr_pinplay.Logger.log prog
      (Dr_pinplay.Logger.Skip_length { skip = 1_000_000; length = 10 })
  with
  | Error (Dr_pinplay.Logger.Terminated_before_region _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Dr_pinplay.Logger.pp_error e
  | Ok _ -> Alcotest.fail "expected an error"

let test_until_assert_failure () =
  let src =
    {|
global int x;
fn racer(int n) { x = 7; }
fn main() {
  int t = spawn(racer, 0);
  join(t);
  assert(x == 0, "x was modified");
}
|}
  in
  let prog = compile src in
  match
    Dr_pinplay.Logger.log prog
      (Dr_pinplay.Logger.Skip_until { skip = 0; until = (fun _ -> false) })
  with
  | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  | Ok (pb, stats) ->
    (match stats.Dr_pinplay.Logger.stop with
    | Dr_machine.Driver.Terminated (Dr_machine.Machine.Assert_failed { msg; _ }) ->
      Alcotest.(check string) "assert message" "x was modified" msg
    | r ->
      Alcotest.failf "expected assert, got %a"
        (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r) ());
    (* replaying reproduces the assertion failure *)
    let _, reason = Dr_pinplay.Replayer.replay prog pb in
    (match reason with
    | Dr_machine.Driver.Terminated (Dr_machine.Machine.Assert_failed _) -> ()
    | r ->
      Alcotest.failf "replay should fail the assert, got %a"
        (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r) ())

(* ---- replayer interaction: breakpoints and resume ---- *)

let test_replay_breakpoint_resume () =
  let prog = compile loopy_src in
  let pb, _ =
    match
      Dr_pinplay.Logger.log prog
        (Dr_pinplay.Logger.Skip_length { skip = 0; length = 1000 })
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let r = Dr_pinplay.Replayer.create prog pb in
  (* stop after 100 steps, then resume to the end; total must match *)
  let first = Dr_pinplay.Replayer.resume ~max_steps:100 r in
  (match first with
  | Dr_machine.Driver.Max_steps -> ()
  | _ -> Alcotest.fail "expected max-steps stop");
  let rest = Dr_pinplay.Replayer.resume r in
  (match rest with
  | Dr_machine.Driver.Schedule_end -> ()
  | r ->
    Alcotest.failf "expected schedule end, got %a"
      (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r) ());
  let m = Dr_pinplay.Replayer.machine r in
  Alcotest.(check int) "full region replayed" 1000
    (Dr_machine.Machine.total_icount m
    - pb.Dr_pinplay.Pinball.snapshot.Dr_machine.Snapshot.total_icount)

(* ---- relogger: exclusion regions ---- *)

let straightline_src =
  {|
global int a;
global int b;
global int c;
fn main() {
  a = 1;
  b = 2;
  b = b * 10;
  b = b + 3;
  c = a + b;
  print(c);
}
|}

(* Find the trace of (pc, tid, instance) for a region pinball. *)
let trace_of prog pb =
  let events = ref [] in
  let counts = Hashtbl.create 64 in
  let hooks =
    { Dr_machine.Driver.on_event =
        (fun ev ->
          let tid = ev.Dr_machine.Event.tid and pc = ev.Dr_machine.Event.pc in
          let k = (tid, pc) in
          let i = 1 + Option.value ~default:0 (Hashtbl.find_opt counts k) in
          Hashtbl.replace counts k i;
          events := (tid, pc, i, ev.Dr_machine.Event.instr) :: !events) }
  in
  let _ = Dr_pinplay.Replayer.replay ~hooks prog pb in
  List.rev !events

let test_relog_excludes_and_injects () =
  let prog = compile straightline_src in
  let pb, _ =
    match Dr_pinplay.Logger.log prog Dr_pinplay.Logger.Whole with
    | Ok r -> r
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let trace = trace_of prog pb in
  (* exclude the three instructions that compute b (the mov/mul/add
     statements), i.e. every Store to b's address except a= and c= *)
  let b_addr =
    match
      List.assoc_opt "b"
        (List.map
           (fun (n, a, _) -> (n, a))
           prog.Dr_isa.Program.debug.Dr_isa.Debug_info.globals)
    with
    | Some a -> a
    | None -> Alcotest.fail "no global b"
  in
  (* find the span of trace events from the first store-to-b through the
     last store-to-b; exclude that span *)
  let stores_to_b =
    List.filter
      (fun (_, pc, _, _) ->
        match prog.Dr_isa.Program.code.(pc) with
        | Dr_isa.Instr.Store _ -> (
          (* check statically: preceding mov loads b's address *)
          match prog.Dr_isa.Program.code.(pc - 1) with
          | Dr_isa.Instr.Mov (_, Dr_isa.Instr.Imm a) -> a = b_addr
          | _ -> false)
        | _ -> false)
      trace
  in
  Alcotest.(check int) "three stores to b" 3 (List.length stores_to_b)

let test_relog_simple_exclusion () =
  (* exclude a contiguous chunk of a single-threaded region and check the
     slice pinball structure *)
  let prog = compile straightline_src in
  let pb, _ =
    match Dr_pinplay.Logger.log prog Dr_pinplay.Logger.Whole with
    | Ok r -> r
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let trace = trace_of prog pb in
  let n = List.length trace in
  (* exclude events 5..9 (0-based) of thread 0 *)
  let nth i = List.nth trace i in
  let _, spc, sinst, _ = nth 5 in
  let _, epc, einst, _ = nth 10 in
  let spb =
    Dr_pinplay.Relogger.relog prog pb
      ~exclusions:
        [ { Dr_pinplay.Relogger.x_tid = 0; x_start_pc = spc;
            x_start_instance = sinst; x_end = Some (epc, einst) } ]
  in
  Alcotest.(check bool) "slice kind" true
    (spb.Dr_pinplay.Pinball.kind = Dr_pinplay.Pinball.Slice);
  Alcotest.(check int) "five instructions excluded" (n - 5)
    (Dr_pinplay.Pinball.step_count spb);
  (* there must be an injection restoring the excluded side effects *)
  Alcotest.(check bool) "has injection" true
    (Array.length spb.Dr_pinplay.Pinball.injections >= 1)

let test_relog_sync_exclusion_rejected () =
  let src =
    {|
global int m;
fn main() {
  lock(&m);
  unlock(&m);
  print(1);
}
|}
  in
  let prog = compile src in
  let pb, _ =
    match Dr_pinplay.Logger.log prog Dr_pinplay.Logger.Whole with
    | Ok r -> r
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let trace = trace_of prog pb in
  (* find the lock syscall event and try to exclude it *)
  let _, lpc, linst, _ =
    List.find
      (fun (_, pc, _, _) ->
        match prog.Dr_isa.Program.code.(pc) with
        | Dr_isa.Instr.Sys Dr_isa.Instr.Lock -> true
        | _ -> false)
      trace
  in
  Alcotest.(check bool) "raises Relog_error" true
    (try
       ignore
         (Dr_pinplay.Relogger.relog prog pb
            ~exclusions:
              [ { Dr_pinplay.Relogger.x_tid = 0; x_start_pc = lpc;
                  x_start_instance = linst; x_end = None } ]);
       false
     with Dr_pinplay.Relogger.Relog_error _ -> true)

(* ---- checkpoints (reverse-debugging substrate) ---- *)

let test_schedule_suffix () =
  let sched = [| (0, 5); (1, 3); (0, 2) |] in
  Alcotest.(check bool) "suffix 0" true
    (Dr_pinplay.Replayer.schedule_suffix sched 0 = sched);
  Alcotest.(check bool) "suffix 5" true
    (Dr_pinplay.Replayer.schedule_suffix sched 5 = [| (1, 3); (0, 2) |]);
  Alcotest.(check bool) "suffix mid-slice" true
    (Dr_pinplay.Replayer.schedule_suffix sched 6 = [| (1, 2); (0, 2) |]);
  Alcotest.(check bool) "suffix all" true
    (Dr_pinplay.Replayer.schedule_suffix sched 10 = [||]);
  Alcotest.(check bool) "suffix 2" true
    (Dr_pinplay.Replayer.schedule_suffix sched 2 = [| (0, 3); (1, 3); (0, 2) |])

let test_checkpoint_resume_equivalence () =
  (* resuming from a checkpoint produces the same continuation as the
     uninterrupted replay *)
  let prog = compile racy_src in
  let pb, _ = log_whole ~seed:13 racy_src in
  (* uninterrupted reference replay *)
  let m_ref, _ = Dr_pinplay.Replayer.replay prog pb in
  let ref_out = Dr_machine.Machine.output_list m_ref in
  (* checkpoint mid-way, then resume from it *)
  let r1 = Dr_pinplay.Replayer.create prog pb in
  let _ = Dr_pinplay.Replayer.resume ~max_steps:40 r1 in
  let cp = Dr_pinplay.Replayer.checkpoint r1 in
  Alcotest.(check int) "checkpoint position" 40
    cp.Dr_pinplay.Replayer.c_steps;
  let r2 = Dr_pinplay.Replayer.create ~from:cp prog pb in
  Alcotest.(check int) "resumed at checkpoint" 40 (Dr_pinplay.Replayer.steps r2);
  let _ = Dr_pinplay.Replayer.resume r2 in
  let out2 = Dr_machine.Machine.output_list (Dr_pinplay.Replayer.machine r2) in
  (* the resumed machine only produces output from the checkpoint onward;
     it must be a suffix of the reference output *)
  let is_suffix small big =
    let ls = List.length small and lb = List.length big in
    ls <= lb
    && small = List.filteri (fun i _ -> i >= lb - ls) big
  in
  Alcotest.(check bool) "suffix of reference output" true (is_suffix out2 ref_out)

let prop_checkpoint_any_position =
  QCheck.Test.make ~name:"checkpoint/resume at any position" ~count:20
    QCheck.(int_bound 100)
    (fun steps ->
      let prog = compile racy_src in
      let pb, _ = log_whole ~seed:5 racy_src in
      let total = Dr_pinplay.Pinball.schedule_instructions pb in
      let steps = min steps (total - 1) in
      let r1 = Dr_pinplay.Replayer.create prog pb in
      let _ = Dr_pinplay.Replayer.resume ~max_steps:steps r1 in
      let cp = Dr_pinplay.Replayer.checkpoint r1 in
      (* finish both and compare final machine memories *)
      let _ = Dr_pinplay.Replayer.resume r1 in
      let r2 = Dr_pinplay.Replayer.create ~from:cp prog pb in
      let _ = Dr_pinplay.Replayer.resume r2 in
      let m1 = Dr_pinplay.Replayer.machine r1 in
      let m2 = Dr_pinplay.Replayer.machine r2 in
      m1.Dr_machine.Machine.mem = m2.Dr_machine.Machine.mem
      && Dr_machine.Machine.total_icount m1 = Dr_machine.Machine.total_icount m2)

let test_logger_skip_exact () =
  (* the region must start exactly after [skip] main-thread instructions *)
  let prog = compile loopy_src in
  match
    Dr_pinplay.Logger.log prog
      (Dr_pinplay.Logger.Skip_length { skip = 123; length = 10 })
  with
  | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  | Ok (pb, _) ->
    let snap_icount =
      List.find
        (fun ts -> ts.Dr_machine.Snapshot.s_tid = 0)
        pb.Dr_pinplay.Pinball.snapshot.Dr_machine.Snapshot.threads
    in
    Alcotest.(check int) "snapshot at skip boundary" 123
      snap_icount.Dr_machine.Snapshot.s_icount

let test_relog_multiple_regions_per_thread () =
  let src = {|global int a;
global int b;
global int c;
fn main() {
  a = 1;
  b = 100;
  a = a + 1;
  b = b + 100;
  a = a + 1;
  c = a;
  print(c);
}|} in
  let prog = compile src in
  let pb, _ =
    match Dr_pinplay.Logger.log prog Dr_pinplay.Logger.Whole with
    | Ok r -> r
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let trace = Array.of_list (trace_of prog pb) in
  let line_of pc = Dr_isa.Debug_info.line_of_pc prog.Dr_isa.Program.debug pc in
  let is_b (_, pc, _, _) = match line_of pc with Some (6 | 8) -> true | _ -> false in
  (* build one exclusion region per contiguous run of b-statement events *)
  let exclusions = ref [] in
  let run_start = ref None in
  Array.iteri
    (fun i ev ->
      let tid, pc, inst, _ = ev in
      if is_b ev then begin
        if !run_start = None then run_start := Some (tid, pc, inst)
      end
      else
        match !run_start with
        | Some (stid, spc, sinst) when stid = tid ->
          exclusions :=
            { Dr_pinplay.Relogger.x_tid = stid; x_start_pc = spc;
              x_start_instance = sinst; x_end = Some (pc, inst) }
            :: !exclusions;
          run_start := None
        | _ -> ignore i)
    trace;
  let exclusions = List.rev !exclusions in
  Alcotest.(check int) "two disjoint regions" 2 (List.length exclusions);
  let spb = Dr_pinplay.Relogger.relog prog pb ~exclusions in
  Alcotest.(check int) "one injection per region" 2
    (Array.length spb.Dr_pinplay.Pinball.injections);
  Alcotest.(check bool) "fewer steps" true
    (Dr_pinplay.Pinball.step_count spb
    < Dr_pinplay.Pinball.schedule_instructions pb);
  (* the injected b value must be correct: replay the slice pinball and
     check memory afterwards *)
  let m = Dr_machine.Snapshot.restore prog spb.Dr_pinplay.Pinball.snapshot in
  Array.iter
    (fun ev ->
      match ev with
      | Dr_pinplay.Pinball.Inject i ->
        List.iter
          (fun (a, v) -> m.Dr_machine.Machine.mem.(a) <- v)
          spb.Dr_pinplay.Pinball.injections.(i).Dr_pinplay.Pinball.inj_mem
      | _ -> ())
    spb.Dr_pinplay.Pinball.slice_events;
  let b_addr =
    match
      List.find_opt
        (fun (n, _, _) -> n = "b")
        prog.Dr_isa.Program.debug.Dr_isa.Debug_info.globals
    with
    | Some (_, a, _) -> a
    | None -> Alcotest.fail "no b"
  in
  Alcotest.(check int) "injections restore b" 200 m.Dr_machine.Machine.mem.(b_addr)

(* ---- relogger injection edge cases ----

   Each test replays the slice pinball to the end and compares the
   machine's final globals (and output, when no print is excluded)
   against an uninterrupted reference replay: the injected side effects
   must leave exactly the state the excluded code would have computed. *)

let whole_pinball prog =
  match Dr_pinplay.Logger.log prog Dr_pinplay.Logger.Whole with
  | Ok (pb, _) -> pb
  | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e

let run_slice_replay prog spb =
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  let rec go () =
    match Dr_exeslice.Slice_replay.step sr with
    | Dr_exeslice.Slice_replay.Stepped _ | Dr_exeslice.Slice_replay.Injected _
      ->
      go ()
    | Dr_exeslice.Slice_replay.Finished _ | Dr_exeslice.Slice_replay.End_of_slice
      ->
      ()
  in
  go ();
  Dr_exeslice.Slice_replay.machine sr

let globals_of prog (m : Dr_machine.Machine.t) =
  List.map
    (fun (n, addr, _) -> (n, m.Dr_machine.Machine.mem.(addr)))
    prog.Dr_isa.Program.debug.Dr_isa.Debug_info.globals

let test_relog_region_at_trace_start () =
  let prog = compile straightline_src in
  let pb = whole_pinball prog in
  let trace = trace_of prog pb in
  let n = List.length trace in
  (* exclude events 0..3: the region starts ON the first trace record *)
  let _, spc, sinst, _ = List.nth trace 0 in
  let _, epc, einst, _ = List.nth trace 4 in
  let spb =
    Dr_pinplay.Relogger.relog prog pb
      ~exclusions:
        [ { Dr_pinplay.Relogger.x_tid = 0; x_start_pc = spc;
            x_start_instance = sinst; x_end = Some (epc, einst) } ]
  in
  (* the injection precedes the first included step *)
  (match spb.Dr_pinplay.Pinball.slice_events.(0) with
  | Dr_pinplay.Pinball.Inject _ -> ()
  | Dr_pinplay.Pinball.Step { pc; _ } ->
    Alcotest.failf "first slice event is Step pc=%d, expected Inject" pc);
  Alcotest.(check int) "four events excluded" (n - 4)
    (Dr_pinplay.Pinball.step_count spb);
  let rm, _ = Dr_pinplay.Replayer.replay prog pb in
  let sm = run_slice_replay prog spb in
  Alcotest.(check bool) "globals match reference" true
    (globals_of prog sm = globals_of prog rm);
  Alcotest.(check bool) "output matches reference" true
    (Dr_machine.Machine.output_list sm = Dr_machine.Machine.output_list rm)

let test_relog_region_at_trace_end () =
  let prog = compile straightline_src in
  (* a Skip_length region that stops before main's final ret, so a
     trailing open-ended exclusion never covers the thread-final ret *)
  let pb =
    match
      Dr_pinplay.Logger.log prog
        (Dr_pinplay.Logger.Skip_length { skip = 0; length = 12 })
    with
    | Ok (pb, _) -> pb
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let trace = trace_of prog pb in
  let n = List.length trace in
  let _, spc, sinst, _ = List.nth trace (n - 3) in
  let spb =
    Dr_pinplay.Relogger.relog prog pb
      ~exclusions:
        [ { Dr_pinplay.Relogger.x_tid = 0; x_start_pc = spc;
            x_start_instance = sinst; x_end = None } ]
  in
  Alcotest.(check int) "three events excluded" (n - 3)
    (Dr_pinplay.Pinball.step_count spb);
  (* the trailing flush emits the final slice event *)
  (match
     spb.Dr_pinplay.Pinball.slice_events.(Array.length
                                            spb.Dr_pinplay.Pinball.slice_events
                                          - 1)
   with
  | Dr_pinplay.Pinball.Inject _ -> ()
  | Dr_pinplay.Pinball.Step { pc; _ } ->
    Alcotest.failf "last slice event is Step pc=%d, expected trailing Inject"
      pc);
  let rm, _ = Dr_pinplay.Replayer.replay prog pb in
  let sm = run_slice_replay prog spb in
  Alcotest.(check bool) "globals match reference at region end" true
    (globals_of prog sm = globals_of prog rm);
  (* the thread's injected registers equal the reference register file *)
  let rt = Dr_machine.Machine.thread rm 0
  and st = Dr_machine.Machine.thread sm 0 in
  Alcotest.(check bool) "registers match reference" true
    (rt.Dr_machine.Machine.regs = st.Dr_machine.Machine.regs)

let test_relog_two_adjacent_regions () =
  let prog = compile straightline_src in
  let pb = whole_pinball prog in
  let trace = trace_of prog pb in
  let n = List.length trace in
  let marker i =
    let _, pc, inst, _ = List.nth trace i in
    (pc, inst)
  in
  (* [3,5) and [6,8): separated by the single included event 5 *)
  let s1pc, s1i = marker 3 and e1pc, e1i = marker 5 in
  let s2pc, s2i = marker 6 and e2pc, e2i = marker 8 in
  let spb =
    Dr_pinplay.Relogger.relog prog pb
      ~exclusions:
        [ { Dr_pinplay.Relogger.x_tid = 0; x_start_pc = s1pc;
            x_start_instance = s1i; x_end = Some (e1pc, e1i) };
          { Dr_pinplay.Relogger.x_tid = 0; x_start_pc = s2pc;
            x_start_instance = s2i; x_end = Some (e2pc, e2i) } ]
  in
  Alcotest.(check int) "four events excluded" (n - 4)
    (Dr_pinplay.Pinball.step_count spb);
  Alcotest.(check int) "one injection per region" 2
    (Array.length spb.Dr_pinplay.Pinball.injections);
  let rm, _ = Dr_pinplay.Replayer.replay prog pb in
  let sm = run_slice_replay prog spb in
  Alcotest.(check bool) "globals match reference" true
    (globals_of prog sm = globals_of prog rm);
  Alcotest.(check bool) "output matches reference" true
    (Dr_machine.Machine.output_list sm = Dr_machine.Machine.output_list rm)

let test_relog_empty_region () =
  let prog = compile straightline_src in
  let pb = whole_pinball prog in
  let trace = trace_of prog pb in
  let n = List.length trace in
  (* [p:i, p:i) is half-open and empty: excludes nothing, injects
     nothing, and the instruction at the marker still executes *)
  let _, pc, inst, _ = List.nth trace 5 in
  let spb =
    Dr_pinplay.Relogger.relog prog pb
      ~exclusions:
        [ { Dr_pinplay.Relogger.x_tid = 0; x_start_pc = pc;
            x_start_instance = inst; x_end = Some (pc, inst) } ]
  in
  Alcotest.(check int) "no events excluded" n
    (Dr_pinplay.Pinball.step_count spb);
  Alcotest.(check int) "no injections" 0
    (Array.length spb.Dr_pinplay.Pinball.injections);
  let rm, _ = Dr_pinplay.Replayer.replay prog pb in
  let sm = run_slice_replay prog spb in
  Alcotest.(check bool) "globals match reference" true
    (globals_of prog sm = globals_of prog rm);
  Alcotest.(check bool) "output matches reference" true
    (Dr_machine.Machine.output_list sm = Dr_machine.Machine.output_list rm)

let () =
  Alcotest.run "pinplay"
    [ ( "pinball",
        [ Alcotest.test_case "round-trip" `Quick test_pinball_roundtrip;
          Alcotest.test_case "file io" `Quick test_pinball_file;
          Alcotest.test_case "corrupt" `Quick test_pinball_corrupt ] );
      ( "log+replay",
        [ Alcotest.test_case "replay reproduces output" `Quick
            test_replay_reproduces_output;
          Alcotest.test_case "replay repeatable" `Quick test_replay_is_repeatable;
          QCheck_alcotest.to_alcotest prop_replay_determinism ] );
      ( "regions",
        [ Alcotest.test_case "skip/length" `Quick test_region_skip_length;
          Alcotest.test_case "region hits termination" `Quick
            test_region_ends_early_at_termination;
          Alcotest.test_case "skip past end" `Quick test_skip_past_end_is_error;
          Alcotest.test_case "until assert" `Quick test_until_assert_failure;
          Alcotest.test_case "breakpoint+resume" `Quick
            test_replay_breakpoint_resume ] );
      ( "relogger",
        [ Alcotest.test_case "store discovery" `Quick test_relog_excludes_and_injects;
          Alcotest.test_case "simple exclusion" `Quick test_relog_simple_exclusion;
          Alcotest.test_case "sync exclusion rejected" `Quick
            test_relog_sync_exclusion_rejected;
          Alcotest.test_case "multiple regions" `Quick
            test_relog_multiple_regions_per_thread;
          Alcotest.test_case "region at trace start" `Quick
            test_relog_region_at_trace_start;
          Alcotest.test_case "region at trace end" `Quick
            test_relog_region_at_trace_end;
          Alcotest.test_case "two adjacent regions" `Quick
            test_relog_two_adjacent_regions;
          Alcotest.test_case "empty region" `Quick test_relog_empty_region ] );
      ( "checkpoints",
        [ Alcotest.test_case "schedule suffix" `Quick test_schedule_suffix;
          Alcotest.test_case "resume equivalence" `Quick
            test_checkpoint_resume_equivalence;
          QCheck_alcotest.to_alcotest prop_checkpoint_any_position;
          Alcotest.test_case "skip boundary exact" `Quick test_logger_skip_exact ] ) ]
