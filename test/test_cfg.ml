(* Tests for dr_cfg: block construction, post-dominators, indirect-jump
   refinement (the paper's §5.1 imprecision source), and the generic
   dominator computation. *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

(* ---- generic dominators ---- *)

let test_dom_diamond () =
  (* 0 -> 1,2 ; 1 -> 3 ; 2 -> 3 *)
  let succs = function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | 2 -> [ 3 ] | _ -> [] in
  let preds = function 1 -> [ 0 ] | 2 -> [ 0 ] | 3 -> [ 1; 2 ] | _ -> [] in
  let d = Dr_cfg.Dom.idom ~num_nodes:4 ~succs ~preds ~root:0 in
  Alcotest.(check (array int)) "idoms" [| 0; 0; 0; 0 |] d

let test_dom_chain_and_loop () =
  (* 0 -> 1 -> 2 -> 1 (loop), 2 -> 3 *)
  let succs = function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 1; 3 ] | _ -> [] in
  let preds = function 1 -> [ 0; 2 ] | 2 -> [ 1 ] | 3 -> [ 2 ] | _ -> [] in
  let d = Dr_cfg.Dom.idom ~num_nodes:4 ~succs ~preds ~root:0 in
  Alcotest.(check (array int)) "idoms" [| 0; 0; 1; 2 |] d

let test_dom_unreachable () =
  let succs = function 0 -> [ 1 ] | _ -> [] in
  let preds = function 1 -> [ 0 ] | _ -> [] in
  let d = Dr_cfg.Dom.idom ~num_nodes:3 ~succs ~preds ~root:0 in
  Alcotest.(check int) "unreachable" (-1) d.(2)

(* ---- CFG construction on compiled programs ---- *)

let test_blocks_if () =
  let prog = compile {|
fn main() {
  int x = read();
  if (x > 0) { print(1); } else { print(2); }
  print(3);
}
|} in
  let cfg = Dr_cfg.Cfg.build prog in
  let f =
    List.find
      (fun (f : Dr_cfg.Cfg.func) ->
        f.Dr_cfg.Cfg.fentry = prog.Dr_isa.Program.entry)
      cfg.Dr_cfg.Cfg.funcs
  in
  (* an if/else has at least 4 blocks: head, then, else, join *)
  Alcotest.(check bool) "at least 4 blocks" true
    (Array.length f.Dr_cfg.Cfg.blocks >= 4);
  (* every non-exit block's successors are valid block ids *)
  Array.iter
    (fun (b : Dr_cfg.Cfg.block) ->
      List.iter
        (fun s ->
          Alcotest.(check bool) "succ valid" true
            (s >= 0 && s < Array.length f.Dr_cfg.Cfg.blocks))
        b.Dr_cfg.Cfg.succs)
    f.Dr_cfg.Cfg.blocks

let find_branch_pcs prog =
  let acc = ref [] in
  Array.iteri
    (fun pc i ->
      match i with
      | Dr_isa.Instr.Jcc _ | Dr_isa.Instr.Jind _ -> acc := (pc, i) :: !acc
      | _ -> ())
    prog.Dr_isa.Program.code;
  List.rev !acc

let test_ipdom_if_join () =
  (* for `if (c) A else B; join`, the branch's ipdom is the join block *)
  let prog = compile {|
fn main() {
  int x = read();
  int r = 0;
  if (x > 0) { r = 1; } else { r = 2; }
  print(r);
}
|} in
  let cfg = Dr_cfg.Cfg.build prog in
  let branches = find_branch_pcs prog in
  Alcotest.(check bool) "has a conditional branch" true (branches <> []);
  List.iter
    (fun (pc, i) ->
      match i with
      | Dr_isa.Instr.Jcc _ -> (
        match Dr_cfg.Cfg.ipdom_pc_of_branch cfg ~pc with
        | Some ip -> Alcotest.(check bool) "ipdom after branch" true (ip > pc)
        | None -> Alcotest.fail "conditional branch must have known ipdom")
      | _ -> ())
    branches

let test_ipdom_loop () =
  (* while-loop backedge: the loop condition's ipdom is the loop exit *)
  let prog = compile {|
fn main() {
  int i = 0;
  while (i < 10) { i = i + 1; }
  print(i);
}
|} in
  let cfg = Dr_cfg.Cfg.build prog in
  List.iter
    (fun (pc, i) ->
      match i with
      | Dr_isa.Instr.Jcc _ -> (
        match Dr_cfg.Cfg.ipdom_pc_of_branch cfg ~pc with
        | Some _ -> ()
        | None -> Alcotest.fail "loop branch must have known ipdom")
      | _ -> ())
    (find_branch_pcs prog)

let switch_src = {|
fn main() {
  int x = read();
  int w = 0;
  switch (x) {
    case 0: w = 1; break;
    case 1: w = 2; break;
    default: w = 9; break;
  }
  print(w);
}
|}

let test_indirect_jump_unknown_statically () =
  let prog = compile switch_src in
  let cfg = Dr_cfg.Cfg.build prog in
  let jind_pc =
    fst
      (List.find
         (fun (_, i) -> match i with Dr_isa.Instr.Jind _ -> true | _ -> false)
         (find_branch_pcs prog))
  in
  (* static CFG: indirect jump has unknown targets, so no ipdom *)
  Alcotest.(check (option int)) "no ipdom statically" None
    (Dr_cfg.Cfg.ipdom_pc_of_branch cfg ~pc:jind_pc)

let test_indirect_jump_refined () =
  let prog = compile switch_src in
  (* collect the dynamic jump targets by running with both inputs *)
  let targets = Hashtbl.create 4 in
  List.iter
    (fun input ->
      let m = Dr_machine.Machine.create ~input:[| input |] prog in
      let hooks =
        { Dr_machine.Driver.on_event =
            (fun ev ->
              match ev.Dr_machine.Event.instr with
              | Dr_isa.Instr.Jind _ ->
                let pc = ev.Dr_machine.Event.pc in
                let old = Option.value ~default:[] (Hashtbl.find_opt targets pc) in
                if not (List.mem ev.Dr_machine.Event.next_pc old) then
                  Hashtbl.replace targets pc (ev.Dr_machine.Event.next_pc :: old)
              | _ -> ()) }
      in
      ignore
        (Dr_machine.Driver.run ~hooks ~max_steps:10_000 m
           (Dr_machine.Driver.Round_robin { quantum = 1 })))
    [ 0; 1; 5 ];
  let indirect_targets = Hashtbl.fold (fun k v acc -> (k, v) :: acc) targets [] in
  Alcotest.(check bool) "observed targets" true (indirect_targets <> []);
  let cfg = Dr_cfg.Cfg.build ~indirect_targets prog in
  let jind_pc = fst (List.hd indirect_targets) in
  (* refined CFG: the switch jump now has a known ipdom (the join after
     the switch), restoring the control dependence of Figure 7 *)
  match Dr_cfg.Cfg.ipdom_pc_of_branch cfg ~pc:jind_pc with
  | Some ip -> Alcotest.(check bool) "ipdom known after refinement" true (ip > jind_pc)
  | None -> Alcotest.fail "refinement should give the switch an ipdom"

let test_functions_listing () =
  let prog = compile {|
fn a() { return 1; }
fn b() { return 2; }
fn main() { print(a() + b()); }
|} in
  let cfg = Dr_cfg.Cfg.build prog in
  Alcotest.(check int) "three functions" 3 (List.length (Dr_cfg.Cfg.functions cfg));
  (* ranges must tile the code without overlap *)
  let ranges = List.sort compare (Dr_cfg.Cfg.functions cfg) in
  let rec no_overlap = function
    | (_, e1) :: ((s2, _) :: _ as rest) ->
      Alcotest.(check bool) "no overlap" true (e1 <= s2);
      no_overlap rest
    | _ -> ()
  in
  no_overlap ranges

let test_block_at () =
  let prog = compile "fn main() { print(1); }" in
  let cfg = Dr_cfg.Cfg.build prog in
  (match Dr_cfg.Cfg.block_at cfg prog.Dr_isa.Program.entry with
  | Some (_, b) ->
    Alcotest.(check bool) "entry in block" true
      (b.Dr_cfg.Cfg.start_pc <= prog.Dr_isa.Program.entry)
  | None -> Alcotest.fail "entry block not found");
  Alcotest.(check bool) "out of range" true
    (Dr_cfg.Cfg.block_at cfg 100_000 = None)

let test_discovery_without_debug_info () =
  (* raw program, no debug info: heuristic function discovery *)
  let open Dr_isa.Instr in
  let prog =
    Dr_isa.Program.make ~name:"raw" ~entry:0
      [ (* main *) Mov (1, Imm 1); Call 4; Halt; Nop;
        (* callee at 4 *) Push Dr_isa.Reg.fp; Mov (Dr_isa.Reg.fp, Reg Dr_isa.Reg.sp);
        Pop Dr_isa.Reg.fp; Ret ]
  in
  let cfg = Dr_cfg.Cfg.build prog in
  let funcs = Dr_cfg.Cfg.functions cfg in
  Alcotest.(check bool) "found callee" true (List.exists (fun (e, _) -> e = 4) funcs)

let prop_every_pc_in_some_block =
  QCheck.Test.make ~name:"every function pc maps to a block containing it"
    ~count:20
    QCheck.(int_bound 3)
    (fun _ ->
      let prog = compile switch_src in
      let cfg = Dr_cfg.Cfg.build prog in
      let ok = ref true in
      List.iter
        (fun (f : Dr_cfg.Cfg.func) ->
          for pc = f.Dr_cfg.Cfg.fentry to f.Dr_cfg.Cfg.fend - 1 do
            match Dr_cfg.Cfg.block_at cfg pc with
            | Some (_, b) ->
              if not (b.Dr_cfg.Cfg.start_pc <= pc && pc < b.Dr_cfg.Cfg.end_pc) then
                ok := false
            | None -> ok := false
          done)
        cfg.Dr_cfg.Cfg.funcs;
      !ok)

(* ---- additional cfg coverage ---- *)

let test_branch_region_end_variants () =
  let prog = compile switch_src in
  let cfg = Dr_cfg.Cfg.build prog in
  (* every Jcc in a compiled function yields At or To_exit, never a crash *)
  List.iter
    (fun (pc, i) ->
      match i with
      | Dr_isa.Instr.Jcc _ -> (
        match Dr_cfg.Cfg.branch_region_end cfg ~pc with
        | Dr_cfg.Cfg.At p -> Alcotest.(check bool) "forward" true (p > 0)
        | Dr_cfg.Cfg.To_exit -> ()
        | Dr_cfg.Cfg.Unknown -> Alcotest.fail "Jcc cannot be Unknown")
      | Dr_isa.Instr.Jind _ ->
        Alcotest.(check bool) "jind unknown statically" true
          (Dr_cfg.Cfg.branch_region_end cfg ~pc = Dr_cfg.Cfg.Unknown)
      | _ -> ())
    (find_branch_pcs prog)

let test_spawn_target_discovered () =
  (* without debug info, spawn targets (mov rX, @entry idiom) are found *)
  let src = {|global int x;
fn worker(int n) { x = n; }
fn main() {
  int t = spawn(worker, 3);
  join(t);
}|} in
  let prog = compile src in
  (* strip the debug info to force heuristic discovery *)
  let stripped = { prog with Dr_isa.Program.debug = Dr_isa.Debug_info.empty } in
  let cfg = Dr_cfg.Cfg.build stripped in
  let dbg_worker =
    Option.get (Dr_isa.Debug_info.func_named prog.Dr_isa.Program.debug "worker")
  in
  Alcotest.(check bool) "worker entry discovered" true
    (List.exists
       (fun (e, _) -> e = dbg_worker.Dr_isa.Debug_info.entry)
       (Dr_cfg.Cfg.functions cfg))

let test_recursive_function_cfg () =
  let prog = compile {|fn fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() { print(fib(8)); }|} in
  let cfg = Dr_cfg.Cfg.build prog in
  (* each function's blocks tile its range exactly *)
  List.iter
    (fun (f : Dr_cfg.Cfg.func) ->
      let covered = ref 0 in
      Array.iter
        (fun (b : Dr_cfg.Cfg.block) ->
          covered := !covered + (b.Dr_cfg.Cfg.end_pc - b.Dr_cfg.Cfg.start_pc))
        f.Dr_cfg.Cfg.blocks;
      Alcotest.(check int) "blocks tile function"
        (f.Dr_cfg.Cfg.fend - f.Dr_cfg.Cfg.fentry)
        !covered)
    cfg.Dr_cfg.Cfg.funcs

let prop_preds_consistent_with_succs =
  QCheck.Test.make ~name:"preds lists mirror succs lists" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let src = Dr_lang.Gen.program seed in
      match Dr_lang.Codegen.compile_result src with
      | Error _ -> false
      | Ok prog ->
        let cfg = Dr_cfg.Cfg.build prog in
        List.for_all
          (fun (f : Dr_cfg.Cfg.func) ->
            Array.for_all
              (fun (b : Dr_cfg.Cfg.block) ->
                List.for_all
                  (fun s ->
                    List.mem b.Dr_cfg.Cfg.id
                      f.Dr_cfg.Cfg.blocks.(s).Dr_cfg.Cfg.preds)
                  b.Dr_cfg.Cfg.succs)
              f.Dr_cfg.Cfg.blocks)
          cfg.Dr_cfg.Cfg.funcs)

(* ---- edge cases around post-dominators, indirect calls and func_at ---- *)

let test_single_block_function () =
  let open Dr_isa.Instr in
  let prog =
    Dr_isa.Program.make ~name:"raw" ~entry:0 [ Mov (0, Imm 1); Ret ]
  in
  let cfg = Dr_cfg.Cfg.build prog in
  let f = Option.get (Dr_cfg.Cfg.func_at cfg 0) in
  Alcotest.(check int) "one block" 1 (Array.length f.Dr_cfg.Cfg.blocks);
  Alcotest.(check bool) "exit block" true
    f.Dr_cfg.Cfg.blocks.(0).Dr_cfg.Cfg.exits;
  (* the sole block's ipdom is the virtual exit, reported as -1 *)
  Alcotest.(check int) "ipdom is vexit" (-1) f.Dr_cfg.Cfg.ipdom.(0)

let test_ipdom_unreachable_from_exit () =
  (* a self-loop block never reaches the function exit: its ipdom must be
     -1 (virtual exit unreachable in the reversed CFG), not a crash *)
  let open Dr_isa.Instr in
  let prog = Dr_isa.Program.make ~name:"raw" ~entry:0 [ Jmp 0; Halt ] in
  let cfg = Dr_cfg.Cfg.build prog in
  let f = Option.get (Dr_cfg.Cfg.func_at cfg 0) in
  let b0 = f.Dr_cfg.Cfg.block_of_pc.(0) in
  Alcotest.(check int) "self-loop block has no ipdom" (-1)
    f.Dr_cfg.Cfg.ipdom.(b0)

let test_callind_fallthrough_and_refinement () =
  let open Dr_isa.Instr in
  let prog =
    Dr_isa.Program.make ~name:"raw" ~entry:0
      [ Mov (1, Imm 4); Callind 1; Halt; Nop; (* callee at 4 *) Ret ]
  in
  let static_cfg = Dr_cfg.Cfg.build prog in
  let _, b = Option.get (Dr_cfg.Cfg.block_at static_cfg 1) in
  Alcotest.(check bool) "unknown statically" true b.Dr_cfg.Cfg.unknown_succs;
  (* an unresolved indirect call still falls through to its return point *)
  Alcotest.(check bool) "fallthrough succ present" true
    (b.Dr_cfg.Cfg.succs <> []);
  let refined = Dr_cfg.Cfg.build ~indirect_targets:[ (1, [ 4 ]) ] prog in
  let _, b' = Option.get (Dr_cfg.Cfg.block_at refined 1) in
  Alcotest.(check bool) "resolved after refinement" false
    b'.Dr_cfg.Cfg.unknown_succs

let test_region_end_refinement_transition () =
  (* the same switch jind goes Unknown -> At once targets are observed *)
  let prog = compile switch_src in
  let jind_pc =
    fst
      (List.find
         (fun (_, i) -> match i with Dr_isa.Instr.Jind _ -> true | _ -> false)
         (find_branch_pcs prog))
  in
  let static_cfg = Dr_cfg.Cfg.build prog in
  Alcotest.(check bool) "unknown before refinement" true
    (Dr_cfg.Cfg.branch_region_end static_cfg ~pc:jind_pc = Dr_cfg.Cfg.Unknown);
  let targets = Hashtbl.create 4 in
  List.iter
    (fun input ->
      let m = Dr_machine.Machine.create ~input:[| input |] prog in
      let hooks =
        { Dr_machine.Driver.on_event =
            (fun ev ->
              match ev.Dr_machine.Event.instr with
              | Dr_isa.Instr.Jind _ ->
                let pc = ev.Dr_machine.Event.pc in
                let old =
                  Option.value ~default:[] (Hashtbl.find_opt targets pc)
                in
                if not (List.mem ev.Dr_machine.Event.next_pc old) then
                  Hashtbl.replace targets pc
                    (ev.Dr_machine.Event.next_pc :: old)
              | _ -> ()) }
      in
      ignore
        (Dr_machine.Driver.run ~hooks ~max_steps:10_000 m
           (Dr_machine.Driver.Round_robin { quantum = 1 })))
    [ 0; 1; 5 ];
  let indirect_targets =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) targets []
  in
  let refined = Dr_cfg.Cfg.build ~indirect_targets prog in
  match Dr_cfg.Cfg.branch_region_end refined ~pc:jind_pc with
  | Dr_cfg.Cfg.At p ->
    Alcotest.(check bool) "region ends after the jump" true (p > jind_pc)
  | Dr_cfg.Cfg.To_exit -> Alcotest.fail "switch join should be a concrete pc"
  | Dr_cfg.Cfg.Unknown -> Alcotest.fail "refinement should resolve the region"

let test_func_at_boundaries () =
  (* the binary-searched func_at agrees with the ranges list on every
     in-range pc and rejects everything outside *)
  let prog = compile {|
fn a() { return 1; }
fn b() { return 2; }
fn main() { print(a() + b()); }
|} in
  let cfg = Dr_cfg.Cfg.build prog in
  List.iter
    (fun (s, e) ->
      List.iter
        (fun pc ->
          match Dr_cfg.Cfg.func_at cfg pc with
          | Some f ->
            Alcotest.(check bool) "right function" true
              (f.Dr_cfg.Cfg.fentry = s && f.Dr_cfg.Cfg.fend = e)
          | None -> Alcotest.failf "no function at pc %d" pc)
        [ s; (s + e) / 2; e - 1 ])
    (Dr_cfg.Cfg.functions cfg);
  Alcotest.(check bool) "past end" true (Dr_cfg.Cfg.func_at cfg 100_000 = None);
  Alcotest.(check bool) "negative" true (Dr_cfg.Cfg.func_at cfg (-1) = None)

let () =
  Alcotest.run "cfg"
    [ ( "dom",
        [ Alcotest.test_case "diamond" `Quick test_dom_diamond;
          Alcotest.test_case "chain+loop" `Quick test_dom_chain_and_loop;
          Alcotest.test_case "unreachable" `Quick test_dom_unreachable ] );
      ( "cfg",
        [ Alcotest.test_case "if blocks" `Quick test_blocks_if;
          Alcotest.test_case "ipdom of if" `Quick test_ipdom_if_join;
          Alcotest.test_case "ipdom of loop" `Quick test_ipdom_loop;
          Alcotest.test_case "functions" `Quick test_functions_listing;
          Alcotest.test_case "block_at" `Quick test_block_at;
          Alcotest.test_case "discovery without debug info" `Quick
            test_discovery_without_debug_info;
          QCheck_alcotest.to_alcotest prop_every_pc_in_some_block ] );
      ( "refinement",
        [ Alcotest.test_case "jind unknown statically" `Quick
            test_indirect_jump_unknown_statically;
          Alcotest.test_case "jind refined" `Quick test_indirect_jump_refined ] );
      ( "coverage",
        [ Alcotest.test_case "region end variants" `Quick
            test_branch_region_end_variants;
          Alcotest.test_case "spawn target discovery" `Quick
            test_spawn_target_discovered;
          Alcotest.test_case "recursive fn blocks" `Quick
            test_recursive_function_cfg;
          QCheck_alcotest.to_alcotest prop_preds_consistent_with_succs ] );
      ( "edges",
        [ Alcotest.test_case "single-block function" `Quick
            test_single_block_function;
          Alcotest.test_case "ipdom unreachable from exit" `Quick
            test_ipdom_unreachable_from_exit;
          Alcotest.test_case "callind fallthrough + refinement" `Quick
            test_callind_fallthrough_and_refinement;
          Alcotest.test_case "region end transition on refinement" `Quick
            test_region_end_refinement_transition;
          Alcotest.test_case "func_at boundaries" `Quick
            test_func_at_boundaries ] ) ]
