(* Domain-parallelism tests: compute_many determinism across domain
   counts and criterion orderings, sharded LP/def-index preparation
   equality, the lazy pc_index build under concurrent first lookups,
   spilled segment-store reads under concurrent readers, and the
   sharded fuzz farm (parallel summary identical to sequential; every
   failure reproduces from its (seed, case-id) coordinates alone). *)

module Slicer = Dr_slicing.Slicer
module Pool = Dr_util.Pool

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let log_whole ?(seed = 3) ?(input = [||]) prog =
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
      ~input prog Dr_pinplay.Logger.Whole
  with
  | Ok (pb, _) -> pb
  | Error e -> Alcotest.failf "logging failed: %a" Dr_pinplay.Logger.pp_error e

let collect ?input ?seed prog =
  let pb = log_whole ?seed ?input prog in
  Dr_slicing.Collector.collect ~refine:true prog pb

(* Multithreaded program with a loop: enough records and blocks for the
   sharded builds and the block-skipping scan to have real work. *)
let par_src = {|global int x;
global int y;
global int z;
fn t1(int n) {
  y = 10;
  x = y + 1;
}
fn main() {
  int t = spawn(t1, 0);
  int sum = 0;
  for (int i = 0; i < 12; i = i + 1) {
    sum = sum + 2;
  }
  int k = z;
  k = k + sum;
  k = k + x;
  join(t);
  assert(k > 0, "k");
}|}

(* Several load-record criteria spread over the trace (same recipe as
   the bench), so a fan-out has independent work items. *)
let criteria_of gt ~n =
  let len = Dr_slicing.Global_trace.length gt in
  let picks = ref [] and found = ref 0 and pos = ref (len - 1) in
  while !found < n && !pos > 0 do
    if Dr_slicing.Trace.is_load (Dr_slicing.Global_trace.record gt !pos)
    then begin
      picks := !pos :: !picks;
      incr found
    end;
    decr pos
  done;
  let picks = if !picks = [] then [ len - 1 ] else List.rev !picks in
  List.map
    (fun p -> { Slicer.crit_pos = p; crit_locs = None })
    picks

let canonical_edges (s : Slicer.t) =
  let tag = function
    | Slicer.Data l -> (0, l)
    | Slicer.Data_bypassed l -> (1, l)
    | Slicer.Control -> (2, -1)
  in
  let l =
    Array.to_list
      (Array.map
         (fun (e : Slicer.edge) ->
           let k, loc = tag e.Slicer.kind in
           (e.Slicer.from_pos, e.Slicer.to_pos, k, loc))
         s.Slicer.edges)
  in
  List.sort compare l

(* everything but slice_time, which is schedule-dependent by contract *)
let stats_eq (a : Slicer.stats) (b : Slicer.stats) =
  a.Slicer.visited = b.Slicer.visited
  && a.Slicer.skipped_blocks = b.Slicer.skipped_blocks
  && a.Slicer.static_skipped_blocks = b.Slicer.static_skipped_blocks
  && a.Slicer.total_blocks = b.Slicer.total_blocks
  && a.Slicer.truncated = b.Slicer.truncated

let slice_eq (a : Slicer.t) (b : Slicer.t) =
  a.Slicer.positions = b.Slicer.positions
  && canonical_edges a = canonical_edges b
  && stats_eq a.Slicer.stats b.Slicer.stats

(* shared fixture: trace, criteria, and sequential reference slices *)
let fixture =
  lazy
    (let prog = compile par_src in
     let c = collect prog in
     let gt = Dr_slicing.Global_trace.construct c in
     let crits = criteria_of gt ~n:6 in
     let seq =
       List.map (fun crit -> (crit, Slicer.compute gt crit)) crits
     in
     (prog, c, gt, crits, seq))

(* ---- compute_many: parallel fan-out equals sequential compute ---- *)

let test_compute_many_matches_sequential () =
  let _, _, gt, crits, seq = Lazy.force fixture in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let par = Slicer.compute_many ~pool gt crits in
          Alcotest.(check int)
            (Printf.sprintf "%d domains: result count" domains)
            (List.length crits) (List.length par);
          List.iter2
            (fun (_, s) p ->
              Alcotest.(check bool)
                (Printf.sprintf "%d domains: slice identical" domains)
                true (slice_eq s p))
            seq par))
    [ 1; 2; 4 ]

let prop_compute_many_shuffled =
  QCheck.Test.make
    ~name:"compute_many: shuffled criteria x 1/2/4 domains = sequential"
    ~count:8
    QCheck.(pair (int_range 1 4) (int_bound 10_000))
    (fun (domains, shuffle_seed) ->
      let _, _, gt, crits, seq = Lazy.force fixture in
      let rng = Random.State.make [| shuffle_seed |] in
      let shuffled =
        List.map (fun c -> (Random.State.bits rng, c)) crits
        |> List.sort compare |> List.map snd
      in
      Pool.with_pool ~domains (fun pool ->
          let par = Slicer.compute_many ~pool gt shuffled in
          (* results come back in (shuffled) criterion order, each equal
             to the sequential slice of that same criterion *)
          List.for_all2
            (fun crit p ->
              p.Slicer.criterion = crit
              && slice_eq (List.assoc crit seq) p)
            shuffled par))

(* ---- sharded LP / def-index / static-filter preparation ---- *)

let test_sharded_prep_matches_sequential () =
  let prog, _, gt, crits, _ = Lazy.force fixture in
  let seq_lp = Dr_slicing.Lp.prepare gt in
  let dump_index lp =
    let acc = ref [] in
    Dr_slicing.Def_index.iter (Dr_slicing.Lp.def_index lp)
      (fun loc positions -> acc := (loc, Array.copy positions) :: !acc);
    List.sort compare !acc
  in
  let code = prog.Dr_isa.Program.code in
  let ncode = Array.length code in
  let reg_defs pc =
    if pc >= 0 && pc < ncode then Dr_static.Defuse.def_mask code.(pc) else 0
  in
  let writes_mem pc =
    pc >= 0 && pc < ncode && Dr_static.Defuse.writes_mem code.(pc)
  in
  let seq_sf = Dr_slicing.Lp.prepare_static seq_lp gt ~reg_defs ~writes_mem in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let par_lp = Dr_slicing.Lp.prepare ~pool gt in
          Alcotest.(check bool)
            (Printf.sprintf "%d domains: def index identical" domains)
            true
            (dump_index seq_lp = dump_index par_lp);
          let par_sf =
            Dr_slicing.Lp.prepare_static ~pool par_lp gt ~reg_defs ~writes_mem
          in
          (* the sharded preparations must drive every traversal to the
             sequential result, block-skip and static-skip stats
             included (those prove the summaries and masks agree) *)
          List.iter
            (fun crit ->
              let a =
                Slicer.compute ~lp:seq_lp ~static_filter:seq_sf ~indexed:false
                  ~block_skipping:true gt crit
              in
              let b =
                Slicer.compute ~lp:par_lp ~static_filter:par_sf ~indexed:false
                  ~block_skipping:true gt crit
              in
              Alcotest.(check bool)
                (Printf.sprintf "%d domains: scan identical" domains)
                true (slice_eq a b);
              let fa = Slicer.compute ~lp:seq_lp gt crit in
              let fb = Slicer.compute ~lp:par_lp gt crit in
              Alcotest.(check bool)
                (Printf.sprintf "%d domains: indexed identical" domains)
                true (slice_eq fa fb))
            crits))
    [ 2; 3 ]

(* ---- lazy pc_index build under concurrent first lookups ---- *)

let dump_tbl t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort compare

let test_pc_index_concurrent_build () =
  let _, c, _, _, _ = Lazy.force fixture in
  (* fresh trace: the index is unbuilt when four domains race for it *)
  let gt = Dr_slicing.Global_trace.construct c in
  let tables =
    Pool.with_pool ~domains:4 (fun pool ->
        Pool.map pool
          (fun _ -> Dr_slicing.Global_trace.pc_index gt)
          (Array.init 4 (fun i -> i)))
  in
  Array.iter
    (fun t ->
      Alcotest.(check bool) "all domains see one table" true
        (t == tables.(0)))
    tables;
  let gt' = Dr_slicing.Global_trace.construct c in
  let seq = Dr_slicing.Global_trace.pc_index gt' in
  Alcotest.(check bool) "racy build equals sequential build" true
    (dump_tbl tables.(0) = dump_tbl seq)

(* ---- spilled segment store under concurrent readers ---- *)

let spill_budget () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "drdebug-test-domains-spill-%d" (Unix.getpid ()))
  in
  Dr_util.Budget.create ~mem_bytes:0 ~spill_dir:dir ()

let cleanup_spill budget =
  let dir = Dr_util.Budget.spill_dir budget in
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let test_segment_store_concurrent_readers () =
  let _, c, _, _, _ = Lazy.force fixture in
  let budget = spill_budget () in
  Fun.protect ~finally:(fun () -> cleanup_spill budget) @@ fun () ->
  let store =
    Dr_slicing.Segment_store.rebuild ~budget ~seg_records:16 ~cache_segments:2
      c.Dr_slicing.Collector.records
  in
  let n = Dr_slicing.Segment_store.length store in
  Alcotest.(check bool) "actually spilled" true
    (Dr_slicing.Segment_store.spilled_segments store > 0);
  let expect =
    Array.init n (fun i ->
        Dr_slicing.Segment_store.get c.Dr_slicing.Collector.records i)
  in
  (* four readers scanning in opposite directions churn the tiny LRU
     cache with concurrent hits, misses, and evictions *)
  Pool.with_pool ~domains:4 (fun pool ->
      let oks =
        Pool.map pool
          (fun d ->
            let ok = ref true in
            for k = 0 to n - 1 do
              let i = if d mod 2 = 0 then k else n - 1 - k in
              if Dr_slicing.Segment_store.get store i <> expect.(i) then
                ok := false
            done;
            !ok)
          [| 0; 1; 2; 3 |]
      in
      Array.iteri
        (fun d ok ->
          Alcotest.(check bool)
            (Printf.sprintf "reader %d saw every record intact" d)
            true ok)
        oks)

(* ---- sharded fuzz farm ---- *)

(* same mutation as the conformance self-test: drop one record the
   criterion data-depends on, which only the soundness oracle catches *)
let drop_crit_data_dep (s : Slicer.t) : Slicer.t =
  let crit = s.Slicer.criterion.Slicer.crit_pos in
  let victim =
    Array.fold_left
      (fun acc (e : Slicer.edge) ->
        match acc with
        | Some _ -> acc
        | None ->
          if e.Slicer.from_pos = crit then
            match e.Slicer.kind with
            | Slicer.Data _ | Slicer.Data_bypassed _ -> Some e.Slicer.to_pos
            | Slicer.Control -> None
          else None)
      None s.Slicer.edges
  in
  match victim with
  | None -> s
  | Some v ->
    { s with
      Slicer.positions =
        Array.of_list
          (List.filter (fun p -> p <> v) (Array.to_list s.Slicer.positions));
      adj = None }

let summary_eq (a : Dr_conformance.Fuzz.summary)
    (b : Dr_conformance.Fuzz.summary) =
  (* everything but s_elapsed, which is wall-clock *)
  a.Dr_conformance.Fuzz.s_master_seed = b.Dr_conformance.Fuzz.s_master_seed
  && a.Dr_conformance.Fuzz.s_cases = b.Dr_conformance.Fuzz.s_cases
  && a.Dr_conformance.Fuzz.s_passes = b.Dr_conformance.Fuzz.s_passes
  && a.Dr_conformance.Fuzz.s_skips = b.Dr_conformance.Fuzz.s_skips
  && a.Dr_conformance.Fuzz.s_failures = b.Dr_conformance.Fuzz.s_failures

let test_fuzz_parallel_green_deterministic () =
  let seq = Dr_conformance.Fuzz.run ~seed:7 ~runs:6 () in
  Alcotest.(check int) "green run" 0
    (List.length seq.Dr_conformance.Fuzz.s_failures);
  List.iter
    (fun domains ->
      let par = Dr_conformance.Fuzz.run ~domains ~seed:7 ~runs:6 () in
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: summary identical" domains)
        true (summary_eq seq par))
    [ 2; 4 ]

let test_fuzz_sharded_failures_reproduce () =
  let seq =
    Dr_conformance.Fuzz.run ~mutate_slice:drop_crit_data_dep ~seed:42 ~runs:4
      ()
  in
  let par =
    Dr_conformance.Fuzz.run ~mutate_slice:drop_crit_data_dep ~domains:2
      ~seed:42 ~runs:4 ()
  in
  Alcotest.(check bool) "failures found" true
    (par.Dr_conformance.Fuzz.s_failures <> []);
  (* the sharded farm reports the exact sequential failure list: same
     case ids, same shrunk repros, in case-id order *)
  Alcotest.(check bool) "sharded summary identical to sequential" true
    (summary_eq seq par);
  (* every failure reproduces from (seed, case-id) alone — one domain,
     no farm state *)
  List.iter
    (fun (f : Dr_conformance.Fuzz.failure) ->
      match
        Dr_conformance.Fuzz.replay_case ~mutate_slice:drop_crit_data_dep
          ~seed:42 ~case_id:f.Dr_conformance.Fuzz.fr_case_id ()
      with
      | Dr_conformance.Oracles.Fail _ -> ()
      | Dr_conformance.Oracles.Pass ->
        Alcotest.failf "case %d did not reproduce from its coordinates"
          f.Dr_conformance.Fuzz.fr_case_id
      | Dr_conformance.Oracles.Skip r ->
        Alcotest.failf "case %d skipped on replay: %s"
          f.Dr_conformance.Fuzz.fr_case_id r)
    par.Dr_conformance.Fuzz.s_failures

let () =
  Alcotest.run "domains"
    [ ( "compute_many",
        [ Alcotest.test_case "matches sequential at 1/2/4 domains" `Quick
            test_compute_many_matches_sequential;
          QCheck_alcotest.to_alcotest prop_compute_many_shuffled ] );
      ( "sharded prep",
        [ Alcotest.test_case "lp/def-index/static filter" `Quick
            test_sharded_prep_matches_sequential ] );
      ( "core safety",
        [ Alcotest.test_case "pc_index concurrent first build" `Quick
            test_pc_index_concurrent_build;
          Alcotest.test_case "segment store concurrent readers" `Quick
            test_segment_store_concurrent_readers ] );
      ( "fuzz farm",
        [ Alcotest.test_case "green run deterministic across domains" `Quick
            test_fuzz_parallel_green_deterministic;
          Alcotest.test_case "sharded failures reproduce from seed" `Quick
            test_fuzz_sharded_failures_reproduce ] ) ]
